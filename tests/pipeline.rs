//! Whole-pipeline integration test: generator → library binding → Steiner
//! forest → differentiable STA → global placement → legalization → detailed
//! placement, with cross-crate invariants checked at every joint.

use dtp_core::{run_flow, FlowConfig, FlowMode};
use dtp_liberty::synth::synthetic_pdk;
use dtp_netlist::generate::{superblue_proxy, GeneratorConfig};
use dtp_netlist::{generate::generate, NetlistStats, Rect};
use dtp_place::{check_legal, WirelengthModel};
use dtp_rsmt::build_forest;
use dtp_sta::{Timer, TimingReport};

#[test]
fn generator_to_sta_invariants() {
    let design = generate(&GeneratorConfig::named("pipe", 500)).expect("generator succeeds");
    design.netlist.validate().expect("valid netlist");
    let lib = synthetic_pdk();
    let timer = Timer::new(&design, &lib).expect("binding succeeds");
    let forest = build_forest(&design.netlist);

    // Steiner wirelength ≥ HPWL per net (the tree spans the bounding box).
    for net in design.netlist.net_ids() {
        let Some(tree) = forest.tree(net) else { continue };
        let bbox = Rect::bounding(
            design
                .netlist
                .net(net)
                .pins()
                .iter()
                .map(|&p| design.netlist.pin_position(p)),
        )
        .expect("net has pins");
        assert!(
            tree.wirelength() >= bbox.half_perimeter() - 1e-6,
            "net {net:?}: tree {} < hpwl {}",
            tree.wirelength(),
            bbox.half_perimeter()
        );
    }

    let exact = timer.analyze(&design.netlist, &forest);
    let smooth = timer.analyze_smoothed(&design.netlist, &forest);

    // Arrival times are finite and non-negative at every active pin.
    for lv in timer.graph().levels() {
        for &p in lv {
            assert!(exact.at[p.index()].is_finite());
            assert!(exact.slew[p.index()] > 0.0);
            // Smoothed ATs upper-bound exact ATs (LSE ≥ max).
            assert!(smooth.at[p.index()] >= exact.at[p.index()] - 1e-6);
            // Early arrivals never exceed late arrivals.
            assert!(exact.at_early[p.index()] <= exact.at[p.index()] + 1e-9);
        }
    }
    // TNS ≤ min(0, WNS); endpoint count consistent.
    assert!(exact.tns() <= exact.wns().min(0.0) + 1e-9);
    assert_eq!(
        exact.endpoints().len(),
        timer.graph().endpoints().len()
    );
    // The report agrees with the analysis.
    let report = TimingReport::new(&timer, &design.netlist, &exact);
    assert_eq!(report.endpoints, exact.endpoints().len());
    assert!((report.wns - exact.wns()).abs() < 1e-9);
}

#[test]
fn full_flow_on_superblue_proxy() {
    // Tiny scale so the test stays fast even in debug builds.
    let design = superblue_proxy("sb18", 1.0 / 1500.0).expect("built-in benchmark");
    let stats = NetlistStats::of(&design.netlist);
    assert!(stats.num_cells > 300);
    let lib = synthetic_pdk();
    let cfg = FlowConfig { max_iters: 250, trace_timing_every: 25, ..FlowConfig::default() };
    let r = run_flow(&design, &lib, FlowMode::differentiable(), &cfg).expect("flow runs");

    // Legal, bounded, and better than the clustered start.
    assert!(check_legal(&design, &r.xs, &r.ys).is_empty());
    let wl = WirelengthModel::new(&design.netlist);
    assert!((wl.hpwl(&r.xs, &r.ys) - r.hpwl).abs() < 1e-6);
    // GP and final metrics are close (legalization perturbs mildly).
    assert!(r.hpwl < 1.5 * r.gp_hpwl && r.hpwl > 0.5 * r.gp_hpwl);
    assert!(r.timing_runtime > 0.0 && r.timing_runtime < r.runtime);
}

#[test]
fn sta_consistent_after_legalization() {
    // Re-analyzing the returned placement must reproduce the reported WNS/TNS.
    let design = superblue_proxy("sb4", 1.0 / 2000.0).expect("built-in benchmark");
    let lib = synthetic_pdk();
    let cfg = FlowConfig { max_iters: 200, trace_timing_every: 0, ..FlowConfig::default() };
    let r = run_flow(&design, &lib, FlowMode::Wirelength, &cfg).expect("flow runs");
    let mut placed = design.clone();
    placed.netlist.set_positions(&r.xs, &r.ys);
    let timer = Timer::new(&placed, &lib).expect("binding succeeds");
    let forest = build_forest(&placed.netlist);
    let again = timer.analyze(&placed.netlist, &forest);
    assert!((again.wns() - r.wns).abs() < 1e-6, "{} vs {}", again.wns(), r.wns);
    assert!((again.tns() - r.tns).abs() < 1e-6);
}
