//! The paper's qualitative claims, asserted as tests on two scaled proxies.
//! Absolute numbers differ from the paper (different substrate, scale and
//! PDK — see DESIGN.md), but the *shape* of Table 3 must hold:
//!
//! 1. the differentiable flow has the best WNS and TNS of the three flows;
//! 2. net weighting sits between wirelength-only and differentiable on TNS;
//! 3. the differentiable flow's HPWL stays close to wirelength-only
//!    ("for free", §4);
//! 4. all three flows meet the same density-overflow stop criterion.

use dtp_core::{run_flow, FlowConfig, FlowMode, FlowResult};
use dtp_liberty::synth::synthetic_pdk;
use dtp_netlist::generate::superblue_proxy;

fn run_all(bench: &str, scale_denom: f64) -> [FlowResult; 3] {
    let design = superblue_proxy(bench, 1.0 / scale_denom).expect("built-in benchmark");
    let lib = synthetic_pdk();
    let cfg = FlowConfig { max_iters: 350, trace_timing_every: 0, ..FlowConfig::default() };
    [
        run_flow(&design, &lib, FlowMode::Wirelength, &cfg).expect("flow runs"),
        run_flow(&design, &lib, FlowMode::net_weighting(), &cfg).expect("flow runs"),
        run_flow(&design, &lib, FlowMode::differentiable(), &cfg).expect("flow runs"),
    ]
}

fn assert_table3_shape(results: &[FlowResult; 3]) {
    let [base, nw, ours] = results;
    assert!(base.wns < 0.0, "proxy must start with violations");
    // Claim 1: ours wins WNS and TNS.
    assert!(
        ours.wns > base.wns && ours.wns >= nw.wns * 0.999,
        "WNS order violated: base {}, nw {}, ours {}",
        base.wns,
        nw.wns,
        ours.wns
    );
    assert!(
        ours.tns > base.tns && ours.tns > nw.tns,
        "TNS order violated: base {}, nw {}, ours {}",
        base.tns,
        nw.tns,
        ours.tns
    );
    // Claim 2: net weighting improves on wirelength-only.
    assert!(nw.tns > base.tns, "net weighting TNS not better than baseline");
    // Claim 3: HPWL "for free" (≤ 10 % at proxy scale; paper: ~1 %).
    assert!(
        ours.hpwl < 1.10 * base.hpwl,
        "HPWL cost too high: {} vs {}",
        ours.hpwl,
        base.hpwl
    );
}

#[test]
fn table3_shape_sb18() {
    let results = run_all("sb18", 600.0);
    assert_table3_shape(&results);
}

#[test]
fn table3_shape_sb4() {
    let results = run_all("sb4", 600.0);
    assert_table3_shape(&results);
}

#[test]
fn timing_runtime_dominates_in_timing_flows() {
    // §3.6: "in a timing-driven placement flow, the runtime is dominated by
    // repeated calls to the STA engine". The incremental timing pipeline
    // exists precisely to shrink that share, so the assertable residue of
    // the claim is qualitative: timing flows spend a clearly measurable
    // fraction of their wall-clock in the timer, the wirelength-only flow
    // spends almost none.
    let design = superblue_proxy("sb18", 1.0 / 600.0).expect("built-in benchmark");
    let lib = synthetic_pdk();
    let cfg = FlowConfig { max_iters: 350, trace_timing_every: 0, ..FlowConfig::default() };
    let base = run_flow(&design, &lib, FlowMode::Wirelength, &cfg).expect("flow runs");
    let ours = run_flow(&design, &lib, FlowMode::differentiable(), &cfg).expect("flow runs");
    assert!(base.timing_runtime < 0.2 * base.runtime);
    assert!(
        ours.timing_runtime > 0.02 * ours.runtime,
        "timer share too small: {} of {}",
        ours.timing_runtime,
        ours.runtime
    );
    // Adding the timing objective costs extra runtime, but bounded (paper:
    // 3.14× DREAMPlace; allow a generous band for tiny designs).
    assert!(ours.runtime > base.runtime * 0.8);
    assert!(ours.runtime < base.runtime * 12.0);
}
