//! Property-based tests spanning crate boundaries: random designs through
//! the full differentiable-timing stack must preserve the core invariants.

use dtp_liberty::synth::synthetic_pdk;
use dtp_netlist::generate::{generate, GeneratorConfig};
use dtp_rsmt::build_forest;
use dtp_sta::Timer;
use proptest::prelude::*;

fn cfg_strategy() -> impl Strategy<Value = GeneratorConfig> {
    (80usize..400, 2usize..12, 1u64..1000, 0.05f64..0.3).prop_map(
        |(cells, depth, seed, ff)| {
            let mut cfg = GeneratorConfig::named("prop", cells);
            cfg.depth = depth;
            cfg.seed = seed;
            cfg.register_fraction = ff;
            cfg
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn random_designs_analyze_cleanly(cfg in cfg_strategy()) {
        let design = generate(&cfg).expect("generator succeeds");
        design.netlist.validate().expect("valid");
        let lib = synthetic_pdk();
        let timer = Timer::new(&design, &lib).expect("binds");
        let forest = build_forest(&design.netlist);
        let exact = timer.analyze(&design.netlist, &forest);
        // All finite, ordering invariants hold.
        prop_assert!(exact.wns().is_finite());
        prop_assert!(exact.tns() <= exact.wns().min(0.0) + 1e-9);
        for &p in exact.endpoints() {
            prop_assert!(exact.slack[p.index()].is_finite());
        }
        // Smoothed slacks lower-bound exact slacks (LSE-max inflates ATs).
        let smooth = timer.analyze_smoothed(&design.netlist, &forest);
        prop_assert!(smooth.wns() <= exact.wns() + 1e-6);
    }

    #[test]
    fn gradients_are_finite_and_translation_invariant(cfg in cfg_strategy()) {
        let mut design = generate(&cfg).expect("generator succeeds");
        let lib = synthetic_pdk();
        let timer = Timer::new(&design, &lib).expect("binds");
        let forest = build_forest(&design.netlist);
        let analysis = timer.analyze_smoothed(&design.netlist, &forest);
        let g1 = timer.gradients(&design.netlist, &analysis, &forest, 1.0, 1.0);
        for v in g1.cell_grad_x.iter().chain(&g1.cell_grad_y) {
            prop_assert!(v.is_finite());
        }
        // Timing is a function of relative positions: translating the whole
        // design leaves the gradient unchanged.
        let (mut xs, mut ys) = design.netlist.positions();
        for v in xs.iter_mut() { *v += 11.0; }
        for v in ys.iter_mut() { *v += -7.0; }
        design.netlist.set_positions(&xs, &ys);
        let mut forest2 = forest.clone();
        forest2.update_positions(&design.netlist);
        let analysis2 = timer.analyze_smoothed(&design.netlist, &forest2);
        let g2 = timer.gradients(&design.netlist, &analysis2, &forest2, 1.0, 1.0);
        prop_assert!((g1.objective - g2.objective).abs() < 1e-6 * (1.0 + g1.objective.abs()));
        for (a, b) in g1.cell_grad_x.iter().zip(&g2.cell_grad_x) {
            prop_assert!((a - b).abs() < 1e-6 * (1.0 + a.abs()), "{a} vs {b}");
        }
    }

    #[test]
    fn steiner_reuse_approximates_rebuild(cfg in cfg_strategy()) {
        // The §3.6 reuse strategy trades accuracy for speed; the accuracy
        // loss must vanish with the move size. Check a tight bound at the
        // per-iteration scale (0.05 um) and a loose sanity bound at 10x that
        // (rebuilds can flip tree topologies, which shifts the estimate).
        let design0 = generate(&cfg).expect("generator succeeds");
        let lib = synthetic_pdk();
        let timer = Timer::new(&design0, &lib).expect("binds");
        for (scale, rel_tol, abs_tol) in [(0.05f64, 0.02, 5.0), (0.5, 0.6, 100.0)] {
            let mut design = design0.clone();
            let mut forest = build_forest(&design.netlist);
            let (mut xs, mut ys) = design.netlist.positions();
            for c in design.netlist.movable_cells() {
                let i = c.index();
                xs[i] += scale * ((i % 7) as f64 / 7.0 - 0.5);
                ys[i] += scale * ((i % 5) as f64 / 5.0 - 0.5);
            }
            design.netlist.set_positions(&xs, &ys);
            forest.update_positions(&design.netlist);
            let reused = timer.analyze(&design.netlist, &forest);
            let rebuilt_forest = build_forest(&design.netlist);
            let rebuilt = timer.analyze(&design.netlist, &rebuilt_forest);
            let err = (reused.wns() - rebuilt.wns()).abs();
            let bound = rel_tol * rebuilt.wns().abs().max(100.0) + abs_tol;
            prop_assert!(
                err < bound,
                "scale {scale}: reused {} vs rebuilt {} (err {err} > bound {bound})",
                reused.wns(),
                rebuilt.wns()
            );
        }
    }
}

