//! The derives must compile on the shapes the workspace actually uses:
//! plain structs and enums, with and without `#[serde(...)]`-free field
//! attributes, imported through the crate rename `serde`.

use shim_serde as serde;
use shim_serde::{Deserialize, Serialize};

#[derive(Serialize, Deserialize)]
struct Plain {
    _x: f64,
    _name: String,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Mode {
    A,
    B { value: usize },
}

#[derive(Serialize, Deserialize, Default)]
pub struct TrailingDerive(u32);

fn assert_impls<T: serde::Serialize + for<'de> serde::Deserialize<'de>>() {}

#[test]
fn derives_emit_marker_impls() {
    assert_impls::<Plain>();
    assert_impls::<Mode>();
    assert_impls::<TrailingDerive>();
    assert_eq!(TrailingDerive::default().0, 0);
}
