//! Offline stand-in for the subset of the [`serde`](https://docs.rs/serde)
//! API this workspace uses.
//!
//! The workspace only *derives* `Serialize` / `Deserialize` on plain config
//! and data types; nothing serializes through serde at runtime (the on-disk
//! formats are bookshelf/verilog/liberty text handled by hand-written
//! writers). The build environment cannot reach a registry, so the traits
//! here are empty markers and the derive macros (from `shim-serde-derive`)
//! emit marker impls. If a future PR needs real serialization, grow these
//! traits in place — every derive site already compiles against this shim.

#![forbid(unsafe_code)]

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

pub use shim_serde_derive::{Deserialize, Serialize};
