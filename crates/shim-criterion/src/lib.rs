//! Offline stand-in for the subset of the [`criterion`](https://docs.rs/criterion)
//! API this workspace's benches use: `Criterion::benchmark_group`,
//! `sample_size`, `bench_function` / `bench_with_input`, `Bencher::iter` /
//! `iter_batched`, `BenchmarkId`, `BatchSize`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! The build environment cannot reach a registry, so measurement is
//! re-implemented on `std::time::Instant`: each benchmark is calibrated with
//! one warm-up call, then timed over `sample_size` samples of a batch sized
//! to ~20 ms each (capped so a single benchmark stays under ~1.5 s), and the
//! **minimum** ns/iter across samples is reported — the low-noise statistic
//! for a contended single-machine runner. Results print to stdout as
//! `bench <group>/<id> ... <ns> ns/iter`; there is no HTML report, outlier
//! analysis, or regression baseline.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall time per measured sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(20);
/// Hard cap on total measurement time per benchmark.
const BENCH_BUDGET: Duration = Duration::from_millis(1500);

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`, e.g. `analyze_exact/4000`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", name.into(), parameter) }
    }

    /// Parameter-only id, e.g. `64`.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// How `iter_batched` amortizes setup (accepted for API compatibility; the
/// shim always re-runs setup outside the timed region).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// One setup per timed call.
    PerIteration,
    /// Small inputs: batch many calls per setup.
    SmallInput,
    /// Large inputs: few calls per setup.
    LargeInput,
}

/// Timing harness handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Minimum observed ns/iter, filled by `iter`/`iter_batched`.
    result_ns: f64,
}

impl Bencher {
    /// Measures `f` called back-to-back; reports min ns/iter over samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up + calibration call.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let iters_per_sample =
            (SAMPLE_TARGET.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        let started = Instant::now();
        let mut best = f64::INFINITY;
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            best = best.min(t.elapsed().as_nanos() as f64 / iters_per_sample as f64);
            if started.elapsed() > BENCH_BUDGET {
                break;
            }
        }
        self.result_ns = best;
    }

    /// Measures `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the reported ns/iter.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Warm-up + calibration call.
        let input = setup();
        let t0 = Instant::now();
        black_box(routine(input));
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let iters_per_sample =
            (SAMPLE_TARGET.as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;
        let started = Instant::now();
        let mut best = f64::INFINITY;
        for _ in 0..self.samples {
            let mut spent = Duration::ZERO;
            for _ in 0..iters_per_sample {
                let input = setup();
                let t = Instant::now();
                black_box(routine(input));
                spent += t.elapsed();
            }
            best = best.min(spent.as_nanos() as f64 / iters_per_sample as f64);
            if started.elapsed() > BENCH_BUDGET {
                break;
            }
        }
        self.result_ns = best;
    }
}

/// A named collection of related benchmarks sharing a sample count.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: String, mut f: F) {
        let mut b = Bencher { samples: self.sample_size, result_ns: f64::NAN };
        f(&mut b);
        let full = format!("{}/{}", self.name, id);
        println!("bench {full:<48} {:>14.1} ns/iter", b.result_ns);
        self.criterion.results.push((full, b.result_ns));
    }

    /// Runs a benchmark identified by `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(id.id, f);
        self
    }

    /// Runs a benchmark that receives a reference to `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.id, |b| f(b, input));
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    /// `(group/id, ns_per_iter)` pairs in execution order.
    pub results: Vec<(String, f64)>,
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: 10, criterion: self }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = BenchmarkGroup {
            criterion: self,
            name: "bench".to_string(),
            sample_size: 10,
        };
        group.bench_function(id, f);
        self
    }
}

/// Bundles benchmark functions into a runnable group fn.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn work(n: u64) -> u64 {
        (0..n).fold(0, |a, b| a.wrapping_add(b * b))
    }

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::new("work", 100), &100u64, |b, &n| {
            b.iter(|| work(n))
        });
        group.bench_function("batched", |b| {
            b.iter_batched(|| 50u64, work, BatchSize::LargeInput)
        });
        group.finish();
    }

    #[test]
    fn group_records_results() {
        let mut c = Criterion::default();
        sample_bench(&mut c);
        assert_eq!(c.results.len(), 2);
        assert_eq!(c.results[0].0, "g/work/100");
        assert_eq!(c.results[1].0, "g/batched");
        assert!(c.results.iter().all(|(_, ns)| ns.is_finite() && *ns > 0.0));
    }

    criterion_group!(test_group, sample_bench);

    #[test]
    fn macros_expand() {
        test_group();
    }
}
