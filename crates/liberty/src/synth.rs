//! Synthetic PDK generation.
//!
//! A real flow reads a foundry `.lib`; none can ship with this reproduction,
//! so we generate one from the canonical standard-cell table in
//! [`dtp_netlist::stdcells`]. The delay/slew surfaces are *linear* in each of
//! (input slew, output load) — `delay = intrinsic + R_out·load + k·slew` —
//! which has two nice properties: it is a reasonable first-order model of a
//! driving CMOS stage, and bilinear LUT interpolation reproduces it exactly,
//! so tests can compare LUT queries against the analytic closed form.

use crate::arc::{ArcKind, TimingArc};
use crate::cell::{LibCell, LibPin};
use crate::library::Library;
use crate::lut::{Lut1, Lut2};
use dtp_netlist::stdcells::{self, StdCellSpec, CLOCK_PIN};
use dtp_netlist::PinDir;

/// Slew axis (ps) of the synthetic tables.
pub const SLEW_AXIS: [f64; 5] = [0.5, 2.0, 8.0, 32.0, 128.0];
/// Load axis (fF) of the synthetic tables.
pub const LOAD_AXIS: [f64; 5] = [0.5, 2.0, 8.0, 32.0, 128.0];

/// Base output resistance (kΩ) of a drive-1 cell; kΩ·fF = ps.
pub const BASE_DRIVE_RES: f64 = 2.0;
/// Delay sensitivity to input slew (dimensionless).
pub const SLEW_TO_DELAY: f64 = 0.15;
/// Output-slew sensitivity to load relative to delay sensitivity.
pub const TRANS_LOAD_FACTOR: f64 = 1.2;
/// Output-slew sensitivity to input slew.
pub const SLEW_TO_SLEW: f64 = 0.10;
/// Intrinsic output slew (ps).
pub const TRANS_INTRINSIC: f64 = 3.0;
/// Base input-pin capacitance (fF).
pub const BASE_PIN_CAP: f64 = 1.0;

/// Analytic arc delay of a cell described by `spec` (the truth the synthetic
/// LUTs tabulate).
pub fn analytic_delay(spec: &StdCellSpec, slew: f64, load: f64) -> f64 {
    spec.intrinsic + (BASE_DRIVE_RES / spec.drive) * load + SLEW_TO_DELAY * slew
}

/// Analytic output slew of a cell described by `spec`.
pub fn analytic_slew(spec: &StdCellSpec, slew: f64, load: f64) -> f64 {
    TRANS_INTRINSIC + TRANS_LOAD_FACTOR * (BASE_DRIVE_RES / spec.drive) * load + SLEW_TO_SLEW * slew
}

/// Input capacitance (fF) of pins on a cell described by `spec`: bigger drive
/// means proportionally bigger input transistors.
pub fn analytic_pin_cap(spec: &StdCellSpec) -> f64 {
    BASE_PIN_CAP * spec.drive
}

/// Setup margin (ps) as a function of data slew.
pub fn analytic_setup(data_slew: f64) -> f64 {
    12.0 + 0.25 * data_slew
}

/// Hold margin (ps) as a function of data slew.
pub fn analytic_hold(data_slew: f64) -> f64 {
    2.0 + 0.05 * data_slew
}

fn delay_lut(spec: &StdCellSpec) -> Lut2 {
    Lut2::tabulate(SLEW_AXIS.to_vec(), LOAD_AXIS.to_vec(), |s, l| analytic_delay(spec, s, l))
        .expect("static axes are valid")
}

fn trans_lut(spec: &StdCellSpec) -> Lut2 {
    Lut2::tabulate(SLEW_AXIS.to_vec(), LOAD_AXIS.to_vec(), |s, l| analytic_slew(spec, s, l))
        .expect("static axes are valid")
}

/// Builds the [`LibCell`] for one standard-cell descriptor.
pub fn synth_cell(spec: &StdCellSpec) -> LibCell {
    let cap = analytic_pin_cap(spec);
    let mut cell = LibCell::new(spec.name, spec.width * stdcells::ROW_HEIGHT);
    for input in spec.inputs {
        cell = cell.with_pin(LibPin {
            name: (*input).to_owned(),
            dir: PinDir::Input,
            capacitance: cap,
            max_capacitance: None,
            is_clock: false,
        });
    }
    cell = cell.with_pin(LibPin {
        name: spec.output.to_owned(),
        dir: PinDir::Output,
        capacitance: 0.0,
        max_capacitance: Some(LOAD_AXIS[LOAD_AXIS.len() - 1]),
        is_clock: false,
    });
    if spec.seq {
        cell = cell.with_pin(LibPin {
            name: CLOCK_PIN.to_owned(),
            dir: PinDir::Input,
            capacitance: 0.8 * cap,
            max_capacitance: None,
            is_clock: true,
        });
        // CK -> Q propagation arc.
        cell = cell.with_arc(TimingArc::symmetric_delay(
            CLOCK_PIN,
            spec.output,
            ArcKind::ClkToQ,
            delay_lut(spec),
            trans_lut(spec),
        ));
        // CK -> D setup/hold constraint arcs over data slew.
        let setup = Lut1::new(
            SLEW_AXIS.to_vec(),
            SLEW_AXIS.iter().map(|&s| analytic_setup(s)).collect(),
        )
        .expect("static axis is valid");
        let hold = Lut1::new(
            SLEW_AXIS.to_vec(),
            SLEW_AXIS.iter().map(|&s| analytic_hold(s)).collect(),
        )
        .expect("static axis is valid");
        for input in spec.inputs {
            cell = cell
                .with_arc(TimingArc::constraint(CLOCK_PIN, *input, ArcKind::Setup, setup.clone()))
                .with_arc(TimingArc::constraint(CLOCK_PIN, *input, ArcKind::Hold, hold.clone()));
        }
    } else {
        for input in spec.inputs {
            cell = cell.with_arc(TimingArc::symmetric_delay(
                *input,
                spec.output,
                ArcKind::Combinational,
                delay_lut(spec),
                trans_lut(spec),
            ));
        }
    }
    cell
}

/// Generates the full synthetic PDK matching `dtp_netlist::stdcells::CELLS`.
pub fn synthetic_pdk() -> Library {
    let mut lib = Library::new("dtp_synth_pdk");
    for spec in stdcells::CELLS {
        lib.add_cell(synth_cell(spec));
    }
    lib
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pdk_covers_all_stdcells() {
        let lib = synthetic_pdk();
        assert_eq!(lib.num_cells(), stdcells::CELLS.len());
        for spec in stdcells::CELLS {
            let c = lib.cell(spec.name).unwrap();
            assert_eq!(c.is_sequential(), spec.seq, "{}", spec.name);
            // One delay arc per signal input (comb) or exactly one CK->Q arc.
            let delay_arcs = c.arcs().iter().filter(|a| a.is_delay_arc()).count();
            if spec.seq {
                assert_eq!(delay_arcs, 1);
                assert!(c.setup_arc(spec.inputs[0]).is_some());
                assert!(c.hold_arc(spec.inputs[0]).is_some());
            } else {
                assert_eq!(delay_arcs, spec.inputs.len());
            }
        }
    }

    #[test]
    fn lut_matches_analytic_model_exactly() {
        // The model is bilinear-free (no slew*load term), so interpolation is
        // exact even between samples and under extrapolation.
        let spec = stdcells::find("NAND2_X1").unwrap();
        let cell = synth_cell(spec);
        let arc = cell.delay_arcs_to("Y").next().unwrap();
        for &(s, l) in &[(1.0, 1.0), (5.0, 20.0), (100.0, 60.0), (200.0, 300.0)] {
            let e = arc.eval(s, l);
            assert!(
                (e.delay - analytic_delay(spec, s, l)).abs() < 1e-9,
                "delay mismatch at ({s}, {l})"
            );
            assert!(
                (e.slew - analytic_slew(spec, s, l)).abs() < 1e-9,
                "slew mismatch at ({s}, {l})"
            );
        }
    }

    #[test]
    fn arc_gradients_match_analytic_model() {
        let spec = stdcells::find("INV_X2").unwrap();
        let cell = synth_cell(spec);
        let arc = cell.delay_arcs_to("Y").next().unwrap();
        let e = arc.eval(7.0, 13.0);
        assert!((e.d_delay_d_slew - SLEW_TO_DELAY).abs() < 1e-9);
        assert!((e.d_delay_d_load - BASE_DRIVE_RES / spec.drive).abs() < 1e-9);
        assert!((e.d_slew_d_slew - SLEW_TO_SLEW).abs() < 1e-9);
        assert!((e.d_slew_d_load - TRANS_LOAD_FACTOR * BASE_DRIVE_RES / spec.drive).abs() < 1e-9);
    }

    #[test]
    fn stronger_drive_is_faster() {
        let lib = synthetic_pdk();
        let x1 = lib.cell("INV_X1").unwrap().delay_arcs_to("Y").next().unwrap().eval(10.0, 20.0);
        let x2 = lib.cell("INV_X2").unwrap().delay_arcs_to("Y").next().unwrap().eval(10.0, 20.0);
        assert!(x2.delay < x1.delay);
    }

    #[test]
    fn setup_grows_with_data_slew() {
        let lib = synthetic_pdk();
        let dff = lib.cell("DFF_X1").unwrap();
        let setup = dff.setup_arc("D").unwrap();
        assert!(setup.constraint_value(50.0) > setup.constraint_value(5.0));
    }
}
