//! Error type for library construction and parsing.

use std::fmt;

/// Errors produced while building or parsing NLDM libraries.
#[derive(Debug)]
#[non_exhaustive]
pub enum LibertyError {
    /// A look-up-table definition is inconsistent (axis not strictly
    /// increasing, value count mismatch, empty axis).
    BadTable(String),
    /// A parse error with location.
    Parse {
        /// 1-based line of the offending token.
        line: usize,
        /// Problem description.
        message: String,
    },
    /// A referenced cell or pin does not exist.
    Unknown(String),
    /// An underlying I/O error.
    Io(std::io::Error),
}

impl fmt::Display for LibertyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LibertyError::BadTable(m) => write!(f, "bad look-up table: {m}"),
            LibertyError::Parse { line, message } => {
                write!(f, "liberty parse error at line {line}: {message}")
            }
            LibertyError::Unknown(n) => write!(f, "unknown library object `{n}`"),
            LibertyError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for LibertyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LibertyError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for LibertyError {
    fn from(e: std::io::Error) -> Self {
        LibertyError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(LibertyError::BadTable("x".into()).to_string().contains("bad look-up table"));
        let p = LibertyError::Parse { line: 3, message: "unexpected `}`".into() };
        assert!(p.to_string().contains("line 3"));
    }

    #[test]
    fn send_sync() {
        fn check<T: Send + Sync>() {}
        check::<LibertyError>();
    }
}
