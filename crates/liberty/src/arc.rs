//! Timing arcs: NLDM delay/transition arcs and setup/hold constraint arcs.

use crate::lut::{Lut1, Lut2};
use serde::{Deserialize, Serialize};

/// Unateness of a combinational arc (which input edge causes which output
/// edge). The simplified single-corner propagation of this flow evaluates the
/// worst of rise/fall regardless of unateness, but the attribute is parsed,
/// stored and written so libraries round-trip.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum Unate {
    /// Rising input causes rising output.
    Positive,
    /// Rising input causes falling output.
    #[default]
    Negative,
    /// Edge relationship depends on other inputs.
    NonUnate,
}

/// Kind of a timing arc.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ArcKind {
    /// Input-to-output delay arc of a combinational cell.
    Combinational,
    /// Clock-to-output delay arc of a register (`CK -> Q`).
    ClkToQ,
    /// Setup constraint arc (`CK -> D`): data must arrive this long before
    /// the capturing clock edge.
    Setup,
    /// Hold constraint arc (`CK -> D`): data must stay stable this long after
    /// the clock edge.
    Hold,
}

/// Result of evaluating a delay arc at `(input slew, output load)`:
/// worst-case delay and output slew, plus partial derivatives with respect to
/// both query coordinates — the quantities consumed by Eq. (12) of the paper.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ArcEval {
    /// Arc delay (ps).
    pub delay: f64,
    /// ∂delay/∂(input slew).
    pub d_delay_d_slew: f64,
    /// ∂delay/∂(output load).
    pub d_delay_d_load: f64,
    /// Output slew (ps).
    pub slew: f64,
    /// ∂slew/∂(input slew).
    pub d_slew_d_slew: f64,
    /// ∂slew/∂(output load).
    pub d_slew_d_load: f64,
}

/// An NLDM timing arc between two pins of a cell.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TimingArc {
    /// Source pin name (`related_pin` in Liberty terms is the *from* pin).
    pub from: String,
    /// Destination pin name (the pin the `timing()` group is attached to).
    pub to: String,
    /// Arc kind.
    pub kind: ArcKind,
    /// Unateness attribute.
    pub unate: Unate,
    /// `cell_rise` delay table.
    pub cell_rise: Lut2,
    /// `cell_fall` delay table.
    pub cell_fall: Lut2,
    /// `rise_transition` output-slew table.
    pub rise_transition: Lut2,
    /// `fall_transition` output-slew table.
    pub fall_transition: Lut2,
    /// Constraint table for [`ArcKind::Setup`]/[`ArcKind::Hold`] arcs,
    /// indexed by data slew (the clock network is ideal in this flow).
    pub constraint: Option<Lut1>,
}

impl TimingArc {
    /// Creates a delay arc whose rise and fall behaviour is identical
    /// (the synthetic PDK uses symmetric cells).
    pub fn symmetric_delay(
        from: impl Into<String>,
        to: impl Into<String>,
        kind: ArcKind,
        delay: Lut2,
        transition: Lut2,
    ) -> Self {
        TimingArc {
            from: from.into(),
            to: to.into(),
            kind,
            unate: Unate::Negative,
            cell_rise: delay.clone(),
            cell_fall: delay,
            rise_transition: transition.clone(),
            fall_transition: transition,
            constraint: None,
        }
    }

    /// Creates a setup or hold constraint arc.
    ///
    /// # Panics
    ///
    /// Panics if `kind` is not [`ArcKind::Setup`] or [`ArcKind::Hold`].
    pub fn constraint(
        from: impl Into<String>,
        to: impl Into<String>,
        kind: ArcKind,
        table: Lut1,
    ) -> Self {
        assert!(
            matches!(kind, ArcKind::Setup | ArcKind::Hold),
            "constraint arcs must be Setup or Hold"
        );
        TimingArc {
            from: from.into(),
            to: to.into(),
            kind,
            unate: Unate::NonUnate,
            cell_rise: Lut2::constant(0.0),
            cell_fall: Lut2::constant(0.0),
            rise_transition: Lut2::constant(0.0),
            fall_transition: Lut2::constant(0.0),
            constraint: Some(table),
        }
    }

    /// Whether this is a delay (propagation) arc rather than a constraint.
    pub fn is_delay_arc(&self) -> bool {
        matches!(self.kind, ArcKind::Combinational | ArcKind::ClkToQ)
    }

    /// Evaluates the arc at `(input slew, output load)` using single-corner
    /// worst-case semantics: the rise/fall table pair with the larger delay
    /// is active, and the gradient is that of the active tables (the same
    /// subgradient convention a `max` in a neural network uses).
    pub fn eval(&self, slew_in: f64, load: f64) -> ArcEval {
        let (dr, dr_dx, dr_dy) = self.cell_rise.value_grad(slew_in, load);
        let (df, df_dx, df_dy) = self.cell_fall.value_grad(slew_in, load);
        let rise_active = dr >= df;
        let (delay, d_dx, d_dy, trans) = if rise_active {
            (dr, dr_dx, dr_dy, &self.rise_transition)
        } else {
            (df, df_dx, df_dy, &self.fall_transition)
        };
        let (s, s_dx, s_dy) = trans.value_grad(slew_in, load);
        // Output slew must stay positive for downstream sqrt/LUT queries;
        // clamp with a dead gradient below the floor.
        let (s, s_dx, s_dy) = if s < MIN_SLEW { (MIN_SLEW, 0.0, 0.0) } else { (s, s_dx, s_dy) };
        ArcEval {
            delay,
            d_delay_d_slew: d_dx,
            d_delay_d_load: d_dy,
            slew: s,
            d_slew_d_slew: s_dx,
            d_slew_d_load: s_dy,
        }
    }

    /// Evaluates a setup/hold constraint at the given data slew, returning
    /// the constraint margin in ps. Returns 0 for delay arcs.
    pub fn constraint_value(&self, data_slew: f64) -> f64 {
        self.constraint.as_ref().map_or(0.0, |t| t.value(data_slew))
    }
}

/// Floor for propagated slews (ps): keeps LUT queries and the slew-merge
/// square root well conditioned.
pub(crate) const MIN_SLEW: f64 = 1e-3;

#[cfg(test)]
mod tests {
    use super::*;

    fn arc() -> TimingArc {
        // delay = 10 + 0.5*slew + 2*load; transition = 2 + 0.2*slew + 1*load
        let delay = Lut2::tabulate(vec![0.0, 50.0], vec![0.0, 10.0], |s, l| {
            10.0 + 0.5 * s + 2.0 * l
        })
        .unwrap();
        let trans = Lut2::tabulate(vec![0.0, 50.0], vec![0.0, 10.0], |s, l| {
            2.0 + 0.2 * s + 1.0 * l
        })
        .unwrap();
        TimingArc::symmetric_delay("A", "Y", ArcKind::Combinational, delay, trans)
    }

    #[test]
    fn eval_linear_model() {
        let e = arc().eval(10.0, 3.0);
        assert!((e.delay - 21.0).abs() < 1e-9);
        assert!((e.d_delay_d_slew - 0.5).abs() < 1e-9);
        assert!((e.d_delay_d_load - 2.0).abs() < 1e-9);
        assert!((e.slew - 7.0).abs() < 1e-9);
        assert!((e.d_slew_d_slew - 0.2).abs() < 1e-9);
        assert!((e.d_slew_d_load - 1.0).abs() < 1e-9);
    }

    #[test]
    fn worst_case_picks_larger_table() {
        let fast = Lut2::constant(1.0);
        let slow = Lut2::constant(5.0);
        let tr = Lut2::constant(2.0);
        let tf = Lut2::constant(3.0);
        let a = TimingArc {
            from: "A".into(),
            to: "Y".into(),
            kind: ArcKind::Combinational,
            unate: Unate::Negative,
            cell_rise: fast,
            cell_fall: slow,
            rise_transition: tr,
            fall_transition: tf,
            constraint: None,
        };
        let e = a.eval(1.0, 1.0);
        assert_eq!(e.delay, 5.0); // fall is worse
        assert_eq!(e.slew, 3.0); // fall transition table active
    }

    #[test]
    fn slew_floor() {
        let d = Lut2::constant(1.0);
        let t = Lut2::constant(-4.0); // pathological table
        let a = TimingArc::symmetric_delay("A", "Y", ArcKind::Combinational, d, t);
        let e = a.eval(1.0, 1.0);
        assert_eq!(e.slew, MIN_SLEW);
        assert_eq!(e.d_slew_d_slew, 0.0);
    }

    #[test]
    fn constraint_arc() {
        let t = Lut1::new(vec![0.0, 100.0], vec![20.0, 30.0]).unwrap();
        let a = TimingArc::constraint("CK", "D", ArcKind::Setup, t);
        assert!(!a.is_delay_arc());
        assert!((a.constraint_value(50.0) - 25.0).abs() < 1e-12);
        assert_eq!(arc().constraint_value(50.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "Setup or Hold")]
    fn constraint_with_wrong_kind_panics() {
        let _ = TimingArc::constraint("CK", "D", ArcKind::ClkToQ, Lut1::constant(1.0));
    }
}
