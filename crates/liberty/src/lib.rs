//! NLDM (non-linear delay model) cell library for differentiable timing.
//!
//! The paper's cell-delay propagation (§3.5.2) evaluates per-arc look-up
//! tables `cell_rise/fall` and `rise/fall_transition` at `(input slew, output
//! load)` query points, and needs the *gradients* of those queries for
//! backpropagation (Fig. 6). This crate provides:
//!
//! - [`Lut2`]/[`Lut1`]: differentiable bilinear/linear look-up tables with
//!   extrapolation, returning value and partial derivatives in one call.
//! - [`TimingArc`], [`LibCell`], [`Library`]: the NLDM library model,
//!   including setup/hold constraint arcs for registers and per-pin input
//!   capacitances (the sink loads of the Elmore model).
//! - [`parse`]: a Liberty-subset parser (group syntax, `values(...)` tables),
//!   and [`write()`]: a writer that round-trips with the parser.
//! - [`synth`]: a synthetic PDK generated from the canonical standard-cell
//!   table in `dtp-netlist::stdcells` — the substitute for a proprietary
//!   foundry `.lib` (see `DESIGN.md`).
//!
//! # Example
//!
//! ```
//! use dtp_liberty::{synth, ArcKind};
//!
//! let lib = synth::synthetic_pdk();
//! let inv = lib.cell("INV_X1").expect("INV_X1 exists");
//! let arc = inv.arcs().iter().find(|a| a.kind == ArcKind::Combinational).unwrap();
//! let eval = arc.eval(10.0, 2.0); // 10 ps input slew, 2 fF load
//! assert!(eval.delay > 0.0);
//! assert!(eval.d_delay_d_load > 0.0); // more load, more delay
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arc;
mod cell;
mod error;
mod library;
mod lut;
mod parser;
mod writer;

pub mod synth;

pub use arc::{ArcEval, ArcKind, TimingArc, Unate};
pub use cell::{LibCell, LibPin};
pub use error::LibertyError;
pub use library::Library;
pub use lut::{Lut1, Lut2};
pub use parser::parse;
pub use writer::write;
