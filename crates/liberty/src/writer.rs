//! Liberty-subset writer; round-trips with [`crate::parse`].

use crate::arc::{ArcKind, TimingArc, Unate};
use crate::library::Library;
use crate::lut::{Lut1, Lut2};
use dtp_netlist::PinDir;
use std::fmt::Write as _;

fn fmt_axis(axis: &[f64]) -> String {
    axis.iter()
        .map(|v| format!("{v}"))
        .collect::<Vec<_>>()
        .join(", ")
}

fn write_lut2(out: &mut String, name: &str, lut: &Lut2, indent: &str) {
    let _ = writeln!(out, "{indent}{name} (tbl) {{");
    let _ = writeln!(out, "{indent}  index_1 (\"{}\");", fmt_axis(lut.x_axis()));
    let _ = writeln!(out, "{indent}  index_2 (\"{}\");", fmt_axis(lut.y_axis()));
    let ny = lut.y_axis().len();
    let rows: Vec<String> = lut
        .values()
        .chunks(ny)
        .map(|row| format!("\"{}\"", fmt_axis(row)))
        .collect();
    let _ = writeln!(out, "{indent}  values ({});", rows.join(", "));
    let _ = writeln!(out, "{indent}}}");
}

fn write_lut1(out: &mut String, name: &str, lut: &Lut1, indent: &str) {
    let _ = writeln!(out, "{indent}{name} (tbl) {{");
    let _ = writeln!(out, "{indent}  index_1 (\"{}\");", fmt_axis(lut.axis()));
    let _ = writeln!(out, "{indent}  values (\"{}\");", fmt_axis(lut.values()));
    let _ = writeln!(out, "{indent}}}");
}

fn write_timing(out: &mut String, arc: &TimingArc, indent: &str) {
    let _ = writeln!(out, "{indent}timing () {{");
    let _ = writeln!(out, "{indent}  related_pin : \"{}\";", arc.from);
    match arc.kind {
        ArcKind::Combinational => {
            let sense = match arc.unate {
                Unate::Positive => "positive_unate",
                Unate::Negative => "negative_unate",
                Unate::NonUnate => "non_unate",
            };
            let _ = writeln!(out, "{indent}  timing_sense : {sense};");
        }
        ArcKind::ClkToQ => {
            let _ = writeln!(out, "{indent}  timing_type : rising_edge;");
        }
        ArcKind::Setup => {
            let _ = writeln!(out, "{indent}  timing_type : setup_rising;");
        }
        ArcKind::Hold => {
            let _ = writeln!(out, "{indent}  timing_type : hold_rising;");
        }
    }
    let inner = format!("{indent}  ");
    if arc.is_delay_arc() {
        write_lut2(out, "cell_rise", &arc.cell_rise, &inner);
        write_lut2(out, "cell_fall", &arc.cell_fall, &inner);
        write_lut2(out, "rise_transition", &arc.rise_transition, &inner);
        write_lut2(out, "fall_transition", &arc.fall_transition, &inner);
    } else if let Some(t) = &arc.constraint {
        write_lut1(out, "rise_constraint", t, &inner);
        write_lut1(out, "fall_constraint", t, &inner);
    }
    let _ = writeln!(out, "{indent}}}");
}

/// Serializes a [`Library`] to Liberty-subset text.
pub fn write(lib: &Library) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "library ({}) {{", lib.name);
    let _ = writeln!(out, "  time_unit : \"1ps\";");
    let _ = writeln!(out, "  capacitive_load_unit (1, ff);");
    let _ = writeln!(out, "  /* interconnect technology extension */");
    let _ = writeln!(out, "  wire_res_per_um : {};", lib.wire_res_per_um);
    let _ = writeln!(out, "  wire_cap_per_um : {};", lib.wire_cap_per_um);
    for cell in lib.cells() {
        let _ = writeln!(out, "  cell ({}) {{", cell.name());
        let _ = writeln!(out, "    area : {};", cell.area());
        for pin in cell.pins() {
            let _ = writeln!(out, "    pin ({}) {{", pin.name);
            let dir = match pin.dir {
                PinDir::Input => "input",
                PinDir::Output => "output",
            };
            let _ = writeln!(out, "      direction : {dir};");
            if pin.dir == PinDir::Input {
                let _ = writeln!(out, "      capacitance : {};", pin.capacitance);
            }
            if let Some(mc) = pin.max_capacitance {
                let _ = writeln!(out, "      max_capacitance : {mc};");
            }
            if pin.is_clock {
                let _ = writeln!(out, "      clock : true;");
            }
            for arc in cell.arcs().iter().filter(|a| a.to == pin.name) {
                write_timing(&mut out, arc, "      ");
            }
            let _ = writeln!(out, "    }}");
        }
        let _ = writeln!(out, "  }}");
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::synthetic_pdk;

    #[test]
    fn output_contains_expected_sections() {
        let text = write(&synthetic_pdk());
        assert!(text.contains("library (dtp_synth_pdk)"));
        assert!(text.contains("cell (INV_X1)"));
        assert!(text.contains("cell (DFF_X1)"));
        assert!(text.contains("timing_type : setup_rising;"));
        assert!(text.contains("cell_rise (tbl)"));
        assert!(text.contains("index_1 (\"0.5, 2, 8, 32, 128\");"));
    }

    #[test]
    fn braces_balance() {
        let text = write(&synthetic_pdk());
        let open = text.matches('{').count();
        let close = text.matches('}').count();
        assert_eq!(open, close);
    }
}
