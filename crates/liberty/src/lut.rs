//! Differentiable look-up tables (Fig. 6 of the paper).
//!
//! NLDM characterizes cell delay and output slew as `N × M` tables over
//! `(input slew, output load)`. A query performs bilinear interpolation
//! inside the grid and bilinear **extrapolation** outside it (standard
//! Liberty semantics). The gradient of a query with respect to both query
//! coordinates is piecewise constant per grid cell and is returned together
//! with the value, which is exactly what the backward pass of cell-delay
//! propagation (Eq. 12) consumes.

use crate::error::LibertyError;
use serde::{Deserialize, Serialize};

/// Locates `q` on `axis`, returning the index `i` of the cell `[a_i, a_{i+1}]`
/// used for interpolation/extrapolation (clamped to valid cells) and the
/// unclamped fractional coordinate within it.
fn locate(axis: &[f64], q: f64) -> (usize, f64) {
    let n = axis.len();
    if n == 1 {
        return (0, 0.0);
    }
    // Highest i with axis[i] <= q, clamped into [0, n-2].
    let mut i = match axis.binary_search_by(|a| a.partial_cmp(&q).expect("non-NaN axis")) {
        Ok(i) => i,
        Err(i) => i.saturating_sub(1),
    };
    i = i.min(n - 2);
    let t = (q - axis[i]) / (axis[i + 1] - axis[i]);
    (i, t)
}

fn check_axis(axis: &[f64], what: &str) -> Result<(), LibertyError> {
    if axis.is_empty() {
        return Err(LibertyError::BadTable(format!("{what} axis is empty")));
    }
    if axis.windows(2).any(|w| w[1] <= w[0]) {
        return Err(LibertyError::BadTable(format!(
            "{what} axis is not strictly increasing"
        )));
    }
    Ok(())
}

/// A one-dimensional look-up table with linear interpolation/extrapolation.
///
/// Used for setup/hold constraint arcs, which in this flow depend on data
/// slew only (the clock network is ideal).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Lut1 {
    x: Vec<f64>,
    v: Vec<f64>,
}

impl Lut1 {
    /// Creates a 1-D table.
    ///
    /// # Errors
    ///
    /// Returns [`LibertyError::BadTable`] if the axis is empty or not strictly
    /// increasing, or if `values.len() != axis.len()`.
    pub fn new(x: Vec<f64>, v: Vec<f64>) -> Result<Self, LibertyError> {
        check_axis(&x, "index_1")?;
        if v.len() != x.len() {
            return Err(LibertyError::BadTable(format!(
                "expected {} values, got {}",
                x.len(),
                v.len()
            )));
        }
        Ok(Lut1 { x, v })
    }

    /// A constant table (single sample).
    pub fn constant(c: f64) -> Self {
        Lut1 { x: vec![0.0], v: vec![c] }
    }

    /// Axis samples.
    pub fn axis(&self) -> &[f64] {
        &self.x
    }

    /// Table values.
    pub fn values(&self) -> &[f64] {
        &self.v
    }

    /// Interpolated value at `q`.
    pub fn value(&self, q: f64) -> f64 {
        self.value_grad(q).0
    }

    /// Interpolated value and derivative at `q`.
    pub fn value_grad(&self, q: f64) -> (f64, f64) {
        if self.x.len() == 1 {
            return (self.v[0], 0.0);
        }
        let (i, t) = locate(&self.x, q);
        let dv = (self.v[i + 1] - self.v[i]) / (self.x[i + 1] - self.x[i]);
        (self.v[i] + t * (self.v[i + 1] - self.v[i]), dv)
    }
}

/// A two-dimensional NLDM look-up table: `index_1` = input slew (rows),
/// `index_2` = output load (columns), row-major `values`.
///
/// # Example
///
/// ```
/// use dtp_liberty::Lut2;
///
/// # fn main() -> Result<(), dtp_liberty::LibertyError> {
/// let lut = Lut2::new(
///     vec![1.0, 10.0],       // slew axis
///     vec![1.0, 4.0],        // load axis
///     vec![1.0, 2.0,         // values, row-major
///          3.0, 4.0],
/// )?;
/// let (v, dvdx, dvdy) = lut.value_grad(5.5, 2.5);
/// assert!((v - 2.5).abs() < 1e-12);
/// assert!(dvdx > 0.0 && dvdy > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Lut2 {
    x: Vec<f64>,
    y: Vec<f64>,
    v: Vec<f64>,
}

impl Lut2 {
    /// Creates a 2-D table with `values.len() == x.len() * y.len()`.
    ///
    /// # Errors
    ///
    /// Returns [`LibertyError::BadTable`] on inconsistent axes or sizes.
    pub fn new(x: Vec<f64>, y: Vec<f64>, v: Vec<f64>) -> Result<Self, LibertyError> {
        check_axis(&x, "index_1")?;
        check_axis(&y, "index_2")?;
        if v.len() != x.len() * y.len() {
            return Err(LibertyError::BadTable(format!(
                "expected {}x{}={} values, got {}",
                x.len(),
                y.len(),
                x.len() * y.len(),
                v.len()
            )));
        }
        Ok(Lut2 { x, y, v })
    }

    /// A constant table.
    pub fn constant(c: f64) -> Self {
        Lut2 { x: vec![0.0], y: vec![0.0], v: vec![c] }
    }

    /// Builds a table by sampling `f(slew, load)` on the given axes. The
    /// synthetic PDK uses this to fill tables from analytic delay models.
    ///
    /// # Errors
    ///
    /// Returns [`LibertyError::BadTable`] on inconsistent axes.
    pub fn tabulate(
        x: Vec<f64>,
        y: Vec<f64>,
        mut f: impl FnMut(f64, f64) -> f64,
    ) -> Result<Self, LibertyError> {
        check_axis(&x, "index_1")?;
        check_axis(&y, "index_2")?;
        let mut v = Vec::with_capacity(x.len() * y.len());
        for &xi in &x {
            for &yj in &y {
                v.push(f(xi, yj));
            }
        }
        Ok(Lut2 { x, y, v })
    }

    /// `index_1` (input slew) samples.
    pub fn x_axis(&self) -> &[f64] {
        &self.x
    }

    /// `index_2` (output load) samples.
    pub fn y_axis(&self) -> &[f64] {
        &self.y
    }

    /// Row-major values.
    pub fn values(&self) -> &[f64] {
        &self.v
    }

    /// Interpolated/extrapolated value at `(x, y)`.
    #[inline]
    pub fn value(&self, x: f64, y: f64) -> f64 {
        self.value_grad(x, y).0
    }

    /// Value and partial derivatives `(v, ∂v/∂x, ∂v/∂y)` at `(x, y)`.
    ///
    /// This is the "three 1-D interpolations" scheme of the paper's Fig. 6:
    /// two interpolations along `y` at the bracketing rows, then one along
    /// `x`; the gradient falls out of the same expressions.
    pub fn value_grad(&self, x: f64, y: f64) -> (f64, f64, f64) {
        let nx = self.x.len();
        let ny = self.y.len();
        if nx == 1 && ny == 1 {
            return (self.v[0], 0.0, 0.0);
        }
        if nx == 1 {
            let (j, ty) = locate(&self.y, y);
            let (v0, v1) = (self.v[j], self.v[j + 1]);
            let dy = self.y[j + 1] - self.y[j];
            return (v0 + ty * (v1 - v0), 0.0, (v1 - v0) / dy);
        }
        if ny == 1 {
            let (i, tx) = locate(&self.x, x);
            let (v0, v1) = (self.v[i], self.v[i + 1]);
            let dx = self.x[i + 1] - self.x[i];
            return (v0 + tx * (v1 - v0), (v1 - v0) / dx, 0.0);
        }
        let (i, tx) = locate(&self.x, x);
        let (j, ty) = locate(&self.y, y);
        let v00 = self.v[i * ny + j];
        let v01 = self.v[i * ny + j + 1];
        let v10 = self.v[(i + 1) * ny + j];
        let v11 = self.v[(i + 1) * ny + j + 1];
        let dxw = self.x[i + 1] - self.x[i];
        let dyw = self.y[j + 1] - self.y[j];
        // 1-D interpolations along y at rows i and i+1 ...
        let a = v00 + ty * (v01 - v00);
        let b = v10 + ty * (v11 - v10);
        // ... then along x.
        let v = a + tx * (b - a);
        let dvdx = (b - a) / dxw;
        let dvdy = ((v01 - v00) * (1.0 - tx) + (v11 - v10) * tx) / dyw;
        (v, dvdx, dvdy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn grid() -> Lut2 {
        // v(x, y) = 2x + 3y sampled exactly; bilinear interpolation of a
        // bilinear function is exact everywhere including extrapolation.
        Lut2::tabulate(
            vec![0.0, 1.0, 4.0, 10.0],
            vec![0.0, 2.0, 8.0],
            |x, y| 2.0 * x + 3.0 * y,
        )
        .unwrap()
    }

    #[test]
    fn exact_on_linear_function() {
        let lut = grid();
        for &(x, y) in &[(0.5, 1.0), (3.0, 7.0), (-2.0, -1.0), (20.0, 30.0), (10.0, 8.0)] {
            let (v, gx, gy) = lut.value_grad(x, y);
            assert!((v - (2.0 * x + 3.0 * y)).abs() < 1e-9, "v({x},{y}) = {v}");
            assert!((gx - 2.0).abs() < 1e-9);
            assert!((gy - 3.0).abs() < 1e-9);
        }
    }

    #[test]
    fn matches_corner_values() {
        let lut = Lut2::new(vec![1.0, 2.0], vec![10.0, 20.0], vec![5.0, 6.0, 7.0, 8.0]).unwrap();
        assert_eq!(lut.value(1.0, 10.0), 5.0);
        assert_eq!(lut.value(1.0, 20.0), 6.0);
        assert_eq!(lut.value(2.0, 10.0), 7.0);
        assert_eq!(lut.value(2.0, 20.0), 8.0);
    }

    #[test]
    fn rejects_bad_tables() {
        assert!(Lut2::new(vec![], vec![1.0], vec![]).is_err());
        assert!(Lut2::new(vec![1.0, 1.0], vec![1.0], vec![1.0, 2.0]).is_err());
        assert!(Lut2::new(vec![2.0, 1.0], vec![1.0], vec![1.0, 2.0]).is_err());
        assert!(Lut2::new(vec![1.0, 2.0], vec![1.0], vec![1.0]).is_err());
        assert!(Lut1::new(vec![1.0, 0.5], vec![0.0, 0.0]).is_err());
        assert!(Lut1::new(vec![1.0], vec![]).is_err());
    }

    #[test]
    fn constant_tables() {
        let l2 = Lut2::constant(42.0);
        assert_eq!(l2.value_grad(123.0, -5.0), (42.0, 0.0, 0.0));
        let l1 = Lut1::constant(7.0);
        assert_eq!(l1.value_grad(1e9), (7.0, 0.0));
    }

    #[test]
    fn lut1_interp_and_extrap() {
        let l = Lut1::new(vec![0.0, 10.0], vec![0.0, 100.0]).unwrap();
        assert_eq!(l.value(5.0), 50.0);
        assert_eq!(l.value(-5.0), -50.0); // extrapolation
        assert_eq!(l.value(20.0), 200.0);
        assert_eq!(l.value_grad(3.0).1, 10.0);
    }

    #[test]
    fn degenerate_single_row_or_column() {
        let row = Lut2::new(vec![1.0], vec![0.0, 1.0], vec![3.0, 5.0]).unwrap();
        let (v, gx, gy) = row.value_grad(99.0, 0.5);
        assert_eq!((v, gx, gy), (4.0, 0.0, 2.0));
        let col = Lut2::new(vec![0.0, 1.0], vec![1.0], vec![3.0, 5.0]).unwrap();
        let (v, gx, gy) = col.value_grad(0.5, 99.0);
        assert_eq!((v, gx, gy), (4.0, 2.0, 0.0));
    }

    /// Central finite difference of a scalar function.
    fn fd(mut f: impl FnMut(f64) -> f64, x: f64, h: f64) -> f64 {
        (f(x + h) - f(x - h)) / (2.0 * h)
    }

    proptest! {
        #[test]
        fn gradient_matches_finite_difference(
            x in -5.0..20.0f64,
            y in -5.0..20.0f64,
        ) {
            // A curved (quadratic) truth sampled on a grid: interpolation is
            // not exact, but its *own* gradient must match its own finite
            // difference away from grid lines.
            let lut = Lut2::tabulate(
                vec![0.0, 2.0, 5.0, 9.0, 14.0],
                vec![0.0, 3.0, 7.0, 12.0],
                |x, y| 0.5 * x * x + 0.1 * x * y + y,
            ).unwrap();
            let h = 1e-7;
            // Skip queries within h of a grid line (gradient is discontinuous there).
            let near = |axis: &[f64], q: f64| axis.iter().any(|&a| (a - q).abs() < 1e-4);
            prop_assume!(!near(lut.x_axis(), x) && !near(lut.y_axis(), y));
            let (_, gx, gy) = lut.value_grad(x, y);
            let nx = fd(|t| lut.value(t, y), x, h);
            let ny = fd(|t| lut.value(x, t), y, h);
            prop_assert!((gx - nx).abs() < 1e-4, "gx={gx} fd={nx}");
            prop_assert!((gy - ny).abs() < 1e-4, "gy={gy} fd={ny}");
        }

        #[test]
        fn interpolation_within_value_bounds_inside_grid(
            x in 0.0..14.0f64,
            y in 0.0..12.0f64,
        ) {
            let lut = Lut2::tabulate(
                vec![0.0, 2.0, 5.0, 9.0, 14.0],
                vec![0.0, 3.0, 7.0, 12.0],
                |x, y| x.sin() + y.cos(),
            ).unwrap();
            let v = lut.value(x, y);
            let lo = lut.values().iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = lut.values().iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
        }
    }
}
