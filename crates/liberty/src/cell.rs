//! Library cells and pins.

use crate::arc::{ArcKind, TimingArc};
use dtp_netlist::PinDir;
use serde::{Deserialize, Serialize};

/// The electrical view of one library pin.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LibPin {
    /// Pin name (matches the structural class pin name).
    pub name: String,
    /// Direction.
    pub dir: PinDir,
    /// Input capacitance in fF (sink load contribution for Elmore).
    pub capacitance: f64,
    /// Maximum load the pin may drive (output pins; advisory).
    pub max_capacitance: Option<f64>,
    /// Whether this is a clock pin.
    pub is_clock: bool,
}

/// The electrical/timing view of one library cell.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LibCell {
    name: String,
    area: f64,
    pins: Vec<LibPin>,
    arcs: Vec<TimingArc>,
}

impl LibCell {
    /// Creates a cell with no pins or arcs.
    pub fn new(name: impl Into<String>, area: f64) -> Self {
        LibCell { name: name.into(), area, pins: Vec::new(), arcs: Vec::new() }
    }

    /// Adds a pin (builder style).
    pub fn with_pin(mut self, pin: LibPin) -> Self {
        self.pins.push(pin);
        self
    }

    /// Adds a timing arc (builder style).
    pub fn with_arc(mut self, arc: TimingArc) -> Self {
        self.arcs.push(arc);
        self
    }

    /// Cell name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Cell area attribute.
    pub fn area(&self) -> f64 {
        self.area
    }

    /// All pins.
    pub fn pins(&self) -> &[LibPin] {
        &self.pins
    }

    /// All timing arcs.
    pub fn arcs(&self) -> &[TimingArc] {
        &self.arcs
    }

    /// Finds a pin by name.
    pub fn pin(&self, name: &str) -> Option<&LibPin> {
        self.pins.iter().find(|p| p.name == name)
    }

    /// Input capacitance of `pin`, or 0 if unknown (e.g. port pseudo-pins).
    pub fn pin_cap(&self, pin: &str) -> f64 {
        self.pin(pin).map_or(0.0, |p| p.capacitance)
    }

    /// Delay arcs ending at output pin `to`.
    pub fn delay_arcs_to<'a>(&'a self, to: &'a str) -> impl Iterator<Item = &'a TimingArc> + 'a {
        self.arcs
            .iter()
            .filter(move |a| a.is_delay_arc() && a.to == to)
    }

    /// Constraint (setup/hold) arcs ending at data pin `to`.
    pub fn constraint_arcs_to<'a>(
        &'a self,
        to: &'a str,
    ) -> impl Iterator<Item = &'a TimingArc> + 'a {
        self.arcs
            .iter()
            .filter(move |a| !a.is_delay_arc() && a.to == to)
    }

    /// The setup constraint arc for data pin `to`, if any.
    pub fn setup_arc(&self, to: &str) -> Option<&TimingArc> {
        self.arcs
            .iter()
            .find(|a| a.kind == ArcKind::Setup && a.to == to)
    }

    /// The hold constraint arc for data pin `to`, if any.
    pub fn hold_arc(&self, to: &str) -> Option<&TimingArc> {
        self.arcs
            .iter()
            .find(|a| a.kind == ArcKind::Hold && a.to == to)
    }

    /// Whether the cell has a clock pin (i.e. is sequential).
    pub fn is_sequential(&self) -> bool {
        self.pins.iter().any(|p| p.is_clock)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lut::{Lut1, Lut2};

    fn dff() -> LibCell {
        LibCell::new("DFF_X1", 9.0)
            .with_pin(LibPin { name: "D".into(), dir: PinDir::Input, capacitance: 1.5, max_capacitance: None, is_clock: false })
            .with_pin(LibPin { name: "CK".into(), dir: PinDir::Input, capacitance: 1.0, max_capacitance: None, is_clock: true })
            .with_pin(LibPin { name: "Q".into(), dir: PinDir::Output, capacitance: 0.0, max_capacitance: Some(60.0), is_clock: false })
            .with_arc(TimingArc::symmetric_delay("CK", "Q", ArcKind::ClkToQ, Lut2::constant(30.0), Lut2::constant(8.0)))
            .with_arc(TimingArc::constraint("CK", "D", ArcKind::Setup, Lut1::constant(15.0)))
            .with_arc(TimingArc::constraint("CK", "D", ArcKind::Hold, Lut1::constant(3.0)))
    }

    #[test]
    fn pin_and_arc_lookup() {
        let c = dff();
        assert!(c.is_sequential());
        assert_eq!(c.pin_cap("D"), 1.5);
        assert_eq!(c.pin_cap("missing"), 0.0);
        assert_eq!(c.delay_arcs_to("Q").count(), 1);
        assert_eq!(c.setup_arc("D").unwrap().constraint_value(1.0), 15.0);
        assert_eq!(c.hold_arc("D").unwrap().constraint_value(1.0), 3.0);
        assert!(c.setup_arc("Q").is_none());
    }

    #[test]
    fn combinational_cell() {
        let c = LibCell::new("INV_X1", 2.0)
            .with_pin(LibPin { name: "A".into(), dir: PinDir::Input, capacitance: 1.0, max_capacitance: None, is_clock: false })
            .with_pin(LibPin { name: "Y".into(), dir: PinDir::Output, capacitance: 0.0, max_capacitance: None, is_clock: false })
            .with_arc(TimingArc::symmetric_delay("A", "Y", ArcKind::Combinational, Lut2::constant(10.0), Lut2::constant(5.0)));
        assert!(!c.is_sequential());
        assert_eq!(c.area(), 2.0);
        assert_eq!(c.delay_arcs_to("Y").count(), 1);
        assert_eq!(c.constraint_arcs_to("A").count(), 0);
    }
}
