//! The top-level library container.

use crate::cell::LibCell;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// An NLDM cell library plus the interconnect RC technology parameters that a
/// real flow would read from a technology file. Times are in ps, capacitances
/// in fF, resistances in Ω (so Ω·fF = ps·10⁻³; the units are chosen so that
/// `wire_res_per_um · wire_cap_per_um · length²` comes out in ps).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Library {
    /// Library name.
    pub name: String,
    /// Wire resistance per micron (kΩ/µm in these units; see struct docs).
    pub wire_res_per_um: f64,
    /// Wire capacitance per micron (fF/µm).
    pub wire_cap_per_um: f64,
    cells: Vec<LibCell>,
    index: HashMap<String, usize>,
}

impl Library {
    /// Creates an empty library with default interconnect parameters.
    pub fn new(name: impl Into<String>) -> Self {
        Library {
            name: name.into(),
            // Chosen so that at the synthetic die sizes (~100 µm across) a
            // typical net's wire delay is comparable to — but does not
            // completely dominate — a gate delay, the regime in which
            // timing-driven *placement* has leverage.
            wire_res_per_um: 0.1,
            wire_cap_per_um: 0.2,
            cells: Vec::new(),
            index: HashMap::new(),
        }
    }

    /// Adds a cell, replacing any cell of the same name.
    pub fn add_cell(&mut self, cell: LibCell) {
        if let Some(&i) = self.index.get(cell.name()) {
            self.cells[i] = cell;
        } else {
            self.index.insert(cell.name().to_owned(), self.cells.len());
            self.cells.push(cell);
        }
    }

    /// Looks up a cell by name.
    pub fn cell(&self, name: &str) -> Option<&LibCell> {
        self.index.get(name).map(|&i| &self.cells[i])
    }

    /// All cells in insertion order.
    pub fn cells(&self) -> &[LibCell] {
        &self.cells
    }

    /// Number of cells.
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup() {
        let mut lib = Library::new("test");
        lib.add_cell(LibCell::new("INV_X1", 1.0));
        lib.add_cell(LibCell::new("BUF_X1", 2.0));
        assert_eq!(lib.num_cells(), 2);
        assert_eq!(lib.cell("INV_X1").unwrap().area(), 1.0);
        assert!(lib.cell("NOPE").is_none());
    }

    #[test]
    fn replace_same_name() {
        let mut lib = Library::new("test");
        lib.add_cell(LibCell::new("INV_X1", 1.0));
        lib.add_cell(LibCell::new("INV_X1", 3.0));
        assert_eq!(lib.num_cells(), 1);
        assert_eq!(lib.cell("INV_X1").unwrap().area(), 3.0);
    }
}
