//! Liberty-subset parser.
//!
//! Liberty is a nested *group* syntax:
//!
//! ```text
//! group_name (arg1, arg2) {
//!     simple_attr : value;
//!     complex_attr ("a, b", "c, d");
//!     nested_group (args) { ... }
//! }
//! ```
//!
//! The parser is two-phase: a generic tokenizer + group-tree parser (which
//! accepts arbitrary Liberty constructs), then an extraction phase that pulls
//! out the NLDM subset this flow needs (cells, pins, capacitances, delay /
//! transition / constraint tables). Unknown groups and attributes are
//! silently skipped — real `.lib` files are full of constructs irrelevant to
//! placement timing.

use crate::arc::{ArcKind, TimingArc, Unate};
use crate::cell::{LibCell, LibPin};
use crate::error::LibertyError;
use crate::library::Library;
use crate::lut::{Lut1, Lut2};
use dtp_netlist::PinDir;

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    Word(String),
    Str(String),
    LParen,
    RParen,
    LBrace,
    RBrace,
    Colon,
    Semi,
    Comma,
}

struct Lexer<'a> {
    src: &'a str,
    pos: usize,
    line: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer { src, pos: 0, line: 1 }
    }

    fn err(&self, message: impl Into<String>) -> LibertyError {
        LibertyError::Parse { line: self.line, message: message.into() }
    }

    fn next_tok(&mut self) -> Result<Option<(Tok, usize)>, LibertyError> {
        let bytes = self.src.as_bytes();
        loop {
            // Skip whitespace and comments.
            while self.pos < bytes.len() {
                match bytes[self.pos] {
                    b'\n' => {
                        self.line += 1;
                        self.pos += 1;
                    }
                    b' ' | b'\t' | b'\r' => self.pos += 1,
                    b'\\' => self.pos += 1, // line continuations
                    _ => break,
                }
            }
            if self.pos + 1 < bytes.len() && &self.src[self.pos..self.pos + 2] == "/*" {
                let end = self.src[self.pos..]
                    .find("*/")
                    .ok_or_else(|| self.err("unterminated comment"))?;
                self.line += self.src[self.pos..self.pos + end].matches('\n').count();
                self.pos += end + 2;
                continue;
            }
            if self.pos + 1 < bytes.len() && &self.src[self.pos..self.pos + 2] == "//" {
                while self.pos < bytes.len() && bytes[self.pos] != b'\n' {
                    self.pos += 1;
                }
                continue;
            }
            break;
        }
        if self.pos >= bytes.len() {
            return Ok(None);
        }
        let line = self.line;
        let tok = match bytes[self.pos] {
            b'(' => {
                self.pos += 1;
                Tok::LParen
            }
            b')' => {
                self.pos += 1;
                Tok::RParen
            }
            b'{' => {
                self.pos += 1;
                Tok::LBrace
            }
            b'}' => {
                self.pos += 1;
                Tok::RBrace
            }
            b':' => {
                self.pos += 1;
                Tok::Colon
            }
            b';' => {
                self.pos += 1;
                Tok::Semi
            }
            b',' => {
                self.pos += 1;
                Tok::Comma
            }
            b'"' => {
                let start = self.pos + 1;
                let rel = self.src[start..]
                    .find('"')
                    .ok_or_else(|| self.err("unterminated string"))?;
                let s = self.src[start..start + rel].to_owned();
                self.line += s.matches('\n').count();
                self.pos = start + rel + 1;
                Tok::Str(s)
            }
            _ => {
                let start = self.pos;
                while self.pos < bytes.len()
                    && !matches!(bytes[self.pos], b'(' | b')' | b'{' | b'}' | b':' | b';' | b',' | b'"' | b' ' | b'\t' | b'\r' | b'\n')
                {
                    self.pos += 1;
                }
                if start == self.pos {
                    return Err(self.err(format!(
                        "unexpected character `{}`",
                        &self.src[self.pos..self.pos + 1]
                    )));
                }
                Tok::Word(self.src[start..self.pos].to_owned())
            }
        };
        Ok(Some((tok, line)))
    }
}

fn tokenize(src: &str) -> Result<Vec<(Tok, usize)>, LibertyError> {
    let mut lx = Lexer::new(src);
    let mut out = Vec::new();
    while let Some(t) = lx.next_tok()? {
        out.push(t);
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Generic group tree
// ---------------------------------------------------------------------------

/// A parsed attribute value.
#[derive(Clone, Debug, PartialEq)]
enum AttrValue {
    /// `name : value ;`
    Simple(String),
    /// `name (v1, v2, ...) ;`
    Complex(Vec<String>),
}

/// A generic Liberty group.
#[derive(Clone, Debug, Default)]
struct Group {
    name: String,
    args: Vec<String>,
    attrs: Vec<(String, AttrValue)>,
    groups: Vec<Group>,
}

impl Group {
    fn attr(&self, name: &str) -> Option<&AttrValue> {
        self.attrs.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    fn simple(&self, name: &str) -> Option<&str> {
        match self.attr(name) {
            Some(AttrValue::Simple(s)) => Some(s.as_str()),
            _ => None,
        }
    }

    fn complex(&self, name: &str) -> Option<&[String]> {
        match self.attr(name) {
            Some(AttrValue::Complex(v)) => Some(v.as_slice()),
            _ => None,
        }
    }

    fn children<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Group> {
        self.groups.iter().filter(move |g| g.name == name)
    }

    fn child<'a>(&'a self, name: &'a str) -> Option<&'a Group> {
        self.children(name).next()
    }
}

struct Parser {
    toks: Vec<(Tok, usize)>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn line(&self) -> usize {
        self.toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map_or(0, |(_, l)| *l)
    }

    fn err(&self, message: impl Into<String>) -> LibertyError {
        LibertyError::Parse { line: self.line(), message: message.into() }
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(t, _)| t.clone());
        self.pos += 1;
        t
    }

    fn expect(&mut self, want: Tok) -> Result<(), LibertyError> {
        match self.bump() {
            Some(t) if t == want => Ok(()),
            other => Err(self.err(format!("expected {want:?}, found {other:?}"))),
        }
    }

    /// Parses `( v1, v2, ... )` into strings.
    fn parse_args(&mut self) -> Result<Vec<String>, LibertyError> {
        self.expect(Tok::LParen)?;
        let mut args = Vec::new();
        loop {
            match self.bump() {
                Some(Tok::RParen) => break,
                Some(Tok::Comma) => {}
                Some(Tok::Word(w)) => args.push(w),
                Some(Tok::Str(s)) => args.push(s),
                other => return Err(self.err(format!("unexpected {other:?} in argument list"))),
            }
        }
        Ok(args)
    }

    /// Parses the body of a group after its `{`.
    fn parse_body(&mut self, group: &mut Group) -> Result<(), LibertyError> {
        loop {
            match self.bump() {
                Some(Tok::RBrace) => return Ok(()),
                Some(Tok::Word(name)) => match self.peek() {
                    Some(Tok::Colon) => {
                        self.bump();
                        let mut value = String::new();
                        loop {
                            match self.bump() {
                                Some(Tok::Semi) => break,
                                // `}` also terminates a (sloppy) attribute.
                                Some(Tok::RBrace) => {
                                    self.pos -= 1;
                                    break;
                                }
                                Some(Tok::Word(w)) => {
                                    if !value.is_empty() {
                                        value.push(' ');
                                    }
                                    value.push_str(&w);
                                }
                                Some(Tok::Str(s)) => value.push_str(&s),
                                Some(Tok::Comma) => value.push(','),
                                other => {
                                    return Err(
                                        self.err(format!("unexpected {other:?} in attribute"))
                                    )
                                }
                            }
                        }
                        group.attrs.push((name, AttrValue::Simple(value)));
                    }
                    Some(Tok::LParen) => {
                        let args = self.parse_args()?;
                        match self.peek() {
                            Some(Tok::LBrace) => {
                                self.bump();
                                let mut child = Group { name, args, ..Group::default() };
                                self.parse_body(&mut child)?;
                                group.groups.push(child);
                            }
                            _ => {
                                // Complex attribute; optional semicolon.
                                if self.peek() == Some(&Tok::Semi) {
                                    self.bump();
                                }
                                group.attrs.push((name, AttrValue::Complex(args)));
                            }
                        }
                    }
                    other => return Err(self.err(format!("unexpected {other:?} after `{name}`"))),
                },
                Some(Tok::Semi) => {} // stray semicolons
                other => return Err(self.err(format!("unexpected {other:?} in group body"))),
            }
        }
    }

    fn parse_top(&mut self) -> Result<Group, LibertyError> {
        match self.bump() {
            Some(Tok::Word(w)) if w == "library" => {}
            other => return Err(self.err(format!("expected `library`, found {other:?}"))),
        }
        let args = self.parse_args()?;
        self.expect(Tok::LBrace)?;
        let mut g = Group { name: "library".into(), args, ..Group::default() };
        self.parse_body(&mut g)?;
        Ok(g)
    }
}

// ---------------------------------------------------------------------------
// Extraction of the NLDM subset
// ---------------------------------------------------------------------------

fn parse_numbers(parts: &[String]) -> Result<Vec<f64>, LibertyError> {
    let mut out = Vec::new();
    for p in parts {
        for tok in p.split(',') {
            let t = tok.trim();
            if t.is_empty() {
                continue;
            }
            out.push(t.parse::<f64>().map_err(|_| LibertyError::BadTable(format!("bad number `{t}`")))?);
        }
    }
    Ok(out)
}

fn extract_lut2(g: &Group) -> Result<Lut2, LibertyError> {
    let x = parse_numbers(g.complex("index_1").unwrap_or(&[]))?;
    let y = parse_numbers(g.complex("index_2").unwrap_or(&[]))?;
    let v = parse_numbers(g.complex("values").ok_or_else(|| {
        LibertyError::BadTable(format!("table `{}` has no values", g.name))
    })?)?;
    if x.is_empty() && y.is_empty() && v.len() == 1 {
        return Ok(Lut2::constant(v[0]));
    }
    Lut2::new(x, y, v)
}

fn extract_lut1(g: &Group) -> Result<Lut1, LibertyError> {
    let x = parse_numbers(g.complex("index_1").unwrap_or(&[]))?;
    let v = parse_numbers(g.complex("values").ok_or_else(|| {
        LibertyError::BadTable(format!("table `{}` has no values", g.name))
    })?)?;
    if x.is_empty() && v.len() == 1 {
        return Ok(Lut1::constant(v[0]));
    }
    Lut1::new(x, v)
}

fn extract_timing(timing: &Group, to_pin: &str) -> Result<Option<TimingArc>, LibertyError> {
    let from = timing.simple("related_pin").unwrap_or("").to_owned();
    if from.is_empty() {
        return Ok(None);
    }
    let ttype = timing.simple("timing_type").unwrap_or("combinational");
    let kind = if ttype.starts_with("setup") {
        ArcKind::Setup
    } else if ttype.starts_with("hold") {
        ArcKind::Hold
    } else if ttype.contains("edge") {
        ArcKind::ClkToQ
    } else {
        ArcKind::Combinational
    };
    match kind {
        ArcKind::Setup | ArcKind::Hold => {
            let table = timing
                .child("rise_constraint")
                .or_else(|| timing.child("fall_constraint"))
                .map(extract_lut1)
                .transpose()?
                .unwrap_or_else(|| Lut1::constant(0.0));
            Ok(Some(TimingArc::constraint(from, to_pin, kind, table)))
        }
        _ => {
            let unate = match timing.simple("timing_sense") {
                Some("positive_unate") => Unate::Positive,
                Some("non_unate") => Unate::NonUnate,
                _ => Unate::Negative,
            };
            let get = |name: &str, fallback: Option<&Lut2>| -> Result<Lut2, LibertyError> {
                match timing.child(name) {
                    Some(g) => extract_lut2(g),
                    None => Ok(fallback.cloned().unwrap_or_else(|| Lut2::constant(0.0))),
                }
            };
            let cell_rise = get("cell_rise", None)?;
            let cell_fall = get("cell_fall", Some(&cell_rise))?;
            let rise_transition = get("rise_transition", None)?;
            let fall_transition = get("fall_transition", Some(&rise_transition))?;
            Ok(Some(TimingArc {
                from,
                to: to_pin.to_owned(),
                kind,
                unate,
                cell_rise,
                cell_fall,
                rise_transition,
                fall_transition,
                constraint: None,
            }))
        }
    }
}

/// Parses Liberty-subset text into a [`Library`].
///
/// # Errors
///
/// Returns [`LibertyError::Parse`] for syntax errors and
/// [`LibertyError::BadTable`] for malformed tables. Groups and attributes
/// outside the NLDM subset are ignored.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), dtp_liberty::LibertyError> {
/// let lib = dtp_liberty::parse(r#"
///     library (demo) {
///       cell (INV) {
///         area : 1.0;
///         pin (A) { direction : input; capacitance : 1.5; }
///         pin (Y) {
///           direction : output;
///           timing () {
///             related_pin : "A";
///             cell_rise (t) { values ("3.0"); }
///             rise_transition (t) { values ("1.0"); }
///           }
///         }
///       }
///     }
/// "#)?;
/// assert_eq!(lib.cell("INV").unwrap().pin_cap("A"), 1.5);
/// # Ok(())
/// # }
/// ```
pub fn parse(text: &str) -> Result<Library, LibertyError> {
    let toks = tokenize(text)?;
    let mut p = Parser { toks, pos: 0 };
    let top = p.parse_top()?;
    let mut lib = Library::new(top.args.first().cloned().unwrap_or_else(|| "lib".into()));
    if let Some(v) = top.simple("wire_res_per_um").and_then(|s| s.parse().ok()) {
        lib.wire_res_per_um = v;
    }
    if let Some(v) = top.simple("wire_cap_per_um").and_then(|s| s.parse().ok()) {
        lib.wire_cap_per_um = v;
    }
    for cg in top.children("cell") {
        let name = cg.args.first().cloned().unwrap_or_default();
        let area = cg.simple("area").and_then(|s| s.parse().ok()).unwrap_or(0.0);
        let mut cell = LibCell::new(name, area);
        for pg in cg.children("pin") {
            let pname = pg.args.first().cloned().unwrap_or_default();
            let dir = match pg.simple("direction") {
                Some("output") => PinDir::Output,
                _ => PinDir::Input,
            };
            let cap = pg.simple("capacitance").and_then(|s| s.parse().ok()).unwrap_or(0.0);
            let max_cap = pg.simple("max_capacitance").and_then(|s| s.parse().ok());
            let is_clock = pg.simple("clock").map(|s| s == "true").unwrap_or(false);
            cell = cell.with_pin(LibPin {
                name: pname.clone(),
                dir,
                capacitance: cap,
                max_capacitance: max_cap,
                is_clock,
            });
            for tg in pg.children("timing") {
                if let Some(arc) = extract_timing(tg, &pname)? {
                    cell = cell.with_arc(arc);
                }
            }
        }
        lib.add_cell(cell);
    }
    Ok(lib)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::synthetic_pdk;
    use crate::writer::write;

    #[test]
    fn roundtrip_synthetic_pdk() {
        let lib = synthetic_pdk();
        let text = write(&lib);
        let back = parse(&text).unwrap();
        assert_eq!(back.num_cells(), lib.num_cells());
        assert_eq!(back.wire_res_per_um, lib.wire_res_per_um);
        assert_eq!(back.wire_cap_per_um, lib.wire_cap_per_um);
        for cell in lib.cells() {
            let b = back.cell(cell.name()).unwrap();
            assert_eq!(b.pins().len(), cell.pins().len(), "{}", cell.name());
            assert_eq!(b.arcs().len(), cell.arcs().len(), "{}", cell.name());
            // Spot-check: identical arc evaluation. The writer groups arcs by
            // pin, so match by (kind, from, to) rather than position.
            for a1 in cell.arcs() {
                let a2 = b
                    .arcs()
                    .iter()
                    .find(|a| a.kind == a1.kind && a.from == a1.from && a.to == a1.to)
                    .unwrap_or_else(|| panic!("missing arc {:?} {}->{}", a1.kind, a1.from, a1.to));
                if a1.is_delay_arc() {
                    let e1 = a1.eval(7.0, 11.0);
                    let e2 = a2.eval(7.0, 11.0);
                    assert!((e1.delay - e2.delay).abs() < 1e-9);
                    assert!((e1.slew - e2.slew).abs() < 1e-9);
                } else {
                    assert!(
                        (a1.constraint_value(5.0) - a2.constraint_value(5.0)).abs() < 1e-9
                    );
                }
            }
        }
    }

    #[test]
    fn comments_and_unknowns_are_skipped() {
        let lib = parse(
            "/* header */\nlibrary (x) {\n// line comment\n  operating_conditions (tt) { process : 1; }\n  cell (C) { area : 1; }\n}\n",
        )
        .unwrap();
        assert_eq!(lib.name, "x");
        assert_eq!(lib.num_cells(), 1);
    }

    #[test]
    fn syntax_errors_have_line_numbers() {
        let err = parse("library (x) {\n  cell (C) {\n    area ;\n  }\n}").unwrap_err();
        match err {
            LibertyError::Parse { line, .. } => assert!(line >= 3, "line = {line}"),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(parse("library (x) { cell (\"C) { } }").is_err());
    }

    #[test]
    fn missing_library_keyword_is_error() {
        assert!(parse("cell (C) { }").is_err());
    }

    #[test]
    fn bad_table_reported() {
        let r = parse(
            "library (x) { cell (C) { pin (Y) { direction : output; timing () { related_pin : \"A\"; cell_rise (t) { index_1 (\"1, 2\"); index_2 (\"1\"); values (\"1\"); } } } } }",
        );
        assert!(matches!(r, Err(LibertyError::BadTable(_))));
    }
}
