//! Property-based tests of the NLDM library: physical sanity of every arc in
//! the synthetic PDK across the full query range.

use dtp_liberty::synth::synthetic_pdk;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn delay_and_slew_monotone_in_load(
        slew in 0.5f64..128.0,
        l1 in 0.5f64..64.0,
        dl in 0.1f64..64.0,
    ) {
        let lib = synthetic_pdk();
        for cell in lib.cells() {
            for arc in cell.arcs().iter().filter(|a| a.is_delay_arc()) {
                let a = arc.eval(slew, l1);
                let b = arc.eval(slew, l1 + dl);
                prop_assert!(b.delay >= a.delay - 1e-9, "{}: delay not monotone", cell.name());
                prop_assert!(b.slew >= a.slew - 1e-9, "{}: slew not monotone", cell.name());
            }
        }
    }

    #[test]
    fn delay_monotone_in_input_slew(
        s1 in 0.5f64..100.0,
        ds in 0.1f64..28.0,
        load in 0.5f64..128.0,
    ) {
        let lib = synthetic_pdk();
        for cell in lib.cells() {
            for arc in cell.arcs().iter().filter(|a| a.is_delay_arc()) {
                let a = arc.eval(s1, load);
                let b = arc.eval(s1 + ds, load);
                prop_assert!(b.delay >= a.delay - 1e-9);
            }
        }
    }

    #[test]
    fn gradients_match_finite_difference_everywhere(
        slew in 1.0f64..120.0,
        load in 1.0f64..120.0,
    ) {
        let lib = synthetic_pdk();
        let h = 1e-6;
        for cell in lib.cells().iter().take(4) {
            for arc in cell.arcs().iter().filter(|a| a.is_delay_arc()) {
                let e = arc.eval(slew, load);
                let num_ds = (arc.eval(slew + h, load).delay - arc.eval(slew - h, load).delay) / (2.0 * h);
                let num_dl = (arc.eval(slew, load + h).delay - arc.eval(slew, load - h).delay) / (2.0 * h);
                prop_assert!((e.d_delay_d_slew - num_ds).abs() < 1e-4);
                prop_assert!((e.d_delay_d_load - num_dl).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn constraints_positive_and_monotone(slew in 0.5f64..128.0, ds in 0.1f64..64.0) {
        let lib = synthetic_pdk();
        for cell in lib.cells().iter().filter(|c| c.is_sequential()) {
            let setup = cell.setup_arc("D").expect("registers have setup arcs");
            let hold = cell.hold_arc("D").expect("registers have hold arcs");
            prop_assert!(setup.constraint_value(slew) > 0.0);
            prop_assert!(hold.constraint_value(slew) > 0.0);
            prop_assert!(setup.constraint_value(slew + ds) >= setup.constraint_value(slew));
        }
    }

    #[test]
    fn roundtrip_preserves_arbitrary_queries(slew in 0.5f64..128.0, load in 0.5f64..128.0) {
        let lib = synthetic_pdk();
        let back = dtp_liberty::parse(&dtp_liberty::write(&lib)).expect("roundtrip parses");
        for cell in lib.cells().iter().take(3) {
            let b = back.cell(cell.name()).expect("cell survives");
            for (arc, barc) in cell
                .arcs()
                .iter()
                .filter(|a| a.is_delay_arc())
                .zip(b.arcs().iter().filter(|a| a.is_delay_arc()))
            {
                let e1 = arc.eval(slew, load);
                let e2 = barc.eval(slew, load);
                prop_assert!((e1.delay - e2.delay).abs() < 1e-9);
                prop_assert!((e1.slew - e2.slew).abs() < 1e-9);
            }
        }
    }
}
