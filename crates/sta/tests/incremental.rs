//! Equivalence tests for incremental timing analysis: after any set of cell
//! moves, `analyze_incremental` must match a from-scratch analysis exactly.

use dtp_liberty::synth::synthetic_pdk;
use dtp_netlist::generate::{generate, GeneratorConfig};
use dtp_netlist::{CellId, Point};
use dtp_rsmt::{build_forest, build_forest_with, ForestScratch, TableConfig};
use dtp_sta::Timer;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn assert_analyses_equal(a: &dtp_sta::Analysis, b: &dtp_sta::Analysis) {
    for i in 0..a.at.len() {
        assert!(
            (a.at[i] - b.at[i]).abs() < 1e-9,
            "at[{i}]: {} vs {}",
            a.at[i],
            b.at[i]
        );
        assert!((a.slew[i] - b.slew[i]).abs() < 1e-9);
        assert!((a.at_early[i] - b.at_early[i]).abs() < 1e-9);
        let (sa, sb) = (a.slack[i], b.slack[i]);
        assert!(sa == sb || (sa - sb).abs() < 1e-9, "slack[{i}]: {sa} vs {sb}");
        let (ra, rb) = (a.rat[i], b.rat[i]);
        assert!(ra == rb || (ra - rb).abs() < 1e-9, "rat[{i}]: {ra} vs {rb}");
    }
    assert!((a.wns() - b.wns()).abs() < 1e-9);
    assert!((a.tns() - b.tns()).abs() < 1e-9);
}

fn run_case(cells: usize, moves: usize, seed: u64, smoothed: bool) {
    let mut design = generate(&GeneratorConfig::named("inc", cells)).expect("generator");
    let lib = synthetic_pdk();
    let timer = Timer::new(&design, &lib).expect("timer builds");
    let mut forest = build_forest(&design.netlist);
    let prev = if smoothed {
        timer.analyze_smoothed(&design.netlist, &forest)
    } else {
        timer.analyze(&design.netlist, &forest)
    };

    // Move a random subset of cells.
    let mut rng = StdRng::seed_from_u64(seed);
    let movable: Vec<CellId> = design.netlist.movable_cells().collect();
    let mut moved = Vec::new();
    for _ in 0..moves {
        let c = movable[rng.gen_range(0..movable.len())];
        let pos = design.netlist.cell(c).pos();
        design.netlist.set_cell_pos(
            c,
            Point::new(pos.x + rng.gen_range(-3.0..3.0), pos.y + rng.gen_range(-3.0..3.0)),
        );
        moved.push(c);
    }
    forest.update_positions(&design.netlist);

    let incr = timer.analyze_incremental(&design.netlist, &forest, &prev, &moved, true);
    let full = if smoothed {
        timer.analyze_smoothed(&design.netlist, &forest)
    } else {
        timer.analyze(&design.netlist, &forest)
    };
    assert_analyses_equal(&incr, &full);
}

#[test]
fn single_move_exact_mode() {
    run_case(250, 1, 1, false);
}

#[test]
fn few_moves_exact_mode() {
    run_case(250, 8, 2, false);
}

#[test]
fn many_moves_exact_mode() {
    run_case(250, 100, 3, false);
}

#[test]
fn smoothed_mode_matches_too() {
    run_case(200, 5, 4, true);
}

#[test]
fn no_moves_is_identity() {
    let design = generate(&GeneratorConfig::named("inc0", 150)).expect("generator");
    let lib = synthetic_pdk();
    let timer = Timer::new(&design, &lib).expect("timer builds");
    let forest = build_forest(&design.netlist);
    let prev = timer.analyze(&design.netlist, &forest);
    let incr = timer.analyze_incremental(&design.netlist, &forest, &prev, &[], true);
    assert_analyses_equal(&incr, &prev);
}

#[test]
fn repeated_incremental_stays_consistent() {
    // Chain several incremental updates; the result must still match a
    // from-scratch analysis (no drift accumulation).
    let mut design = generate(&GeneratorConfig::named("inc_chain", 200)).expect("generator");
    let lib = synthetic_pdk();
    let timer = Timer::new(&design, &lib).expect("timer builds");
    let mut forest = build_forest(&design.netlist);
    let mut analysis = timer.analyze(&design.netlist, &forest);
    let mut rng = StdRng::seed_from_u64(99);
    let movable: Vec<CellId> = design.netlist.movable_cells().collect();
    for _ in 0..5 {
        let c = movable[rng.gen_range(0..movable.len())];
        let pos = design.netlist.cell(c).pos();
        design
            .netlist
            .set_cell_pos(c, Point::new(pos.x + 1.5, pos.y - 0.5));
        forest.update_positions(&design.netlist);
        analysis = timer.analyze_incremental(&design.netlist, &forest, &analysis, &[c], true);
    }
    let full = timer.analyze(&design.netlist, &forest);
    assert_analyses_equal(&analysis, &full);
}

#[test]
fn tables_forest_incremental_matches_full() {
    // Incremental STA over a topology-table forest maintained with the
    // parallel scratch sweeps must still match a from-scratch analysis:
    // the timer only sees trees, so the table backend and sequence cache
    // must be invisible to it.
    let mut design = generate(&GeneratorConfig::named("inc_tab", 250)).expect("generator");
    let lib = synthetic_pdk();
    let timer = Timer::new(&design, &lib).expect("timer builds");
    let mut forest = build_forest_with(&design.netlist, TableConfig::default());
    let prev = timer.analyze(&design.netlist, &forest);

    let mut rng = StdRng::seed_from_u64(7);
    let movable: Vec<CellId> = design.netlist.movable_cells().collect();
    let mut moved = Vec::new();
    let mut dirty = Vec::new();
    for _ in 0..60 {
        let c = movable[rng.gen_range(0..movable.len())];
        let pos = design.netlist.cell(c).pos();
        design.netlist.set_cell_pos(
            c,
            Point::new(pos.x + rng.gen_range(-4.0..4.0), pos.y + rng.gen_range(-4.0..4.0)),
        );
        moved.push(c);
        for &pin in design.netlist.cell(c).pins() {
            if let Some(nid) = design.netlist.pin(pin).net() {
                if forest.tree(nid).is_some() && !dirty.contains(&nid) {
                    dirty.push(nid);
                }
            }
        }
    }
    let mut scratch = ForestScratch::new();
    forest.rebuild_nets_into(&design.netlist, &dirty, &mut scratch);

    let incr = timer.analyze_incremental(&design.netlist, &forest, &prev, &moved, true);
    let full = timer.analyze(&design.netlist, &forest);
    assert_analyses_equal(&incr, &full);
}

mod drift_properties {
    use super::*;
    use dtp_sta::AnalysisScratch;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Chained incremental analyses through the scratch ping-pong
        /// (`analyze_incremental_into` + `recycle`) never drift: after any
        /// random sequence of move batches, the chained result matches a
        /// from-scratch analysis.
        #[test]
        fn chained_incremental_never_drifts(
            seed in 0u64..1000,
            hops in 1usize..6,
            batch in 1usize..9,
            smoothed_sel in 0usize..2,
        ) {
            let smoothed = smoothed_sel == 1;
            let mut design =
                generate(&GeneratorConfig::named("inc_prop", 180)).expect("generator");
            let lib = synthetic_pdk();
            let timer = Timer::new(&design, &lib).expect("timer builds");
            let mut forest = build_forest(&design.netlist);
            let mut scratch = AnalysisScratch::new();
            let mut analysis = if smoothed {
                timer.analyze_smoothed(&design.netlist, &forest)
            } else {
                timer.analyze(&design.netlist, &forest)
            };
            let mut rng = StdRng::seed_from_u64(seed);
            let movable: Vec<CellId> = design.netlist.movable_cells().collect();
            for _ in 0..hops {
                let mut moved = Vec::new();
                for _ in 0..batch {
                    let c = movable[rng.gen_range(0..movable.len())];
                    let pos = design.netlist.cell(c).pos();
                    design.netlist.set_cell_pos(
                        c,
                        Point::new(
                            pos.x + rng.gen_range(-5.0..5.0),
                            pos.y + rng.gen_range(-5.0..5.0),
                        ),
                    );
                    moved.push(c);
                }
                forest.update_positions(&design.netlist);
                let next = timer.analyze_incremental_into(
                    &design.netlist,
                    &forest,
                    &analysis,
                    &moved,
                    true,
                    &mut scratch,
                );
                scratch.recycle(analysis);
                analysis = next;
            }
            let full = if smoothed {
                timer.analyze_smoothed(&design.netlist, &forest)
            } else {
                timer.analyze(&design.netlist, &forest)
            };
            for i in 0..full.at.len() {
                prop_assert!((analysis.at[i] - full.at[i]).abs() < 1e-9);
                prop_assert!((analysis.slew[i] - full.slew[i]).abs() < 1e-9);
                prop_assert!((analysis.at_early[i] - full.at_early[i]).abs() < 1e-9);
                let (ra, rb) = (analysis.rat[i], full.rat[i]);
                prop_assert!(ra == rb || (ra - rb).abs() < 1e-9);
            }
            prop_assert!((analysis.wns() - full.wns()).abs() < 1e-9);
            prop_assert!((analysis.tns() - full.tns()).abs() < 1e-9);
        }
    }
}

#[test]
fn skipping_rat_keeps_metrics_exact() {
    let mut design = generate(&GeneratorConfig::named("inc_norat", 200)).expect("generator");
    let lib = synthetic_pdk();
    let timer = Timer::new(&design, &lib).expect("timer builds");
    let mut forest = build_forest(&design.netlist);
    let prev = timer.analyze(&design.netlist, &forest);
    let movable: Vec<CellId> = design.netlist.movable_cells().collect();
    let c = movable[3];
    let pos = design.netlist.cell(c).pos();
    design.netlist.set_cell_pos(c, Point::new(pos.x + 4.0, pos.y));
    forest.update_positions(&design.netlist);
    let fast = timer.analyze_incremental(&design.netlist, &forest, &prev, &[c], false);
    let full = timer.analyze(&design.netlist, &forest);
    // WNS/TNS/slacks exact even without the RAT sweep.
    assert!((fast.wns() - full.wns()).abs() < 1e-9);
    assert!((fast.tns() - full.tns()).abs() < 1e-9);
    for &p in full.endpoints() {
        assert!((fast.slack[p.index()] - full.slack[p.index()]).abs() < 1e-9);
    }
    // RATs are carried over from prev (stale by design).
    assert_eq!(fast.rat, prev.rat);
}
