//! Sensitivity tests of the timer configuration: every knob must move the
//! analysis in the physically expected direction.

use dtp_liberty::synth::synthetic_pdk;
use dtp_netlist::generate::{generate, GeneratorConfig};
use dtp_rsmt::build_forest;
use dtp_sta::{Timer, TimerConfig};

fn design() -> dtp_netlist::Design {
    generate(&GeneratorConfig::named("cfg", 200)).expect("generator succeeds")
}

#[test]
fn clock_arrival_shifts_launch_and_capture_together() {
    // An ideal clock delayed by t shifts register launches *and* captures by
    // t, so register→register slacks are invariant; only PI→register and
    // register→PO paths shift.
    let d = design();
    let lib = synthetic_pdk();
    let forest = build_forest(&d.netlist);
    let base = Timer::with_config(&d, &lib, TimerConfig::default())
        .expect("binds")
        .analyze(&d.netlist, &forest);
    let shifted_timer = Timer::with_config(
        &d,
        &lib,
        TimerConfig { clock_arrival: 50.0, ..TimerConfig::default() },
    )
    .expect("binds");
    let shifted = shifted_timer.analyze(&d.netlist, &forest);
    // Register-data endpoints fed exclusively from registers keep their slack.
    let graph = shifted_timer.graph();
    let mut checked = 0;
    for &p in base.endpoints() {
        if graph.role(p) == dtp_sta::PinRole::RegisterData {
            // AT at the D pin shifts by exactly the launch shift only when the
            // whole fan-in cone is register-launched; in general AT shifts by
            // at most 50. Slack changes accordingly but never by more than 50.
            let ds = (shifted.slack[p.index()] - base.slack[p.index()]).abs();
            assert!(ds <= 50.0 + 1e-6, "slack moved by {ds}");
            checked += 1;
        }
    }
    assert!(checked > 0);
}

#[test]
fn larger_input_slew_slows_the_design() {
    let d = design();
    let lib = synthetic_pdk();
    let forest = build_forest(&d.netlist);
    let fast = Timer::with_config(&d, &lib, TimerConfig { input_slew: 2.0, ..TimerConfig::default() })
        .expect("binds")
        .analyze(&d.netlist, &forest);
    let slow = Timer::with_config(&d, &lib, TimerConfig { input_slew: 80.0, ..TimerConfig::default() })
        .expect("binds")
        .analyze(&d.netlist, &forest);
    assert!(slow.wns() <= fast.wns() + 1e-9, "{} vs {}", slow.wns(), fast.wns());
    assert!(slow.tns() <= fast.tns() + 1e-9);
}

#[test]
fn slower_clock_slew_slows_register_launch() {
    let d = design();
    let lib = synthetic_pdk();
    let forest = build_forest(&d.netlist);
    let crisp = Timer::with_config(&d, &lib, TimerConfig { clock_slew: 5.0, ..TimerConfig::default() })
        .expect("binds")
        .analyze(&d.netlist, &forest);
    let sloppy = Timer::with_config(&d, &lib, TimerConfig { clock_slew: 100.0, ..TimerConfig::default() })
        .expect("binds")
        .analyze(&d.netlist, &forest);
    assert!(sloppy.wns() <= crisp.wns() + 1e-9);
}

#[test]
fn sdc_input_delay_tightens_pi_paths() {
    let mut d = design();
    let lib = synthetic_pdk();
    let forest = build_forest(&d.netlist);
    let base = Timer::new(&d, &lib).expect("binds").analyze(&d.netlist, &forest);
    d.constraints.default_input_delay += 100.0;
    let tightened = Timer::new(&d, &lib).expect("binds").analyze(&d.netlist, &forest);
    assert!(tightened.wns() <= base.wns() + 1e-9);
    assert!(tightened.tns() <= base.tns() + 1e-9);
}

#[test]
fn longer_period_relaxes_everything() {
    let mut d = design();
    let lib = synthetic_pdk();
    let forest = build_forest(&d.netlist);
    let tight = Timer::new(&d, &lib).expect("binds").analyze(&d.netlist, &forest);
    let period = d.constraints.clock_period;
    d.constraints.clock_period = period * 2.0;
    let relaxed = Timer::new(&d, &lib).expect("binds").analyze(&d.netlist, &forest);
    // Every endpoint gains at most `period` of slack (register paths gain the
    // full period; PI/PO paths gain it too since RAT = period − margin).
    assert!(relaxed.wns() >= tight.wns() + period - 1e-6);
    for &p in tight.endpoints() {
        let gain = relaxed.slack[p.index()] - tight.slack[p.index()];
        assert!((gain - period).abs() < 1e-6, "gain {gain} != period {period}");
    }
}
