//! Analytic verification of the exact STA on a hand-built inverter chain:
//! every arrival time is recomputed independently from the synthetic PDK's
//! closed-form delay model and the Elmore formula, and must match the engine
//! to floating-point accuracy.

use dtp_liberty::synth::{
    self, analytic_delay, analytic_pin_cap, analytic_slew, synthetic_pdk,
};
use dtp_netlist::stdcells;
use dtp_netlist::{CellClass, Design, NetlistBuilder, Rect, Sdc};
use dtp_rsmt::build_forest;
use dtp_sta::Timer;

/// PI --(net0)--> INV_X1 u1 --(net1)--> INV_X1 u2 --(net2)--> PO
fn build_chain() -> Design {
    let mut b = NetlistBuilder::new();
    let inv_spec = stdcells::find("INV_X1").expect("INV_X1 in table");
    let inv: CellClass = inv_spec.to_class();
    let inv = b.add_class(inv);
    let pi = b.add_input_port("in").unwrap();
    let po = b.add_output_port("out").unwrap();
    let u1 = b.add_cell("u1", inv).unwrap();
    let u2 = b.add_cell("u2", inv).unwrap();
    let n0 = b.add_net("n0").unwrap();
    let n1 = b.add_net("n1").unwrap();
    let n2 = b.add_net("n2").unwrap();
    b.connect_port(n0, pi).unwrap();
    b.connect_by_name(n0, u1, "A").unwrap();
    b.connect_by_name(n1, u1, "Y").unwrap();
    b.connect_by_name(n1, u2, "A").unwrap();
    b.connect_by_name(n2, u2, "Y").unwrap();
    b.connect_port(n2, po).unwrap();
    // Horizontal line, all pins at the same y.
    b.place(pi, 0.0, 1.0);
    b.place(u1, 20.0, 0.0);
    b.place(u2, 60.0, 0.0);
    b.place(po, 100.0, 1.0);
    let nl = b.finish().unwrap();
    let sdc = Sdc::with_period(200.0);
    Design::new("chain", nl, Rect::new(0.0, 0.0, 110.0, 10.0), 2.0, 0.25, sdc)
}

#[test]
fn chain_arrival_times_match_hand_calculation() {
    let design = build_chain();
    let lib = synthetic_pdk();
    let timer = Timer::new(&design, &lib).unwrap();
    let forest = build_forest(&design.netlist);
    let analysis = timer.analyze(&design.netlist, &forest);

    let nl = &design.netlist;
    let spec = stdcells::find("INV_X1").unwrap();
    let r = lib.wire_res_per_um;
    let c = lib.wire_cap_per_um;
    let cap_a = analytic_pin_cap(spec);
    let input_slew = timer.config().input_slew;

    let u1 = nl.find_cell("u1").unwrap();
    let u2 = nl.find_cell("u2").unwrap();
    let pi = nl.find_cell("in").unwrap();
    let po = nl.find_cell("out").unwrap();
    let pos = |cell, pin: &str| nl.pin_position(nl.find_pin(cell, pin).unwrap());

    // --- net0: PI -> u1/A -------------------------------------------------
    let l0 = pos(pi, "P").manhattan(pos(u1, "A"));
    // Lumped Elmore for a 2-pin net: Res = r·L, sink load = c·L/2 + cap.
    let d0 = r * l0 * (0.5 * c * l0 + cap_a);
    let at_u1a = d0; // input delay is 0 by default
    let i = nl.find_pin(u1, "A").unwrap().index();
    assert!((analysis.at[i] - at_u1a).abs() < 1e-9, "{} vs {at_u1a}", analysis.at[i]);
    // Slew at u1/A: sqrt(input_slew² + impulse²) with
    // impulse² = 2·Res·LDelay − d0²; LDelay(sink) = load·d0 (single sink)...
    let load0 = 0.5 * c * l0 + cap_a;
    let imp0_sq = 2.0 * (r * l0) * (load0 * d0) - d0 * d0;
    let slew_u1a = (input_slew * input_slew + imp0_sq.max(0.0)).sqrt();
    assert!((analysis.slew[i] - slew_u1a).abs() < 1e-9);

    // --- u1 cell arc + net1: u1/Y -> u2/A -----------------------------------
    let l1 = pos(u1, "Y").manhattan(pos(u2, "A"));
    let load1 = c * l1 + cap_a; // total net cap + sink pin cap
    let delay_u1 = analytic_delay(spec, slew_u1a, load1);
    let at_u1y = at_u1a + delay_u1;
    let iy = nl.find_pin(u1, "Y").unwrap().index();
    assert!(
        (analysis.at[iy] - at_u1y).abs() < 1e-9,
        "u1/Y: {} vs {at_u1y}",
        analysis.at[iy]
    );
    let slew_u1y = analytic_slew(spec, slew_u1a, load1);
    assert!((analysis.slew[iy] - slew_u1y).abs() < 1e-9);

    let d1 = r * l1 * (0.5 * c * l1 + cap_a);
    let at_u2a = at_u1y + d1;
    let ia2 = nl.find_pin(u2, "A").unwrap().index();
    assert!((analysis.at[ia2] - at_u2a).abs() < 1e-9);

    // --- u2 cell arc + net2: u2/Y -> PO --------------------------------------
    let l2 = pos(u2, "Y").manhattan(pos(po, "P"));
    let load2 = c * l2; // PO port pin has zero cap
    let imp1_sq = 2.0 * (r * l1) * ((0.5 * c * l1 + cap_a) * d1) - d1 * d1;
    let slew_u2a = (slew_u1y * slew_u1y + imp1_sq.max(0.0)).sqrt();
    let at_u2y = at_u2a + analytic_delay(spec, slew_u2a, load2);
    let d2 = r * l2 * (0.5 * c * l2);
    let at_po = at_u2y + d2;
    let ipo = nl.find_pin(po, "P").unwrap().index();
    assert!(
        (analysis.at[ipo] - at_po).abs() < 1e-6,
        "PO: {} vs {at_po}",
        analysis.at[ipo]
    );

    // --- slack at the PO ------------------------------------------------------
    let expected_slack = design.constraints.clock_period - at_po;
    assert!((analysis.slack[ipo] - expected_slack).abs() < 1e-6);
    assert!((analysis.wns() - expected_slack).abs() < 1e-6);
    assert!((analysis.tns() - expected_slack.min(0.0)).abs() < 1e-6);
}

#[test]
fn smoothed_analysis_upper_bounds_exact() {
    // LSE-max ≥ max at every aggregation, so smoothed arrival times bound the
    // exact ones from above and smoothed slacks from below.
    let design = build_chain();
    let lib = synthetic_pdk();
    let timer = Timer::new(&design, &lib).unwrap();
    let forest = build_forest(&design.netlist);
    let exact = timer.analyze(&design.netlist, &forest);
    let smooth = timer.analyze_smoothed(&design.netlist, &forest);
    for (a_s, a_e) in smooth.at.iter().zip(exact.at.iter()) {
        assert!(a_s + 1e-9 >= *a_e, "smoothed AT below exact: {a_s} < {a_e}");
    }
    assert!(smooth.wns() <= exact.wns() + 1e-9);
}

#[test]
fn moving_cells_apart_degrades_slack() {
    let design = build_chain();
    let lib = synthetic_pdk();
    let timer = Timer::new(&design, &lib).unwrap();
    let forest = build_forest(&design.netlist);
    let base = timer.analyze(&design.netlist, &forest).wns();

    let mut stretched = design.clone();
    let u2 = stretched.netlist.find_cell("u2").unwrap();
    stretched
        .netlist
        .set_cell_pos(u2, dtp_netlist::Point::new(60.0, 400.0));
    let forest2 = build_forest(&stretched.netlist);
    let wns2 = timer.analyze(&stretched.netlist, &forest2).wns();
    assert!(wns2 < base, "longer wires must reduce slack: {base} -> {wns2}");
}

#[test]
fn tighter_clock_creates_violations() {
    let mut design = build_chain();
    design.constraints = Sdc::with_period(10.0); // far below the path delay
    let lib = synthetic_pdk();
    let timer = Timer::new(&design, &lib).unwrap();
    let forest = build_forest(&design.netlist);
    let a = timer.analyze(&design.netlist, &forest);
    assert!(a.wns() < 0.0);
    assert!(a.tns() < 0.0);
    assert!(a.tns() <= a.wns(), "TNS must be at least as negative as WNS");
}

#[test]
fn setup_constraint_uses_register_table() {
    // Add a register stage and confirm the slack includes the setup margin.
    let mut b = NetlistBuilder::new();
    let inv = b.add_class(stdcells::find("INV_X1").unwrap().to_class());
    let dff = b.add_class(stdcells::find("DFF_X1").unwrap().to_class());
    let pi = b.add_input_port("in").unwrap();
    let clk = b.add_input_port("clk").unwrap();
    let u1 = b.add_cell("u1", inv).unwrap();
    let ff = b.add_cell("ff", dff).unwrap();
    let po = b.add_output_port("out").unwrap();
    let n0 = b.add_net("n0").unwrap();
    let n1 = b.add_net("n1").unwrap();
    let nq = b.add_net("nq").unwrap();
    let nc = b.add_net("nc").unwrap();
    b.connect_port(n0, pi).unwrap();
    b.connect_by_name(n0, u1, "A").unwrap();
    b.connect_by_name(n1, u1, "Y").unwrap();
    b.connect_by_name(n1, ff, "D").unwrap();
    b.connect_by_name(nq, ff, "Q").unwrap();
    b.connect_port(nq, po).unwrap();
    b.connect_port(nc, clk).unwrap();
    b.connect_by_name(nc, ff, "CK").unwrap();
    b.place(pi, 0.0, 1.0);
    b.place(u1, 10.0, 0.0);
    b.place(ff, 30.0, 0.0);
    b.place(po, 60.0, 1.0);
    b.place(clk, 0.0, 5.0);
    let nl = b.finish().unwrap();
    let period = 150.0;
    let design = Design::new(
        "ffchain",
        nl,
        Rect::new(0.0, 0.0, 70.0, 10.0),
        2.0,
        0.25,
        Sdc::with_period(period),
    );
    let lib = synthetic_pdk();
    let timer = Timer::new(&design, &lib).unwrap();
    let forest = build_forest(&design.netlist);
    let a = timer.analyze(&design.netlist, &forest);

    let d_pin = design.netlist.find_pin(design.netlist.find_cell("ff").unwrap(), "D").unwrap();
    let i = d_pin.index();
    let setup = synth::analytic_setup(a.slew[i]);
    let expected = period - setup - a.at[i];
    assert!(
        (a.slack[i] - expected).abs() < 1e-9,
        "setup slack {} vs expected {expected}",
        a.slack[i]
    );
    // Hold slack = early AT − hold margin; must be populated and finite here.
    assert!(a.hold_slack[i].is_finite());
    let hold = synth::analytic_hold(a.slew[i]);
    assert!((a.hold_slack[i] - (a.at_early[i] - hold)).abs() < 1e-9);
    // The register Q launches a new domain: PO slack is checked against the
    // same period and is comfortably met here.
    let po_pin = design.netlist.find_pin(design.netlist.find_cell("out").unwrap(), "P").unwrap();
    assert!(a.slack[po_pin.index()].is_finite());
}

#[test]
fn rat_propagation_is_consistent() {
    // Along a single chain there is one path, so every pin's slack equals
    // the endpoint slack, and RAT − AT is constant along the path.
    let design = build_chain();
    let lib = synthetic_pdk();
    let timer = Timer::new(&design, &lib).unwrap();
    let forest = build_forest(&design.netlist);
    let a = timer.analyze(&design.netlist, &forest);
    let wns = a.wns();
    for cell in ["in", "u1", "u2", "out"] {
        let c = design.netlist.find_cell(cell).unwrap();
        for &p in design.netlist.cell(c).pins() {
            if design.netlist.pin(p).net().is_none() {
                continue;
            }
            let s = a.pin_slack(p);
            assert!(
                (s - wns).abs() < 1e-6,
                "pin {} slack {} != WNS {}",
                design.netlist.pin_name(p),
                s,
                wns
            );
        }
    }
}
