//! End-to-end gradient verification of the differentiable timer: the full
//! backward pass (Eqs. 8, 10, 12 chained) against central finite differences
//! of the smoothed objective, on generated designs.
//!
//! This is the single most important correctness property of the paper's
//! method — if these gradients are wrong, the placement flow optimizes the
//! wrong thing.

use dtp_liberty::synth::synthetic_pdk;
use dtp_netlist::generate::{generate, GeneratorConfig};
use dtp_netlist::{Design, Point};
use dtp_rsmt::build_forest;
use dtp_sta::{Timer, TimerConfig};

/// The smoothed objective f = −t1·TNSγ − t2·WNSγ evaluated from scratch at
/// the current cell positions, with the *same tree topologies* (updated, not
/// rebuilt) so the function being differentiated is the one the backward
/// pass sees.
fn objective(
    timer: &Timer,
    design: &Design,
    base_forest: &dtp_rsmt::SteinerForest,
    t1: f64,
    t2: f64,
    gamma: f64,
) -> f64 {
    let mut forest = base_forest.clone();
    forest.update_positions(&design.netlist);
    let analysis = timer.analyze_smoothed(&design.netlist, &forest);
    -t1 * analysis.tns_smooth(gamma) - t2 * analysis.wns_smooth(gamma)
}

fn run_gradcheck(cells: usize, seed: u64, t1: f64, t2: f64) {
    let mut cfg = GeneratorConfig::named("gc", cells);
    cfg.seed = seed;
    cfg.depth = 6;
    let mut design = generate(&cfg).expect("generator succeeds");
    let lib = synthetic_pdk();
    let tc = TimerConfig { gamma: 50.0, ..TimerConfig::default() };
    let gamma = tc.gamma;
    let timer = Timer::with_config(&design, &lib, tc).expect("timer builds");
    let forest = build_forest(&design.netlist);

    let analysis = timer.analyze_smoothed(&design.netlist, &forest);
    let grads = timer.gradients(&design.netlist, &analysis, &forest, t1, t2);

    // Objective value consistency.
    let f0 = objective(&timer, &design, &forest, t1, t2, gamma);
    assert!(
        (grads.objective - f0).abs() < 1e-6 * (1.0 + f0.abs()),
        "objective mismatch: {} vs {}",
        grads.objective,
        f0
    );

    // Check a sample of movable cells with non-trivial gradient plus a few
    // random ones.
    let movable: Vec<_> = design.netlist.movable_cells().collect();
    let mut checked = 0;
    let h = 1e-4;
    for (k, &c) in movable.iter().enumerate() {
        if k % (movable.len() / 12).max(1) != 0 {
            continue;
        }
        let pos = design.netlist.cell(c).pos();
        for axis in 0..2 {
            let (dx, dy) = if axis == 0 { (h, 0.0) } else { (0.0, h) };
            design.netlist.set_cell_pos(c, Point::new(pos.x + dx, pos.y + dy));
            let fp = objective(&timer, &design, &forest, t1, t2, gamma);
            design.netlist.set_cell_pos(c, Point::new(pos.x - dx, pos.y - dy));
            let fm = objective(&timer, &design, &forest, t1, t2, gamma);
            design.netlist.set_cell_pos(c, pos);
            let num = (fp - fm) / (2.0 * h);
            let ana = if axis == 0 {
                grads.cell_grad_x[c.index()]
            } else {
                grads.cell_grad_y[c.index()]
            };
            // |x| kinks of the Manhattan length make FD noisy when a cell sits
            // exactly on a kink; use a tolerance scaled to the gradient size.
            let tol = 1e-3 * (1.0 + num.abs().max(ana.abs()));
            assert!(
                (num - ana).abs() < tol,
                "cell {c:?} axis {axis}: analytic {ana:.6e} vs numeric {num:.6e} (seed {seed})"
            );
            checked += 1;
        }
    }
    assert!(checked >= 8, "too few gradient checks ran: {checked}");
}

#[test]
fn gradcheck_small_design_tns_only() {
    run_gradcheck(80, 11, 1.0, 0.0);
}

#[test]
fn gradcheck_small_design_wns_only() {
    run_gradcheck(80, 12, 0.0, 1.0);
}

#[test]
fn gradcheck_mixed_objective() {
    run_gradcheck(140, 13, 0.01, 0.0001);
}

#[test]
fn gradient_descends_the_objective() {
    // A step against the gradient must reduce the smoothed objective —
    // the property the placement loop relies on.
    let mut cfg = GeneratorConfig::named("gd", 200);
    cfg.depth = 8;
    let mut design = generate(&cfg).expect("generator succeeds");
    let lib = synthetic_pdk();
    let timer = Timer::new(&design, &lib).expect("timer builds");
    let forest = build_forest(&design.netlist);
    let gamma = timer.config().gamma;
    let analysis = timer.analyze_smoothed(&design.netlist, &forest);
    let grads = timer.gradients(&design.netlist, &analysis, &forest, 1.0, 1.0);
    let f0 = -analysis.tns_smooth(gamma) - analysis.wns_smooth(gamma);

    // Normalized step.
    let gmax = grads
        .cell_grad_x
        .iter()
        .chain(grads.cell_grad_y.iter())
        .fold(0.0f64, |m, &g| m.max(g.abs()));
    assert!(gmax > 0.0, "gradient is identically zero");
    let step = 0.5 / gmax;
    let (mut xs, mut ys) = design.netlist.positions();
    for c in design.netlist.movable_cells() {
        xs[c.index()] -= step * grads.cell_grad_x[c.index()];
        ys[c.index()] -= step * grads.cell_grad_y[c.index()];
    }
    design.netlist.set_positions(&xs, &ys);
    let mut forest2 = forest.clone();
    forest2.update_positions(&design.netlist);
    let analysis2 = timer.analyze_smoothed(&design.netlist, &forest2);
    let f1 = -analysis2.tns_smooth(gamma) - analysis2.wns_smooth(gamma);
    assert!(
        f1 < f0,
        "objective did not decrease along −gradient: {f0} -> {f1}"
    );
}
