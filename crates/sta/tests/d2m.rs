//! Tests of the D2M two-moment wire delay metric — the §3.4.2 generality
//! claim: swapping the wire model keeps the whole differentiable pipeline
//! working, gradients included.

use dtp_liberty::synth::synthetic_pdk;
use dtp_netlist::generate::{generate, GeneratorConfig};
use dtp_netlist::{Design, Point};
use dtp_rsmt::{build_forest, SteinerTree};
use dtp_sta::{ElmoreNet, Timer, TimerConfig, WireModel};

#[test]
fn d2m_bounded_by_elmore() {
    // D2M ≤ Elmore for RC trees (Elmore is provably pessimistic), and both
    // agree on the trivial lumped case.
    let tree = SteinerTree::build(&[
        Point::new(0.0, 0.0),
        Point::new(40.0, 10.0),
        Point::new(25.0, -18.0),
        Point::new(60.0, 3.0),
    ]);
    let caps = vec![0.0, 1.5, 2.0, 1.0];
    let e = ElmoreNet::forward(&tree, &caps, 0.1, 0.2);
    for sink in 1..tree.num_pins() {
        let elmore = e.delay_at(sink);
        let d2m = e.delay_d2m_at(sink);
        assert!(d2m > 0.0);
        assert!(
            d2m <= elmore + 1e-9,
            "sink {sink}: d2m {d2m} > elmore {elmore}"
        );
    }
}

#[test]
fn d2m_partials_match_finite_difference() {
    // Check the (m1, beta) partials through the full per-net backward by
    // perturbing a sink position and comparing the D2M delay change.
    let pins = vec![Point::new(0.0, 0.0), Point::new(30.0, 12.0), Point::new(18.0, -9.0)];
    let tree = SteinerTree::build(&pins);
    let caps = vec![0.0, 1.0, 2.0];
    let sink = 1usize;

    let delay_at = |pins: &[Point]| {
        let mut t = tree.clone();
        t.update_pins(pins);
        let e = ElmoreNet::forward(&t, &caps, 0.1, 0.2);
        e.delay_d2m_at(sink)
    };

    let e = ElmoreNet::forward(&tree, &caps, 0.1, 0.2);
    let mut seeds = dtp_sta::ElmoreSeeds::zeros(tree.num_nodes());
    let (d_dm1, d_dbeta) = e.d2m_partials(sink);
    seeds.grad_delay[sink] = d_dm1;
    seeds.grad_beta[sink] = d_dbeta;
    let (gx, gy) = e.backward(&tree, &seeds);
    let per_pin = tree.scatter_gradient(&gx, &gy);

    let h = 1e-5;
    for i in 0..pins.len() {
        for axis in 0..2 {
            let mut hi = pins.clone();
            let mut lo = pins.clone();
            if axis == 0 {
                hi[i].x += h;
                lo[i].x -= h;
            } else {
                hi[i].y += h;
                lo[i].y -= h;
            }
            let num = (delay_at(&hi) - delay_at(&lo)) / (2.0 * h);
            let ana = if axis == 0 { per_pin[i].0 } else { per_pin[i].1 };
            assert!(
                (num - ana).abs() < 1e-4 * (1.0 + num.abs()),
                "pin {i} axis {axis}: analytic {ana} vs numeric {num}"
            );
        }
    }
}

fn timers(design: &Design) -> (Timer, Timer) {
    let lib = synthetic_pdk();
    let elmore = Timer::with_config(
        design,
        &lib,
        TimerConfig { wire_model: WireModel::Elmore, ..TimerConfig::default() },
    )
    .expect("timer builds");
    let d2m = Timer::with_config(
        design,
        &lib,
        TimerConfig { wire_model: WireModel::D2m, ..TimerConfig::default() },
    )
    .expect("timer builds");
    (elmore, d2m)
}

#[test]
fn d2m_analysis_is_less_pessimistic() {
    let design = generate(&GeneratorConfig::named("d2m", 300)).expect("generator succeeds");
    let forest = build_forest(&design.netlist);
    let (elmore, d2m) = timers(&design);
    let a_e = elmore.analyze(&design.netlist, &forest);
    let a_d = d2m.analyze(&design.netlist, &forest);
    // Per-sink wire delays are smaller, so arrival times and violations are
    // no worse under D2M.
    assert!(a_d.wns() >= a_e.wns() - 1e-9, "{} vs {}", a_d.wns(), a_e.wns());
    assert!(a_d.tns() >= a_e.tns() - 1e-9);
    // But still correlated: same graph, same cell arcs.
    assert!(a_d.wns() < 0.0, "proxy still violates under D2M");
}

#[test]
fn d2m_gradcheck_end_to_end() {
    let mut cfg = GeneratorConfig::named("d2mgc", 90);
    cfg.depth = 5;
    let mut design = generate(&cfg).expect("generator succeeds");
    let lib = synthetic_pdk();
    let timer = Timer::with_config(
        &design,
        &lib,
        TimerConfig { gamma: 50.0, wire_model: WireModel::D2m, ..TimerConfig::default() },
    )
    .expect("timer builds");
    let forest = build_forest(&design.netlist);
    let analysis = timer.analyze_smoothed(&design.netlist, &forest);
    let grads = timer.gradients(&design.netlist, &analysis, &forest, 1.0, 0.5);

    let objective = |d: &Design| {
        let mut f = forest.clone();
        f.update_positions(&d.netlist);
        let a = timer.analyze_smoothed(&d.netlist, &f);
        -a.tns_smooth(50.0) - 0.5 * a.wns_smooth(50.0)
    };
    let h = 1e-4;
    let movable: Vec<_> = design.netlist.movable_cells().collect();
    let mut checked = 0;
    for &c in movable.iter().step_by(movable.len() / 8 + 1) {
        let pos = design.netlist.cell(c).pos();
        design.netlist.set_cell_pos(c, Point::new(pos.x + h, pos.y));
        let fp = objective(&design);
        design.netlist.set_cell_pos(c, Point::new(pos.x - h, pos.y));
        let fm = objective(&design);
        design.netlist.set_cell_pos(c, pos);
        let num = (fp - fm) / (2.0 * h);
        let ana = grads.cell_grad_x[c.index()];
        assert!(
            (num - ana).abs() < 1e-3 * (1.0 + num.abs().max(ana.abs())),
            "cell {c:?}: analytic {ana} vs numeric {num}"
        );
        checked += 1;
    }
    assert!(checked >= 5);
}
