//! Top-K critical-path extraction on hand-built designs: multi-endpoint
//! selection order, reconvergent (diamond) fan-in resolution, shared-prefix
//! deduplication, the criticality formula, and the degenerate-design
//! behaviors of `TimingReport` (no endpoints, slack ties).

use dtp_liberty::synth::synthetic_pdk;
use dtp_netlist::generate::{generate, GeneratorConfig};
use dtp_netlist::stdcells;
use dtp_netlist::{Design, Netlist, NetlistBuilder, PinId, Rect, Sdc};
use dtp_rsmt::build_forest;
use dtp_sta::{AnalysisScratch, PathScratch, PathSet, Timer, TimingReport};

fn inv_class(b: &mut NetlistBuilder) -> dtp_netlist::ClassId {
    b.add_class(stdcells::find("INV_X1").expect("INV_X1 in table").to_class())
}

fn pin(nl: &Netlist, cell: &str, pin: &str) -> PinId {
    nl.find_pin(nl.find_cell(cell).unwrap(), pin).unwrap()
}

/// Two parallel inverter chains, `u1` placed farther than `u2`, so the
/// endpoint `out1` is strictly worse. Both share the driver `u0`.
///
/// ```text
/// in --n0--> u0 --n1--+--> u1 --n2--> out1   (long branch, worse slack)
///                     +--> u2 --n3--> out2   (short branch)
/// ```
fn build_shared_prefix(period: f64) -> Design {
    let mut b = NetlistBuilder::new();
    let inv = inv_class(&mut b);
    let pi = b.add_input_port("in").unwrap();
    let po1 = b.add_output_port("out1").unwrap();
    let po2 = b.add_output_port("out2").unwrap();
    let u0 = b.add_cell("u0", inv).unwrap();
    let u1 = b.add_cell("u1", inv).unwrap();
    let u2 = b.add_cell("u2", inv).unwrap();
    let n0 = b.add_net("n0").unwrap();
    let n1 = b.add_net("n1").unwrap();
    let n2 = b.add_net("n2").unwrap();
    let n3 = b.add_net("n3").unwrap();
    b.connect_port(n0, pi).unwrap();
    b.connect_by_name(n0, u0, "A").unwrap();
    b.connect_by_name(n1, u0, "Y").unwrap();
    b.connect_by_name(n1, u1, "A").unwrap();
    b.connect_by_name(n1, u2, "A").unwrap();
    b.connect_by_name(n2, u1, "Y").unwrap();
    b.connect_port(n2, po1).unwrap();
    b.connect_by_name(n3, u2, "Y").unwrap();
    b.connect_port(n3, po2).unwrap();
    b.place(pi, 0.0, 1.0);
    b.place(u0, 20.0, 0.0);
    b.place(u1, 20.0, 400.0); // long branch
    b.place(u2, 60.0, 0.0);
    b.place(po1, 20.0, 500.0);
    b.place(po2, 100.0, 1.0);
    let nl = b.finish().unwrap();
    Design::new(
        "shared",
        nl,
        Rect::new(0.0, 0.0, 110.0, 510.0),
        2.0,
        0.25,
        Sdc::with_period(period),
    )
}

fn analyze(design: &Design) -> (Timer, dtp_sta::Analysis) {
    let lib = synthetic_pdk();
    let timer = Timer::new(design, &lib).unwrap();
    let forest = build_forest(&design.netlist);
    let analysis = timer.analyze(&design.netlist, &forest);
    (timer, analysis)
}

#[test]
fn multi_endpoint_selection_is_worst_first_and_slacks_match() {
    // Tight clock: both endpoints violate.
    let design = build_shared_prefix(10.0);
    let nl = &design.netlist;
    let (timer, a) = analyze(&design);
    assert_eq!(a.endpoints().len(), 2);
    assert!(a.wns() < 0.0);

    let mut scratch = PathScratch::new();
    let mut set = PathSet::new();
    timer.extract_paths_into(nl, &a, 8, 0.9, &mut scratch, &mut set);

    assert_eq!(set.num_paths(), 2);
    assert_eq!(set.endpoint(0), pin(nl, "out1", "P"), "long branch is worst");
    assert_eq!(set.endpoint(1), pin(nl, "out2", "P"));
    assert!(set.slack(0) < set.slack(1));
    assert!((set.slack(0) - a.wns()).abs() < 1e-12);
    assert!((set.wns() - a.wns()).abs() < 1e-12);
    for k in 0..set.num_paths() {
        let e = set.endpoint(k);
        assert!((set.slack(k) - a.slack[e.index()]).abs() < 1e-12);
    }

    // top_k = 1 keeps only the worst endpoint.
    timer.extract_paths_into(nl, &a, 1, 0.9, &mut scratch, &mut set);
    assert_eq!(set.num_paths(), 1);
    assert_eq!(set.endpoint(0), pin(nl, "out1", "P"));
}

#[test]
fn shared_prefix_is_deduplicated_and_criticality_is_max_over_paths() {
    let design = build_shared_prefix(10.0);
    let nl = &design.netlist;
    let (timer, a) = analyze(&design);

    let decay = 0.7;
    let mut scratch = PathScratch::new();
    let mut set = PathSet::new();
    timer.extract_paths_into(nl, &a, 2, decay, &mut scratch, &mut set);

    // Path 0 (worst) claims the whole trace including the shared prefix.
    let p0: Vec<PinId> = set.path(0).to_vec();
    let expect0 = vec![
        pin(nl, "out1", "P"),
        pin(nl, "u1", "Y"),
        pin(nl, "u1", "A"),
        pin(nl, "u0", "Y"),
        pin(nl, "u0", "A"),
        pin(nl, "in", "P"),
    ];
    assert_eq!(p0, expect0);

    // Path 1 stops where the shared prefix (u0/Y onward) begins.
    let p1: Vec<PinId> = set.path(1).to_vec();
    let expect1 = vec![
        pin(nl, "out2", "P"),
        pin(nl, "u2", "Y"),
        pin(nl, "u2", "A"),
    ];
    assert_eq!(p1, expect1);

    // Criticality: rank 0 is exactly 1 (slack == WNS), rank 1 is decayed and
    // slack-scaled; the shared prefix keeps the *maximal* (rank-0) value.
    let wns = a.wns();
    let crit0 = 1.0;
    let crit1 = decay * ((-set.slack(1)) / -wns).clamp(0.0, 1.0);
    assert!((set.criticality(0) - crit0).abs() < 1e-12);
    assert!((set.criticality(1) - crit1).abs() < 1e-12);
    for &p in &expect0 {
        assert!((set.pin_criticality(p) - crit0).abs() < 1e-12);
    }
    for &p in &expect1 {
        assert!((set.pin_criticality(p) - crit1).abs() < 1e-12);
    }
    // Off-path pins have zero criticality, and the claim list is exact.
    assert_eq!(set.critical_pins().len(), expect0.len() + expect1.len());

    // Re-extraction with a fresh scratch/set gives identical results
    // (sparse reset leaves no residue).
    let mut set2 = PathSet::new();
    timer.extract_paths_into(nl, &a, 2, decay, &mut scratch, &mut set2);
    for k in 0..2 {
        assert_eq!(set.path(k), set2.path(k));
        assert_eq!(set.endpoint(k), set2.endpoint(k));
    }
}

#[test]
fn diamond_reconvergent_fanin_follows_worst_arrival() {
    // in -> u0 -> {u1 (near), u2 (far)} -> NAND d -> out. The trace through
    // the reconvergent NAND must pick the branch with the later arrival (u2).
    let mut b = NetlistBuilder::new();
    let inv = inv_class(&mut b);
    let nand = b.add_class(stdcells::find("NAND2_X1").unwrap().to_class());
    let pi = b.add_input_port("in").unwrap();
    let po = b.add_output_port("out").unwrap();
    let u0 = b.add_cell("u0", inv).unwrap();
    let u1 = b.add_cell("u1", inv).unwrap();
    let u2 = b.add_cell("u2", inv).unwrap();
    let d = b.add_cell("d", nand).unwrap();
    let n0 = b.add_net("n0").unwrap();
    let n1 = b.add_net("n1").unwrap();
    let n2 = b.add_net("n2").unwrap();
    let n3 = b.add_net("n3").unwrap();
    let n4 = b.add_net("n4").unwrap();
    b.connect_port(n0, pi).unwrap();
    b.connect_by_name(n0, u0, "A").unwrap();
    b.connect_by_name(n1, u0, "Y").unwrap();
    b.connect_by_name(n1, u1, "A").unwrap();
    b.connect_by_name(n1, u2, "A").unwrap();
    b.connect_by_name(n2, u1, "Y").unwrap();
    b.connect_by_name(n2, d, "A").unwrap();
    b.connect_by_name(n3, u2, "Y").unwrap();
    b.connect_by_name(n3, d, "B").unwrap();
    b.connect_by_name(n4, d, "Y").unwrap();
    b.connect_port(n4, po).unwrap();
    b.place(pi, 0.0, 1.0);
    b.place(u0, 10.0, 0.0);
    b.place(u1, 20.0, 0.0);
    b.place(u2, 20.0, 400.0); // far: later arrival at d/B
    b.place(d, 30.0, 0.0);
    b.place(po, 40.0, 1.0);
    let nl = b.finish().unwrap();
    let design = Design::new(
        "diamond",
        nl,
        Rect::new(0.0, 0.0, 50.0, 410.0),
        2.0,
        0.25,
        Sdc::with_period(10.0),
    );
    let nl = &design.netlist;
    let (timer, a) = analyze(&design);

    // Sanity: the far branch really does arrive later at the NAND.
    assert!(a.at[pin(nl, "d", "B").index()] > a.at[pin(nl, "d", "A").index()]);

    let mut scratch = PathScratch::new();
    let mut set = PathSet::new();
    timer.extract_paths_into(nl, &a, 1, 1.0, &mut scratch, &mut set);
    assert_eq!(set.num_paths(), 1);
    let path: Vec<PinId> = set.path(0).to_vec();
    assert!(path.contains(&pin(nl, "d", "B")));
    assert!(path.contains(&pin(nl, "u2", "Y")));
    assert!(!path.contains(&pin(nl, "d", "A")));
    assert!(!path.contains(&pin(nl, "u1", "Y")));
    // The report's critical path follows the same worst-fan-in steps.
    let report = TimingReport::new(&timer, nl, &a);
    let rpins: Vec<PinId> = report.critical_path.iter().map(|p| p.pin).collect();
    let mut expect = path.clone();
    expect.reverse();
    assert_eq!(rpins, expect);
}

#[test]
fn full_extraction_matches_endpoint_slack_formula() {
    // decay = 1, top_k = all endpoints: every endpoint's pin criticality is
    // exactly clamp(-slack/|WNS|, 0, 1) — the golden the flow-level
    // PathExtraction mode is checked against.
    let mut design = generate(&GeneratorConfig::named("paths", 250)).unwrap();
    design.constraints = Sdc::with_period(40.0); // force violations
    let nl = &design.netlist;
    let (timer, a) = analyze(&design);
    let wns = a.wns();
    assert!(wns < 0.0);

    let mut scratch = PathScratch::new();
    let mut set = PathSet::new();
    let all = a.endpoints().len();
    timer.extract_paths_into(nl, &a, all, 1.0, &mut scratch, &mut set);
    assert_eq!(set.num_paths(), all);
    for k in 0..all {
        let e = set.endpoint(k);
        let expected = ((-a.slack[e.index()]) / -wns).clamp(0.0, 1.0);
        assert!(
            (set.pin_criticality(e) - expected).abs() < 1e-12,
            "endpoint {k}: {} vs {expected}",
            set.pin_criticality(e)
        );
    }
    // Rank order is slack-ascending with PinId tie-break.
    for k in 1..all {
        let prev = (set.slack(k - 1), set.endpoint(k - 1));
        let cur = (set.slack(k), set.endpoint(k));
        assert!(prev.0 < cur.0 || (prev.0 == cur.0 && prev.1 < cur.1));
    }
}

#[test]
fn no_rat_analysis_is_sufficient_for_extraction() {
    let design = build_shared_prefix(10.0);
    let nl = &design.netlist;
    let lib = synthetic_pdk();
    let timer = Timer::new(&design, &lib).unwrap();
    let forest = build_forest(&design.netlist);
    let full = timer.analyze(nl, &forest);
    let mut scratch = AnalysisScratch::new();
    let norat = timer.analyze_no_rat_into(nl, &forest, &mut scratch);

    // Forward quantities and endpoint slacks are identical; RATs are not
    // propagated at all.
    assert_eq!(full.at, norat.at);
    assert_eq!(full.slew, norat.slew);
    for &e in full.endpoints() {
        assert_eq!(full.slack[e.index()], norat.slack[e.index()]);
    }
    assert!(norat.rat.iter().all(|r| r.is_infinite()));
    assert!((full.wns() - norat.wns()).abs() < 1e-12);

    // Extraction sees the same paths either way.
    let mut ps = PathScratch::new();
    let (mut s1, mut s2) = (PathSet::new(), PathSet::new());
    timer.extract_paths_into(nl, &full, 2, 0.9, &mut ps, &mut s1);
    timer.extract_paths_into(nl, &norat, 2, 0.9, &mut ps, &mut s2);
    assert_eq!(s1.num_paths(), s2.num_paths());
    for k in 0..s1.num_paths() {
        assert_eq!(s1.path(k), s2.path(k));
        assert!((s1.criticality(k) - s2.criticality(k)).abs() < 1e-15);
    }
}

#[test]
fn report_clamps_wns_without_endpoints() {
    // A design with no registers and no output ports has no constrained
    // endpoints (the coarse V-cycle case): WNS must read 0.0, not +inf.
    let mut b = NetlistBuilder::new();
    let inv = inv_class(&mut b);
    let pi = b.add_input_port("in").unwrap();
    let u0 = b.add_cell("u0", inv).unwrap();
    let n0 = b.add_net("n0").unwrap();
    b.connect_port(n0, pi).unwrap();
    b.connect_by_name(n0, u0, "A").unwrap();
    b.place(pi, 0.0, 1.0);
    b.place(u0, 10.0, 0.0);
    let nl = b.finish().unwrap();
    let design = Design::new(
        "noend",
        nl,
        Rect::new(0.0, 0.0, 20.0, 10.0),
        2.0,
        0.25,
        Sdc::with_period(100.0),
    );
    let (timer, a) = analyze(&design);
    assert!(a.endpoints().is_empty());
    let report = TimingReport::new(&timer, &design.netlist, &a);
    assert_eq!(report.wns, 0.0);
    assert_eq!(report.endpoints, 0);
    assert!(report.critical_path.is_empty());

    // Extraction likewise degrades to an empty set with WNS 0.
    let mut scratch = PathScratch::new();
    let mut set = PathSet::new();
    timer.extract_paths_into(&design.netlist, &a, 8, 0.9, &mut scratch, &mut set);
    assert_eq!(set.num_paths(), 0);
    assert_eq!(set.wns(), 0.0);
}

#[test]
fn worst_endpoint_ties_break_by_pin_id() {
    // Two disjoint, geometrically identical chains: exactly equal slacks at
    // both endpoints. The reported critical path must end at the smaller
    // PinId.
    let mut b = NetlistBuilder::new();
    let inv = inv_class(&mut b);
    let pi1 = b.add_input_port("in1").unwrap();
    let pi2 = b.add_input_port("in2").unwrap();
    let po1 = b.add_output_port("out1").unwrap();
    let po2 = b.add_output_port("out2").unwrap();
    let u1 = b.add_cell("u1", inv).unwrap();
    let u2 = b.add_cell("u2", inv).unwrap();
    let na = b.add_net("na").unwrap();
    let nb = b.add_net("nb").unwrap();
    let nc = b.add_net("nc").unwrap();
    let nd = b.add_net("nd").unwrap();
    b.connect_port(na, pi1).unwrap();
    b.connect_by_name(na, u1, "A").unwrap();
    b.connect_by_name(nb, u1, "Y").unwrap();
    b.connect_port(nb, po1).unwrap();
    b.connect_port(nc, pi2).unwrap();
    b.connect_by_name(nc, u2, "A").unwrap();
    b.connect_by_name(nd, u2, "Y").unwrap();
    b.connect_port(nd, po2).unwrap();
    // Same relative geometry on both rows: identical delays, exact tie.
    b.place(pi1, 0.0, 10.0);
    b.place(u1, 20.0, 10.0);
    b.place(po1, 40.0, 10.0);
    b.place(pi2, 0.0, 30.0);
    b.place(u2, 20.0, 30.0);
    b.place(po2, 40.0, 30.0);
    let nl = b.finish().unwrap();
    let design = Design::new(
        "tie",
        nl,
        Rect::new(0.0, 0.0, 50.0, 40.0),
        2.0,
        0.25,
        Sdc::with_period(10.0),
    );
    let nl = &design.netlist;
    let (timer, a) = analyze(&design);
    let (e1, e2) = (pin(nl, "out1", "P"), pin(nl, "out2", "P"));
    assert_eq!(
        a.slack[e1.index()],
        a.slack[e2.index()],
        "test needs an exact slack tie"
    );
    let report = TimingReport::new(&timer, nl, &a);
    let last = report.critical_path.last().unwrap().pin;
    assert_eq!(last, e1.min(e2), "tie must break to the smaller PinId");

    // Extraction orders the tied endpoints the same way.
    let mut scratch = PathScratch::new();
    let mut set = PathSet::new();
    timer.extract_paths_into(nl, &a, 2, 1.0, &mut scratch, &mut set);
    assert_eq!(set.endpoint(0), e1.min(e2));
    assert_eq!(set.endpoint(1), e1.max(e2));
}
