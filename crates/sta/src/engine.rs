//! The timing engine: forward analysis and backward gradients (§3.3, Fig. 3).
//!
//! [`Timer`] is constructed once per design (binding + levelization +
//! constraint resolution — stage 1 of Fig. 3, "only once"); each placement
//! iteration then calls [`Timer::analyze`] / [`Timer::analyze_smoothed`] with
//! the current Steiner forest (stages 2–4) and [`Timer::gradients`] for the
//! backward sweep (stage 5).

use crate::binding::Binding;
use crate::elmore::{ElmoreNet, ElmoreSeeds};
use crate::error::StaError;
use crate::graph::{PinRole, TimingGraph};
use crate::smoothing::{lse_max, lse_max_weights, lse_min_weights, smooth_neg, smooth_neg_grad};
use dtp_liberty::Library;
use dtp_netlist::{Design, NetId, Netlist, PinId};
use dtp_rsmt::SteinerForest;
use rayon::prelude::*;
use std::sync::Arc;

/// Wire delay metric computed from the Elmore moments (§3.4.2: the
/// framework generalizes to "other more complex interconnect delay models,
/// … as long as the model can be written in analytical form").
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum WireModel {
    /// First-moment (Elmore) delay — Eq. 7b.
    #[default]
    Elmore,
    /// D2M two-moment delay metric: `ln2 · m1²/√m2`.
    D2m,
}

/// Tunable parameters of the timing engine.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TimerConfig {
    /// LSE smoothing parameter γ, in ps (the paper uses ≈ 100).
    pub gamma: f64,
    /// Which wire delay metric to derive from the Elmore moments.
    pub wire_model: WireModel,
    /// Slew of the ideal clock at register clock pins (ps).
    pub clock_slew: f64,
    /// Slew assumed at primary inputs (ps).
    pub input_slew: f64,
    /// Arrival time of the clock edge at registers (ps); 0 for an ideal
    /// zero-insertion-delay clock network.
    pub clock_arrival: f64,
}

impl Default for TimerConfig {
    fn default() -> Self {
        TimerConfig {
            gamma: 100.0,
            wire_model: WireModel::default(),
            clock_slew: 20.0,
            input_slew: 10.0,
            clock_arrival: 0.0,
        }
    }
}

/// The differentiable STA engine bound to one design + library.
#[derive(Clone, Debug)]
pub struct Timer {
    binding: Binding,
    graph: TimingGraph,
    config: TimerConfig,
    clock_period: f64,
    /// Per-pin index of the pin within its net's pin list (tree node index).
    pin_node_in_net: Vec<u32>,
    /// Per-net pin capacitances in net pin order (empty for clock nets).
    net_pin_caps: Vec<Vec<f64>>,
    /// Resolved SDC arrival offset per pin (PI pins only, else 0).
    input_delay: Vec<f64>,
    /// Resolved SDC required margin per pin (PO pins only, else 0).
    output_margin: Vec<f64>,
}

/// The result of one timing analysis: arrival times, slews, slacks and the
/// per-net Elmore state needed for the backward pass.
#[derive(Clone, Debug)]
pub struct Analysis {
    /// Late (worst-case) arrival time per pin, ps.
    pub at: Vec<f64>,
    /// Early (best-case) arrival time per pin, ps.
    pub at_early: Vec<f64>,
    /// Propagated (worst-case) slew per pin, ps.
    pub slew: Vec<f64>,
    /// Setup slack per pin (`f64::INFINITY` for non-endpoints), ps.
    pub slack: Vec<f64>,
    /// Hold slack per pin (`f64::INFINITY` where unconstrained), ps.
    pub hold_slack: Vec<f64>,
    /// Required arrival time per pin (late/setup view), propagated backward
    /// from the endpoints; `f64::INFINITY` on cones that reach no endpoint.
    pub rat: Vec<f64>,
    /// γ used for max-smoothing in this analysis; 0 means exact (hard max).
    pub gamma: f64,
    /// Per-net Elmore state, shared (`Arc`) so incremental analyses reuse
    /// clean nets without copying.
    elmore: Vec<Option<Arc<ElmoreNet>>>,
    endpoints: Vec<PinId>,
}

impl Analysis {
    /// Worst negative slack: the minimum setup slack over endpoints (Eq. 2).
    /// Positive if all constraints are met.
    pub fn wns(&self) -> f64 {
        self.endpoints
            .iter()
            .map(|&p| self.slack[p.index()])
            .fold(f64::INFINITY, f64::min)
    }

    /// Total negative slack: `Σ min(0, slack)` over endpoints (Eq. 2).
    pub fn tns(&self) -> f64 {
        self.endpoints
            .iter()
            .map(|&p| self.slack[p.index()].min(0.0))
            .sum()
    }

    /// Worst hold slack over endpoints.
    pub fn wns_hold(&self) -> f64 {
        self.endpoints
            .iter()
            .map(|&p| self.hold_slack[p.index()])
            .fold(f64::INFINITY, f64::min)
    }

    /// Total negative hold slack over endpoints.
    pub fn tns_hold(&self) -> f64 {
        self.endpoints
            .iter()
            .map(|&p| self.hold_slack[p.index()].min(0.0))
            .filter(|s| s.is_finite())
            .sum()
    }

    /// Smoothed TNS (`Σ smooth_min(0, slack)`) at smoothing `gamma`.
    pub fn tns_smooth(&self, gamma: f64) -> f64 {
        self.endpoints
            .iter()
            .map(|&p| smooth_neg(self.slack[p.index()], gamma))
            .sum()
    }

    /// Smoothed WNS (LSE-min over endpoint slacks) at smoothing `gamma`.
    pub fn wns_smooth(&self, gamma: f64) -> f64 {
        let slacks: Vec<f64> = self.endpoints.iter().map(|&p| self.slack[p.index()]).collect();
        if slacks.is_empty() {
            return 0.0;
        }
        crate::smoothing::lse_min(&slacks, gamma)
    }

    /// Capture endpoints of the design.
    pub fn endpoints(&self) -> &[PinId] {
        &self.endpoints
    }

    /// Slack of an arbitrary pin (`RAT − AT`); `f64::INFINITY` for pins whose
    /// fan-out cone reaches no endpoint.
    pub fn pin_slack(&self, pin: PinId) -> f64 {
        let i = pin.index();
        if self.rat[i].is_finite() {
            self.rat[i] - self.at[i]
        } else {
            f64::INFINITY
        }
    }

    /// The Elmore state of a net (None for clock nets).
    pub fn elmore(&self, net: NetId) -> Option<&ElmoreNet> {
        self.elmore[net.index()].as_deref()
    }
}

/// Gradients of the timing objective with respect to positions.
#[derive(Clone, Debug)]
pub struct PositionGradients {
    /// ∂f/∂x per pin.
    pub pin_grad_x: Vec<f64>,
    /// ∂f/∂y per pin.
    pub pin_grad_y: Vec<f64>,
    /// ∂f/∂x per cell (sum over the cell's pins).
    pub cell_grad_x: Vec<f64>,
    /// ∂f/∂y per cell.
    pub cell_grad_y: Vec<f64>,
    /// The smoothed objective value `−t1·TNSγ − t2·WNSγ` (to be minimized).
    pub objective: f64,
}

impl Timer {
    /// Builds the engine: resolves the library binding, levelizes the timing
    /// graph and resolves SDC constraints to pins.
    ///
    /// # Errors
    ///
    /// Returns [`StaError`] for unbound classes/pins or combinational cycles.
    pub fn new(design: &Design, lib: &Library) -> Result<Timer, StaError> {
        Timer::with_config(design, lib, TimerConfig::default())
    }

    /// [`Timer::new`] with explicit configuration.
    ///
    /// # Errors
    ///
    /// Same as [`Timer::new`].
    pub fn with_config(
        design: &Design,
        lib: &Library,
        config: TimerConfig,
    ) -> Result<Timer, StaError> {
        let nl = &design.netlist;
        let binding = Binding::resolve(nl, lib)?;
        let graph = TimingGraph::build(nl, &binding)?;

        let mut pin_node_in_net = vec![0u32; nl.num_pins()];
        for net in nl.net_ids() {
            for (i, &p) in nl.net(net).pins().iter().enumerate() {
                pin_node_in_net[p.index()] = i as u32;
            }
        }
        let net_pin_caps: Vec<Vec<f64>> = nl
            .net_ids()
            .map(|net| {
                if nl.net(net).is_clock() {
                    Vec::new()
                } else {
                    nl.net(net)
                        .pins()
                        .iter()
                        .map(|&p| binding.pin_cap(nl, p))
                        .collect()
                }
            })
            .collect();

        let mut input_delay = vec![0.0; nl.num_pins()];
        let mut output_margin = vec![0.0; nl.num_pins()];
        for p in nl.pin_ids() {
            match graph.role(p) {
                PinRole::PrimaryInput => {
                    let name = nl.cell(nl.pin(p).cell()).name().to_owned();
                    input_delay[p.index()] = design.constraints.input_delay(&name);
                }
                PinRole::PrimaryOutput => {
                    let name = nl.cell(nl.pin(p).cell()).name().to_owned();
                    output_margin[p.index()] = design.constraints.output_delay(&name);
                }
                _ => {}
            }
        }

        Ok(Timer {
            binding,
            graph,
            config,
            clock_period: design.constraints.clock_period,
            pin_node_in_net,
            net_pin_caps,
            input_delay,
            output_margin,
        })
    }

    /// The levelized timing graph.
    pub fn graph(&self) -> &TimingGraph {
        &self.graph
    }

    /// The netlist↔library binding.
    pub fn binding(&self) -> &Binding {
        &self.binding
    }

    /// Engine configuration.
    pub fn config(&self) -> TimerConfig {
        self.config
    }

    /// Clock period the analysis checks against, ps.
    pub fn clock_period(&self) -> f64 {
        self.clock_period
    }

    /// Exact analysis: true max/min aggregation; use for reporting WNS/TNS.
    ///
    /// `nl` must be the same netlist (topology) the timer was built from;
    /// only its connectivity is read — pin positions are baked into `forest`.
    pub fn analyze(&self, nl: &Netlist, forest: &SteinerForest) -> Analysis {
        self.run_forward(nl, forest, 0.0)
    }

    /// Smoothed analysis: LSE aggregation at the configured γ; feed this to
    /// [`Timer::gradients`].
    pub fn analyze_smoothed(&self, nl: &Netlist, forest: &SteinerForest) -> Analysis {
        self.run_forward(nl, forest, self.config.gamma)
    }

    /// Elmore forward over all nets (stage 2 of Fig. 3), rayon-parallel.
    fn run_elmore(&self, forest: &SteinerForest) -> Vec<Option<Arc<ElmoreNet>>> {
        let nets: Vec<usize> = (0..forest.len()).collect();
        nets.par_iter()
            .map(|&ni| {
                let net = NetId::new(ni);
                forest.tree(net).map(|tree| {
                    Arc::new(ElmoreNet::forward(
                        tree,
                        &self.net_pin_caps[ni],
                        self.binding.wire_res_per_um,
                        self.binding.wire_cap_per_um,
                    ))
                })
            })
            .collect()
    }

    /// Needed by `analyze*`: the netlist is implicit in the forest (pin
    /// positions were baked into the trees), but arc lookups still need the
    /// structural netlist; the caller guarantees it matches the one used at
    /// construction.
    fn run_forward(&self, nl: &Netlist, forest: &SteinerForest, gamma: f64) -> Analysis {
        let nl_pins = self.pin_node_in_net.len();
        let elmore = self.run_elmore(forest);
        let mut at = vec![0.0f64; nl_pins];
        let mut at_early = vec![0.0f64; nl_pins];
        let mut slew = vec![self.config.input_slew; nl_pins];

        // This borrow-free closure set mirrors the GPU kernels: every level is
        // a batch whose pins read only lower levels.
        for level in self.graph.levels() {
            let results: Vec<(usize, f64, f64, f64)> = level
                .par_iter()
                .map(|&p| {
                    let (a, ae, s) = self.eval_pin(nl, p, &elmore, &at, &at_early, &slew, gamma);
                    (p.index(), a, ae, s)
                })
                .collect();
            for (i, a, ae, s) in results {
                at[i] = a;
                at_early[i] = ae;
                slew[i] = s;
            }
        }

        let (slack, hold_slack) = self.compute_slacks(nl, &at, &at_early, &slew);
        let rat = self.compute_rat(nl, &elmore, &at, &slew, &slack);

        Analysis {
            at,
            at_early,
            slew,
            slack,
            hold_slack,
            rat,
            gamma,
            elmore,
            endpoints: self.graph.endpoints().to_vec(),
        }
    }

    /// Setup/hold slack computation at the endpoints (stage 4 of Fig. 3).
    fn compute_slacks(
        &self,
        nl: &Netlist,
        at: &[f64],
        at_early: &[f64],
        slew: &[f64],
    ) -> (Vec<f64>, Vec<f64>) {
        let nl_pins = at.len();
        let mut slack = vec![f64::INFINITY; nl_pins];
        let mut hold_slack = vec![f64::INFINITY; nl_pins];
        for &p in self.graph.endpoints() {
            let i = p.index();
            match self.graph.role(p) {
                PinRole::RegisterData => {
                    let pin = nl.pin(p);
                    let cb = &self.binding.classes[nl.cell(pin.cell()).class().index()];
                    let setup = cb.setup_arc[pin.class_pin().index()]
                        .map(|a| self.binding.arc(a).constraint_value(slew[i]))
                        .unwrap_or(0.0);
                    let hold = cb.hold_arc[pin.class_pin().index()]
                        .map(|a| self.binding.arc(a).constraint_value(slew[i]))
                        .unwrap_or(0.0);
                    let rat = self.config.clock_arrival + self.clock_period - setup;
                    slack[i] = rat - at[i];
                    hold_slack[i] = at_early[i] - (self.config.clock_arrival + hold);
                }
                PinRole::PrimaryOutput => {
                    let rat = self.clock_period - self.output_margin[i];
                    slack[i] = rat - at[i];
                }
                _ => unreachable!("endpoints are register data pins or POs"),
            }
        }
        (slack, hold_slack)
    }

    /// Backward RAT propagation (min over fanout requirements), exact arc
    /// delays; gives every pin a slack = RAT − AT for reporting and for
    /// net-criticality-based weighting.
    fn compute_rat(
        &self,
        nl: &Netlist,
        elmore: &[Option<Arc<ElmoreNet>>],
        at: &[f64],
        slew: &[f64],
        slack: &[f64],
    ) -> Vec<f64> {
        let nl_pins = at.len();
        let mut rat = vec![f64::INFINITY; nl_pins];
        for &p in self.graph.endpoints() {
            rat[p.index()] = at[p.index()] + slack[p.index()];
        }
        for level in self.graph.levels().iter().rev() {
            for &p in level {
                let i = p.index();
                if !rat[i].is_finite() {
                    continue;
                }
                match self.graph.role(p) {
                    PinRole::CombInput | PinRole::RegisterData | PinRole::PrimaryOutput => {
                        let net = nl.pin(p).net().expect("active sinks are connected");
                        if let Some(e) = elmore[net.index()].as_ref() {
                            let driver = nl.net(net).pins()[0];
                            let node = self.pin_node_in_net[i] as usize;
                            let d = match self.config.wire_model {
                                WireModel::Elmore => e.delay_at(node),
                                WireModel::D2m => e.delay_d2m_at(node),
                            };
                            let cand = rat[i] - d;
                            if cand < rat[driver.index()] {
                                rat[driver.index()] = cand;
                            }
                        }
                    }
                    PinRole::CombOutput => {
                        let pin = nl.pin(p);
                        let cell = nl.cell(pin.cell());
                        let cb = &self.binding.classes[cell.class().index()];
                        let load = pin
                            .net()
                            .and_then(|n| elmore[n.index()].as_ref())
                            .map_or(0.0, |e| e.root_load());
                        for &(arc_idx, from_cp) in &cb.delay_arcs[pin.class_pin().index()] {
                            let from = cell.pins()[from_cp];
                            if matches!(
                                self.graph.role(from),
                                PinRole::Unconnected | PinRole::Clock
                            ) {
                                continue;
                            }
                            let ev =
                                self.binding.arc(arc_idx).eval(slew[from.index()], load);
                            let cand = rat[i] - ev.delay;
                            if cand < rat[from.index()] {
                                rat[from.index()] = cand;
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
        rat
    }

    /// Incremental re-analysis after moving a set of cells (the workload of
    /// the ICCAD-2015 *incremental* timing-driven placement contest the
    /// paper's benchmarks come from).
    ///
    /// Only the Elmore state of nets incident to `moved` cells is recomputed,
    /// and only pins in the transitive fan-out of those nets are
    /// re-propagated; everything else is copied from `prev`. Slacks and the
    /// full RAT sweep are recomputed (they are cheap relative to the forward
    /// arc evaluations). The result is bit-identical to a fresh
    /// [`Timer::analyze`] / [`Timer::analyze_smoothed`] at the same γ.
    ///
    /// `forest` must already reflect the new pin positions
    /// (e.g. via [`SteinerForest::update_positions`]); `prev` must come from
    /// the same γ mode.
    ///
    /// `recompute_rat = false` skips the backward RAT sweep and carries
    /// `prev`'s RATs over: WNS/TNS/slacks stay exact, but
    /// [`Analysis::pin_slack`] on non-endpoint pins reflects the *previous*
    /// state — the right trade for trial-move loops that only compare
    /// WNS/TNS.
    ///
    /// # Panics
    ///
    /// Panics if `prev` was produced for a different netlist (length
    /// mismatch).
    pub fn analyze_incremental(
        &self,
        nl: &Netlist,
        forest: &SteinerForest,
        prev: &Analysis,
        moved: &[dtp_netlist::CellId],
        recompute_rat: bool,
    ) -> Analysis {
        let nl_pins = self.pin_node_in_net.len();
        assert_eq!(prev.at.len(), nl_pins, "analysis from a different netlist");
        let gamma = prev.gamma;

        // 1. Dirty nets: every non-clock net touching a moved cell.
        let mut net_dirty = vec![false; forest.len()];
        for &c in moved {
            for &p in nl.cell(c).pins() {
                if let Some(net) = nl.pin(p).net() {
                    if !nl.net(net).is_clock() {
                        net_dirty[net.index()] = true;
                    }
                }
            }
        }

        // 2. Elmore: recompute dirty nets, share (Arc) the rest.
        let elmore: Vec<Option<Arc<ElmoreNet>>> = (0..forest.len())
            .map(|ni| {
                if net_dirty[ni] {
                    forest.tree(NetId::new(ni)).map(|tree| {
                        Arc::new(ElmoreNet::forward(
                            tree,
                            &self.net_pin_caps[ni],
                            self.binding.wire_res_per_um,
                            self.binding.wire_cap_per_um,
                        ))
                    })
                } else {
                    prev.elmore[ni].clone()
                }
            })
            .collect();

        // 3. Seed dirty pins: drivers (their load changed) and sinks (their
        //    net delay changed) of dirty nets.
        let mut dirty = vec![false; nl_pins];
        for ni in 0..forest.len() {
            if !net_dirty[ni] {
                continue;
            }
            for &p in nl.net(NetId::new(ni)).pins() {
                dirty[p.index()] = true;
            }
        }

        // 4. Forward sweep: re-evaluate a pin iff it is seeded or any of its
        //    fan-ins is dirty; otherwise copy from `prev`.
        let mut at = prev.at.clone();
        let mut at_early = prev.at_early.clone();
        let mut slew = prev.slew.clone();
        for level in self.graph.levels() {
            // Mark propagated dirtiness first (cheap pass, no arc evals).
            let newly: Vec<usize> = level
                .iter()
                .filter_map(|&p| {
                    let i = p.index();
                    if dirty[i] {
                        return Some(i);
                    }
                    let pred_dirty = match self.graph.role(p) {
                        PinRole::CombInput | PinRole::RegisterData | PinRole::PrimaryOutput => {
                            let net = nl.pin(p).net().expect("active sinks are connected");
                            dirty[nl.net(net).pins()[0].index()]
                        }
                        PinRole::CombOutput => {
                            let pin = nl.pin(p);
                            let cell = nl.cell(pin.cell());
                            let cb = &self.binding.classes[cell.class().index()];
                            cb.delay_arcs[pin.class_pin().index()]
                                .iter()
                                .any(|&(_, from_cp)| dirty[cell.pins()[from_cp].index()])
                        }
                        _ => false,
                    };
                    pred_dirty.then_some(i)
                })
                .collect();
            for i in &newly {
                dirty[*i] = true;
            }
            let results: Vec<(usize, f64, f64, f64)> = level
                .par_iter()
                .filter(|p| dirty[p.index()])
                .map(|&p| {
                    let (a, ae, s) = self.eval_pin(nl, p, &elmore, &at, &at_early, &slew, gamma);
                    (p.index(), a, ae, s)
                })
                .collect();
            for (i, a, ae, s) in results {
                at[i] = a;
                at_early[i] = ae;
                slew[i] = s;
            }
        }

        let (slack, hold_slack) = self.compute_slacks(nl, &at, &at_early, &slew);
        let rat = if recompute_rat {
            self.compute_rat(nl, &elmore, &at, &slew, &slack)
        } else {
            prev.rat.clone()
        };
        Analysis {
            at,
            at_early,
            slew,
            slack,
            hold_slack,
            rat,
            gamma,
            elmore,
            endpoints: self.graph.endpoints().to_vec(),
        }
    }

    /// Forward evaluation of one pin given completed lower levels.
    #[allow(clippy::too_many_arguments)]
    fn eval_pin(
        &self,
        nl: &Netlist,
        p: PinId,
        elmore: &[Option<Arc<ElmoreNet>>],
        at: &[f64],
        at_early: &[f64],
        slew: &[f64],
        gamma: f64,
    ) -> (f64, f64, f64) {
        match self.graph.role(p) {
            PinRole::PrimaryInput => {
                let d = self.input_delay[p.index()];
                (d, d, self.config.input_slew)
            }
            PinRole::RegisterOutput => {
                // Launch: CK → Q arc at the ideal clock edge (Eq. 11 with the
                // clock pin as the only input).
                let pin = nl.pin(p);
                let cell = nl.cell(pin.cell());
                let cb = &self.binding.classes[cell.class().index()];
                let load = pin
                    .net()
                    .and_then(|n| elmore[n.index()].as_ref())
                    .map_or(0.0, |e| e.root_load());
                let arcs = &cb.delay_arcs[pin.class_pin().index()];
                if arcs.is_empty() {
                    return (self.config.clock_arrival, self.config.clock_arrival, self.config.input_slew);
                }
                let mut a_vals = Vec::with_capacity(arcs.len());
                let mut s_vals = Vec::with_capacity(arcs.len());
                for &(arc_idx, _) in arcs {
                    let e = self.binding.arc(arc_idx).eval(self.config.clock_slew, load);
                    a_vals.push(self.config.clock_arrival + e.delay);
                    s_vals.push(e.slew);
                }
                let (a, s) = aggregate(&a_vals, &s_vals, gamma);
                let ae = a_vals.iter().cloned().fold(f64::INFINITY, f64::min);
                (a, ae, s)
            }
            PinRole::CombInput | PinRole::RegisterData | PinRole::PrimaryOutput => {
                // Net arc from the driver (Eq. 9).
                let net = nl.pin(p).net().expect("active sink pins are connected");
                let Some(e) = elmore[net.index()].as_ref() else {
                    return (0.0, 0.0, self.config.input_slew);
                };
                let driver = nl.net(net).pins()[0];
                let node = self.pin_node_in_net[p.index()] as usize;
                let d = match self.config.wire_model {
                    WireModel::Elmore => e.delay_at(node),
                    WireModel::D2m => e.delay_d2m_at(node),
                };
                let s_in = slew[driver.index()];
                let s = (s_in * s_in + e.impulse_sq_at(node)).sqrt().max(1e-3);
                (at[driver.index()] + d, at_early[driver.index()] + d, s)
            }
            PinRole::CombOutput => {
                // Cell arcs (Eq. 11).
                let pin = nl.pin(p);
                let cell = nl.cell(pin.cell());
                let cb = &self.binding.classes[cell.class().index()];
                let load = pin
                    .net()
                    .and_then(|n| elmore[n.index()].as_ref())
                    .map_or(0.0, |e| e.root_load());
                let mut a_vals = Vec::new();
                let mut ae_vals = Vec::new();
                let mut s_vals = Vec::new();
                for &(arc_idx, from_cp) in &cb.delay_arcs[pin.class_pin().index()] {
                    let from = cell.pins()[from_cp];
                    if matches!(self.graph.role(from), PinRole::Unconnected | PinRole::Clock) {
                        continue;
                    }
                    let e = self.binding.arc(arc_idx).eval(slew[from.index()], load);
                    a_vals.push(at[from.index()] + e.delay);
                    ae_vals.push(at_early[from.index()] + e.delay);
                    s_vals.push(e.slew);
                }
                if a_vals.is_empty() {
                    return (0.0, 0.0, self.config.input_slew);
                }
                let (a, s) = aggregate(&a_vals, &s_vals, gamma);
                let ae = ae_vals.iter().cloned().fold(f64::INFINITY, f64::min);
                (a, ae, s)
            }
            PinRole::Clock | PinRole::Unconnected => (0.0, 0.0, self.config.input_slew),
        }
    }

    /// Backward sweep (stage 5 of Fig. 3): gradient of
    /// `f = −t1·TNSγ − t2·WNSγ` with respect to all pin/cell positions.
    ///
    /// `analysis` should come from [`Timer::analyze_smoothed`] (with an exact
    /// analysis the LSE weights degenerate to hard argmax subgradients,
    /// which is mathematically valid but reintroduces the oscillation the
    /// paper's smoothing removes).
    ///
    /// # Panics
    ///
    /// Panics if the forest does not match the analysis (different net
    /// count).
    pub fn gradients(
        &self,
        nl: &Netlist,
        analysis: &Analysis,
        forest: &SteinerForest,
        t1: f64,
        t2: f64,
    ) -> PositionGradients {
        let n_pins = analysis.at.len();
        assert_eq!(forest.len(), analysis.elmore.len(), "forest/analysis mismatch");
        let gamma = if analysis.gamma > 0.0 { analysis.gamma } else { self.config.gamma };

        // --- endpoint seeds ---------------------------------------------------
        let slacks: Vec<f64> = analysis
            .endpoints
            .iter()
            .map(|&p| analysis.slack[p.index()])
            .collect();
        let objective;
        let mut g_at = vec![0.0f64; n_pins];
        let mut g_slew = vec![0.0f64; n_pins];
        if slacks.is_empty() {
            objective = 0.0;
        } else {
            let tns_g = slacks.iter().map(|&s| smooth_neg(s, gamma)).sum::<f64>();
            let (wns_g, wns_w) = lse_min_weights(&slacks, gamma);
            objective = -t1 * tns_g - t2 * wns_g;
            for (k, &p) in analysis.endpoints.iter().enumerate() {
                let i = p.index();
                let dslack = -t1 * smooth_neg_grad(slacks[k], gamma) - t2 * wns_w[k];
                // slack = rat − at  ⇒  ∂f/∂at = −∂f/∂slack.
                g_at[i] += -dslack;
                // Register setup margin depends on the data slew:
                // slack = … − setup(slew) − at.
                if self.graph.role(p) == PinRole::RegisterData {
                    let pin = nl.pin(p);
                    let cb = &self.binding.classes[nl.cell(pin.cell()).class().index()];
                    if let Some(arc_idx) = cb.setup_arc[pin.class_pin().index()] {
                        if let Some(t) = &self.binding.arc(arc_idx).constraint {
                            let dsetup = t.value_grad(analysis.slew[i]).1;
                            g_slew[i] += dslack * (-dsetup);
                        }
                    }
                }
            }
        }

        // --- reverse level sweep (Eqs. 10, 12) --------------------------------
        let mut seeds: Vec<Option<ElmoreSeeds>> = (0..forest.len())
            .map(|ni| {
                forest
                    .tree(NetId::new(ni))
                    .map(|t| ElmoreSeeds::zeros(t.num_nodes()))
            })
            .collect();

        for level in self.graph.levels().iter().rev() {
            for &p in level {
                let i = p.index();
                if g_at[i] == 0.0 && g_slew[i] == 0.0 {
                    continue;
                }
                match self.graph.role(p) {
                    PinRole::CombInput | PinRole::RegisterData | PinRole::PrimaryOutput => {
                        // Net arc backward (Eq. 10).
                        let net = nl.pin(p).net().expect("active sinks are connected");
                        let Some(e) = analysis.elmore[net.index()].as_ref() else { continue };
                        let driver = nl.net(net).pins()[0];
                        let node = self.pin_node_in_net[i] as usize;
                        g_at[driver.index()] += g_at[i];
                        let s_v = analysis.slew[i];
                        let s_u = analysis.slew[driver.index()];
                        if s_v > 0.0 && e.impulse_sq_at(node) > 0.0 {
                            g_slew[driver.index()] += (s_u / s_v) * g_slew[i];
                        } else {
                            // Degenerate slew merge: all gradient to the driver.
                            g_slew[driver.index()] += g_slew[i];
                        }
                        let sd = seeds[net.index()].as_mut().expect("seeded with the tree");
                        match self.config.wire_model {
                            WireModel::Elmore => sd.grad_delay[node] += g_at[i],
                            WireModel::D2m => {
                                let (d_dm1, d_dbeta) = e.d2m_partials(node);
                                sd.grad_delay[node] += g_at[i] * d_dm1;
                                sd.grad_beta[node] += g_at[i] * d_dbeta;
                            }
                        }
                        if s_v > 0.0 {
                            sd.grad_impulse_sq[node] += g_slew[i] / (2.0 * s_v);
                        }
                    }
                    PinRole::CombOutput => {
                        self.backprop_cell_output(
                            nl, p, analysis, gamma, &mut g_at, &mut g_slew, &mut seeds,
                        );
                    }
                    _ => {}
                }
            }
        }
        // Register launch pins: AT(Q) depends on the Q net's load (Eq. 12e
        // applied to the CK→Q arc).
        for p in nl.pin_ids() {
            if self.graph.role(p) != PinRole::RegisterOutput {
                continue;
            }
            let i = p.index();
            if g_at[i] == 0.0 && g_slew[i] == 0.0 {
                continue;
            }
            let pin = nl.pin(p);
            let cell = nl.cell(pin.cell());
            let cb = &self.binding.classes[cell.class().index()];
            let Some(net) = pin.net() else { continue };
            let Some(e) = analysis.elmore[net.index()].as_ref() else { continue };
            let load = e.root_load();
            let arcs = &cb.delay_arcs[pin.class_pin().index()];
            if arcs.is_empty() {
                continue;
            }
            // Weights over the (usually single) CK→Q arcs.
            let evals: Vec<_> = arcs
                .iter()
                .map(|&(a, _)| self.binding.arc(a).eval(self.config.clock_slew, load))
                .collect();
            let a_vals: Vec<f64> =
                evals.iter().map(|e| self.config.clock_arrival + e.delay).collect();
            let s_vals: Vec<f64> = evals.iter().map(|e| e.slew).collect();
            let wa = weights_of(&a_vals, gamma);
            let ws = weights_of(&s_vals, gamma);
            let mut g_load = 0.0;
            for (k, ev) in evals.iter().enumerate() {
                g_load += ev.d_delay_d_load * wa[k] * g_at[i];
                g_load += ev.d_slew_d_load * ws[k] * g_slew[i];
            }
            seeds[net.index()]
                .as_mut()
                .expect("register output nets are signal nets")
                .grad_root_load += g_load;
        }

        // --- Elmore backward per net (Eq. 8), rayon-parallel -------------------
        let per_net: Vec<(usize, Vec<(f64, f64)>)> = (0..forest.len())
            .into_par_iter()
            .filter_map(|ni| {
                let tree = forest.tree(NetId::new(ni))?;
                let e = analysis.elmore[ni].as_ref()?;
                let sd = seeds[ni].as_ref()?;
                let nonzero = sd.grad_root_load != 0.0
                    || sd.grad_delay.iter().any(|&g| g != 0.0)
                    || sd.grad_beta.iter().any(|&g| g != 0.0)
                    || sd.grad_impulse_sq.iter().any(|&g| g != 0.0);
                if !nonzero {
                    return None;
                }
                let (gx, gy) = e.backward(tree, sd);
                Some((ni, tree.scatter_gradient(&gx, &gy)))
            })
            .collect();

        let mut pin_grad_x = vec![0.0f64; n_pins];
        let mut pin_grad_y = vec![0.0f64; n_pins];
        for (ni, per_pin) in per_net {
            let pins = nl.net(NetId::new(ni)).pins();
            for (k, &(gx, gy)) in per_pin.iter().enumerate() {
                pin_grad_x[pins[k].index()] += gx;
                pin_grad_y[pins[k].index()] += gy;
            }
        }

        let mut cell_grad_x = vec![0.0f64; nl.num_cells()];
        let mut cell_grad_y = vec![0.0f64; nl.num_cells()];
        for p in nl.pin_ids() {
            let c = nl.pin(p).cell().index();
            cell_grad_x[c] += pin_grad_x[p.index()];
            cell_grad_y[c] += pin_grad_y[p.index()];
        }

        PositionGradients { pin_grad_x, pin_grad_y, cell_grad_x, cell_grad_y, objective }
    }

    /// Eq. (12): distributes a combinational output pin's gradient to its
    /// fan-in pins and to the load of its own net.
    #[allow(clippy::too_many_arguments)]
    fn backprop_cell_output(
        &self,
        nl: &Netlist,
        p: PinId,
        analysis: &Analysis,
        gamma: f64,
        g_at: &mut [f64],
        g_slew: &mut [f64],
        seeds: &mut [Option<ElmoreSeeds>],
    ) {
        let i = p.index();
        let pin = nl.pin(p);
        let cell = nl.cell(pin.cell());
        let cb = &self.binding.classes[cell.class().index()];
        let net = pin.net();
        let load = net
            .and_then(|n| analysis.elmore[n.index()].as_ref())
            .map_or(0.0, |e| e.root_load());
        let mut inputs = Vec::new();
        for &(arc_idx, from_cp) in &cb.delay_arcs[pin.class_pin().index()] {
            let from = cell.pins()[from_cp];
            if matches!(self.graph.role(from), PinRole::Unconnected | PinRole::Clock) {
                continue;
            }
            let ev = self.binding.arc(arc_idx).eval(analysis.slew[from.index()], load);
            inputs.push((from, ev));
        }
        if inputs.is_empty() {
            return;
        }
        let a_vals: Vec<f64> = inputs
            .iter()
            .map(|(from, ev)| analysis.at[from.index()] + ev.delay)
            .collect();
        let s_vals: Vec<f64> = inputs.iter().map(|(_, ev)| ev.slew).collect();
        let wa = weights_of(&a_vals, gamma);
        let ws = weights_of(&s_vals, gamma);
        let mut g_load = 0.0;
        for (k, (from, ev)) in inputs.iter().enumerate() {
            let g_delay_k = wa[k] * g_at[i]; // Eq. 12b
            let g_slew_k = ws[k] * g_slew[i]; // Eq. 12c
            g_at[from.index()] += wa[k] * g_at[i]; // Eq. 12a
            g_slew[from.index()] +=
                ev.d_delay_d_slew * g_delay_k + ev.d_slew_d_slew * g_slew_k; // Eq. 12d
            g_load += ev.d_delay_d_load * g_delay_k + ev.d_slew_d_load * g_slew_k;
            // Eq. 12e
        }
        if let Some(n) = net {
            if let Some(sd) = seeds[n.index()].as_mut() {
                sd.grad_root_load += g_load;
            }
        }
    }

}

/// LSE softmax weights, or hard one-hot argmax weights when `gamma == 0`
/// (the exact-mode subgradient).
fn weights_of(vals: &[f64], gamma: f64) -> Vec<f64> {
    if gamma > 0.0 {
        lse_max_weights(vals, gamma).1
    } else {
        let mut w = vec![0.0; vals.len()];
        let mut best = 0usize;
        for (i, &v) in vals.iter().enumerate() {
            if v > vals[best] {
                best = i;
            }
        }
        w[best] = 1.0;
        w
    }
}

/// Aggregates arrival candidates and slews with smoothed or hard max.
fn aggregate(a_vals: &[f64], s_vals: &[f64], gamma: f64) -> (f64, f64) {
    if gamma > 0.0 {
        (lse_max(a_vals, gamma), lse_max(s_vals, gamma))
    } else {
        (
            a_vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
            s_vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        )
    }
}
