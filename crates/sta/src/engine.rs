//! The timing engine: forward analysis and backward gradients (§3.3, Fig. 3).
//!
//! [`Timer`] is constructed once per design (binding + levelization +
//! constraint resolution — stage 1 of Fig. 3, "only once"); each placement
//! iteration then calls [`Timer::analyze`] / [`Timer::analyze_smoothed`] with
//! the current Steiner forest (stages 2–4) and [`Timer::gradients`] for the
//! backward sweep (stage 5).
//!
//! # The allocation-free hot path
//!
//! A timing-driven placement loop calls the timer thousands of times, so the
//! per-call entry points come in two flavors:
//!
//! - the plain ones ([`Timer::analyze`], [`Timer::analyze_incremental`],
//!   [`Timer::gradients`]) allocate their result vectors fresh — convenient
//!   for one-shot analyses and tests;
//! - the `*_into` ones ([`Timer::analyze_into`],
//!   [`Timer::analyze_incremental_into`], [`Timer::gradients_into`]) draw
//!   every buffer from a caller-owned [`AnalysisScratch`]. Retiring an
//!   [`Analysis`] back into the scratch with [`AnalysisScratch::recycle`]
//!   double-buffers the pin-length vectors: after warm-up the timing hot
//!   path performs no full-vector allocation or clone per iteration.
//!
//! Per-pin arc aggregation uses fixed-capacity stack buffers (spilling to
//! the heap only for cells with more than [`MAX_INLINE_ARCS`] fan-in arcs),
//! and the levelized graph, per-class delay arcs and per-net pin
//! capacitances are all stored CSR-flat (offsets + one data array) so the
//! sweeps touch contiguous memory.

use crate::binding::Binding;
use crate::elmore::{ElmoreNet, ElmoreSeeds};
use crate::error::StaError;
use crate::graph::{PinRole, TimingGraph};
use crate::smoothing::{
    lse_max, lse_max_weights_into, lse_min_weights_into, smooth_neg, smooth_neg_grad,
};
use dtp_liberty::{ArcEval, Library};
use dtp_netlist::{CellId, Design, NetId, Netlist, PinId};
use dtp_rsmt::SteinerForest;
use rayon::prelude::*;
use std::sync::Arc;

/// Wire delay metric computed from the Elmore moments (§3.4.2: the
/// framework generalizes to "other more complex interconnect delay models,
/// … as long as the model can be written in analytical form").
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum WireModel {
    /// First-moment (Elmore) delay — Eq. 7b.
    #[default]
    Elmore,
    /// D2M two-moment delay metric: `ln2 · m1²/√m2`.
    D2m,
}

/// Tunable parameters of the timing engine.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TimerConfig {
    /// LSE smoothing parameter γ, in ps (the paper uses ≈ 100).
    pub gamma: f64,
    /// Which wire delay metric to derive from the Elmore moments.
    pub wire_model: WireModel,
    /// Slew of the ideal clock at register clock pins (ps).
    pub clock_slew: f64,
    /// Slew assumed at primary inputs (ps).
    pub input_slew: f64,
    /// Arrival time of the clock edge at registers (ps); 0 for an ideal
    /// zero-insertion-delay clock network.
    pub clock_arrival: f64,
}

impl Default for TimerConfig {
    fn default() -> Self {
        TimerConfig {
            gamma: 100.0,
            wire_model: WireModel::default(),
            clock_slew: 20.0,
            input_slew: 10.0,
            clock_arrival: 0.0,
        }
    }
}

/// Maximum number of fan-in arcs aggregated on the stack per pin; pins with
/// more arcs fall back to a heap buffer (no common library cell comes close).
pub const MAX_INLINE_ARCS: usize = 16;

/// Fixed-capacity stack buffer for per-pin arc aggregation in the level
/// sweeps. Spills to the heap only past `N` elements, so the common case
/// performs no allocation inside the rayon-parallel pin evaluations.
#[derive(Debug)]
struct F64Buf<const N: usize> {
    stack: [f64; N],
    len: usize,
    heap: Vec<f64>,
}

impl<const N: usize> F64Buf<N> {
    #[inline]
    fn new() -> Self {
        F64Buf { stack: [0.0; N], len: 0, heap: Vec::new() }
    }

    #[inline]
    fn push(&mut self, v: f64) {
        if self.heap.is_empty() && self.len < N {
            self.stack[self.len] = v;
            self.len += 1;
        } else {
            if self.heap.is_empty() {
                self.heap.reserve(N + 1);
                self.heap.extend_from_slice(&self.stack[..self.len]);
                self.len = 0;
            }
            self.heap.push(v);
        }
    }

    #[inline]
    fn is_empty(&self) -> bool {
        self.len == 0 && self.heap.is_empty()
    }

    #[inline]
    fn as_slice(&self) -> &[f64] {
        if self.heap.is_empty() { &self.stack[..self.len] } else { &self.heap }
    }

    /// Sets the buffer to `n` zeros (for in-place weight computation).
    fn resize_zeroed(&mut self, n: usize) {
        if n <= N {
            self.heap.clear();
            self.len = n;
            self.stack[..n].fill(0.0);
        } else {
            self.len = 0;
            self.heap.clear();
            self.heap.resize(n, 0.0);
        }
    }

    #[inline]
    fn as_mut_slice(&mut self) -> &mut [f64] {
        if self.heap.is_empty() { &mut self.stack[..self.len] } else { &mut self.heap }
    }
}

/// The differentiable STA engine bound to one design + library.
#[derive(Clone, Debug)]
pub struct Timer {
    binding: Binding,
    graph: TimingGraph,
    config: TimerConfig,
    clock_period: f64,
    /// Per-pin index of the pin within its net's pin list (tree node index).
    pin_node_in_net: Vec<u32>,
    /// CSR data: pin capacitances in net pin order, grouped by net (clock
    /// nets contribute an empty range).
    net_pin_caps: Vec<f64>,
    /// CSR offsets into `net_pin_caps`, one per net plus a trailing end.
    net_cap_offsets: Vec<u32>,
    /// Resolved SDC arrival offset per pin (PI pins only, else 0).
    input_delay: Vec<f64>,
    /// Resolved SDC required margin per pin (PO pins only, else 0).
    output_margin: Vec<f64>,
    /// Capture endpoints, shared (`Arc`) with every produced [`Analysis`].
    endpoints: Arc<[PinId]>,
}

/// The result of one timing analysis: arrival times, slews, slacks and the
/// per-net Elmore state needed for the backward pass.
#[derive(Clone, Debug)]
pub struct Analysis {
    /// Late (worst-case) arrival time per pin, ps.
    pub at: Vec<f64>,
    /// Early (best-case) arrival time per pin, ps.
    pub at_early: Vec<f64>,
    /// Propagated (worst-case) slew per pin, ps.
    pub slew: Vec<f64>,
    /// Setup slack per pin (`f64::INFINITY` for non-endpoints), ps.
    pub slack: Vec<f64>,
    /// Hold slack per pin (`f64::INFINITY` where unconstrained), ps.
    pub hold_slack: Vec<f64>,
    /// Required arrival time per pin (late/setup view), propagated backward
    /// from the endpoints; `f64::INFINITY` on cones that reach no endpoint.
    pub rat: Vec<f64>,
    /// γ used for max-smoothing in this analysis; 0 means exact (hard max).
    pub gamma: f64,
    /// Per-net Elmore state, shared (`Arc`) so incremental analyses reuse
    /// clean nets without copying.
    elmore: Vec<Option<Arc<ElmoreNet>>>,
    endpoints: Arc<[PinId]>,
}

impl Analysis {
    /// Worst negative slack: the minimum setup slack over endpoints (Eq. 2).
    /// Positive if all constraints are met.
    pub fn wns(&self) -> f64 {
        self.endpoints
            .iter()
            .map(|&p| self.slack[p.index()])
            .fold(f64::INFINITY, f64::min)
    }

    /// Total negative slack: `Σ min(0, slack)` over endpoints (Eq. 2).
    pub fn tns(&self) -> f64 {
        self.endpoints
            .iter()
            .map(|&p| self.slack[p.index()].min(0.0))
            .sum()
    }

    /// Worst hold slack over endpoints.
    pub fn wns_hold(&self) -> f64 {
        self.endpoints
            .iter()
            .map(|&p| self.hold_slack[p.index()])
            .fold(f64::INFINITY, f64::min)
    }

    /// Total negative hold slack over endpoints.
    pub fn tns_hold(&self) -> f64 {
        self.endpoints
            .iter()
            .map(|&p| self.hold_slack[p.index()].min(0.0))
            .filter(|s| s.is_finite())
            .sum()
    }

    /// Smoothed TNS (`Σ smooth_min(0, slack)`) at smoothing `gamma`.
    pub fn tns_smooth(&self, gamma: f64) -> f64 {
        self.endpoints
            .iter()
            .map(|&p| smooth_neg(self.slack[p.index()], gamma))
            .sum()
    }

    /// Smoothed WNS (LSE-min over endpoint slacks) at smoothing `gamma`.
    pub fn wns_smooth(&self, gamma: f64) -> f64 {
        let slacks: Vec<f64> = self.endpoints.iter().map(|&p| self.slack[p.index()]).collect();
        if slacks.is_empty() {
            return 0.0;
        }
        crate::smoothing::lse_min(&slacks, gamma)
    }

    /// Capture endpoints of the design.
    pub fn endpoints(&self) -> &[PinId] {
        &self.endpoints
    }

    /// Slack of an arbitrary pin (`RAT − AT`); `f64::INFINITY` for pins whose
    /// fan-out cone reaches no endpoint.
    pub fn pin_slack(&self, pin: PinId) -> f64 {
        let i = pin.index();
        if self.rat[i].is_finite() {
            self.rat[i] - self.at[i]
        } else {
            f64::INFINITY
        }
    }

    /// The Elmore state of a net (None for clock nets).
    pub fn elmore(&self, net: NetId) -> Option<&ElmoreNet> {
        self.elmore[net.index()].as_deref()
    }
}

/// Reusable buffers for the per-iteration timing hot path.
///
/// One scratch serves any number of [`Timer::analyze_into`] /
/// [`Timer::analyze_incremental_into`] / [`Timer::gradients_into`] calls on
/// the same design. Feed retired analyses back with
/// [`AnalysisScratch::recycle`] so their vectors return to the pool; the
/// ping-pong between the live [`Analysis`] and the pool is what makes the
/// incremental path allocation-free after the first iteration.
#[derive(Debug, Default)]
pub struct AnalysisScratch {
    /// Pool of retired pin-length `f64` buffers (at / slew / slack / rat …).
    pool_f64: Vec<Vec<f64>>,
    /// Pool of retired per-net Elmore vectors.
    pool_elmore: Vec<Vec<Option<Arc<ElmoreNet>>>>,
    /// Per-level sweep results (`None` for pins skipped as clean).
    level_results: Vec<Option<(usize, f64, f64, f64)>>,
    /// Per-net dirty flags for the incremental path.
    net_dirty: Vec<bool>,
    /// Per-pin dirty flags for the incremental frontier sweep.
    pin_dirty: Vec<bool>,
    /// Indices of dirty nets this iteration.
    dirty_nets: Vec<usize>,
    /// Parallel Elmore rebuild results for dirty nets.
    rebuilt: Vec<(usize, Option<Arc<ElmoreNet>>)>,
    /// ∂f/∂AT per pin (gradient sweep).
    g_at: Vec<f64>,
    /// ∂f/∂slew per pin (gradient sweep).
    g_slew: Vec<f64>,
    /// Per-net Elmore gradient seeds, reused across gradient calls.
    seeds: Vec<Option<ElmoreSeeds>>,
    /// Endpoint slacks (gradient objective evaluation).
    endpoint_slacks: Vec<f64>,
    /// LSE-min weights over endpoint slacks.
    endpoint_weights: Vec<f64>,
    /// Fan-in pins + arc evaluations of one combinational output.
    arc_inputs: Vec<(PinId, ArcEval)>,
    /// Arc evaluations of one register launch pin.
    arc_evals: Vec<ArcEval>,
    /// Per-net position gradients from the parallel Elmore backward pass.
    net_grads: Vec<Option<NetGrad>>,
}

/// One net's scattered position gradient: net index + per-pin (∂x, ∂y).
type NetGrad = (usize, Vec<(f64, f64)>);

impl AnalysisScratch {
    /// An empty scratch; buffers grow on first use and are reused after.
    pub fn new() -> Self {
        AnalysisScratch::default()
    }

    /// Pre-sizes the pools and per-entity buffers for a design with
    /// `num_pins` pins and `num_nets` nets, so the warm-up allocations of the
    /// first analyses happen once at flow start instead of inside the
    /// iteration loop. Six pin-length `f64` buffers plus one Elmore vector
    /// cover a full [`Analysis`]; the pools hold two of each because the
    /// incremental flow keeps the previous analysis alive while building the
    /// next one. The incremental bookkeeping vectors are grown to their
    /// steady-state lengths directly.
    pub fn presize(&mut self, num_pins: usize, num_nets: usize) {
        while self.pool_f64.len() < 12 {
            self.pool_f64.push(Vec::new());
        }
        for v in self.pool_f64.iter_mut() {
            if v.capacity() < num_pins {
                v.reserve(num_pins - v.capacity());
            }
        }
        while self.pool_elmore.len() < 2 {
            self.pool_elmore.push(Vec::new());
        }
        for v in self.pool_elmore.iter_mut() {
            if v.capacity() < num_nets {
                v.reserve(num_nets - v.capacity());
            }
        }
        self.level_results.reserve(num_pins.saturating_sub(self.level_results.capacity()));
        self.net_dirty.reserve(num_nets.saturating_sub(self.net_dirty.capacity()));
        self.pin_dirty.reserve(num_pins.saturating_sub(self.pin_dirty.capacity()));
        self.dirty_nets.reserve(num_nets.saturating_sub(self.dirty_nets.capacity()));
        self.rebuilt.reserve(num_nets.saturating_sub(self.rebuilt.capacity()));
        self.g_at.reserve(num_pins.saturating_sub(self.g_at.capacity()));
        self.g_slew.reserve(num_pins.saturating_sub(self.g_slew.capacity()));
        self.seeds.reserve(num_nets.saturating_sub(self.seeds.capacity()));
        self.net_grads.reserve(num_nets.saturating_sub(self.net_grads.capacity()));
    }

    /// Retires an [`Analysis`], returning its vectors to the pool so the
    /// next `*_into` call reuses them instead of allocating.
    pub fn recycle(&mut self, analysis: Analysis) {
        let Analysis { at, at_early, slew, slack, hold_slack, rat, mut elmore, .. } = analysis;
        for v in [at, at_early, slew, slack, hold_slack, rat] {
            self.pool_f64.push(v);
        }
        elmore.clear();
        self.pool_elmore.push(elmore);
    }

    /// A pooled buffer of `n` copies of `fill`.
    fn take_filled(&mut self, n: usize, fill: f64) -> Vec<f64> {
        let mut b = self.pool_f64.pop().unwrap_or_default();
        b.clear();
        b.resize(n, fill);
        b
    }

    /// A pooled buffer holding a copy of `src` (a memcpy, no allocation once
    /// the pool is warm).
    fn take_copied(&mut self, src: &[f64]) -> Vec<f64> {
        let mut b = self.pool_f64.pop().unwrap_or_default();
        b.clear();
        b.extend_from_slice(src);
        b
    }

    /// A pooled (empty) per-net Elmore vector.
    fn take_elmore(&mut self) -> Vec<Option<Arc<ElmoreNet>>> {
        let mut b = self.pool_elmore.pop().unwrap_or_default();
        b.clear();
        b
    }
}

/// Gradients of the timing objective with respect to positions.
#[derive(Clone, Debug, Default)]
pub struct PositionGradients {
    /// ∂f/∂x per pin.
    pub pin_grad_x: Vec<f64>,
    /// ∂f/∂y per pin.
    pub pin_grad_y: Vec<f64>,
    /// ∂f/∂x per cell (sum over the cell's pins).
    pub cell_grad_x: Vec<f64>,
    /// ∂f/∂y per cell.
    pub cell_grad_y: Vec<f64>,
    /// The smoothed objective value `−t1·TNSγ − t2·WNSγ` (to be minimized).
    pub objective: f64,
}

impl Timer {
    /// Builds the engine: resolves the library binding, levelizes the timing
    /// graph and resolves SDC constraints to pins.
    ///
    /// # Errors
    ///
    /// Returns [`StaError`] for unbound classes/pins or combinational cycles.
    pub fn new(design: &Design, lib: &Library) -> Result<Timer, StaError> {
        Timer::with_config(design, lib, TimerConfig::default())
    }

    /// [`Timer::new`] with explicit configuration.
    ///
    /// # Errors
    ///
    /// Same as [`Timer::new`].
    pub fn with_config(
        design: &Design,
        lib: &Library,
        config: TimerConfig,
    ) -> Result<Timer, StaError> {
        let nl = &design.netlist;
        let binding = Binding::resolve(nl, lib)?;
        let graph = TimingGraph::build(nl, &binding)?;

        let mut pin_node_in_net = vec![0u32; nl.num_pins()];
        for net in nl.net_ids() {
            for (i, &p) in nl.net(net).pins().iter().enumerate() {
                pin_node_in_net[p.index()] = i as u32;
            }
        }
        // CSR per-net pin capacitances; clock nets own an empty range (the
        // ideal clock network is never analyzed).
        let mut net_cap_offsets = Vec::with_capacity(nl.num_nets() + 1);
        let mut net_pin_caps = Vec::new();
        net_cap_offsets.push(0u32);
        for net in nl.net_ids() {
            if !nl.net(net).is_clock() {
                for &p in nl.net(net).pins() {
                    net_pin_caps.push(binding.pin_cap(nl, p));
                }
            }
            net_cap_offsets.push(net_pin_caps.len() as u32);
        }

        let mut input_delay = vec![0.0; nl.num_pins()];
        let mut output_margin = vec![0.0; nl.num_pins()];
        for p in nl.pin_ids() {
            match graph.role(p) {
                PinRole::PrimaryInput => {
                    let name = nl.cell(nl.pin(p).cell()).name().to_owned();
                    input_delay[p.index()] = design.constraints.input_delay(&name);
                }
                PinRole::PrimaryOutput => {
                    let name = nl.cell(nl.pin(p).cell()).name().to_owned();
                    output_margin[p.index()] = design.constraints.output_delay(&name);
                }
                _ => {}
            }
        }

        let endpoints: Arc<[PinId]> = graph.endpoints().into();
        Ok(Timer {
            binding,
            graph,
            config,
            clock_period: design.constraints.clock_period,
            pin_node_in_net,
            net_pin_caps,
            net_cap_offsets,
            input_delay,
            output_margin,
            endpoints,
        })
    }

    /// The levelized timing graph.
    pub fn graph(&self) -> &TimingGraph {
        &self.graph
    }

    /// The netlist↔library binding.
    pub fn binding(&self) -> &Binding {
        &self.binding
    }

    /// Engine configuration.
    pub fn config(&self) -> TimerConfig {
        self.config
    }

    /// Clock period the analysis checks against, ps.
    pub fn clock_period(&self) -> f64 {
        self.clock_period
    }

    /// Pin capacitances of net `ni` in net pin order (empty for clock nets).
    #[inline]
    fn net_caps(&self, ni: usize) -> &[f64] {
        let lo = self.net_cap_offsets[ni] as usize;
        let hi = self.net_cap_offsets[ni + 1] as usize;
        &self.net_pin_caps[lo..hi]
    }

    /// Exact analysis: true max/min aggregation; use for reporting WNS/TNS.
    ///
    /// `nl` must be the same netlist (topology) the timer was built from;
    /// only its connectivity is read — pin positions are baked into `forest`.
    pub fn analyze(&self, nl: &Netlist, forest: &SteinerForest) -> Analysis {
        let mut scratch = AnalysisScratch::new();
        self.run_forward_into(nl, forest, 0.0, true, &mut scratch)
    }

    /// Smoothed analysis: LSE aggregation at the configured γ; feed this to
    /// [`Timer::gradients`].
    pub fn analyze_smoothed(&self, nl: &Netlist, forest: &SteinerForest) -> Analysis {
        let mut scratch = AnalysisScratch::new();
        self.run_forward_into(nl, forest, self.config.gamma, true, &mut scratch)
    }

    /// [`Timer::analyze`] drawing every buffer from `scratch` — the
    /// allocation-free full-analysis entry point of the placement loop.
    pub fn analyze_into(
        &self,
        nl: &Netlist,
        forest: &SteinerForest,
        scratch: &mut AnalysisScratch,
    ) -> Analysis {
        self.run_forward_into(nl, forest, 0.0, true, scratch)
    }

    /// [`Timer::analyze_smoothed`] drawing every buffer from `scratch`.
    pub fn analyze_smoothed_into(
        &self,
        nl: &Netlist,
        forest: &SteinerForest,
        scratch: &mut AnalysisScratch,
    ) -> Analysis {
        self.run_forward_into(nl, forest, self.config.gamma, true, scratch)
    }

    /// Exact forward analysis that *skips* the backward RAT sweep — the
    /// analysis half of the path-extraction timing mode. Endpoint slacks
    /// (and therefore WNS/TNS and path extraction, which read only arrival
    /// times and endpoint slacks) are identical to [`Timer::analyze_into`];
    /// [`Analysis::pin_slack`] on non-endpoint pins returns `f64::INFINITY`
    /// because no RATs were propagated. Skipping the sweep removes the one
    /// remaining whole-graph backward pass from the periodic analysis.
    pub fn analyze_no_rat_into(
        &self,
        nl: &Netlist,
        forest: &SteinerForest,
        scratch: &mut AnalysisScratch,
    ) -> Analysis {
        self.run_forward_into(nl, forest, 0.0, false, scratch)
    }

    /// Full forward analysis (stages 2–4 of Fig. 3): Elmore over all nets,
    /// then a rayon-parallel level-synchronous sweep. The netlist is
    /// implicit in the forest (pin positions were baked into the trees), but
    /// arc lookups still need the structural netlist; the caller guarantees
    /// it matches the one used at construction. `with_rat = false` leaves
    /// every RAT at `f64::INFINITY` (consumers that never read per-pin
    /// slacks, like path extraction, skip the backward sweep entirely).
    fn run_forward_into(
        &self,
        nl: &Netlist,
        forest: &SteinerForest,
        gamma: f64,
        with_rat: bool,
        scratch: &mut AnalysisScratch,
    ) -> Analysis {
        let nl_pins = self.pin_node_in_net.len();

        // Elmore forward over all nets (stage 2), rayon-parallel.
        let mut elmore = scratch.take_elmore();
        (0..forest.len())
            .into_par_iter()
            .map(|ni| {
                forest.tree(NetId::new(ni)).map(|tree| {
                    Arc::new(ElmoreNet::forward(
                        tree,
                        self.net_caps(ni),
                        self.binding.wire_res_per_um,
                        self.binding.wire_cap_per_um,
                    ))
                })
            })
            .collect_into_vec(&mut elmore);

        let mut at = scratch.take_filled(nl_pins, 0.0);
        let mut at_early = scratch.take_filled(nl_pins, 0.0);
        let mut slew = scratch.take_filled(nl_pins, self.config.input_slew);

        // This borrow-free closure set mirrors the GPU kernels: every level is
        // a batch whose pins read only lower levels.
        for level in self.graph.levels() {
            level
                .par_iter()
                .map(|&p| {
                    let (a, ae, s) = self.eval_pin(nl, p, &elmore, &at, &at_early, &slew, gamma);
                    Some((p.index(), a, ae, s))
                })
                .collect_into_vec(&mut scratch.level_results);
            for r in scratch.level_results.iter().flatten() {
                let &(i, a, ae, s) = r;
                at[i] = a;
                at_early[i] = ae;
                slew[i] = s;
            }
        }

        let mut slack = scratch.take_filled(nl_pins, f64::INFINITY);
        let mut hold_slack = scratch.take_filled(nl_pins, f64::INFINITY);
        self.compute_slacks_into(nl, &at, &at_early, &slew, &mut slack, &mut hold_slack);
        let mut rat = scratch.take_filled(nl_pins, f64::INFINITY);
        if with_rat {
            self.compute_rat_into(nl, &elmore, &at, &slew, &slack, &mut rat);
        }

        Analysis {
            at,
            at_early,
            slew,
            slack,
            hold_slack,
            rat,
            gamma,
            elmore,
            endpoints: self.endpoints.clone(),
        }
    }

    /// Setup/hold slack computation at the endpoints (stage 4 of Fig. 3);
    /// `slack`/`hold_slack` arrive pre-filled with `f64::INFINITY`.
    fn compute_slacks_into(
        &self,
        nl: &Netlist,
        at: &[f64],
        at_early: &[f64],
        slew: &[f64],
        slack: &mut [f64],
        hold_slack: &mut [f64],
    ) {
        for &p in self.graph.endpoints() {
            let i = p.index();
            match self.graph.role(p) {
                PinRole::RegisterData => {
                    let pin = nl.pin(p);
                    let cb = &self.binding.classes[nl.cell(pin.cell()).class().index()];
                    let setup = cb.setup_arc[pin.class_pin().index()]
                        .map(|a| self.binding.arc(a).constraint_value(slew[i]))
                        .unwrap_or(0.0);
                    let hold = cb.hold_arc[pin.class_pin().index()]
                        .map(|a| self.binding.arc(a).constraint_value(slew[i]))
                        .unwrap_or(0.0);
                    let rat = self.config.clock_arrival + self.clock_period - setup;
                    slack[i] = rat - at[i];
                    hold_slack[i] = at_early[i] - (self.config.clock_arrival + hold);
                }
                PinRole::PrimaryOutput => {
                    let rat = self.clock_period - self.output_margin[i];
                    slack[i] = rat - at[i];
                }
                _ => unreachable!("endpoints are register data pins or POs"),
            }
        }
    }

    /// Backward RAT propagation (min over fanout requirements), exact arc
    /// delays; gives every pin a slack = RAT − AT for reporting and for
    /// net-criticality-based weighting. `rat` arrives pre-filled with
    /// `f64::INFINITY`.
    fn compute_rat_into(
        &self,
        nl: &Netlist,
        elmore: &[Option<Arc<ElmoreNet>>],
        at: &[f64],
        slew: &[f64],
        slack: &[f64],
        rat: &mut [f64],
    ) {
        for &p in self.graph.endpoints() {
            rat[p.index()] = at[p.index()] + slack[p.index()];
        }
        for level in self.graph.levels().rev() {
            for &p in level {
                let i = p.index();
                if !rat[i].is_finite() {
                    continue;
                }
                match self.graph.role(p) {
                    PinRole::CombInput | PinRole::RegisterData | PinRole::PrimaryOutput => {
                        let net = nl.pin(p).net().expect("active sinks are connected");
                        if let Some(e) = elmore[net.index()].as_ref() {
                            let driver = nl.net(net).pins()[0];
                            let node = self.pin_node_in_net[i] as usize;
                            let d = match self.config.wire_model {
                                WireModel::Elmore => e.delay_at(node),
                                WireModel::D2m => e.delay_d2m_at(node),
                            };
                            let cand = rat[i] - d;
                            if cand < rat[driver.index()] {
                                rat[driver.index()] = cand;
                            }
                        }
                    }
                    PinRole::CombOutput => {
                        let pin = nl.pin(p);
                        let cell = nl.cell(pin.cell());
                        let cb = &self.binding.classes[cell.class().index()];
                        let load = pin
                            .net()
                            .and_then(|n| elmore[n.index()].as_ref())
                            .map_or(0.0, |e| e.root_load());
                        for &(arc_idx, from_cp) in cb.delay_arcs(pin.class_pin().index()) {
                            let from = cell.pins()[from_cp as usize];
                            if matches!(
                                self.graph.role(from),
                                PinRole::Unconnected | PinRole::Clock
                            ) {
                                continue;
                            }
                            let ev = self
                                .binding
                                .arc(arc_idx as usize)
                                .eval(slew[from.index()], load);
                            let cand = rat[i] - ev.delay;
                            if cand < rat[from.index()] {
                                rat[from.index()] = cand;
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
    }

    /// Incremental re-analysis after moving a set of cells (the workload of
    /// the ICCAD-2015 *incremental* timing-driven placement contest the
    /// paper's benchmarks come from). Allocates its result vectors fresh;
    /// prefer [`Timer::analyze_incremental_into`] in a loop.
    ///
    /// Only the Elmore state of nets incident to `moved` cells is recomputed,
    /// and only pins in the transitive fan-out of those nets are
    /// re-propagated; everything else is copied from `prev`. Slacks and the
    /// full RAT sweep are recomputed (they are cheap relative to the forward
    /// arc evaluations). The result is bit-identical to a fresh
    /// [`Timer::analyze`] / [`Timer::analyze_smoothed`] at the same γ.
    ///
    /// `forest` must already reflect the new pin positions
    /// (e.g. via [`SteinerForest::update_positions`]); `prev` must come from
    /// the same γ mode.
    ///
    /// `recompute_rat = false` skips the backward RAT sweep and carries
    /// `prev`'s RATs over: WNS/TNS/slacks stay exact, but
    /// [`Analysis::pin_slack`] on non-endpoint pins reflects the *previous*
    /// state — the right trade for trial-move loops that only compare
    /// WNS/TNS.
    ///
    /// # Panics
    ///
    /// Panics if `prev` was produced for a different netlist (length
    /// mismatch).
    pub fn analyze_incremental(
        &self,
        nl: &Netlist,
        forest: &SteinerForest,
        prev: &Analysis,
        moved: &[CellId],
        recompute_rat: bool,
    ) -> Analysis {
        let mut scratch = AnalysisScratch::new();
        self.analyze_incremental_into(nl, forest, prev, moved, recompute_rat, &mut scratch)
    }

    /// [`Timer::analyze_incremental`] drawing every buffer from `scratch`.
    ///
    /// After consuming the result, hand the *previous* analysis back via
    /// [`AnalysisScratch::recycle`]; the two analyses then ping-pong through
    /// the pool and the steady-state loop performs no full-vector
    /// allocation.
    ///
    /// # Panics
    ///
    /// Panics if `prev` was produced for a different netlist (length
    /// mismatch).
    pub fn analyze_incremental_into(
        &self,
        nl: &Netlist,
        forest: &SteinerForest,
        prev: &Analysis,
        moved: &[CellId],
        recompute_rat: bool,
        scratch: &mut AnalysisScratch,
    ) -> Analysis {
        let nl_pins = self.pin_node_in_net.len();
        assert_eq!(prev.at.len(), nl_pins, "analysis from a different netlist");
        let gamma = prev.gamma;

        // 1. Dirty nets: every non-clock net touching a moved cell.
        scratch.net_dirty.clear();
        scratch.net_dirty.resize(forest.len(), false);
        scratch.dirty_nets.clear();
        for &c in moved {
            for &p in nl.cell(c).pins() {
                if let Some(net) = nl.pin(p).net() {
                    let ni = net.index();
                    if !scratch.net_dirty[ni] && !nl.net(net).is_clock() {
                        scratch.net_dirty[ni] = true;
                        scratch.dirty_nets.push(ni);
                    }
                }
            }
        }

        // 2. Elmore: share (Arc) every clean net, recompute the dirty ones in
        //    parallel.
        let mut elmore = scratch.take_elmore();
        elmore.extend(prev.elmore.iter().cloned());
        scratch
            .dirty_nets
            .par_iter()
            .map(|&ni| {
                let e = forest.tree(NetId::new(ni)).map(|tree| {
                    Arc::new(ElmoreNet::forward(
                        tree,
                        self.net_caps(ni),
                        self.binding.wire_res_per_um,
                        self.binding.wire_cap_per_um,
                    ))
                });
                (ni, e)
            })
            .collect_into_vec(&mut scratch.rebuilt);
        for (ni, e) in scratch.rebuilt.drain(..) {
            elmore[ni] = e;
        }

        // 3. Seed dirty pins: drivers (their load changed) and sinks (their
        //    net delay changed) of dirty nets.
        scratch.pin_dirty.clear();
        scratch.pin_dirty.resize(nl_pins, false);
        for &ni in &scratch.dirty_nets {
            for &p in nl.net(NetId::new(ni)).pins() {
                scratch.pin_dirty[p.index()] = true;
            }
        }

        // 4. Forward frontier sweep: re-evaluate a pin iff it is seeded or
        //    any of its fan-ins is dirty; otherwise keep the value copied
        //    from `prev`. Dirtiness is marked in place, which is safe because
        //    a pin's predecessors all sit on strictly lower levels.
        let mut at = scratch.take_copied(&prev.at);
        let mut at_early = scratch.take_copied(&prev.at_early);
        let mut slew = scratch.take_copied(&prev.slew);
        for level in self.graph.levels() {
            for &p in level {
                let i = p.index();
                if scratch.pin_dirty[i] {
                    continue;
                }
                let pred_dirty = match self.graph.role(p) {
                    PinRole::CombInput | PinRole::RegisterData | PinRole::PrimaryOutput => {
                        let net = nl.pin(p).net().expect("active sinks are connected");
                        scratch.pin_dirty[nl.net(net).pins()[0].index()]
                    }
                    PinRole::CombOutput => {
                        let pin = nl.pin(p);
                        let cell = nl.cell(pin.cell());
                        let cb = &self.binding.classes[cell.class().index()];
                        cb.delay_arcs(pin.class_pin().index())
                            .iter()
                            .any(|&(_, from_cp)| {
                                scratch.pin_dirty[cell.pins()[from_cp as usize].index()]
                            })
                    }
                    _ => false,
                };
                if pred_dirty {
                    scratch.pin_dirty[i] = true;
                }
            }
            let dirty = &scratch.pin_dirty;
            level
                .par_iter()
                .map(|&p| {
                    let i = p.index();
                    if !dirty[i] {
                        return None;
                    }
                    let (a, ae, s) = self.eval_pin(nl, p, &elmore, &at, &at_early, &slew, gamma);
                    Some((i, a, ae, s))
                })
                .collect_into_vec(&mut scratch.level_results);
            for r in scratch.level_results.iter().flatten() {
                let &(i, a, ae, s) = r;
                at[i] = a;
                at_early[i] = ae;
                slew[i] = s;
            }
        }

        let mut slack = scratch.take_filled(nl_pins, f64::INFINITY);
        let mut hold_slack = scratch.take_filled(nl_pins, f64::INFINITY);
        self.compute_slacks_into(nl, &at, &at_early, &slew, &mut slack, &mut hold_slack);
        let rat = if recompute_rat {
            let mut rat = scratch.take_filled(nl_pins, f64::INFINITY);
            self.compute_rat_into(nl, &elmore, &at, &slew, &slack, &mut rat);
            rat
        } else {
            scratch.take_copied(&prev.rat)
        };
        Analysis {
            at,
            at_early,
            slew,
            slack,
            hold_slack,
            rat,
            gamma,
            elmore,
            endpoints: self.endpoints.clone(),
        }
    }

    /// Forward evaluation of one pin given completed lower levels.
    #[allow(clippy::too_many_arguments)]
    fn eval_pin(
        &self,
        nl: &Netlist,
        p: PinId,
        elmore: &[Option<Arc<ElmoreNet>>],
        at: &[f64],
        at_early: &[f64],
        slew: &[f64],
        gamma: f64,
    ) -> (f64, f64, f64) {
        match self.graph.role(p) {
            PinRole::PrimaryInput => {
                let d = self.input_delay[p.index()];
                (d, d, self.config.input_slew)
            }
            PinRole::RegisterOutput => {
                // Launch: CK → Q arc at the ideal clock edge (Eq. 11 with the
                // clock pin as the only input).
                let pin = nl.pin(p);
                let cell = nl.cell(pin.cell());
                let cb = &self.binding.classes[cell.class().index()];
                let load = pin
                    .net()
                    .and_then(|n| elmore[n.index()].as_ref())
                    .map_or(0.0, |e| e.root_load());
                let arcs = cb.delay_arcs(pin.class_pin().index());
                if arcs.is_empty() {
                    return (
                        self.config.clock_arrival,
                        self.config.clock_arrival,
                        self.config.input_slew,
                    );
                }
                let mut a_vals = F64Buf::<MAX_INLINE_ARCS>::new();
                let mut s_vals = F64Buf::<MAX_INLINE_ARCS>::new();
                for &(arc_idx, _) in arcs {
                    let e = self
                        .binding
                        .arc(arc_idx as usize)
                        .eval(self.config.clock_slew, load);
                    a_vals.push(self.config.clock_arrival + e.delay);
                    s_vals.push(e.slew);
                }
                let (a, s) = aggregate(a_vals.as_slice(), s_vals.as_slice(), gamma);
                let ae = a_vals.as_slice().iter().cloned().fold(f64::INFINITY, f64::min);
                (a, ae, s)
            }
            PinRole::CombInput | PinRole::RegisterData | PinRole::PrimaryOutput => {
                // Net arc from the driver (Eq. 9).
                let net = nl.pin(p).net().expect("active sink pins are connected");
                let Some(e) = elmore[net.index()].as_ref() else {
                    return (0.0, 0.0, self.config.input_slew);
                };
                let driver = nl.net(net).pins()[0];
                let node = self.pin_node_in_net[p.index()] as usize;
                let d = match self.config.wire_model {
                    WireModel::Elmore => e.delay_at(node),
                    WireModel::D2m => e.delay_d2m_at(node),
                };
                let s_in = slew[driver.index()];
                let s = (s_in * s_in + e.impulse_sq_at(node)).sqrt().max(1e-3);
                (at[driver.index()] + d, at_early[driver.index()] + d, s)
            }
            PinRole::CombOutput => {
                // Cell arcs (Eq. 11).
                let pin = nl.pin(p);
                let cell = nl.cell(pin.cell());
                let cb = &self.binding.classes[cell.class().index()];
                let load = pin
                    .net()
                    .and_then(|n| elmore[n.index()].as_ref())
                    .map_or(0.0, |e| e.root_load());
                let mut a_vals = F64Buf::<MAX_INLINE_ARCS>::new();
                let mut ae_vals = F64Buf::<MAX_INLINE_ARCS>::new();
                let mut s_vals = F64Buf::<MAX_INLINE_ARCS>::new();
                for &(arc_idx, from_cp) in cb.delay_arcs(pin.class_pin().index()) {
                    let from = cell.pins()[from_cp as usize];
                    if matches!(self.graph.role(from), PinRole::Unconnected | PinRole::Clock) {
                        continue;
                    }
                    let e = self
                        .binding
                        .arc(arc_idx as usize)
                        .eval(slew[from.index()], load);
                    a_vals.push(at[from.index()] + e.delay);
                    ae_vals.push(at_early[from.index()] + e.delay);
                    s_vals.push(e.slew);
                }
                if a_vals.is_empty() {
                    return (0.0, 0.0, self.config.input_slew);
                }
                let (a, s) = aggregate(a_vals.as_slice(), s_vals.as_slice(), gamma);
                let ae = ae_vals.as_slice().iter().cloned().fold(f64::INFINITY, f64::min);
                (a, ae, s)
            }
            PinRole::Clock | PinRole::Unconnected => (0.0, 0.0, self.config.input_slew),
        }
    }

    /// Backward sweep (stage 5 of Fig. 3): gradient of
    /// `f = −t1·TNSγ − t2·WNSγ` with respect to all pin/cell positions.
    /// Allocates the result fresh; prefer [`Timer::gradients_into`] in a
    /// loop.
    ///
    /// `analysis` should come from [`Timer::analyze_smoothed`] (with an exact
    /// analysis the LSE weights degenerate to hard argmax subgradients,
    /// which is mathematically valid but reintroduces the oscillation the
    /// paper's smoothing removes).
    ///
    /// # Panics
    ///
    /// Panics if the forest does not match the analysis (different net
    /// count).
    pub fn gradients(
        &self,
        nl: &Netlist,
        analysis: &Analysis,
        forest: &SteinerForest,
        t1: f64,
        t2: f64,
    ) -> PositionGradients {
        let mut scratch = AnalysisScratch::new();
        let mut out = PositionGradients::default();
        self.gradients_into(nl, analysis, forest, t1, t2, &mut scratch, &mut out);
        out
    }

    /// [`Timer::gradients`] writing into a caller-owned result and drawing
    /// all intermediate buffers (adjoints, Elmore seeds, softmax weights)
    /// from `scratch` — the incremental-aware gradient entry point: reuse
    /// one `scratch`/`out` pair across iterations and nothing pin- or
    /// net-sized is reallocated.
    ///
    /// # Panics
    ///
    /// Panics if the forest does not match the analysis (different net
    /// count).
    #[allow(clippy::too_many_arguments)]
    pub fn gradients_into(
        &self,
        nl: &Netlist,
        analysis: &Analysis,
        forest: &SteinerForest,
        t1: f64,
        t2: f64,
        scratch: &mut AnalysisScratch,
        out: &mut PositionGradients,
    ) {
        let n_pins = analysis.at.len();
        assert_eq!(forest.len(), analysis.elmore.len(), "forest/analysis mismatch");
        let gamma = if analysis.gamma > 0.0 { analysis.gamma } else { self.config.gamma };

        let AnalysisScratch {
            g_at,
            g_slew,
            seeds,
            endpoint_slacks,
            endpoint_weights,
            arc_inputs,
            arc_evals,
            net_grads,
            ..
        } = scratch;
        g_at.clear();
        g_at.resize(n_pins, 0.0);
        g_slew.clear();
        g_slew.resize(n_pins, 0.0);

        // --- endpoint seeds ---------------------------------------------------
        endpoint_slacks.clear();
        endpoint_slacks.extend(analysis.endpoints.iter().map(|&p| analysis.slack[p.index()]));
        let objective;
        if endpoint_slacks.is_empty() {
            objective = 0.0;
        } else {
            let tns_g = endpoint_slacks.iter().map(|&s| smooth_neg(s, gamma)).sum::<f64>();
            endpoint_weights.clear();
            endpoint_weights.resize(endpoint_slacks.len(), 0.0);
            let wns_g = lse_min_weights_into(endpoint_slacks, gamma, endpoint_weights);
            objective = -t1 * tns_g - t2 * wns_g;
            for (k, &p) in analysis.endpoints.iter().enumerate() {
                let i = p.index();
                let dslack =
                    -t1 * smooth_neg_grad(endpoint_slacks[k], gamma) - t2 * endpoint_weights[k];
                // slack = rat − at  ⇒  ∂f/∂at = −∂f/∂slack.
                g_at[i] += -dslack;
                // Register setup margin depends on the data slew:
                // slack = … − setup(slew) − at.
                if self.graph.role(p) == PinRole::RegisterData {
                    let pin = nl.pin(p);
                    let cb = &self.binding.classes[nl.cell(pin.cell()).class().index()];
                    if let Some(arc_idx) = cb.setup_arc[pin.class_pin().index()] {
                        if let Some(t) = &self.binding.arc(arc_idx).constraint {
                            let dsetup = t.value_grad(analysis.slew[i]).1;
                            g_slew[i] += dslack * (-dsetup);
                        }
                    }
                }
            }
        }

        // --- reverse level sweep (Eqs. 10, 12) --------------------------------
        if seeds.len() != forest.len() {
            seeds.clear();
            seeds.resize_with(forest.len(), || None);
        }
        for (ni, slot) in seeds.iter_mut().enumerate() {
            match forest.tree(NetId::new(ni)) {
                Some(t) => match slot {
                    Some(sd) => sd.reset(t.num_nodes()),
                    slot => *slot = Some(ElmoreSeeds::zeros(t.num_nodes())),
                },
                None => *slot = None,
            }
        }

        for level in self.graph.levels().rev() {
            for &p in level {
                let i = p.index();
                if g_at[i] == 0.0 && g_slew[i] == 0.0 {
                    continue;
                }
                match self.graph.role(p) {
                    PinRole::CombInput | PinRole::RegisterData | PinRole::PrimaryOutput => {
                        // Net arc backward (Eq. 10).
                        let net = nl.pin(p).net().expect("active sinks are connected");
                        let Some(e) = analysis.elmore[net.index()].as_ref() else { continue };
                        let driver = nl.net(net).pins()[0];
                        let node = self.pin_node_in_net[i] as usize;
                        g_at[driver.index()] += g_at[i];
                        let s_v = analysis.slew[i];
                        let s_u = analysis.slew[driver.index()];
                        if s_v > 0.0 && e.impulse_sq_at(node) > 0.0 {
                            g_slew[driver.index()] += (s_u / s_v) * g_slew[i];
                        } else {
                            // Degenerate slew merge: all gradient to the driver.
                            g_slew[driver.index()] += g_slew[i];
                        }
                        let sd = seeds[net.index()].as_mut().expect("seeded with the tree");
                        match self.config.wire_model {
                            WireModel::Elmore => sd.grad_delay[node] += g_at[i],
                            WireModel::D2m => {
                                let (d_dm1, d_dbeta) = e.d2m_partials(node);
                                sd.grad_delay[node] += g_at[i] * d_dm1;
                                sd.grad_beta[node] += g_at[i] * d_dbeta;
                            }
                        }
                        if s_v > 0.0 {
                            sd.grad_impulse_sq[node] += g_slew[i] / (2.0 * s_v);
                        }
                    }
                    PinRole::CombOutput => {
                        self.backprop_cell_output(
                            nl, p, analysis, gamma, g_at, g_slew, seeds, arc_inputs,
                        );
                    }
                    _ => {}
                }
            }
        }
        // Register launch pins: AT(Q) depends on the Q net's load (Eq. 12e
        // applied to the CK→Q arc).
        for p in nl.pin_ids() {
            if self.graph.role(p) != PinRole::RegisterOutput {
                continue;
            }
            let i = p.index();
            if g_at[i] == 0.0 && g_slew[i] == 0.0 {
                continue;
            }
            let pin = nl.pin(p);
            let cell = nl.cell(pin.cell());
            let cb = &self.binding.classes[cell.class().index()];
            let Some(net) = pin.net() else { continue };
            let Some(e) = analysis.elmore[net.index()].as_ref() else { continue };
            let load = e.root_load();
            let arcs = cb.delay_arcs(pin.class_pin().index());
            if arcs.is_empty() {
                continue;
            }
            // Weights over the (usually single) CK→Q arcs.
            arc_evals.clear();
            let mut a_vals = F64Buf::<MAX_INLINE_ARCS>::new();
            let mut s_vals = F64Buf::<MAX_INLINE_ARCS>::new();
            for &(a, _) in arcs {
                let ev = self.binding.arc(a as usize).eval(self.config.clock_slew, load);
                arc_evals.push(ev);
                a_vals.push(self.config.clock_arrival + ev.delay);
                s_vals.push(ev.slew);
            }
            let mut wa = F64Buf::<MAX_INLINE_ARCS>::new();
            let mut ws = F64Buf::<MAX_INLINE_ARCS>::new();
            weights_into(a_vals.as_slice(), gamma, &mut wa);
            weights_into(s_vals.as_slice(), gamma, &mut ws);
            let mut g_load = 0.0;
            for (k, ev) in arc_evals.iter().enumerate() {
                g_load += ev.d_delay_d_load * wa.as_slice()[k] * g_at[i];
                g_load += ev.d_slew_d_load * ws.as_slice()[k] * g_slew[i];
            }
            seeds[net.index()]
                .as_mut()
                .expect("register output nets are signal nets")
                .grad_root_load += g_load;
        }

        // --- Elmore backward per net (Eq. 8), rayon-parallel -------------------
        let seeds: &[Option<ElmoreSeeds>] = seeds;
        (0..forest.len())
            .into_par_iter()
            .map(|ni| {
                let tree = forest.tree(NetId::new(ni))?;
                let e = analysis.elmore[ni].as_ref()?;
                let sd = seeds[ni].as_ref()?;
                let nonzero = sd.grad_root_load != 0.0
                    || sd.grad_delay.iter().any(|&g| g != 0.0)
                    || sd.grad_beta.iter().any(|&g| g != 0.0)
                    || sd.grad_impulse_sq.iter().any(|&g| g != 0.0);
                if !nonzero {
                    return None;
                }
                let (gx, gy) = e.backward(tree, sd);
                Some((ni, tree.scatter_gradient(&gx, &gy)))
            })
            .collect_into_vec(net_grads);

        for buf in [&mut out.pin_grad_x, &mut out.pin_grad_y] {
            buf.clear();
            buf.resize(n_pins, 0.0);
        }
        for item in net_grads.iter().flatten() {
            let (ni, per_pin) = item;
            let pins = nl.net(NetId::new(*ni)).pins();
            for (k, &(gx, gy)) in per_pin.iter().enumerate() {
                out.pin_grad_x[pins[k].index()] += gx;
                out.pin_grad_y[pins[k].index()] += gy;
            }
        }

        for buf in [&mut out.cell_grad_x, &mut out.cell_grad_y] {
            buf.clear();
            buf.resize(nl.num_cells(), 0.0);
        }
        for p in nl.pin_ids() {
            let c = nl.pin(p).cell().index();
            out.cell_grad_x[c] += out.pin_grad_x[p.index()];
            out.cell_grad_y[c] += out.pin_grad_y[p.index()];
        }
        out.objective = objective;
    }

    /// Eq. (12): distributes a combinational output pin's gradient to its
    /// fan-in pins and to the load of its own net. `inputs` is a reusable
    /// staging buffer for the fan-in arc evaluations.
    #[allow(clippy::too_many_arguments)]
    fn backprop_cell_output(
        &self,
        nl: &Netlist,
        p: PinId,
        analysis: &Analysis,
        gamma: f64,
        g_at: &mut [f64],
        g_slew: &mut [f64],
        seeds: &mut [Option<ElmoreSeeds>],
        inputs: &mut Vec<(PinId, ArcEval)>,
    ) {
        let i = p.index();
        let pin = nl.pin(p);
        let cell = nl.cell(pin.cell());
        let cb = &self.binding.classes[cell.class().index()];
        let net = pin.net();
        let load = net
            .and_then(|n| analysis.elmore[n.index()].as_ref())
            .map_or(0.0, |e| e.root_load());
        inputs.clear();
        for &(arc_idx, from_cp) in cb.delay_arcs(pin.class_pin().index()) {
            let from = cell.pins()[from_cp as usize];
            if matches!(self.graph.role(from), PinRole::Unconnected | PinRole::Clock) {
                continue;
            }
            let ev = self
                .binding
                .arc(arc_idx as usize)
                .eval(analysis.slew[from.index()], load);
            inputs.push((from, ev));
        }
        if inputs.is_empty() {
            return;
        }
        let mut a_vals = F64Buf::<MAX_INLINE_ARCS>::new();
        let mut s_vals = F64Buf::<MAX_INLINE_ARCS>::new();
        for (from, ev) in inputs.iter() {
            a_vals.push(analysis.at[from.index()] + ev.delay);
            s_vals.push(ev.slew);
        }
        let mut wa = F64Buf::<MAX_INLINE_ARCS>::new();
        let mut ws = F64Buf::<MAX_INLINE_ARCS>::new();
        weights_into(a_vals.as_slice(), gamma, &mut wa);
        weights_into(s_vals.as_slice(), gamma, &mut ws);
        let mut g_load = 0.0;
        for (k, (from, ev)) in inputs.iter().enumerate() {
            let g_delay_k = wa.as_slice()[k] * g_at[i]; // Eq. 12b
            let g_slew_k = ws.as_slice()[k] * g_slew[i]; // Eq. 12c
            g_at[from.index()] += wa.as_slice()[k] * g_at[i]; // Eq. 12a
            g_slew[from.index()] +=
                ev.d_delay_d_slew * g_delay_k + ev.d_slew_d_slew * g_slew_k; // Eq. 12d
            g_load += ev.d_delay_d_load * g_delay_k + ev.d_slew_d_load * g_slew_k;
            // Eq. 12e
        }
        if let Some(n) = net {
            if let Some(sd) = seeds[n.index()].as_mut() {
                sd.grad_root_load += g_load;
            }
        }
    }
}

/// LSE softmax weights, or hard one-hot argmax weights when `gamma == 0`
/// (the exact-mode subgradient), written into `out` without allocating.
fn weights_into(vals: &[f64], gamma: f64, out: &mut F64Buf<MAX_INLINE_ARCS>) {
    out.resize_zeroed(vals.len());
    if gamma > 0.0 {
        lse_max_weights_into(vals, gamma, out.as_mut_slice());
    } else {
        let mut best = 0usize;
        for (i, &v) in vals.iter().enumerate() {
            if v > vals[best] {
                best = i;
            }
        }
        out.as_mut_slice()[best] = 1.0;
    }
}

/// Aggregates arrival candidates and slews with smoothed or hard max.
fn aggregate(a_vals: &[f64], s_vals: &[f64], gamma: f64) -> (f64, f64) {
    if gamma > 0.0 {
        (lse_max(a_vals, gamma), lse_max(s_vals, gamma))
    } else {
        (
            a_vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
            s_vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        )
    }
}
