//! Differentiable static timing analysis (the paper's §3).
//!
//! This crate implements both halves of the paper's central idea:
//!
//! - **Forward** (an STA engine, §2.1): Steiner-tree-based Elmore wire delay
//!   (Eq. 7), NLDM cell delay via LUTs (Eq. 11), level-by-level arrival-time
//!   and slew propagation (Eq. 9), required times, slacks, WNS and TNS
//!   (Eqs. 1–2) — with an *exact* mode (true min/max, used for reporting) and
//!   a *smoothed* mode (Log-Sum-Exp, Eq. 5, used for optimization).
//! - **Backward** (the differentiable timer, §3.3–3.5): gradients of the
//!   smoothed TNS/WNS objective with respect to every pin position, obtained
//!   by running the propagation in reverse level order (Eqs. 10, 12) and four
//!   reverse dynamic-programming passes per net for the Elmore model (Eq. 8,
//!   Fig. 5), then scattering Steiner-point gradients to pins (Fig. 4).
//!
//! Parallelism: every level and every net is processed with rayon, mirroring
//! the paper's GPU kernels (level-synchronous batches, one thread per pin /
//! per net) — see `DESIGN.md` for the GPU→CPU substitution rationale.
//!
//! The main entry point is [`Timer`]:
//!
//! ```
//! use dtp_netlist::generate::{generate, GeneratorConfig};
//! use dtp_liberty::synth::synthetic_pdk;
//! use dtp_rsmt::build_forest;
//! use dtp_sta::Timer;
//!
//! # fn main() -> Result<(), dtp_sta::StaError> {
//! let design = generate(&GeneratorConfig::named("demo", 200)).expect("generator config is valid");
//! let lib = synthetic_pdk();
//! let timer = Timer::new(&design, &lib)?;
//! let forest = build_forest(&design.netlist);
//! let analysis = timer.analyze(&design.netlist, &forest);
//! println!("WNS = {:.1} ps, TNS = {:.1} ps", analysis.wns(), analysis.tns());
//! let smoothed = timer.analyze_smoothed(&design.netlist, &forest);
//! let grads = timer.gradients(&design.netlist, &smoothed, &forest, 1.0, 1.0);
//! assert_eq!(grads.cell_grad_x.len(), design.netlist.num_cells());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod binding;
mod elmore;
mod engine;
mod error;
mod graph;
mod report;
mod smoothing;

pub use binding::Binding;
pub use elmore::{ElmoreNet, ElmoreSeeds};
pub use engine::{Analysis, PositionGradients, Timer, TimerConfig, WireModel};
pub use error::StaError;
pub use graph::{PinRole, TimingGraph};
pub use report::{PathPoint, SlackHistogram, TimingReport};
pub use smoothing::{lse_max, lse_max_weights, lse_min, smooth_neg, smooth_neg_grad};
