//! Differentiable static timing analysis (the paper's §3).
//!
//! This crate implements both halves of the paper's central idea:
//!
//! - **Forward** (an STA engine, §2.1): Steiner-tree-based Elmore wire delay
//!   (Eq. 7), NLDM cell delay via LUTs (Eq. 11), level-by-level arrival-time
//!   and slew propagation (Eq. 9), required times, slacks, WNS and TNS
//!   (Eqs. 1–2) — with an *exact* mode (true min/max, used for reporting) and
//!   a *smoothed* mode (Log-Sum-Exp, Eq. 5, used for optimization).
//! - **Backward** (the differentiable timer, §3.3–3.5): gradients of the
//!   smoothed TNS/WNS objective with respect to every pin position, obtained
//!   by running the propagation in reverse level order (Eqs. 10, 12) and four
//!   reverse dynamic-programming passes per net for the Elmore model (Eq. 8,
//!   Fig. 5), then scattering Steiner-point gradients to pins (Fig. 4).
//!
//! Parallelism: every level and every net is processed with rayon, mirroring
//! the paper's GPU kernels (level-synchronous batches, one thread per pin /
//! per net) — see `DESIGN.md` for the GPU→CPU substitution rationale.
//!
//! # Incremental analysis and the allocation-free hot path
//!
//! Placement moves only a small fraction of cells per iteration, so the
//! engine supports *incremental* re-analysis
//! ([`Timer::analyze_incremental`]): nets incident to moved cells get their
//! Elmore state recomputed, the affected fan-out cone is re-propagated
//! level by level, and every untouched pin keeps its previous value — the
//! result is bit-identical to a from-scratch analysis. For loop use, the
//! `*_into` variants ([`Timer::analyze_into`],
//! [`Timer::analyze_incremental_into`], [`Timer::gradients_into`]) draw all
//! buffers from a caller-owned [`AnalysisScratch`]; recycling retired
//! analyses ([`AnalysisScratch::recycle`]) makes the steady-state timing
//! iteration allocation-free. Internally the levelized graph, the per-class
//! delay arcs and the per-net pin capacitances are stored in flat CSR form
//! (offsets + one contiguous data array) rather than nested `Vec`s.
//!
//! # Top-K critical-path extraction
//!
//! As a cheaper alternative to back-propagating through every timing arc,
//! [`Timer::extract_paths_into`] traces the K worst endpoints back through
//! worst-arrival predecessors into a [`PathSet`] — deduplicating shared
//! prefixes and emitting per-pin criticality weights — using only a forward
//! analysis (see [`Timer::analyze_no_rat_into`], which also skips the
//! backward RAT sweep). Like the rest of the hot path, extraction into a
//! caller-owned [`PathScratch`] is allocation-free at steady state.
//!
//! The main entry point is [`Timer`]:
//!
//! ```
//! use dtp_netlist::generate::{generate, GeneratorConfig};
//! use dtp_liberty::synth::synthetic_pdk;
//! use dtp_rsmt::build_forest;
//! use dtp_sta::Timer;
//!
//! # fn main() -> Result<(), dtp_sta::StaError> {
//! let design = generate(&GeneratorConfig::named("demo", 200)).expect("generator config is valid");
//! let lib = synthetic_pdk();
//! let timer = Timer::new(&design, &lib)?;
//! let forest = build_forest(&design.netlist);
//! let analysis = timer.analyze(&design.netlist, &forest);
//! println!("WNS = {:.1} ps, TNS = {:.1} ps", analysis.wns(), analysis.tns());
//! let smoothed = timer.analyze_smoothed(&design.netlist, &forest);
//! let grads = timer.gradients(&design.netlist, &smoothed, &forest, 1.0, 1.0);
//! assert_eq!(grads.cell_grad_x.len(), design.netlist.num_cells());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod binding;
mod elmore;
mod engine;
mod error;
mod graph;
mod paths;
mod report;
mod smoothing;

pub use binding::Binding;
pub use elmore::{ElmoreNet, ElmoreSeeds};
pub use engine::{
    Analysis, AnalysisScratch, PositionGradients, Timer, TimerConfig, WireModel, MAX_INLINE_ARCS,
};
pub use error::StaError;
pub use graph::{PinRole, TimingGraph};
pub use paths::{PathScratch, PathSet};
pub use report::{PathPoint, SlackHistogram, TimingReport};
pub use smoothing::{
    lse_max, lse_max_weights, lse_max_weights_into, lse_min, lse_min_weights,
    lse_min_weights_into, smooth_neg, smooth_neg_grad,
};
