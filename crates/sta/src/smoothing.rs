//! Log-Sum-Exp smoothing of max/min (Eq. 5 of the paper, §3.2).
//!
//! The hard `max`/`min` of STA gives all gradient to a single fan-in, which
//! makes gradient descent update only the one most critical path and
//! oscillate. LSE distributes gradient across fan-ins with softmax weights.
//! All functions here subtract the running maximum before exponentiating, so
//! they are overflow-safe for any input range.

/// Smoothed maximum: `γ · ln Σ exp(xᵢ/γ)` (Eq. 5).
///
/// Upper-bounds the true max by at most `γ·ln n`. With `gamma → 0` it
/// converges to `max`.
///
/// ```
/// use dtp_sta::lse_max;
/// let v = lse_max(&[1.0, 5.0, 3.0], 0.5);
/// assert!(v >= 5.0 && v <= 5.0 + 0.5 * 3f64.ln());
/// ```
///
/// # Panics
///
/// Panics if `xs` is empty or `gamma <= 0`.
pub fn lse_max(xs: &[f64], gamma: f64) -> f64 {
    assert!(!xs.is_empty() && gamma > 0.0);
    let m = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let s: f64 = xs.iter().map(|&x| ((x - m) / gamma).exp()).sum();
    m + gamma * s.ln()
}

/// Smoothed maximum together with its softmax gradient weights
/// (`∂LSE/∂xᵢ`, which sum to 1).
///
/// # Panics
///
/// Panics if `xs` is empty or `gamma <= 0`.
pub fn lse_max_weights(xs: &[f64], gamma: f64) -> (f64, Vec<f64>) {
    let mut w = vec![0.0; xs.len()];
    let v = lse_max_weights_into(xs, gamma, &mut w);
    (v, w)
}

/// [`lse_max_weights`] writing the weights into a caller-provided buffer —
/// the allocation-free form used by the per-iteration gradient sweep.
///
/// # Panics
///
/// Panics if `xs` is empty, `gamma <= 0`, or `out.len() != xs.len()`.
pub fn lse_max_weights_into(xs: &[f64], gamma: f64, out: &mut [f64]) -> f64 {
    assert!(!xs.is_empty() && gamma > 0.0);
    assert_eq!(out.len(), xs.len());
    let m = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let mut s = 0.0;
    for (o, &x) in out.iter_mut().zip(xs) {
        *o = ((x - m) / gamma).exp();
        s += *o;
    }
    for o in out.iter_mut() {
        *o /= s;
    }
    m + gamma * s.ln()
}

/// Smoothed minimum via `min(x) = −max(−x)`: `−γ · ln Σ exp(−xᵢ/γ)`.
///
/// Lower-bounds the true min by at most `γ·ln n`.
///
/// # Panics
///
/// Panics if `xs` is empty or `gamma <= 0`.
pub fn lse_min(xs: &[f64], gamma: f64) -> f64 {
    assert!(!xs.is_empty() && gamma > 0.0);
    let m = xs.iter().cloned().fold(f64::INFINITY, f64::min);
    let s: f64 = xs.iter().map(|&x| (-(x - m) / gamma).exp()).sum();
    m - gamma * s.ln()
}

/// Smoothed minimum with gradient weights (non-negative, sum to 1).
///
/// # Panics
///
/// Panics if `xs` is empty or `gamma <= 0`.
pub fn lse_min_weights(xs: &[f64], gamma: f64) -> (f64, Vec<f64>) {
    let mut w = vec![0.0; xs.len()];
    let v = lse_min_weights_into(xs, gamma, &mut w);
    (v, w)
}

/// [`lse_min_weights`] writing the weights into a caller-provided buffer.
///
/// # Panics
///
/// Panics if `xs` is empty, `gamma <= 0`, or `out.len() != xs.len()`.
pub fn lse_min_weights_into(xs: &[f64], gamma: f64, out: &mut [f64]) -> f64 {
    assert!(!xs.is_empty() && gamma > 0.0);
    assert_eq!(out.len(), xs.len());
    let m = xs.iter().cloned().fold(f64::INFINITY, f64::min);
    let mut s = 0.0;
    for (o, &x) in out.iter_mut().zip(xs) {
        *o = (-(x - m) / gamma).exp();
        s += *o;
    }
    for o in out.iter_mut() {
        *o /= s;
    }
    m - gamma * s.ln()
}

/// Smooth `min(0, s)` (the per-endpoint TNS contribution) as
/// `−γ·softplus(−s/γ) = −γ·ln(1 + exp(−s/γ))`.
///
/// ```
/// use dtp_sta::smooth_neg;
/// assert!((smooth_neg(-500.0, 10.0) - (-500.0)).abs() < 1e-6); // deep violation ≈ s
/// assert!(smooth_neg(500.0, 10.0).abs() < 1e-6);               // comfortably met ≈ 0
/// ```
pub fn smooth_neg(s: f64, gamma: f64) -> f64 {
    let z = -s / gamma;
    // Stable softplus.
    let sp = if z > 30.0 { z } else { z.exp().ln_1p() };
    -gamma * sp
}

/// Derivative of [`smooth_neg`] with respect to `s`: the sigmoid `σ(−s/γ)`,
/// in `(0, 1)` — 1 for deeply violating slacks, 0 for comfortably met ones.
pub fn smooth_neg_grad(s: f64, gamma: f64) -> f64 {
    let z = -s / gamma;
    if z > 30.0 {
        1.0
    } else if z < -30.0 {
        0.0
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn lse_bounds_max() {
        let xs = [1.0, 5.0, 3.0];
        let v = lse_max(&xs, 0.5);
        assert!(v >= 5.0);
        assert!(v <= 5.0 + 0.5 * (3.0f64).ln() + 1e-12);
        // Sharp limit.
        assert!((lse_max(&xs, 1e-6) - 5.0).abs() < 1e-4);
    }

    #[test]
    fn lse_min_bounds_min() {
        let xs = [1.0, 5.0, 3.0];
        let v = lse_min(&xs, 0.5);
        assert!(v <= 1.0);
        assert!(v >= 1.0 - 0.5 * (3.0f64).ln() - 1e-12);
    }

    #[test]
    fn weights_sum_to_one_and_favor_max() {
        let (_, w) = lse_max_weights(&[1.0, 5.0, 3.0], 1.0);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(w[1] > w[2] && w[2] > w[0]);
        let (_, wm) = lse_min_weights(&[1.0, 5.0, 3.0], 1.0);
        assert!((wm.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(wm[0] > wm[2] && wm[2] > wm[1]);
    }

    #[test]
    fn overflow_safe() {
        let v = lse_max(&[1e8, 1e8 + 1.0], 1.0);
        assert!(v.is_finite() && v >= 1e8 + 1.0);
        assert!(lse_min(&[-1e8, -1e8 - 1.0], 1.0).is_finite());
        assert!(smooth_neg(-1e8, 100.0).is_finite());
        assert_eq!(smooth_neg_grad(-1e8, 100.0), 1.0);
        assert_eq!(smooth_neg_grad(1e8, 100.0), 0.0);
    }

    #[test]
    fn smooth_neg_limits() {
        // Deep violation: ≈ s. Comfortable: ≈ 0.
        assert!((smooth_neg(-500.0, 10.0) - (-500.0)).abs() < 1e-6);
        assert!(smooth_neg(500.0, 10.0).abs() < 1e-6);
        // At zero, −γ ln 2.
        assert!((smooth_neg(0.0, 10.0) + 10.0 * 2.0f64.ln()).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn lse_max_ge_true_max(xs in proptest::collection::vec(-100.0..100.0f64, 1..8), g in 0.1..50.0f64) {
            let m = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(lse_max(&xs, g) >= m - 1e-9);
        }

        #[test]
        fn smooth_neg_grad_matches_fd(s in -300.0..300.0f64, g in 1.0..100.0f64) {
            let h = 1e-5 * g;
            let num = (smooth_neg(s + h, g) - smooth_neg(s - h, g)) / (2.0 * h);
            prop_assert!((smooth_neg_grad(s, g) - num).abs() < 1e-5);
        }

        #[test]
        fn lse_weights_match_fd(
            xs in proptest::collection::vec(-50.0..50.0f64, 2..6),
            g in 0.5..20.0f64,
        ) {
            let (_, w) = lse_max_weights(&xs, g);
            for i in 0..xs.len() {
                let h = 1e-6 * g;
                let mut hi = xs.clone();
                hi[i] += h;
                let mut lo = xs.clone();
                lo[i] -= h;
                let num = (lse_max(&hi, g) - lse_max(&lo, g)) / (2.0 * h);
                prop_assert!((w[i] - num).abs() < 1e-4, "weight {i}: {} vs fd {}", w[i], num);
            }
        }
    }
}
