//! Top-K critical-path extraction: the cheap, sharp timing signal.
//!
//! The full differentiable objective back-propagates through *every* arc of
//! the timing graph each iteration. Critical-path extraction gets comparable
//! placement quality for a fraction of that cost by tracing only the K worst
//! endpoints back through their worst-arrival predecessors and concentrating
//! timing force on the pins of those paths (the approach of "Timing-Driven
//! Global Placement by Efficient Critical Path Extraction").
//!
//! # Shape of the extraction
//!
//! 1. **Select** the K worst endpoints of an (exact) analysis, ordered by
//!    slack ascending with ties broken by [`PinId`] — bit-for-bit stable
//!    across pool widths.
//! 2. **Trace** each endpoint back through its worst fan-in: at a cell
//!    output the fan-in maximizing `AT + arc delay`, at a sink pin the net
//!    driver, stopping at launch points. The backward step is a
//!    deterministic function of the pin, so two paths that meet share their
//!    entire remaining prefix.
//! 3. **Deduplicate** shared prefixes: a trace stops at the first pin
//!    already claimed by a more critical path. Because paths are traced in
//!    worst-slack-first order and criticality decays with rank, the first
//!    visit always carries the *maximal* criticality — first-visit
//!    assignment equals max-aggregation over the un-deduplicated path set.
//! 4. **Weight**: path rank `r` with endpoint slack `s` gets criticality
//!    `decay^r · clamp(−s / |WNS|, 0, 1)`; every newly visited pin inherits
//!    its path's criticality. Downstream consumers turn the per-pin values
//!    into net weights for the wirelength objective.
//!
//! # Allocation discipline
//!
//! [`PathScratch`] and [`PathSet`] own every buffer the extraction touches:
//! candidate endpoints, visited flags, the CSR path arrays and the per-pin
//! criticality map (reset sparsely via the previous extraction's pin list).
//! After warm-up, [`Timer::extract_paths_into`] performs zero heap
//! allocations per call — the property `bench_paths` verifies with a
//! counting allocator.

use crate::engine::{Analysis, Timer};
use crate::graph::PinRole;
use dtp_netlist::{Netlist, PinId};

/// Reusable working memory of [`Timer::extract_paths_into`].
///
/// One scratch serves any number of extractions on the same design; all
/// buffers persist between calls and are reset sparsely, so steady-state
/// extraction allocates nothing.
#[derive(Debug, Default)]
pub struct PathScratch {
    /// Endpoint candidates `(slack, pin)` for the top-K selection.
    cand: Vec<(f64, PinId)>,
    /// Per-pin claimed flags for shared-prefix deduplication.
    visited: Vec<bool>,
    /// Pins claimed this extraction (sparse reset of `visited`).
    touched: Vec<PinId>,
}

impl PathScratch {
    /// An empty scratch; buffers grow on first use and are reused after.
    pub fn new() -> PathScratch {
        PathScratch::default()
    }

    /// Pre-sizes the buffers for a design with `num_pins` pins and
    /// `num_endpoints` endpoints, so warm-up growth happens once at flow
    /// start instead of inside the first extraction.
    pub fn presize(&mut self, num_pins: usize, num_endpoints: usize) {
        if self.visited.len() < num_pins {
            self.visited.resize(num_pins, false);
        }
        self.cand.reserve(num_endpoints.saturating_sub(self.cand.capacity()));
        self.touched.reserve(num_pins.saturating_sub(self.touched.capacity()));
    }
}

/// The result of one top-K extraction: the traced paths in CSR form plus the
/// per-pin criticality map they induce.
///
/// Paths are stored endpoint-first (the order the backward trace emits) and
/// contain only the pins *newly claimed* by that path — a path that merges
/// into a more critical one ends where the shared prefix begins, so every
/// pin appears in exactly one path.
#[derive(Debug, Default)]
pub struct PathSet {
    /// CSR offsets into `pins`; path `k` spans `pins[offsets[k]..offsets[k+1]]`.
    offsets: Vec<u32>,
    /// Flat pin array of all paths, endpoint-first within each path.
    pins: Vec<PinId>,
    /// Endpoint of each path, worst slack first.
    endpoints: Vec<PinId>,
    /// Endpoint slack of each path.
    slacks: Vec<f64>,
    /// Criticality of each path: `decay^rank · clamp(−slack/|WNS|, 0, 1)`.
    crits: Vec<f64>,
    /// Per-pin criticality (0 off the extracted paths); pin-indexed.
    pin_crit: Vec<f64>,
    /// Dense list of pins with nonzero criticality (sparse reset + iteration).
    crit_pins: Vec<PinId>,
    /// Worst slack over *all* endpoints (0 when the design has none).
    wns: f64,
}

impl PathSet {
    /// An empty path set.
    pub fn new() -> PathSet {
        PathSet::default()
    }

    /// Pre-sizes the per-pin criticality map (the one buffer whose first
    /// touch is design-sized).
    pub fn presize(&mut self, num_pins: usize) {
        if self.pin_crit.len() < num_pins {
            self.pin_crit.resize(num_pins, 0.0);
        }
    }

    /// Clears the previous extraction, sparsely zeroing the criticality map.
    fn reset(&mut self, num_pins: usize) {
        if self.pin_crit.len() == num_pins {
            for p in self.crit_pins.drain(..) {
                self.pin_crit[p.index()] = 0.0;
            }
        } else {
            // Different design: rebuild the map from scratch.
            self.crit_pins.clear();
            self.pin_crit.clear();
            self.pin_crit.resize(num_pins, 0.0);
        }
        self.offsets.clear();
        self.offsets.push(0);
        self.pins.clear();
        self.endpoints.clear();
        self.slacks.clear();
        self.crits.clear();
        self.wns = 0.0;
    }

    /// Number of extracted paths (≤ the requested K).
    pub fn num_paths(&self) -> usize {
        self.endpoints.len()
    }

    /// The pins path `k` claimed, endpoint first. A path that merged into a
    /// more critical one ends at the merge point (exclusive).
    pub fn path(&self, k: usize) -> &[PinId] {
        &self.pins[self.offsets[k] as usize..self.offsets[k + 1] as usize]
    }

    /// Endpoint of path `k` (rank order: worst slack first).
    pub fn endpoint(&self, k: usize) -> PinId {
        self.endpoints[k]
    }

    /// Endpoint slack of path `k`, ps.
    pub fn slack(&self, k: usize) -> f64 {
        self.slacks[k]
    }

    /// Criticality of path `k` in `[0, 1]`.
    pub fn criticality(&self, k: usize) -> f64 {
        self.crits[k]
    }

    /// Criticality of a pin: its path's criticality if it lies on an
    /// extracted path, else 0. Equals the max over all (un-deduplicated)
    /// extracted paths through the pin.
    pub fn pin_criticality(&self, pin: PinId) -> f64 {
        self.pin_crit.get(pin.index()).copied().unwrap_or(0.0)
    }

    /// Pins with nonzero criticality, in claim order (most critical path
    /// first).
    pub fn critical_pins(&self) -> &[PinId] {
        &self.crit_pins
    }

    /// Worst slack over all endpoints of the analysis (not just the K
    /// selected); 0.0 when the design has no constrained endpoints.
    pub fn wns(&self) -> f64 {
        self.wns
    }
}

/// The most critical fan-in of `cur`, or `None` at launch/terminal pins.
///
/// Sink pins (cell inputs, register data, primary outputs) follow the net
/// arc back to the driver; combinational outputs pick the fan-in maximizing
/// `AT + arc delay` at the analysis' slews and loads, breaking exact-delay
/// ties by smaller [`PinId`] so the trace is deterministic under any
/// parallel schedule. Launch pins (primary inputs, register outputs) and
/// excluded pins (clock, unconnected) end the trace.
pub(crate) fn worst_fanin(
    timer: &Timer,
    nl: &Netlist,
    analysis: &Analysis,
    cur: PinId,
) -> Option<PinId> {
    let graph = timer.graph();
    match graph.role(cur) {
        PinRole::PrimaryInput | PinRole::RegisterOutput => None,
        PinRole::CombInput | PinRole::RegisterData | PinRole::PrimaryOutput => {
            let net = nl.pin(cur).net()?;
            Some(nl.net(net).pins()[0])
        }
        PinRole::CombOutput => {
            let pin = nl.pin(cur);
            let cell = nl.cell(pin.cell());
            let cb = &timer.binding().classes[cell.class().index()];
            let load = pin
                .net()
                .and_then(|n| analysis.elmore(n))
                .map_or(0.0, |e| e.root_load());
            let mut best: Option<(f64, PinId)> = None;
            for &(arc_idx, from_cp) in cb.delay_arcs(pin.class_pin().index()) {
                let from = cell.pins()[from_cp as usize];
                if matches!(graph.role(from), PinRole::Unconnected | PinRole::Clock) {
                    continue;
                }
                let ev = timer
                    .binding()
                    .arc(arc_idx as usize)
                    .eval(analysis.slew[from.index()], load);
                let a = analysis.at[from.index()] + ev.delay;
                if best.is_none_or(|(b, bp)| a > b || (a == b && from < bp)) {
                    best = Some((a, from));
                }
            }
            best.map(|(_, from)| from)
        }
        PinRole::Clock | PinRole::Unconnected => None,
    }
}

impl Timer {
    /// Extracts the top-`top_k` critical paths of `analysis` into `out`,
    /// assigning each path rank `r` (worst slack first, slack ties broken by
    /// [`PinId`]) the criticality `decay^r · clamp(−slack/|WNS|, 0, 1)` and
    /// each pin the criticality of the most critical path through it.
    ///
    /// `analysis` should be exact (γ = 0); a smoothed analysis traces the
    /// smoothed-arrival worst fan-ins instead, which is well-defined but
    /// blurs the path selection. RATs are never read, so analyses produced
    /// with [`Timer::analyze_no_rat_into`] (or incremental analyses with
    /// `recompute_rat = false`) are sufficient — that is what makes the
    /// extraction's analysis half cheap.
    ///
    /// With `WNS ≥ 0` (no violations) every criticality is 0; the paths are
    /// still traced for reporting. Steady-state calls perform no heap
    /// allocation: all buffers persist in `scratch` and `out`.
    pub fn extract_paths_into(
        &self,
        nl: &Netlist,
        analysis: &Analysis,
        top_k: usize,
        decay: f64,
        scratch: &mut PathScratch,
        out: &mut PathSet,
    ) {
        let num_pins = nl.num_pins();
        if scratch.visited.len() < num_pins {
            scratch.visited.resize(num_pins, false);
        }
        out.reset(num_pins);

        // 1. Deterministic worst-K endpoint selection: slack ascending, ties
        //    by PinId. Selection + sort of K elements keeps the cost at
        //    O(E + K log K) for E endpoints.
        scratch.cand.clear();
        scratch
            .cand
            .extend(analysis.endpoints().iter().map(|&p| (analysis.slack[p.index()], p)));
        let k = top_k.min(scratch.cand.len());
        if k == 0 {
            return;
        }
        let cmp = |a: &(f64, PinId), b: &(f64, PinId)| {
            a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1))
        };
        if k < scratch.cand.len() {
            scratch.cand.select_nth_unstable_by(k - 1, cmp);
            scratch.cand.truncate(k);
        }
        scratch.cand.sort_unstable_by(cmp);
        out.wns = scratch.cand[0].0;
        let wns_mag = if out.wns < 0.0 { -out.wns } else { 0.0 };

        // 2–4. Trace in rank order; stop at the first pin a more critical
        //      path already claimed. Every loop iteration claims a new pin,
        //      so total trace work is bounded by the pins visited (even on a
        //      malformed cyclic graph the walk cannot revisit).
        for rank in 0..k {
            let (slack, endpoint) = scratch.cand[rank];
            let crit = if wns_mag > 0.0 {
                decay.powi(rank as i32) * ((-slack) / wns_mag).clamp(0.0, 1.0)
            } else {
                0.0
            };
            out.endpoints.push(endpoint);
            out.slacks.push(slack);
            out.crits.push(crit);
            let mut cur = endpoint;
            loop {
                let i = cur.index();
                if scratch.visited[i] {
                    break; // shared prefix: owned by a more critical path
                }
                scratch.visited[i] = true;
                scratch.touched.push(cur);
                out.pins.push(cur);
                if crit > 0.0 {
                    out.pin_crit[i] = crit;
                    out.crit_pins.push(cur);
                }
                match worst_fanin(self, nl, analysis, cur) {
                    Some(next) => cur = next,
                    None => break,
                }
            }
            out.offsets.push(out.pins.len() as u32);
        }
        for p in scratch.touched.drain(..) {
            scratch.visited[p.index()] = false;
        }
    }
}
