//! Error type for timing analysis setup.

use std::fmt;

/// Errors produced while binding a netlist to a library or building the
/// timing graph.
#[derive(Debug)]
#[non_exhaustive]
pub enum StaError {
    /// A netlist cell class has no cell of the same name in the library.
    UnboundClass(String),
    /// A library cell lacks a pin that the netlist class declares.
    UnboundPin {
        /// Class/cell name.
        class: String,
        /// Missing pin name.
        pin: String,
    },
    /// The combinational part of the netlist contains a cycle, so it cannot
    /// be levelized.
    CombinationalCycle {
        /// A pin on the cycle (diagnostic).
        pin: String,
    },
}

impl fmt::Display for StaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StaError::UnboundClass(c) => {
                write!(f, "cell class `{c}` not found in the library")
            }
            StaError::UnboundPin { class, pin } => {
                write!(f, "library cell `{class}` has no pin `{pin}`")
            }
            StaError::CombinationalCycle { pin } => {
                write!(f, "combinational cycle through pin `{pin}`")
            }
        }
    }
}

impl std::error::Error for StaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(StaError::UnboundClass("X".into()).to_string().contains("`X`"));
        let e = StaError::UnboundPin { class: "C".into(), pin: "P".into() };
        assert!(e.to_string().contains("no pin `P`"));
        let c = StaError::CombinationalCycle { pin: "u1/Y".into() };
        assert!(c.to_string().contains("cycle"));
    }
}
