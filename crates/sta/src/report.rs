//! Timing reports: critical-path extraction and slack summaries.

use crate::engine::{Analysis, Timer};
use crate::paths::worst_fanin;
use dtp_netlist::{Netlist, PinId};
use std::fmt;

/// A slack histogram over the analysis endpoints — the standard signoff
/// summary (e.g. for slack-histogram-compression style evaluations \[34\]).
#[derive(Clone, Debug, PartialEq)]
pub struct SlackHistogram {
    /// Bin edges, ascending (len = bins + 1).
    pub edges: Vec<f64>,
    /// Endpoint count per bin.
    pub counts: Vec<usize>,
    /// Endpoints below the first edge.
    pub underflow: usize,
    /// Endpoints at or above the last edge.
    pub overflow: usize,
}

impl SlackHistogram {
    /// Builds a histogram of the endpoint setup slacks with `bins` equal
    /// bins across `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `lo >= hi`.
    pub fn new(analysis: &Analysis, lo: f64, hi: f64, bins: usize) -> SlackHistogram {
        assert!(bins > 0 && lo < hi);
        let width = (hi - lo) / bins as f64;
        let edges = (0..=bins).map(|i| lo + i as f64 * width).collect();
        let mut counts = vec![0usize; bins];
        let mut underflow = 0;
        let mut overflow = 0;
        for &p in analysis.endpoints() {
            let s = analysis.slack[p.index()];
            if s < lo {
                underflow += 1;
            } else if s >= hi {
                overflow += 1;
            } else {
                counts[((s - lo) / width) as usize] += 1;
            }
        }
        SlackHistogram { edges, counts, underflow, overflow }
    }

    /// Total endpoints counted (including under/overflow).
    pub fn total(&self) -> usize {
        self.counts.iter().sum::<usize>() + self.underflow + self.overflow
    }

    /// Number of endpoints with negative slack (under the 0 edge), counting
    /// fractional bins conservatively by the bin's lower edge.
    pub fn violations(&self) -> usize {
        let mut n = self.underflow;
        for (i, &c) in self.counts.iter().enumerate() {
            if self.edges[i] < 0.0 {
                n += c;
            }
        }
        n
    }
}

impl fmt::Display for SlackHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let max = self.counts.iter().copied().max().unwrap_or(1).max(1);
        writeln!(f, "slack histogram ({} endpoints):", self.total())?;
        if self.underflow > 0 {
            writeln!(f, "  < {:>9.1} : {:>5}", self.edges[0], self.underflow)?;
        }
        for (i, &c) in self.counts.iter().enumerate() {
            let bar = "#".repeat(c * 40 / max);
            writeln!(
                f,
                "  [{:>9.1}, {:>9.1}) : {:>5} {bar}",
                self.edges[i],
                self.edges[i + 1],
                c
            )?;
        }
        if self.overflow > 0 {
            writeln!(f, "  >={:>9.1} : {:>5}", self.edges[self.edges.len() - 1], self.overflow)?;
        }
        Ok(())
    }
}

/// One point on a reported timing path.
#[derive(Clone, Debug)]
pub struct PathPoint {
    /// The pin.
    pub pin: PinId,
    /// Hierarchical pin name (`cell/PIN`).
    pub name: String,
    /// Arrival time at the pin, ps.
    pub at: f64,
    /// Slew at the pin, ps.
    pub slew: f64,
}

/// A digest of one analysis: WNS/TNS, violation counts, and the critical
/// path traced from the worst endpoint back to its launch point.
#[derive(Clone, Debug)]
pub struct TimingReport {
    /// Worst negative slack (setup), ps.
    pub wns: f64,
    /// Total negative slack (setup), ps.
    pub tns: f64,
    /// Worst hold slack, ps.
    pub wns_hold: f64,
    /// Number of endpoints with negative setup slack.
    pub violations: usize,
    /// Number of endpoints checked.
    pub endpoints: usize,
    /// Critical path, launch to capture.
    pub critical_path: Vec<PathPoint>,
}

impl TimingReport {
    /// Builds a report from an (ideally exact) analysis.
    ///
    /// A design with no constrained endpoints (e.g. a coarse multi-level
    /// proxy whose synthetic cluster classes carry no arcs) reports
    /// `WNS = 0.0`, not `+inf`. The worst endpoint is selected
    /// deterministically: slack ties are broken by the smaller [`PinId`].
    pub fn new(timer: &Timer, nl: &Netlist, analysis: &Analysis) -> TimingReport {
        let endpoints = analysis.endpoints();
        let mut worst: Option<PinId> = None;
        let mut wns = f64::INFINITY;
        let mut tns = 0.0;
        let mut violations = 0;
        for &p in endpoints {
            let s = analysis.slack[p.index()];
            if s < wns || (s == wns && worst.is_none_or(|w| p < w)) {
                wns = s;
                worst = Some(p);
            }
            if s < 0.0 {
                tns += s;
                violations += 1;
            }
        }
        if worst.is_none() {
            wns = 0.0;
        }
        let critical_path = worst
            .map(|p| trace_path(timer, nl, analysis, p))
            .unwrap_or_default();
        TimingReport {
            wns,
            tns,
            wns_hold: analysis.wns_hold(),
            violations,
            endpoints: endpoints.len(),
            critical_path,
        }
    }
}

impl fmt::Display for TimingReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "WNS {:.1} ps | TNS {:.1} ps | {}/{} endpoints violated | hold WNS {:.1} ps",
            self.wns, self.tns, self.violations, self.endpoints, self.wns_hold
        )?;
        writeln!(f, "critical path ({} points):", self.critical_path.len())?;
        for pt in &self.critical_path {
            writeln!(f, "  {:<30} at {:>9.2} ps  slew {:>7.2} ps", pt.name, pt.at, pt.slew)?;
        }
        Ok(())
    }
}

/// Traces the most critical path from `endpoint` back to a launch point by
/// following, at every merge, the fan-in whose arrival dominates (the same
/// [`worst_fanin`] step the top-K extractor uses).
fn trace_path(timer: &Timer, nl: &Netlist, analysis: &Analysis, endpoint: PinId) -> Vec<PathPoint> {
    let mut rev = Vec::new();
    let mut cur = endpoint;
    let mut guard = 0usize;
    loop {
        rev.push(PathPoint {
            pin: cur,
            name: nl.pin_name(cur),
            at: analysis.at[cur.index()],
            slew: analysis.slew[cur.index()],
        });
        guard += 1;
        if guard > nl.num_pins() {
            break; // defensive: malformed graphs cannot loop forever
        }
        match worst_fanin(timer, nl, analysis, cur) {
            Some(from) => cur = from,
            None => break,
        }
    }
    rev.reverse();
    rev
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtp_liberty::synth::synthetic_pdk;
    use dtp_netlist::generate::{generate, GeneratorConfig};
    use dtp_rsmt::build_forest;

    #[test]
    fn report_on_generated_design() {
        let d = generate(&GeneratorConfig::named("rpt", 250)).unwrap();
        let lib = synthetic_pdk();
        let timer = Timer::new(&d, &lib).unwrap();
        let forest = build_forest(&d.netlist);
        let analysis = timer.analyze(&d.netlist, &forest);
        let report = TimingReport::new(&timer, &d.netlist, &analysis);
        assert_eq!(report.endpoints, analysis.endpoints().len());
        assert!(report.endpoints > 0);
        assert!((report.wns - analysis.wns()).abs() < 1e-9);
        assert!((report.tns - analysis.tns()).abs() < 1e-9);
        // The path starts at a launch point and ends at the worst endpoint.
        let path = &report.critical_path;
        assert!(path.len() >= 2, "critical path too short: {path:?}");
        let first = path.first().unwrap();
        let last = path.last().unwrap();
        assert!(timer.graph().role(first.pin).is_launch());
        assert!(timer.graph().role(last.pin).is_endpoint());
        // Arrival times are non-decreasing along the path.
        for w in path.windows(2) {
            assert!(
                w[1].at >= w[0].at - 1e-6,
                "AT decreases along path: {} -> {}",
                w[0].at,
                w[1].at
            );
        }
        // Display renders.
        let text = report.to_string();
        assert!(text.contains("WNS"));
        assert!(text.contains("critical path"));
    }

    #[test]
    fn slack_histogram_counts_all_endpoints() {
        let d = generate(&GeneratorConfig::named("hist", 300)).unwrap();
        let lib = synthetic_pdk();
        let timer = Timer::new(&d, &lib).unwrap();
        let forest = dtp_rsmt::build_forest(&d.netlist);
        let a = timer.analyze(&d.netlist, &forest);
        let h = SlackHistogram::new(&a, a.wns() - 1.0, a.wns().abs().max(100.0), 16);
        assert_eq!(h.total(), a.endpoints().len());
        // Lower-edge counting is conservative: every truly violating
        // endpoint lands in a bin whose lower edge is negative (or in the
        // underflow), so the histogram count can only overcount, by at most
        // the contents of the bin straddling zero.
        let direct = a
            .endpoints()
            .iter()
            .filter(|&&p| a.slack[p.index()] < 0.0)
            .count();
        assert!(h.violations() >= direct);
        let text = h.to_string();
        assert!(text.contains("slack histogram"));
    }

    #[test]
    fn histogram_violations_include_zero_straddling_bin() {
        // Edges at -10, 0 by construction plus a bin straddling zero:
        // edges [-10, -5, 5, 15]. Slacks -7 (fully negative bin), -1 and 2
        // (straddling bin), 12 (positive bin). The straddling bin's lower
        // edge is negative, so its whole count is reported: 3, not the 1
        // the old upper-edge test gave.
        let h = SlackHistogram {
            edges: vec![-10.0, -5.0, 5.0, 15.0],
            counts: vec![1, 2, 1],
            underflow: 0,
            overflow: 0,
        };
        assert_eq!(h.violations(), 3);
        // A bin whose lower edge is exactly 0 holds only non-negative
        // slacks and must not count.
        let h = SlackHistogram {
            edges: vec![-5.0, 0.0, 5.0],
            counts: vec![4, 9],
            underflow: 2,
            overflow: 1,
        };
        assert_eq!(h.violations(), 6);
    }

    #[test]
    #[should_panic]
    fn histogram_rejects_bad_range() {
        let d = generate(&GeneratorConfig::named("hist2", 60)).unwrap();
        let lib = synthetic_pdk();
        let timer = Timer::new(&d, &lib).unwrap();
        let forest = dtp_rsmt::build_forest(&d.netlist);
        let a = timer.analyze(&d.netlist, &forest);
        let _ = SlackHistogram::new(&a, 10.0, -10.0, 4);
    }
}
