//! Binding of structural netlist classes to liberty library cells.
//!
//! The netlist (`dtp-netlist`) knows only cell footprints and pin names; the
//! library (`dtp-liberty`) holds capacitances and timing arcs. The binding
//! resolves, once, per class: the library cell, per-pin capacitances, and the
//! delay/constraint arcs per output/data pin — so the per-iteration timing
//! passes never do string lookups.

use crate::error::StaError;
use dtp_liberty::{Library, TimingArc};
use dtp_netlist::{ClassId, Netlist, PinId};

/// Per-class resolved binding data.
///
/// Delay arcs are stored in CSR form (flat `(arc, from-pin)` array plus
/// per-class-pin offsets): the inner loops of every timing sweep read them,
/// so one contiguous slice per class beats a `Vec` per pin.
#[derive(Clone, Debug, Default)]
pub(crate) struct ClassBinding {
    /// Library cell index in the binding's arc arena, or `None` for port
    /// pseudo-classes (which have no library view).
    pub bound: bool,
    /// Input capacitance per class pin (0 for outputs/ports).
    pub pin_cap: Vec<f64>,
    /// Flat delay-arc array: `(index into Binding::arcs, class-pin index of
    /// the source input pin)`, grouped by destination (output) class pin.
    pub delay_arc_data: Vec<(u32, u32)>,
    /// CSR offsets into `delay_arc_data`, one entry per class pin plus a
    /// trailing end offset.
    pub delay_arc_offsets: Vec<u32>,
    /// For each class pin: index of the setup arc ending at this (data) pin.
    pub setup_arc: Vec<Option<usize>>,
    /// For each class pin: index of the hold arc ending at this (data) pin.
    pub hold_arc: Vec<Option<usize>>,
}

impl ClassBinding {
    /// Delay arcs ending at class pin `cp`, as `(arc index, from class-pin)`.
    #[inline]
    pub fn delay_arcs(&self, cp: usize) -> &[(u32, u32)] {
        let lo = self.delay_arc_offsets[cp] as usize;
        let hi = self.delay_arc_offsets[cp + 1] as usize;
        &self.delay_arc_data[lo..hi]
    }
}

/// Resolved netlist↔library binding.
#[derive(Clone, Debug)]
pub struct Binding {
    pub(crate) classes: Vec<ClassBinding>,
    pub(crate) arcs: Vec<TimingArc>,
    /// Wire resistance per micron (from the library technology extension).
    pub wire_res_per_um: f64,
    /// Wire capacitance per micron.
    pub wire_cap_per_um: f64,
}

impl Binding {
    /// Resolves the binding for every class used in `nl`.
    ///
    /// Port pseudo-classes (`__PI__`/`__PO__`) and Bookshelf-imported private
    /// classes (`__bs_*`) bind to nothing: zero caps, no arcs.
    ///
    /// # Errors
    ///
    /// Returns [`StaError::UnboundClass`] or [`StaError::UnboundPin`] if a
    /// real class is missing from the library.
    pub fn resolve(nl: &Netlist, lib: &Library) -> Result<Binding, StaError> {
        let mut classes = Vec::with_capacity(nl.num_classes());
        let mut arcs: Vec<TimingArc> = Vec::new();
        for ci in 0..nl.num_classes() {
            let class = nl.class(ClassId::new(ci));
            let n_pins = class.pins().len();
            if class.name().starts_with("__") {
                classes.push(ClassBinding {
                    bound: false,
                    pin_cap: vec![0.0; n_pins],
                    delay_arc_data: Vec::new(),
                    delay_arc_offsets: vec![0; n_pins + 1],
                    setup_arc: vec![None; n_pins],
                    hold_arc: vec![None; n_pins],
                });
                continue;
            }
            let lib_cell = lib
                .cell(class.name())
                .ok_or_else(|| StaError::UnboundClass(class.name().to_owned()))?;
            let mut cb = ClassBinding {
                bound: true,
                pin_cap: Vec::with_capacity(n_pins),
                delay_arc_data: Vec::new(),
                delay_arc_offsets: Vec::new(),
                setup_arc: vec![None; n_pins],
                hold_arc: vec![None; n_pins],
            };
            for spec in class.pins() {
                let lp = lib_cell.pin(&spec.name).ok_or_else(|| StaError::UnboundPin {
                    class: class.name().to_owned(),
                    pin: spec.name.clone(),
                })?;
                cb.pin_cap.push(lp.capacitance);
            }
            // Stage the per-pin arc lists, then flatten to CSR once the whole
            // cell is resolved (arc order within a pin is library order).
            let mut per_pin: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n_pins];
            for arc in lib_cell.arcs() {
                let to = class.find_pin(&arc.to).ok_or_else(|| StaError::UnboundPin {
                    class: class.name().to_owned(),
                    pin: arc.to.clone(),
                })?;
                let from = class.find_pin(&arc.from).ok_or_else(|| StaError::UnboundPin {
                    class: class.name().to_owned(),
                    pin: arc.from.clone(),
                })?;
                let idx = arcs.len();
                arcs.push(arc.clone());
                match arc.kind {
                    dtp_liberty::ArcKind::Setup => cb.setup_arc[to.index()] = Some(idx),
                    dtp_liberty::ArcKind::Hold => cb.hold_arc[to.index()] = Some(idx),
                    _ => per_pin[to.index()].push((idx as u32, from.index() as u32)),
                }
            }
            cb.delay_arc_offsets.push(0);
            for pin_arcs in &per_pin {
                cb.delay_arc_data.extend_from_slice(pin_arcs);
                cb.delay_arc_offsets.push(cb.delay_arc_data.len() as u32);
            }
            classes.push(cb);
        }
        Ok(Binding {
            classes,
            arcs,
            wire_res_per_um: lib.wire_res_per_um,
            wire_cap_per_um: lib.wire_cap_per_um,
        })
    }

    /// Input capacitance of a pin instance (0 for outputs and ports).
    #[inline]
    pub fn pin_cap(&self, nl: &Netlist, pin: PinId) -> f64 {
        let p = nl.pin(pin);
        let class = nl.cell(p.cell()).class();
        self.classes[class.index()].pin_cap[p.class_pin().index()]
    }

    /// The timing arc at `index` in the arc arena.
    pub(crate) fn arc(&self, index: usize) -> &TimingArc {
        &self.arcs[index]
    }

    /// Whether `class` has a library binding (false for port pseudo-classes).
    pub fn class_is_bound(&self, class: ClassId) -> bool {
        self.classes[class.index()].bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtp_liberty::synth::synthetic_pdk;
    use dtp_netlist::generate::{generate, GeneratorConfig};

    #[test]
    fn resolves_generated_design() {
        let d = generate(&GeneratorConfig::named("b", 120)).unwrap();
        let lib = synthetic_pdk();
        let b = Binding::resolve(&d.netlist, &lib).unwrap();
        assert_eq!(b.classes.len(), d.netlist.num_classes());
        assert!(b.wire_res_per_um > 0.0);
        // Every connected sink pin of a bound class has positive capacitance.
        let mut found_cap = false;
        for p in d.netlist.pin_ids() {
            let cap = b.pin_cap(&d.netlist, p);
            if cap > 0.0 {
                found_cap = true;
            }
            assert!(cap >= 0.0);
        }
        assert!(found_cap);
    }

    #[test]
    fn missing_cell_is_error() {
        let d = generate(&GeneratorConfig::named("b", 60)).unwrap();
        let empty = Library::new("empty");
        match Binding::resolve(&d.netlist, &empty) {
            Err(StaError::UnboundClass(_)) => {}
            other => panic!("expected UnboundClass, got {other:?}"),
        }
    }

    #[test]
    fn arcs_indexed_by_output_pin() {
        let d = generate(&GeneratorConfig::named("b", 60)).unwrap();
        let lib = synthetic_pdk();
        let b = Binding::resolve(&d.netlist, &lib).unwrap();
        // A NAND2 class must have two delay arcs to its Y pin.
        if let Some(cid) = d.netlist.find_class("NAND2_X1") {
            let class = d.netlist.class(cid);
            let y = class.find_pin("Y").unwrap();
            assert_eq!(b.classes[cid.index()].delay_arcs(y.index()).len(), 2);
        }
        // A DFF class has a setup and hold arc on D and a delay arc on Q.
        if let Some(cid) = d.netlist.find_class("DFF_X1") {
            let class = d.netlist.class(cid);
            let dd = class.find_pin("D").unwrap();
            let q = class.find_pin("Q").unwrap();
            assert!(b.classes[cid.index()].setup_arc[dd.index()].is_some());
            assert!(b.classes[cid.index()].hold_arc[dd.index()].is_some());
            assert_eq!(b.classes[cid.index()].delay_arcs(q.index()).len(), 1);
        }
    }
}
