//! Binding of structural netlist classes to liberty library cells.
//!
//! The netlist (`dtp-netlist`) knows only cell footprints and pin names; the
//! library (`dtp-liberty`) holds capacitances and timing arcs. The binding
//! resolves, once, per class: the library cell, per-pin capacitances, and the
//! delay/constraint arcs per output/data pin — so the per-iteration timing
//! passes never do string lookups.

use crate::error::StaError;
use dtp_liberty::{Library, TimingArc};
use dtp_netlist::{ClassId, Netlist, PinId};

/// Per-class resolved binding data.
#[derive(Clone, Debug, Default)]
pub(crate) struct ClassBinding {
    /// Library cell index in the binding's arc arena, or `None` for port
    /// pseudo-classes (which have no library view).
    pub bound: bool,
    /// Input capacitance per class pin (0 for outputs/ports).
    pub pin_cap: Vec<f64>,
    /// For each class pin: indices into `Binding::arcs` of delay arcs *ending*
    /// at this (output) pin, each tagged with the class-pin index of its
    /// source input pin.
    pub delay_arcs: Vec<Vec<(usize, usize)>>, // (arc index, from class-pin)
    /// For each class pin: index of the setup arc ending at this (data) pin.
    pub setup_arc: Vec<Option<usize>>,
    /// For each class pin: index of the hold arc ending at this (data) pin.
    pub hold_arc: Vec<Option<usize>>,
}

/// Resolved netlist↔library binding.
#[derive(Clone, Debug)]
pub struct Binding {
    pub(crate) classes: Vec<ClassBinding>,
    pub(crate) arcs: Vec<TimingArc>,
    /// Wire resistance per micron (from the library technology extension).
    pub wire_res_per_um: f64,
    /// Wire capacitance per micron.
    pub wire_cap_per_um: f64,
}

impl Binding {
    /// Resolves the binding for every class used in `nl`.
    ///
    /// Port pseudo-classes (`__PI__`/`__PO__`) and Bookshelf-imported private
    /// classes (`__bs_*`) bind to nothing: zero caps, no arcs.
    ///
    /// # Errors
    ///
    /// Returns [`StaError::UnboundClass`] or [`StaError::UnboundPin`] if a
    /// real class is missing from the library.
    pub fn resolve(nl: &Netlist, lib: &Library) -> Result<Binding, StaError> {
        let mut classes = Vec::with_capacity(nl.num_classes());
        let mut arcs: Vec<TimingArc> = Vec::new();
        for ci in 0..nl.num_classes() {
            let class = nl.class(ClassId::new(ci));
            let n_pins = class.pins().len();
            if class.name().starts_with("__") {
                classes.push(ClassBinding {
                    bound: false,
                    pin_cap: vec![0.0; n_pins],
                    delay_arcs: vec![Vec::new(); n_pins],
                    setup_arc: vec![None; n_pins],
                    hold_arc: vec![None; n_pins],
                });
                continue;
            }
            let lib_cell = lib
                .cell(class.name())
                .ok_or_else(|| StaError::UnboundClass(class.name().to_owned()))?;
            let mut cb = ClassBinding {
                bound: true,
                pin_cap: Vec::with_capacity(n_pins),
                delay_arcs: vec![Vec::new(); n_pins],
                setup_arc: vec![None; n_pins],
                hold_arc: vec![None; n_pins],
            };
            for spec in class.pins() {
                let lp = lib_cell.pin(&spec.name).ok_or_else(|| StaError::UnboundPin {
                    class: class.name().to_owned(),
                    pin: spec.name.clone(),
                })?;
                cb.pin_cap.push(lp.capacitance);
            }
            for arc in lib_cell.arcs() {
                let to = class.find_pin(&arc.to).ok_or_else(|| StaError::UnboundPin {
                    class: class.name().to_owned(),
                    pin: arc.to.clone(),
                })?;
                let from = class.find_pin(&arc.from).ok_or_else(|| StaError::UnboundPin {
                    class: class.name().to_owned(),
                    pin: arc.from.clone(),
                })?;
                let idx = arcs.len();
                arcs.push(arc.clone());
                match arc.kind {
                    dtp_liberty::ArcKind::Setup => cb.setup_arc[to.index()] = Some(idx),
                    dtp_liberty::ArcKind::Hold => cb.hold_arc[to.index()] = Some(idx),
                    _ => cb.delay_arcs[to.index()].push((idx, from.index())),
                }
            }
            classes.push(cb);
        }
        Ok(Binding {
            classes,
            arcs,
            wire_res_per_um: lib.wire_res_per_um,
            wire_cap_per_um: lib.wire_cap_per_um,
        })
    }

    /// Input capacitance of a pin instance (0 for outputs and ports).
    #[inline]
    pub fn pin_cap(&self, nl: &Netlist, pin: PinId) -> f64 {
        let p = nl.pin(pin);
        let class = nl.cell(p.cell()).class();
        self.classes[class.index()].pin_cap[p.class_pin().index()]
    }

    /// The timing arc at `index` in the arc arena.
    pub(crate) fn arc(&self, index: usize) -> &TimingArc {
        &self.arcs[index]
    }

    /// Whether `class` has a library binding (false for port pseudo-classes).
    pub fn class_is_bound(&self, class: ClassId) -> bool {
        self.classes[class.index()].bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtp_liberty::synth::synthetic_pdk;
    use dtp_netlist::generate::{generate, GeneratorConfig};

    #[test]
    fn resolves_generated_design() {
        let d = generate(&GeneratorConfig::named("b", 120)).unwrap();
        let lib = synthetic_pdk();
        let b = Binding::resolve(&d.netlist, &lib).unwrap();
        assert_eq!(b.classes.len(), d.netlist.num_classes());
        assert!(b.wire_res_per_um > 0.0);
        // Every connected sink pin of a bound class has positive capacitance.
        let mut found_cap = false;
        for p in d.netlist.pin_ids() {
            let cap = b.pin_cap(&d.netlist, p);
            if cap > 0.0 {
                found_cap = true;
            }
            assert!(cap >= 0.0);
        }
        assert!(found_cap);
    }

    #[test]
    fn missing_cell_is_error() {
        let d = generate(&GeneratorConfig::named("b", 60)).unwrap();
        let empty = Library::new("empty");
        match Binding::resolve(&d.netlist, &empty) {
            Err(StaError::UnboundClass(_)) => {}
            other => panic!("expected UnboundClass, got {other:?}"),
        }
    }

    #[test]
    fn arcs_indexed_by_output_pin() {
        let d = generate(&GeneratorConfig::named("b", 60)).unwrap();
        let lib = synthetic_pdk();
        let b = Binding::resolve(&d.netlist, &lib).unwrap();
        // A NAND2 class must have two delay arcs to its Y pin.
        if let Some(cid) = d.netlist.find_class("NAND2_X1") {
            let class = d.netlist.class(cid);
            let y = class.find_pin("Y").unwrap();
            assert_eq!(b.classes[cid.index()].delay_arcs[y.index()].len(), 2);
        }
        // A DFF class has a setup and hold arc on D and a delay arc on Q.
        if let Some(cid) = d.netlist.find_class("DFF_X1") {
            let class = d.netlist.class(cid);
            let dd = class.find_pin("D").unwrap();
            let q = class.find_pin("Q").unwrap();
            assert!(b.classes[cid.index()].setup_arc[dd.index()].is_some());
            assert!(b.classes[cid.index()].hold_arc[dd.index()].is_some());
            assert_eq!(b.classes[cid.index()].delay_arcs[q.index()].len(), 1);
        }
    }
}
