//! Differentiable Elmore wire-delay model (§3.4.2, Eqs. 7–8, Fig. 5).
//!
//! Forward: four dynamic-programming passes over the net's Steiner tree,
//! alternating bottom-up and top-down, computing `Load`, `Delay`, `LDelay`,
//! `Beta` and the slew `Impulse`. Backward: four passes in the exact reverse
//! order computing the adjoints, then the chain rule through
//! `Res = r·len(edge)` and `Cap = pin_cap + (c/2)·Σ len(adjacent edges)` down
//! to node positions.
//!
//! Note on Eq. (8) of the paper: equations (8c) and (8f) as printed contain
//! two apparent typos (`+2·Delay·∇Impulse²` should carry a minus sign because
//! `Impulse² = 2·Beta − Delay²`, and `Beta(u)·∇LDelay(u)` in (8f) should be
//! `LDelay(u)·∇Beta(u)`, the adjoint of `Beta(u) = Beta(fa) + Res·LDelay(u)`).
//! This implementation uses the mathematically consistent forms and validates
//! them against finite differences in the test suite.

use dtp_rsmt::SteinerTree;

/// Per-net Elmore state: the forward quantities of Eq. (7), indexed by tree
/// node (pins first, Steiner points after).
#[derive(Clone, Debug)]
pub struct ElmoreNet {
    /// Node capacitance: pin cap + half the wire cap of adjacent edges (fF).
    cap: Vec<f64>,
    /// Resistance of the edge from the node to its parent (kΩ); 0 at root.
    res: Vec<f64>,
    /// Downstream capacitance (Eq. 7a).
    load: Vec<f64>,
    /// Elmore delay from the driver (Eq. 7b), ps.
    delay: Vec<f64>,
    /// Load-weighted delay (Eq. 7c).
    ldelay: Vec<f64>,
    /// Second moment accumulator (Eq. 7d).
    beta: Vec<f64>,
    /// Raw `2·Beta − Delay²` before clamping (ps²); negative values are
    /// clamped to 0 in [`ElmoreNet::impulse_at`] with a dead gradient.
    impulse_sq_raw: Vec<f64>,
    /// Wire resistance per micron used by the forward pass.
    r_per_um: f64,
    /// Wire capacitance per micron used by the forward pass.
    c_per_um: f64,
}

/// Gradient seeds flowing into a net's Elmore backward pass.
#[derive(Clone, Debug)]
pub struct ElmoreSeeds {
    /// ∂f/∂Delay(node), nonzero at sink pin nodes (from Eq. 10b).
    pub grad_delay: Vec<f64>,
    /// ∂f/∂Impulse²(node), nonzero at sink pin nodes (from Eq. 10d).
    pub grad_impulse_sq: Vec<f64>,
    /// ∂f/∂Beta(node) — direct second-moment sensitivity, used by delay
    /// metrics beyond Elmore (e.g. [`ElmoreNet::delay_d2m_at`]).
    pub grad_beta: Vec<f64>,
    /// ∂f/∂Load(root) — the driving-cell arcs' load sensitivity (Eq. 12e).
    pub grad_root_load: f64,
}

impl ElmoreSeeds {
    /// Zero seeds for a tree with `n` nodes.
    pub fn zeros(n: usize) -> Self {
        ElmoreSeeds {
            grad_delay: vec![0.0; n],
            grad_impulse_sq: vec![0.0; n],
            grad_beta: vec![0.0; n],
            grad_root_load: 0.0,
        }
    }

    /// Re-zeros the seeds in place, resizing to `n` nodes if the tree
    /// topology changed — lets gradient sweeps reuse one seed buffer per net
    /// across iterations instead of reallocating.
    pub fn reset(&mut self, n: usize) {
        for buf in [&mut self.grad_delay, &mut self.grad_impulse_sq, &mut self.grad_beta] {
            buf.clear();
            buf.resize(n, 0.0);
        }
        self.grad_root_load = 0.0;
    }
}

impl ElmoreNet {
    /// Runs the forward Elmore passes (Eq. 7) over `tree`.
    ///
    /// `pin_caps[i]` is the input capacitance of pin node `i`; the driver's
    /// own entry is ignored (a driver does not load itself). `r`/`c` are the
    /// per-micron wire resistance and capacitance.
    ///
    /// # Panics
    ///
    /// Panics if `pin_caps.len() != tree.num_pins()`.
    pub fn forward(tree: &SteinerTree, pin_caps: &[f64], r: f64, c: f64) -> ElmoreNet {
        assert_eq!(pin_caps.len(), tree.num_pins());
        let n = tree.num_nodes();
        let order = tree.preorder();

        let mut cap = vec![0.0; n];
        let mut res = vec![0.0; n];
        for (i, &pc) in pin_caps.iter().enumerate().skip(1) {
            cap[i] = pc;
        }
        for i in 0..n {
            if let Some(p) = tree.parent_of(i) {
                let len = tree.edge_length(i);
                res[i] = r * len;
                let half = 0.5 * c * len;
                cap[i] += half;
                cap[p] += half;
            }
        }

        // Pass 1 (bottom-up): Load.
        let mut load = cap.clone();
        for &u in order.iter().rev() {
            let u = u as usize;
            if let Some(p) = tree.parent_of(u) {
                load[p] += load[u];
            }
        }
        // Pass 2 (top-down): Delay.
        let mut delay = vec![0.0; n];
        for &u in order.iter() {
            let u = u as usize;
            if let Some(p) = tree.parent_of(u) {
                delay[u] = delay[p] + res[u] * load[u];
            }
        }
        // Pass 3 (bottom-up): LDelay.
        let mut ldelay: Vec<f64> = (0..n).map(|i| cap[i] * delay[i]).collect();
        for &u in order.iter().rev() {
            let u = u as usize;
            if let Some(p) = tree.parent_of(u) {
                ldelay[p] += ldelay[u];
            }
        }
        // Pass 4 (top-down): Beta.
        let mut beta = vec![0.0; n];
        for &u in order.iter() {
            let u = u as usize;
            if let Some(p) = tree.parent_of(u) {
                beta[u] = beta[p] + res[u] * ldelay[u];
            }
        }
        let impulse_sq_raw = (0..n).map(|i| 2.0 * beta[i] - delay[i] * delay[i]).collect();

        ElmoreNet {
            cap,
            res,
            load,
            delay,
            ldelay,
            beta,
            impulse_sq_raw,
            r_per_um: r,
            c_per_um: c,
        }
    }

    /// Elmore delay from the driver to `node`, ps (Eq. 7b).
    #[inline]
    pub fn delay_at(&self, node: usize) -> f64 {
        self.delay[node]
    }

    /// Impulse (slew component) at `node`, ps (Eq. 7e), clamped at 0.
    #[inline]
    pub fn impulse_at(&self, node: usize) -> f64 {
        self.impulse_sq_raw[node].max(0.0).sqrt()
    }

    /// Squared impulse at `node` (clamped at 0).
    #[inline]
    pub fn impulse_sq_at(&self, node: usize) -> f64 {
        self.impulse_sq_raw[node].max(0.0)
    }

    /// Total capacitive load seen by the driver (Eq. 7a at the root).
    #[inline]
    pub fn root_load(&self) -> f64 {
        self.load[0]
    }

    /// Downstream capacitance at `node` (Eq. 7a).
    #[inline]
    pub fn load_at(&self, node: usize) -> f64 {
        self.load[node]
    }

    /// Second-moment accumulator at `node` (Eq. 7d) — exposed for tests and
    /// diagnostics of the slew model.
    #[inline]
    pub fn beta_at(&self, node: usize) -> f64 {
        self.beta[node]
    }

    /// D2M ("delay with two moments") wire delay at `node`:
    /// `ln 2 · m1² / √m2` with `m1 = Delay`, `m2 = 2·Beta`. D2M corrects
    /// Elmore's pessimism on far-from-driver sinks and is the kind of
    /// "other, more complex interconnect delay model" §3.4.2 claims the
    /// framework generalizes to. Falls back to Elmore when the second moment
    /// degenerates (near-zero wire).
    #[inline]
    pub fn delay_d2m_at(&self, node: usize) -> f64 {
        let m1 = self.delay[node];
        let m2 = 2.0 * self.beta[node];
        if m2 > 1e-12 {
            std::f64::consts::LN_2 * m1 * m1 / m2.sqrt()
        } else {
            m1
        }
    }

    /// Partial derivatives of [`ElmoreNet::delay_d2m_at`] with respect to
    /// `(Delay, Beta)` at `node`, for seeding the backward pass.
    #[inline]
    pub fn d2m_partials(&self, node: usize) -> (f64, f64) {
        let m1 = self.delay[node];
        let m2 = 2.0 * self.beta[node];
        if m2 > 1e-12 {
            let d_dm1 = 2.0 * std::f64::consts::LN_2 * m1 / m2.sqrt();
            // ∂/∂Beta = ∂/∂m2 · 2 = −ln2·m1²·m2^(−3/2)
            let d_dbeta = -std::f64::consts::LN_2 * m1 * m1 * m2.powf(-1.5);
            (d_dm1, d_dbeta)
        } else {
            (1.0, 0.0)
        }
    }

    /// Runs the backward passes (Eq. 8, lower half of Fig. 5) and the chain
    /// rule to node positions.
    ///
    /// Returns `(grad_x, grad_y)`: ∂f/∂(node position) per tree node. Use
    /// [`SteinerTree::scatter_gradient`] to fold Steiner-point entries onto
    /// pins.
    ///
    /// # Panics
    ///
    /// Panics if the seed vectors are not `tree.num_nodes()` long.
    pub fn backward(&self, tree: &SteinerTree, seeds: &ElmoreSeeds) -> (Vec<f64>, Vec<f64>) {
        let n = tree.num_nodes();
        assert_eq!(seeds.grad_delay.len(), n);
        assert_eq!(seeds.grad_impulse_sq.len(), n);
        let order = tree.preorder();

        // Impulse clamping: a node whose raw impulse² went negative has a
        // dead gradient through the impulse path.
        let g_imp: Vec<f64> = (0..n)
            .map(|i| if self.impulse_sq_raw[i] > 0.0 { seeds.grad_impulse_sq[i] } else { 0.0 })
            .collect();

        // Reverse pass 1 (bottom-up): ∇Beta (Eq. 8a), plus any direct Beta
        // seeds from non-Elmore delay metrics.
        let mut g_beta: Vec<f64> = (0..n).map(|i| 2.0 * g_imp[i] + seeds.grad_beta[i]).collect();
        for &u in order.iter().rev() {
            let u = u as usize;
            if let Some(p) = tree.parent_of(u) {
                g_beta[p] += g_beta[u];
            }
        }
        // Reverse pass 2 (top-down): ∇LDelay (Eq. 8b). The root's Res is 0,
        // so its adjoint is 0 without special-casing.
        let mut g_ldelay: Vec<f64> = (0..n).map(|i| self.res[i] * g_beta[i]).collect();
        for &u in order.iter() {
            let u = u as usize;
            if let Some(p) = tree.parent_of(u) {
                g_ldelay[u] += g_ldelay[p];
            }
        }

        // Reverse pass 3 (bottom-up): ∇Delay (Eq. 8c with the corrected
        // −2·Delay sign; see module docs).
        let mut g_delay: Vec<f64> = (0..n)
            .map(|i| {
                seeds.grad_delay[i] - 2.0 * self.delay[i] * g_imp[i] + self.cap[i] * g_ldelay[i]
            })
            .collect();
        for &u in order.iter().rev() {
            let u = u as usize;
            if let Some(p) = tree.parent_of(u) {
                g_delay[p] += g_delay[u];
            }
        }
        // Reverse pass 4 (top-down): ∇Load (Eq. 8d) with the root seed from
        // the driving cell's arcs.
        let mut g_load = vec![0.0; n];
        g_load[0] = seeds.grad_root_load;
        for &u in order.iter() {
            let u = u as usize;
            if let Some(p) = tree.parent_of(u) {
                g_load[u] = self.res[u] * g_delay[u] + g_load[p];
            }
        }

        // Local adjoints: ∇Cap (Eq. 8e) and ∇Res (Eq. 8f corrected).
        let g_cap: Vec<f64> = (0..n).map(|i| g_load[i] + self.delay[i] * g_ldelay[i]).collect();
        let g_res: Vec<f64> = (0..n)
            .map(|i| self.load[i] * g_delay[i] + self.ldelay[i] * g_beta[i])
            .collect();

        // Chain to edge lengths and node positions. The wire parameters are
        // recoverable from the stored res/cap arrays only jointly, so we
        // recompute lengths from the tree geometry.
        let mut gx = vec![0.0; n];
        let mut gy = vec![0.0; n];
        for u in 0..n {
            let Some(p) = tree.parent_of(u) else { continue };
            let g_len = self.r_per_um * g_res[u]
                + 0.5 * self.c_per_um * (g_cap[u] + g_cap[p]);
            let a = tree.node_pos(u);
            let b = tree.node_pos(p);
            let sx = (a.x - b.x).signum_or_zero();
            let sy = (a.y - b.y).signum_or_zero();
            gx[u] += sx * g_len;
            gx[p] -= sx * g_len;
            gy[u] += sy * g_len;
            gy[p] -= sy * g_len;
        }
        (gx, gy)
    }
}

/// Extension trait: sign with 0 at 0 (subgradient of `|x|`).
trait SignumOrZero {
    fn signum_or_zero(self) -> f64;
}

impl SignumOrZero for f64 {
    #[inline]
    fn signum_or_zero(self) -> f64 {
        if self > 0.0 {
            1.0
        } else if self < 0.0 {
            -1.0
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtp_netlist::Point;

    const R: f64 = 1.0;
    const C: f64 = 0.25;

    #[test]
    fn two_pin_net_matches_hand_calc() {
        // Driver at 0, sink at distance L = 10. Lumped RC:
        // Res = R·L, node caps: each gets C·L/2; sink also pin cap 2.0.
        // Load(sink) = C·L/2 + 2.0 = 1.25 + 2 = 3.25
        // Delay(sink) = Res · Load(sink) = 10 · 3.25 = 32.5
        let tree = SteinerTree::build(&[Point::new(0.0, 0.0), Point::new(10.0, 0.0)]);
        let e = ElmoreNet::forward(&tree, &[0.0, 2.0], R, C);
        assert!((e.delay_at(1) - 32.5).abs() < 1e-12);
        assert!((e.root_load() - (0.25 * 10.0 + 2.0)).abs() < 1e-12);
        // Beta(sink) = Res · LDelay(sink) = 10 · (3.25 · 32.5) = 1056.25
        // Impulse² = 2·1056.25 − 32.5² = 2112.5 − 1056.25 = 1056.25
        assert!((e.impulse_sq_at(1) - 1056.25).abs() < 1e-9);
    }

    #[test]
    fn delay_monotone_in_distance() {
        for l in [1.0, 5.0, 20.0, 80.0] {
            let t1 = SteinerTree::build(&[Point::new(0.0, 0.0), Point::new(l, 0.0)]);
            let t2 = SteinerTree::build(&[Point::new(0.0, 0.0), Point::new(l * 2.0, 0.0)]);
            let e1 = ElmoreNet::forward(&t1, &[0.0, 1.0], R, C);
            let e2 = ElmoreNet::forward(&t2, &[0.0, 1.0], R, C);
            assert!(e2.delay_at(1) > e1.delay_at(1));
        }
    }

    #[test]
    fn load_accumulates_over_sinks() {
        let pins = [
            Point::new(0.0, 0.0),
            Point::new(5.0, 5.0),
            Point::new(-5.0, 5.0),
        ];
        let tree = SteinerTree::build(&pins);
        let e = ElmoreNet::forward(&tree, &[0.0, 1.5, 2.5], R, C);
        let total_wire_cap = C * tree.wirelength();
        assert!((e.root_load() - (1.5 + 2.5 + total_wire_cap)).abs() < 1e-9);
    }

    /// Builds a scalar objective from seeds and checks the analytic position
    /// gradient against central finite differences on each pin coordinate.
    fn grad_check(pins: &[Point], pin_caps: &[f64]) {
        let tree = SteinerTree::build(pins);
        let n = tree.num_nodes();
        let mut seeds = ElmoreSeeds::zeros(n);
        // Arbitrary but fixed seed pattern on the sink pins + root load.
        for i in 1..tree.num_pins() {
            seeds.grad_delay[i] = 1.0 + 0.3 * i as f64;
            seeds.grad_impulse_sq[i] = 0.01 * i as f64;
        }
        seeds.grad_root_load = 0.7;

        let objective = |pins: &[Point]| -> f64 {
            let mut t = tree.clone();
            t.update_pins(pins);
            let e = ElmoreNet::forward(&t, pin_caps, R, C);
            let mut f = seeds.grad_root_load * e.root_load();
            for i in 1..t.num_pins() {
                f += seeds.grad_delay[i] * e.delay_at(i);
                f += seeds.grad_impulse_sq[i] * e.impulse_sq_at(i);
            }
            f
        };

        let e = ElmoreNet::forward(&tree, pin_caps, R, C);
        let (gx, gy) = e.backward(&tree, &seeds);
        let per_pin = tree.scatter_gradient(&gx, &gy);

        let h = 1e-5;
        for i in 0..pins.len() {
            for axis in 0..2 {
                let mut hi = pins.to_vec();
                let mut lo = pins.to_vec();
                if axis == 0 {
                    hi[i].x += h;
                    lo[i].x -= h;
                } else {
                    hi[i].y += h;
                    lo[i].y -= h;
                }
                let num = (objective(&hi) - objective(&lo)) / (2.0 * h);
                let ana = if axis == 0 { per_pin[i].0 } else { per_pin[i].1 };
                assert!(
                    (num - ana).abs() < 1e-4 * (1.0 + num.abs()),
                    "pin {i} axis {axis}: analytic {ana} vs numeric {num}"
                );
            }
        }
    }

    #[test]
    fn gradcheck_two_pins() {
        grad_check(
            &[Point::new(0.0, 0.0), Point::new(13.0, 7.0)],
            &[0.0, 2.0],
        );
    }

    #[test]
    fn gradcheck_three_pins_with_steiner() {
        grad_check(
            &[Point::new(0.0, 0.0), Point::new(9.0, 6.0), Point::new(11.0, -4.0)],
            &[0.0, 1.0, 3.0],
        );
    }

    #[test]
    fn gradcheck_larger_net() {
        let pins = [
            Point::new(0.0, 0.0),
            Point::new(10.0, 3.0),
            Point::new(-6.0, 8.0),
            Point::new(4.0, -9.0),
            Point::new(12.0, 12.0),
            Point::new(-3.0, -5.0),
            Point::new(7.0, 1.5),
        ];
        let caps = [0.0, 1.0, 2.0, 1.5, 0.5, 2.5, 1.2];
        grad_check(&pins, &caps);
    }

    #[test]
    fn zero_seeds_give_zero_gradient() {
        let pins = [Point::new(0.0, 0.0), Point::new(5.0, 5.0)];
        let tree = SteinerTree::build(&pins);
        let e = ElmoreNet::forward(&tree, &[0.0, 1.0], R, C);
        let (gx, gy) = e.backward(&tree, &ElmoreSeeds::zeros(tree.num_nodes()));
        assert!(gx.iter().chain(gy.iter()).all(|&g| g == 0.0));
    }

    #[test]
    fn coincident_pins_do_not_produce_nan() {
        let p = Point::new(1.0, 1.0);
        let tree = SteinerTree::build(&[p, p, p]);
        let e = ElmoreNet::forward(&tree, &[0.0, 1.0, 1.0], R, C);
        let mut seeds = ElmoreSeeds::zeros(tree.num_nodes());
        seeds.grad_delay[1] = 1.0;
        let (gx, gy) = e.backward(&tree, &seeds);
        assert!(gx.iter().chain(gy.iter()).all(|g| g.is_finite()));
    }
}
