//! Timing graph construction and pin levelization (§3.3 step 1).
//!
//! The STA DAG has pins as nodes and two arc families: *net arcs* (net driver
//! to each sink) and *cell arcs* (cell input to cell output, from the
//! library binding). Registers cut the graph: their `Q` pins are launch
//! points (clocked by the ideal clock) and their `D` pins are capture
//! endpoints, so no `D → Q` edge exists. Pins are assigned *levels* by
//! longest path from the launch points; level-by-level batches are the unit
//! of parallel propagation (the paper's GPU kernel launches).

use crate::binding::Binding;
use crate::error::StaError;
use dtp_netlist::{Netlist, PinDir, PinId, PinKind};

/// Functional role of a pin in the timing graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PinRole {
    /// Primary-input port pin: a launch point with SDC input delay.
    PrimaryInput,
    /// Primary-output port pin: a capture endpoint with SDC output margin.
    PrimaryOutput,
    /// Register `Q`: a launch point driven by the (ideal) clock.
    RegisterOutput,
    /// Register `D`: a capture endpoint checked against setup/hold.
    RegisterData,
    /// Register clock pin: ideal network, excluded from propagation.
    Clock,
    /// Combinational cell input.
    CombInput,
    /// Combinational cell output.
    CombOutput,
    /// Pin with no net; treated as a constant (excluded).
    Unconnected,
}

impl PinRole {
    /// Whether arrival times originate here.
    pub fn is_launch(self) -> bool {
        matches!(self, PinRole::PrimaryInput | PinRole::RegisterOutput)
    }

    /// Whether slacks are checked here.
    pub fn is_endpoint(self) -> bool {
        matches!(self, PinRole::PrimaryOutput | PinRole::RegisterData)
    }
}

/// The levelized timing graph.
///
/// Levels are stored in CSR form (one flat pin array plus per-level
/// offsets) so a whole forward or backward sweep touches two contiguous
/// allocations instead of one heap block per level.
#[derive(Clone, Debug)]
pub struct TimingGraph {
    role: Vec<PinRole>,
    level: Vec<u32>,
    /// Flat pin array, grouped by ascending level; only pins that
    /// participate in propagation appear.
    level_pins: Vec<PinId>,
    /// CSR offsets into `level_pins`: level `l` spans
    /// `level_pins[level_offsets[l]..level_offsets[l + 1]]`.
    level_offsets: Vec<u32>,
    endpoints: Vec<PinId>,
}

impl TimingGraph {
    /// Builds and levelizes the timing graph.
    ///
    /// # Errors
    ///
    /// Returns [`StaError::CombinationalCycle`] if the combinational netlist
    /// is cyclic.
    pub fn build(nl: &Netlist, binding: &Binding) -> Result<TimingGraph, StaError> {
        let n = nl.num_pins();
        let mut role = Vec::with_capacity(n);
        for p in nl.pin_ids() {
            let pin = nl.pin(p);
            let spec = nl.pin_spec(p);
            let cell = pin.cell();
            let r = if pin.net().is_none() {
                PinRole::Unconnected
            } else if nl.cell_is_input_port(cell) {
                PinRole::PrimaryInput
            } else if nl.cell_is_output_port(cell) {
                PinRole::PrimaryOutput
            } else if spec.kind == PinKind::Clock {
                PinRole::Clock
            } else if nl.class_of(cell).is_sequential() {
                if spec.dir == PinDir::Output {
                    PinRole::RegisterOutput
                } else {
                    PinRole::RegisterData
                }
            } else if spec.dir == PinDir::Output {
                PinRole::CombOutput
            } else {
                PinRole::CombInput
            };
            role.push(r);
        }

        // Forward adjacency + in-degrees over propagation arcs.
        let mut indeg = vec![0u32; n];
        let mut succ: Vec<Vec<u32>> = vec![Vec::new(); n];
        let active = |r: PinRole| !matches!(r, PinRole::Clock | PinRole::Unconnected);
        // Net arcs.
        for net_id in nl.net_ids() {
            let net = nl.net(net_id);
            if net.is_clock() {
                continue;
            }
            let Some(driver) = nl.net_driver(net_id) else { continue };
            if !active(role[driver.index()]) {
                continue;
            }
            for &sink in nl.net_sinks(net_id) {
                if active(role[sink.index()]) {
                    succ[driver.index()].push(sink.index() as u32);
                    indeg[sink.index()] += 1;
                }
            }
        }
        // Cell arcs (combinational only; register CK→Q is evaluated at launch,
        // not traversed).
        for p in nl.pin_ids() {
            if role[p.index()] != PinRole::CombOutput {
                continue;
            }
            let pin = nl.pin(p);
            let cell = nl.cell(pin.cell());
            let cb = &binding.classes[cell.class().index()];
            for &(_, from_cp) in cb.delay_arcs(pin.class_pin().index()) {
                let from_pin = cell.pins()[from_cp as usize];
                if active(role[from_pin.index()]) {
                    succ[from_pin.index()].push(p.index() as u32);
                    indeg[p.index()] += 1;
                }
            }
        }

        // Kahn longest-path levelization.
        let mut level = vec![0u32; n];
        let mut queue: Vec<u32> = Vec::new();
        let mut n_active = 0usize;
        for i in 0..n {
            if active(role[i]) {
                n_active += 1;
                if indeg[i] == 0 {
                    queue.push(i as u32);
                }
            }
        }
        let mut processed = 0usize;
        let mut head = 0usize;
        while head < queue.len() {
            let u = queue[head] as usize;
            head += 1;
            processed += 1;
            for &v in &succ[u] {
                let v = v as usize;
                level[v] = level[v].max(level[u] + 1);
                indeg[v] -= 1;
                if indeg[v] == 0 {
                    queue.push(v as u32);
                }
            }
        }
        if processed != n_active {
            let culprit = (0..n)
                .find(|&i| active(role[i]) && indeg[i] > 0)
                .expect("unprocessed pin exists when counts mismatch");
            return Err(StaError::CombinationalCycle {
                pin: nl.pin_name(PinId::new(culprit)),
            });
        }

        let max_level = (0..n)
            .filter(|&i| active(role[i]))
            .map(|i| level[i])
            .max()
            .unwrap_or(0) as usize;
        // Counting sort into CSR: count per level, prefix-sum, scatter.
        let mut level_offsets = vec![0u32; max_level + 2];
        for i in 0..n {
            if active(role[i]) {
                level_offsets[level[i] as usize + 1] += 1;
            }
        }
        for l in 0..=max_level {
            level_offsets[l + 1] += level_offsets[l];
        }
        let mut cursor: Vec<u32> = level_offsets[..=max_level].to_vec();
        let mut level_pins = vec![PinId::new(0); level_offsets[max_level + 1] as usize];
        for i in 0..n {
            if active(role[i]) {
                let l = level[i] as usize;
                level_pins[cursor[l] as usize] = PinId::new(i);
                cursor[l] += 1;
            }
        }
        let endpoints: Vec<PinId> = nl
            .pin_ids()
            .filter(|&p| role[p.index()].is_endpoint())
            .collect();

        Ok(TimingGraph { role, level, level_pins, level_offsets, endpoints })
    }

    /// Role of a pin.
    #[inline]
    pub fn role(&self, pin: PinId) -> PinRole {
        self.role[pin.index()]
    }

    /// Level of a pin (0 for launch points and excluded pins).
    #[inline]
    pub fn level(&self, pin: PinId) -> u32 {
        self.level[pin.index()]
    }

    /// Pins of level `l` as a contiguous slice of the CSR pin array.
    ///
    /// # Panics
    ///
    /// Panics if `l >= depth()`.
    #[inline]
    pub fn level_pins(&self, l: usize) -> &[PinId] {
        let lo = self.level_offsets[l] as usize;
        let hi = self.level_offsets[l + 1] as usize;
        &self.level_pins[lo..hi]
    }

    /// Pins grouped by ascending level: an iterator of per-level slices into
    /// the flat CSR array (no per-level allocation).
    pub fn levels(
        &self,
    ) -> impl DoubleEndedIterator<Item = &[PinId]> + ExactSizeIterator + '_ {
        self.level_offsets
            .windows(2)
            .map(move |w| &self.level_pins[w[0] as usize..w[1] as usize])
    }

    /// Number of levels (the depth of the "neural network", §3.1).
    pub fn depth(&self) -> usize {
        self.level_offsets.len() - 1
    }

    /// All capture endpoints (register data pins and primary outputs).
    pub fn endpoints(&self) -> &[PinId] {
        &self.endpoints
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtp_liberty::synth::synthetic_pdk;
    use dtp_netlist::generate::{generate, GeneratorConfig};

    fn graph_for(cells: usize) -> (dtp_netlist::Design, Binding, TimingGraph) {
        let d = generate(&GeneratorConfig::named("g", cells)).unwrap();
        let lib = synthetic_pdk();
        let b = Binding::resolve(&d.netlist, &lib).unwrap();
        let g = TimingGraph::build(&d.netlist, &b).unwrap();
        (d, b, g)
    }

    #[test]
    fn levels_respect_arcs() {
        let (d, b, g) = graph_for(200);
        // Net arcs: sink strictly deeper than driver.
        for net_id in d.netlist.net_ids() {
            let net = d.netlist.net(net_id);
            if net.is_clock() {
                continue;
            }
            let driver = d.netlist.net_driver(net_id).unwrap();
            if matches!(g.role(driver), PinRole::Clock | PinRole::Unconnected) {
                continue;
            }
            for &s in d.netlist.net_sinks(net_id) {
                if !matches!(g.role(s), PinRole::Clock | PinRole::Unconnected) {
                    assert!(g.level(s) > g.level(driver));
                }
            }
        }
        // Cell arcs: comb output deeper than its inputs.
        for p in d.netlist.pin_ids() {
            if g.role(p) != PinRole::CombOutput {
                continue;
            }
            let pin = d.netlist.pin(p);
            let cell = d.netlist.cell(pin.cell());
            let cb = &b.classes[cell.class().index()];
            for &(_, from_cp) in cb.delay_arcs(pin.class_pin().index()) {
                let from = cell.pins()[from_cp as usize];
                if !matches!(g.role(from), PinRole::Clock | PinRole::Unconnected) {
                    assert!(g.level(p) > g.level(from));
                }
            }
        }
    }

    #[test]
    fn launch_pins_at_level_zero() {
        let (d, _, g) = graph_for(150);
        for p in d.netlist.pin_ids() {
            if g.role(p).is_launch() {
                assert_eq!(g.level(p), 0, "launch pin {} not at level 0", d.netlist.pin_name(p));
            }
        }
    }

    #[test]
    fn endpoints_are_register_data_and_pos() {
        let (d, _, g) = graph_for(150);
        assert!(!g.endpoints().is_empty());
        for &p in g.endpoints() {
            assert!(g.role(p).is_endpoint());
            assert!(d.netlist.pin(p).net().is_some());
        }
    }

    #[test]
    fn clock_pins_excluded_from_levels() {
        let (d, _, g) = graph_for(150);
        for lv in g.levels() {
            for &p in lv {
                assert_ne!(g.role(p), PinRole::Clock);
                assert_ne!(g.role(p), PinRole::Unconnected);
                let _ = d.netlist.pin_name(p);
            }
        }
    }

    #[test]
    fn depth_grows_with_logic_depth() {
        let mut cfg = GeneratorConfig::named("g", 300);
        cfg.depth = 4;
        let lib = synthetic_pdk();
        let d1 = generate(&cfg).unwrap();
        let b1 = Binding::resolve(&d1.netlist, &lib).unwrap();
        let g1 = TimingGraph::build(&d1.netlist, &b1).unwrap();
        cfg.depth = 16;
        let d2 = generate(&cfg).unwrap();
        let b2 = Binding::resolve(&d2.netlist, &lib).unwrap();
        let g2 = TimingGraph::build(&d2.netlist, &b2).unwrap();
        assert!(g2.depth() > g1.depth());
    }
}
