//! Offline stand-in for the subset of the [`rand` 0.8](https://docs.rs/rand/0.8)
//! API this workspace uses: `StdRng`, [`SeedableRng::seed_from_u64`] and
//! [`Rng::gen_range`] over half-open / inclusive integer and float ranges.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the few dependency surfaces it needs as local shim crates (wired up via
//! dependency renames in the root `Cargo.toml`). The generator is
//! xoshiro256++ seeded through SplitMix64 — deterministic across platforms,
//! which is all the tests and flows rely on. It is **not** a
//! cryptographically secure source.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Seedable random generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Uniform sampling from a range type (stand-in for `rand`'s
/// `SampleRange`/`SampleUniform` machinery, collapsed into one trait).
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform sample using `next` as the 64-bit entropy source.
    fn sample(self, next: &mut dyn FnMut() -> u64) -> Self::Output;
}

#[inline]
fn unit_f64(bits: u64) -> f64 {
    // 53 mantissa bits -> [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample(self, next: &mut dyn FnMut() -> u64) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + unit_f64(next()) * (self.end - self.start)
    }
}

impl SampleRange for Range<f32> {
    type Output = f32;
    fn sample(self, next: &mut dyn FnMut() -> u64) -> f32 {
        assert!(self.start < self.end, "empty range");
        self.start + (unit_f64(next()) as f32) * (self.end - self.start)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, next: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u128;
                self.start + ((next() as u128 % span) as $t)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, next: &mut dyn FnMut() -> u64) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u128 + 1;
                lo + ((next() as u128 % span) as $t)
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8);

macro_rules! impl_signed_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, next: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (next() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_signed_range!(i64 => u64, i32 => u32, i16 => u16, i8 => u8, isize => usize);

/// Types samplable from raw bits via `Rng::gen` (collapses `rand`'s
/// `Standard` distribution into one trait).
pub trait StandardSample {
    /// Builds a uniform sample from 64 random bits.
    fn from_bits(bits: u64) -> Self;
}

impl StandardSample for f64 {
    fn from_bits(bits: u64) -> f64 {
        unit_f64(bits)
    }
}

impl StandardSample for f32 {
    fn from_bits(bits: u64) -> f32 {
        unit_f64(bits) as f32
    }
}

impl StandardSample for u64 {
    fn from_bits(bits: u64) -> u64 {
        bits
    }
}

impl StandardSample for bool {
    fn from_bits(bits: u64) -> bool {
        bits & 1 == 1
    }
}

/// Core random-value interface (subset of `rand::Rng`).
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample of `T` (floats in `[0, 1)`), `rand`'s `gen::<T>()`.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_bits(self.next_u64())
    }

    /// Uniform sample from `range` (half-open or inclusive).
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(&mut || self.next_u64())
    }

    /// Bernoulli sample with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator (the shim's `StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the seed, as recommended by the
            // xoshiro authors.
            let mut x = state;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&f));
            let u = rng.gen_range(5usize..9);
            assert!((5..9).contains(&u));
            let i = rng.gen_range(1..=4usize);
            assert!((1..=4).contains(&i));
        }
    }

    #[test]
    fn spreads_over_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
