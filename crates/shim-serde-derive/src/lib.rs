//! Derive macros backing the offline `serde` shim (`shim-serde`).
//!
//! The shim's `Serialize` / `Deserialize` are empty marker traits — nothing
//! in the workspace serializes through serde at runtime — so the derives only
//! need to emit marker impls. Implemented with direct `proc_macro` token
//! scanning (no `syn`/`quote`: the build environment cannot reach a
//! registry): find the `struct` / `enum` keyword at the top level of the
//! item, take the following identifier as the type name. The emitted impls
//! use the relative path `serde::…`, which every consumer resolves through
//! the extern prelude (the shim is wired in under the dependency name
//! `serde`).
//!
//! Limitations (deliberate, checked against the workspace): derived types
//! must not be generic, and `#[serde(...)]` attributes are accepted but
//! ignored.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the type name from a `struct`/`enum` item's token stream.
fn type_name(input: &TokenStream) -> String {
    let mut iter = input.clone().into_iter();
    while let Some(tt) = iter.next() {
        if let TokenTree::Ident(id) = &tt {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" {
                match iter.next() {
                    Some(TokenTree::Ident(name)) => return name.to_string(),
                    other => panic!("shim-serde-derive: expected type name, got {other:?}"),
                }
            }
        }
    }
    panic!("shim-serde-derive: no struct/enum keyword in derive input");
}

/// Derives the shim's marker `Serialize` impl.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(&input);
    format!("impl serde::Serialize for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}

/// Derives the shim's marker `Deserialize` impl.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(&input);
    format!("impl<'de> serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}
