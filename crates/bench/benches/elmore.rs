//! Criterion micro-benchmarks of the Elmore forward/backward passes
//! (Fig. 5): the per-net kernels of the differentiable timer.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dtp_netlist::Point;
use dtp_rsmt::SteinerTree;
use dtp_sta::ElmoreNet;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn random_tree(deg: usize, seed: u64) -> (SteinerTree, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let pins: Vec<Point> = (0..deg)
        .map(|_| Point::new(rng.gen_range(0.0..200.0), rng.gen_range(0.0..200.0)))
        .collect();
    let caps = vec![1.5; deg];
    (SteinerTree::build(&pins), caps)
}

fn bench_elmore(c: &mut Criterion) {
    let mut group = c.benchmark_group("elmore");
    for deg in [2usize, 4, 8, 16, 32] {
        let (tree, caps) = random_tree(deg, deg as u64);
        group.bench_with_input(BenchmarkId::new("forward", deg), &deg, |b, _| {
            b.iter(|| black_box(ElmoreNet::forward(&tree, &caps, 0.1, 0.2)))
        });
        let e = ElmoreNet::forward(&tree, &caps, 0.1, 0.2);
        let mut seeds = dtp_sta::ElmoreSeeds::zeros(tree.num_nodes());
        for i in 1..deg {
            seeds.grad_delay[i] = 1.0;
            seeds.grad_impulse_sq[i] = 0.1;
        }
        seeds.grad_root_load = 0.5;
        group.bench_with_input(BenchmarkId::new("backward", deg), &deg, |b, _| {
            b.iter(|| black_box(e.backward(&tree, &seeds)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_elmore);
criterion_main!(benches);
