//! Criterion benchmarks of the wirelength and density kernels — the
//! non-timing per-iteration costs of the placement loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dtp_liberty::synth::synthetic_pdk;
use dtp_netlist::generate::{generate, GeneratorConfig};
use dtp_place::{DensityModel, WirelengthModel};
use std::hint::black_box;

fn bench_kernels(c: &mut Criterion) {
    let _ = synthetic_pdk(); // warm the shared tables
    let mut group = c.benchmark_group("place_kernels");
    group.sample_size(20);
    for cells in [1000usize, 5000] {
        let design = generate(&GeneratorConfig::named("bench", cells))
            .expect("generator succeeds");
        let (xs, ys) = design.netlist.positions();
        let wl = WirelengthModel::new(&design.netlist);
        group.bench_with_input(BenchmarkId::new("hpwl", cells), &cells, |b, _| {
            b.iter(|| black_box(wl.hpwl(&xs, &ys)))
        });
        group.bench_with_input(BenchmarkId::new("wa_gradient", cells), &cells, |b, _| {
            b.iter(|| black_box(wl.wa_gradient(&xs, &ys, 2.0, None)))
        });
        for bins in [64usize, 128] {
            let density = DensityModel::new(&design, bins, bins, 1.0);
            group.bench_with_input(
                BenchmarkId::new(format!("density_{bins}"), cells),
                &cells,
                |b, _| b.iter(|| black_box(density.evaluate(&xs, &ys))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
