//! Criterion benchmarks of the full differentiable timer on generated
//! designs: exact analysis, smoothed analysis, and the backward gradient
//! sweep — the three per-iteration timing costs of the placement flow.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dtp_liberty::synth::synthetic_pdk;
use dtp_netlist::generate::{generate, GeneratorConfig};
use dtp_rsmt::build_forest;
use dtp_sta::Timer;
use std::hint::black_box;

fn bench_sta(c: &mut Criterion) {
    let lib = synthetic_pdk();
    let mut group = c.benchmark_group("sta");
    group.sample_size(20);
    for cells in [500usize, 2000, 8000] {
        let design = generate(&GeneratorConfig::named("bench", cells))
            .expect("generator succeeds");
        let timer = Timer::new(&design, &lib).expect("timer builds");
        let forest = build_forest(&design.netlist);
        group.bench_with_input(BenchmarkId::new("analyze_exact", cells), &cells, |b, _| {
            b.iter(|| black_box(timer.analyze(&design.netlist, &forest)))
        });
        group.bench_with_input(
            BenchmarkId::new("analyze_smoothed", cells),
            &cells,
            |b, _| b.iter(|| black_box(timer.analyze_smoothed(&design.netlist, &forest))),
        );
        let analysis = timer.analyze_smoothed(&design.netlist, &forest);
        group.bench_with_input(BenchmarkId::new("gradients", cells), &cells, |b, _| {
            b.iter(|| {
                black_box(timer.gradients(&design.netlist, &analysis, &forest, 0.04, 0.0004))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sta, bench_incremental);
criterion_main!(benches);

fn bench_incremental(c: &mut Criterion) {
    use dtp_netlist::{CellId, Point};
    use dtp_sta::AnalysisScratch;
    let lib = synthetic_pdk();
    let mut group = c.benchmark_group("sta_incremental");
    group.sample_size(20);
    let cells = 4000usize;
    let mut design = generate(&GeneratorConfig::named("bench_inc", cells))
        .expect("generator succeeds");
    let timer = Timer::new(&design, &lib).expect("timer builds");
    let mut forest = build_forest(&design.netlist);
    let movable: Vec<CellId> = design.netlist.movable_cells().collect();
    // Sweep the moved-cell fraction: 0.1 % (steady-state placement tail),
    // 1 % (typical timing iteration) and 10 % (near the fallback threshold).
    for permille in [1usize, 10, 100] {
        let n_moved = (movable.len() * permille / 1000).max(1);
        let prev = timer.analyze(&design.netlist, &forest);
        let moved: Vec<CellId> = movable.iter().copied().take(n_moved).collect();
        for &c in &moved {
            let pos = design.netlist.cell(c).pos();
            design.netlist.set_cell_pos(c, Point::new(pos.x + 2.0, pos.y + 1.0));
        }
        forest.update_positions(&design.netlist);
        let label = format!("{:.1}%", permille as f64 / 10.0);
        group.bench_with_input(
            BenchmarkId::new("incremental", &label),
            &n_moved,
            |b, _| {
                b.iter(|| {
                    black_box(timer.analyze_incremental(
                        &design.netlist,
                        &forest,
                        &prev,
                        &moved,
                        false,
                    ))
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("incremental_scratch", &label),
            &n_moved,
            |b, _| {
                let mut scratch = AnalysisScratch::new();
                b.iter(|| {
                    let a = timer.analyze_incremental_into(
                        &design.netlist,
                        &forest,
                        &prev,
                        &moved,
                        false,
                        &mut scratch,
                    );
                    scratch.recycle(black_box(a));
                })
            },
        );
    }
    group.bench_function("full_reanalysis", |b| {
        b.iter(|| black_box(timer.analyze(&design.netlist, &forest)))
    });
    group.finish();
}
