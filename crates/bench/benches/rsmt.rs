//! Criterion benchmarks of Steiner-tree construction (the FLUTE substitute):
//! per-net build at various degrees, whole-forest build, and the cheap
//! branch-update path used between rebuilds (§3.6).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dtp_netlist::generate::{generate, GeneratorConfig};
use dtp_netlist::Point;
use dtp_rsmt::{build_forest, SteinerTree};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn bench_tree_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("rsmt_build");
    let mut rng = StdRng::seed_from_u64(7);
    for deg in [2usize, 3, 4, 8, 16, 48] {
        let pins: Vec<Point> = (0..deg)
            .map(|_| Point::new(rng.gen_range(0.0..500.0), rng.gen_range(0.0..500.0)))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(deg), &deg, |b, _| {
            b.iter(|| black_box(SteinerTree::build(&pins)))
        });
    }
    group.finish();
}

fn bench_forest(c: &mut Criterion) {
    let mut group = c.benchmark_group("rsmt_forest");
    group.sample_size(20);
    for cells in [1000usize, 5000] {
        let design = generate(&GeneratorConfig::named("bench", cells))
            .expect("generator succeeds");
        group.bench_with_input(BenchmarkId::new("build", cells), &cells, |b, _| {
            b.iter(|| black_box(build_forest(&design.netlist)))
        });
        let forest = build_forest(&design.netlist);
        group.bench_with_input(BenchmarkId::new("update", cells), &cells, |b, _| {
            b.iter_batched(
                || forest.clone(),
                |mut f| {
                    f.update_positions(&design.netlist);
                    black_box(f)
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tree_build, bench_forest);
criterion_main!(benches);
