//! Experiment harness for the DAC-2022 differentiable-timing-driven
//! placement reproduction: binaries regenerating each table/figure plus
//! Criterion micro-benchmarks. See `DESIGN.md` §3 for the experiment index.

#![forbid(unsafe_code)]
