fn main() {
    use dtp_netlist::generate::{generate, GeneratorConfig};
    let mut cfg = GeneratorConfig::named("pl", 192);
    cfg.seed = 229;
    let d = generate(&cfg).unwrap();
    println!("region {} util {:.3} rows {}", d.region, d.utilization(), d.rows.len());
    let total_w: f64 = d.netlist.movable_cells().map(|c| d.netlist.class_of(c).width()).sum();
    let cap: f64 = d.rows.iter().map(|r| r.x_max - r.x_min).sum();
    println!("total movable width {total_w:.1}, row capacity {cap:.1}, ratio {:.3}", total_w/cap);
    let mut n_right = 0;
    for c in d.netlist.movable_cells() {
        if d.netlist.cell(c).pos().x > d.region.xh - 6.0 { n_right += 1; }
    }
    println!("cells within 6um of right edge: {n_right}");
}
