//! Quantifies **Figure 4**: when pins move slightly, Steiner points ride
//! along with their tree branches instead of being recomputed. This binary
//! measures the fidelity of the branch-update approximation: for increasing
//! pin perturbations it reports the wirelength error of the updated tree
//! against a freshly rebuilt tree, and the error of the Elmore delays — the
//! quantities the paper trades for the 10× reduction in FLUTE calls (§3.6).
//!
//! Usage: `cargo run -p dtp-bench --release --bin figure4`

use dtp_netlist::Point;
use dtp_rsmt::SteinerTree;
use dtp_sta::ElmoreNet;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(42);
    let degrees = [3usize, 5, 8, 12, 20];
    let perturbations = [0.1f64, 0.5, 1.0, 2.0, 5.0, 10.0];
    println!(
        "{:<8} {:<8} {:>12} {:>12} {:>12}",
        "degree", "move", "WL err %", "delay err %", "rebuild WL"
    );
    println!("{}", "-".repeat(58));
    for &deg in &degrees {
        for &pert in &perturbations {
            let mut wl_err = 0.0;
            let mut delay_err = 0.0;
            let mut wl_base = 0.0;
            const TRIALS: usize = 50;
            for _ in 0..TRIALS {
                let pins: Vec<Point> = (0..deg)
                    .map(|_| Point::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)))
                    .collect();
                let mut tree = SteinerTree::build(&pins);
                let moved: Vec<Point> = pins
                    .iter()
                    .map(|p| {
                        Point::new(
                            p.x + rng.gen_range(-pert..pert),
                            p.y + rng.gen_range(-pert..pert),
                        )
                    })
                    .collect();
                tree.update_pins(&moved); // Fig. 4 branch update
                let rebuilt = SteinerTree::build(&moved);
                let caps = vec![1.0; deg];
                let e_upd = ElmoreNet::forward(&tree, &caps, 0.1, 0.2);
                let e_new = ElmoreNet::forward(&rebuilt, &caps, 0.1, 0.2);
                let wl_u = tree.wirelength();
                let wl_n = rebuilt.wirelength();
                wl_err += (wl_u - wl_n).abs() / wl_n.max(1e-9);
                wl_base += wl_n;
                // Compare worst sink delays (topologies differ, so compare
                // the max over sinks — the timing-relevant scalar).
                let worst = |e: &ElmoreNet, t: &SteinerTree| {
                    (1..t.num_pins())
                        .map(|i| e.delay_at(i))
                        .fold(0.0f64, f64::max)
                };
                let du = worst(&e_upd, &tree);
                let dn = worst(&e_new, &rebuilt);
                delay_err += (du - dn).abs() / dn.max(1e-9);
            }
            println!(
                "{:<8} {:<8} {:>11.3}% {:>11.3}% {:>12.1}",
                deg,
                pert,
                100.0 * wl_err / TRIALS as f64,
                100.0 * delay_err / TRIALS as f64,
                wl_base / TRIALS as f64
            );
        }
    }
    println!(
        "\nSmall moves (≤1 um, the per-iteration scale of global placement) keep both\n\
         errors small, justifying the rebuild-every-10-iterations strategy of §3.6."
    );
}
