//! Steiner-forest benchmark emitting `BENCH_rsmt.json`.
//!
//! Measurements, mirroring `bench_density`'s hand-timed style:
//!
//! 1. **Table prewarm**: class/POWV counts and generation time for the
//!    topology-table registry up to a degree cap (the flow generates
//!    lazily; this quantifies the full worst case per degree).
//! 2. **Wirelength quality**: per-degree table-tree wirelength vs the
//!    legacy construction (exact at 4, Prim at 5–9) over random nets — the
//!    acceptance target is ≥ 1 % average reduction on degrees 5–9.
//! 3. **Maintenance throughput**: dirty-net sweeps at 1 % moved cells on a
//!    generated design, serial legacy rebuilds vs the parallel,
//!    sequence-cached, allocation-free `*_nets_into` sweeps on 4 worker
//!    threads (acceptance: ≥ 4×), plus per-call heap-allocation counts
//!    from a counting global allocator (`update_nets_into` must be zero in
//!    steady state).
//! 4. **Full-forest build**: legacy vs table-backed construction time.
//!
//! Usage: `cargo run --release -p dtp-bench --bin bench_rsmt [-- cells]`
//! (default 4000). `--smoke` runs a tiny configuration for CI.

use dtp_netlist::generate::{generate, GeneratorConfig};
use dtp_netlist::{CellId, NetId, Point};
use dtp_rsmt::{
    build_forest, build_forest_with, build_tree_with, prewarm, ForestScratch, SteinerTree,
    TableConfig,
};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

mod alloc_counter {
    //! Counting wrapper around the system allocator: `allocs()` reads the
    //! total number of `alloc`/`realloc` calls process-wide.
    #![allow(unsafe_code)]

    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    static ALLOCS: AtomicU64 = AtomicU64::new(0);

    pub struct Counting;

    // SAFETY: defers to `System` for every operation; only adds a counter.
    unsafe impl GlobalAlloc for Counting {
        unsafe fn alloc(&self, l: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            System.alloc(l)
        }
        unsafe fn dealloc(&self, p: *mut u8, l: Layout) {
            System.dealloc(p, l)
        }
        unsafe fn realloc(&self, p: *mut u8, l: Layout, n: usize) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            System.realloc(p, l, n)
        }
    }

    #[global_allocator]
    static COUNTER: Counting = Counting;

    pub fn allocs() -> u64 {
        ALLOCS.load(Ordering::Relaxed)
    }
}

/// Mean nanoseconds per call of `f` (warmup + ~0.5 s of repetitions).
fn time_ns(mut f: impl FnMut()) -> f64 {
    for _ in 0..2 {
        f();
    }
    let probe = Instant::now();
    f();
    let once = probe.elapsed().as_secs_f64();
    let reps = ((0.5 / once.max(1e-6)) as usize).clamp(5, 200);
    let t0 = Instant::now();
    for _ in 0..reps {
        f();
    }
    t0.elapsed().as_secs_f64() * 1e9 / reps as f64
}

/// Heap allocations per call of `f`, averaged over `reps` post-warmup calls.
fn allocs_per_call(warmup: u64, reps: u64, mut f: impl FnMut()) -> f64 {
    for _ in 0..warmup {
        f();
    }
    let before = alloc_counter::allocs();
    for _ in 0..reps {
        f();
    }
    (alloc_counter::allocs() - before) as f64 / reps as f64
}

/// Deterministic splitmix64.
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// `n` pseudo-random pins in a 100×100 window, keyed by `seed`.
fn random_pins(n: usize, seed: u64) -> Vec<Point> {
    (0..n)
        .map(|i| {
            let a = mix(seed.wrapping_mul(0x10001).wrapping_add(i as u64));
            let b = mix(a);
            Point::new((a % 100_000) as f64 / 1000.0, (b % 100_000) as f64 / 1000.0)
        })
        .collect()
}

fn main() {
    // Pin the worker pool width before its lazy initialization so the
    // maintenance numbers are comparable across machines.
    if std::env::var("RAYON_NUM_THREADS").is_err() {
        std::env::set_var("RAYON_NUM_THREADS", "4");
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let cells: usize = args
        .iter()
        .find_map(|a| a.parse().ok())
        .unwrap_or(if smoke { 800 } else { 4000 });

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"design_cells\": {cells},");
    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let _ = writeln!(json, "  \"host_threads\": {host_threads},");
    let _ = writeln!(json, "  \"threads\": {},", rayon::current_num_threads());

    // --- 1. Table prewarm -------------------------------------------------
    let prewarm_degree = if smoke { 5 } else { 8 };
    let t0 = Instant::now();
    let (classes, powvs) = prewarm(prewarm_degree);
    let prewarm_s = t0.elapsed().as_secs_f64();
    let _ = writeln!(
        json,
        "  \"prewarm\": {{\"max_degree\": {prewarm_degree}, \"classes\": {classes}, \
         \"powvs\": {powvs}, \"seconds\": {prewarm_s:.3}}},"
    );
    println!("prewarm(≤{prewarm_degree}): {classes} classes, {powvs} POWVs in {prewarm_s:.3}s");

    // --- 2. Wirelength quality per degree ---------------------------------
    let nets_per_degree = if smoke { 100 } else { 600 };
    let cfg = TableConfig::default();
    let _ = writeln!(json, "  \"wl_quality\": {{");
    println!("wirelength vs legacy ({nets_per_degree} random nets/degree):");
    let mut sum_legacy_59 = 0.0;
    let mut sum_table_59 = 0.0;
    for degree in 4..=9usize {
        let mut legacy_wl = 0.0;
        let mut table_wl = 0.0;
        for k in 0..nets_per_degree {
            let pins = random_pins(degree, (degree * 10_000 + k) as u64);
            legacy_wl += SteinerTree::build(&pins).wirelength();
            table_wl += build_tree_with(&pins, cfg).wirelength();
        }
        assert!(
            table_wl <= legacy_wl + 1e-6,
            "degree {degree}: table trees longer than legacy ({table_wl} > {legacy_wl})"
        );
        if degree >= 5 {
            sum_legacy_59 += legacy_wl;
            sum_table_59 += table_wl;
        }
        let reduction = (1.0 - table_wl / legacy_wl) * 100.0;
        let _ = writeln!(
            json,
            "    \"degree_{degree}\": {{\"legacy_wl\": {legacy_wl:.1}, \
             \"table_wl\": {table_wl:.1}, \"reduction_pct\": {reduction:.3}}},"
        );
        println!("  deg {degree}: legacy {legacy_wl:>10.1} | table {table_wl:>10.1} | -{reduction:.2}%");
    }
    let mean_reduction = (1.0 - sum_table_59 / sum_legacy_59) * 100.0;
    let _ = writeln!(json, "    \"mean_reduction_5to9_pct\": {mean_reduction:.3}");
    let _ = writeln!(json, "  }},");
    println!("  degrees 5-9 combined: -{mean_reduction:.2}% vs Prim");

    // --- 3. Maintenance throughput at 1 % moved cells ---------------------
    let design = generate(&GeneratorConfig::named("bench_rsmt", cells)).unwrap();
    let mut nl = design.netlist;
    let movable: Vec<CellId> = nl.movable_cells().collect();
    let moved_count = (movable.len() / 100).max(1);
    // A deterministic 1 % sample spread across the design.
    let moved: Vec<CellId> = (0..moved_count)
        .map(|k| movable[(mix(k as u64) as usize) % movable.len()])
        .collect();
    let base: Vec<Point> = moved.iter().map(|&c| nl.cell(c).pos()).collect();

    let mut legacy = build_forest(&nl);
    let mut tables = build_forest_with(&nl, cfg);
    let dirty: Vec<NetId> = {
        let mut seen = vec![false; nl.num_nets()];
        let mut v = Vec::new();
        for &c in &moved {
            for &p in nl.cell(c).pins() {
                if let Some(net) = nl.pin(p).net() {
                    if legacy.tree(net).is_some() && !seen[net.index()] {
                        seen[net.index()] = true;
                        v.push(net);
                    }
                }
            }
        }
        v
    };
    println!(
        "maintenance: {} moved cells (1%), {} dirty nets, {} threads",
        moved.len(),
        dirty.len(),
        rayon::current_num_threads()
    );

    // Bounded deterministic drift: cells cycle through 8 offsets so repeated
    // timing calls see realistic small moves without wandering off-chip.
    let mut round = 0u64;
    let mut drift = |nl: &mut dtp_netlist::Netlist| {
        round += 1;
        for (k, &c) in moved.iter().enumerate() {
            let a = mix(round % 8 + 17 * k as u64);
            let dx = (a % 1000) as f64 / 500.0 - 1.0;
            let dy = ((a >> 10) % 1000) as f64 / 500.0 - 1.0;
            nl.set_cell_pos(c, base[k] + Point::new(dx, dy));
        }
    };

    // Topology sweeps: serial legacy rebuilds (the pre-table behaviour) vs
    // the parallel table sweeps, same drift pattern inside both closures.
    let serial_rebuild_ns = time_ns(|| {
        drift(&mut nl);
        legacy.rebuild_nets(&nl, &dirty);
        black_box(legacy.tree(dirty[0]).map(SteinerTree::wirelength));
    });
    let mut scratch = ForestScratch::new();
    let parallel_rebuild_ns = time_ns(|| {
        drift(&mut nl);
        tables.rebuild_nets_into(&nl, &dirty, &mut scratch);
        black_box(tables.tree(dirty[0]).map(SteinerTree::wirelength));
    });
    let rebuild_speedup = serial_rebuild_ns / parallel_rebuild_ns;

    // Geometry sweeps over the dirty set (small: both run inline) and over
    // every signal net (large: the parallel path engages).
    let serial_update_ns = time_ns(|| {
        drift(&mut nl);
        legacy.update_nets(&nl, &dirty);
        black_box(legacy.tree(dirty[0]).map(SteinerTree::wirelength));
    });
    let parallel_update_ns = time_ns(|| {
        drift(&mut nl);
        tables.update_nets_into(&nl, &dirty, &mut scratch);
        black_box(tables.tree(dirty[0]).map(SteinerTree::wirelength));
    });
    let update_speedup = serial_update_ns / parallel_update_ns;
    let all_nets: Vec<NetId> = nl
        .net_ids()
        .filter(|&n| legacy.tree(n).is_some())
        .collect();
    let serial_update_all_ns = time_ns(|| {
        drift(&mut nl);
        legacy.update_nets(&nl, &all_nets);
        black_box(legacy.tree(all_nets[0]).map(SteinerTree::wirelength));
    });
    let parallel_update_all_ns = time_ns(|| {
        drift(&mut nl);
        tables.update_nets_into(&nl, &all_nets, &mut scratch);
        black_box(tables.tree(all_nets[0]).map(SteinerTree::wirelength));
    });
    let update_all_speedup = serial_update_all_ns / parallel_update_all_ns;

    let stats = tables.stats();
    let hit_rate = stats.seq_hits as f64 / (stats.seq_hits + stats.seq_rebuilds).max(1) as f64;

    // Steady-state allocation counts. 16 warmup rounds visit every offset of
    // the drift cycle, so all table classes and scratch capacities exist
    // before counting starts.
    let update_allocs = allocs_per_call(16, 10, || {
        drift(&mut nl);
        tables.update_nets_into(&nl, &dirty, &mut scratch);
    });
    let rebuild_allocs = allocs_per_call(16, 10, || {
        drift(&mut nl);
        tables.rebuild_nets_into(&nl, &dirty, &mut scratch);
    });
    assert_eq!(
        update_allocs, 0.0,
        "update_nets_into must be allocation-free in steady state"
    );
    assert_eq!(
        rebuild_allocs, 0.0,
        "rebuild_nets_into must be allocation-free in steady state"
    );

    let _ = writeln!(
        json,
        "  \"maintenance\": {{\"moved_cells\": {}, \"dirty_nets\": {}, \
         \"serial_legacy_rebuild_ns\": {serial_rebuild_ns:.0}, \
         \"parallel_tables_rebuild_ns\": {parallel_rebuild_ns:.0}, \
         \"rebuild_speedup\": {rebuild_speedup:.2}, \
         \"serial_update_ns\": {serial_update_ns:.0}, \
         \"parallel_update_ns\": {parallel_update_ns:.0}, \
         \"update_speedup\": {update_speedup:.2}, \
         \"all_nets\": {}, \
         \"serial_update_all_ns\": {serial_update_all_ns:.0}, \
         \"parallel_update_all_ns\": {parallel_update_all_ns:.0}, \
         \"update_all_speedup\": {update_all_speedup:.2}, \
         \"seq_cache_hit_rate\": {hit_rate:.4}, \
         \"update_into_steady_state_allocs\": {update_allocs:.1}, \
         \"rebuild_into_steady_state_allocs\": {rebuild_allocs:.1}}},",
        moved.len(),
        dirty.len(),
        all_nets.len()
    );
    println!(
        "  rebuild sweep: serial legacy {serial_rebuild_ns:>10.0} ns | parallel tables \
         {parallel_rebuild_ns:>10.0} ns ({rebuild_speedup:.1}x)"
    );
    println!(
        "  update sweep:  serial {serial_update_ns:>10.0} ns | parallel \
         {parallel_update_ns:>10.0} ns ({update_speedup:.1}x)"
    );
    println!(
        "  update all {} nets: serial {serial_update_all_ns:>10.0} ns | parallel \
         {parallel_update_all_ns:>10.0} ns ({update_all_speedup:.1}x)",
        all_nets.len()
    );
    println!("  seq-cache hit rate {:.1}% | allocs/sweep: update {update_allocs:.0}, rebuild {rebuild_allocs:.0}", hit_rate * 100.0);

    // --- 4. Full-forest build ---------------------------------------------
    let legacy_build_ns = time_ns(|| {
        black_box(build_forest(&nl).total_wirelength());
    });
    let tables_build_ns = time_ns(|| {
        black_box(build_forest_with(&nl, cfg).total_wirelength());
    });
    let _ = writeln!(
        json,
        "  \"forest_build\": {{\"legacy_ns\": {legacy_build_ns:.0}, \
         \"tables_ns\": {tables_build_ns:.0}}}"
    );
    let _ = writeln!(json, "}}");
    std::fs::write("BENCH_rsmt.json", &json).expect("write BENCH_rsmt.json");
    println!(
        "forest build: legacy {legacy_build_ns:.0} ns | tables {tables_build_ns:.0} ns"
    );
    println!("wrote BENCH_rsmt.json");
}
