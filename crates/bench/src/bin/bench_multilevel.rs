//! Multi-level vs flat placement benchmark emitting `BENCH_multilevel.json`.
//!
//! For each design size, runs the differentiable-timing flow end to end
//! (GP → legalization → detailed placement → final STA) twice on the same
//! `scale_design` instance — once with the multi-level (clustered) V-cycle
//! and once flat — both to overflow convergence under a generous iteration
//! cap, and records per run:
//!
//! - end-to-end seconds and per-level iteration counts
//!   ([`dtp_core::FlowResult::level_iterations`], coarsest first);
//! - final HPWL / WNS / TNS and the multilevel-vs-flat deltas;
//! - a phase-bucket breakdown (gradient loop / timing / V-cycle / post-GP)
//!   so the comparison explains *where* the arms differ;
//! - process peak RSS (`VmHWM`).
//!
//! The multilevel arm runs FIRST within each size: `VmHWM` is monotone over
//! the process lifetime, so the arm whose peak we want to bound must set it
//! before the (larger, flat) arm raises the high-water mark.
//!
//! Targets (recorded, asserted only where CI can express them): ≥2×
//! end-to-end at the largest size with ≤1% HPWL and ≤2% |TNS| regression.
//! See EXPERIMENTS.md for the measured outcome: the V-cycle's loop savings
//! are reinvested in a longer differentiable-timing tail (better WNS/TNS at
//! roughly flat runtime) rather than banked as wall clock.
//!
//! Usage: `cargo run --release -p dtp-bench --bin bench_multilevel
//! [-- --smoke] [-- --wl] [-- --cells N] [-- --levels N]`
//! `--smoke` runs 100k cells, 2 levels, 2 threads for CI; `--wl` compares
//! the arms in pure-wirelength mode (isolates warm-start placement quality
//! from the timing tradeoff); `--cells`/`--levels` restrict a full run to
//! one size / override the V-cycle depth for targeted experiments.

use dtp_core::{run_flow_observed, FlowConfig, FlowMode, FlowResult, Observer};
use dtp_liberty::synth::synthetic_pdk;
use dtp_netlist::generate::scale_design;
use dtp_netlist::Design;
use dtp_obs::Phase;
use std::fmt::Write as _;
use std::time::Instant;

/// Process peak resident set (`VmHWM`) in kB; 0 where procfs is unavailable.
fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines().find(|l| l.starts_with("VmHWM:")).and_then(|l| {
                l.split_whitespace().nth(1).and_then(|v| v.parse().ok())
            })
        })
        .unwrap_or(0)
}

/// One arm of the comparison: flow result + wall clock + peak RSS + where the
/// time went, bucketed into the groups that differ between the arms.
struct Arm {
    result: FlowResult,
    total_s: f64,
    peak_rss_kb: u64,
    /// Seconds in WL/density gradients + Nesterov (the per-iteration core).
    loop_s: f64,
    /// Seconds in timing machinery inside the loop (forest + STA fwd/bwd).
    timing_s: f64,
    /// Seconds in coarsening + interpolation (multilevel arm only).
    vcycle_s: f64,
    /// Seconds in post-GP fixed work (RUDY, legalize, detail, final STA).
    post_s: f64,
    rudy_s: f64,
    legalize_s: f64,
    detail_s: f64,
    final_sta_s: f64,
}

fn run_arm(d: &Design, lib: &dtp_liberty::Library, mode: FlowMode, config: &FlowConfig) -> Arm {
    let mut obs = Observer::new(true);
    let t0 = Instant::now();
    let result = run_flow_observed(d, lib, mode, config, &mut obs).expect("flow runs");
    let total_s = t0.elapsed().as_secs_f64();
    let s = |p: Phase| obs.spans().seconds(p);
    Arm {
        result,
        total_s,
        peak_rss_kb: peak_rss_kb(),
        loop_s: s(Phase::WirelengthGrad) + s(Phase::DensityGrad) + s(Phase::NesterovStep),
        timing_s: s(Phase::SteinerBuild)
            + s(Phase::SteinerUpdate)
            + s(Phase::StaForward)
            + s(Phase::StaBackward),
        vcycle_s: s(Phase::Coarsen) + s(Phase::Interpolate),
        post_s: s(Phase::RudyUpdate) + s(Phase::Legalize) + s(Phase::DetailPlace) + s(Phase::FinalSta),
        rudy_s: s(Phase::RudyUpdate),
        legalize_s: s(Phase::Legalize),
        detail_s: s(Phase::DetailPlace),
        final_sta_s: s(Phase::FinalSta),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    // Diagnostic mode: compare the arms on pure wirelength (no timing),
    // isolating warm-start placement quality from the timing tradeoff.
    let mode = if args.iter().any(|a| a == "--wl") {
        FlowMode::Wirelength
    } else {
        FlowMode::differentiable()
    };
    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    // Full mode uses up to 4 workers but never oversubscribes the host.
    let (mut sizes, threads, mut levels): (Vec<usize>, usize, usize) = if smoke {
        (vec![100_000], 2, 2)
    } else {
        (vec![100_000, 500_000, 1_000_000], 4.min(host_threads), 2)
    };
    // Targeted experiments: restrict to one size / override the V-cycle depth.
    if let Some(i) = args.iter().position(|a| a == "--cells") {
        sizes = vec![args[i + 1].parse().expect("--cells takes a number")];
    }
    if let Some(i) = args.iter().position(|a| a == "--levels") {
        levels = args[i + 1].parse().expect("--levels takes a number");
    }
    let lib = synthetic_pdk();
    // Both arms run to overflow convergence: the cap only guards divergence.
    let base = FlowConfig {
        max_iters: if smoke { 200 } else { 400 },
        trace_timing_every: 0,
        bins: 128,
        detail_passes: 1,
        observe: true,
        threads,
        ..FlowConfig::default()
    };
    let ml_config = FlowConfig { multilevel: true, cluster_ratio: 4.0, levels, ..base };

    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"schema\": \"dtp-bench-multilevel-v1\",");
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    let _ = writeln!(out, "  \"host_threads\": {host_threads},");
    let _ = writeln!(out, "  \"threads\": {threads},");
    let _ = writeln!(out, "  \"levels\": {levels},");
    let _ = writeln!(out, "  \"cluster_ratio\": {},", ml_config.cluster_ratio);
    let _ = writeln!(out, "  \"max_iters\": {},", base.max_iters);
    let _ = writeln!(out, "  \"runs\": [");

    let mut run_lines = Vec::new();
    let mut cmp_lines = Vec::new();
    for &cells in &sizes {
        let t0 = Instant::now();
        let d = scale_design(cells, 1).expect("generator succeeds");
        println!(
            "generated {cells}-cell design in {:.1} s ({} nets, {} pins)",
            t0.elapsed().as_secs_f64(),
            d.netlist.num_nets(),
            d.netlist.num_pins()
        );
        // Multilevel first: VmHWM is process-monotone, so this arm's peak
        // must be recorded before the flat arm raises the high-water mark.
        let mut arms = Vec::new();
        for multilevel in [true, false] {
            let config = if multilevel { &ml_config } else { &base };
            let arm = run_arm(&d, &lib, mode, config);
            let levels_str = arm
                .result
                .level_iterations
                .iter()
                .map(|n| n.to_string())
                .collect::<Vec<_>>()
                .join(", ");
            println!(
                "  {cells} cells {}: {:.1} s | {} iters (per level: [{}]) | hpwl {:.0} | \
                 wns {:.1} | tns {:.1} | rss {} MB",
                if multilevel { "multilevel" } else { "flat      " },
                arm.total_s,
                arm.result.iterations,
                levels_str,
                arm.result.hpwl,
                arm.result.wns,
                arm.result.tns,
                arm.peak_rss_kb / 1024,
            );
            println!(
                "    breakdown: loop {:.1} s | timing {:.1} s | vcycle {:.1} s | post-GP {:.1} s \
                 (rudy {:.1} legalize {:.1} detail {:.1} sta {:.1})",
                arm.loop_s,
                arm.timing_s,
                arm.vcycle_s,
                arm.post_s,
                arm.rudy_s,
                arm.legalize_s,
                arm.detail_s,
                arm.final_sta_s,
            );
            run_lines.push(format!(
                "    {{\"cells\": {cells}, \"multilevel\": {multilevel}, \
                 \"total_s\": {:.3}, \"iterations\": {}, \"level_iterations\": [{}], \
                 \"hpwl\": {:.1}, \"wns\": {:.2}, \"tns\": {:.2}, \"peak_rss_kb\": {}, \
                 \"loop_s\": {:.3}, \"timing_s\": {:.3}, \"vcycle_s\": {:.3}, \"post_s\": {:.3}}}",
                arm.total_s,
                arm.result.iterations,
                levels_str,
                arm.result.hpwl,
                arm.result.wns,
                arm.result.tns,
                arm.peak_rss_kb,
                arm.loop_s,
                arm.timing_s,
                arm.vcycle_s,
                arm.post_s,
            ));
            arms.push(arm);
        }
        let (ml, flat) = (&arms[0], &arms[1]);
        let speedup = flat.total_s / ml.total_s.max(1e-9);
        let hpwl_delta = 100.0 * (ml.result.hpwl - flat.result.hpwl) / flat.result.hpwl.abs();
        let tns_delta = if flat.result.tns.abs() > 0.0 {
            100.0 * (ml.result.tns.abs() - flat.result.tns.abs()) / flat.result.tns.abs()
        } else {
            0.0
        };
        let wns_delta = if flat.result.wns.abs() > 0.0 {
            100.0 * (ml.result.wns.abs() - flat.result.wns.abs()) / flat.result.wns.abs()
        } else {
            0.0
        };
        println!(
            "  {cells} cells: speedup {speedup:.2}x | hpwl {hpwl_delta:+.2}% | \
             |wns| {wns_delta:+.2}% | |tns| {tns_delta:+.2}%"
        );
        cmp_lines.push(format!(
            "    {{\"cells\": {cells}, \"speedup\": {speedup:.3}, \
             \"hpwl_delta_pct\": {hpwl_delta:.3}, \"wns_delta_pct\": {wns_delta:.3}, \
             \"tns_delta_pct\": {tns_delta:.3}}}"
        ));
    }
    let _ = writeln!(out, "{}", run_lines.join(",\n"));
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"comparisons\": [");
    let _ = writeln!(out, "{}", cmp_lines.join(",\n"));
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");

    std::fs::write("BENCH_multilevel.json", &out).expect("write BENCH_multilevel.json");
    println!("wrote BENCH_multilevel.json");
}
