//! Regenerates **Figure 8**: HPWL, density overflow, WNS and TNS along the
//! placement iterations of benchmark superblue4 (proxy), for DREAMPlace
//! (blue curve) and the differentiable-timing-driven placer (orange curve).
//!
//! Usage:
//! `cargo run -p dtp-bench --release --bin figure8 [-- scale_denom]`
//!
//! Writes `results/figure8_<mode>.csv` with one row per iteration and prints
//! a coarse textual rendering of the four subplots.

use dtp_core::{run_flow, FlowConfig, FlowMode, TracePoint};
use dtp_liberty::synth::synthetic_pdk;
use dtp_netlist::generate::superblue_proxy;
use std::fmt::Write as _;

fn main() {
    let scale_denom: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(150.0);
    let design = superblue_proxy("sb4", 1.0 / scale_denom)
        .expect("sb4 is a built-in benchmark");
    let lib = synthetic_pdk();
    let cfg = FlowConfig { trace_timing_every: 1, ..FlowConfig::default() };

    std::fs::create_dir_all("results").ok();
    let mut traces = Vec::new();
    for mode in [FlowMode::Wirelength, FlowMode::differentiable()] {
        let r = run_flow(&design, &lib, mode, &cfg).expect("flow succeeds");
        let mut csv = String::from("iter,hpwl_um,overflow,wns_ps,tns_ps\n");
        for p in &r.trace {
            let _ = writeln!(csv, "{},{:.2},{:.5},{:.2},{:.2}", p.iter, p.hpwl, p.overflow, p.wns, p.tns);
        }
        let path = format!("results/figure8_{}.csv", r.mode.to_lowercase());
        std::fs::write(&path, &csv).ok();
        println!("{}: {} trace points -> {path}", r.mode, r.trace.len());
        traces.push((r.mode, r.trace));
    }

    // Textual sparkline rendering of the four subplots.
    for (title, f) in [
        ("HPWL", get_hpwl as fn(&TracePoint) -> f64),
        ("Overflow", get_overflow),
        ("WNS", get_wns),
        ("TNS", get_tns),
    ] {
        println!("\n== {title} vs iteration ==");
        for (mode, trace) in &traces {
            let series: Vec<f64> = trace.iter().map(f).filter(|v| v.is_finite()).collect();
            println!("{:<13} {}", mode, sparkline(&series, 60));
            if let (Some(first), Some(last)) = (series.first(), series.last()) {
                println!("{:<13} start {:.1}  end {:.1}", "", first, last);
            }
        }
    }
}

fn get_hpwl(p: &TracePoint) -> f64 {
    p.hpwl
}
fn get_overflow(p: &TracePoint) -> f64 {
    p.overflow
}
fn get_wns(p: &TracePoint) -> f64 {
    p.wns
}
fn get_tns(p: &TracePoint) -> f64 {
    p.tns
}

/// Renders a unicode sparkline with `width` buckets.
fn sparkline(series: &[f64], width: usize) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if series.is_empty() {
        return String::from("(no data)");
    }
    let lo = series.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = series.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(1e-12);
    let mut out = String::with_capacity(width * 3);
    for b in 0..width.min(series.len()) {
        let idx = b * series.len() / width.min(series.len());
        let v = series[idx.min(series.len() - 1)];
        let t = ((v - lo) / span * 7.0).round() as usize;
        out.push(BARS[t.min(7)]);
    }
    out
}
