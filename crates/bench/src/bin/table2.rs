//! Regenerates **Table 2**: benchmark statistics of the (proxy) superblue
//! suite, next to the paper's reference numbers.
//!
//! Usage: `cargo run -p dtp-bench --release --bin table2 [-- scale_denom]`
//! where `scale_denom` is the down-scaling denominator (default 150, i.e.
//! 1/150 of the contest cell counts).

use dtp_netlist::generate::{superblue_proxy, DEFAULT_PROXY_SCALE, SUPERBLUE_TABLE2};
use dtp_netlist::NetlistStats;

fn main() {
    let scale = std::env::args()
        .nth(1)
        .and_then(|s| s.parse::<f64>().ok())
        .map(|d| 1.0 / d)
        .unwrap_or(DEFAULT_PROXY_SCALE);
    println!("Table 2: ICCAD-2015 benchmark statistics (proxies at scale {:.5})", scale);
    println!(
        "{:<12} {:>9} {:>9} {:>9} | {:>9} {:>9} {:>9} {:>6}",
        "Benchmark", "#Cells*", "#Nets*", "#Pins*", "#Cells", "#Nets", "#Pins", "#Regs"
    );
    println!("{}", "-".repeat(88));
    for &(name, cells, nets, pins) in SUPERBLUE_TABLE2 {
        let d = superblue_proxy(name, scale).expect("built-in benchmark names are valid");
        let s = NetlistStats::of(&d.netlist);
        println!(
            "{:<12} {:>9} {:>9} {:>9} | {:>9} {:>9} {:>9} {:>6}",
            name, cells, nets, pins, s.num_cells, s.num_nets, s.num_pins, s.num_registers
        );
    }
    println!("* = paper-reported contest sizes; right half = generated proxies");
}
