//! Thread-scaling benchmark emitting `BENCH_scale.json`.
//!
//! Sweeps `scale_design` instances across pool widths, running the
//! wirelength-driven flow end to end (GP → legalization → detailed
//! placement → final STA) under a fixed iteration cap and recording, per
//! `(cells, threads)` run:
//!
//! - per-phase seconds from the dtp-obs span table;
//! - speedup vs the 1-thread run of the same size;
//! - process peak RSS (`VmHWM`) and heap-allocation counts.
//!
//! Two proofs ride along:
//!
//! 1. **Determinism**: final positions are bit-for-bit identical across all
//!    pool widths (the kernels reduce in fixed chunk order).
//! 2. **Zero-alloc steady state**: at the largest swept size, the per-
//!    iteration gradient + Nesterov loop performs zero heap allocations
//!    after warmup, measured with a counting global allocator.
//!
//! The ≥3× speedup assertion for the previously-serial phases (Nesterov
//! step + legalization) only arms on hosts with ≥4 available cores — on
//! smaller machines the sweep still runs and the JSON records the honest
//! (flat) speedups.
//!
//! Usage: `cargo run --release -p dtp-bench --bin bench_scale [-- --smoke]`
//! `--smoke` runs 100k cells × {1,2} threads with a lower cap for CI.

use dtp_core::{run_flow_observed, FlowConfig, FlowMode, Observer};
use dtp_liberty::synth::synthetic_pdk;
use dtp_netlist::generate::scale_design;
use dtp_netlist::Design;
use dtp_obs::Phase;
use dtp_place::{
    DensityModel, DensityResult, DensityScratch, NesterovOptimizer, WirelengthModel,
    WirelengthScratch,
};
use std::fmt::Write as _;
use std::time::Instant;

mod alloc_counter {
    //! Counting wrapper around the system allocator: `allocs()` reads the
    //! total number of `alloc`/`realloc` calls process-wide.
    #![allow(unsafe_code)]

    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    static ALLOCS: AtomicU64 = AtomicU64::new(0);

    pub struct Counting;

    // SAFETY: defers to `System` for every operation; only adds a counter.
    unsafe impl GlobalAlloc for Counting {
        unsafe fn alloc(&self, l: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            System.alloc(l)
        }
        unsafe fn dealloc(&self, p: *mut u8, l: Layout) {
            System.dealloc(p, l)
        }
        unsafe fn realloc(&self, p: *mut u8, l: Layout, n: usize) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            System.realloc(p, l, n)
        }
    }

    #[global_allocator]
    static COUNTER: Counting = Counting;

    pub fn allocs() -> u64 {
        ALLOCS.load(Ordering::Relaxed)
    }
}

/// Process peak resident set (`VmHWM`) in kB; 0 where procfs is unavailable.
fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines().find(|l| l.starts_with("VmHWM:")).and_then(|l| {
                l.split_whitespace().nth(1).and_then(|v| v.parse().ok())
            })
        })
        .unwrap_or(0)
}

/// One `(cells, threads)` flow run: QoR, per-phase seconds, wall clock,
/// allocation count and the final positions for the determinism check.
struct Run {
    cells: usize,
    threads: usize,
    iterations: usize,
    hpwl: f64,
    total_s: f64,
    phase_s: [f64; Phase::COUNT],
    allocs: u64,
    peak_rss_kb: u64,
    xs: Vec<f64>,
    ys: Vec<f64>,
}

fn flow_config(threads: usize, max_iters: usize) -> FlowConfig {
    FlowConfig {
        max_iters,
        trace_timing_every: 0,
        bins: 128,
        detail_passes: 1,
        observe: true,
        threads,
        ..FlowConfig::default()
    }
}

fn run_once(
    d: &Design,
    lib: &dtp_liberty::Library,
    target_cells: usize,
    threads: usize,
    max_iters: usize,
) -> Run {
    let mut obs = Observer::new(true);
    let a0 = alloc_counter::allocs();
    let t0 = Instant::now();
    let r = run_flow_observed(d, lib, FlowMode::Wirelength, &flow_config(threads, max_iters), &mut obs)
        .expect("flow runs");
    let total_s = t0.elapsed().as_secs_f64();
    let allocs = alloc_counter::allocs() - a0;
    let mut phase_s = [0.0f64; Phase::COUNT];
    for (k, &p) in Phase::ALL.iter().enumerate() {
        phase_s[k] = obs.spans().seconds(p);
    }
    Run {
        cells: target_cells,
        threads,
        iterations: r.iterations,
        hpwl: r.hpwl,
        total_s,
        phase_s,
        allocs,
        peak_rss_kb: peak_rss_kb(),
        xs: r.xs,
        ys: r.ys,
    }
}

/// Allocation behaviour of the gradient + Nesterov loop at scale.
///
/// Returns `(moving, pinned)`: heap allocations per iteration while the
/// placement is still moving, and per iteration at a pinned operating point
/// after warmup. Scratch buffers are pre-sized to their worst case up front
/// ([`DensityModel::presize_scratch`] — the same call the flow makes at
/// start), so BOTH numbers must be exactly zero: no kernel may allocate once
/// the flow has handed out its scratch, no matter how cells migrate between
/// bins.
fn steady_state_allocs(d: &Design, warmup: usize, measured: usize) -> (f64, f64) {
    let wl = WirelengthModel::new(&d.netlist);
    let density = DensityModel::with_options(d, 128, 128, 1.0, true);
    let bin_w = d.region.width() / 128.0;
    let mut opt = NesterovOptimizer::new(d, bin_w);
    let n = d.netlist.num_cells();
    let precond = vec![1.0f64; n];
    let mut wls = WirelengthScratch::new();
    let mut ds = DensityScratch::new();
    let mut dres = DensityResult::default();
    density.presize_scratch(&mut ds);
    let (mut gx, mut gy) = (Vec::new(), Vec::new());
    let (mut vx, mut vy) = (Vec::new(), Vec::new());
    let mut iterate = |_: usize| {
        {
            let (a, b) = opt.positions();
            vx.clear();
            vx.extend_from_slice(a);
            vy.clear();
            vy.extend_from_slice(b);
        }
        wl.wa_gradient_into(&vx, &vy, 5.0, None, &mut wls, &mut gx, &mut gy);
        density.evaluate_into(&vx, &vy, &mut ds, &mut dres);
        for i in 0..n {
            gx[i] += 0.5 * dres.grad_x[i];
            gy[i] += 0.5 * dres.grad_y[i];
        }
        opt.step(&gx, &gy, &precond);
    };
    for k in 0..warmup {
        iterate(k);
    }
    let before = alloc_counter::allocs();
    for k in 0..measured {
        iterate(k);
    }
    let moving = (alloc_counter::allocs() - before) as f64 / measured as f64;
    // Pinned operating point: same kernels, same work, positions held.
    let before = alloc_counter::allocs();
    for _ in 0..measured {
        wl.wa_gradient_into(&vx, &vy, 5.0, None, &mut wls, &mut gx, &mut gy);
        density.evaluate_into(&vx, &vy, &mut ds, &mut dres);
        for i in 0..n {
            gx[i] += 0.5 * dres.grad_x[i];
            gy[i] += 0.5 * dres.grad_y[i];
        }
        opt.step(&gx, &gy, &precond);
    }
    let pinned = (alloc_counter::allocs() - before) as f64 / measured as f64;
    (moving, pinned)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let (sizes, widths, max_iters): (&[usize], &[usize], usize) = if smoke {
        (&[100_000], &[1, 2], 20)
    } else {
        (&[100_000, 500_000, 1_000_000], &[1, 2, 4], 40)
    };
    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let lib = synthetic_pdk();

    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"schema\": \"dtp-bench-scale-v1\",");
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    let _ = writeln!(out, "  \"host_threads\": {host_threads},");
    let _ = writeln!(
        out,
        "  \"pool_widths\": [{}],",
        widths.iter().map(|w| w.to_string()).collect::<Vec<_>>().join(", ")
    );
    let _ = writeln!(out, "  \"max_iters\": {max_iters},");
    let _ = writeln!(out, "  \"runs\": [");

    let mut all: Vec<Run> = Vec::new();
    for (si, &cells) in sizes.iter().enumerate() {
        let t0 = Instant::now();
        let d = scale_design(cells, 1).expect("generator succeeds");
        println!(
            "generated {cells}-cell design in {:.1} s ({} nets, {} pins)",
            t0.elapsed().as_secs_f64(),
            d.netlist.num_nets(),
            d.netlist.num_pins()
        );
        for (wi, &threads) in widths.iter().enumerate() {
            let run = run_once(&d, &lib, cells, threads, max_iters);
            println!(
                "  {cells} cells × {threads} threads: total {:.1} s | wl {:.1} s | density {:.1} s \
                 | nesterov {:.1} s | legalize {:.1} s | rss {} MB",
                run.total_s,
                run.phase_s[Phase::WirelengthGrad as usize],
                run.phase_s[Phase::DensityGrad as usize],
                run.phase_s[Phase::NesterovStep as usize],
                run.phase_s[Phase::Legalize as usize],
                run.peak_rss_kb / 1024,
            );
            let last = si == sizes.len() - 1 && wi == widths.len() - 1;
            let mut phases = String::new();
            for (k, &p) in Phase::ALL.iter().enumerate() {
                let sep = if k + 1 < Phase::COUNT { ", " } else { "" };
                let _ = write!(phases, "\"{}\": {:.4}{sep}", p.name(), run.phase_s[k]);
            }
            let _ = writeln!(
                out,
                "    {{\"cells\": {}, \"threads\": {}, \"iterations\": {}, \
                 \"total_s\": {:.3}, \"hpwl\": {:.1}, \"allocs\": {}, \
                 \"peak_rss_kb\": {}, \"phase_s\": {{{phases}}}}}{}",
                run.cells,
                run.threads,
                run.iterations,
                run.total_s,
                run.hpwl,
                run.allocs,
                run.peak_rss_kb,
                if last { "" } else { "," }
            );
            all.push(run);
        }
    }
    let _ = writeln!(out, "  ],");

    // --- determinism: positions must be identical across widths -----------
    for &cells in sizes {
        let runs: Vec<&Run> = all.iter().filter(|r| r.cells == cells).collect();
        let base = runs.first().expect("at least one run per size");
        for r in &runs[1..] {
            assert_eq!(
                base.xs, r.xs,
                "{cells} cells: x positions differ between {} and {} threads",
                base.threads, r.threads
            );
            assert_eq!(
                base.ys, r.ys,
                "{cells} cells: y positions differ between {} and {} threads",
                base.threads, r.threads
            );
            assert_eq!(base.hpwl, r.hpwl);
        }
    }
    println!("determinism: positions bit-identical across all pool widths");
    let _ = writeln!(out, "  \"identical_positions\": true,");

    // --- speedups vs 1 thread ---------------------------------------------
    let _ = writeln!(out, "  \"speedups\": [");
    let mut speed_lines = Vec::new();
    for &cells in sizes {
        let runs: Vec<&Run> = all.iter().filter(|r| r.cells == cells).collect();
        let base = runs.iter().find(|r| r.threads == 1).expect("1-thread run");
        let serial_phases = |r: &Run| {
            r.phase_s[Phase::NesterovStep as usize] + r.phase_s[Phase::Legalize as usize]
        };
        let grad_phases = |r: &Run| {
            r.phase_s[Phase::WirelengthGrad as usize] + r.phase_s[Phase::DensityGrad as usize]
        };
        for r in runs.iter().filter(|r| r.threads > 1) {
            let sp_serial = serial_phases(base) / serial_phases(r).max(1e-9);
            let sp_grad = grad_phases(base) / grad_phases(r).max(1e-9);
            let sp_total = base.total_s / r.total_s.max(1e-9);
            println!(
                "  {cells} cells × {} threads: speedup nesterov+legalize {sp_serial:.2}× | \
                 gradients {sp_grad:.2}× | total {sp_total:.2}×",
                r.threads
            );
            speed_lines.push(format!(
                "    {{\"cells\": {cells}, \"threads\": {}, \
                 \"nesterov_legalize\": {sp_serial:.3}, \"gradients\": {sp_grad:.3}, \
                 \"total\": {sp_total:.3}}}",
                r.threads
            ));
            // The scaling target only arms on hosts that can express it.
            if !smoke && host_threads >= 4 && r.threads == 4 && cells == *sizes.last().unwrap()
            {
                assert!(
                    sp_serial >= 3.0,
                    "nesterov+legalize speedup {sp_serial:.2}× at 4 threads is below the \
                     3× target ({cells} cells)"
                );
            }
        }
    }
    let _ = writeln!(out, "{}", speed_lines.join(",\n"));
    let _ = writeln!(out, "  ],");

    // --- zero-alloc steady state at the largest size ----------------------
    let largest = *sizes.last().unwrap();
    let d = scale_design(largest, 1).expect("generator succeeds");
    let (moving, pinned) = steady_state_allocs(&d, 3, if smoke { 3 } else { 5 });
    println!(
        "steady state at {largest} cells: {pinned:.1} allocs/iter pinned, \
         {moving:.1} allocs/iter while moving (pre-sized scratch)"
    );
    assert_eq!(
        pinned, 0.0,
        "steady-state gradient + Nesterov loop must be allocation-free at {largest} cells"
    );
    assert_eq!(
        moving, 0.0,
        "pre-sized scratch must make the moving loop allocation-free at {largest} cells"
    );
    let _ = writeln!(out, "  \"steady_state_cells\": {largest},");
    let _ = writeln!(out, "  \"steady_state_allocs_per_iter\": {pinned:.1},");
    let _ = writeln!(out, "  \"transient_allocs_per_iter\": {moving:.1}");
    let _ = writeln!(out, "}}");

    std::fs::write("BENCH_scale.json", &out).expect("write BENCH_scale.json");
    println!("wrote BENCH_scale.json");
}
