//! Ablation studies of the design choices called out in `DESIGN.md` §4:
//!
//! 1. LSE smoothing γ (paper: ≈100),
//! 2. Steiner-tree rebuild period (paper: 10),
//! 3. t1/t2 growth schedule (paper: +1 %/iteration starting ≈ iteration 100),
//! 4. objective composition (TNS-only vs WNS-only vs both).
//!
//! Usage: `cargo run -p dtp-bench --release --bin ablation [-- which]`
//! where `which ∈ {gamma, steiner, schedule, objective, all}` (default all).

use dtp_core::{run_flow, DiffTimingConfig, FlowConfig, FlowMode};
use dtp_liberty::synth::synthetic_pdk;
use dtp_netlist::generate::superblue_proxy;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    let design = superblue_proxy("sb18", 1.0 / 300.0).expect("sb18 is built-in");
    let lib = synthetic_pdk();
    let cfg = FlowConfig { trace_timing_every: 0, ..FlowConfig::default() };
    let base = DiffTimingConfig::default();
    let run = |d: DiffTimingConfig| {
        run_flow(&design, &lib, FlowMode::Differentiable(d), &cfg).expect("flow succeeds")
    };

    if which == "gamma" || which == "all" {
        println!("== ablation: LSE smoothing gamma (paper ~100) ==");
        println!("{:<10} {:>10} {:>12} {:>10} {:>8}", "gamma", "WNS", "TNS", "HPWL", "time");
        for gamma in [5.0, 25.0, 100.0, 400.0, 1600.0] {
            let r = run(DiffTimingConfig { gamma, ..base });
            println!("{:<10} {:>10.1} {:>12.1} {:>10.0} {:>7.2}s", gamma, r.wns, r.tns, r.hpwl, r.runtime);
        }
    }
    if which == "steiner" || which == "all" {
        println!("\n== ablation: Steiner rebuild period (paper: 10) ==");
        println!("{:<10} {:>10} {:>12} {:>10} {:>8}", "period", "WNS", "TNS", "HPWL", "time");
        for period in [1usize, 5, 10, 25, 50] {
            let r = run(DiffTimingConfig { steiner_rebuild_period: period, ..base });
            println!("{:<10} {:>10.1} {:>12.1} {:>10.0} {:>7.2}s", period, r.wns, r.tns, r.hpwl, r.runtime);
        }
    }
    if which == "schedule" || which == "all" {
        println!("\n== ablation: t1/t2 schedule (paper: start ~100, +1%/iter) ==");
        println!("{:<16} {:>10} {:>12} {:>10}", "start/growth", "WNS", "TNS", "HPWL");
        for (start, growth) in [(0usize, 1.01), (50, 1.01), (100, 1.0), (100, 1.01), (100, 1.05)] {
            let r = run(DiffTimingConfig { start_iter: start, growth, ..base });
            println!("{:<16} {:>10.1} {:>12.1} {:>10.0}", format!("{start}/{growth}"), r.wns, r.tns, r.hpwl);
        }
    }
    if which == "objective" || which == "all" {
        println!("\n== ablation: objective composition ==");
        println!("{:<16} {:>10} {:>12} {:>10}", "t1/t2", "WNS", "TNS", "HPWL");
        for (label, t1, t2) in [
            ("none (WL only)", 0.0, 0.0),
            ("TNS only", base.t1, 0.0),
            ("WNS only", 0.0, base.t2 * 100.0),
            ("both (paper)", base.t1, base.t2),
        ] {
            let r = run(DiffTimingConfig { t1, t2, ..base });
            println!("{:<16} {:>10.1} {:>12.1} {:>10.0}", label, r.wns, r.tns, r.hpwl);
        }
    }
}
