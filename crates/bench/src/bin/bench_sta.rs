//! Hand-timed STA hot-path benchmark emitting `BENCH_sta.json`.
//!
//! Criterion is a dev-dependency (bench targets only), so this binary times
//! with `std::time::Instant` and writes the JSON by hand. It measures the
//! three per-iteration timing costs of the placement loop — full analysis,
//! incremental analysis at several moved-cell fractions, and the backward
//! gradient sweep — all through the scratch-buffer (`*_into`) entry points
//! the flow actually uses, and reports the incremental-vs-full speedup.
//!
//! Usage: `cargo run --release -p dtp-bench --bin bench_sta [-- num_cells]`
//! (default 4000; output lands in the current directory).

use dtp_liberty::synth::synthetic_pdk;
use dtp_netlist::generate::{generate, GeneratorConfig};
use dtp_netlist::{CellId, Point};
use dtp_rsmt::build_forest;
use dtp_sta::{AnalysisScratch, Timer};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

/// Times `f` with a warmup and enough repetitions to fill ~0.5 s, returning
/// mean nanoseconds per call.
fn time_ns(mut f: impl FnMut()) -> f64 {
    for _ in 0..2 {
        f();
    }
    let probe = Instant::now();
    f();
    let once = probe.elapsed().as_secs_f64();
    let reps = ((0.5 / once.max(1e-6)) as usize).clamp(5, 200);
    let t0 = Instant::now();
    for _ in 0..reps {
        f();
    }
    t0.elapsed().as_secs_f64() * 1e9 / reps as f64
}

fn main() {
    let cells: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4000);
    let mut design = generate(&GeneratorConfig::named("bench_sta", cells)).unwrap();
    let lib = synthetic_pdk();
    let timer = Timer::new(&design, &lib).unwrap();
    let mut forest = build_forest(&design.netlist);
    let nl_cells = design.netlist.num_cells();
    let mut scratch = AnalysisScratch::new();

    // Full forward passes through the scratch entry points.
    let analyze_ns = time_ns(|| {
        let a = timer.analyze_into(&design.netlist, &forest, &mut scratch);
        scratch.recycle(black_box(a));
    });
    let smoothed_ns = time_ns(|| {
        let a = timer.analyze_smoothed_into(&design.netlist, &forest, &mut scratch);
        scratch.recycle(black_box(a));
    });

    // Backward gradient sweep.
    let analysis = timer.analyze_smoothed(&design.netlist, &forest);
    let mut grads = dtp_sta::PositionGradients::default();
    let gradients_ns = time_ns(|| {
        timer.gradients_into(
            &design.netlist,
            &analysis,
            &forest,
            0.04,
            0.0004,
            &mut scratch,
            &mut grads,
        );
        black_box(&grads);
    });

    // Incremental analysis at swept moved-cell fractions.
    let movable: Vec<CellId> = design.netlist.movable_cells().collect();
    let mut sweep = Vec::new();
    for permille in [1usize, 10, 100] {
        let n_moved = (movable.len() * permille / 1000).max(1);
        let prev = timer.analyze(&design.netlist, &forest);
        let moved: Vec<CellId> = movable.iter().copied().take(n_moved).collect();
        for &c in &moved {
            let pos = design.netlist.cell(c).pos();
            design
                .netlist
                .set_cell_pos(c, Point::new(pos.x + 2.0, pos.y + 1.0));
        }
        forest.update_positions(&design.netlist);
        let inc_ns = time_ns(|| {
            let a = timer.analyze_incremental_into(
                &design.netlist,
                &forest,
                &prev,
                &moved,
                false,
                &mut scratch,
            );
            scratch.recycle(black_box(a));
        });
        let frac = permille as f64 / 1000.0;
        sweep.push((frac, n_moved, inc_ns, analyze_ns / inc_ns));
    }

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"design_cells\": {nl_cells},");
    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let _ = writeln!(json, "  \"host_threads\": {host_threads},");
    let _ = writeln!(json, "  \"threads\": {},", rayon::current_num_threads());
    let _ = writeln!(json, "  \"analyze_ns\": {analyze_ns:.0},");
    let _ = writeln!(json, "  \"analyze_smoothed_ns\": {smoothed_ns:.0},");
    let _ = writeln!(json, "  \"gradients_ns\": {gradients_ns:.0},");
    let _ = writeln!(json, "  \"incremental\": [");
    for (i, (frac, n_moved, ns, speedup)) in sweep.iter().enumerate() {
        let comma = if i + 1 < sweep.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"moved_frac\": {frac}, \"moved_cells\": {n_moved}, \
             \"incremental_ns\": {ns:.0}, \"speedup_vs_full\": {speedup:.2}}}{comma}"
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    std::fs::write("BENCH_sta.json", &json).expect("write BENCH_sta.json");

    println!("design: {nl_cells} cells");
    println!("analyze (full, exact):    {:>12.0} ns", analyze_ns);
    println!("analyze (full, smoothed): {:>12.0} ns", smoothed_ns);
    println!("gradients:                {:>12.0} ns", gradients_ns);
    for (frac, n_moved, ns, speedup) in &sweep {
        println!(
            "incremental {:>5.1}% ({n_moved:>4} cells): {ns:>12.0} ns  ({speedup:.2}x vs full)",
            frac * 100.0
        );
    }
    println!("wrote BENCH_sta.json");
}
