//! Three-mode timing-quality-vs-runtime frontier emitting `BENCH_paths.json`.
//!
//! For each design size, runs the same `scale_design` instance through the
//! three timing-driven flow modes — full differentiable STA, momentum net
//! weighting, and top-K path extraction (K ∈ {8, 32, 128}) — under one
//! iteration cap, and records per run:
//!
//! - end-to-end seconds and the **in-loop timing-phase seconds** (STA
//!   forward + backward + net-weight transfer + path extraction), the
//!   quantity the frontier trades against final WNS/TNS;
//! - final HPWL / WNS / TNS, iteration and extraction counts;
//! - process peak RSS (`VmHWM`).
//!
//! Two proofs ride along:
//!
//! 1. **Frontier headline** (full run, largest size): some K buys a ≥5×
//!    cheaper timing phase than the full differentiable STA while giving
//!    back ≤10% of its WNS.
//! 2. **Zero-alloc steady state**: after warmup, top-K extraction + weight
//!    transfer ([`dtp_core::PathWeighter::update`]) performs zero heap
//!    allocations, measured with a counting global allocator. The
//!    surrounding forward-only analysis reuses [`dtp_sta::AnalysisScratch`];
//!    its (near-zero) steady-state count is recorded alongside.
//!
//! Usage: `cargo run --release -p dtp-bench --bin bench_paths
//! [-- --smoke] [-- --cells N]`
//! `--smoke` runs 100k cells, K=32 only, 2 threads under a lower cap for CI;
//! `--cells` restricts a full run to one size.

use dtp_core::{
    run_flow_observed, FlowConfig, FlowMode, FlowResult, Observer, PathExtractConfig, PathWeighter,
};
use dtp_liberty::synth::synthetic_pdk;
use dtp_netlist::generate::scale_design;
use dtp_netlist::Design;
use dtp_obs::{Counter, Phase};
use dtp_place::WirelengthModel;
use dtp_rsmt::build_forest;
use dtp_sta::{AnalysisScratch, Timer};
use std::fmt::Write as _;
use std::time::Instant;

mod alloc_counter {
    //! Counting wrapper around the system allocator: `allocs()` reads the
    //! total number of `alloc`/`realloc` calls process-wide.
    #![allow(unsafe_code)]

    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    static ALLOCS: AtomicU64 = AtomicU64::new(0);

    pub struct Counting;

    // SAFETY: defers to `System` for every operation; only adds a counter.
    unsafe impl GlobalAlloc for Counting {
        unsafe fn alloc(&self, l: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            System.alloc(l)
        }
        unsafe fn dealloc(&self, p: *mut u8, l: Layout) {
            System.dealloc(p, l)
        }
        unsafe fn realloc(&self, p: *mut u8, l: Layout, n: usize) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            System.realloc(p, l, n)
        }
    }

    #[global_allocator]
    static COUNTER: Counting = Counting;

    pub fn allocs() -> u64 {
        ALLOCS.load(Ordering::Relaxed)
    }
}

/// Process peak resident set (`VmHWM`) in kB; 0 where procfs is unavailable.
fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines().find(|l| l.starts_with("VmHWM:")).and_then(|l| {
                l.split_whitespace().nth(1).and_then(|v| v.parse().ok())
            })
        })
        .unwrap_or(0)
}

/// One `(size, mode)` flow run with the phase buckets the frontier compares.
struct Arm {
    label: String,
    top_k: Option<usize>,
    result: FlowResult,
    total_s: f64,
    /// In-loop timing machinery: STA fwd/bwd + weight transfer + extraction.
    timing_s: f64,
    /// Steiner construction + incremental maintenance (common to all modes).
    steiner_s: f64,
    /// WL/density gradients + Nesterov (the mode-independent core).
    loop_s: f64,
    extractions: u64,
    peak_rss_kb: u64,
}

fn run_arm(
    d: &Design,
    lib: &dtp_liberty::Library,
    label: &str,
    top_k: Option<usize>,
    mode: FlowMode,
    config: &FlowConfig,
) -> Arm {
    let mut obs = Observer::new(true);
    let t0 = Instant::now();
    let result = run_flow_observed(d, lib, mode, config, &mut obs).expect("flow runs");
    let total_s = t0.elapsed().as_secs_f64();
    let s = |p: Phase| obs.spans().seconds(p);
    Arm {
        label: label.to_string(),
        top_k,
        result,
        total_s,
        timing_s: s(Phase::StaForward)
            + s(Phase::StaBackward)
            + s(Phase::NetWeight)
            + s(Phase::PathExtract),
        steiner_s: s(Phase::SteinerBuild) + s(Phase::SteinerUpdate),
        loop_s: s(Phase::WirelengthGrad) + s(Phase::DensityGrad) + s(Phase::NesterovStep),
        extractions: obs.registry().get(Counter::PathExtractions),
        peak_rss_kb: peak_rss_kb(),
    }
}

/// Steady-state allocation probe: warm the extraction machinery up, then
/// count heap allocations across repeated analyze → extract → reweight
/// cycles at a fixed placement. Returns (extract_allocs, analysis_allocs)
/// summed over `reps` cycles; the first must be exactly zero.
fn alloc_probe(d: &Design, lib: &dtp_liberty::Library, top_k: usize, reps: usize) -> (u64, u64) {
    let timer = Timer::new(d, lib).expect("timer binds");
    let forest = build_forest(&d.netlist);
    let model = WirelengthModel::new(&d.netlist);
    let pcfg = PathExtractConfig { top_k, ..PathExtractConfig::default() };
    let mut pw = PathWeighter::new(&d.netlist, &model, pcfg);
    let mut scratch = AnalysisScratch::new();
    scratch.presize(d.netlist.num_pins(), d.netlist.num_nets());
    // Warmup: let every lazily-grown buffer reach steady-state capacity.
    for _ in 0..2 {
        let a = timer.analyze_no_rat_into(&d.netlist, &forest, &mut scratch);
        pw.update(&d.netlist, &timer, &a);
        scratch.recycle(a);
    }
    let mut extract_allocs = 0;
    let mut analysis_allocs = 0;
    for _ in 0..reps {
        let before = alloc_counter::allocs();
        let a = timer.analyze_no_rat_into(&d.netlist, &forest, &mut scratch);
        let mid = alloc_counter::allocs();
        pw.update(&d.netlist, &timer, &a);
        extract_allocs += alloc_counter::allocs() - mid;
        scratch.recycle(a);
        analysis_allocs += mid - before;
    }
    (extract_allocs, analysis_allocs)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let (mut sizes, threads, ks): (Vec<usize>, usize, Vec<usize>) = if smoke {
        (vec![100_000], 2.min(host_threads), vec![32])
    } else {
        (vec![100_000, 500_000, 1_000_000], 4.min(host_threads), vec![8, 32, 128])
    };
    if let Some(i) = args.iter().position(|a| a == "--cells") {
        sizes = vec![args[i + 1].parse().expect("--cells takes a number")];
    }
    let mut period = PathExtractConfig::default().extract_period;
    if let Some(i) = args.iter().position(|a| a == "--period") {
        period = args[i + 1].parse().expect("--period takes a number");
    }
    let mut cap = PathExtractConfig::default().pin_weight_cap;
    if let Some(i) = args.iter().position(|a| a == "--cap") {
        cap = args[i + 1].parse().expect("--cap takes a number");
    }
    let largest = *sizes.iter().max().expect("nonempty sizes");
    let lib = synthetic_pdk();
    let config = FlowConfig {
        max_iters: if smoke { 150 } else { 300 },
        trace_timing_every: 0,
        bins: 128,
        detail_passes: 1,
        observe: true,
        threads,
        ..FlowConfig::default()
    };

    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"schema\": \"dtp-bench-paths-v1\",");
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    let _ = writeln!(out, "  \"host_threads\": {host_threads},");
    let _ = writeln!(out, "  \"threads\": {threads},");
    let _ = writeln!(out, "  \"max_iters\": {},", config.max_iters);
    let _ = writeln!(out, "  \"top_k_sweep\": [{}],", ks.iter().map(|k| k.to_string()).collect::<Vec<_>>().join(", "));
    let _ = writeln!(out, "  \"extract_period\": {period},");

    // Zero-alloc proof on a small fixed instance (independent of the sweep).
    let probe_design = scale_design(20_000, 1).expect("generator succeeds");
    let (extract_allocs, analysis_allocs) = alloc_probe(&probe_design, &lib, 32, 10);
    println!(
        "alloc probe (20k cells, K=32, 10 cycles): extraction {extract_allocs} | \
         forward analysis {analysis_allocs}"
    );
    assert_eq!(
        extract_allocs, 0,
        "top-K extraction + weight transfer must be allocation-free in steady state"
    );
    let _ = writeln!(out, "  \"alloc_probe\": {{\"cells\": 20000, \"top_k\": 32, \"cycles\": 10, \"extract_allocs\": {extract_allocs}, \"analysis_allocs\": {analysis_allocs}}},");
    let _ = writeln!(out, "  \"runs\": [");

    let mut run_lines = Vec::new();
    let mut cmp_lines = Vec::new();
    let mut headline_ok = false;
    for &cells in &sizes {
        let t0 = Instant::now();
        let d = scale_design(cells, 1).expect("generator succeeds");
        println!(
            "generated {cells}-cell design in {:.1} s ({} nets, {} pins)",
            t0.elapsed().as_secs_f64(),
            d.netlist.num_nets(),
            d.netlist.num_pins()
        );
        let mut arms: Vec<Arm> = Vec::new();
        let mut jobs: Vec<(String, Option<usize>, FlowMode)> = vec![
            ("differentiable".into(), None, FlowMode::differentiable()),
            ("net-weighting".into(), None, FlowMode::net_weighting()),
        ];
        for &k in &ks {
            jobs.push((
                format!("path-extraction-k{k}"),
                Some(k),
                FlowMode::PathExtraction(PathExtractConfig {
                    top_k: k,
                    extract_period: period,
                    pin_weight_cap: cap,
                    ..PathExtractConfig::default()
                }),
            ));
        }
        for (label, top_k, mode) in jobs {
            let arm = run_arm(&d, &lib, &label, top_k, mode, &config);
            println!(
                "  {cells} cells {label:>20}: {:.1} s | timing {:.2} s | steiner {:.2} s | \
                 loop {:.2} s | {} iters | {} extractions | hpwl {:.0} | wns {:.1} | tns {:.1} | rss {} MB",
                arm.total_s,
                arm.timing_s,
                arm.steiner_s,
                arm.loop_s,
                arm.result.iterations,
                arm.extractions,
                arm.result.hpwl,
                arm.result.wns,
                arm.result.tns,
                arm.peak_rss_kb / 1024,
            );
            run_lines.push(format!(
                "    {{\"cells\": {cells}, \"mode\": \"{}\", \"top_k\": {}, \
                 \"total_s\": {:.3}, \"timing_s\": {:.3}, \"steiner_s\": {:.3}, \"loop_s\": {:.3}, \
                 \"iterations\": {}, \"extractions\": {}, \"hpwl\": {:.1}, \"wns\": {:.2}, \
                 \"tns\": {:.2}, \"peak_rss_kb\": {}}}",
                arm.label,
                arm.top_k.map_or("null".to_string(), |k| k.to_string()),
                arm.total_s,
                arm.timing_s,
                arm.steiner_s,
                arm.loop_s,
                arm.result.iterations,
                arm.extractions,
                arm.result.hpwl,
                arm.result.wns,
                arm.result.tns,
                arm.peak_rss_kb,
            ));
            arms.push(arm);
        }
        // Frontier: every path-extraction arm vs the differentiable baseline.
        let diff = &arms[0];
        for arm in arms.iter().filter(|a| a.top_k.is_some()) {
            let k = arm.top_k.expect("path arm");
            let timing_speedup = diff.timing_s / arm.timing_s.max(1e-9);
            // Give-back: how much of the baseline's WNS the cheap mode loses
            // (negative = the cheap mode is *better*).
            let wns_giveback_pct = if diff.result.wns < 0.0 {
                100.0 * (arm.result.wns.abs() - diff.result.wns.abs()) / diff.result.wns.abs()
            } else {
                0.0
            };
            let tns_giveback_pct = if diff.result.tns < 0.0 {
                100.0 * (arm.result.tns.abs() - diff.result.tns.abs()) / diff.result.tns.abs()
            } else {
                0.0
            };
            let total_speedup = diff.total_s / arm.total_s.max(1e-9);
            println!(
                "  {cells} cells K={k}: timing {timing_speedup:.1}x cheaper | end-to-end \
                 {total_speedup:.2}x | wns give-back {wns_giveback_pct:+.1}% | tns {tns_giveback_pct:+.1}%"
            );
            cmp_lines.push(format!(
                "    {{\"cells\": {cells}, \"top_k\": {k}, \"timing_speedup\": {timing_speedup:.3}, \
                 \"total_speedup\": {total_speedup:.3}, \"wns_giveback_pct\": {wns_giveback_pct:.3}, \
                 \"tns_giveback_pct\": {tns_giveback_pct:.3}}}"
            ));
            if cells == largest && timing_speedup >= 5.0 && wns_giveback_pct <= 10.0 {
                headline_ok = true;
            }
        }
    }
    let _ = writeln!(out, "{}", run_lines.join(",\n"));
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"comparisons\": [");
    let _ = writeln!(out, "{}", cmp_lines.join(",\n"));
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"headline\": {{\"cells\": {largest}, \"timing_speedup_min\": 5.0, \"wns_giveback_max_pct\": 10.0, \"ok\": {headline_ok}}}");
    let _ = writeln!(out, "}}");

    // The headline only arms on the full sweep: smoke runs a single size
    // under a reduced cap where the ratio is still recorded but not binding.
    if !smoke {
        assert!(
            headline_ok,
            "no K achieved >=5x cheaper timing phase with <=10% WNS give-back at {largest} cells"
        );
    }

    std::fs::write("BENCH_paths.json", &out).expect("write BENCH_paths.json");
    println!("wrote BENCH_paths.json");
}
