//! Regenerates **Table 3**: WNS / TNS / HPWL / runtime of the three flows —
//! DREAMPlace \[16\] (wirelength only), net weighting \[24\], and the paper's
//! differentiable-timing-driven placer — on the eight superblue proxies,
//! including the Avg.-Ratio row.
//!
//! Usage:
//! `cargo run -p dtp-bench --release --bin table3 [-- scale_denom [max_iters]]`
//!
//! Environment: `DTP_BENCHES=sb1,sb18` restricts the benchmark list. Results
//! are also written to `results/table3.csv`.

use dtp_core::{run_flow, FlowConfig, FlowMode, FlowResult};
use dtp_liberty::synth::synthetic_pdk;
use dtp_netlist::generate::{superblue_proxy, SUPERBLUE_TABLE2};
use std::fmt::Write as _;

fn main() {
    let scale_denom: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(150.0);
    let max_iters: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(400);
    let only: Option<Vec<String>> = std::env::var("DTP_BENCHES")
        .ok()
        .map(|s| s.split(',').map(|t| t.trim().to_owned()).collect());

    let lib = synthetic_pdk();
    let cfg = FlowConfig { max_iters, trace_timing_every: 0, ..FlowConfig::default() };
    let modes = [
        FlowMode::Wirelength,
        FlowMode::net_weighting(),
        FlowMode::differentiable(),
    ];

    println!(
        "Table 3: comparison at proxy scale 1/{scale_denom:.0}, {max_iters} max iterations\n"
    );
    println!(
        "{:<8} | {:>9} {:>12} {:>10} {:>8} | {:>9} {:>12} {:>10} {:>8} | {:>9} {:>12} {:>10} {:>8}",
        "Bench",
        "WNS", "TNS", "HPWL", "Time",
        "WNS", "TNS", "HPWL", "Time",
        "WNS", "TNS", "HPWL", "Time"
    );
    println!(
        "{:<8} | {:^43} | {:^43} | {:^43}",
        "", "DREAMPlace [16]", "Net Weighting [24]", "Ours"
    );
    println!("{}", "-".repeat(145));

    let mut csv = String::from("bench,mode,wns_ps,tns_ps,hpwl_um,runtime_s,iterations\n");
    // ratios accumulated as (flow metric) / (ours metric), per the paper.
    let mut ratio = [[0.0f64; 4]; 3];
    let mut count = 0usize;

    for &(name, _, _, _) in SUPERBLUE_TABLE2 {
        let short = name.replace("superblue", "sb");
        if let Some(list) = &only {
            if !list.iter().any(|n| n == &short || n == name) {
                continue;
            }
        }
        let design = superblue_proxy(name, 1.0 / scale_denom)
            .expect("built-in benchmark names are valid");
        let results: Vec<FlowResult> = modes
            .iter()
            .map(|&m| run_flow(&design, &lib, m, &cfg).expect("flow succeeds"))
            .collect();
        let ours = &results[2];
        print!("{:<8} |", short);
        for r in &results {
            print!(
                " {:>9.1} {:>12.1} {:>10.0} {:>7.2}s |",
                r.wns, r.tns, r.hpwl, r.runtime
            );
            let _ = writeln!(
                csv,
                "{},{},{:.3},{:.3},{:.1},{:.3},{}",
                short, r.mode, r.wns, r.tns, r.hpwl, r.runtime, r.iterations
            );
        }
        println!();
        for (k, r) in results.iter().enumerate() {
            ratio[k][0] += safe_ratio(r.wns.min(-1e-9), ours.wns.min(-1e-9));
            ratio[k][1] += safe_ratio(r.tns.min(-1e-9), ours.tns.min(-1e-9));
            ratio[k][2] += r.hpwl / ours.hpwl;
            ratio[k][3] += r.runtime / ours.runtime;
        }
        count += 1;
    }
    if count > 0 {
        println!("{}", "-".repeat(145));
        print!("{:<8} |", "Avg.R");
        for row in &ratio {
            print!(
                " {:>9.3} {:>12.3} {:>10.3} {:>8.3} |",
                row[0] / count as f64,
                row[1] / count as f64,
                row[2] / count as f64,
                row[3] / count as f64
            );
        }
        println!();
        println!(
            "\npaper Avg.Ratio reference: DREAMPlace 1.897/3.125/0.987/0.318, \
             NetWeighting 1.282/1.472/1.043/1.807, Ours 1.000/1.000/1.000/1.000"
        );
    }
    std::fs::create_dir_all("results").ok();
    if std::fs::write("results/table3.csv", &csv).is_ok() {
        println!("wrote results/table3.csv");
    }
}

/// |a| / |b| for two negative slack metrics.
fn safe_ratio(a: f64, b: f64) -> f64 {
    (a.abs()) / (b.abs().max(1e-9))
}
