//! Observability-overhead benchmark emitting `BENCH_obs.json`.
//!
//! Three measurements, mirroring `bench_density`'s hand-timed style:
//!
//! 1. **Flow overhead**: the full differentiable flow with observability off
//!    vs on (spans + counters + ring + a JSONL stream into a null sink).
//!    The design target is < 1 % wall-clock overhead; the assertion uses a
//!    looser bound so scheduler noise cannot flake CI.
//! 2. **Steady-state allocations**: one observed iteration's worth of
//!    `Observer` traffic (iter_begin, spans, counters, iter_end + JSONL
//!    event) must allocate nothing, measured with a counting global
//!    allocator.
//! 3. **Sink validity**: the emitted `metrics.json` parses back with
//!    `dtp_obs::json::parse`, and the v2 `iter`/`span` trace records pass
//!    both the generic parser and the strict schema reader.
//!
//! Usage: `cargo run --release -p dtp-bench --bin bench_obs [-- cells]`
//! (default 2000). `--smoke` runs a tiny configuration for CI.

use dtp_core::{run_flow_observed, FlowConfig, FlowMode, Observer};
use dtp_liberty::synth::synthetic_pdk;
use dtp_netlist::generate::{generate, GeneratorConfig};
use dtp_obs::{json, Counter, IterEvent, Phase, QorSummary};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

mod alloc_counter {
    //! Counting wrapper around the system allocator: `allocs()` reads the
    //! total number of `alloc`/`realloc` calls process-wide.
    #![allow(unsafe_code)]

    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    static ALLOCS: AtomicU64 = AtomicU64::new(0);

    pub struct Counting;

    // SAFETY: defers to `System` for every operation; only adds a counter.
    unsafe impl GlobalAlloc for Counting {
        unsafe fn alloc(&self, l: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            System.alloc(l)
        }
        unsafe fn dealloc(&self, p: *mut u8, l: Layout) {
            System.dealloc(p, l)
        }
        unsafe fn realloc(&self, p: *mut u8, l: Layout, n: usize) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            System.realloc(p, l, n)
        }
    }

    #[global_allocator]
    static COUNTER: Counting = Counting;

    pub fn allocs() -> u64 {
        ALLOCS.load(Ordering::Relaxed)
    }
}

/// Heap allocations per call of `f`, averaged over `reps` post-warmup calls.
fn allocs_per_call(reps: u64, mut f: impl FnMut()) -> f64 {
    for _ in 0..3 {
        f();
    }
    let before = alloc_counter::allocs();
    for _ in 0..reps {
        f();
    }
    (alloc_counter::allocs() - before) as f64 / reps as f64
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let cells: usize = args
        .iter()
        .find_map(|a| a.parse().ok())
        .unwrap_or(if smoke { 600 } else { 2000 });
    let max_iters = if smoke { 100 } else { 300 };

    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"design_cells\": {cells},");
    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let _ = writeln!(out, "  \"host_threads\": {host_threads},");
    let _ = writeln!(out, "  \"threads\": {},", rayon::current_num_threads());
    let _ = writeln!(out, "  \"max_iters\": {max_iters},");

    // --- 1. Flow overhead: observe off vs on ------------------------------
    let design = generate(&GeneratorConfig::named("bench_obs", cells)).unwrap();
    let lib = synthetic_pdk();
    let cfg_off = FlowConfig {
        max_iters,
        trace_timing_every: 10,
        observe: false,
        ..FlowConfig::default()
    };
    let cfg_on = FlowConfig { observe: true, ..cfg_off };
    let rounds = if smoke { 1 } else { 3 };
    let mut off_s = f64::INFINITY;
    let mut on_s = f64::INFINITY;
    let mut last_report = None;
    // Alternate runs and keep per-variant minima: best-case timing cancels
    // warmup and scheduler noise, which is what an overhead ratio needs.
    for _ in 0..rounds {
        let mut obs = Observer::disabled();
        let t0 = Instant::now();
        let r = run_flow_observed(&design, &lib, FlowMode::differentiable(), &cfg_off, &mut obs)
            .unwrap();
        off_s = off_s.min(t0.elapsed().as_secs_f64());
        black_box(r.hpwl);

        let mut obs = Observer::new(true);
        obs.set_trace_writer(Box::new(std::io::sink()));
        let t0 = Instant::now();
        let r = run_flow_observed(&design, &lib, FlowMode::differentiable(), &cfg_on, &mut obs)
            .unwrap();
        on_s = on_s.min(t0.elapsed().as_secs_f64());
        black_box(r.hpwl);
        last_report = Some((obs.report(), r));
    }
    let overhead_pct = (on_s / off_s - 1.0) * 100.0;
    let _ = writeln!(
        out,
        "  \"flow\": {{\"observe_off_s\": {off_s:.4}, \"observe_on_s\": {on_s:.4}, \
         \"overhead_pct\": {overhead_pct:.3}}},"
    );
    println!(
        "flow ({cells} cells, {max_iters} iters): observe off {off_s:.3} s | on {on_s:.3} s | \
         overhead {overhead_pct:+.2}% (target < 1%)"
    );
    // Loose bound: the target is < 1 %, but a shared CI runner can add a few
    // percent of noise to a sub-second flow; anything past 10 % is a real
    // regression, not jitter.
    assert!(
        overhead_pct < 10.0,
        "observability overhead {overhead_pct:.2}% exceeds the 10% regression bound"
    );

    // --- 2. Steady-state allocations of one observed iteration ------------
    let mut obs = Observer::new(true);
    obs.set_trace_writer(Box::new(std::io::sink()));
    let mut iter = 0u64;
    let obs_allocs = allocs_per_call(1000, || {
        obs.iter_begin();
        obs.add(Counter::Iterations, 1);
        for phase in [
            Phase::WirelengthGrad,
            Phase::DensityGrad,
            Phase::SteinerUpdate,
            Phase::StaForward,
            Phase::StaBackward,
            Phase::NesterovStep,
        ] {
            let s = obs.start(phase);
            black_box(phase);
            obs.stop(phase, s);
        }
        obs.add(Counter::GeoDirtyNets, 37);
        obs.add(Counter::StaIncremental, 1);
        obs.iter_end(IterEvent {
            iter,
            level: 0,
            wl: 1234.5,
            hpwl: f64::NAN,
            overflow: 0.42,
            lambda: 1e-4,
            step: 5.0,
            wns: f64::NAN,
            tns: f64::NAN,
            timing: false,
        });
        iter += 1;
    });
    let _ = writeln!(out, "  \"observer_allocs_per_iteration\": {obs_allocs:.1},");
    println!("observer steady state: {obs_allocs:.1} allocations per observed iteration");
    assert_eq!(
        obs_allocs, 0.0,
        "the observed steady-state loop must be allocation-free"
    );

    // --- 3. Sink validity: metrics.json + JSONL parse back ----------------
    let (report, result) = last_report.expect("at least one observed flow ran");
    let qor = QorSummary {
        design: result.design.clone(),
        mode: result.mode.to_string(),
        hpwl: result.hpwl,
        wns: result.wns,
        tns: result.tns,
        iterations: result.iterations as u64,
        runtime: result.runtime,
        timing_runtime: result.timing_runtime,
    };
    let metrics = report.to_json(Some(&qor));
    let parsed = json::parse(&metrics).expect("metrics.json must parse");
    assert_eq!(
        parsed.get("schema").and_then(|s| s.as_str()),
        Some(dtp_obs::METRICS_SCHEMA)
    );
    let sta_s = parsed
        .get("sta_seconds")
        .and_then(|v| v.as_f64())
        .expect("sta_seconds present");
    let mut event = Vec::new();
    let ev = IterEvent {
        iter: 7,
        level: 0,
        wl: 1.0,
        hpwl: f64::NAN,
        overflow: 0.5,
        lambda: 2e-4,
        step: 4.5,
        wns: -3.0,
        tns: -9.0,
        timing: true,
    };
    dtp_obs::write_iter_record(&mut event, &ev, &[1; Counter::COUNT]).unwrap();
    dtp_obs::write_span_record(&mut event, 7, 0, &[1; Phase::COUNT]).unwrap();
    let event_text = String::from_utf8(event).unwrap();
    for line in event_text.lines() {
        json::parse(line).expect("v2 JSONL record must parse");
        dtp_obs::trace::parse_record(line).expect("v2 record passes the strict reader");
    }
    let _ = writeln!(out, "  \"metrics_json_valid\": true,");
    let _ = writeln!(out, "  \"sta_seconds\": {sta_s:.4}");
    let _ = writeln!(out, "}}");
    println!("sinks: metrics.json and JSONL events parse back (sta {sta_s:.3} s)");

    std::fs::write("BENCH_obs.json", &out).expect("write BENCH_obs.json");
    println!("wrote BENCH_obs.json");
}
