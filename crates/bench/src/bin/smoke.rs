//! Quick manual smoke test / hyperparameter probe for the three flows:
//! runs DREAMPlace, net weighting and several differentiable-timing
//! configurations on one synthetic design and prints the comparison line
//! per run. This is the calibration harness that set the crate's default
//! t1/t2 (see `DiffTimingConfig`); kept for re-tuning on new substrates.
//!
//! Usage: `cargo run --release -p dtp-bench --bin smoke [-- num_cells]`
use dtp_core::{run_flow, DiffTimingConfig, FlowConfig, FlowMode, NetWeightConfig};
use dtp_liberty::synth::synthetic_pdk;
use dtp_netlist::generate::{generate, GeneratorConfig};

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(2000);
    let design = generate(&GeneratorConfig::named("smoke", n)).unwrap();
    let lib = synthetic_pdk();
    let cfg = FlowConfig::default();
    let r = run_flow(&design, &lib, FlowMode::Wirelength, &cfg).unwrap();
    println!("{r}");
    let boost = 2.0;
    let m = FlowMode::NetWeighting(NetWeightConfig { max_boost: boost, ..Default::default() });
    let r = run_flow(&design, &lib, m, &cfg).unwrap();
    println!("{r}   (boost {boost})");
    for (t1, t2, growth, start) in [
        (0.04, 0.0004, 1.01, 100usize),
        (0.04, 0.0001, 1.01, 100),
        (0.03, 0.0003, 1.01, 80),
        (0.06, 0.0006, 1.01, 100),
    ] {
        let m = FlowMode::Differentiable(DiffTimingConfig { t1, t2, growth, start_iter: start, ..Default::default() });
        let r = run_flow(&design, &lib, m, &cfg).unwrap();
        println!("{r}   (t1 {t1} t2 {t2} g {growth} s {start})");
    }
}
