//! Electrostatics-kernel benchmark emitting `BENCH_density.json`.
//!
//! Four measurements, mirroring `bench_route`'s hand-timed style:
//!
//! 1. **Poisson solve**: dense reference transforms vs the radix-2 FFT
//!    backend on 64²–512² grids (the acceptance target is ≥ 5× at 256²).
//! 2. **Density evaluation**: allocating `evaluate` vs scratch-reusing
//!    `evaluate_into`, with per-call heap-allocation counts from a counting
//!    global allocator (`evaluate_into` must be zero in steady state).
//! 3. **Dispatch overhead**: spawning scoped threads per parallel region vs
//!    reusing the persistent worker pool.
//! 4. **Flow parity**: the full differentiable flow with `density_fft`
//!    on/off — final HPWL and TNS must agree closely (the two backends
//!    differ only in floating-point rounding).
//!
//! Usage: `cargo run --release -p dtp-bench --bin bench_density [-- cells]`
//! (default 4000). `--smoke` runs a tiny configuration for CI (small grids,
//! short flows).

use dtp_core::{run_flow, FlowConfig, FlowMode};
use dtp_liberty::synth::synthetic_pdk;
use dtp_netlist::generate::{generate, GeneratorConfig};
use dtp_place::{DensityModel, DensityResult, DensityScratch, PoissonScratch, PoissonSolution, Spectral2D};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

mod alloc_counter {
    //! Counting wrapper around the system allocator: `allocs()` reads the
    //! total number of `alloc`/`realloc` calls process-wide.
    #![allow(unsafe_code)]

    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    static ALLOCS: AtomicU64 = AtomicU64::new(0);

    pub struct Counting;

    // SAFETY: defers to `System` for every operation; only adds a counter.
    unsafe impl GlobalAlloc for Counting {
        unsafe fn alloc(&self, l: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            System.alloc(l)
        }
        unsafe fn dealloc(&self, p: *mut u8, l: Layout) {
            System.dealloc(p, l)
        }
        unsafe fn realloc(&self, p: *mut u8, l: Layout, n: usize) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            System.realloc(p, l, n)
        }
    }

    #[global_allocator]
    static COUNTER: Counting = Counting;

    pub fn allocs() -> u64 {
        ALLOCS.load(Ordering::Relaxed)
    }
}

/// Mean nanoseconds per call of `f` (warmup + ~0.5 s of repetitions).
fn time_ns(mut f: impl FnMut()) -> f64 {
    for _ in 0..2 {
        f();
    }
    let probe = Instant::now();
    f();
    let once = probe.elapsed().as_secs_f64();
    let reps = ((0.5 / once.max(1e-6)) as usize).clamp(5, 200);
    let t0 = Instant::now();
    for _ in 0..reps {
        f();
    }
    t0.elapsed().as_secs_f64() * 1e9 / reps as f64
}

/// Heap allocations per call of `f`, averaged over `reps` post-warmup calls.
fn allocs_per_call(reps: u64, mut f: impl FnMut()) -> f64 {
    for _ in 0..3 {
        f();
    }
    let before = alloc_counter::allocs();
    for _ in 0..reps {
        f();
    }
    (alloc_counter::allocs() - before) as f64 / reps as f64
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let cells: usize = args
        .iter()
        .find_map(|a| a.parse().ok())
        .unwrap_or(if smoke { 800 } else { 4000 });

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"design_cells\": {cells},");
    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let _ = writeln!(json, "  \"host_threads\": {host_threads},");
    let _ = writeln!(json, "  \"threads\": {},", rayon::current_num_threads());

    // --- 1. Poisson solve: dense vs FFT ---------------------------------
    let grids: &[usize] = if smoke { &[64, 128] } else { &[64, 128, 256, 512] };
    let _ = writeln!(json, "  \"poisson\": {{");
    println!("Poisson solve (dense vs FFT):");
    for (gi, &g) in grids.iter().enumerate() {
        let rho: Vec<f64> = (0..g * g)
            .map(|k| (((k as u64).wrapping_mul(2654435761) % 1000) as f64) / 500.0 - 1.0)
            .collect();
        let fft = Spectral2D::with_fft(g, g, 100.0, 100.0, true);
        let dense = Spectral2D::with_fft(g, g, 100.0, 100.0, false);
        assert!(fft.uses_fft() && !dense.uses_fft());
        let mut scratch = PoissonScratch::new();
        let mut sol = PoissonSolution::default();
        let fft_ns = time_ns(|| {
            fft.solve_into(&rho, &mut scratch, &mut sol);
            black_box(sol.psi[0]);
        });
        let dense_ns = time_ns(|| {
            dense.solve_into(&rho, &mut scratch, &mut sol);
            black_box(sol.psi[0]);
        });
        let speedup = dense_ns / fft_ns;
        let comma = if gi + 1 < grids.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    \"grid_{g}\": {{\"dense_ns\": {dense_ns:.0}, \"fft_ns\": {fft_ns:.0}, \
             \"speedup\": {speedup:.2}}}{comma}"
        );
        println!("  {g:>4}²: dense {dense_ns:>13.0} ns | fft {fft_ns:>11.0} ns | {speedup:.1}x");
    }
    let _ = writeln!(json, "  }},");

    // --- 2. Density evaluation: evaluate vs evaluate_into ----------------
    let design = generate(&GeneratorConfig::named("bench_density", cells)).unwrap();
    let bins = if smoke { 64 } else { 128 };
    let model = DensityModel::new(&design, bins, bins, 1.0);
    let (xs, ys) = design.netlist.positions();
    let evaluate_ns = time_ns(|| {
        black_box(model.evaluate(&xs, &ys));
    });
    let mut dscratch = DensityScratch::new();
    let mut dres = DensityResult::default();
    let evaluate_into_ns = time_ns(|| {
        model.evaluate_into(&xs, &ys, &mut dscratch, &mut dres);
        black_box(dres.energy);
    });
    let evaluate_allocs = allocs_per_call(10, || {
        black_box(model.evaluate(&xs, &ys));
    });
    let evaluate_into_allocs = allocs_per_call(10, || {
        model.evaluate_into(&xs, &ys, &mut dscratch, &mut dres);
        black_box(dres.energy);
    });
    let _ = writeln!(
        json,
        "  \"density_eval\": {{\"bins\": {bins}, \"evaluate_ns\": {evaluate_ns:.0}, \
         \"evaluate_into_ns\": {evaluate_into_ns:.0}, \
         \"evaluate_allocs_per_call\": {evaluate_allocs:.1}, \
         \"evaluate_into_steady_state_allocs\": {evaluate_into_allocs:.1}}},"
    );
    println!(
        "density {bins}²: evaluate {evaluate_ns:.0} ns ({evaluate_allocs:.0} allocs) | \
         evaluate_into {evaluate_into_ns:.0} ns ({evaluate_into_allocs:.0} allocs)"
    );
    assert_eq!(
        evaluate_into_allocs, 0.0,
        "evaluate_into must be allocation-free in steady state"
    );

    // --- 3. Dispatch: scoped spawn vs persistent pool --------------------
    let threads = 4;
    let pool = rayon::Pool::new(threads);
    let pool_ns = time_ns(|| {
        pool.run(threads, |i| {
            black_box(i);
        });
    });
    let spawn_ns = time_ns(|| {
        std::thread::scope(|s| {
            for i in 1..threads {
                s.spawn(move || {
                    black_box(i);
                });
            }
            black_box(0usize);
        });
    });
    let dispatch_speedup = spawn_ns / pool_ns;
    let _ = writeln!(
        json,
        "  \"dispatch\": {{\"threads\": {threads}, \"spawn_ns\": {spawn_ns:.0}, \
         \"pool_ns\": {pool_ns:.0}, \"speedup\": {dispatch_speedup:.1}}},"
    );
    println!(
        "dispatch ({threads} lanes): scoped spawn {spawn_ns:.0} ns | persistent pool \
         {pool_ns:.0} ns ({dispatch_speedup:.1}x)"
    );

    // --- 4. Flow parity: density_fft on vs off ---------------------------
    let lib = synthetic_pdk();
    let cfg_fft = FlowConfig {
        max_iters: if smoke { 120 } else { 500 },
        trace_timing_every: 0,
        density_fft: true,
        ..FlowConfig::default()
    };
    let cfg_dense = FlowConfig { density_fft: false, ..cfg_fft };
    let with_fft = run_flow(&design, &lib, FlowMode::differentiable(), &cfg_fft).unwrap();
    let with_dense = run_flow(&design, &lib, FlowMode::differentiable(), &cfg_dense).unwrap();
    let hpwl_delta = (with_fft.hpwl / with_dense.hpwl - 1.0).abs();
    let tns_delta = if with_dense.tns.abs() > 0.0 {
        (with_fft.tns.abs() / with_dense.tns.abs() - 1.0).abs()
    } else {
        0.0
    };
    let _ = writeln!(json, "  \"flow_parity\": {{");
    for (label, r, comma) in [("fft", &with_fft, ","), ("dense", &with_dense, ",")] {
        let _ = writeln!(
            json,
            "    \"{label}\": {{\"hpwl\": {:.0}, \"wns\": {:.1}, \"tns\": {:.1}, \
             \"iterations\": {}, \"runtime_s\": {:.2}}}{comma}",
            r.hpwl, r.wns, r.tns, r.iterations, r.runtime
        );
    }
    let _ = writeln!(
        json,
        "    \"hpwl_rel_delta\": {hpwl_delta:.6}, \"tns_rel_delta\": {tns_delta:.6}"
    );
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");
    std::fs::write("BENCH_density.json", &json).expect("write BENCH_density.json");

    println!(
        "flow parity: fft HPWL {:.0} / TNS {:.1} ({} iters, {:.1} s) vs dense HPWL {:.0} / \
         TNS {:.1} ({} iters, {:.1} s)",
        with_fft.hpwl,
        with_fft.tns,
        with_fft.iterations,
        with_fft.runtime,
        with_dense.hpwl,
        with_dense.tns,
        with_dense.iterations,
        with_dense.runtime
    );
    println!("  HPWL delta {:.4}% | TNS delta {:.4}%", hpwl_delta * 100.0, tns_delta * 100.0);
    println!("wrote BENCH_density.json");
}
