//! Noise-aware comparison of a fresh `BENCH_*.json` against a committed
//! baseline — the benchmark-regression gate.
//!
//! Raw wall-clock numbers from a shared CI runner cannot be compared
//! exactly, so every leaf is classified by its key name and judged under
//! the matching rule:
//!
//! * **exact** — `schema`, `*_valid`, keys containing `allocs`: these are
//!   correctness claims, not measurements; any change is a regression.
//! * **percentage** (`*_pct`) — absolute tolerance of 15 points, wide
//!   enough for scheduler noise on a sub-second flow, tight enough to
//!   catch a real observability-overhead regression.
//! * **time** (`*_ns`, `*_ms`, `*_s`, `*_seconds`) — the fresh value must
//!   be within 10x of the baseline in either direction; machines differ,
//!   order-of-magnitude blowups do not.
//! * **speedup** (`speedup*`) — lower bound only: fresh >= half the
//!   committed speedup. Getting faster is never a regression.
//! * **context** (`design_cells`, `host_threads`, `threads`,
//!   `pool_widths`, `max_iters`, `smoke`, ...) — reported, never judged:
//!   CI runs smoke configurations against full-run baselines.
//! * anything else numeric is reported as informational.
//!
//! Structure is load-bearing: a baseline key missing from the fresh file
//! fails the gate (a silently dropped measurement is how regressions
//! hide); new keys in the fresh file are fine (the next commit will fold
//! them into the baseline).
//!
//! Usage: `bench_baseline <committed-baseline.json> <fresh.json>`; exits
//! nonzero on any failure, so CI can gate on it directly.

use dtp_obs::json::{self, Value};
use std::process::ExitCode;

/// Keys that describe the run configuration/machine, not the result.
const CONTEXT_KEYS: &[&str] = &[
    "design_cells",
    "host_threads",
    "threads",
    "pool_widths",
    "max_iters",
    "smoke",
    "levels",
    "cluster_ratio",
    "top_k_sweep",
    "extract_period",
    "moved_cells",
    "moved_frac",
    "cells",
    "bins",
];

enum Rule {
    Exact,
    Context,
    PctAbs(f64),
    TimeRatio(f64),
    SpeedupFloor(f64),
    Info,
}

fn classify(key: &str) -> Rule {
    if key == "schema" || key.ends_with("_valid") || key.contains("allocs") {
        return Rule::Exact;
    }
    if CONTEXT_KEYS.contains(&key) {
        return Rule::Context;
    }
    if key.starts_with("speedup") || key.contains("_speedup") {
        return Rule::SpeedupFloor(0.5);
    }
    if key.ends_with("_pct") {
        return Rule::PctAbs(15.0);
    }
    if key.ends_with("_ns")
        || key.ends_with("_ms")
        || key.ends_with("_s")
        || key.ends_with("_seconds")
    {
        return Rule::TimeRatio(10.0);
    }
    Rule::Info
}

struct Gate {
    failures: Vec<String>,
    notes: Vec<String>,
}

impl Gate {
    fn fail(&mut self, msg: String) {
        self.failures.push(msg);
    }
    fn note(&mut self, msg: String) {
        self.notes.push(msg);
    }

    fn leaf(&mut self, path: &str, key: &str, base: &Value, fresh: &Value) {
        let render = |v: &Value| {
            let mut s = String::new();
            v.push_json(&mut s);
            s
        };
        let (bs, fs) = (render(base), render(fresh));
        match classify(key) {
            Rule::Exact => {
                if bs != fs {
                    self.fail(format!("{path}: exact key changed: baseline {bs}, fresh {fs}"));
                }
            }
            Rule::Context => {
                if bs != fs {
                    self.note(format!("{path}: context differs (baseline {bs}, fresh {fs})"));
                }
            }
            Rule::PctAbs(points) => match (base.as_f64(), fresh.as_f64()) {
                (Some(b), Some(f)) if (b - f).abs() <= points => {}
                (Some(b), Some(f)) => self.fail(format!(
                    "{path}: {f:.2} is more than {points} points from baseline {b:.2}"
                )),
                _ => self.fail(format!("{path}: non-numeric pct (baseline {bs}, fresh {fs})")),
            },
            Rule::TimeRatio(ratio) => match (base.as_f64(), fresh.as_f64()) {
                (Some(b), Some(f)) if b > 0.0 && f > 0.0 && f / b <= ratio && b / f <= ratio => {}
                (Some(b), Some(f)) if b == 0.0 && f == 0.0 => {}
                (Some(b), Some(f)) => self.fail(format!(
                    "{path}: {f} is beyond {ratio}x of baseline {b}"
                )),
                _ => self.fail(format!("{path}: non-numeric time (baseline {bs}, fresh {fs})")),
            },
            Rule::SpeedupFloor(frac) => match (base.as_f64(), fresh.as_f64()) {
                (Some(b), Some(f)) if f >= b * frac => {}
                (Some(b), Some(f)) => self.fail(format!(
                    "{path}: speedup {f:.2} fell below {frac} x baseline {b:.2}"
                )),
                _ => self.fail(format!(
                    "{path}: non-numeric speedup (baseline {bs}, fresh {fs})"
                )),
            },
            Rule::Info => {
                if bs != fs {
                    self.note(format!("{path}: informational (baseline {bs}, fresh {fs})"));
                }
            }
        }
    }

    fn compare(&mut self, path: &str, key: &str, base: &Value, fresh: &Value) {
        match (base, fresh) {
            (Value::Obj(bm), Value::Obj(fm)) => {
                for (k, bv) in bm {
                    let sub = if path.is_empty() { k.clone() } else { format!("{path}.{k}") };
                    match fm.iter().find(|(fk, _)| fk == k) {
                        Some((_, fv)) => self.compare(&sub, k, bv, fv),
                        None => self.fail(format!("{sub}: baseline key missing from fresh run")),
                    }
                }
                for (k, _) in fm {
                    if !bm.iter().any(|(bk, _)| bk == k) {
                        let sub = if path.is_empty() { k.clone() } else { format!("{path}.{k}") };
                        self.note(format!("{sub}: new key in fresh run (not in baseline)"));
                    }
                }
            }
            (Value::Arr(ba), Value::Arr(fa)) => {
                if ba.len() != fa.len() {
                    self.fail(format!(
                        "{path}: array length changed: baseline {}, fresh {}",
                        ba.len(),
                        fa.len()
                    ));
                }
                for (i, (bv, fv)) in ba.iter().zip(fa.iter()).enumerate() {
                    self.compare(&format!("{path}[{i}]"), key, bv, fv);
                }
            }
            (Value::Obj(_), _) | (Value::Arr(_), _) => {
                self.fail(format!("{path}: baseline is a container, fresh is a scalar"));
            }
            _ => self.leaf(path, key, base, fresh),
        }
    }
}

fn run(baseline_path: &str, fresh_path: &str) -> Result<Vec<String>, String> {
    let read = |p: &str| {
        std::fs::read_to_string(p).map_err(|e| format!("cannot read {p}: {e}"))
    };
    let baseline =
        json::parse(&read(baseline_path)?).map_err(|e| format!("{baseline_path}: {e}"))?;
    let fresh = json::parse(&read(fresh_path)?).map_err(|e| format!("{fresh_path}: {e}"))?;
    let mut gate = Gate { failures: Vec::new(), notes: Vec::new() };
    gate.compare("", "", &baseline, &fresh);
    for n in &gate.notes {
        println!("note: {n}");
    }
    for f in &gate.failures {
        println!("FAIL: {f}");
    }
    Ok(gate.failures.clone())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [baseline_path, fresh_path] = &args[..] else {
        eprintln!("usage: bench_baseline <committed-baseline.json> <fresh.json>");
        return ExitCode::from(2);
    };
    match run(baseline_path, fresh_path) {
        Ok(failures) if failures.is_empty() => {
            println!("baseline gate passed: {fresh_path} is consistent with {baseline_path}");
            ExitCode::SUCCESS
        }
        Ok(failures) => {
            println!(
                "baseline gate FAILED: {} regression(s) vs {baseline_path}",
                failures.len()
            );
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
