//! Routability benchmark emitting `BENCH_route.json`.
//!
//! Two measurements, mirroring `bench_sta`'s hand-timed style:
//!
//! 1. **Flow quality**: the same synthetic proxy placed with
//!    `route_aware = false` and `true` under a tight routing capacity; the
//!    JSON records final overflowed-bin fraction, max overflow, HPWL and
//!    TNS of both runs plus the relative deltas (the acceptance target is
//!    ≥ 20 % overflowed-bin reduction at ≤ 5 % HPWL and |TNS| cost).
//! 2. **Incremental map update cost**: RUDY full build vs incremental
//!    update after moving a small fraction of cells — the update must scale
//!    with the dirty-net set, not the design.
//!
//! Usage: `cargo run --release -p dtp-bench --bin bench_route [-- cells]`
//! (default 4000). `--smoke` runs a tiny configuration for CI.

use dtp_core::{run_flow, FlowConfig, FlowMode};
use dtp_liberty::synth::synthetic_pdk;
use dtp_netlist::generate::{generate, GeneratorConfig};
use dtp_netlist::{CellId, NetId, Point};
use dtp_route::RudyMap;
use dtp_rsmt::build_forest;
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

/// Mean nanoseconds per call of `f` (warmup + ~0.5 s of repetitions).
fn time_ns(mut f: impl FnMut()) -> f64 {
    for _ in 0..2 {
        f();
    }
    let probe = Instant::now();
    f();
    let once = probe.elapsed().as_secs_f64();
    let reps = ((0.5 / once.max(1e-6)) as usize).clamp(5, 200);
    let t0 = Instant::now();
    for _ in 0..reps {
        f();
    }
    t0.elapsed().as_secs_f64() * 1e9 / reps as f64
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let cells: usize = args
        .iter()
        .find_map(|a| a.parse().ok())
        .unwrap_or(if smoke { 800 } else { 4000 });

    let design = generate(&GeneratorConfig::named("bench_route", cells)).unwrap();
    let lib = synthetic_pdk();
    let cfg_off = FlowConfig {
        max_iters: if smoke { 120 } else { 500 },
        trace_timing_every: 0,
        ..FlowConfig::default()
    };

    // Baseline flow; the route knobs are inert here, so it doubles as the
    // capacity-calibration run: pick the 75th percentile of the baseline's
    // per-bin worst-direction demand density as the capacity, so that the
    // baseline overflows ~25 % of its bins — real hot spots, not a
    // uniformly saturated (or empty) grid.
    let off = run_flow(&design, &lib, FlowMode::differentiable(), &cfg_off).unwrap();
    let grid = cfg_off.route_grid;
    let mut base = design.clone();
    base.netlist.set_positions(&off.xs, &off.ys);
    let base_forest = build_forest(&base.netlist);
    let mut probe = RudyMap::new(&base, grid, grid, 1.0);
    probe.build(&base.netlist, &base_forest);
    let bin_area = probe.grid().bin_w() * probe.grid().bin_h();
    let mut dens: Vec<f64> = probe
        .h_demand()
        .iter()
        .zip(probe.v_demand())
        .map(|(&h, &v)| h.max(v) / bin_area)
        .collect();
    dens.sort_by(f64::total_cmp);
    let capacity = dens[dens.len() * 3 / 4].max(1e-9);

    let cfg_on = FlowConfig {
        route_aware: true,
        route_capacity: capacity,
        ..cfg_off
    };
    let on = run_flow(&design, &lib, FlowMode::differentiable(), &cfg_on).unwrap();

    // Evaluate both final placements at the calibrated capacity (the
    // baseline's FlowResult summary used the default capacity).
    let summarize = |r: &dtp_core::FlowResult| {
        let mut d = design.clone();
        d.netlist.set_positions(&r.xs, &r.ys);
        let f = build_forest(&d.netlist);
        let mut m = RudyMap::new(&d, grid, grid, capacity);
        m.build(&d.netlist, &f);
        m.summary()
    };
    let off_sum = summarize(&off);
    let on_sum = summarize(&on);

    let overflow_delta = if off_sum.overflowed_frac > 0.0 {
        1.0 - on_sum.overflowed_frac / off_sum.overflowed_frac
    } else {
        0.0
    };
    let hpwl_delta = on.hpwl / off.hpwl - 1.0;
    let tns_delta = if off.tns.abs() > 0.0 { on.tns.abs() / off.tns.abs() - 1.0 } else { 0.0 };

    // Incremental map maintenance: move 1% of the cells, compare a full
    // rebuild against the dirty-net update.
    let mut work = design.clone();
    work.netlist.set_positions(&on.xs, &on.ys);
    let mut forest = build_forest(&work.netlist);
    let mut map = RudyMap::new(&work, grid, grid, cfg_on.route_capacity);
    map.build(&work.netlist, &forest);
    let build_ns = time_ns(|| {
        let mut fresh = RudyMap::new(&work, grid, grid, cfg_on.route_capacity);
        fresh.build(&work.netlist, &forest);
        black_box(fresh.summary());
    });

    let movable: Vec<CellId> = work.netlist.movable_cells().collect();
    let n_moved = (movable.len() / 100).max(1);
    let mut dirty: Vec<NetId> = Vec::new();
    for &c in movable.iter().take(n_moved) {
        let p = work.netlist.cell(c).pos();
        work.netlist.set_cell_pos(c, Point::new(p.x + 2.0, p.y + 1.0));
        for &pin in work.netlist.cell(c).pins() {
            if let Some(net) = work.netlist.pin(pin).net() {
                if !dirty.contains(&net) {
                    dirty.push(net);
                }
            }
        }
    }
    forest.update_nets(&work.netlist, &dirty);
    let update_ns = time_ns(|| {
        map.update_nets(&forest, &dirty);
        map.sync_cells(&work.netlist);
        black_box(map.summary());
    });
    let speedup = build_ns / update_ns;

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"design_cells\": {},", design.netlist.num_cells());
    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let _ = writeln!(json, "  \"host_threads\": {host_threads},");
    let _ = writeln!(json, "  \"threads\": {},", rayon::current_num_threads());
    let _ = writeln!(json, "  \"route_grid\": {grid},");
    let _ = writeln!(json, "  \"route_capacity\": {capacity:.4},");
    let _ = writeln!(json, "  \"flow\": {{");
    for (label, r, s, comma) in
        [("baseline", &off, &off_sum, ","), ("route_aware", &on, &on_sum, ",")]
    {
        let _ = writeln!(
            json,
            "    \"{label}\": {{\"overflowed_frac\": {:.4}, \"max_overflow\": {:.3}, \
             \"avg_overflow\": {:.4}, \"hpwl\": {:.0}, \"wns\": {:.1}, \"tns\": {:.1}}}{comma}",
            s.overflowed_frac,
            s.max_overflow,
            s.avg_overflow,
            r.hpwl,
            r.wns,
            r.tns
        );
    }
    let _ = writeln!(
        json,
        "    \"overflowed_frac_reduction\": {overflow_delta:.4}, \
         \"hpwl_delta\": {hpwl_delta:.4}, \"tns_delta\": {tns_delta:.4}"
    );
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"map\": {{");
    let _ = writeln!(json, "    \"full_build_ns\": {build_ns:.0},");
    let _ = writeln!(
        json,
        "    \"incremental_update_ns\": {update_ns:.0}, \"moved_cells\": {n_moved}, \
         \"dirty_nets\": {}, \"speedup_vs_build\": {speedup:.2}",
        dirty.len()
    );
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");
    std::fs::write("BENCH_route.json", &json).expect("write BENCH_route.json");

    println!("design: {cells} cells, grid {grid}, calibrated capacity {capacity:.3}");
    println!("baseline   : {off_sum} | HPWL {:.0} | TNS {:.1}", off.hpwl, off.tns);
    println!("route-aware: {on_sum} | HPWL {:.0} | TNS {:.1}", on.hpwl, on.tns);
    println!(
        "overflowed-bin reduction {:.1}% | HPWL delta {:+.2}% | TNS delta {:+.2}%",
        overflow_delta * 100.0,
        hpwl_delta * 100.0,
        tns_delta * 100.0
    );
    println!(
        "map: full build {build_ns:.0} ns, incremental update ({n_moved} cells, {} nets) \
         {update_ns:.0} ns ({speedup:.1}x)",
        dirty.len()
    );
    println!("wrote BENCH_route.json");
}
