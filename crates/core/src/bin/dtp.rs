//! `dtp` — command-line front end for the differentiable-timing-driven
//! placement library.
//!
//! ```text
//! dtp gen   <name> <cells> <out_dir>        generate a synthetic design (Bookshelf + .lib + .sdc)
//! dtp sta   <bookshelf_prefix> <lib_file>   timing report for a placed design
//! dtp place <bookshelf_prefix_or_proxy>
//!           [--mode wirelength|net-weighting|differentiable|path-extraction]
//!           [--top-k N] [--extract-period N] [--path-decay F] [--pin-weight-cap F]
//!           [--out dir] [--svg file]
//!           [--bins N] [--no-density-fft] [--max-iters N] [--threads N]
//!           [--multilevel] [--cluster-ratio F] [--levels N]
//!           [--route] [--route-grid N] [--route-capacity C] [--route-weight W]
//!           [--inflation-max F] [--route-period N]
//!           [--observe] [--profile] [--metrics-out file] [--trace-out file]
//!           [--log-level error|warn|info|debug]
//! dtp proxy <sbN> [scale_denom]             print statistics of a superblue proxy
//! dtp trace validate <trace.jsonl>          schema-checked parse of a v2 trace
//! dtp trace diff <a.jsonl> <b.jsonl>
//!           [--abs F] [--rel F] [--field name:abs:rel]
//!                                           tolerance-aware trace comparison
//! dtp trace replay <trace.jsonl> [--design spec] [--out file]
//!                                           re-run the recorded flow, diff bit-for-bit
//! dtp trace report <trace.jsonl>            phase/level/convergence forensics
//! ```
//!
//! Mode selection is unified under `--mode`; the historical short names
//! `wl`, `nw` and `diff` still parse as deprecated aliases. The `--top-k`,
//! `--extract-period`, `--path-decay` and `--pin-weight-cap` knobs configure
//! `--mode path-extraction` and are ignored (with a warning) elsewhere.
//!
//! Designs can be given either as a Bookshelf prefix (path to
//! `X.{nodes,nets,pl,scl}`) or as a built-in proxy name (`sb1`…`sb18`).
//! Bookshelf carries no library binding, so `sta`/`place` on Bookshelf input
//! require the cells to use the synthetic PDK class names.
//!
//! Observability: `--profile` prints the end-of-run phase table,
//! `--metrics-out` writes `metrics.json`, `--trace-out` streams one JSON
//! object per placement iteration; any of the three implies `--observe`.
//! `--log-level warn` silences the informational summaries, leaving stdout
//! machine-clean (the `FlowResult` line only).

use dtp_core::{run_flow_observed, FlowConfig, FlowMode, PathExtractConfig};
use dtp_obs::{self as obs, Level, Observer, QorSummary};
use dtp_trace::{Tolerances, Trace};
use dtp_liberty::synth::synthetic_pdk;
use dtp_netlist::generate::{generate, superblue_proxy, GeneratorConfig};
use dtp_netlist::{bookshelf, Design, NetlistStats, Sdc};
use dtp_place::plot::{render_svg, PlotOptions};
use dtp_rsmt::build_forest;
use dtp_sta::{SlackHistogram, Timer, TimingReport};
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("gen") => cmd_gen(&args[1..]),
        Some("sta") => cmd_sta(&args[1..]),
        Some("place") => cmd_place(&args[1..]),
        Some("proxy") => cmd_proxy(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        _ => {
            eprintln!("usage: dtp <gen|sta|place|proxy|trace> ... (see --help in the crate docs)");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

type CliResult = Result<(), Box<dyn std::error::Error>>;

fn load_design(spec: &str) -> Result<Design, Box<dyn std::error::Error>> {
    if spec.starts_with("sb") || spec.starts_with("superblue") {
        return Ok(superblue_proxy(spec, dtp_netlist::generate::DEFAULT_PROXY_SCALE)?);
    }
    let prefix = Path::new(spec);
    // ICCAD-2015 bundle (.v + .def) takes precedence; fall back to Bookshelf.
    if prefix.with_extension("v").exists() && prefix.with_extension("def").exists() {
        Ok(dtp_netlist::iccad::read_iccad15(prefix)?)
    } else {
        Ok(bookshelf::read_design(prefix)?)
    }
}

fn cmd_gen(args: &[String]) -> CliResult {
    let [name, cells, out] = args else {
        return Err("usage: dtp gen <name> <cells> <out_dir>".into());
    };
    let cells: usize = cells.parse()?;
    let design = generate(&GeneratorConfig::named(name.clone(), cells))?;
    let dir = Path::new(out);
    bookshelf::write_design(&design, dir)?;
    dtp_netlist::iccad::write_iccad15(&design, dir)?;
    std::fs::write(dir.join(format!("{name}.lib")), dtp_liberty::write(&synthetic_pdk()))?;
    std::fs::write(
        dir.join(format!("{name}.sdc")),
        format!(
            "create_clock -period {} -name clk [get_ports clk]\n",
            design.constraints.clock_period
        ),
    )?;
    println!(
        "wrote {}/{name}.{{nodes,nets,pl,scl,classes,v,def,lib,sdc}}  ({})",
        dir.display(),
        NetlistStats::of(&design.netlist)
    );
    Ok(())
}

fn cmd_sta(args: &[String]) -> CliResult {
    let Some(spec) = args.first() else {
        return Err("usage: dtp sta <design> [lib_file]".into());
    };
    let design = load_design(spec)?;
    let lib = match args.get(1) {
        Some(path) => dtp_liberty::parse(&std::fs::read_to_string(path)?)?,
        None => synthetic_pdk(),
    };
    let timer = Timer::new(&design, &lib)?;
    let forest = build_forest(&design.netlist);
    let analysis = timer.analyze(&design.netlist, &forest);
    println!("{}", TimingReport::new(&timer, &design.netlist, &analysis));
    let lo = analysis.wns().min(0.0) * 1.05 - 1.0;
    let hi = (-lo * 0.5).max(design.constraints.clock_period * 0.5);
    println!("{}", SlackHistogram::new(&analysis, lo, hi, 12));
    Ok(())
}

fn cmd_place(args: &[String]) -> CliResult {
    let Some(spec) = args.first() else {
        return Err(
            "usage: dtp place <design> \
             [--mode wirelength|net-weighting|differentiable|path-extraction] \
             [--top-k N] [--extract-period N] [--path-decay F] [--pin-weight-cap F] \
             [--out dir] [--svg file] \
             [--bins N] [--no-density-fft] [--max-iters N] [--threads N] \
             [--multilevel] [--cluster-ratio F] [--levels N] \
             [--no-rsmt-tables] [--rsmt-table-max-degree N] \
             [--route] [--route-grid N] [--route-capacity C] [--route-weight W] \
             [--inflation-max F] [--route-period N] \
             [--observe] [--profile] [--metrics-out file] [--trace-out file] \
             [--log-level error|warn|info|debug]"
                .into(),
        );
    };
    let mut mode = FlowMode::differentiable();
    let mut config = FlowConfig::default();
    let mut pcfg = PathExtractConfig::default();
    let mut path_knobs_set = false;
    let mut out_dir: Option<String> = None;
    let mut svg_path: Option<String> = None;
    let mut profile = false;
    let mut metrics_out: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut i = 1;
    // Numeric option value parser (shared by the route knobs).
    fn num<T: std::str::FromStr>(
        args: &[String],
        i: usize,
    ) -> Result<T, Box<dyn std::error::Error>> {
        args.get(i + 1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("option `{}` needs a numeric value", args[i]).into())
    }
    while i < args.len() {
        match args[i].as_str() {
            "--mode" => {
                let name = args.get(i + 1).map(String::as_str);
                mode = match name {
                    Some("wirelength") => FlowMode::Wirelength,
                    Some("net-weighting") => FlowMode::net_weighting(),
                    Some("differentiable") => FlowMode::differentiable(),
                    Some("path-extraction") => FlowMode::path_extraction(),
                    // Deprecated short aliases (pre-unification spelling).
                    Some(alias @ ("wl" | "nw" | "diff")) => {
                        let (m, canonical) = match alias {
                            "wl" => (FlowMode::Wirelength, "wirelength"),
                            "nw" => (FlowMode::net_weighting(), "net-weighting"),
                            _ => (FlowMode::differentiable(), "differentiable"),
                        };
                        obs::warn!(
                            "warning: `--mode {alias}` is a deprecated alias; \
                             use `--mode {canonical}`"
                        );
                        m
                    }
                    other => {
                        return Err(format!(
                            "unknown mode {other:?} (wirelength|net-weighting|\
                             differentiable|path-extraction)"
                        )
                        .into())
                    }
                };
                i += 2;
            }
            "--top-k" => {
                pcfg.top_k = num(args, i)?;
                path_knobs_set = true;
                i += 2;
            }
            "--extract-period" => {
                pcfg.extract_period = num(args, i)?;
                path_knobs_set = true;
                i += 2;
            }
            "--path-decay" => {
                pcfg.path_decay = num(args, i)?;
                path_knobs_set = true;
                i += 2;
            }
            "--pin-weight-cap" => {
                pcfg.pin_weight_cap = num(args, i)?;
                path_knobs_set = true;
                i += 2;
            }
            "--out" => {
                out_dir = args.get(i + 1).cloned();
                i += 2;
            }
            "--svg" => {
                svg_path = args.get(i + 1).cloned();
                i += 2;
            }
            "--bins" => {
                config.bins = num(args, i)?;
                i += 2;
            }
            "--no-density-fft" => {
                config.density_fft = false;
                i += 1;
            }
            "--no-rsmt-tables" => {
                config.rsmt_tables = false;
                i += 1;
            }
            "--rsmt-table-max-degree" => {
                config.rsmt_table_max_degree = num(args, i)?;
                i += 2;
            }
            "--route" => {
                config.route_aware = true;
                i += 1;
            }
            "--route-grid" => {
                config.route_grid = num(args, i)?;
                i += 2;
            }
            "--route-capacity" => {
                config.route_capacity = num(args, i)?;
                i += 2;
            }
            "--route-weight" => {
                config.route_weight = num(args, i)?;
                i += 2;
            }
            "--inflation-max" => {
                config.inflation_max = num(args, i)?;
                i += 2;
            }
            "--route-period" => {
                config.route_update_period = num(args, i)?;
                i += 2;
            }
            "--multilevel" => {
                config.multilevel = true;
                i += 1;
            }
            "--cluster-ratio" => {
                config.cluster_ratio = num(args, i)?;
                i += 2;
            }
            "--levels" => {
                config.levels = num(args, i)?;
                i += 2;
            }
            "--max-iters" => {
                config.max_iters = num(args, i)?;
                i += 2;
            }
            "--threads" => {
                config.threads = num(args, i)?;
                i += 2;
            }
            "--observe" => {
                config.observe = true;
                i += 1;
            }
            "--profile" => {
                profile = true;
                config.observe = true;
                i += 1;
            }
            "--metrics-out" => {
                metrics_out = Some(
                    args.get(i + 1)
                        .ok_or("option `--metrics-out` needs a file path")?
                        .clone(),
                );
                config.observe = true;
                i += 2;
            }
            "--trace-out" => {
                trace_out = Some(
                    args.get(i + 1)
                        .ok_or("option `--trace-out` needs a file path")?
                        .clone(),
                );
                config.observe = true;
                i += 2;
            }
            "--log-level" => {
                let name = args.get(i + 1).ok_or("option `--log-level` needs a level")?;
                let level = Level::parse(name)
                    .ok_or_else(|| format!("unknown log level `{name}` (error|warn|info|debug)"))?;
                obs::log::set_level(level);
                i += 2;
            }
            other => return Err(format!("unknown option `{other}`").into()),
        }
    }
    // The FFT Poisson backend needs a power-of-two grid; round a custom
    // `--bins` up rather than silently dropping to the dense solver.
    if config.density_fft && !config.bins.is_power_of_two() {
        let rounded = config.bins.next_power_of_two();
        obs::warn!(
            "warning: --bins {} is not a power of two; rounding up to {rounded} so the \
             FFT density solver applies (use --no-density-fft to keep the exact grid)",
            config.bins
        );
        config.bins = rounded;
    }
    // Fold the path-extraction knobs into the selected mode (they may appear
    // on either side of `--mode` on the command line).
    match &mut mode {
        FlowMode::PathExtraction(c) => *c = pcfg,
        _ if path_knobs_set => obs::warn!(
            "warning: --top-k/--extract-period/--path-decay/--pin-weight-cap only \
             apply to --mode path-extraction; ignored"
        ),
        _ => {}
    }
    // Per-mode configuration, at info so stdout stays machine-clean at warn.
    match mode {
        FlowMode::Wirelength => obs::info!("mode wirelength: no timing mechanism"),
        FlowMode::NetWeighting(c) => obs::info!(
            "mode net-weighting: momentum {} max_boost {} sta_period {} start_iter {}",
            c.momentum,
            c.max_boost,
            c.sta_period,
            c.start_iter
        ),
        FlowMode::Differentiable(c) => obs::info!(
            "mode differentiable: gamma {} t1 {} t2 {} growth {} start_iter {} \
             steiner_rebuild_period {}",
            c.gamma,
            c.t1,
            c.t2,
            c.growth,
            c.start_iter,
            c.steiner_rebuild_period
        ),
        FlowMode::PathExtraction(c) => obs::info!(
            "mode path-extraction: top_k {} extract_period {} path_decay {} \
             pin_weight_cap {} start_iter {}",
            c.top_k,
            c.extract_period,
            c.path_decay,
            c.pin_weight_cap,
            c.start_iter
        ),
    }
    let mut design = load_design(spec)?;
    if design.constraints.clock_port.is_none() && design.constraints.clock_period >= 1000.0 {
        // Bookshelf input with no SDC: pick a period that creates pressure.
        design.constraints = Sdc::with_period(500.0);
    }
    let lib = synthetic_pdk();
    let mut observer = Observer::new(config.observe);
    // Recorded in the trace header so `dtp trace replay` can reload the
    // same design without being told where it came from.
    observer.set_design_source(spec);
    if let Some(path) = &trace_out {
        let file = std::fs::File::create(path)
            .map_err(|e| format!("cannot create --trace-out {path}: {e}"))?;
        observer.set_trace_writer(Box::new(std::io::BufWriter::new(file)));
    }
    let r = run_flow_observed(&design, &lib, mode, &config, &mut observer)?;
    println!("{r}");
    obs::info!(
        "congestion ({}x{} grid, capacity {}): {}",
        config.route_grid, config.route_grid, config.route_capacity, r.congestion
    );
    if r.rsmt.trees > 0 {
        obs::info!(
            "steiner forest ({}): {}",
            if config.rsmt_tables { "topology tables" } else { "legacy" },
            r.rsmt
        );
    }
    if profile {
        // Explicitly requested output: printed regardless of --log-level.
        print!("{}", observer.report().table());
    }
    if let Some(path) = &metrics_out {
        let qor = QorSummary {
            design: r.design.clone(),
            mode: r.mode.to_string(),
            hpwl: r.hpwl,
            wns: r.wns,
            tns: r.tns,
            iterations: r.iterations as u64,
            runtime: r.runtime,
            timing_runtime: r.timing_runtime,
        };
        std::fs::write(path, observer.report().to_json(Some(&qor)))
            .map_err(|e| format!("cannot write --metrics-out {path}: {e}"))?;
        obs::info!("wrote {path}");
    }
    if let Some(path) = &trace_out {
        obs::info!("wrote {path}");
    }
    if let Some(dir) = out_dir {
        design.netlist.set_positions(&r.xs, &r.ys);
        bookshelf::write_design(&design, Path::new(&dir))?;
        obs::info!("wrote placed design to {dir}/");
    }
    if let Some(path) = svg_path {
        // Color by endpoint-cone slack: hotter = more violating pins.
        design.netlist.set_positions(&r.xs, &r.ys);
        let timer = Timer::new(&design, &lib)?;
        let forest = build_forest(&design.netlist);
        let analysis = timer.analyze(&design.netlist, &forest);
        let wns = analysis.wns().min(-1.0);
        let heat: Vec<f64> = design
            .netlist
            .cell_ids()
            .map(|c| {
                let worst = design
                    .netlist
                    .cell(c)
                    .pins()
                    .iter()
                    .map(|&p| analysis.pin_slack(p))
                    .fold(f64::INFINITY, f64::min);
                if worst.is_finite() { (worst / wns).clamp(0.0, 1.0) } else { 0.0 }
            })
            .collect();
        let opts = PlotOptions {
            heat: Some(heat),
            title: format!("{} {} WNS {:.0}ps", r.mode, r.design, r.wns),
            ..PlotOptions::default()
        };
        std::fs::write(&path, render_svg(&design, Some(&r.xs), Some(&r.ys), &opts))?;
        obs::info!("wrote {path}");
    }
    Ok(())
}

fn cmd_proxy(args: &[String]) -> CliResult {
    let Some(name) = args.first() else {
        return Err("usage: dtp proxy <sbN> [scale_denom]".into());
    };
    let denom: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(150.0);
    let design = superblue_proxy(name, 1.0 / denom)?;
    println!("{}: {}", design.name, NetlistStats::of(&design.netlist));
    println!(
        "region {} x {} um, {} rows, clock period {} ps, utilization {:.2}",
        design.region.width(),
        design.region.height(),
        design.rows.len(),
        design.constraints.clock_period,
        design.utilization()
    );
    Ok(())
}

/// An in-memory trace sink shared between the observer (which owns a boxed
/// writer) and the replay driver (which reads the bytes back afterwards).
#[derive(Clone, Default)]
struct SharedBuf(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);

impl std::io::Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().expect("trace buffer poisoned").extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

impl SharedBuf {
    fn take(&self) -> Vec<u8> {
        std::mem::take(&mut *self.0.lock().expect("trace buffer poisoned"))
    }
}

fn load_trace(path: &str) -> Result<Trace, Box<dyn std::error::Error>> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    Trace::parse(&text).map_err(|e| format!("{path}: {e}").into())
}

const TRACE_USAGE: &str = "usage: dtp trace <validate|diff|replay|report> ...\n\
    dtp trace validate <trace.jsonl>\n\
    dtp trace diff <a.jsonl> <b.jsonl> [--abs F] [--rel F] [--field name:abs:rel]\n\
    dtp trace replay <trace.jsonl> [--design spec] [--out file]\n\
    dtp trace report <trace.jsonl>";

fn cmd_trace(args: &[String]) -> CliResult {
    match args.first().map(String::as_str) {
        Some("validate") => cmd_trace_validate(&args[1..]),
        Some("diff") => cmd_trace_diff(&args[1..]),
        Some("replay") => cmd_trace_replay(&args[1..]),
        Some("report") => cmd_trace_report(&args[1..]),
        _ => Err(TRACE_USAGE.into()),
    }
}

fn cmd_trace_validate(args: &[String]) -> CliResult {
    let [path] = args else {
        return Err("usage: dtp trace validate <trace.jsonl>".into());
    };
    let t = load_trace(path)?;
    println!(
        "{path}: valid {} trace — design {} ({} cells), mode {}, seed {}, \
         {} iteration record(s), {} span record(s), levels {:?}",
        t.header.schema,
        t.header.design,
        t.header.cells,
        t.header.mode,
        t.header.seed,
        t.iters.len(),
        t.spans.len(),
        t.levels()
    );
    Ok(())
}

fn cmd_trace_diff(args: &[String]) -> CliResult {
    let (Some(path_a), Some(path_b)) = (args.first(), args.get(1)) else {
        return Err(
            "usage: dtp trace diff <a.jsonl> <b.jsonl> [--abs F] [--rel F] \
             [--field name:abs:rel]"
                .into(),
        );
    };
    let mut tol = Tolerances::zero();
    let mut i = 2;
    while i < args.len() {
        match args[i].as_str() {
            "--abs" => {
                tol.default_abs = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .ok_or("option `--abs` needs a numeric value")?;
                i += 2;
            }
            "--rel" => {
                tol.default_rel = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .ok_or("option `--rel` needs a numeric value")?;
                i += 2;
            }
            "--field" => {
                let spec = args.get(i + 1).ok_or("option `--field` needs name:abs:rel")?;
                let parts: Vec<&str> = spec.split(':').collect();
                let [name, abs, rel] = parts[..] else {
                    return Err(format!("bad --field spec `{spec}` (want name:abs:rel)").into());
                };
                tol.per_field.push((
                    name.to_string(),
                    abs.parse().map_err(|_| format!("bad abs in `{spec}`"))?,
                    rel.parse().map_err(|_| format!("bad rel in `{spec}`"))?,
                ));
                i += 2;
            }
            other => return Err(format!("unknown option `{other}`").into()),
        }
    }
    let a = load_trace(path_a)?;
    let b = load_trace(path_b)?;
    let report = dtp_trace::diff(&a, &b, &tol);
    print!("{}", report.render());
    if report.is_clean() {
        Ok(())
    } else {
        Err(format!("traces diverge: {path_a} vs {path_b}").into())
    }
}

fn cmd_trace_replay(args: &[String]) -> CliResult {
    let Some(path) = args.first() else {
        return Err("usage: dtp trace replay <trace.jsonl> [--design spec] [--out file]".into());
    };
    let mut design_override: Option<String> = None;
    let mut out_path: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--design" => {
                design_override =
                    Some(args.get(i + 1).ok_or("option `--design` needs a design spec")?.clone());
                i += 2;
            }
            "--out" => {
                out_path =
                    Some(args.get(i + 1).ok_or("option `--out` needs a file path")?.clone());
                i += 2;
            }
            "--log-level" => {
                let name = args.get(i + 1).ok_or("option `--log-level` needs a level")?;
                let level = Level::parse(name)
                    .ok_or_else(|| format!("unknown log level `{name}` (error|warn|info|debug)"))?;
                obs::log::set_level(level);
                i += 2;
            }
            other => return Err(format!("unknown option `{other}`").into()),
        }
    }
    let recorded = load_trace(path)?;
    // Rebuild the exact run configuration from the header. Both
    // reconstructions are strict: a trace from a different binary version
    // fails loudly here instead of replaying with silently-defaulted knobs.
    let mut config = FlowConfig::from_trace_fields(&recorded.header.config)
        .map_err(|e| format!("{path}: header config: {e}"))?;
    let mode = FlowMode::from_trace(&recorded.header.mode, &recorded.header.mode_config)
        .map_err(|e| format!("{path}: header mode: {e}"))?;
    config.observe = true; // replay must record, whatever the original run logged
    let spec = match design_override.or_else(|| recorded.header.source.clone()) {
        Some(s) => s,
        None => {
            return Err(format!(
                "{path}: trace header has no design source; pass --design <spec>"
            )
            .into())
        }
    };
    let mut design = load_design(&spec)?;
    if design.constraints.clock_port.is_none() && design.constraints.clock_period >= 1000.0 {
        // Mirror cmd_place's Bookshelf fallback so replays of `dtp place`
        // runs see the same constraints.
        design.constraints = Sdc::with_period(500.0);
    }
    // Design fingerprint gate: replaying against the wrong netlist would
    // produce a wall of metric diffs; fail with the real cause instead.
    let (cells, nets, pins) = (
        design.netlist.num_cells() as u64,
        design.netlist.num_nets() as u64,
        design.netlist.num_pins() as u64,
    );
    if (cells, nets, pins) != (recorded.header.cells, recorded.header.nets, recorded.header.pins)
    {
        return Err(format!(
            "design fingerprint mismatch: trace records {} cells / {} nets / {} pins, \
             `{spec}` has {cells} / {nets} / {pins}",
            recorded.header.cells, recorded.header.nets, recorded.header.pins
        )
        .into());
    }
    obs::info!(
        "replaying {} (mode {}, seed {}, {} recorded iterations) on `{spec}`",
        recorded.header.design,
        recorded.header.mode,
        recorded.header.seed,
        recorded.iters.len()
    );
    let lib = synthetic_pdk();
    let buf = SharedBuf::default();
    let mut observer = Observer::new(true);
    observer.set_design_source(&spec);
    observer.set_trace_writer(Box::new(buf.clone()));
    let r = run_flow_observed(&design, &lib, mode, &config, &mut observer)?;
    println!("{r}");
    let bytes = buf.take();
    if let Some(out) = &out_path {
        std::fs::write(out, &bytes).map_err(|e| format!("cannot write --out {out}: {e}"))?;
        obs::info!("wrote {out}");
    }
    let fresh = Trace::parse(std::str::from_utf8(&bytes)?)
        .map_err(|e| format!("replayed trace: {e}"))?;
    if fresh.canonical_bytes() == recorded.canonical_bytes() {
        println!(
            "replay matches: {} iteration record(s) bit-identical to {path}",
            fresh.iters.len()
        );
        return Ok(());
    }
    // Not bit-identical — run the structured diff to name the first
    // diverging iteration and field.
    let report = dtp_trace::diff(&recorded, &fresh, &Tolerances::zero());
    print!("{}", report.render());
    Err(format!("replay diverges from {path}").into())
}

fn cmd_trace_report(args: &[String]) -> CliResult {
    let [path] = args else {
        return Err("usage: dtp trace report <trace.jsonl>".into());
    };
    let t = load_trace(path)?;
    print!("{}", dtp_trace::report(&t));
    Ok(())
}
