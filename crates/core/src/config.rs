//! Flow configuration: the knobs of §4 of the paper, plus the trace-header
//! round trip: every config serializes into the v2 trace header's generic
//! key/value fields and reconstructs from them (strictly — unknown or
//! missing keys are errors), which is what makes `dtp trace replay` work
//! from nothing but a recorded trace.

use dtp_obs::json::Value;
use serde::{Deserialize, Serialize};

/// Configuration of the differentiable timing objective (the paper's method).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DiffTimingConfig {
    /// LSE smoothing γ (ps); the paper sets "around 100".
    pub gamma: f64,
    /// Initial TNS weight t1. The paper reports "around 0.01" on the
    /// ICCAD-2015 superblue suite; on the scaled synthetic proxies the same
    /// gradient balance is reached at 0.04 (the paper itself tunes t1/t2 per
    /// benchmark, §4).
    pub t1: f64,
    /// Initial WNS weight t2 (paper: "around 0.0001"; recalibrated like t1).
    pub t2: f64,
    /// Multiplicative growth of t1/t2 per iteration; the paper increases
    /// them "by 1 % after each iteration".
    pub growth: f64,
    /// Iteration at which timing optimization starts ("around the 100th
    /// iteration where cells have been initially spread out").
    pub start_iter: usize,
    /// Rebuild the Steiner trees every this many iterations; in between the
    /// Steiner points ride along with their branches (§3.6: "every 10
    /// iterations").
    pub steiner_rebuild_period: usize,
    /// Timing-gradient preconditioning (the paper's §5 future-work item):
    /// when > 0, the timing gradient is rescaled each iteration so its
    /// ∞-norm equals this fraction of the wirelength gradient's ∞-norm,
    /// which decouples the effective timing pressure from t1/t2 magnitudes.
    /// 0 disables (the paper's published behaviour).
    pub grad_norm_target: f64,
    /// Wire delay metric used by the differentiable timer.
    pub wire_model: WireModelChoice,
}

/// Serializable mirror of [`dtp_sta::WireModel`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum WireModelChoice {
    /// Elmore first-moment delay.
    #[default]
    Elmore,
    /// D2M two-moment delay metric.
    D2m,
}

impl From<WireModelChoice> for dtp_sta::WireModel {
    fn from(w: WireModelChoice) -> Self {
        match w {
            WireModelChoice::Elmore => dtp_sta::WireModel::Elmore,
            WireModelChoice::D2m => dtp_sta::WireModel::D2m,
        }
    }
}

impl WireModelChoice {
    /// Stable lowercase name used in the trace header.
    pub fn name(self) -> &'static str {
        match self {
            WireModelChoice::Elmore => "elmore",
            WireModelChoice::D2m => "d2m",
        }
    }

    /// Inverse of [`WireModelChoice::name`].
    pub fn from_name(name: &str) -> Option<WireModelChoice> {
        match name {
            "elmore" => Some(WireModelChoice::Elmore),
            "d2m" => Some(WireModelChoice::D2m),
            _ => None,
        }
    }
}

impl Default for DiffTimingConfig {
    fn default() -> Self {
        DiffTimingConfig {
            gamma: 100.0,
            t1: 0.04,
            t2: 0.0004,
            growth: 1.01,
            start_iter: 100,
            steiner_rebuild_period: 10,
            grad_norm_target: 0.0,
            wire_model: WireModelChoice::Elmore,
        }
    }
}

/// Configuration of the momentum net-weighting baseline \[24\].
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct NetWeightConfig {
    /// Momentum coefficient for the weight update.
    pub momentum: f64,
    /// Maximum instantaneous weight boost for a fully critical net.
    pub max_boost: f64,
    /// Run the (exact) STA and update weights every this many iterations.
    pub sta_period: usize,
    /// Iteration at which weighting starts.
    pub start_iter: usize,
}

impl Default for NetWeightConfig {
    fn default() -> Self {
        NetWeightConfig {
            momentum: 0.5,
            max_boost: 2.0,
            sta_period: 1,
            start_iter: 100,
        }
    }
}

/// Configuration of the top-K critical-path-extraction timing mode.
///
/// Instead of back-propagating through every timing arc (the differentiable
/// objective) or exact-analyzing every endpoint into momentum net weights
/// (the net-weighting baseline), this mode periodically runs a forward-only
/// exact analysis, extracts the `top_k` worst paths
/// ([`dtp_sta::Timer::extract_paths_into`]) and converts the per-pin
/// criticalities into wirelength-model net weights: a net touched by a pin
/// of criticality `c` gets weight `1 + (pin_weight_cap − 1) · c` (max over
/// its pins).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PathExtractConfig {
    /// Number of worst endpoints traced per extraction.
    pub top_k: usize,
    /// Run the analysis + extraction every this many iterations.
    pub extract_period: usize,
    /// Criticality decay per path rank (rank r is scaled by `decay^r`).
    pub path_decay: f64,
    /// Net weight of a fully critical (rank-0, slack = WNS) pin; weights
    /// interpolate between 1 and this cap with criticality. The sparse
    /// weights need a much stronger pull than net-weighting's dense boost:
    /// only a few dozen nets carry any timing force, so a small cap leaves
    /// the critical cone dominated by the wirelength term (the bench
    /// frontier loses ~20% WNS at cap 3 and ~1% at cap 8).
    pub pin_weight_cap: f64,
    /// Iteration at which path-driven weighting starts.
    pub start_iter: usize,
}

impl Default for PathExtractConfig {
    fn default() -> Self {
        PathExtractConfig {
            top_k: 32,
            extract_period: 5,
            path_decay: 0.9,
            pin_weight_cap: 8.0,
            start_iter: 100,
        }
    }
}

/// Which placement flow to run (the three columns of Table 3, plus the
/// path-extraction mode).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum FlowMode {
    /// Wirelength-driven only (DREAMPlace \[16\]).
    Wirelength,
    /// Net-weighting timing-driven (DREAMPlace 4.0 \[24\]).
    NetWeighting(NetWeightConfig),
    /// Differentiable-timing-driven (this paper).
    Differentiable(DiffTimingConfig),
    /// Top-K critical-path extraction driving net weights (the cheap, sharp
    /// timing signal of arXiv 2503.11674).
    PathExtraction(PathExtractConfig),
}

impl FlowMode {
    /// The paper's method with default hyperparameters.
    pub fn differentiable() -> FlowMode {
        FlowMode::Differentiable(DiffTimingConfig::default())
    }

    /// The net-weighting baseline with default hyperparameters.
    pub fn net_weighting() -> FlowMode {
        FlowMode::NetWeighting(NetWeightConfig::default())
    }

    /// The path-extraction mode with default hyperparameters.
    pub fn path_extraction() -> FlowMode {
        FlowMode::PathExtraction(PathExtractConfig::default())
    }

    /// Short label used in tables.
    pub fn label(&self) -> &'static str {
        match self {
            FlowMode::Wirelength => "DREAMPlace",
            FlowMode::NetWeighting(_) => "NetWeighting",
            FlowMode::Differentiable(_) => "Ours",
            FlowMode::PathExtraction(_) => "PathExtract",
        }
    }

    /// Canonical lowercase mode name recorded in the trace header (also the
    /// CLI `--mode` spelling).
    pub fn name(&self) -> &'static str {
        match self {
            FlowMode::Wirelength => "wirelength",
            FlowMode::NetWeighting(_) => "net-weighting",
            FlowMode::Differentiable(_) => "differentiable",
            FlowMode::PathExtraction(_) => "path-extraction",
        }
    }

    /// The mode's hyperparameters as ordered trace-header fields (empty for
    /// the wirelength-only mode).
    pub fn trace_fields(&self) -> Vec<(String, Value)> {
        let n = |key: &str, v: f64| (key.to_string(), Value::Num(v));
        let u = |key: &str, v: usize| (key.to_string(), Value::Num(v as f64));
        match self {
            FlowMode::Wirelength => Vec::new(),
            FlowMode::NetWeighting(c) => vec![
                n("momentum", c.momentum),
                n("max_boost", c.max_boost),
                u("sta_period", c.sta_period),
                u("start_iter", c.start_iter),
            ],
            FlowMode::Differentiable(c) => vec![
                n("gamma", c.gamma),
                n("t1", c.t1),
                n("t2", c.t2),
                n("growth", c.growth),
                u("start_iter", c.start_iter),
                u("steiner_rebuild_period", c.steiner_rebuild_period),
                n("grad_norm_target", c.grad_norm_target),
                (
                    "wire_model".to_string(),
                    Value::Str(c.wire_model.name().to_string()),
                ),
            ],
            FlowMode::PathExtraction(c) => vec![
                u("top_k", c.top_k),
                u("extract_period", c.extract_period),
                n("path_decay", c.path_decay),
                n("pin_weight_cap", c.pin_weight_cap),
                u("start_iter", c.start_iter),
            ],
        }
    }

    /// Reconstructs a mode from its trace-header name and fields, strictly:
    /// unknown names, unknown keys, missing keys, and wrong value types are
    /// all errors.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending mode name or field.
    pub fn from_trace(name: &str, fields: &[(String, Value)]) -> Result<FlowMode, String> {
        match name {
            "wirelength" => {
                reject_unknown(fields, &[])?;
                Ok(FlowMode::Wirelength)
            }
            "net-weighting" => {
                reject_unknown(fields, &["momentum", "max_boost", "sta_period", "start_iter"])?;
                Ok(FlowMode::NetWeighting(NetWeightConfig {
                    momentum: num(fields, "momentum")?,
                    max_boost: num(fields, "max_boost")?,
                    sta_period: int(fields, "sta_period")?,
                    start_iter: int(fields, "start_iter")?,
                }))
            }
            "differentiable" => {
                reject_unknown(
                    fields,
                    &[
                        "gamma",
                        "t1",
                        "t2",
                        "growth",
                        "start_iter",
                        "steiner_rebuild_period",
                        "grad_norm_target",
                        "wire_model",
                    ],
                )?;
                let wire_model = string(fields, "wire_model")?;
                Ok(FlowMode::Differentiable(DiffTimingConfig {
                    gamma: num(fields, "gamma")?,
                    t1: num(fields, "t1")?,
                    t2: num(fields, "t2")?,
                    growth: num(fields, "growth")?,
                    start_iter: int(fields, "start_iter")?,
                    steiner_rebuild_period: int(fields, "steiner_rebuild_period")?,
                    grad_norm_target: num(fields, "grad_norm_target")?,
                    wire_model: WireModelChoice::from_name(wire_model)
                        .ok_or_else(|| format!("unknown wire model `{wire_model}`"))?,
                }))
            }
            "path-extraction" => {
                reject_unknown(
                    fields,
                    &["top_k", "extract_period", "path_decay", "pin_weight_cap", "start_iter"],
                )?;
                Ok(FlowMode::PathExtraction(PathExtractConfig {
                    top_k: int(fields, "top_k")?,
                    extract_period: int(fields, "extract_period")?,
                    path_decay: num(fields, "path_decay")?,
                    pin_weight_cap: num(fields, "pin_weight_cap")?,
                    start_iter: int(fields, "start_iter")?,
                }))
            }
            other => Err(format!("unknown flow mode `{other}`")),
        }
    }
}

/// Global placement engine configuration (mode-independent knobs).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FlowConfig {
    /// Maximum global-placement iterations.
    pub max_iters: usize,
    /// Stop when the density overflow drops below this ("the same stop
    /// criterion on density overflow" for all flows, §4).
    pub stop_overflow: f64,
    /// Density bin grid (bins × bins).
    pub bins: usize,
    /// Target bin density.
    pub target_density: f64,
    /// Use the O(N log N) FFT-based spectral Poisson solver for the density
    /// model. Only takes effect when `bins` is a power of two (the radix-2
    /// transforms require it); other grids fall back to the dense reference
    /// transforms regardless. `false` forces the dense path everywhere.
    pub density_fft: bool,
    /// Initial density weight λ as a fraction of the wirelength gradient
    /// norm; 0 = auto-balance.
    pub lambda_init: f64,
    /// Multiplicative λ growth per iteration (cell-spreading pressure).
    pub lambda_growth: f64,
    /// How often (iterations) the trace records exact WNS/TNS; 0 = never
    /// (cheapest), 1 = every iteration (Figure-8 mode).
    pub trace_timing_every: usize,
    /// Random seed for the initial center-cluster placement.
    pub seed: u64,
    /// Number of detailed-placement passes after legalization.
    pub detail_passes: usize,
    /// Which legalization algorithm runs after global placement.
    pub legalizer: LegalizerChoice,
    /// Drive the per-iteration timing analyses through the dirty-set
    /// incremental pipeline (per-net Steiner maintenance, incremental STA
    /// and scratch-buffer reuse). `false` restores the legacy behaviour:
    /// a blanket periodic forest rebuild and a full analysis every
    /// timing iteration.
    pub incremental_timing: bool,
    /// Minimum Manhattan displacement (µm) below which a cell does not
    /// dirty its nets. 0 = any nonzero movement counts.
    pub dirty_threshold: f64,
    /// A net's Steiner topology is rebuilt when the accumulated worst cell
    /// drift since its last build exceeds this fraction of the net's pin
    /// bounding-box half-perimeter; until then only node coordinates are
    /// updated.
    pub topo_dirty_frac: f64,
    /// Build the in-loop Steiner forest from the FLUTE-style topology
    /// tables: optimal topologies at degree 4, near-optimal (clamped to
    /// never lose to Prim) at degrees 5–9, plus the per-net sequence cache
    /// that turns order-preserving moves into coordinate-only re-embeds.
    /// `false` keeps the legacy exact-≤4 / Prim-≥5 constructions and leaves
    /// the flow trajectory bit-for-bit identical to a build without the
    /// tables.
    pub rsmt_tables: bool,
    /// Largest net degree served by the topology tables (clamped to 9);
    /// nets above it use the Prim heuristic. Lowering this trades
    /// wirelength accuracy for smaller per-class table generation cost.
    pub rsmt_table_max_degree: usize,
    /// Fall back to a full (non-incremental) analysis when more than this
    /// fraction of nets is dirty in one iteration — past that point the
    /// frontier sweep re-evaluates most of the graph anyway and the
    /// bookkeeping is pure overhead.
    pub incremental_fallback_frac: f64,
    /// Enable the routability subsystem: the differentiable congestion
    /// penalty joins the objective and the RUDY feedback loop (cell
    /// inflation + congested-net weighting) runs every
    /// [`route_update_period`](FlowConfig::route_update_period) iterations.
    /// `false` leaves the flow trajectory bit-for-bit identical to a build
    /// without the subsystem.
    pub route_aware: bool,
    /// Routing-congestion grid (bins × bins), for both the exact RUDY map
    /// and the smoothed penalty.
    pub route_grid: usize,
    /// Per-direction routing supply in wire-µm per µm² of bin area (the
    /// per-bin capacity is this times the bin area).
    pub route_capacity: f64,
    /// Strength of the congestion pressure: the congestion gradient is
    /// rescaled so its ∞-norm equals this fraction of the combined
    /// wirelength+density gradient's ∞-norm, and congested nets get their
    /// wirelength weight boosted by up to `1 + route_weight`.
    pub route_weight: f64,
    /// Cap on the congestion-driven per-cell area inflation factor.
    pub inflation_max: f64,
    /// Run the RUDY feedback (inflation + net reweighting) every this many
    /// iterations once congestion optimization is active.
    pub route_update_period: usize,
    /// Enable the observability subsystem (`dtp-obs`): per-phase span
    /// accumulation, the counters/gauges registry, the iteration ring
    /// buffer, and (when the caller attaches sinks via
    /// [`run_flow_observed`](crate::run_flow_observed)) the JSONL trace
    /// stream. `false` is bit-for-bit inert on the placement trajectory and
    /// near-zero-cost: only the STA-phase clock reads that always existed
    /// remain, so [`FlowResult::timing_runtime`](crate::FlowResult) keeps
    /// working either way.
    pub observe: bool,
    /// Worker threads for the parallel phases (Nesterov update, gradient
    /// sweeps, legalization bands). 0 = the ambient pool (the process-global
    /// default, or whatever [`rayon::with_pool`] scope encloses the call);
    /// any other value runs the flow on a dedicated pool of that width.
    /// Every parallel kernel reduces in fixed chunk order, so the placement
    /// trajectory is bit-for-bit identical for every value of this knob.
    pub threads: usize,
    /// Run the multi-level (clustered) V-cycle: coarsen the netlist
    /// [`levels`](FlowConfig::levels)−1 times by
    /// [`cluster_ratio`](FlowConfig::cluster_ratio)× each, place the coarsest
    /// proxy with the cheap wirelength+density objective, then interpolate
    /// and refine level by level, reserving the full differentiable-timing
    /// gradient for the finest level. `false` is bit-for-bit inert: the flow
    /// is identical to a build without the subsystem.
    pub multilevel: bool,
    /// Per-level coarsening ratio of the multi-level flow (≈ how many fine
    /// cells merge into one cluster per level). Values ≤ 1 disable merging.
    pub cluster_ratio: f64,
    /// Number of placement levels in the multi-level flow (1 = flat; each
    /// extra level adds one coarsening pass). Ignored unless
    /// [`multilevel`](FlowConfig::multilevel) is set.
    pub levels: usize,
}

/// Legalization algorithm selection.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum LegalizerChoice {
    /// Abacus row clustering (minimum quadratic displacement; default).
    #[default]
    Abacus,
    /// Greedy Tetris frontier (faster, cruder).
    Tetris,
}

impl LegalizerChoice {
    /// Stable lowercase name used in the trace header.
    pub fn name(self) -> &'static str {
        match self {
            LegalizerChoice::Abacus => "abacus",
            LegalizerChoice::Tetris => "tetris",
        }
    }

    /// Inverse of [`LegalizerChoice::name`].
    pub fn from_name(name: &str) -> Option<LegalizerChoice> {
        match name {
            "abacus" => Some(LegalizerChoice::Abacus),
            "tetris" => Some(LegalizerChoice::Tetris),
            _ => None,
        }
    }
}

/// The keys of [`FlowConfig::trace_fields`], in emission order.
const CONFIG_KEYS: [&str; 28] = [
    "max_iters",
    "stop_overflow",
    "bins",
    "target_density",
    "density_fft",
    "lambda_init",
    "lambda_growth",
    "trace_timing_every",
    "seed",
    "detail_passes",
    "legalizer",
    "incremental_timing",
    "dirty_threshold",
    "topo_dirty_frac",
    "rsmt_tables",
    "rsmt_table_max_degree",
    "incremental_fallback_frac",
    "route_aware",
    "route_grid",
    "route_capacity",
    "route_weight",
    "inflation_max",
    "route_update_period",
    "observe",
    "threads",
    "multilevel",
    "cluster_ratio",
    "levels",
];

fn lookup<'a>(fields: &'a [(String, Value)], key: &str) -> Result<&'a Value, String> {
    fields
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing config field `{key}`"))
}

fn num(fields: &[(String, Value)], key: &str) -> Result<f64, String> {
    lookup(fields, key)?
        .as_f64()
        .ok_or_else(|| format!("config field `{key}` is not a number"))
}

fn int(fields: &[(String, Value)], key: &str) -> Result<usize, String> {
    let v = num(fields, key)?;
    if v < 0.0 || v.fract() != 0.0 || v > usize::MAX as f64 {
        return Err(format!("config field `{key}` is not a non-negative integer"));
    }
    Ok(v as usize)
}

fn boolean(fields: &[(String, Value)], key: &str) -> Result<bool, String> {
    lookup(fields, key)?
        .as_bool()
        .ok_or_else(|| format!("config field `{key}` is not a boolean"))
}

fn string<'a>(fields: &'a [(String, Value)], key: &str) -> Result<&'a str, String> {
    lookup(fields, key)?
        .as_str()
        .ok_or_else(|| format!("config field `{key}` is not a string"))
}

fn reject_unknown(fields: &[(String, Value)], known: &[&str]) -> Result<(), String> {
    for (k, _) in fields {
        if !known.contains(&k.as_str()) {
            return Err(format!("unknown config field `{k}`"));
        }
    }
    Ok(())
}

impl FlowConfig {
    /// Serializes every knob into ordered trace-header fields. The seed is
    /// a string so the full `u64` range survives the f64 number pipeline;
    /// enums use their stable lowercase names.
    pub fn trace_fields(&self) -> Vec<(String, Value)> {
        let n = |key: &str, v: f64| (key.to_string(), Value::Num(v));
        let u = |key: &str, v: usize| (key.to_string(), Value::Num(v as f64));
        let b = |key: &str, v: bool| (key.to_string(), Value::Bool(v));
        vec![
            u("max_iters", self.max_iters),
            n("stop_overflow", self.stop_overflow),
            u("bins", self.bins),
            n("target_density", self.target_density),
            b("density_fft", self.density_fft),
            n("lambda_init", self.lambda_init),
            n("lambda_growth", self.lambda_growth),
            u("trace_timing_every", self.trace_timing_every),
            ("seed".to_string(), Value::Str(self.seed.to_string())),
            u("detail_passes", self.detail_passes),
            (
                "legalizer".to_string(),
                Value::Str(self.legalizer.name().to_string()),
            ),
            b("incremental_timing", self.incremental_timing),
            n("dirty_threshold", self.dirty_threshold),
            n("topo_dirty_frac", self.topo_dirty_frac),
            b("rsmt_tables", self.rsmt_tables),
            u("rsmt_table_max_degree", self.rsmt_table_max_degree),
            n("incremental_fallback_frac", self.incremental_fallback_frac),
            b("route_aware", self.route_aware),
            u("route_grid", self.route_grid),
            n("route_capacity", self.route_capacity),
            n("route_weight", self.route_weight),
            n("inflation_max", self.inflation_max),
            u("route_update_period", self.route_update_period),
            b("observe", self.observe),
            u("threads", self.threads),
            b("multilevel", self.multilevel),
            n("cluster_ratio", self.cluster_ratio),
            u("levels", self.levels),
        ]
    }

    /// Reconstructs a config from trace-header fields, strictly: every knob
    /// must be present with the right type, and unknown keys are errors (a
    /// trace from a newer binary with more knobs must not silently replay
    /// with defaults for the extras).
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending field.
    pub fn from_trace_fields(fields: &[(String, Value)]) -> Result<FlowConfig, String> {
        reject_unknown(fields, &CONFIG_KEYS)?;
        let legalizer_name = string(fields, "legalizer")?;
        Ok(FlowConfig {
            max_iters: int(fields, "max_iters")?,
            stop_overflow: num(fields, "stop_overflow")?,
            bins: int(fields, "bins")?,
            target_density: num(fields, "target_density")?,
            density_fft: boolean(fields, "density_fft")?,
            lambda_init: num(fields, "lambda_init")?,
            lambda_growth: num(fields, "lambda_growth")?,
            trace_timing_every: int(fields, "trace_timing_every")?,
            seed: string(fields, "seed")?
                .parse()
                .map_err(|_| "config field `seed` is not a u64 string".to_string())?,
            detail_passes: int(fields, "detail_passes")?,
            legalizer: LegalizerChoice::from_name(legalizer_name)
                .ok_or_else(|| format!("unknown legalizer `{legalizer_name}`"))?,
            incremental_timing: boolean(fields, "incremental_timing")?,
            dirty_threshold: num(fields, "dirty_threshold")?,
            topo_dirty_frac: num(fields, "topo_dirty_frac")?,
            rsmt_tables: boolean(fields, "rsmt_tables")?,
            rsmt_table_max_degree: int(fields, "rsmt_table_max_degree")?,
            incremental_fallback_frac: num(fields, "incremental_fallback_frac")?,
            route_aware: boolean(fields, "route_aware")?,
            route_grid: int(fields, "route_grid")?,
            route_capacity: num(fields, "route_capacity")?,
            route_weight: num(fields, "route_weight")?,
            inflation_max: num(fields, "inflation_max")?,
            route_update_period: int(fields, "route_update_period")?,
            observe: boolean(fields, "observe")?,
            threads: int(fields, "threads")?,
            multilevel: boolean(fields, "multilevel")?,
            cluster_ratio: num(fields, "cluster_ratio")?,
            levels: int(fields, "levels")?,
        })
    }
}

impl Default for FlowConfig {
    fn default() -> Self {
        FlowConfig {
            max_iters: 500,
            stop_overflow: 0.10,
            bins: 64,
            target_density: 1.0,
            density_fft: true,
            lambda_init: 0.0,
            lambda_growth: 1.05,
            trace_timing_every: 10,
            seed: 1,
            detail_passes: 2,
            legalizer: LegalizerChoice::Abacus,
            incremental_timing: true,
            dirty_threshold: 0.0,
            topo_dirty_frac: 0.10,
            rsmt_tables: true,
            rsmt_table_max_degree: 9,
            incremental_fallback_frac: 0.30,
            route_aware: false,
            route_grid: 32,
            route_capacity: 0.5,
            route_weight: 1.0,
            inflation_max: 2.5,
            route_update_period: 20,
            observe: false,
            threads: 0,
            multilevel: false,
            cluster_ratio: 4.0,
            levels: 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let d = DiffTimingConfig::default();
        assert_eq!(d.gamma, 100.0);
        assert_eq!(d.t1, 0.04);
        assert_eq!(d.t2, 0.0004);
        assert!((d.growth - 1.01).abs() < 1e-12);
        assert_eq!(d.start_iter, 100);
        assert_eq!(d.steiner_rebuild_period, 10);
    }

    #[test]
    fn labels() {
        assert_eq!(FlowMode::Wirelength.label(), "DREAMPlace");
        assert_eq!(FlowMode::net_weighting().label(), "NetWeighting");
        assert_eq!(FlowMode::differentiable().label(), "Ours");
        assert_eq!(FlowMode::path_extraction().label(), "PathExtract");
    }

    #[test]
    fn config_trace_fields_round_trip() {
        let mut cfg = FlowConfig {
            seed: u64::MAX - 3, // above 2^53: exercises the string encoding
            legalizer: LegalizerChoice::Tetris,
            multilevel: true,
            threads: 4,
            ..FlowConfig::default()
        };
        cfg.lambda_growth = 1.0375;
        let fields = cfg.trace_fields();
        assert_eq!(fields.len(), CONFIG_KEYS.len());
        let back = FlowConfig::from_trace_fields(&fields).expect("round trip");
        assert_eq!(back, cfg);
        // Strictness: a missing knob and an unknown knob are both errors.
        let missing: Vec<_> = fields[1..].to_vec();
        assert!(FlowConfig::from_trace_fields(&missing).is_err());
        let mut extra = fields.clone();
        extra.push(("bogus".to_string(), Value::Bool(true)));
        assert!(FlowConfig::from_trace_fields(&extra).is_err());
    }

    #[test]
    fn mode_trace_fields_round_trip() {
        for mode in [
            FlowMode::Wirelength,
            FlowMode::net_weighting(),
            FlowMode::differentiable(),
            FlowMode::path_extraction(),
            FlowMode::Differentiable(DiffTimingConfig {
                wire_model: WireModelChoice::D2m,
                grad_norm_target: 0.25,
                ..DiffTimingConfig::default()
            }),
        ] {
            let fields = mode.trace_fields();
            let back = FlowMode::from_trace(mode.name(), &fields).expect("round trip");
            assert_eq!(back, mode);
        }
        assert!(FlowMode::from_trace("bogus", &[]).is_err());
        // Wirelength mode must carry no fields.
        assert!(FlowMode::from_trace(
            "wirelength",
            &[("gamma".to_string(), Value::Num(1.0))]
        )
        .is_err());
    }

    #[test]
    fn path_extract_defaults() {
        let p = PathExtractConfig::default();
        assert_eq!(p.top_k, 32);
        assert_eq!(p.extract_period, 5);
        assert!((p.path_decay - 0.9).abs() < 1e-12);
        assert!((p.pin_weight_cap - 8.0).abs() < 1e-12);
        assert_eq!(p.start_iter, 100);
        assert!(p.pin_weight_cap >= 1.0, "cap below 1 would anti-weight");
    }
}
