//! Timing-driven detailed placement — the *incremental timing-driven
//! placement* task of the ICCAD-2015 contest the paper's benchmarks come
//! from (§4, \[33\]).
//!
//! After legalization, the most timing-critical cells (worst pin slack) are
//! slid within the free gap of their row; each trial move is evaluated with
//! the **incremental** STA of `dtp-sta` (only the moved cell's fan-out cone
//! re-propagates), and a move commits only if it improves TNS without
//! degrading WNS. Legality is preserved by construction (moves stay inside
//! the gap between row neighbours).

use dtp_liberty::Library;
use dtp_netlist::{CellId, Design, NetId, Point};
use dtp_rsmt::build_forest;
use dtp_sta::{Analysis, StaError, Timer};

/// Configuration of the timing-driven detailed placement pass.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TimingDetailConfig {
    /// How many of the most critical cells to try per pass.
    pub max_cells: usize,
    /// Candidate positions per cell within its row gap.
    pub candidates: usize,
    /// Number of passes.
    pub passes: usize,
}

impl Default for TimingDetailConfig {
    fn default() -> Self {
        TimingDetailConfig { max_cells: 50, candidates: 5, passes: 2 }
    }
}

/// Outcome of a timing-driven detailed placement run.
#[derive(Clone, Debug)]
pub struct TimingDetailResult {
    /// WNS before / after (ps).
    pub wns_before: f64,
    /// WNS after the pass.
    pub wns_after: f64,
    /// TNS before.
    pub tns_before: f64,
    /// TNS after.
    pub tns_after: f64,
    /// Number of committed moves.
    pub moves: usize,
}

/// Runs timing-driven detailed placement on a *legal* placement held in
/// `(xs, ys)`, modifying it in place (legality is preserved).
///
/// # Errors
///
/// Returns [`StaError`] if the design cannot be bound to `lib`.
///
/// # Panics
///
/// Panics if the position slices are shorter than the cell count.
pub fn refine_timing(
    design: &Design,
    lib: &Library,
    xs: &mut [f64],
    ys: &mut [f64],
    config: &TimingDetailConfig,
) -> Result<TimingDetailResult, StaError> {
    let mut work = design.clone();
    work.netlist.set_positions(xs, ys);
    let timer = Timer::new(&work, lib)?;
    let mut forest = build_forest(&work.netlist);
    let mut analysis = timer.analyze(&work.netlist, &forest);
    let (wns_before, tns_before) = (analysis.wns(), analysis.tns());
    let site = design.rows[0].site_width;
    let row_h = design.row_height();
    let mut moves = 0usize;

    for _ in 0..config.passes {
        // Rank movable cells by their worst pin slack.
        let mut ranked: Vec<(f64, CellId)> = work
            .netlist
            .movable_cells()
            .map(|c| {
                let worst = work
                    .netlist
                    .cell(c)
                    .pins()
                    .iter()
                    .map(|&p| analysis.pin_slack(p))
                    .fold(f64::INFINITY, f64::min);
                (worst, c)
            })
            .filter(|(s, _)| s.is_finite() && *s < 0.0)
            .collect();
        ranked.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite slacks"));
        ranked.truncate(config.max_cells);
        if ranked.is_empty() {
            break;
        }

        let mut improved_this_pass = false;
        for (_, c) in ranked {
            let i = c.index();
            let (cur_x, cur_y) = (xs[i], ys[i]);
            // The free gap between the row neighbours of `c`.
            let (lo, hi) = row_gap(design, &work, xs, ys, c, row_h);
            if hi <= lo {
                continue;
            }
            let nets: Vec<NetId> = work
                .netlist
                .cell(c)
                .pins()
                .iter()
                .filter_map(|&p| work.netlist.pin(p).net())
                .filter(|&n| !work.netlist.net(n).is_clock())
                .collect();

            let mut best: Option<(f64, f64, Analysis)> = None; // (tns, x, analysis)
            for k in 0..config.candidates {
                let cand = lo + (hi - lo) * k as f64 / (config.candidates - 1).max(1) as f64;
                let cand = (cand / site).round() * site;
                if cand < lo - 1e-9 || cand > hi + 1e-9 || (cand - cur_x).abs() < 1e-9 {
                    continue;
                }
                work.netlist.set_cell_pos(c, Point::new(cand, cur_y));
                for &n in &nets {
                    forest.update_net(&work.netlist, n);
                }
                let trial =
                    timer.analyze_incremental(&work.netlist, &forest, &analysis, &[c], false);
                let better_than_best =
                    best.as_ref().is_none_or(|(bt, _, _)| trial.tns() > *bt);
                if trial.tns() > analysis.tns() + 1e-9
                    && trial.wns() >= analysis.wns() - 1e-9
                    && better_than_best
                {
                    best = Some((trial.tns(), cand, trial));
                }
                // Restore for the next candidate.
                work.netlist.set_cell_pos(c, Point::new(cur_x, cur_y));
                for &n in &nets {
                    forest.update_net(&work.netlist, n);
                }
            }
            if let Some((_, x_new, _)) = best {
                work.netlist.set_cell_pos(c, Point::new(x_new, cur_y));
                for &n in &nets {
                    forest.update_net(&work.netlist, n);
                }
                xs[i] = x_new;
                // Commit with a RAT recompute so the next ranking sees fresh
                // per-pin slacks.
                analysis =
                    timer.analyze_incremental(&work.netlist, &forest, &analysis, &[c], true);
                moves += 1;
                improved_this_pass = true;
            }
        }
        if !improved_this_pass {
            break;
        }
    }

    Ok(TimingDetailResult {
        wns_before,
        wns_after: analysis.wns(),
        tns_before,
        tns_after: analysis.tns(),
        moves,
    })
}

/// The legal x-interval for `cell` between its row neighbours.
fn row_gap(
    design: &Design,
    work: &Design,
    xs: &[f64],
    ys: &[f64],
    cell: CellId,
    row_h: f64,
) -> (f64, f64) {
    let nl = &work.netlist;
    let i = cell.index();
    let w = nl.class_of(cell).width();
    let my_row = ((ys[i] - design.region.yl) / row_h).round() as i64;
    let mut lo = design.region.xl;
    let mut hi = design.region.xh - w;
    for other in nl.movable_cells() {
        if other == cell {
            continue;
        }
        let j = other.index();
        let row = ((ys[j] - design.region.yl) / row_h).round() as i64;
        if row != my_row {
            continue;
        }
        let ow = nl.class_of(other).width();
        if xs[j] + ow <= xs[i] + 1e-9 {
            lo = lo.max(xs[j] + ow);
        } else if xs[j] >= xs[i] + w - 1e-9 {
            hi = hi.min(xs[j] - w);
        }
    }
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{FlowConfig, FlowMode};
    use crate::flow::run_flow;
    use dtp_liberty::synth::synthetic_pdk;
    use dtp_netlist::generate::{generate, GeneratorConfig};
    use dtp_place::check_legal;

    #[test]
    fn improves_tns_and_preserves_legality() {
        let d = generate(&GeneratorConfig::named("tdp", 500)).expect("generator");
        let lib = synthetic_pdk();
        // A wirelength-only placement leaves timing on the table.
        let cfg = FlowConfig { max_iters: 250, trace_timing_every: 0, ..FlowConfig::default() };
        let r = run_flow(&d, &lib, FlowMode::Wirelength, &cfg).expect("flow runs");
        let mut xs = r.xs.clone();
        let mut ys = r.ys.clone();
        let result = refine_timing(&d, &lib, &mut xs, &mut ys, &TimingDetailConfig::default())
            .expect("refinement runs");
        assert!(result.tns_before < 0.0, "needs violations to be meaningful");
        assert!(
            result.tns_after >= result.tns_before,
            "TNS regressed: {} -> {}",
            result.tns_before,
            result.tns_after
        );
        assert!(result.wns_after >= result.wns_before - 1e-6);
        if result.moves > 0 {
            assert!(result.tns_after > result.tns_before);
        }
        let violations = check_legal(&d, &xs, &ys);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn reported_metrics_match_fresh_analysis() {
        use dtp_rsmt::build_forest;
        use dtp_sta::Timer;
        let d = generate(&GeneratorConfig::named("tdp2", 300)).expect("generator");
        let lib = synthetic_pdk();
        let cfg = FlowConfig { max_iters: 200, trace_timing_every: 0, ..FlowConfig::default() };
        let r = run_flow(&d, &lib, FlowMode::Wirelength, &cfg).expect("flow runs");
        let mut xs = r.xs.clone();
        let mut ys = r.ys.clone();
        let result = refine_timing(&d, &lib, &mut xs, &mut ys, &TimingDetailConfig::default())
            .expect("refinement runs");
        let mut placed = d.clone();
        placed.netlist.set_positions(&xs, &ys);
        let timer = Timer::new(&placed, &lib).expect("binds");
        let fresh = timer.analyze(&placed.netlist, &build_forest(&placed.netlist));
        // The incrementally-maintained metrics agree with a fresh run up to
        // the reuse-vs-rebuild tree tolerance (trees were branch-updated).
        let tol = 0.02 * fresh.tns().abs().max(100.0);
        assert!(
            (fresh.tns() - result.tns_after).abs() < tol,
            "fresh {} vs incremental {}",
            fresh.tns(),
            result.tns_after
        );
    }
}
