//! Differentiable-timing-driven global placement (Guo & Lin, DAC 2022).
//!
//! This crate is the paper's contribution: a nonlinear global placer whose
//! objective (Eq. 6) fuses
//!
//! ```text
//! min  Σ_e WL(e; x, y)  +  λ·D(x, y)  −  t1·TNS_γ(x, y)  −  t2·WNS_γ(x, y)
//! ```
//!
//! where the TNS/WNS terms and their gradients come from the differentiable
//! STA engine of `dtp-sta` (TNS/WNS are ≤ 0, so *maximizing* them is written
//! as subtracting them from the minimized objective). Four flow modes are
//! provided — the paper's Table 3 comparison plus a path-extraction mode:
//!
//! - [`FlowMode::Wirelength`] — plain wirelength+density placement
//!   (DREAMPlace \[16\]);
//! - [`FlowMode::NetWeighting`] — momentum-based net weighting driven by an
//!   exact STA (DREAMPlace 4.0 \[24\], Eq. 4);
//! - [`FlowMode::Differentiable`] — the paper's method: direct gradient
//!   descent on smoothed TNS/WNS with t1/t2 grown 1 %/iteration from a warm
//!   start (§4), Steiner trees rebuilt every N iterations and moved with
//!   their branches in between (§3.6, Fig. 7);
//! - [`FlowMode::PathExtraction`] — top-K critical-path extraction
//!   (arXiv 2503.11674): a periodic forward-only exact STA traces the K
//!   worst paths and concentrates net weights on their pins, approaching
//!   the differentiable mode's quality at a fraction of its timing cost.
//!
//! # Example
//!
//! ```no_run
//! use dtp_core::{run_flow, FlowConfig, FlowMode};
//! use dtp_liberty::synth::synthetic_pdk;
//! use dtp_netlist::generate::{generate, GeneratorConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let design = generate(&GeneratorConfig::named("demo", 2000))?;
//! let lib = synthetic_pdk();
//! let result = run_flow(&design, &lib, FlowMode::differentiable(), &FlowConfig::default())?;
//! println!("WNS {:.1} ps, TNS {:.1} ps, HPWL {:.0} um", result.wns, result.tns, result.hpwl);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod flow;
mod timing_detail;
mod weighting;

pub use config::{
    DiffTimingConfig, FlowConfig, FlowMode, LegalizerChoice, NetWeightConfig, PathExtractConfig,
    WireModelChoice,
};
pub use dtp_obs::Observer;
pub use dtp_route::CongestionSummary;
pub use flow::{run_flow, run_flow_observed, FlowError, FlowResult, TracePoint};
pub use timing_detail::{refine_timing, TimingDetailConfig, TimingDetailResult};
pub use weighting::{NetWeighter, PathWeighter};
