//! The global placement flows (Fig. 7 of the paper).
//!
//! One engine drives all the Table-3 flows; they differ only in which
//! timing mechanism injects itself into the gradient:
//!
//! - wirelength-only: none;
//! - net weighting: exact STA → per-net weights in the WA wirelength;
//! - differentiable (ours): smoothed STA → TNS/WNS gradients added to the
//!   wirelength + density gradient, Steiner forest rebuilt every N
//!   iterations and branch-updated in between;
//! - path extraction: forward-only exact STA → top-K critical paths →
//!   per-net weights concentrated on the extracted pins (the cheap, sharp
//!   timing signal; same weight slot as net weighting, a fraction of the
//!   differentiable mode's per-iteration timing cost).
//!
//! Orthogonally to the timing mechanism, [`FlowConfig::route_aware`] enables
//! the routability subsystem (`dtp-route`): a smoothed congestion penalty
//! joins the gradient every iteration, and a RUDY feedback loop periodically
//! inflates cells in overflowed bins and boosts the wirelength weight of
//! nets crossing them. The exact RUDY map is maintained incrementally from
//! the same geometry-dirty net sets that drive incremental timing.

use crate::config::{FlowConfig, FlowMode, LegalizerChoice};
use crate::weighting::{NetWeighter, PathWeighter};
use dtp_liberty::Library;
use dtp_netlist::{coarsen, CellId, ClusterMap, Design, NetId, NetlistError};
use dtp_obs::{Counter, Gauge, IterEvent, Observer, Phase};
use dtp_place::detail::DetailPlacer;
use dtp_place::{
    AbacusLegalizer, DensityModel, DensityResult, DensityScratch, Legalizer, NesterovOptimizer,
    WirelengthModel, WirelengthScratch,
};
use dtp_route::{inflation_factors, CongestionPenalty, CongestionSummary, RudyMap};
use dtp_rsmt::{build_forest, build_forest_with, ForestScratch, ForestStats, SteinerForest, TableConfig};
use dtp_sta::{Analysis, AnalysisScratch, PositionGradients, StaError, Timer, TimerConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use std::fmt;
use std::time::Instant;

/// Fixed chunk size for the flow's per-cell gradient merges. The merges are
/// elementwise, so any chunking gives identical results; a fixed size keeps
/// the parallel shape independent of the pool width.
const MERGE_CHUNK: usize = 4096;

/// Overflow floor at which a coarse (clustered) level stops. A coarse level
/// only needs to form the global arrangement; resolving overlap at cluster
/// granularity costs far more wirelength than resolving it cell-by-cell, so
/// the expensive low-overflow endgame is left to the finer levels (which
/// redo it anyway).
const COARSE_STOP_OVERFLOW: f64 = 0.30;

/// Minimum iterations per coarse level before the overflow stop can fire
/// (mirrors the fine loop's `iter > 30` guard, scaled down).
const COARSE_MIN_ITERS: usize = 10;

/// Density overflow below which a warm-started finest level activates its
/// timing mechanism. A cold flow gates timing on an iteration count
/// (`start_iter`, default 100) tuned so timing engages once the placement
/// has spread; a warm start reaches the same state at an unpredictable
/// iteration, so it latches on the state itself — the overflow the cold
/// schedule typically shows when its own gate opens. Paired with
/// [`WARM_LAMBDA_GROWTH_BOOST`], which keeps the descent from here to the
/// stop overflow short: without it the warm level crawls through this band
/// at small λ and the (expensive) timing tail runs several times longer
/// than the cold flow's.
const WARM_TIMING_OVERFLOW: f64 = 0.15;

/// Multiplier on `FlowConfig::lambda_growth` for warm-started finest levels.
/// The warm λ re-entry (ratio 0.05 of the gradient balance) buys back the
/// wirelength-dominant phase, but with the cold growth rate the level then
/// spends most of its iterations crawling down the last few points of
/// overflow at small λ — where every iteration may also carry timing work.
/// A slightly steeper anneal compresses that tail.
const WARM_LAMBDA_GROWTH_BOOST: f64 = 1.01;

/// Seed placement handed to the finest level by the multi-level driver.
struct WarmStart {
    /// Interpolated lower-left x positions, indexed by cell.
    xs: Vec<f64>,
    /// Interpolated lower-left y positions.
    ys: Vec<f64>,
}

/// The solution of one coarse-level placement.
struct CoarseOutcome {
    xs: Vec<f64>,
    ys: Vec<f64>,
    iterations: usize,
}

/// Adds `scale * add` into `acc` elementwise over the persistent pool.
fn axpy_into(acc: &mut [f64], add: &[f64], scale: f64) {
    acc.par_chunks_mut(MERGE_CHUNK)
        .zip(add.par_chunks(MERGE_CHUNK))
        .for_each(|(a, b)| {
            for (x, y) in a.iter_mut().zip(b) {
                *x += scale * y;
            }
        });
}

/// Errors from the placement flow.
#[derive(Debug)]
#[non_exhaustive]
pub enum FlowError {
    /// Timing-engine construction failed.
    Sta(StaError),
    /// Netlist-level failure.
    Netlist(NetlistError),
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::Sta(e) => write!(f, "timing engine error: {e}"),
            FlowError::Netlist(e) => write!(f, "netlist error: {e}"),
        }
    }
}

impl std::error::Error for FlowError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FlowError::Sta(e) => Some(e),
            FlowError::Netlist(e) => Some(e),
        }
    }
}

impl From<StaError> for FlowError {
    fn from(e: StaError) -> Self {
        FlowError::Sta(e)
    }
}

impl From<NetlistError> for FlowError {
    fn from(e: NetlistError) -> Self {
        FlowError::Netlist(e)
    }
}

/// One sample of the optimization trajectory (the series of Figure 8).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TracePoint {
    /// Iteration index.
    pub iter: usize,
    /// Exact HPWL (µm).
    pub hpwl: f64,
    /// Density overflow.
    pub overflow: f64,
    /// Exact WNS (ps); `NAN` on iterations where timing was not traced.
    pub wns: f64,
    /// Exact TNS (ps); `NAN` when not traced.
    pub tns: f64,
}

/// The outcome of one placement flow run.
#[derive(Clone, Debug)]
pub struct FlowResult {
    /// Flow label ("DREAMPlace", "NetWeighting", "Ours").
    pub mode: &'static str,
    /// Design name.
    pub design: String,
    /// Final HPWL after legalization + detailed placement (µm).
    pub hpwl: f64,
    /// Final exact WNS (ps).
    pub wns: f64,
    /// Final exact TNS (ps).
    pub tns: f64,
    /// Final exact hold WNS (ps).
    pub wns_hold: f64,
    /// HPWL at the end of global placement, before legalization.
    pub gp_hpwl: f64,
    /// WNS at the end of global placement.
    pub gp_wns: f64,
    /// TNS at the end of global placement.
    pub gp_tns: f64,
    /// Global-placement iterations executed (summed over all levels in a
    /// multi-level run).
    pub iterations: usize,
    /// Iterations per level, coarsest first; a flat (single-level) flow
    /// reports one entry equal to [`FlowResult::iterations`].
    pub level_iterations: Vec<usize>,
    /// Wall-clock runtime of the whole flow, seconds.
    pub runtime: f64,
    /// Wall-clock spent inside timing analysis/gradients, seconds: the sum
    /// of the STA-phase spans ([`dtp_obs::Phase::is_sta`]) recorded during
    /// this run. Value-compatible with the legacy hand-timed accounting and
    /// populated whether or not observability is on.
    pub timing_runtime: f64,
    /// Optimization trajectory samples.
    pub trace: Vec<TracePoint>,
    /// Final legalized positions (lower-left), indexed by cell.
    pub xs: Vec<f64>,
    /// Final legalized y positions.
    pub ys: Vec<f64>,
    /// Routing-congestion summary of the final placement (always computed,
    /// on the [`FlowConfig::route_grid`]/[`FlowConfig::route_capacity`]
    /// grid, whether or not the flow was route-aware).
    pub congestion: CongestionSummary,
    /// In-loop Steiner-forest composition (exact / table / Prim backends)
    /// and sequence-cache counters; all zeros when the flow never built a
    /// forest (pure-wirelength mode without tracing).
    pub rsmt: ForestStats,
}

impl fmt::Display for FlowResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<13} {:<6} WNS {:>10.1}  TNS {:>12.1}  HPWL {:>12.0}  {:>7.2}s ({} iters)",
            self.mode, self.design, self.wns, self.tns, self.hpwl, self.runtime, self.iterations
        )
    }
}

/// Dirty-set bookkeeping for the incremental timing pipeline.
///
/// One instance lives across the whole placement loop; every buffer persists
/// between iterations so the per-iteration work is proportional to the
/// number of moved cells, not the design size.
struct IncrementalState {
    /// Positions at the last Steiner-forest synchronization.
    last_x: Vec<f64>,
    last_y: Vec<f64>,
    /// Accumulated worst cell drift per net since its last topology build.
    net_drift: Vec<f64>,
    /// Topology-rebuild budget per net:
    /// `topo_dirty_frac × pin bounding-box half-perimeter` at build time.
    net_budget: Vec<f64>,
    /// This-iteration max displacement per net (sparse; reset via `touched`).
    net_disp: Vec<f64>,
    /// Cells moved since the last timing analysis (flags + dense list).
    cell_moved: Vec<bool>,
    moved_cells: Vec<CellId>,
    /// Nets dirtied since the last timing analysis (flags + dense list).
    net_dirty: Vec<bool>,
    dirty_nets: Vec<usize>,
    /// Per-iteration classification scratch.
    geo_nets: Vec<NetId>,
    topo_nets: Vec<NetId>,
    touched: Vec<usize>,
}

impl IncrementalState {
    fn new(num_cells: usize) -> IncrementalState {
        IncrementalState {
            last_x: Vec::new(),
            last_y: Vec::new(),
            net_drift: Vec::new(),
            net_budget: Vec::new(),
            net_disp: Vec::new(),
            cell_moved: vec![false; num_cells],
            moved_cells: Vec::new(),
            net_dirty: Vec::new(),
            dirty_nets: Vec::new(),
            geo_nets: Vec::new(),
            topo_nets: Vec::new(),
            touched: Vec::new(),
        }
    }

    /// Re-seeds the bookkeeping after a full forest build: budgets from the
    /// fresh trees, zero drift, reference positions = current positions.
    fn reset_after_build(
        &mut self,
        forest: &SteinerForest,
        xs: &[f64],
        ys: &[f64],
        topo_frac: f64,
    ) {
        let n = forest.len();
        self.net_drift.clear();
        self.net_drift.resize(n, 0.0);
        self.net_disp.clear();
        self.net_disp.resize(n, 0.0);
        self.net_budget.clear();
        self.net_budget.extend((0..n).map(|ni| {
            topo_frac
                * forest
                    .tree(NetId::new(ni))
                    .map_or(0.0, |t| t.pin_bbox_half_perimeter())
        }));
        self.net_dirty.clear();
        self.net_dirty.resize(n, false);
        self.dirty_nets.clear();
        self.last_x.clear();
        self.last_x.extend_from_slice(xs);
        self.last_y.clear();
        self.last_y.extend_from_slice(ys);
        self.cell_moved.fill(false);
        self.moved_cells.clear();
    }

    /// Per-iteration forest maintenance: classify the nets of moved cells as
    /// geometry-dirty (coordinate update) or topology-dirty (per-net Steiner
    /// rebuild once accumulated drift exceeds the bbox budget), apply both,
    /// and fold the moved cells into the since-last-analysis dirty set.
    fn sync_forest(
        &mut self,
        nl: &dtp_netlist::Netlist,
        forest: &mut SteinerForest,
        xs: &[f64],
        ys: &[f64],
        config: &FlowConfig,
        scratch: &mut ForestScratch,
    ) {
        let dirty_threshold = config.dirty_threshold;
        let topo_frac = config.topo_dirty_frac;
        self.touched.clear();
        for c in nl.movable_cells() {
            let i = c.index();
            let d = (xs[i] - self.last_x[i]).abs() + (ys[i] - self.last_y[i]).abs();
            if d <= dirty_threshold {
                continue;
            }
            if !self.cell_moved[i] {
                self.cell_moved[i] = true;
                self.moved_cells.push(c);
            }
            for &p in nl.cell(c).pins() {
                let Some(net) = nl.pin(p).net() else { continue };
                let ni = net.index();
                if forest.tree(net).is_none() {
                    continue; // clock net: never built, never timed
                }
                if self.net_disp[ni] == 0.0 {
                    self.touched.push(ni);
                }
                if d > self.net_disp[ni] {
                    self.net_disp[ni] = d;
                }
            }
        }
        self.geo_nets.clear();
        self.topo_nets.clear();
        for &ni in &self.touched {
            self.net_drift[ni] += self.net_disp[ni];
            self.net_disp[ni] = 0.0;
            if !self.net_dirty[ni] {
                self.net_dirty[ni] = true;
                self.dirty_nets.push(ni);
            }
            if self.net_drift[ni] > self.net_budget[ni] {
                self.topo_nets.push(NetId::new(ni));
            } else {
                self.geo_nets.push(NetId::new(ni));
            }
        }
        forest.update_nets_into(nl, &self.geo_nets, scratch);
        forest.rebuild_nets_into(nl, &self.topo_nets, scratch);
        for &net in &self.topo_nets {
            let ni = net.index();
            self.net_drift[ni] = 0.0;
            self.net_budget[ni] = topo_frac
                * forest
                    .tree(net)
                    .map_or(0.0, |t| t.pin_bbox_half_perimeter());
        }
        self.last_x.copy_from_slice(xs);
        self.last_y.copy_from_slice(ys);
    }

    /// Fraction of nets dirtied since the last analysis.
    fn dirty_fraction(&self, num_nets: usize) -> f64 {
        if num_nets == 0 {
            0.0
        } else {
            self.dirty_nets.len() as f64 / num_nets as f64
        }
    }

    /// Clears the since-last-analysis dirty set (call right after an
    /// analysis consumed it).
    fn mark_analyzed(&mut self) {
        for c in self.moved_cells.drain(..) {
            self.cell_moved[c.index()] = false;
        }
        for ni in self.dirty_nets.drain(..) {
            self.net_dirty[ni] = false;
        }
    }
}

/// Density overflow below which congestion optimization switches on: like
/// timing, the RUDY estimate is meaningless while every cell still sits in
/// the initial center cluster.
const ROUTE_START_OVERFLOW: f64 = 0.5;

/// Runtime state of the congestion-aware subsystem (`route_aware = true`).
struct RouteState {
    /// Exact incremental RUDY map — reporting and feedback.
    map: RudyMap,
    /// Differentiable smoothed-overflow penalty — the gradient term.
    penalty: CongestionPenalty,
    /// Penalty-gradient scratch.
    pgx: Vec<f64>,
    pgy: Vec<f64>,
    /// Per-model-net congestion boosts (1.0 = neutral) and their product
    /// with the timing weighter's weights.
    boost: Vec<f64>,
    combined: Vec<f64>,
    /// Per-cell inflation factors for the density model.
    inflation: Vec<f64>,
    /// Latched once density overflow first drops under
    /// [`ROUTE_START_OVERFLOW`]; counts active iterations for the feedback
    /// cadence.
    iters_active: usize,
    active: bool,
    /// Whether the map has been built from a forest yet.
    built: bool,
    /// Whether any boost differs from 1 (skips the weight merge if not).
    boosted: bool,
}

impl RouteState {
    fn new(design: &Design, config: &FlowConfig) -> RouteState {
        let g = config.route_grid.max(2);
        RouteState {
            map: RudyMap::new(design, g, g, config.route_capacity),
            penalty: CongestionPenalty::new(design, g, g, config.route_capacity),
            pgx: Vec::new(),
            pgy: Vec::new(),
            boost: Vec::new(),
            combined: Vec::new(),
            inflation: Vec::new(),
            iters_active: 0,
            active: false,
            built: false,
            boosted: false,
        }
    }
}

/// Runs one placement flow on `design` and returns metrics, trace and the
/// final legalized placement.
///
/// The input design's positions are not modified; the flow works on a copy
/// and returns the result positions in [`FlowResult::xs`]/[`FlowResult::ys`].
///
/// # Errors
///
/// Returns [`FlowError::Sta`] if the netlist cannot be bound to the library
/// or contains combinational cycles.
pub fn run_flow(
    design: &Design,
    lib: &Library,
    mode: FlowMode,
    config: &FlowConfig,
) -> Result<FlowResult, FlowError> {
    let mut obs = Observer::new(config.observe);
    run_flow_observed(design, lib, mode, config, &mut obs)
}

/// [`run_flow`] with a caller-owned [`Observer`]: the caller can attach a
/// JSONL trace sink beforehand and read the phase/counter report afterwards
/// (the `dtp` CLI's `--profile` / `--metrics-out` / `--trace-out` path).
///
/// The observer should be freshly constructed per run; its enablement is
/// honored as-is (it is *not* re-derived from [`FlowConfig::observe`]).
/// Observability only ever reads clocks and counts events, so an enabled
/// observer leaves the placement trajectory bit-for-bit identical to a
/// disabled one — the `obs_golden` tests assert this.
///
/// # Errors
///
/// Returns [`FlowError::Sta`] if the netlist cannot be bound to the library
/// or contains combinational cycles.
pub fn run_flow_observed(
    design: &Design,
    lib: &Library,
    mode: FlowMode,
    config: &FlowConfig,
    obs: &mut Observer,
) -> Result<FlowResult, FlowError> {
    if config.threads > 0 {
        // Dedicated pool of the requested width for the whole flow —
        // every parallel kernel below dispatches through it. The workers
        // persist for the run and are torn down when the pool drops.
        let pool = rayon::Pool::new(config.threads);
        rayon::with_pool(&pool, || run_flow_inner(design, lib, mode, config, obs))
    } else {
        run_flow_inner(design, lib, mode, config, obs)
    }
}

fn run_flow_inner(
    design: &Design,
    lib: &Library,
    mode: FlowMode,
    config: &FlowConfig,
    obs: &mut Observer,
) -> Result<FlowResult, FlowError> {
    emit_trace_header(design, mode, config, obs);
    if config.multilevel && config.levels >= 2 && config.cluster_ratio > 1.0 {
        run_flow_multilevel(design, lib, mode, config, obs)
    } else {
        run_flow_fine(design, lib, mode, config, obs, None)
    }
}

/// Writes the v2 trace header — the run's full identity: mode, config,
/// seed, thread counts, and the design fingerprint — as the first record of
/// the JSONL stream. Runs inside the flow's pool scope, so `pool_threads`
/// reports the width the iterations will actually execute with.
fn emit_trace_header(design: &Design, mode: FlowMode, config: &FlowConfig, obs: &mut Observer) {
    if !obs.is_enabled() {
        return;
    }
    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let header = dtp_obs::TraceHeader {
        schema: dtp_obs::TRACE_SCHEMA.to_string(),
        mode: mode.name().to_string(),
        seed: config.seed,
        threads: config.threads as u64,
        pool_threads: rayon::current_num_threads() as u64,
        host_threads: host_threads as u64,
        design: design.name.clone(),
        cells: design.netlist.num_cells() as u64,
        nets: design.netlist.num_nets() as u64,
        pins: design.netlist.num_pins() as u64,
        region: [design.region.xl, design.region.yl, design.region.xh, design.region.yh],
        clock_period: design.constraints.clock_period,
        source: obs.design_source().map(str::to_string),
        config: config.trace_fields(),
        mode_config: mode.trace_fields(),
    };
    obs.emit_header(&header);
}

/// The multi-level (clustered) V-cycle: coarsen the netlist `levels - 1`
/// times, place the coarsest level from a cold start, then walk back down
/// the ladder — interpolate each coarse solution onto the next finer level
/// and refine it there. Coarse levels run wirelength + density only (cluster
/// pseudo-cells carry synthetic classes the liberty library cannot bind);
/// the finest level runs the full flow, warm-started, with its timing
/// mechanism engaging at [`WARM_TIMING_START`].
fn run_flow_multilevel(
    design: &Design,
    lib: &Library,
    mode: FlowMode,
    config: &FlowConfig,
    obs: &mut Observer,
) -> Result<FlowResult, FlowError> {
    let t_start = Instant::now();

    // Build the ladder: designs[0] is one level above the input design,
    // designs[l] is coarser than designs[l - 1]. Stop early when a round
    // stops reducing (tiny designs, everything fixed).
    let mut designs: Vec<Design> = Vec::new();
    let mut maps: Vec<ClusterMap> = Vec::new();
    let sp = obs.start(Phase::Coarsen);
    for l in 1..config.levels {
        let cur = designs.last().unwrap_or(design);
        let (c, m) = coarsen(cur, config.cluster_ratio, config.seed ^ l as u64);
        if c.netlist.num_cells() as f64 > 0.9 * cur.netlist.num_cells() as f64 {
            break;
        }
        designs.push(c);
        maps.push(m);
    }
    obs.stop(Phase::Coarsen, sp);
    if designs.is_empty() {
        return run_flow_fine(design, lib, mode, config, obs, None);
    }

    // Upstroke: coarsest → finest. Each level refines the previous level's
    // interpolated solution; the coarsest starts cold.
    let mut level_iterations: Vec<usize> = Vec::new();
    let mut warm_pos: Option<(Vec<f64>, Vec<f64>)> = None;
    for l in (0..designs.len()).rev() {
        let out =
            run_coarse_level(&mut designs[l], l + 1, lib, mode, config, obs, warm_pos.take());
        dtp_obs::info!(
            "multilevel: level {} ({} clusters) placed in {} iterations",
            l + 1,
            designs[l].netlist.num_cells(),
            out.iterations
        );
        level_iterations.push(out.iterations);
        let coarse_nl = &designs[l].netlist;
        let (fine_nl, region) = if l == 0 {
            (&design.netlist, design.region)
        } else {
            (&designs[l - 1].netlist, designs[l - 1].region)
        };
        let sp = obs.start(Phase::Interpolate);
        let (mut fx, mut fy) = fine_nl.positions();
        maps[l].interpolate(
            fine_nl, coarse_nl, region, config.seed, &out.xs, &out.ys, &mut fx, &mut fy,
        );
        obs.stop(Phase::Interpolate, sp);
        warm_pos = Some((fx, fy));
    }

    let (wxs, wys) = warm_pos.take().expect("ladder is non-empty");
    let mut result = run_flow_fine(
        design,
        lib,
        mode,
        config,
        obs,
        Some(WarmStart { xs: wxs, ys: wys }),
    )?;
    dtp_obs::info!(
        "multilevel: level 0 ({} cells) refined in {} iterations",
        design.netlist.num_cells(),
        result.iterations
    );
    level_iterations.push(result.iterations);
    result.iterations = level_iterations.iter().sum();
    result.level_iterations = level_iterations;
    result.runtime = t_start.elapsed().as_secs_f64();
    Ok(result)
}

/// Places one coarse (clustered) design: plain ePlace — WA wirelength +
/// electrostatic density under preconditioned Nesterov — with no routing
/// machinery and, in most modes, no timing (cluster pseudo-cells carry
/// synthetic classes the library cannot bind, so the full differentiable
/// objective is unavailable here).
///
/// The one exception is [`FlowMode::PathExtraction`]: its timing signal
/// needs only a forward analysis over whatever endpoints *survive*
/// coarsening (uncollapsed registers, primary outputs), so when the coarse
/// design still has endpoints, the level periodically extracts the top-K
/// paths and carries their net weights in the WA wirelength — timing
/// pressure on the levels where the differentiable gradient cannot run.
///
/// Returns the global-placement solution (unlegalized; finer levels only
/// need the arrangement).
fn run_coarse_level(
    work: &mut Design,
    level: usize,
    lib: &Library,
    mode: FlowMode,
    config: &FlowConfig,
    obs: &mut Observer,
    warm: Option<(Vec<f64>, Vec<f64>)>,
) -> CoarseOutcome {
    let nl_cells = work.netlist.num_cells();
    // Halve the density grid per level (floor 32): clusters are ~ratio×
    // larger than cells, so the field granularity must coarsen with them or
    // it fights cluster interleaving the finer levels resolve trivially.
    // Powers of two are preserved, so the FFT backend still applies.
    let bins = (config.bins >> level).max(32.min(config.bins));

    match warm {
        Some((xs, ys)) => work.netlist.set_positions(&xs, &ys),
        None => {
            // Cold start: same center-cluster seeding as the fine flow.
            let mut rng = StdRng::seed_from_u64(config.seed);
            let center = work.region.center();
            let (mut xs, mut ys) = work.netlist.positions();
            for c in work.netlist.movable_cells() {
                let i = c.index();
                let class = work.netlist.class_of(c);
                xs[i] = center.x - 0.5 * class.width()
                    + rng.gen_range(-0.02..0.02) * work.region.width();
                ys[i] = center.y - 0.5 * class.height()
                    + rng.gen_range(-0.02..0.02) * work.region.height();
            }
            work.netlist.set_positions(&xs, &ys);
        }
    }

    let wl_model = WirelengthModel::new(&work.netlist);
    let density = DensityModel::with_options(
        work,
        bins,
        bins,
        config.target_density,
        config.density_fft,
    );
    let bin_w = work.region.width() / bins as f64;
    let mut pin_count = vec![0.0f64; nl_cells];
    for p in work.netlist.pin_ids() {
        if work.netlist.pin(p).net().is_some() {
            pin_count[work.netlist.pin(p).cell().index()] += 1.0;
        }
    }
    let areas: Vec<f64> = work
        .netlist
        .cell_ids()
        .map(|c| work.netlist.class_of(c).area())
        .collect();
    let mut opt = NesterovOptimizer::new(work, bin_w);
    let mut vx: Vec<f64> = Vec::new();
    let mut vy: Vec<f64> = Vec::new();
    let mut wl_scratch = WirelengthScratch::new();
    let mut gx: Vec<f64> = Vec::new();
    let mut gy: Vec<f64> = Vec::new();
    let mut dscratch = DensityScratch::new();
    density.presize_scratch(&mut dscratch);
    let mut dres = DensityResult::default();
    let mut precond: Vec<f64> = Vec::new();
    let mut lambda = config.lambda_init;
    let mut overflow = 1.0f64;
    let stop_overflow = config.stop_overflow.max(COARSE_STOP_OVERFLOW);

    // Coarse path extraction: only when the mode asks for it, the clustered
    // netlist still binds (synthetic cluster classes bind as unbound
    // pass-throughs), and some endpoints survived coarsening. Everything is
    // guarded — a fully clustered proxy with no endpoints skips the
    // machinery entirely and the level stays pure wirelength + density.
    let mut coarse_paths = match mode {
        FlowMode::PathExtraction(pcfg) => Timer::new(work, lib)
            .ok()
            .filter(|t| !t.graph().endpoints().is_empty())
            .map(|t| {
                let pw = PathWeighter::new(&work.netlist, &wl_model, pcfg);
                (t, pw, AnalysisScratch::new(), pcfg.extract_period.max(1))
            }),
        _ => None,
    };
    // Clusters pre-aggregate connectivity, so the coarse anneal can afford a
    // density schedule twice as steep as the fine flow's: the arrangement
    // forms in roughly half the iterations at no observed quality cost (the
    // finer levels re-anneal the endgame anyway).
    let lambda_growth = config.lambda_growth * config.lambda_growth;

    let mut iterations = 0usize;
    for iter in 0..config.max_iters {
        iterations = iter + 1;
        obs.iter_begin();
        obs.add(Counter::Iterations, 1);
        obs.add(Counter::CoarseIterations, 1);

        {
            let (a, b) = opt.positions();
            vx.clear();
            vx.extend_from_slice(a);
            vy.clear();
            vy.extend_from_slice(b);
        }

        // Periodic top-K extraction (path-extraction mode only): a fresh
        // forest + forward-only analysis at the extraction cadence; the
        // resulting net weights ride in the WA wirelength below until the
        // next extraction.
        let mut traced_wns = f64::NAN;
        let mut traced_tns = f64::NAN;
        if let Some((timer, pw, ascratch, period)) = coarse_paths.as_mut() {
            if iter % *period == 0 {
                work.netlist.set_positions(&vx, &vy);
                let sp = obs.start(Phase::SteinerBuild);
                let f = build_forest(&work.netlist);
                obs.stop(Phase::SteinerBuild, sp);
                obs.add(Counter::ForestBuilds, 1);
                let sp = obs.start(Phase::StaForward);
                let a = timer.analyze_no_rat_into(&work.netlist, &f, ascratch);
                obs.stop(Phase::StaForward, sp);
                obs.add(Counter::StaFull, 1);
                let sp = obs.start(Phase::PathExtract);
                pw.update(&work.netlist, timer, &a);
                obs.stop(Phase::PathExtract, sp);
                obs.add(Counter::PathExtractions, 1);
                traced_wns = a.wns();
                traced_tns = a.tns();
                ascratch.recycle(a);
            }
        }
        let weights = coarse_paths.as_ref().map(|(_, pw, _, _)| pw.weights());

        let wa_gamma = (bin_w * (0.1 + 8.0 * overflow)).max(1e-3);
        let sp = obs.start(Phase::WirelengthGrad);
        let wl_value = wl_model.wa_gradient_into(
            &vx,
            &vy,
            wa_gamma,
            weights,
            &mut wl_scratch,
            &mut gx,
            &mut gy,
        );
        obs.stop(Phase::WirelengthGrad, sp);

        let sp = obs.start(Phase::DensityGrad);
        density.evaluate_into(&vx, &vy, &mut dscratch, &mut dres);
        overflow = dres.overflow;
        if lambda == 0.0 {
            let wl_norm: f64 = gx.iter().chain(gy.iter()).map(|g| g.abs()).sum();
            let d_norm: f64 = dres
                .grad_x
                .iter()
                .chain(dres.grad_y.iter())
                .map(|g| g.abs())
                .sum();
            lambda = if d_norm > 0.0 { 0.1 * wl_norm / d_norm } else { 1.0 };
        }
        axpy_into(&mut gx, &dres.grad_x, lambda);
        axpy_into(&mut gy, &dres.grad_y, lambda);
        obs.stop(Phase::DensityGrad, sp);

        let sp = obs.start(Phase::NesterovStep);
        precond.resize(nl_cells, 0.0);
        precond
            .par_chunks_mut(MERGE_CHUNK)
            .zip(pin_count.par_chunks(MERGE_CHUNK))
            .zip(areas.par_chunks(MERGE_CHUNK))
            .for_each(|((pr, pc), ar)| {
                for ((p, &c), &a) in pr.iter_mut().zip(pc).zip(ar) {
                    *p = (c + lambda * a).max(1.0);
                }
            });
        let step = opt.step(&gx, &gy, &precond);
        let iter_lambda = lambda;
        lambda *= lambda_growth;
        obs.stop(Phase::NesterovStep, sp);

        obs.iter_end(IterEvent {
            iter: iter as u64,
            level: level as u32,
            wl: wl_value,
            hpwl: f64::NAN,
            overflow,
            lambda: iter_lambda,
            step,
            wns: traced_wns,
            tns: traced_tns,
            timing: coarse_paths.is_some(),
        });

        if iter > COARSE_MIN_ITERS && overflow < stop_overflow {
            break;
        }
    }

    let (sx, sy) = opt.solution();
    CoarseOutcome { xs: sx.to_vec(), ys: sy.to_vec(), iterations }
}

fn run_flow_fine(
    design: &Design,
    lib: &Library,
    mode: FlowMode,
    config: &FlowConfig,
    obs: &mut Observer,
    warm: Option<WarmStart>,
) -> Result<FlowResult, FlowError> {
    let t_start = Instant::now();
    // `timing_runtime` is reported as the STA-span delta across this run,
    // so a reused observer does not double-count an earlier run's time.
    let sta_seconds_at_entry = obs.sta_seconds();
    let mut work = design.clone();
    let nl_cells = work.netlist.num_cells();

    // --- initial placement ---------------------------------------------------
    // Cold start: cluster at the core center with small noise. Warm start
    // (multi-level): seed from the interpolated coarse solution.
    match &warm {
        Some(w) => work.netlist.set_positions(&w.xs, &w.ys),
        None => {
            let mut rng = StdRng::seed_from_u64(config.seed);
            let center = work.region.center();
            let (mut xs, mut ys) = work.netlist.positions();
            for c in work.netlist.movable_cells() {
                let i = c.index();
                let class = work.netlist.class_of(c);
                xs[i] = center.x - 0.5 * class.width()
                    + rng.gen_range(-0.02..0.02) * work.region.width();
                ys[i] = center.y - 0.5 * class.height()
                    + rng.gen_range(-0.02..0.02) * work.region.height();
            }
            work.netlist.set_positions(&xs, &ys);
        }
    }

    // Iteration at which the mode's timing mechanism activates. A cold start
    // uses the mode's `start_iter` directly; a warm start doesn't know which
    // iteration corresponds to "spread enough", so it starts unset and is
    // latched below once overflow first drops under [`WARM_TIMING_OVERFLOW`].
    // Pure-wirelength mode never activates timing, warm or not.
    let mut timing_start = match (mode, &warm) {
        (FlowMode::Wirelength, _) => usize::MAX,
        (_, Some(_)) => usize::MAX,
        (FlowMode::Differentiable(d), None) => d.start_iter,
        (FlowMode::NetWeighting(n), None) => n.start_iter,
        (FlowMode::PathExtraction(p), None) => p.start_iter,
    };

    // A warm start re-enters λ low (auto-balance ratio below) to rebuild a
    // wirelength-dominant phase, but the standard growth then crawls through
    // the overflow tail — the placement is already globally arranged, so the
    // anneal is compressed slightly to keep the (expensive) endgame short.
    let lambda_growth = match &warm {
        Some(_) => config.lambda_growth * WARM_LAMBDA_GROWTH_BOOST,
        None => config.lambda_growth,
    };

    // --- models -------------------------------------------------------------
    let wl_model = WirelengthModel::new(&work.netlist);
    let mut density = DensityModel::with_options(
        &work,
        config.bins,
        config.bins,
        config.target_density,
        config.density_fft,
    );
    let bin_w = work.region.width() / config.bins as f64;
    let (timer_gamma, wire_model) = match mode {
        FlowMode::Differentiable(d) => (d.gamma, d.wire_model.into()),
        _ => (TimerConfig::default().gamma, dtp_sta::WireModel::Elmore),
    };
    let timer = Timer::with_config(
        &work,
        lib,
        TimerConfig { gamma: timer_gamma, wire_model, ..TimerConfig::default() },
    )?;
    let mut weighter = match mode {
        FlowMode::NetWeighting(cfg) => Some(NetWeighter::new(&wl_model, cfg)),
        _ => None,
    };
    let mut path_weighter = match mode {
        FlowMode::PathExtraction(cfg) => {
            Some(PathWeighter::new(&work.netlist, &wl_model, cfg))
        }
        _ => None,
    };
    // Per-cell preconditioner ingredients.
    let mut pin_count = vec![0.0f64; nl_cells];
    for p in work.netlist.pin_ids() {
        if work.netlist.pin(p).net().is_some() {
            pin_count[work.netlist.pin(p).cell().index()] += 1.0;
        }
    }
    let areas: Vec<f64> = work
        .netlist
        .cell_ids()
        .map(|c| work.netlist.class_of(c).area())
        .collect();

    let mut route = config.route_aware.then(|| RouteState::new(&work, config));
    let mut opt = NesterovOptimizer::new(&work, bin_w);
    let mut forest: Option<SteinerForest> = None;
    // Topology-table configuration for the in-loop forest; the post-GP and
    // final reporting forests always use the legacy constructions so the
    // reported metrics stay comparable across configurations.
    let table_cfg = TableConfig {
        enabled: config.rsmt_tables,
        max_degree: config.rsmt_table_max_degree,
    };
    let mut forest_scratch = ForestScratch::new();
    let mut inc = IncrementalState::new(nl_cells);
    let mut scratch = AnalysisScratch::new();
    // Pre-size every scratch from the design's stats so the steady-state
    // iteration allocates nothing: the warm-up growth that used to happen
    // lazily inside the first iterations happens here, once.
    forest_scratch.presize(work.netlist.num_nets());
    scratch.presize(work.netlist.num_pins(), work.netlist.num_nets());
    let mut grads = PositionGradients::default();
    let mut prev: Option<Analysis> = None;
    // Persistent position buffers (refilled from the optimizer each
    // iteration instead of allocating two fresh Vecs).
    let mut vx: Vec<f64> = Vec::new();
    let mut vy: Vec<f64> = Vec::new();
    // Persistent gradient-path buffers: with these, the steady-state
    // wirelength + density + timing gradient evaluation allocates nothing.
    let mut wl_scratch = WirelengthScratch::new();
    let mut gx: Vec<f64> = Vec::new();
    let mut gy: Vec<f64> = Vec::new();
    let mut dscratch = DensityScratch::new();
    density.presize_scratch(&mut dscratch);
    let mut dres = DensityResult::default();
    let mut precond: Vec<f64> = Vec::new();
    let mut lambda = config.lambda_init;
    let mut overflow = 1.0f64;
    let mut trace = Vec::new();
    let (mut t1, mut t2) = match mode {
        FlowMode::Differentiable(d) => (d.t1, d.t2),
        _ => (0.0, 0.0),
    };

    let mut iterations = 0usize;
    for iter in 0..config.max_iters {
        iterations = iter + 1;
        obs.iter_begin();
        obs.add(Counter::Iterations, 1);
        {
            let (a, b) = opt.positions();
            vx.clear();
            vx.extend_from_slice(a);
            vy.clear();
            vy.extend_from_slice(b);
        }
        work.netlist.set_positions(&vx, &vy);

        // Warm-started timing latch: `overflow` here is still the previous
        // iteration's value, same as the route-activation latch below.
        if warm.is_some()
            && timing_start == usize::MAX
            && !matches!(mode, FlowMode::Wirelength)
            && iter > 0
            && overflow < WARM_TIMING_OVERFLOW
        {
            timing_start = iter;
        }
        // Steiner forest maintenance (only when some consumer needs it).
        let timing_active = iter >= timing_start;
        let trace_timing =
            config.trace_timing_every > 0 && iter % config.trace_timing_every == 0;
        // Congestion optimization latches on once the cells have spread out
        // (`overflow` here is still the previous iteration's value).
        if let Some(rs) = route.as_mut() {
            if !rs.active && iter > 0 && overflow < ROUTE_START_OVERFLOW {
                rs.active = true;
            }
        }
        let route_active = route.as_ref().is_some_and(|rs| rs.active);
        if timing_active || trace_timing || route_active {
            if config.incremental_timing {
                // Dirty-set maintenance: per-net coordinate updates for
                // geometry-dirty nets, per-net Steiner rebuilds once a net's
                // accumulated drift exceeds its bbox budget. Replaces the
                // blanket periodic full-forest rebuild.
                match &mut forest {
                    Some(f) => {
                        let sp = obs.start(Phase::SteinerUpdate);
                        inc.sync_forest(
                            &work.netlist,
                            f,
                            &vx,
                            &vy,
                            config,
                            &mut forest_scratch,
                        );
                        obs.stop(Phase::SteinerUpdate, sp);
                        obs.add(Counter::ForestSyncs, 1);
                        obs.add(Counter::GeoDirtyNets, inc.geo_nets.len() as u64);
                        obs.add(Counter::TopoDirtyNets, inc.topo_nets.len() as u64);
                    }
                    None => {
                        let sp = obs.start(Phase::SteinerBuild);
                        let f = build_forest_with(&work.netlist, table_cfg);
                        inc.reset_after_build(&f, &vx, &vy, config.topo_dirty_frac);
                        forest = Some(f);
                        obs.stop(Phase::SteinerBuild, sp);
                        obs.add(Counter::ForestBuilds, 1);
                        if let Some(p) = prev.take() {
                            scratch.recycle(p);
                        }
                    }
                }
            } else {
                let rebuild_period = match mode {
                    FlowMode::Differentiable(d) => d.steiner_rebuild_period,
                    _ => 10,
                };
                match &mut forest {
                    Some(f) if iter % rebuild_period != 0 => {
                        let sp = obs.start(Phase::SteinerUpdate);
                        f.update_positions(&work.netlist);
                        obs.stop(Phase::SteinerUpdate, sp);
                    }
                    _ => {
                        let sp = obs.start(Phase::SteinerBuild);
                        forest = Some(build_forest_with(&work.netlist, table_cfg));
                        obs.stop(Phase::SteinerBuild, sp);
                        obs.add(Counter::ForestBuilds, 1);
                    }
                }
            }
        }

        // Exact RUDY map maintenance: full build on activation, then
        // incremental updates from the same geometry/topology-dirty net
        // sets the incremental timer consumes (plus a cell-position scan
        // for the pin-density term). The legacy (non-incremental) path has
        // no dirty sets and rebuilds at the feedback cadence instead.
        if route_active {
            let rs = route.as_mut().expect("route state exists when active");
            let f = forest.as_ref().expect("forest built when route is active");
            let sp = obs.start(Phase::RudyUpdate);
            if !rs.built {
                rs.map.build(&work.netlist, f);
                rs.built = true;
                obs.add(Counter::RudyBuilds, 1);
            } else if config.incremental_timing {
                rs.map.update_nets(f, &inc.geo_nets);
                rs.map.update_nets(f, &inc.topo_nets);
                rs.map.sync_cells(&work.netlist);
                obs.add(Counter::RudyIncUpdates, 1);
            } else if rs.iters_active % config.route_update_period.max(1) == 0 {
                rs.map.build(&work.netlist, f);
                obs.add(Counter::RudyBuilds, 1);
            }
            obs.stop(Phase::RudyUpdate, sp);
        }

        // Wirelength gradient (WA), γ annealed with overflow; congested
        // nets carry their boosted weight (merged with the timing
        // weighter's weights when both mechanisms are on).
        let wa_gamma = (bin_w * (0.1 + 8.0 * overflow)).max(1e-3);
        let sp = obs.start(Phase::WirelengthGrad);
        let timing_weights = weighter
            .as_ref()
            .map(NetWeighter::weights)
            .or_else(|| path_weighter.as_ref().map(PathWeighter::weights));
        if let Some(rs) = route.as_mut().filter(|rs| rs.boosted) {
            rs.combined.clear();
            match timing_weights {
                Some(w) => rs
                    .combined
                    .extend(w.iter().zip(&rs.boost).map(|(a, b)| a * b)),
                None => rs.combined.extend_from_slice(&rs.boost),
            }
        }
        let weights = match route.as_ref() {
            Some(rs) if rs.boosted => Some(rs.combined.as_slice()),
            _ => timing_weights,
        };
        let wl_value = wl_model.wa_gradient_into(
            &vx,
            &vy,
            wa_gamma,
            weights,
            &mut wl_scratch,
            &mut gx,
            &mut gy,
        );
        obs.stop(Phase::WirelengthGrad, sp);

        // Density gradient.
        let sp = obs.start(Phase::DensityGrad);
        density.evaluate_into(&vx, &vy, &mut dscratch, &mut dres);
        overflow = dres.overflow;
        if lambda == 0.0 {
            // Auto-balance λ against the wirelength gradient on iteration 0.
            // A warm start re-enters the λ schedule "mid-flight": the
            // placement is already spread, so the density gradient is small
            // and the cold-start ratio would over-weight density from the
            // first step, freezing the arrangement before wirelength (and
            // timing) can improve it. A lower ratio restores the
            // wirelength-dominant phase the cold schedule gets for free.
            let ratio = if warm.is_some() { 0.05 } else { 0.1 };
            let wl_norm: f64 = gx.iter().chain(gy.iter()).map(|g| g.abs()).sum();
            let d_norm: f64 = dres
                .grad_x
                .iter()
                .chain(dres.grad_y.iter())
                .map(|g| g.abs())
                .sum();
            lambda = if d_norm > 0.0 { ratio * wl_norm / d_norm } else { 1.0 };
        }
        axpy_into(&mut gx, &dres.grad_x, lambda);
        axpy_into(&mut gy, &dres.grad_y, lambda);
        obs.stop(Phase::DensityGrad, sp);

        // Congestion penalty gradient, normalized like the timing
        // preconditioner: its ∞-norm is pinned to `route_weight` times the
        // combined wirelength+density gradient's, so the pressure tracks
        // the optimizer's scale instead of the raw demand units.
        if route_active {
            let rs = route.as_mut().expect("route state exists when active");
            let f = forest.as_ref().expect("forest built when route is active");
            let sp = obs.start(Phase::CongestionGrad);
            rs.penalty
                .value_and_gradient(&work.netlist, f, &mut rs.pgx, &mut rs.pgy);
            let base_norm = gx
                .iter()
                .chain(gy.iter())
                .fold(0.0f64, |m, &g| m.max(g.abs()));
            let p_norm = rs
                .pgx
                .iter()
                .chain(rs.pgy.iter())
                .fold(0.0f64, |m, &g| m.max(g.abs()));
            if p_norm > 0.0 {
                let scale = config.route_weight * base_norm / p_norm;
                axpy_into(&mut gx, &rs.pgx, scale);
                axpy_into(&mut gy, &rs.pgy, scale);
            }
            obs.stop(Phase::CongestionGrad, sp);
        }

        // RUDY feedback every `route_update_period` active iterations:
        // inflate cells in overflowed bins (density-model footprints) and
        // boost the wirelength weight of nets crossing them; both take
        // effect from the next iteration's gradients.
        if route_active {
            let rs = route.as_mut().expect("route state exists when active");
            let sp = obs.start(Phase::RudyUpdate);
            if rs.iters_active % config.route_update_period.max(1) == 0 {
                inflation_factors(
                    &rs.map,
                    &work.netlist,
                    config.inflation_max,
                    &mut rs.inflation,
                );
                density.set_inflation(&rs.inflation);
                rs.boost.resize(wl_model.num_nets(), 1.0);
                rs.boosted = false;
                for e in 0..wl_model.num_nets() {
                    let over = rs.map.net_overflow(NetId::new(wl_model.net_index(e)));
                    let b = 1.0 + config.route_weight * over.min(1.0);
                    rs.boost[e] = b;
                    if b != 1.0 {
                        rs.boosted = true;
                    }
                }
            }
            rs.iters_active += 1;
            obs.stop(Phase::RudyUpdate, sp);
        }

        // Timing mechanisms.
        let mut traced_wns = f64::NAN;
        let mut traced_tns = f64::NAN;
        match mode {
            FlowMode::Differentiable(dcfg) if timing_active => {
                let f = forest.as_ref().expect("forest built when timing is active");
                let sp = obs.start(Phase::StaForward);
                // Incremental smoothed analysis when only a few nets are
                // dirty; full re-analysis on the first timing iteration and
                // past the fallback fraction. Gradients never read RATs, so
                // the incremental path skips the backward sweep.
                let analysis = match prev.take() {
                    Some(p)
                        if config.incremental_timing
                            && p.gamma == timer_gamma
                            && inc.dirty_fraction(f.len())
                                <= config.incremental_fallback_frac =>
                    {
                        obs.add(Counter::StaIncremental, 1);
                        let a = timer.analyze_incremental_into(
                            &work.netlist,
                            f,
                            &p,
                            &inc.moved_cells,
                            false,
                            &mut scratch,
                        );
                        scratch.recycle(p);
                        a
                    }
                    p => {
                        obs.add(Counter::StaFull, 1);
                        if config.incremental_timing && p.is_some() {
                            obs.add(Counter::StaFallback, 1);
                        }
                        if let Some(p) = p {
                            scratch.recycle(p);
                        }
                        timer.analyze_smoothed_into(&work.netlist, f, &mut scratch)
                    }
                };
                inc.mark_analyzed();
                obs.stop(Phase::StaForward, sp);
                let sp = obs.start(Phase::StaBackward);
                timer.gradients_into(
                    &work.netlist,
                    &analysis,
                    f,
                    t1,
                    t2,
                    &mut scratch,
                    &mut grads,
                );
                prev = Some(analysis);
                obs.stop(Phase::StaBackward, sp);
                // Optional preconditioning (§5 future work): normalize the
                // timing gradient against the combined WL+density gradient.
                let scale = if dcfg.grad_norm_target > 0.0 {
                    let base_norm = gx
                        .iter()
                        .chain(gy.iter())
                        .fold(0.0f64, |m, &g| m.max(g.abs()));
                    let t_norm = grads
                        .cell_grad_x
                        .iter()
                        .chain(grads.cell_grad_y.iter())
                        .fold(0.0f64, |m, &g| m.max(g.abs()));
                    if t_norm > 0.0 { dcfg.grad_norm_target * base_norm / t_norm } else { 0.0 }
                } else {
                    1.0
                };
                axpy_into(&mut gx, &grads.cell_grad_x, scale);
                axpy_into(&mut gy, &grads.cell_grad_y, scale);
                t1 *= dcfg.growth;
                t2 *= dcfg.growth;
            }
            FlowMode::NetWeighting(wcfg)
                if timing_active && (iter - timing_start) % wcfg.sta_period == 0 =>
            {
                let f = forest.as_ref().expect("forest built when timing is active");
                let sp = obs.start(Phase::StaForward);
                // The weighter reads per-pin slacks, so the incremental
                // path must recompute the RAT sweep (`recompute_rat`).
                let analysis = match prev.take() {
                    Some(p)
                        if config.incremental_timing
                            && p.gamma == 0.0
                            && inc.dirty_fraction(f.len())
                                <= config.incremental_fallback_frac =>
                    {
                        obs.add(Counter::StaIncremental, 1);
                        let a = timer.analyze_incremental_into(
                            &work.netlist,
                            f,
                            &p,
                            &inc.moved_cells,
                            true,
                            &mut scratch,
                        );
                        scratch.recycle(p);
                        a
                    }
                    p => {
                        obs.add(Counter::StaFull, 1);
                        if config.incremental_timing && p.is_some() {
                            obs.add(Counter::StaFallback, 1);
                        }
                        if let Some(p) = p {
                            scratch.recycle(p);
                        }
                        timer.analyze_into(&work.netlist, f, &mut scratch)
                    }
                };
                inc.mark_analyzed();
                obs.stop(Phase::StaForward, sp);
                let sp = obs.start(Phase::NetWeight);
                weighter
                    .as_mut()
                    .expect("weighter exists in net-weighting mode")
                    .update(&work.netlist, &wl_model, &analysis);
                obs.stop(Phase::NetWeight, sp);
                traced_wns = analysis.wns();
                traced_tns = analysis.tns();
                prev = Some(analysis);
            }
            FlowMode::PathExtraction(pcfg)
                if timing_active
                    && (iter - timing_start) % pcfg.extract_period.max(1) == 0 =>
            {
                let f = forest.as_ref().expect("forest built when timing is active");
                let sp = obs.start(Phase::StaForward);
                // Path extraction reads only arrival times and endpoint
                // slacks, so no RAT sweep runs on either path: the
                // incremental analysis skips it (`recompute_rat = false`)
                // and the full analysis is forward-only.
                let analysis = match prev.take() {
                    Some(p)
                        if config.incremental_timing
                            && p.gamma == 0.0
                            && inc.dirty_fraction(f.len())
                                <= config.incremental_fallback_frac =>
                    {
                        obs.add(Counter::StaIncremental, 1);
                        let a = timer.analyze_incremental_into(
                            &work.netlist,
                            f,
                            &p,
                            &inc.moved_cells,
                            false,
                            &mut scratch,
                        );
                        scratch.recycle(p);
                        a
                    }
                    p => {
                        obs.add(Counter::StaFull, 1);
                        if config.incremental_timing && p.is_some() {
                            obs.add(Counter::StaFallback, 1);
                        }
                        if let Some(p) = p {
                            scratch.recycle(p);
                        }
                        timer.analyze_no_rat_into(&work.netlist, f, &mut scratch)
                    }
                };
                inc.mark_analyzed();
                obs.stop(Phase::StaForward, sp);
                let sp = obs.start(Phase::PathExtract);
                path_weighter
                    .as_mut()
                    .expect("path weighter exists in path-extraction mode")
                    .update(&work.netlist, &timer, &analysis);
                obs.stop(Phase::PathExtract, sp);
                obs.add(Counter::PathExtractions, 1);
                traced_wns = analysis.wns();
                traced_tns = analysis.tns();
                prev = Some(analysis);
            }
            _ => {}
        }

        // Trace (exact timing only every `trace_timing_every` iterations).
        if trace_timing && traced_wns.is_nan() {
            if let Some(f) = forest.as_ref() {
                let sp = obs.start(Phase::TraceSta);
                let analysis = timer.analyze(&work.netlist, f);
                obs.stop(Phase::TraceSta, sp);
                obs.add(Counter::TraceAnalyses, 1);
                traced_wns = analysis.wns();
                traced_tns = analysis.tns();
            }
        }
        // Exact HPWL is only computed on traced iterations; telemetry reuses
        // it and reports `null` elsewhere (the smoothed WA wirelength is
        // free every iteration).
        let iter_hpwl = if trace_timing { wl_model.hpwl(&vx, &vy) } else { f64::NAN };
        if trace_timing {
            trace.push(TracePoint {
                iter,
                hpwl: iter_hpwl,
                overflow,
                wns: traced_wns,
                tns: traced_tns,
            });
        }

        // Preconditioned Nesterov step (persistent buffer, no per-iteration
        // allocation).
        let sp = obs.start(Phase::NesterovStep);
        precond.resize(nl_cells, 0.0);
        precond
            .par_chunks_mut(MERGE_CHUNK)
            .zip(pin_count.par_chunks(MERGE_CHUNK))
            .zip(areas.par_chunks(MERGE_CHUNK))
            .for_each(|((pr, pc), ar)| {
                for ((p, &c), &a) in pr.iter_mut().zip(pc).zip(ar) {
                    *p = (c + lambda * a).max(1.0);
                }
            });
        let step = opt.step(&gx, &gy, &precond);
        // The trace records the λ this iteration's gradient actually used
        // (post auto-balance, pre growth).
        let iter_lambda = lambda;
        lambda *= lambda_growth;
        obs.stop(Phase::NesterovStep, sp);

        obs.iter_end(IterEvent {
            iter: iter as u64,
            level: 0,
            wl: wl_value,
            hpwl: iter_hpwl,
            overflow,
            lambda: iter_lambda,
            step,
            wns: traced_wns,
            tns: traced_tns,
            timing: timing_active,
        });

        if iter > 30 && overflow < config.stop_overflow {
            break;
        }
    }

    // --- post-GP metrics ------------------------------------------------------
    let (sx, sy) = {
        let (a, b) = opt.solution();
        (a.to_vec(), b.to_vec())
    };
    work.netlist.set_positions(&sx, &sy);
    let sp = obs.start(Phase::SteinerBuild);
    let gp_forest = build_forest(&work.netlist);
    obs.stop(Phase::SteinerBuild, sp);
    obs.add(Counter::ForestBuilds, 1);
    let sp = obs.start(Phase::FinalSta);
    let gp_analysis = timer.analyze(&work.netlist, &gp_forest);
    obs.stop(Phase::FinalSta, sp);
    let gp_hpwl = wl_model.hpwl(&sx, &sy);
    let (gp_wns, gp_tns) = (gp_analysis.wns(), gp_analysis.tns());

    // --- legalization + detailed placement -------------------------------------
    let mut lx = sx;
    let mut ly = sy;
    let sp = obs.start(Phase::Legalize);
    match config.legalizer {
        LegalizerChoice::Abacus => {
            let leg = AbacusLegalizer::new(&work);
            obs.gauge(Gauge::LegalizeBands, leg.bands() as f64);
            leg.legalize(&work, &mut lx, &mut ly);
        }
        LegalizerChoice::Tetris => {
            let leg = Legalizer::new(&work);
            obs.gauge(Gauge::LegalizeBands, leg.bands() as f64);
            leg.legalize(&work, &mut lx, &mut ly);
        }
    }
    obs.stop(Phase::Legalize, sp);
    let sp = obs.start(Phase::DetailPlace);
    DetailPlacer::new(&work).refine(&work, &mut lx, &mut ly, config.detail_passes);
    obs.stop(Phase::DetailPlace, sp);
    work.netlist.set_positions(&lx, &ly);
    let sp = obs.start(Phase::SteinerBuild);
    let final_forest = build_forest(&work.netlist);
    obs.stop(Phase::SteinerBuild, sp);
    obs.add(Counter::ForestBuilds, 1);
    let sp = obs.start(Phase::FinalSta);
    let final_analysis = timer.analyze(&work.netlist, &final_forest);
    obs.stop(Phase::FinalSta, sp);
    let congestion = {
        let g = config.route_grid.max(2);
        let mut map = RudyMap::new(&work, g, g, config.route_capacity);
        let sp = obs.start(Phase::RudyUpdate);
        map.build(&work.netlist, &final_forest);
        obs.stop(Phase::RudyUpdate, sp);
        obs.add(Counter::RudyBuilds, 1);
        map.summary()
    };
    let rsmt = forest.as_ref().map(SteinerForest::stats).unwrap_or_default();

    // End-of-run gauges: backend selections and pool state. Cheap enough to
    // record unconditionally (the registry writes are gated inside `gauge`).
    obs.gauge(Gauge::FftBackend, if density.uses_fft() { 1.0 } else { 0.0 });
    obs.gauge(Gauge::OverflowedFrac, congestion.overflowed_frac);
    obs.gauge(Gauge::RsmtExact, rsmt.exact as f64);
    obs.gauge(Gauge::RsmtTable, rsmt.table as f64);
    obs.gauge(Gauge::RsmtPrim, rsmt.prim as f64);
    obs.gauge(Gauge::RsmtSeqHits, rsmt.seq_hits as f64);
    obs.gauge(Gauge::RsmtSeqRebuilds, rsmt.seq_rebuilds as f64);
    obs.gauge(Gauge::PoolDispatches, rayon::dispatch_count() as f64);
    obs.gauge(Gauge::PoolThreads, rayon::current_num_threads() as f64);
    obs.flush();
    let timing_runtime = obs.sta_seconds() - sta_seconds_at_entry;

    Ok(FlowResult {
        mode: mode.label(),
        design: design.name.clone(),
        hpwl: wl_model.hpwl(&lx, &ly),
        wns: final_analysis.wns(),
        tns: final_analysis.tns(),
        wns_hold: final_analysis.wns_hold(),
        gp_hpwl,
        gp_wns,
        gp_tns,
        iterations,
        level_iterations: vec![iterations],
        runtime: t_start.elapsed().as_secs_f64(),
        timing_runtime,
        trace,
        xs: lx,
        ys: ly,
        congestion,
        rsmt,
    })
}
