//! Timing-to-wirelength weight transfer: the momentum net-weighting baseline
//! \[24\] and the top-K path-extraction weighter (arXiv 2503.11674).
//!
//! **Net weighting** periodically runs an exact STA, derives a per-net
//! *criticality* from the slack of the net's driver pin, and nudges the
//! net's weight in the weighted-wirelength objective (Eq. 4) with momentum:
//!
//! ```text
//! crit_e = max(0, −slack_e / |WNS|)            (1 for the most critical net)
//! ŵ_e    = 1 + max_boost · crit_e
//! w_e    ← momentum · w_e + (1 − momentum) · ŵ_e
//! ```
//!
//! **Path extraction** instead traces only the K worst paths
//! ([`dtp_sta::Timer::extract_paths_into`]) and re-derives the weights from
//! the per-pin criticalities they induce — every net not touched by an
//! extracted path snaps back to weight 1, so the timing force concentrates
//! on the paths that matter:
//!
//! ```text
//! crit_p = decay^rank · clamp(−slack/|WNS|, 0, 1)     (per extracted pin)
//! w_e    = max over pins p of net e: 1 + (pin_weight_cap − 1) · crit_p
//! ```

use crate::config::{NetWeightConfig, PathExtractConfig};
use dtp_netlist::{NetId, Netlist};
use dtp_place::WirelengthModel;
use dtp_sta::{Analysis, PathScratch, PathSet, Timer};

/// Evolving per-net weights for the weighted wirelength objective.
#[derive(Clone, Debug)]
pub struct NetWeighter {
    config: NetWeightConfig,
    /// One weight per *model* net (the wirelength model's net indexing).
    weights: Vec<f64>,
}

impl NetWeighter {
    /// Initializes unit weights for every net of the wirelength model.
    pub fn new(model: &WirelengthModel, config: NetWeightConfig) -> NetWeighter {
        NetWeighter { config, weights: vec![1.0; model.num_nets()] }
    }

    /// Current weights (aligned with the wirelength model's nets).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Updates the weights from an exact analysis.
    pub fn update(&mut self, nl: &Netlist, model: &WirelengthModel, analysis: &Analysis) {
        let wns = analysis.wns();
        if !wns.is_finite() || wns >= 0.0 {
            // No violations: decay back toward 1.
            for w in &mut self.weights {
                *w = self.config.momentum * *w + (1.0 - self.config.momentum);
            }
            return;
        }
        for e in 0..self.weights.len() {
            let net = NetId::new(model.net_index(e));
            let driver = nl.net(net).pins()[0];
            let slack = analysis.pin_slack(driver);
            let crit = if slack.is_finite() {
                (-slack / -wns).clamp(0.0, 1.0)
            } else {
                0.0
            };
            let target = 1.0 + self.config.max_boost * crit;
            self.weights[e] =
                self.config.momentum * self.weights[e] + (1.0 - self.config.momentum) * target;
        }
    }
}

/// Per-net weights derived from top-K critical-path extraction.
///
/// Unlike [`NetWeighter`], the weights carry no momentum: each extraction
/// rebuilds them from scratch (`fill(1.0)` + max over the extracted pins),
/// so a net that leaves the critical set relaxes immediately and the update
/// is a deterministic function of the analysis alone.
#[derive(Debug)]
pub struct PathWeighter {
    config: PathExtractConfig,
    /// One weight per *model* net (the wirelength model's net indexing).
    weights: Vec<f64>,
    /// Netlist net index → model net index (`u32::MAX` = not modeled).
    model_net_of: Vec<u32>,
    scratch: PathScratch,
    paths: PathSet,
}

impl PathWeighter {
    /// Initializes unit weights and the netlist→model net map.
    pub fn new(nl: &Netlist, model: &WirelengthModel, config: PathExtractConfig) -> PathWeighter {
        let mut model_net_of = vec![u32::MAX; nl.num_nets()];
        for e in 0..model.num_nets() {
            model_net_of[model.net_index(e)] = e as u32;
        }
        let mut scratch = PathScratch::new();
        scratch.presize(nl.num_pins(), nl.num_pins());
        let mut paths = PathSet::new();
        paths.presize(nl.num_pins());
        PathWeighter {
            config,
            weights: vec![1.0; model.num_nets()],
            model_net_of,
            scratch,
            paths,
        }
    }

    /// Current weights (aligned with the wirelength model's nets).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The paths of the most recent extraction.
    pub fn paths(&self) -> &PathSet {
        &self.paths
    }

    /// Extracts the top-K paths of `analysis` and rebuilds the weights from
    /// their pin criticalities. The analysis only needs forward quantities
    /// ([`Timer::analyze_no_rat_into`] suffices). Steady-state calls are
    /// allocation-free.
    pub fn update(&mut self, nl: &Netlist, timer: &Timer, analysis: &Analysis) {
        timer.extract_paths_into(
            nl,
            analysis,
            self.config.top_k,
            self.config.path_decay,
            &mut self.scratch,
            &mut self.paths,
        );
        self.weights.fill(1.0);
        let boost = self.config.pin_weight_cap - 1.0;
        for &p in self.paths.critical_pins() {
            let Some(net) = nl.pin(p).net() else { continue };
            let m = self.model_net_of[net.index()];
            if m == u32::MAX {
                continue;
            }
            let w = 1.0 + boost * self.paths.pin_criticality(p).min(1.0);
            let slot = &mut self.weights[m as usize];
            if w > *slot {
                *slot = w;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtp_liberty::synth::synthetic_pdk;
    use dtp_netlist::generate::{generate, GeneratorConfig};
    use dtp_rsmt::build_forest;
    use dtp_sta::Timer;

    #[test]
    fn critical_nets_get_heavier() {
        let mut cfg = GeneratorConfig::named("nw", 250);
        cfg.clock_period = 50.0; // aggressive: many violations
        let d = generate(&cfg).unwrap();
        let lib = synthetic_pdk();
        let timer = Timer::new(&d, &lib).unwrap();
        let forest = build_forest(&d.netlist);
        let analysis = timer.analyze(&d.netlist, &forest);
        assert!(analysis.wns() < 0.0, "test needs violations");

        let model = WirelengthModel::new(&d.netlist);
        let mut weighter = NetWeighter::new(&model, NetWeightConfig::default());
        weighter.update(&d.netlist, &model, &analysis);

        // The weight of the most critical driver's net must exceed that of a
        // comfortably met net.
        let mut crit_w: f64 = 0.0;
        let mut slack_of_max = f64::INFINITY;
        let mut relaxed_w: f64 = f64::INFINITY;
        for e in 0..model.num_nets() {
            let net = NetId::new(model.net_index(e));
            let driver = d.netlist.net(net).pins()[0];
            let s = analysis.pin_slack(driver);
            if s < slack_of_max {
                slack_of_max = s;
                crit_w = weighter.weights()[e];
            }
            if s > 0.0 {
                relaxed_w = relaxed_w.min(weighter.weights()[e]);
            }
        }
        assert!(
            crit_w > relaxed_w,
            "critical weight {crit_w} not above relaxed weight {relaxed_w}"
        );
        assert!(crit_w > 1.0);
    }

    #[test]
    fn weights_decay_without_violations() {
        let mut cfg = GeneratorConfig::named("nw2", 100);
        cfg.clock_period = 1e7; // everything met
        let d = generate(&cfg).unwrap();
        let lib = synthetic_pdk();
        let timer = Timer::new(&d, &lib).unwrap();
        let forest = build_forest(&d.netlist);
        let analysis = timer.analyze(&d.netlist, &forest);
        assert!(analysis.wns() > 0.0);
        let model = WirelengthModel::new(&d.netlist);
        let mut weighter = NetWeighter::new(&model, NetWeightConfig::default());
        // Force a high weight, then verify decay toward 1.
        weighter.weights[0] = 5.0;
        weighter.update(&d.netlist, &model, &analysis);
        assert!(weighter.weights()[0] < 5.0);
        for _ in 0..50 {
            weighter.update(&d.netlist, &model, &analysis);
        }
        assert!((weighter.weights()[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn path_weights_concentrate_on_extracted_paths() {
        let mut cfg = GeneratorConfig::named("pw", 250);
        cfg.clock_period = 50.0; // aggressive: many violations
        let d = generate(&cfg).unwrap();
        let lib = synthetic_pdk();
        let timer = Timer::new(&d, &lib).unwrap();
        let forest = build_forest(&d.netlist);
        let analysis = timer.analyze(&d.netlist, &forest);
        assert!(analysis.wns() < 0.0, "test needs violations");

        let model = WirelengthModel::new(&d.netlist);
        let pcfg = PathExtractConfig { top_k: 8, ..PathExtractConfig::default() };
        let mut weighter = PathWeighter::new(&d.netlist, &model, pcfg);
        weighter.update(&d.netlist, &timer, &analysis);

        assert_eq!(weighter.paths().num_paths(), 8.min(analysis.endpoints().len()));
        // Every weight is in [1, cap]; the rank-0 path (criticality 1) pins
        // push their nets to exactly the cap.
        let cap = pcfg.pin_weight_cap;
        for &w in weighter.weights() {
            assert!((1.0..=cap + 1e-12).contains(&w), "weight {w} out of range");
        }
        let worst_endpoint = weighter.paths().endpoint(0);
        let net = d.netlist.pin(worst_endpoint).net().unwrap();
        let m = (0..model.num_nets())
            .find(|&e| model.net_index(e) == net.index())
            .expect("worst endpoint's net is modeled");
        assert!((weighter.weights()[m] - cap).abs() < 1e-12);
        // Boosted nets exist and are a strict minority (force concentrates).
        let boosted = weighter.weights().iter().filter(|&&w| w > 1.0).count();
        assert!(boosted > 0 && boosted < model.num_nets() / 2);

        // The update is memoryless: a second update from the same analysis
        // reproduces the weights bit-for-bit.
        let snapshot = weighter.weights().to_vec();
        weighter.update(&d.netlist, &timer, &analysis);
        assert_eq!(snapshot, weighter.weights());
    }

    #[test]
    fn path_weights_relax_without_violations() {
        let mut cfg = GeneratorConfig::named("pw2", 100);
        cfg.clock_period = 1e7; // everything met
        let d = generate(&cfg).unwrap();
        let lib = synthetic_pdk();
        let timer = Timer::new(&d, &lib).unwrap();
        let forest = build_forest(&d.netlist);
        let analysis = timer.analyze(&d.netlist, &forest);
        assert!(analysis.wns() > 0.0);
        let model = WirelengthModel::new(&d.netlist);
        let mut weighter =
            PathWeighter::new(&d.netlist, &model, PathExtractConfig::default());
        weighter.update(&d.netlist, &timer, &analysis);
        // No negative slack → zero criticality everywhere → all weights 1.
        assert!(weighter.weights().iter().all(|&w| w == 1.0));
    }
}
