//! Momentum-based net weighting — the baseline timing-driven flow \[24\].
//!
//! Instead of differentiating the timing metrics, this approach periodically
//! runs an exact STA, derives a per-net *criticality* from the slack of the
//! net's driver pin, and nudges the net's weight in the weighted-wirelength
//! objective (Eq. 4) with momentum:
//!
//! ```text
//! crit_e = max(0, −slack_e / |WNS|)            (1 for the most critical net)
//! ŵ_e    = 1 + max_boost · crit_e
//! w_e    ← momentum · w_e + (1 − momentum) · ŵ_e
//! ```

use crate::config::NetWeightConfig;
use dtp_netlist::{NetId, Netlist};
use dtp_place::WirelengthModel;
use dtp_sta::Analysis;

/// Evolving per-net weights for the weighted wirelength objective.
#[derive(Clone, Debug)]
pub struct NetWeighter {
    config: NetWeightConfig,
    /// One weight per *model* net (the wirelength model's net indexing).
    weights: Vec<f64>,
}

impl NetWeighter {
    /// Initializes unit weights for every net of the wirelength model.
    pub fn new(model: &WirelengthModel, config: NetWeightConfig) -> NetWeighter {
        NetWeighter { config, weights: vec![1.0; model.num_nets()] }
    }

    /// Current weights (aligned with the wirelength model's nets).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Updates the weights from an exact analysis.
    pub fn update(&mut self, nl: &Netlist, model: &WirelengthModel, analysis: &Analysis) {
        let wns = analysis.wns();
        if !wns.is_finite() || wns >= 0.0 {
            // No violations: decay back toward 1.
            for w in &mut self.weights {
                *w = self.config.momentum * *w + (1.0 - self.config.momentum);
            }
            return;
        }
        for e in 0..self.weights.len() {
            let net = NetId::new(model.net_index(e));
            let driver = nl.net(net).pins()[0];
            let slack = analysis.pin_slack(driver);
            let crit = if slack.is_finite() {
                (-slack / -wns).clamp(0.0, 1.0)
            } else {
                0.0
            };
            let target = 1.0 + self.config.max_boost * crit;
            self.weights[e] =
                self.config.momentum * self.weights[e] + (1.0 - self.config.momentum) * target;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtp_liberty::synth::synthetic_pdk;
    use dtp_netlist::generate::{generate, GeneratorConfig};
    use dtp_rsmt::build_forest;
    use dtp_sta::Timer;

    #[test]
    fn critical_nets_get_heavier() {
        let mut cfg = GeneratorConfig::named("nw", 250);
        cfg.clock_period = 50.0; // aggressive: many violations
        let d = generate(&cfg).unwrap();
        let lib = synthetic_pdk();
        let timer = Timer::new(&d, &lib).unwrap();
        let forest = build_forest(&d.netlist);
        let analysis = timer.analyze(&d.netlist, &forest);
        assert!(analysis.wns() < 0.0, "test needs violations");

        let model = WirelengthModel::new(&d.netlist);
        let mut weighter = NetWeighter::new(&model, NetWeightConfig::default());
        weighter.update(&d.netlist, &model, &analysis);

        // The weight of the most critical driver's net must exceed that of a
        // comfortably met net.
        let mut crit_w: f64 = 0.0;
        let mut slack_of_max = f64::INFINITY;
        let mut relaxed_w: f64 = f64::INFINITY;
        for e in 0..model.num_nets() {
            let net = NetId::new(model.net_index(e));
            let driver = d.netlist.net(net).pins()[0];
            let s = analysis.pin_slack(driver);
            if s < slack_of_max {
                slack_of_max = s;
                crit_w = weighter.weights()[e];
            }
            if s > 0.0 {
                relaxed_w = relaxed_w.min(weighter.weights()[e]);
            }
        }
        assert!(
            crit_w > relaxed_w,
            "critical weight {crit_w} not above relaxed weight {relaxed_w}"
        );
        assert!(crit_w > 1.0);
    }

    #[test]
    fn weights_decay_without_violations() {
        let mut cfg = GeneratorConfig::named("nw2", 100);
        cfg.clock_period = 1e7; // everything met
        let d = generate(&cfg).unwrap();
        let lib = synthetic_pdk();
        let timer = Timer::new(&d, &lib).unwrap();
        let forest = build_forest(&d.netlist);
        let analysis = timer.analyze(&d.netlist, &forest);
        assert!(analysis.wns() > 0.0);
        let model = WirelengthModel::new(&d.netlist);
        let mut weighter = NetWeighter::new(&model, NetWeightConfig::default());
        // Force a high weight, then verify decay toward 1.
        weighter.weights[0] = 5.0;
        weighter.update(&d.netlist, &model, &analysis);
        assert!(weighter.weights()[0] < 5.0);
        for _ in 0..50 {
            weighter.update(&d.netlist, &model, &analysis);
        }
        assert!((weighter.weights()[0] - 1.0).abs() < 1e-6);
    }
}
