//! Path-extraction flow goldens: pool-width determinism of
//! `FlowMode::PathExtraction`, agreement of the extracted weights with the
//! full-analysis criticalities when K covers every endpoint, and a
//! multi-level smoke exercising the coarse-level extraction guard.

use dtp_core::{run_flow, FlowConfig, FlowMode, PathExtractConfig, PathWeighter};
use dtp_liberty::synth::synthetic_pdk;
use dtp_netlist::generate::{generate, GeneratorConfig};
use dtp_place::{check_legal, WirelengthModel};
use dtp_rsmt::build_forest;
use dtp_sta::Timer;

fn path_mode(start_iter: usize) -> FlowMode {
    FlowMode::PathExtraction(PathExtractConfig { start_iter, ..PathExtractConfig::default() })
}

/// The path-extraction flow — forward-only analyses, extraction, weight
/// transfer, Nesterov, legalization — is bit-for-bit identical across pool
/// widths 1/2/4 and the ambient pool.
#[test]
fn path_extraction_flow_is_bit_identical_across_pool_widths() {
    let d = generate(&GeneratorConfig::named("paths_golden", 600)).expect("generator");
    let lib = synthetic_pdk();
    let mut cfg = FlowConfig {
        max_iters: 120,
        trace_timing_every: 20,
        ..FlowConfig::default()
    };
    // Engage timing well before the iteration cap so several extractions run.
    let mode = path_mode(60);
    cfg.threads = 1;
    let base = run_flow(&d, &lib, mode, &cfg).expect("flow runs");
    assert_eq!(base.mode, "PathExtract");
    for threads in [0usize, 2, 4] {
        cfg.threads = threads;
        let r = run_flow(&d, &lib, mode, &cfg).expect("flow runs");
        assert_eq!(base.xs, r.xs, "x positions differ at threads={threads}");
        assert_eq!(base.ys, r.ys, "y positions differ at threads={threads}");
        assert_eq!(base.hpwl, r.hpwl, "hpwl differs at threads={threads}");
        assert_eq!(base.wns, r.wns, "wns differs at threads={threads}");
        assert_eq!(base.tns, r.tns, "tns differs at threads={threads}");
        assert_eq!(base.iterations, r.iterations);
    }
    let violations = check_legal(&d, &base.xs, &base.ys);
    assert!(violations.is_empty(), "violations: {:?}", &violations[..violations.len().min(5)]);
}

/// With `top_k = num_endpoints`, `path_decay = 1` and extraction every
/// analysis (`extract_period = 1` semantics), the extracted criticalities
/// agree with the full (RAT-propagating) analysis: every endpoint carries
/// exactly `clamp(−slack/|WNS|, 0, 1)`, every traced pin is bounded by its
/// exact per-pin criticality, and the endpoint nets' weights hit the
/// corresponding boost.
#[test]
fn full_extraction_matches_full_analysis_criticalities() {
    let mut gcfg = GeneratorConfig::named("paths_full", 300);
    gcfg.clock_period = 50.0; // aggressive: violations everywhere
    let d = generate(&gcfg).expect("generator");
    let lib = synthetic_pdk();
    let timer = Timer::new(&d, &lib).expect("binds");
    let forest = build_forest(&d.netlist);
    let analysis = timer.analyze(&d.netlist, &forest); // full: RATs included
    let wns = analysis.wns();
    assert!(wns < 0.0, "test needs violations");

    let model = WirelengthModel::new(&d.netlist);
    let pcfg = PathExtractConfig {
        top_k: analysis.endpoints().len(),
        extract_period: 1,
        path_decay: 1.0,
        pin_weight_cap: 3.0,
        start_iter: 0,
    };
    let mut pw = PathWeighter::new(&d.netlist, &model, pcfg);
    pw.update(&d.netlist, &timer, &analysis);
    let paths = pw.paths();
    assert_eq!(paths.num_paths(), analysis.endpoints().len());

    for k in 0..paths.num_paths() {
        let e = paths.endpoint(k);
        let exact = ((-analysis.slack[e.index()]) / -wns).clamp(0.0, 1.0);
        assert!(
            (paths.pin_criticality(e) - exact).abs() < 1e-12,
            "endpoint criticality mismatch at rank {k}"
        );
        // Every pin of the path lies on a real path into `e`, so its exact
        // (RAT-based) criticality can only be larger.
        for &p in paths.path(k) {
            let s = analysis.pin_slack(p);
            let full = if s.is_finite() { ((-s) / -wns).clamp(0.0, 1.0) } else { 0.0 };
            assert!(
                paths.pin_criticality(p) <= full + 1e-9,
                "path criticality exceeds exact at pin {}",
                d.netlist.pin_name(p)
            );
        }
    }
    // Weight transfer: the net of each endpoint reaches at least the boost
    // its endpoint criticality implies (max-aggregation can only raise it).
    let weights = pw.weights();
    for k in 0..paths.num_paths() {
        let e = paths.endpoint(k);
        let Some(net) = d.netlist.pin(e).net() else { continue };
        let m = (0..model.num_nets())
            .find(|&i| model.net_index(i) == net.index())
            .expect("endpoint net modeled");
        let exact = ((-analysis.slack[e.index()]) / -wns).clamp(0.0, 1.0);
        let floor = 1.0 + (pcfg.pin_weight_cap - 1.0) * exact;
        assert!(
            weights[m] >= floor - 1e-12,
            "net weight {} below endpoint floor {floor}",
            weights[m]
        );
    }
}

/// The multi-level V-cycle accepts the path-extraction mode: coarse levels
/// run the guarded extraction (or skip it when coarsening erased the
/// endpoints) and the warm-started finest level engages it on the overflow
/// latch — deterministically across pool widths.
#[test]
fn multilevel_path_extraction_runs_and_is_deterministic() {
    let d = generate(&GeneratorConfig::named("paths_ml", 800)).expect("generator");
    let lib = synthetic_pdk();
    let mut cfg = FlowConfig {
        max_iters: 120,
        trace_timing_every: 0,
        multilevel: true,
        levels: 2,
        ..FlowConfig::default()
    };
    let mode = path_mode(60);
    cfg.threads = 1;
    let base = run_flow(&d, &lib, mode, &cfg).expect("flow runs");
    assert!(base.level_iterations.len() >= 2, "V-cycle ran at least two levels");
    cfg.threads = 4;
    let r = run_flow(&d, &lib, mode, &cfg).expect("flow runs");
    assert_eq!(base.xs, r.xs, "multilevel path extraction must be pool-width invariant");
    assert_eq!(base.ys, r.ys);
    let violations = check_legal(&d, &base.xs, &base.ys);
    assert!(violations.is_empty(), "violations: {:?}", &violations[..violations.len().min(5)]);
}

/// Nets never touched by an extracted path keep weight exactly 1, so the
/// wirelength objective off the critical cone is untouched — the mode's
/// concentration property at the weighting layer.
#[test]
fn off_path_nets_keep_unit_weight() {
    let mut gcfg = GeneratorConfig::named("paths_conc", 300);
    gcfg.clock_period = 50.0;
    let d = generate(&gcfg).expect("generator");
    let lib = synthetic_pdk();
    let timer = Timer::new(&d, &lib).expect("binds");
    let forest = build_forest(&d.netlist);
    let analysis = timer.analyze(&d.netlist, &forest);
    let model = WirelengthModel::new(&d.netlist);
    let pcfg = PathExtractConfig { top_k: 4, ..PathExtractConfig::default() };
    let mut pw = PathWeighter::new(&d.netlist, &model, pcfg);
    pw.update(&d.netlist, &timer, &analysis);

    // Collect the nets adjacent to extracted pins; everything else must be 1.
    let mut on_path = vec![false; model.num_nets()];
    let inverse: std::collections::HashMap<usize, usize> =
        (0..model.num_nets()).map(|e| (model.net_index(e), e)).collect();
    for &p in pw.paths().critical_pins() {
        if let Some(net) = d.netlist.pin(p).net() {
            if let Some(&e) = inverse.get(&net.index()) {
                on_path[e] = true;
            }
        }
    }
    for (e, touched) in on_path.iter().enumerate() {
        if !touched {
            assert_eq!(pw.weights()[e], 1.0, "off-path net {e} was reweighted");
        }
    }
}
