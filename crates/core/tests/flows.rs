//! Integration tests of the three placement flows: the paper's qualitative
//! claims must hold on the synthetic proxies.
//!
//! These run the full GP → LG → DP pipeline three times each, so they use a
//! modest design size; run with `--release` for speed (they stay under a few
//! seconds even in debug).

use dtp_core::{run_flow, FlowConfig, FlowMode};
use dtp_liberty::synth::synthetic_pdk;
use dtp_netlist::generate::{generate, GeneratorConfig};
use dtp_place::check_legal;

fn design() -> dtp_netlist::Design {
    generate(&GeneratorConfig::named("flow_test", 800)).expect("generator succeeds")
}

fn fast_config() -> FlowConfig {
    FlowConfig { max_iters: 300, trace_timing_every: 20, ..FlowConfig::default() }
}

#[test]
fn all_flows_spread_and_legalize() {
    let d = design();
    let lib = synthetic_pdk();
    for mode in [
        FlowMode::Wirelength,
        FlowMode::net_weighting(),
        FlowMode::differentiable(),
    ] {
        let r = run_flow(&d, &lib, mode, &fast_config()).expect("flow runs");
        // Overflow reached the stop criterion (or close after max iters).
        let last_overflow = r.trace.last().expect("trace non-empty").overflow;
        assert!(
            last_overflow < 0.3,
            "{}: overflow did not come down: {last_overflow}",
            r.mode
        );
        // Legal final placement.
        let violations = check_legal(&d, &r.xs, &r.ys);
        assert!(violations.is_empty(), "{}: {violations:?}", r.mode);
        // Sane metrics.
        assert!(r.hpwl > 0.0 && r.hpwl.is_finite());
        assert!(r.wns.is_finite() && r.tns.is_finite());
        assert!(r.tns <= 0.0 || r.wns >= 0.0);
        assert!(r.runtime > 0.0);
        assert!(r.iterations > 30);
    }
}

#[test]
fn differentiable_flow_beats_wirelength_on_timing() {
    // The paper's headline claim, scaled down: explicit TNS/WNS optimization
    // must improve both metrics substantially over the wirelength-only flow
    // at (near-)equal HPWL.
    let d = design();
    let lib = synthetic_pdk();
    let cfg = fast_config();
    let base = run_flow(&d, &lib, FlowMode::Wirelength, &cfg).expect("flow runs");
    let ours = run_flow(&d, &lib, FlowMode::differentiable(), &cfg).expect("flow runs");
    assert!(base.wns < 0.0, "test design must start violating");
    assert!(
        ours.wns > base.wns * 0.9,
        "WNS not improved: base {} vs ours {}",
        base.wns,
        ours.wns
    );
    assert!(
        ours.tns > base.tns * 0.8,
        "TNS not improved: base {} vs ours {}",
        base.tns,
        ours.tns
    );
    // "Almost identical HPWL ... for free" (§4): allow 10 % at this scale.
    assert!(
        ours.hpwl < 1.10 * base.hpwl,
        "HPWL degraded: base {} vs ours {}",
        base.hpwl,
        ours.hpwl
    );
}

#[test]
fn net_weighting_improves_timing_but_costs_wirelength() {
    let d = design();
    let lib = synthetic_pdk();
    let cfg = fast_config();
    let base = run_flow(&d, &lib, FlowMode::Wirelength, &cfg).expect("flow runs");
    let nw = run_flow(&d, &lib, FlowMode::net_weighting(), &cfg).expect("flow runs");
    assert!(
        nw.tns > base.tns,
        "net weighting did not improve TNS: {} vs {}",
        nw.tns,
        base.tns
    );
    // Net weighting trades wirelength (Table 3: HPWL ratio 1.043).
    assert!(nw.hpwl > base.hpwl * 0.99);
}

#[test]
fn trace_is_monotone_in_iteration_and_overflow_decreases() {
    let d = design();
    let lib = synthetic_pdk();
    let cfg = FlowConfig { trace_timing_every: 10, ..fast_config() };
    let r = run_flow(&d, &lib, FlowMode::differentiable(), &cfg).expect("flow runs");
    assert!(r.trace.len() >= 5);
    for w in r.trace.windows(2) {
        assert!(w[1].iter > w[0].iter);
    }
    let first = r.trace.first().expect("non-empty");
    let last = r.trace.last().expect("non-empty");
    assert!(
        last.overflow < first.overflow,
        "overflow did not decrease: {} -> {}",
        first.overflow,
        last.overflow
    );
    // HPWL grows from the clustered start as cells spread — Figure 8's HPWL
    // curve rises then flattens.
    assert!(last.hpwl > first.hpwl);
}

#[test]
fn flows_are_deterministic() {
    let d = design();
    let lib = synthetic_pdk();
    let cfg = fast_config();
    let a = run_flow(&d, &lib, FlowMode::differentiable(), &cfg).expect("flow runs");
    let b = run_flow(&d, &lib, FlowMode::differentiable(), &cfg).expect("flow runs");
    assert_eq!(a.iterations, b.iterations);
    assert_eq!(a.hpwl, b.hpwl);
    assert_eq!(a.wns, b.wns);
    assert_eq!(a.xs, b.xs);
}

#[test]
fn seed_changes_result() {
    let d = design();
    let lib = synthetic_pdk();
    let cfg = fast_config();
    let a = run_flow(&d, &lib, FlowMode::Wirelength, &cfg).expect("flow runs");
    let b = run_flow(
        &d,
        &lib,
        FlowMode::Wirelength,
        &FlowConfig { seed: 99, ..cfg },
    )
    .expect("flow runs");
    assert_ne!(a.xs, b.xs);
}

#[test]
fn gradient_preconditioning_variant_runs() {
    // §5 future work: normalized timing gradients. Must run, legalize, and
    // still beat the wirelength-only flow on TNS.
    use dtp_core::DiffTimingConfig;
    let d = design();
    let lib = synthetic_pdk();
    let cfg = fast_config();
    let base = run_flow(&d, &lib, FlowMode::Wirelength, &cfg).expect("flow runs");
    let mode = FlowMode::Differentiable(DiffTimingConfig {
        grad_norm_target: 0.5,
        ..DiffTimingConfig::default()
    });
    let r = run_flow(&d, &lib, mode, &cfg).expect("flow runs");
    assert!(check_legal(&d, &r.xs, &r.ys).is_empty());
    assert!(r.tns > base.tns, "preconditioned flow TNS {} vs base {}", r.tns, base.tns);
}

#[test]
fn d2m_wire_model_variant_runs() {
    // §3.4.2 generality: the full flow works with the two-moment wire model.
    use dtp_core::{DiffTimingConfig, WireModelChoice};
    let d = design();
    let lib = synthetic_pdk();
    let cfg = fast_config();
    let mode = FlowMode::Differentiable(DiffTimingConfig {
        wire_model: WireModelChoice::D2m,
        ..DiffTimingConfig::default()
    });
    let r = run_flow(&d, &lib, mode, &cfg).expect("flow runs");
    assert!(check_legal(&d, &r.xs, &r.ys).is_empty());
    assert!(r.wns.is_finite() && r.tns.is_finite());
}
