//! Golden-equivalence tests for the routability subsystem.
//!
//! With `route_aware = false` the congestion machinery must be completely
//! inert: the flow trajectory (traced HPWL/WNS/TNS and the final placement)
//! must be bit-for-bit identical no matter what the other route knobs say,
//! and must match a run with the default (disabled) configuration. With
//! `route_aware = true` the congestion gradient and feedback must actually
//! change the trajectory.

use dtp_core::{run_flow, FlowConfig, FlowMode, FlowResult};
use dtp_liberty::synth::synthetic_pdk;
use dtp_netlist::generate::{generate, GeneratorConfig};

fn design() -> dtp_netlist::Design {
    generate(&GeneratorConfig::named("route-golden", 800)).expect("generator succeeds")
}

fn base_config() -> FlowConfig {
    FlowConfig {
        max_iters: 250,
        trace_timing_every: 10,
        ..FlowConfig::default()
    }
}

fn assert_identical(a: &FlowResult, b: &FlowResult) {
    assert_eq!(a.iterations, b.iterations, "iteration counts diverged");
    assert_eq!(a.trace.len(), b.trace.len(), "trace lengths diverged");
    for (p, q) in a.trace.iter().zip(&b.trace) {
        assert_eq!(p.iter, q.iter);
        assert_eq!(p.hpwl, q.hpwl, "iter {}: HPWL diverged", p.iter);
        assert_eq!(p.overflow, q.overflow, "iter {}: overflow diverged", p.iter);
        assert!(
            p.wns == q.wns || (p.wns.is_nan() && q.wns.is_nan()),
            "iter {}: WNS {} vs {}",
            p.iter,
            p.wns,
            q.wns
        );
        assert!(
            p.tns == q.tns || (p.tns.is_nan() && q.tns.is_nan()),
            "iter {}: TNS {} vs {}",
            p.iter,
            p.tns,
            q.tns
        );
    }
    assert_eq!(a.xs, b.xs, "final x positions diverged");
    assert_eq!(a.ys, b.ys, "final y positions diverged");
    assert_eq!(a.hpwl, b.hpwl);
    assert_eq!(a.wns, b.wns);
    assert_eq!(a.tns, b.tns);
}

#[test]
fn route_disabled_is_bit_for_bit_inert() {
    let d = design();
    let lib = synthetic_pdk();
    let plain = run_flow(&d, &lib, FlowMode::differentiable(), &base_config())
        .expect("flow runs");
    // Exotic values on every route knob: with route_aware=false none of
    // them may leak into the trajectory. (The final congestion summary
    // legitimately differs — it is computed on the configured grid.)
    let exotic = FlowConfig {
        route_aware: false,
        route_grid: 7,
        route_capacity: 0.01,
        route_weight: 9.0,
        inflation_max: 4.0,
        route_update_period: 1,
        ..base_config()
    };
    let off = run_flow(&d, &lib, FlowMode::differentiable(), &exotic).expect("flow runs");
    assert_identical(&plain, &off);
}

#[test]
fn route_enabled_changes_the_trajectory_and_reduces_congestion() {
    let d = design();
    let lib = synthetic_pdk();
    // Tight capacity so congestion pressure has something to push against.
    let cfg_off = FlowConfig {
        route_capacity: 0.2,
        ..base_config()
    };
    let cfg_on = FlowConfig {
        route_aware: true,
        ..cfg_off
    };
    let off = run_flow(&d, &lib, FlowMode::differentiable(), &cfg_off).expect("flow runs");
    let on = run_flow(&d, &lib, FlowMode::differentiable(), &cfg_on).expect("flow runs");
    assert!(
        off.xs != on.xs || off.ys != on.ys,
        "route-aware flow must alter the placement"
    );
    assert!(on.congestion.max_overflow.is_finite());
    assert!(
        on.congestion.overflowed_frac <= off.congestion.overflowed_frac,
        "route-aware flow should not increase overflowed-bin fraction: {} vs {}",
        on.congestion.overflowed_frac,
        off.congestion.overflowed_frac
    );
}

#[test]
fn wirelength_mode_supports_route_awareness() {
    // Route awareness is orthogonal to the timing mechanism: it must run
    // (and build its forest) even in the wirelength-only flow, which never
    // needs timing. Disable timing tracing so the forest exists purely for
    // the congestion consumers.
    let d = design();
    let lib = synthetic_pdk();
    let cfg = FlowConfig {
        route_aware: true,
        route_capacity: 0.2,
        trace_timing_every: 0,
        max_iters: 150,
        ..FlowConfig::default()
    };
    let r = run_flow(&d, &lib, FlowMode::Wirelength, &cfg).expect("flow runs");
    assert!(r.hpwl > 0.0);
    assert!(r.congestion.max_overflow > 0.0);
}
