//! Golden-equivalence tests for the topology-table Steiner backend.
//!
//! With `rsmt_tables = false` the table machinery must be completely inert:
//! the flow trajectory (traced HPWL/WNS/TNS and the final placement) must be
//! bit-for-bit identical no matter what the table knobs say. With tables on,
//! the flow must be deterministic run-to-run (the parallel sweeps and lazily
//! generated table classes may not introduce any nondeterminism) and must
//! actually use the tables.

use dtp_core::{run_flow, FlowConfig, FlowMode, FlowResult};
use dtp_liberty::synth::synthetic_pdk;
use dtp_netlist::generate::{generate, GeneratorConfig};

fn design() -> dtp_netlist::Design {
    generate(&GeneratorConfig::named("rsmt-golden", 700)).expect("generator succeeds")
}

fn base_config() -> FlowConfig {
    FlowConfig {
        max_iters: 200,
        trace_timing_every: 10,
        ..FlowConfig::default()
    }
}

fn assert_identical(a: &FlowResult, b: &FlowResult) {
    assert_eq!(a.iterations, b.iterations, "iteration counts diverged");
    assert_eq!(a.trace.len(), b.trace.len(), "trace lengths diverged");
    for (p, q) in a.trace.iter().zip(&b.trace) {
        assert_eq!(p.iter, q.iter);
        assert_eq!(p.hpwl, q.hpwl, "iter {}: HPWL diverged", p.iter);
        assert_eq!(p.overflow, q.overflow, "iter {}: overflow diverged", p.iter);
        assert!(
            p.wns == q.wns || (p.wns.is_nan() && q.wns.is_nan()),
            "iter {}: WNS {} vs {}",
            p.iter,
            p.wns,
            q.wns
        );
        assert!(
            p.tns == q.tns || (p.tns.is_nan() && q.tns.is_nan()),
            "iter {}: TNS {} vs {}",
            p.iter,
            p.tns,
            q.tns
        );
    }
    assert_eq!(a.xs, b.xs, "final x positions diverged");
    assert_eq!(a.ys, b.ys, "final y positions diverged");
    assert_eq!(a.hpwl, b.hpwl);
    assert_eq!(a.wns, b.wns);
    assert_eq!(a.tns, b.tns);
}

#[test]
fn tables_disabled_is_bit_for_bit_inert() {
    let d = design();
    let lib = synthetic_pdk();
    let plain_cfg = FlowConfig {
        rsmt_tables: false,
        ..base_config()
    };
    let plain = run_flow(&d, &lib, FlowMode::differentiable(), &plain_cfg).expect("flow runs");
    // Exotic value on the degree knob: with rsmt_tables=false it may not
    // leak into the trajectory.
    let exotic = FlowConfig {
        rsmt_tables: false,
        rsmt_table_max_degree: 2,
        ..base_config()
    };
    let off = run_flow(&d, &lib, FlowMode::differentiable(), &exotic).expect("flow runs");
    assert_identical(&plain, &off);
    assert_eq!(plain.rsmt.table, 0, "tables-off flow used table trees");
    assert!(plain.rsmt.trees > 0, "timing flow built no forest");
}

#[test]
fn tables_on_is_deterministic_and_used() {
    let d = design();
    let lib = synthetic_pdk();
    let cfg = base_config();
    assert!(cfg.rsmt_tables, "tables are on by default");
    let a = run_flow(&d, &lib, FlowMode::differentiable(), &cfg).expect("flow runs");
    let b = run_flow(&d, &lib, FlowMode::differentiable(), &cfg).expect("flow runs");
    assert_identical(&a, &b);
    assert_eq!(a.rsmt, b.rsmt, "forest stats diverged between identical runs");
    assert!(a.rsmt.table > 0, "tables-on flow never used a table tree");
    assert!(
        a.rsmt.seq_hits > 0,
        "placement drift produced no sequence-cache hits"
    );
}

#[test]
fn degree_cap_prunes_table_usage() {
    // Capping the table degree at 4 must still run (exact degree-4 classes
    // only), with every degree-5+ net on the Prim backend.
    let d = design();
    let lib = synthetic_pdk();
    let capped = FlowConfig {
        rsmt_table_max_degree: 4,
        ..base_config()
    };
    let full = base_config();
    let r_capped = run_flow(&d, &lib, FlowMode::differentiable(), &capped).expect("flow runs");
    let r_full = run_flow(&d, &lib, FlowMode::differentiable(), &full).expect("flow runs");
    assert!(r_capped.rsmt.table > 0, "degree-4 classes unused");
    assert!(
        r_capped.rsmt.prim >= r_full.rsmt.prim,
        "capping the degree cannot reduce Prim usage: {} vs {}",
        r_capped.rsmt.prim,
        r_full.rsmt.prim
    );
}
