//! Golden tests for the observability subsystem (`dtp-obs`).
//!
//! The contract under test: observability is *pure telemetry*. With
//! `observe = false` the flow must be bit-for-bit identical to an observed
//! run; `FlowResult::timing_runtime` must equal the sum of the STA-phase
//! spans either way; the v2 JSONL stream must emit a header record followed
//! by one `iter` + `span` record pair per iteration; and at `--log-level
//! warn` the CLI's stdout must contain nothing but the result line.

use dtp_core::{run_flow, run_flow_observed, FlowConfig, FlowMode, FlowResult, Observer};
use dtp_liberty::synth::synthetic_pdk;
use dtp_netlist::generate::{generate, GeneratorConfig};
use dtp_netlist::bookshelf;
use dtp_obs::json;
use std::io::Write;
use std::path::PathBuf;
use std::process::Command;
use std::sync::{Arc, Mutex};

fn design() -> dtp_netlist::Design {
    generate(&GeneratorConfig::named("obs-golden", 700)).expect("generator succeeds")
}

fn base_config() -> FlowConfig {
    FlowConfig {
        max_iters: 200,
        trace_timing_every: 10,
        ..FlowConfig::default()
    }
}

fn assert_identical(a: &FlowResult, b: &FlowResult) {
    assert_eq!(a.iterations, b.iterations, "iteration counts diverged");
    assert_eq!(a.trace.len(), b.trace.len(), "trace lengths diverged");
    for (p, q) in a.trace.iter().zip(&b.trace) {
        assert_eq!(p.iter, q.iter);
        assert_eq!(p.hpwl, q.hpwl, "iter {}: HPWL diverged", p.iter);
        assert_eq!(p.overflow, q.overflow, "iter {}: overflow diverged", p.iter);
        assert!(
            p.wns == q.wns || (p.wns.is_nan() && q.wns.is_nan()),
            "iter {}: WNS {} vs {}",
            p.iter,
            p.wns,
            q.wns
        );
        assert!(
            p.tns == q.tns || (p.tns.is_nan() && q.tns.is_nan()),
            "iter {}: TNS {} vs {}",
            p.iter,
            p.tns,
            q.tns
        );
    }
    assert_eq!(a.xs, b.xs, "final x positions diverged");
    assert_eq!(a.ys, b.ys, "final y positions diverged");
    assert_eq!(a.hpwl, b.hpwl);
    assert_eq!(a.wns, b.wns);
    assert_eq!(a.tns, b.tns);
}

/// A `Write` that appends into a shared buffer (in-memory JSONL sink).
#[derive(Clone)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn observe_off_is_bit_for_bit_identical_to_observe_on() {
    let d = design();
    let lib = synthetic_pdk();
    let off = run_flow(&d, &lib, FlowMode::differentiable(), &base_config())
        .expect("unobserved flow runs");
    let observed_cfg = FlowConfig { observe: true, ..base_config() };
    let mut obs = Observer::new(true);
    let on = run_flow_observed(&d, &lib, FlowMode::differentiable(), &observed_cfg, &mut obs)
        .expect("observed flow runs");
    assert_identical(&off, &on);
    // The observed run actually recorded something.
    assert!(obs.spans().total_seconds() > 0.0, "no spans recorded");
    assert_eq!(
        obs.registry().get(dtp_obs::Counter::Iterations) as usize,
        on.iterations,
        "iteration counter disagrees with the flow"
    );
    assert_eq!(
        obs.ring().total_pushed() as usize,
        on.iterations,
        "ring samples disagree with the flow"
    );
}

#[test]
fn timing_runtime_equals_sta_span_sum() {
    let d = design();
    let lib = synthetic_pdk();
    // Observability off: the STA spans still accumulate, and the reported
    // timing_runtime is exactly their sum (fresh observer, so no delta
    // correction applies).
    let mut obs = Observer::disabled();
    let r = run_flow_observed(&d, &lib, FlowMode::differentiable(), &base_config(), &mut obs)
        .expect("flow runs");
    assert_eq!(
        r.timing_runtime,
        obs.sta_seconds(),
        "timing_runtime must be the STA-phase span sum"
    );
    assert!(r.timing_runtime > 0.0, "timing flow spent no time in STA");
    assert!(
        r.timing_runtime < r.runtime,
        "STA time {} exceeds whole-flow runtime {}",
        r.timing_runtime,
        r.runtime
    );
}

#[test]
fn jsonl_stream_emits_header_then_two_records_per_iteration() {
    let d = design();
    let lib = synthetic_pdk();
    let cfg = FlowConfig { observe: true, ..base_config() };
    let buf = Arc::new(Mutex::new(Vec::new()));
    let mut obs = Observer::new(true);
    obs.set_trace_writer(Box::new(SharedBuf(Arc::clone(&buf))));
    let r = run_flow_observed(&d, &lib, FlowMode::differentiable(), &cfg, &mut obs)
        .expect("flow runs");
    let text = String::from_utf8(buf.lock().unwrap().clone()).expect("JSONL is UTF-8");
    // Schema v2: one header record, then an iter + span record pair per
    // placement iteration.
    assert_eq!(
        text.lines().count(),
        1 + 2 * r.iterations,
        "header plus two JSONL records per placement iteration"
    );
    assert!(!text.contains("NaN"), "raw NaN token leaked into the stream");
    for line in text.lines().skip(1) {
        // The header legitimately contains "inf" inside the key name
        // `inflation_max`; the per-iteration records must never carry a raw
        // non-finite token.
        assert!(!line.contains("inf"), "raw infinity token leaked: {line}");
    }
    for (i, line) in text.lines().enumerate() {
        let v = json::parse(line).unwrap_or_else(|e| panic!("line {i} unparseable ({e}): {line}"));
        let tag = v.get("t").and_then(|t| t.as_str()).expect("record tag present");
        if i == 0 {
            assert_eq!(tag, "header", "first record must be the run header");
            assert_eq!(v.get("schema").and_then(|s| s.as_str()), Some(dtp_obs::TRACE_SCHEMA));
            assert_eq!(v.get("design").and_then(|s| s.as_str()), Some("obs-golden"));
            continue;
        }
        let expect_iter = ((i - 1) / 2) as f64;
        assert_eq!(tag, if i % 2 == 1 { "iter" } else { "span" });
        assert_eq!(v.get("iter").and_then(|x| x.as_f64()), Some(expect_iter));
        if i % 2 == 1 {
            let wns = v.get("wns").expect("wns member present");
            assert!(wns.is_null() || wns.as_f64().is_some());
        }
    }
}

/// Generates a design on disk and returns (dir, bookshelf prefix path).
fn write_cli_fixture(tag: &str) -> (PathBuf, PathBuf) {
    let name = format!("obs-cli-{tag}");
    let d = generate(&GeneratorConfig::named(&name, 400)).expect("generator succeeds");
    let dir = std::env::temp_dir().join(format!("dtp-{name}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    bookshelf::write_design(&d, &dir).expect("bookshelf written");
    let prefix = dir.join(&name);
    (dir, prefix)
}

#[test]
fn cli_log_level_warn_leaves_stdout_machine_clean() {
    let (dir, prefix) = write_cli_fixture("quiet");
    let out = Command::new(env!("CARGO_BIN_EXE_dtp"))
        .args([
            "place",
            prefix.to_str().unwrap(),
            "--mode",
            "wl",
            "--max-iters",
            "40",
            "--log-level",
            "warn",
        ])
        .output()
        .expect("dtp runs");
    let _ = std::fs::remove_dir_all(&dir);
    assert!(out.status.success(), "dtp failed: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8(out.stdout).expect("stdout is UTF-8");
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(
        lines.len(),
        1,
        "--log-level warn must leave only the result line on stdout, got:\n{stdout}"
    );
    assert!(
        lines[0].starts_with("DREAMPlace"),
        "unexpected result line: {}",
        lines[0]
    );
}

#[test]
fn cli_profile_metrics_and_trace_outputs() {
    let (dir, prefix) = write_cli_fixture("sinks");
    let metrics = dir.join("metrics.json");
    let trace = dir.join("trace.jsonl");
    let out = Command::new(env!("CARGO_BIN_EXE_dtp"))
        .args([
            "place",
            prefix.to_str().unwrap(),
            "--mode",
            "diff",
            "--max-iters",
            "120",
            "--profile",
            "--metrics-out",
            metrics.to_str().unwrap(),
            "--trace-out",
            trace.to_str().unwrap(),
        ])
        .output()
        .expect("dtp runs");
    assert!(out.status.success(), "dtp failed: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8(out.stdout).expect("stdout is UTF-8");
    assert!(
        stdout.contains("phase breakdown"),
        "--profile printed no phase table:\n{stdout}"
    );
    assert!(stdout.contains("sta_forward"), "phase table misses STA phases:\n{stdout}");

    let metrics_text = std::fs::read_to_string(&metrics).expect("metrics.json written");
    let v = json::parse(&metrics_text).expect("metrics.json parses");
    assert_eq!(v.get("schema").and_then(|s| s.as_str()), Some(dtp_obs::METRICS_SCHEMA));
    assert!(v.get("qor").is_some(), "metrics.json misses the QoR block");
    assert!(
        v.get("phases").and_then(|p| p.as_array()).is_some_and(|a| !a.is_empty()),
        "metrics.json misses phases"
    );

    let trace_text = std::fs::read_to_string(&trace).expect("trace.jsonl written");
    assert!(trace_text.lines().count() > 0, "trace stream is empty");
    for line in trace_text.lines() {
        json::parse(line).unwrap_or_else(|e| panic!("trace line unparseable ({e}): {line}"));
    }
    let _ = std::fs::remove_dir_all(&dir);
}
