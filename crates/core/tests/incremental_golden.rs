//! Golden-equivalence tests for the incremental timing pipeline.
//!
//! The incremental analysis must be a pure performance optimization: with
//! the same dirty-set forest maintenance, a flow whose every timing
//! iteration re-analyzes from scratch (`incremental_fallback_frac = 0.0`
//! forces the full path) and a flow that always takes the incremental path
//! (`incremental_fallback_frac = 2.0` — the dirty fraction can never exceed
//! it) must produce the *same trajectory*: identical WNS/TNS at every traced
//! iteration and identical final placements.

use dtp_core::{run_flow, FlowConfig, FlowMode, FlowResult};
use dtp_liberty::synth::synthetic_pdk;
use dtp_netlist::generate::{generate, GeneratorConfig};

fn design() -> dtp_netlist::Design {
    generate(&GeneratorConfig::named("golden", 800)).expect("generator succeeds")
}

fn config(fallback_frac: f64) -> FlowConfig {
    FlowConfig {
        max_iters: 300,
        trace_timing_every: 10,
        incremental_timing: true,
        incremental_fallback_frac: fallback_frac,
        ..FlowConfig::default()
    }
}

/// Tolerance on traced WNS/TNS. The incremental sweep recomputes the dirty
/// cone with the same per-pin float operations as the full sweep, so the
/// trajectories should agree to strict round-off.
const TOL: f64 = 1e-9;

fn assert_same_trajectory(full: &FlowResult, inc: &FlowResult) {
    assert_eq!(full.iterations, inc.iterations, "iteration counts diverged");
    assert_eq!(full.trace.len(), inc.trace.len(), "trace lengths diverged");
    for (a, b) in full.trace.iter().zip(&inc.trace) {
        assert_eq!(a.iter, b.iter);
        assert!(
            (a.hpwl - b.hpwl).abs() <= TOL * a.hpwl.abs().max(1.0),
            "iter {}: HPWL {} vs {}",
            a.iter,
            a.hpwl,
            b.hpwl
        );
        for (x, y, what) in [(a.wns, b.wns, "WNS"), (a.tns, b.tns, "TNS")] {
            match (x.is_nan(), y.is_nan()) {
                (true, true) => {}
                (false, false) => assert!(
                    (x - y).abs() <= TOL * x.abs().max(1.0),
                    "iter {}: {what} {x} vs {y}",
                    a.iter
                ),
                _ => panic!("iter {}: {what} traced in one run only", a.iter),
            }
        }
    }
    assert!((full.wns - inc.wns).abs() <= TOL * full.wns.abs().max(1.0));
    assert!((full.tns - inc.tns).abs() <= TOL * full.tns.abs().max(1.0));
    assert!((full.hpwl - inc.hpwl).abs() <= TOL * full.hpwl.abs().max(1.0));
    assert_eq!(full.xs, inc.xs, "final x positions diverged");
    assert_eq!(full.ys, inc.ys, "final y positions diverged");
}

#[test]
fn differentiable_incremental_matches_full_reanalysis() {
    let d = design();
    let lib = synthetic_pdk();
    let full = run_flow(&d, &lib, FlowMode::differentiable(), &config(0.0))
        .expect("flow runs");
    let inc = run_flow(&d, &lib, FlowMode::differentiable(), &config(2.0))
        .expect("flow runs");
    assert_same_trajectory(&full, &inc);
}

#[test]
fn net_weighting_incremental_matches_full_reanalysis() {
    let d = design();
    let lib = synthetic_pdk();
    let full = run_flow(&d, &lib, FlowMode::net_weighting(), &config(0.0))
        .expect("flow runs");
    let inc = run_flow(&d, &lib, FlowMode::net_weighting(), &config(2.0))
        .expect("flow runs");
    assert_same_trajectory(&full, &inc);
}

#[test]
fn legacy_full_rebuild_path_still_runs() {
    // `incremental_timing = false` restores the periodic blanket rebuild; it
    // must still produce a sane, finite result (trajectories legitimately
    // differ because the forest maintenance schedule differs).
    let d = design();
    let lib = synthetic_pdk();
    let cfg = FlowConfig {
        max_iters: 300,
        trace_timing_every: 20,
        incremental_timing: false,
        ..FlowConfig::default()
    };
    let r = run_flow(&d, &lib, FlowMode::differentiable(), &cfg).expect("flow runs");
    assert!(r.wns.is_finite() && r.tns.is_finite());
    assert!(r.hpwl > 0.0);
}
