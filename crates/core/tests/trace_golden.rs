//! Golden tests for trace schema v2 and the `dtp-trace` forensics layer.
//!
//! The contract under test: the canonical trace bytes (header with the
//! execution environment normalized away, plus every deterministic `iter`
//! record) are **bit-identical** across reruns and across pool widths; the
//! header's config/mode fields reconstruct the exact `FlowConfig`/`FlowMode`
//! that produced the run (the `dtp trace replay` foundation); and a
//! multilevel trace records its V-cycle coarsest-first with per-level
//! record counts matching `FlowResult::level_iterations`.

use dtp_core::{run_flow_observed, FlowConfig, FlowMode, FlowResult, Observer};
use dtp_liberty::synth::synthetic_pdk;
use dtp_netlist::generate::{generate, GeneratorConfig};
use dtp_trace::{diff, Tolerances, Trace};
use std::io::Write;
use std::sync::{Arc, Mutex};

fn design() -> dtp_netlist::Design {
    generate(&GeneratorConfig::named("trace-golden", 500)).expect("generator succeeds")
}

fn base_config() -> FlowConfig {
    FlowConfig {
        max_iters: 60,
        trace_timing_every: 10,
        observe: true,
        ..FlowConfig::default()
    }
}

/// A `Write` that appends into a shared buffer (in-memory JSONL sink).
#[derive(Clone)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn run_traced(
    d: &dtp_netlist::Design,
    mode: FlowMode,
    config: &FlowConfig,
) -> (Trace, FlowResult) {
    let lib = synthetic_pdk();
    let buf = Arc::new(Mutex::new(Vec::new()));
    let mut obs = Observer::new(true);
    obs.set_design_source("trace-golden");
    obs.set_trace_writer(Box::new(SharedBuf(Arc::clone(&buf))));
    let r = run_flow_observed(d, &lib, mode, config, &mut obs).expect("flow runs");
    let text = String::from_utf8(buf.lock().unwrap().clone()).expect("JSONL is UTF-8");
    (Trace::parse(&text).expect("v2 stream parses"), r)
}

#[test]
fn canonical_bytes_are_bit_identical_across_reruns_and_pool_widths() {
    let d = design();
    let mut traces = Vec::new();
    for threads in [1usize, 1, 2, 4] {
        let config = FlowConfig { threads, ..base_config() };
        let (t, _) = run_traced(&d, FlowMode::differentiable(), &config);
        traces.push(t);
    }
    let golden = traces[0].canonical_bytes();
    assert!(!golden.is_empty());
    for (i, t) in traces.iter().enumerate().skip(1) {
        assert_eq!(
            t.canonical_bytes(),
            golden,
            "canonical trace bytes diverged at pool-width case {i}"
        );
        // The structured diff agrees, and demotes the thread-count header
        // fields to informational notes.
        let report = diff(&traces[0], t, &Tolerances::zero());
        assert!(report.is_clean(), "zero-tolerance diff dirty:\n{}", report.render());
    }
    // Pool widths 2 and 4 genuinely differed in the header environment.
    let report = diff(&traces[1], &traces[3], &Tolerances::zero());
    assert!(
        report.notes.iter().any(|n| n.contains("threads")),
        "expected an informational thread-count note, got: {:?}",
        report.notes
    );
}

#[test]
fn header_reconstructs_the_exact_flow_config_and_mode() {
    let d = design();
    let config = FlowConfig {
        threads: 2,
        seed: u64::MAX - 17,
        detail_passes: 3,
        ..base_config()
    };
    let mode = FlowMode::path_extraction();
    let (t, _) = run_traced(&d, mode, &config);
    assert_eq!(t.header.mode, "path-extraction");
    assert_eq!(t.header.seed, u64::MAX - 17);
    assert_eq!(t.header.design, "trace-golden");
    assert_eq!(t.header.source.as_deref(), Some("trace-golden"));
    assert_eq!(t.header.cells, d.netlist.num_cells() as u64);
    assert_eq!(t.header.nets, d.netlist.num_nets() as u64);
    assert_eq!(t.header.pins, d.netlist.num_pins() as u64);
    // Round trip: the recorded fields rebuild a config/mode whose own trace
    // fields are identical — replay runs exactly what was recorded.
    let rebuilt = FlowConfig::from_trace_fields(&t.header.config).expect("config reconstructs");
    assert_eq!(rebuilt.trace_fields(), config.trace_fields());
    assert_eq!(rebuilt.seed, config.seed);
    assert_eq!(rebuilt.threads, config.threads);
    let rebuilt_mode =
        FlowMode::from_trace(&t.header.mode, &t.header.mode_config).expect("mode reconstructs");
    assert_eq!(rebuilt_mode.trace_fields(), mode.trace_fields());
}

#[test]
fn multilevel_trace_is_coarsest_first_with_per_level_counts() {
    let d = design();
    let config = FlowConfig {
        multilevel: true,
        levels: 2,
        max_iters: 40,
        ..base_config()
    };
    let (t, r) = run_traced(&d, FlowMode::differentiable(), &config);
    let levels = t.levels();
    assert!(levels.len() >= 2, "multilevel run recorded a single level: {levels:?}");
    assert_eq!(*levels.last().unwrap(), 0, "finest level must come last");
    for w in levels.windows(2) {
        assert!(w[0] > w[1], "levels not strictly coarsest-first: {levels:?}");
    }
    // Per-level iter record counts match the flow's own accounting
    // (level_iterations is coarsest first, like the stream).
    let recorded: Vec<usize> = levels
        .iter()
        .map(|&lv| t.iters.iter().filter(|it| it.level == lv).count())
        .collect();
    assert_eq!(recorded, r.level_iterations, "per-level record counts diverge from FlowResult");
    assert_eq!(t.iters.len(), r.iterations, "total iter records diverge from FlowResult");
    // Every record carries the per-iteration counter deltas; the iteration
    // counter itself must be 1 in each (exactly one optimizer step per
    // record), and coarse records must mark the coarse counter.
    for it in &t.iters {
        assert_eq!(it.counters[dtp_obs::Counter::Iterations.index()], 1, "iter {}", it.iter);
        let coarse = it.counters[dtp_obs::Counter::CoarseIterations.index()];
        assert_eq!(coarse, u64::from(it.level > 0), "iter {} level {}", it.iter, it.level);
    }
}
