//! Thread-scaling goldens: `FlowConfig::threads` must never change the
//! placement trajectory, and the `scale_design` preset must complete a
//! capped flow end to end.

use dtp_core::{run_flow, FlowConfig, FlowMode};
use dtp_liberty::synth::synthetic_pdk;
use dtp_netlist::generate::{generate, scale_design, GeneratorConfig};
use dtp_place::check_legal;

/// The full flow — gradients, Nesterov, legalization, detailed placement —
/// is bit-for-bit identical for every `threads` value: 1 (serial schedule),
/// the ambient pool (0), and wider dedicated pools.
#[test]
fn flow_is_bit_identical_across_thread_counts() {
    let d = generate(&GeneratorConfig::named("threads_golden", 600)).expect("generator");
    let lib = synthetic_pdk();
    let mut cfg = FlowConfig {
        max_iters: 120,
        trace_timing_every: 20,
        ..FlowConfig::default()
    };
    cfg.threads = 1;
    let base = run_flow(&d, &lib, FlowMode::differentiable(), &cfg).expect("flow runs");
    for threads in [0usize, 2, 4] {
        cfg.threads = threads;
        let r = run_flow(&d, &lib, FlowMode::differentiable(), &cfg).expect("flow runs");
        assert_eq!(base.xs, r.xs, "x positions differ at threads={threads}");
        assert_eq!(base.ys, r.ys, "y positions differ at threads={threads}");
        assert_eq!(base.hpwl, r.hpwl, "hpwl differs at threads={threads}");
        assert_eq!(base.wns, r.wns, "wns differs at threads={threads}");
        assert_eq!(base.tns, r.tns, "tns differs at threads={threads}");
        assert_eq!(base.iterations, r.iterations);
    }
}

/// A scale-preset design completes a capped flow and legalizes. Debug builds
/// run a CI-sized instance; release builds run the full 100k-cell smoke the
/// scale bench starts from.
#[test]
fn scale_design_flow_smoke() {
    let (cells, iters) = if cfg!(debug_assertions) { (20_000, 12) } else { (100_000, 30) };
    let d = scale_design(cells, 1).expect("generator");
    let lib = synthetic_pdk();
    let cfg = FlowConfig {
        max_iters: iters,
        trace_timing_every: 0,
        bins: 128,
        threads: 2,
        ..FlowConfig::default()
    };
    let r = run_flow(&d, &lib, FlowMode::Wirelength, &cfg).expect("flow runs");
    assert_eq!(r.iterations, iters, "capped flow must use its full budget");
    assert!(r.hpwl > 0.0 && r.hpwl.is_finite());
    let violations = check_legal(&d, &r.xs, &r.ys);
    assert!(violations.is_empty(), "violations: {:?}", &violations[..violations.len().min(5)]);
}
