//! Multi-level flow goldens: disabling `multilevel` must leave the flat flow
//! bit-for-bit untouched, and enabling it must be deterministic across
//! thread-pool widths (the V-cycle inherits the flat flow's determinism
//! contract level by level).

use dtp_core::{run_flow, FlowConfig, FlowMode, FlowResult};
use dtp_liberty::synth::synthetic_pdk;
use dtp_netlist::generate::{generate, GeneratorConfig};
use dtp_netlist::Design;

fn golden_design(cells: usize) -> Design {
    generate(&GeneratorConfig::named("ml_golden", cells)).expect("generator")
}

fn assert_bit_identical(a: &FlowResult, b: &FlowResult, what: &str) {
    assert_eq!(a.xs, b.xs, "x positions differ: {what}");
    assert_eq!(a.ys, b.ys, "y positions differ: {what}");
    assert_eq!(a.hpwl, b.hpwl, "hpwl differs: {what}");
    assert_eq!(a.wns, b.wns, "wns differs: {what}");
    assert_eq!(a.tns, b.tns, "tns differs: {what}");
    assert_eq!(a.iterations, b.iterations, "iteration count differs: {what}");
    assert_eq!(a.level_iterations, b.level_iterations, "level iterations differ: {what}");
}

/// `multilevel: false` (the default) is inert: the flat flow's trajectory is
/// bit-for-bit identical whether the V-cycle knobs are at their defaults or
/// set to active-looking values behind a disabled switch.
#[test]
fn multilevel_off_is_bit_identical_to_flat() {
    let d = golden_design(600);
    let lib = synthetic_pdk();
    let base_cfg = FlowConfig {
        max_iters: 120,
        trace_timing_every: 20,
        threads: 1,
        ..FlowConfig::default()
    };
    let base = run_flow(&d, &lib, FlowMode::differentiable(), &base_cfg).expect("flow runs");
    assert_eq!(base.level_iterations, vec![base.iterations], "flat flow reports one level");

    // Same config with the knobs dialed but the switch off.
    let off_cfg = FlowConfig {
        multilevel: false,
        cluster_ratio: 8.0,
        levels: 4,
        ..base_cfg
    };
    let off = run_flow(&d, &lib, FlowMode::differentiable(), &off_cfg).expect("flow runs");
    assert_bit_identical(&base, &off, "multilevel=false with knobs set");

    // Degenerate V-cycle shapes also fall back to the flat path.
    for (levels, ratio) in [(1usize, 4.0f64), (3, 1.0)] {
        let cfg = FlowConfig {
            multilevel: true,
            cluster_ratio: ratio,
            levels,
            ..base_cfg
        };
        let r = run_flow(&d, &lib, FlowMode::differentiable(), &cfg).expect("flow runs");
        assert_bit_identical(&base, &r, "degenerate multilevel shape");
    }
}

/// The V-cycle is deterministic: same seed, any pool width, same bits. This is
/// the multilevel analogue of the flat `flow_is_bit_identical_across_thread_counts`.
#[test]
fn multilevel_flow_deterministic_across_thread_counts() {
    let d = golden_design(800);
    let lib = synthetic_pdk();
    let mut cfg = FlowConfig {
        multilevel: true,
        cluster_ratio: 3.0,
        levels: 2,
        max_iters: 120,
        trace_timing_every: 20,
        ..FlowConfig::default()
    };
    cfg.threads = 1;
    let base = run_flow(&d, &lib, FlowMode::differentiable(), &cfg).expect("flow runs");
    assert_eq!(
        base.level_iterations.len(),
        2,
        "a 2-level V-cycle reports coarse + fine iteration counts"
    );
    assert_eq!(
        base.iterations,
        base.level_iterations.iter().sum::<usize>(),
        "total iterations sum over levels"
    );
    for threads in [2usize, 4] {
        cfg.threads = threads;
        let r = run_flow(&d, &lib, FlowMode::differentiable(), &cfg).expect("flow runs");
        assert_bit_identical(&base, &r, &format!("threads={threads}"));
    }
}

/// The warm-started fine level produces a finite, legal-quality placement in
/// wirelength mode too (no timer in the loop anywhere in the V-cycle).
#[test]
fn multilevel_wirelength_mode_smoke() {
    let d = golden_design(700);
    let lib = synthetic_pdk();
    let cfg = FlowConfig {
        multilevel: true,
        cluster_ratio: 4.0,
        levels: 3,
        max_iters: 100,
        trace_timing_every: 0,
        threads: 2,
        ..FlowConfig::default()
    };
    let r = run_flow(&d, &lib, FlowMode::Wirelength, &cfg).expect("flow runs");
    assert!(r.hpwl > 0.0 && r.hpwl.is_finite());
    assert!(!r.level_iterations.is_empty());
    assert_eq!(r.iterations, r.level_iterations.iter().sum::<usize>());
}
