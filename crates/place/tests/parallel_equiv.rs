//! Width-invariance properties of the parallel placement kernels.
//!
//! Every parallel kernel in `dtp-place` reduces in fixed chunk order, so the
//! result must be bit-for-bit identical whatever the pool width — a one-
//! worker pool runs the exact serial schedule, which makes "parallel equals
//! serial" the same statement as "invariant across pool widths". These
//! properties pin that down over random designs and pools of 1/2/4/8
//! threads, for the Nesterov + gradient pipeline and for both legalizers
//! (including multi-band partitions much finer than the auto policy).

use dtp_netlist::generate::{generate, GeneratorConfig};
use dtp_netlist::Design;
use dtp_place::{
    check_legal, AbacusLegalizer, DensityModel, DensityResult, DensityScratch, Legalizer,
    NesterovOptimizer, WirelengthModel, WirelengthScratch,
};
use proptest::prelude::*;
use rayon::{with_pool, Pool};

/// Runs a miniature wirelength+density Nesterov loop — the same kernels the
/// full flow drives — and returns the final positions.
fn nesterov_trajectory(d: &Design, iters: usize) -> (Vec<f64>, Vec<f64>) {
    let wl = WirelengthModel::new(&d.netlist);
    let density = DensityModel::with_options(d, 16, 16, 1.0, true);
    let mut opt = NesterovOptimizer::new(d, 1.0);
    let n = d.netlist.num_cells();
    let precond = vec![1.0f64; n];
    let mut wls = WirelengthScratch::new();
    let mut ds = DensityScratch::new();
    let mut dres = DensityResult::default();
    let (mut gx, mut gy) = (Vec::new(), Vec::new());
    for _ in 0..iters {
        let (vx, vy) = {
            let (a, b) = opt.positions();
            (a.to_vec(), b.to_vec())
        };
        wl.wa_gradient_into(&vx, &vy, 5.0, None, &mut wls, &mut gx, &mut gy);
        density.evaluate_into(&vx, &vy, &mut ds, &mut dres);
        for i in 0..n {
            gx[i] += 0.5 * dres.grad_x[i];
            gy[i] += 0.5 * dres.grad_y[i];
        }
        opt.step(&gx, &gy, &precond);
    }
    let (a, b) = opt.solution();
    (a.to_vec(), b.to_vec())
}

fn random_design(cells: usize, seed: u64) -> Design {
    let mut cfg = GeneratorConfig::named("pw", cells);
    cfg.seed ^= seed;
    generate(&cfg).expect("generator succeeds")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn nesterov_pipeline_is_pool_width_invariant(
        cells in 150usize..500,
        seed in 0u64..1000,
    ) {
        let d = random_design(cells, seed);
        let base = with_pool(&Pool::new(1), || nesterov_trajectory(&d, 6));
        for threads in [2usize, 4, 8] {
            let got = with_pool(&Pool::new(threads), || nesterov_trajectory(&d, 6));
            prop_assert_eq!(&base.0, &got.0, "x trajectory differs at {} threads", threads);
            prop_assert_eq!(&base.1, &got.1, "y trajectory differs at {} threads", threads);
        }
    }

    #[test]
    fn tetris_legalizer_is_pool_width_invariant(
        cells in 150usize..600,
        seed in 0u64..1000,
        band_rows in 1usize..5,
    ) {
        let d = random_design(cells, seed);
        let (xs0, ys0) = d.netlist.positions();
        // Tiny bands force many parallel bands even on small designs.
        let lg = Legalizer::new(&d).with_band_rows(band_rows);
        let (mut bx, mut by) = (xs0.clone(), ys0.clone());
        let base_disp = with_pool(&Pool::new(1), || lg.legalize(&d, &mut bx, &mut by));
        prop_assert!(check_legal(&d, &bx, &by).is_empty());
        for threads in [2usize, 4, 8] {
            let (mut tx, mut ty) = (xs0.clone(), ys0.clone());
            let disp = with_pool(&Pool::new(threads), || lg.legalize(&d, &mut tx, &mut ty));
            prop_assert_eq!(base_disp, disp, "displacement differs at {} threads", threads);
            prop_assert_eq!(&bx, &tx, "x differs at {} threads", threads);
            prop_assert_eq!(&by, &ty, "y differs at {} threads", threads);
        }
    }

    #[test]
    fn abacus_legalizer_is_pool_width_invariant(
        cells in 150usize..600,
        seed in 0u64..1000,
        band_rows in 1usize..5,
    ) {
        let d = random_design(cells, seed);
        let (xs0, ys0) = d.netlist.positions();
        let lg = AbacusLegalizer::new(&d).with_band_rows(band_rows);
        let (mut bx, mut by) = (xs0.clone(), ys0.clone());
        let base_disp = with_pool(&Pool::new(1), || lg.legalize(&d, &mut bx, &mut by));
        prop_assert!(check_legal(&d, &bx, &by).is_empty());
        for threads in [2usize, 4, 8] {
            let (mut tx, mut ty) = (xs0.clone(), ys0.clone());
            let disp = with_pool(&Pool::new(threads), || lg.legalize(&d, &mut tx, &mut ty));
            prop_assert_eq!(base_disp, disp, "displacement differs at {} threads", threads);
            prop_assert_eq!(&bx, &tx, "x differs at {} threads", threads);
            prop_assert_eq!(&by, &ty, "y differs at {} threads", threads);
        }
    }
}

/// Banded legalization must stay legal when the bands are forced much finer
/// than the auto policy ever picks — the deferred-cell reconciliation pass
/// has to absorb whatever the narrow bands cannot place.
#[test]
fn single_row_bands_stay_legal() {
    let d = random_design(400, 99);
    for band_rows in [1usize, 2, 3] {
        let (mut xs, mut ys) = d.netlist.positions();
        Legalizer::new(&d).with_band_rows(band_rows).legalize(&d, &mut xs, &mut ys);
        let v = check_legal(&d, &xs, &ys);
        assert!(v.is_empty(), "tetris band_rows={band_rows}: {v:?}");
        let (mut xs, mut ys) = d.netlist.positions();
        AbacusLegalizer::new(&d).with_band_rows(band_rows).legalize(&d, &mut xs, &mut ys);
        let v = check_legal(&d, &xs, &ys);
        assert!(v.is_empty(), "abacus band_rows={band_rows}: {v:?}");
    }
}
