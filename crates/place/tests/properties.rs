//! Property-based tests of the placement substrate: spectral transforms,
//! wirelength model and legalizers over random inputs.

use dtp_netlist::generate::{generate, GeneratorConfig};
use dtp_place::{check_legal, AbacusLegalizer, Legalizer, Spectral2D, WirelengthModel};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn dct_roundtrip_random_grids(
        m in 1usize..24,
        n in 1usize..24,
        seed in 0u64..1000,
    ) {
        let s = Spectral2D::new(m, n, 3.0, 5.0);
        let grid: Vec<f64> = (0..m * n)
            .map(|k| (((k as u64 * 1103515245 + seed) % 1000) as f64) / 100.0 - 5.0)
            .collect();
        let back = s.idct2(&s.dct2(&grid));
        for (a, b) in grid.iter().zip(&back) {
            prop_assert!((a - b).abs() < 1e-8, "{a} vs {b}");
        }
    }

    #[test]
    fn fft_and_dense_transforms_agree_on_pow2_grids(
        mp in 1usize..7,
        np in 1usize..7,
        seed in 0u64..1000,
    ) {
        // m, n = 4..64: the radix-2 backend must reproduce the dense
        // reference transforms to near machine precision.
        let m = 1usize << mp.max(2);
        let n = 1usize << np.max(2);
        let fft = Spectral2D::with_fft(m, n, 4.0, 6.0, true);
        let dense = Spectral2D::with_fft(m, n, 4.0, 6.0, false);
        prop_assert!(fft.uses_fft());
        prop_assert!(!dense.uses_fft());
        let grid: Vec<f64> = (0..m * n)
            .map(|k| (((k as u64 * 2654435761 + seed) % 1000) as f64) / 100.0 - 5.0)
            .collect();
        let ca = fft.dct2(&grid);
        let cb = dense.dct2(&grid);
        for (a, b) in ca.iter().zip(&cb) {
            prop_assert!((a - b).abs() < 1e-9 * (1.0 + b.abs()), "dct2: {a} vs {b}");
        }
        let ra = fft.idct2(&ca);
        let rb = dense.idct2(&cb);
        for (a, b) in ra.iter().zip(&rb) {
            prop_assert!((a - b).abs() < 1e-9 * (1.0 + b.abs()), "idct2: {a} vs {b}");
        }
        let sa = fft.solve(&grid);
        let sb = dense.solve(&grid);
        for i in 0..m * n {
            prop_assert!((sa.psi[i] - sb.psi[i]).abs() < 1e-9 * (1.0 + sb.psi[i].abs()));
            prop_assert!(
                (sa.dpsi_dx[i] - sb.dpsi_dx[i]).abs() < 1e-9 * (1.0 + sb.dpsi_dx[i].abs())
            );
            prop_assert!(
                (sa.dpsi_dy[i] - sb.dpsi_dy[i]).abs() < 1e-9 * (1.0 + sb.dpsi_dy[i].abs())
            );
        }
    }

    #[test]
    fn fft_falls_back_on_non_pow2_grids(
        m in 2usize..24,
        n in 2usize..24,
        seed in 0u64..500,
    ) {
        let s = Spectral2D::with_fft(m, n, 3.0, 5.0, true);
        prop_assert_eq!(s.uses_fft(), m.is_power_of_two() && n.is_power_of_two());
        // Whatever backend got selected, the transform pair must invert.
        let grid: Vec<f64> = (0..m * n)
            .map(|k| (((k as u64 * 1103515245 + seed) % 1000) as f64) / 100.0 - 5.0)
            .collect();
        let back = s.idct2(&s.dct2(&grid));
        for (a, b) in grid.iter().zip(&back) {
            prop_assert!((a - b).abs() < 1e-8, "{a} vs {b}");
        }
    }

    #[test]
    fn poisson_solver_is_linear(
        m in 4usize..20,
        seed in 0u64..1000,
        alpha in 0.1f64..5.0,
    ) {
        let s = Spectral2D::new(m, m, 2.0, 2.0);
        let rho: Vec<f64> = (0..m * m)
            .map(|k| (((k as u64 * 2654435761 + seed) % 1000) as f64) / 500.0 - 1.0)
            .collect();
        let scaled: Vec<f64> = rho.iter().map(|v| v * alpha).collect();
        let a = s.solve(&rho);
        let b = s.solve(&scaled);
        for i in 0..m * m {
            prop_assert!((b.psi[i] - alpha * a.psi[i]).abs() < 1e-8 * (1.0 + a.psi[i].abs()));
            prop_assert!(
                (b.dpsi_dx[i] - alpha * a.dpsi_dx[i]).abs()
                    < 1e-8 * (1.0 + a.dpsi_dx[i].abs())
            );
        }
    }

    #[test]
    fn poisson_mirror_symmetry(m in 4usize..16, seed in 0u64..500) {
        // Mirroring the density in x mirrors ψ and negates ∂ψ/∂x.
        let s = Spectral2D::new(m, m, 3.0, 3.0);
        let rho: Vec<f64> = (0..m * m)
            .map(|k| (((k as u64 * 1103515245 + seed) % 1000) as f64) / 500.0 - 1.0)
            .collect();
        let mirrored: Vec<f64> = (0..m * m)
            .map(|k| {
                let (i, j) = (k / m, k % m);
                rho[(m - 1 - i) * m + j]
            })
            .collect();
        let a = s.solve(&rho);
        let b = s.solve(&mirrored);
        for i in 0..m {
            for j in 0..m {
                let k = i * m + j;
                let km = (m - 1 - i) * m + j;
                prop_assert!((a.psi[k] - b.psi[km]).abs() < 1e-8);
                prop_assert!((a.dpsi_dx[k] + b.dpsi_dx[km]).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn wa_wirelength_bounds_hpwl(
        cells in 60usize..250,
        seed in 0u64..500,
        gamma in 0.05f64..5.0,
    ) {
        let mut cfg = GeneratorConfig::named("pp", cells);
        cfg.seed = seed;
        let d = generate(&cfg).expect("generator succeeds");
        let m = WirelengthModel::new(&d.netlist);
        let (xs, ys) = d.netlist.positions();
        let hpwl = m.hpwl(&xs, &ys);
        let (wa, _, _) = m.wa_gradient(&xs, &ys, gamma, None);
        // WA underestimates HPWL, and converges to it as γ → 0.
        prop_assert!(wa <= hpwl + 1e-6, "wa {wa} > hpwl {hpwl}");
        prop_assert!(wa >= hpwl - gamma * 4.0 * m.num_nets() as f64, "wa too loose");
    }

    #[test]
    fn both_legalizers_always_legal(
        cells in 60usize..300,
        seed in 0u64..500,
    ) {
        let mut cfg = GeneratorConfig::named("pl", cells);
        cfg.seed = seed;
        let d = generate(&cfg).expect("generator succeeds");
        for abacus in [false, true] {
            let (mut xs, mut ys) = d.netlist.positions();
            if abacus {
                AbacusLegalizer::new(&d).legalize(&d, &mut xs, &mut ys);
            } else {
                Legalizer::new(&d).legalize(&d, &mut xs, &mut ys);
            }
            let violations = check_legal(&d, &xs, &ys);
            prop_assert!(
                violations.is_empty(),
                "abacus={abacus}: {violations:?}"
            );
        }
    }
}
