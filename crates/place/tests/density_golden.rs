//! Golden equivalence tests for the allocation-free density hot path:
//! [`DensityModel::evaluate_into`] must be bit-for-bit identical to the
//! allocating [`DensityModel::evaluate`] across a realistic multi-iteration
//! placement trajectory, with the scratch buffers reused throughout.

use dtp_netlist::generate::{generate, GeneratorConfig};
use dtp_place::{DensityModel, DensityResult, DensityScratch};

/// Deterministic pseudo-random jitter in [-1, 1).
fn jitter(seed: u64) -> f64 {
    let h = seed.wrapping_mul(0x9e3779b97f4a7c15).rotate_left(31).wrapping_mul(0xbf58476d1ce4e5b9);
    ((h >> 11) as f64) / ((1u64 << 53) as f64) * 2.0 - 1.0
}

/// Drives 50 iterations of a synthetic trajectory (cells drift toward the
/// core center with per-iteration jitter — the same kind of motion the
/// Nesterov loop produces) and checks that the scratch-reusing path tracks
/// the allocating path exactly, for both spectral backends.
#[test]
fn evaluate_into_matches_evaluate_over_50_iteration_flow() {
    let d = generate(&GeneratorConfig::named("dg", 250)).unwrap();
    for allow_fft in [true, false] {
        let model = DensityModel::with_options(&d, 32, 32, 1.0, allow_fft);
        assert_eq!(model.uses_fft(), allow_fft);
        let (mut xs, mut ys) = d.netlist.positions();
        let c = d.region.center();
        let mut scratch = DensityScratch::new();
        let mut out = DensityResult::default();
        for iter in 0..50u64 {
            for cell in d.netlist.movable_cells() {
                let i = cell.index();
                xs[i] += 0.05 * (c.x - xs[i]) + 0.3 * jitter(iter * 1_000_003 + 2 * i as u64);
                ys[i] += 0.05 * (c.y - ys[i]) + 0.3 * jitter(iter * 1_000_003 + 2 * i as u64 + 1);
            }
            let fresh = model.evaluate(&xs, &ys);
            model.evaluate_into(&xs, &ys, &mut scratch, &mut out);
            assert_eq!(fresh.energy, out.energy, "iter {iter} fft={allow_fft}: energy");
            assert_eq!(fresh.overflow, out.overflow, "iter {iter} fft={allow_fft}: overflow");
            assert_eq!(
                fresh.max_density, out.max_density,
                "iter {iter} fft={allow_fft}: max_density"
            );
            assert_eq!(fresh.grad_x, out.grad_x, "iter {iter} fft={allow_fft}: grad_x");
            assert_eq!(fresh.grad_y, out.grad_y, "iter {iter} fft={allow_fft}: grad_y");
        }
    }
}

/// Finite-difference gradient check run directly against `evaluate_into`
/// with one scratch reused for every probe, so buffer-reuse bugs (stale
/// state leaking between evaluations) would corrupt the numerics and fail.
#[test]
fn evaluate_into_gradient_matches_finite_difference() {
    let d = generate(&GeneratorConfig::named("dgfd", 250)).unwrap();
    let model = DensityModel::new(&d, 32, 32, 1.0);
    let (mut xs, mut ys) = d.netlist.positions();
    let mut scratch = DensityScratch::new();
    let mut out = DensityResult::default();
    model.evaluate_into(&xs, &ys, &mut scratch, &mut out);
    let grad_x = out.grad_x.clone();
    let grad_y = out.grad_y.clone();
    let h = 1e-4;
    let movable: Vec<_> = d.netlist.movable_cells().collect();
    let (mut dot, mut na, mut nn) = (0.0, 0.0, 0.0);
    for &cell in movable.iter().step_by(5) {
        let i = cell.index();

        let v0 = xs[i];
        xs[i] = v0 + h;
        model.evaluate_into(&xs, &ys, &mut scratch, &mut out);
        let fp = out.energy;
        xs[i] = v0 - h;
        model.evaluate_into(&xs, &ys, &mut scratch, &mut out);
        let fm = out.energy;
        xs[i] = v0;
        let num = (fp - fm) / (2.0 * h);
        dot += num * grad_x[i];
        na += grad_x[i] * grad_x[i];
        nn += num * num;

        let v0 = ys[i];
        ys[i] = v0 + h;
        model.evaluate_into(&xs, &ys, &mut scratch, &mut out);
        let fp = out.energy;
        ys[i] = v0 - h;
        model.evaluate_into(&xs, &ys, &mut scratch, &mut out);
        let fm = out.energy;
        ys[i] = v0;
        let num = (fp - fm) / (2.0 * h);
        dot += num * grad_y[i];
        na += grad_y[i] * grad_y[i];
        nn += num * num;
    }
    // Same tolerance rationale as the in-module gradcheck: the analytic
    // gradient samples the field at the cell center while the FD probe
    // re-integrates the stamped footprint, so require strong directional
    // agreement and same-scale magnitudes.
    let cosine = dot / (na.sqrt() * nn.sqrt()).max(1e-12);
    assert!(cosine > 0.9, "gradient direction poor: cosine = {cosine}");
    let ratio = na.sqrt() / nn.sqrt().max(1e-12);
    assert!((0.4..2.5).contains(&ratio), "gradient magnitude off: ratio = {ratio}");
}
