//! Analytical global-placement substrate (the DREAMPlace/ePlace layer the
//! paper builds on, §2.2).
//!
//! Provides the non-timing parts of Eq. (3)/(4):
//!
//! - [`WirelengthModel`]: exact HPWL for reporting and the weighted-average
//!   (WA) smooth wirelength with analytic gradients, with optional per-net
//!   weights (the hook used by the net-weighting baseline, Eq. 4).
//! - [`DensityModel`]: ePlace-style electrostatic density — bin-grid charge
//!   stamping, spectral Poisson solve (DCT basis, in-house transforms),
//!   per-cell field gradients, and the density-overflow stop metric.
//! - [`NesterovOptimizer`]: Nesterov accelerated gradient with
//!   Barzilai–Borwein step sizing and per-cell preconditioning, plus a plain
//!   [`AdamOptimizer`] alternative.
//! - [`Legalizer`]: Tetris-style row legalization; [`detail`]: greedy
//!   swap-based detailed placement.
//!
//! The timing-driven placement flows in `dtp-core` compose these pieces with
//! the differentiable timer of `dtp-sta`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod abacus;
pub mod detail;
pub mod fft;
pub mod plot;
mod density;
mod legalize;
mod optimizer;
mod spectral;
mod wirelength;

pub use abacus::AbacusLegalizer;
pub use density::{DensityModel, DensityResult, DensityScratch};
pub use legalize::{check_legal, Legalizer};
pub use optimizer::{AdamOptimizer, NesterovOptimizer};
pub use spectral::{PoissonScratch, PoissonSolution, Spectral2D};
pub use wirelength::{WirelengthModel, WirelengthScratch};
