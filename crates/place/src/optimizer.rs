//! First-order optimizers for the nonlinear placement problem.
//!
//! [`NesterovOptimizer`] is the ePlace/DREAMPlace workhorse: Nesterov's
//! accelerated gradient with Barzilai–Borwein step estimation and a caller
//! supplied per-cell preconditioner. [`AdamOptimizer`] is a simpler
//! alternative used by the ablation benches.

use dtp_netlist::Design;
use rayon::chunks::chunk_count;
use rayon::prelude::*;

/// Cells per parallel work item in the Nesterov sweeps. Fixed — not derived
/// from the pool width — so the chunk-ordered reductions below are bitwise
/// identical no matter how many threads execute them.
const STEP_CHUNK: usize = 4096;

/// Shared clamping data: keep lower-left positions inside the core.
#[derive(Clone, Debug)]
struct Bounds {
    xl: f64,
    yl: f64,
    xh: Vec<f64>,
    yh: Vec<f64>,
    movable: Vec<bool>,
}

impl Bounds {
    fn new(design: &Design) -> Bounds {
        let nl = &design.netlist;
        let mut xh = Vec::with_capacity(nl.num_cells());
        let mut yh = Vec::with_capacity(nl.num_cells());
        let mut movable = Vec::with_capacity(nl.num_cells());
        for c in nl.cell_ids() {
            let class = nl.class_of(c);
            xh.push(design.region.xh - class.width());
            yh.push(design.region.yh - class.height());
            movable.push(!nl.cell(c).is_fixed());
        }
        Bounds { xl: design.region.xl, yl: design.region.yl, xh, yh, movable }
    }

    #[inline]
    fn clamp(&self, i: usize, x: f64, y: f64) -> (f64, f64) {
        (x.clamp(self.xl, self.xh[i].max(self.xl)), y.clamp(self.yl, self.yh[i].max(self.yl)))
    }
}

/// Nesterov accelerated gradient with Barzilai–Borwein step size.
///
/// Usage per iteration: read the query point with
/// [`NesterovOptimizer::positions`], evaluate the total objective gradient
/// there, then call [`NesterovOptimizer::step`].
#[derive(Clone, Debug)]
pub struct NesterovOptimizer {
    /// Current solution (uₖ).
    u_x: Vec<f64>,
    u_y: Vec<f64>,
    /// Lookahead point (vₖ) — where the gradient is evaluated.
    v_x: Vec<f64>,
    v_y: Vec<f64>,
    /// Previous lookahead point / preconditioned gradient for the BB step;
    /// persistent buffers, valid once `have_prev` is set.
    prev_v_x: Vec<f64>,
    prev_v_y: Vec<f64>,
    prev_g_x: Vec<f64>,
    prev_g_y: Vec<f64>,
    /// Persistent buffers for the current preconditioned gradient, swapped
    /// into `prev_g_*` at the end of each step — no per-step allocation.
    gxp: Vec<f64>,
    gyp: Vec<f64>,
    /// Per-chunk reduction partials (one slot per `STEP_CHUNK` cells),
    /// folded serially in chunk order so the BB dot products and the
    /// first-step ∞-norm are independent of the pool width.
    bb_sy: Vec<f64>,
    bb_yy: Vec<f64>,
    have_prev: bool,
    a: f64,
    bounds: Bounds,
    /// Fallback step when BB is unavailable (first iteration).
    initial_step: f64,
}

impl NesterovOptimizer {
    /// Creates the optimizer starting from the positions currently in the
    /// design's netlist. `initial_step` is the first-iteration step length in
    /// microns per unit preconditioned gradient-∞-norm (one bin width is a
    /// good choice).
    pub fn new(design: &Design, initial_step: f64) -> NesterovOptimizer {
        let (xs, ys) = design.netlist.positions();
        NesterovOptimizer {
            u_x: xs.clone(),
            u_y: ys.clone(),
            v_x: xs,
            v_y: ys,
            prev_v_x: Vec::new(),
            prev_v_y: Vec::new(),
            prev_g_x: Vec::new(),
            prev_g_y: Vec::new(),
            gxp: Vec::new(),
            gyp: Vec::new(),
            bb_sy: Vec::new(),
            bb_yy: Vec::new(),
            have_prev: false,
            a: 1.0,
            bounds: Bounds::new(design),
            initial_step,
        }
    }

    /// The point at which the caller must evaluate the gradient.
    pub fn positions(&self) -> (&[f64], &[f64]) {
        (&self.v_x, &self.v_y)
    }

    /// The current (non-lookahead) solution.
    pub fn solution(&self) -> (&[f64], &[f64]) {
        (&self.u_x, &self.u_y)
    }

    /// Applies one Nesterov step with the gradient `(gx, gy)` evaluated at
    /// [`NesterovOptimizer::positions`], dividing each cell's gradient by
    /// `precond[cell]` (pass 1s for no preconditioning). Returns the step
    /// size used.
    ///
    /// All intermediates live in persistent buffers owned by the optimizer,
    /// so steady-state steps perform zero heap allocations. Every sweep and
    /// reduction runs over the pool in fixed `STEP_CHUNK` chunks with
    /// partials folded in chunk order, so the trajectory is bit-for-bit
    /// identical across thread counts.
    ///
    /// # Panics
    ///
    /// Panics if slice lengths mismatch the cell count.
    pub fn step(&mut self, gx: &[f64], gy: &[f64], precond: &[f64]) -> f64 {
        let n = self.u_x.len();
        assert!(gx.len() == n && gy.len() == n && precond.len() == n);
        let chunks = chunk_count(n, STEP_CHUNK);
        // The persistent buffers are fully overwritten, so a plain resize
        // (no-op in steady state) is enough.
        if self.gxp.len() != n {
            self.gxp.resize(n, 0.0);
            self.gyp.resize(n, 0.0);
        }
        if self.bb_sy.len() != chunks {
            self.bb_sy.resize(chunks, 0.0);
            self.bb_yy.resize(chunks, 0.0);
        }

        // Preconditioned gradient into the persistent buffers (elementwise,
        // so chunking cannot change the result).
        self.gxp
            .par_chunks_mut(STEP_CHUNK)
            .zip(self.gyp.par_chunks_mut(STEP_CHUNK))
            .zip(gx.par_chunks(STEP_CHUNK))
            .zip(gy.par_chunks(STEP_CHUNK))
            .zip(precond.par_chunks(STEP_CHUNK))
            .for_each(|((((xo, yo), gxc), gyc), pc)| {
                for k in 0..xo.len() {
                    let p = pc[k].max(1e-12);
                    xo[k] = gxc[k] / p;
                    yo[k] = gyc[k] / p;
                }
            });

        // Barzilai–Borwein step: |Δv·Δg| / |Δg·Δg| on the preconditioned
        // sequence; falls back to a norm-scaled initial step. Each chunk
        // writes one partial slot (4096 cells of work per dispatch), and the
        // fold over partials is serial and chunk-ordered.
        let alpha = if self.have_prev {
            {
                let (v_x, v_y) = (&self.v_x, &self.v_y);
                let (prev_v_x, prev_v_y) = (&self.prev_v_x, &self.prev_v_y);
                let (gxp, gyp) = (&self.gxp, &self.gyp);
                let (prev_g_x, prev_g_y) = (&self.prev_g_x, &self.prev_g_y);
                let movable = &self.bounds.movable;
                self.bb_sy
                    .par_chunks_mut(1)
                    .zip(self.bb_yy.par_chunks_mut(1))
                    .enumerate()
                    .for_each(|(c, (sy_out, yy_out))| {
                        let lo = c * STEP_CHUNK;
                        let hi = (lo + STEP_CHUNK).min(n);
                        let mut sy = 0.0;
                        let mut yy = 0.0;
                        for i in lo..hi {
                            if !movable[i] {
                                continue;
                            }
                            let sxv = v_x[i] - prev_v_x[i];
                            let syv = v_y[i] - prev_v_y[i];
                            let yxv = gxp[i] - prev_g_x[i];
                            let yyv = gyp[i] - prev_g_y[i];
                            sy += sxv * yxv + syv * yyv;
                            yy += yxv * yxv + yyv * yyv;
                        }
                        sy_out[0] = sy;
                        yy_out[0] = yy;
                    });
            }
            let mut sy = 0.0;
            let mut yy = 0.0;
            for c in 0..chunks {
                sy += self.bb_sy[c];
                yy += self.bb_yy[c];
            }
            if yy > 1e-24 {
                (sy.abs() / yy).clamp(1e-9, 1e7)
            } else {
                self.initial_step
            }
        } else {
            // f64 max is exactly associative and commutative, but the fold
            // stays chunk-ordered anyway for uniformity.
            {
                let (gxp, gyp) = (&self.gxp, &self.gyp);
                self.bb_sy.par_chunks_mut(1).enumerate().for_each(|(c, out)| {
                    let lo = c * STEP_CHUNK;
                    let hi = (lo + STEP_CHUNK).min(n);
                    let mut m = 0.0f64;
                    for i in lo..hi {
                        m = m.max(gxp[i].abs()).max(gyp[i].abs());
                    }
                    out[0] = m;
                });
            }
            let gmax = self.bb_sy.iter().fold(0.0f64, |m, &v| m.max(v));
            if gmax > 0.0 {
                self.initial_step / gmax
            } else {
                self.initial_step
            }
        };

        // u_{k+1} = clamp(v_k − α g); v_{k+1} = u_{k+1} + coef (u_{k+1} − u_k).
        let a_next = 0.5 * (1.0 + (4.0 * self.a * self.a + 1.0).sqrt());
        let coef = (self.a - 1.0) / a_next;
        // Save vₖ as the next BB reference, then update u and v in place
        // (fixed cells keep their entries untouched; the update is
        // elementwise, so chunking cannot change it).
        copy_into(&mut self.prev_v_x, &self.v_x);
        copy_into(&mut self.prev_v_y, &self.v_y);
        {
            let (gxp, gyp) = (&self.gxp, &self.gyp);
            let bounds = &self.bounds;
            self.u_x
                .par_chunks_mut(STEP_CHUNK)
                .zip(self.u_y.par_chunks_mut(STEP_CHUNK))
                .zip(self.v_x.par_chunks_mut(STEP_CHUNK))
                .zip(self.v_y.par_chunks_mut(STEP_CHUNK))
                .enumerate()
                .for_each(|(c, (((ux, uy), vx), vy))| {
                    let base = c * STEP_CHUNK;
                    for k in 0..ux.len() {
                        let i = base + k;
                        if !bounds.movable[i] {
                            continue;
                        }
                        let (nux, nuy) =
                            bounds.clamp(i, vx[k] - alpha * gxp[i], vy[k] - alpha * gyp[i]);
                        let (nvx, nvy) = bounds
                            .clamp(i, nux + coef * (nux - ux[k]), nuy + coef * (nuy - uy[k]));
                        ux[k] = nux;
                        uy[k] = nuy;
                        vx[k] = nvx;
                        vy[k] = nvy;
                    }
                });
        }
        std::mem::swap(&mut self.prev_g_x, &mut self.gxp);
        std::mem::swap(&mut self.prev_g_y, &mut self.gyp);
        self.have_prev = true;
        self.a = a_next;
        alpha
    }
}

/// Reuses `dst` as a copy of `src` (no allocation once capacity exists).
fn copy_into(dst: &mut Vec<f64>, src: &[f64]) {
    dst.clear();
    dst.extend_from_slice(src);
}

/// Adam optimizer over cell positions (ablation alternative).
#[derive(Clone, Debug)]
pub struct AdamOptimizer {
    x: Vec<f64>,
    y: Vec<f64>,
    m_x: Vec<f64>,
    m_y: Vec<f64>,
    v_x: Vec<f64>,
    v_y: Vec<f64>,
    t: u64,
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    bounds: Bounds,
}

impl AdamOptimizer {
    /// Creates the optimizer with learning rate `lr` (microns per step).
    pub fn new(design: &Design, lr: f64) -> AdamOptimizer {
        let (xs, ys) = design.netlist.positions();
        let n = xs.len();
        AdamOptimizer {
            x: xs,
            y: ys,
            m_x: vec![0.0; n],
            m_y: vec![0.0; n],
            v_x: vec![0.0; n],
            v_y: vec![0.0; n],
            t: 0,
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            bounds: Bounds::new(design),
        }
    }

    /// Current positions (also the gradient query point).
    pub fn positions(&self) -> (&[f64], &[f64]) {
        (&self.x, &self.y)
    }

    /// Applies one Adam step.
    ///
    /// # Panics
    ///
    /// Panics if slice lengths mismatch.
    pub fn step(&mut self, gx: &[f64], gy: &[f64]) {
        let n = self.x.len();
        assert!(gx.len() == n && gy.len() == n);
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..n {
            if !self.bounds.movable[i] {
                continue;
            }
            self.m_x[i] = self.beta1 * self.m_x[i] + (1.0 - self.beta1) * gx[i];
            self.m_y[i] = self.beta1 * self.m_y[i] + (1.0 - self.beta1) * gy[i];
            self.v_x[i] = self.beta2 * self.v_x[i] + (1.0 - self.beta2) * gx[i] * gx[i];
            self.v_y[i] = self.beta2 * self.v_y[i] + (1.0 - self.beta2) * gy[i] * gy[i];
            let sx = self.lr * (self.m_x[i] / bc1) / ((self.v_x[i] / bc2).sqrt() + self.eps);
            let sy = self.lr * (self.m_y[i] / bc1) / ((self.v_y[i] / bc2).sqrt() + self.eps);
            let (x, y) = self.bounds.clamp(i, self.x[i] - sx, self.y[i] - sy);
            self.x[i] = x;
            self.y[i] = y;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtp_netlist::generate::{generate, GeneratorConfig};

    /// Quadratic bowl in x only (the target x = 3 is interior to the region,
    /// so clamping never interferes): f = Σ_movable (x−3)².
    fn quad_grad(d: &dtp_netlist::Design, xs: &[f64]) -> (Vec<f64>, Vec<f64>, f64) {
        let mut gx = vec![0.0; xs.len()];
        let mut f = 0.0;
        for c in d.netlist.movable_cells() {
            let x = xs[c.index()];
            gx[c.index()] = 2.0 * (x - 3.0);
            f += (x - 3.0) * (x - 3.0);
        }
        let gy = vec![0.0; xs.len()];
        (gx, gy, f)
    }

    #[test]
    fn nesterov_descends_quadratic() {
        let d = generate(&GeneratorConfig::named("opt", 60)).unwrap();
        let mut opt = NesterovOptimizer::new(&d, 1.0);
        let ones = vec![1.0; d.netlist.num_cells()];
        let (xs, _) = opt.positions();
        let (_, _, f0) = quad_grad(&d, xs);
        for _ in 0..150 {
            let (xs, _) = opt.positions();
            let (gx, gy, _) = quad_grad(&d, xs);
            opt.step(&gx, &gy, &ones);
        }
        let (xs, _) = opt.solution();
        let (_, _, f1) = quad_grad(&d, xs);
        assert!(f1 < 0.05 * f0, "nesterov did not descend: {f0} -> {f1}");
        for c in d.netlist.movable_cells() {
            assert!((xs[c.index()] - 3.0).abs() < 1.0, "x = {}", xs[c.index()]);
        }
    }

    #[test]
    fn fixed_cells_do_not_move() {
        let d = generate(&GeneratorConfig::named("opt", 60)).unwrap();
        let (x0, y0) = d.netlist.positions();
        let mut opt = NesterovOptimizer::new(&d, 1.0);
        let ones = vec![1.0; d.netlist.num_cells()];
        for _ in 0..5 {
            let (xs, _) = opt.positions();
            let (gx, gy, _) = quad_grad(&d, xs);
            opt.step(&gx, &gy, &ones);
        }
        let (xs, ys) = opt.solution();
        for c in d.netlist.cell_ids() {
            if d.netlist.cell(c).is_fixed() {
                assert_eq!(xs[c.index()], x0[c.index()]);
                assert_eq!(ys[c.index()], y0[c.index()]);
            }
        }
    }

    #[test]
    fn adam_descends_quadratic() {
        let d = generate(&GeneratorConfig::named("opt2", 50)).unwrap();
        let mut opt = AdamOptimizer::new(&d, 0.5);
        let (xs, _) = opt.positions();
        let (_, _, f0) = quad_grad(&d, xs);
        for _ in 0..200 {
            let (xs, _) = opt.positions();
            let (gx, gy, _) = quad_grad(&d, xs);
            opt.step(&gx, &gy);
        }
        let (xs, _) = opt.positions();
        let (_, _, f1) = quad_grad(&d, xs);
        assert!(f1 < 0.5 * f0, "adam did not descend: {f0} -> {f1}");
    }

    #[test]
    fn preconditioner_scales_step() {
        let d = generate(&GeneratorConfig::named("opt3", 40)).unwrap();
        let n = d.netlist.num_cells();
        let mut a = NesterovOptimizer::new(&d, 1.0);
        let mut b = NesterovOptimizer::new(&d, 1.0);
        let g = vec![1.0; n];
        a.step(&g, &g, &vec![1.0; n]);
        b.step(&g, &g, &vec![10.0; n]);
        let (ax, _) = a.solution();
        let (bx, _) = b.solution();
        // Stronger preconditioning => smaller move (before clamping effects).
        let mova: f64 = d
            .netlist
            .movable_cells()
            .map(|c| (ax[c.index()] - d.netlist.cell(c).pos().x).abs())
            .sum();
        let movb: f64 = d
            .netlist
            .movable_cells()
            .map(|c| (bx[c.index()] - d.netlist.cell(c).pos().x).abs())
            .sum();
        assert!(movb <= mova + 1e-12);
    }
}
