//! Tetris-style legalization: snap the global-placement result onto rows and
//! sites with no overlaps, minimizing displacement greedily.
//!
//! At scale the row-assignment phase runs *band-parallel*: rows are split
//! into independent bands, cells are partitioned to bands by target row, and
//! each band assigns its cells scanning only its own rows — turning the
//! serial O(cells × rows) scan into concurrent O(cells × band_rows) work.
//! Cells whose band is full are deferred to a serial all-rows pass. Band
//! count derives from the row count alone, so results are bit-for-bit
//! identical across thread counts; designs under 64 rows use a single band
//! (the classic serial algorithm).

use dtp_netlist::{CellId, Design};
use rayon::prelude::*;

/// Greedy row legalizer.
///
/// Cells are processed in increasing x; each is assigned to the row/site that
/// minimizes `|Δx| + 2·|Δy|` among rows whose frontier still has space. Cells
/// are assumed to be single-row-height (true for the synthetic standard-cell
/// set); fixed cells are left untouched and are not modeled as blockages
/// (the synthetic fixed cells are zero-area ports on the boundary).
#[derive(Clone, Debug)]
pub struct Legalizer {
    row_y: Vec<f64>,
    row_x_min: Vec<f64>,
    row_x_max: Vec<f64>,
    site: f64,
    /// Rows per parallel band; 0 = auto (32 for ≥ 64 rows, else one band).
    band_rows: usize,
}

impl Legalizer {
    /// Builds a legalizer from the design's rows.
    ///
    /// # Panics
    ///
    /// Panics if the design has no rows.
    pub fn new(design: &Design) -> Legalizer {
        assert!(!design.rows.is_empty(), "design has no rows");
        Legalizer {
            row_y: design.rows.iter().map(|r| r.y).collect(),
            row_x_min: design.rows.iter().map(|r| r.x_min).collect(),
            row_x_max: design.rows.iter().map(|r| r.x_max).collect(),
            site: design.rows[0].site_width,
            band_rows: 0,
        }
    }

    /// Overrides the parallel band height (rows per band); 0 restores the
    /// automatic policy. The result depends only on this value and the
    /// design, never on the thread count.
    #[must_use]
    pub fn with_band_rows(mut self, band_rows: usize) -> Legalizer {
        self.band_rows = band_rows;
        self
    }

    fn effective_band_rows(&self) -> usize {
        if self.band_rows > 0 {
            self.band_rows
        } else if self.row_y.len() >= 64 {
            32
        } else {
            self.row_y.len()
        }
    }

    /// Number of row bands the legalizer will partition the core into
    /// (1 = a single serial scan). Depends only on the band policy and the
    /// design, never on the thread count; the flow reports it as the
    /// `legalize_bands` gauge.
    pub fn bands(&self) -> usize {
        self.row_y.len().div_ceil(self.effective_band_rows().max(1)).max(1)
    }

    /// Legalizes `(xs, ys)` in place and returns the total and maximum cell
    /// displacement `(total, max)`.
    ///
    /// Two phases: (1) capacity-aware row assignment — each cell (ascending
    /// x) takes the cheapest row that still has width budget; (2) per-row
    /// frontier packing, clamped so the row's remaining cells always fit
    /// (the classic Tetris frontier alone can strand space to its left and
    /// deadlock on scattered inputs).
    ///
    /// # Panics
    ///
    /// Panics if the movable cell width exceeds the total row capacity.
    pub fn legalize(&self, design: &Design, xs: &mut [f64], ys: &mut [f64]) -> (f64, f64) {
        let nl = &design.netlist;
        let mut order: Vec<CellId> = nl.movable_cells().collect();
        order.sort_by(|&a, &b| {
            xs[a.index()]
                .partial_cmp(&xs[b.index()])
                .expect("positions are finite")
        });
        // Phase 1: row assignment under site-quantized width budgets,
        // band-parallel — each band scans only its own rows; cells whose
        // band is full fall through to the serial all-rows pass below.
        let n_rows = self.row_y.len();
        let row_h = design.row_height();
        let site_width = |w: f64| (w / self.site).ceil() * self.site;
        let band_rows = self.effective_band_rows();
        let bands = n_rows.div_ceil(band_rows);
        let mut band_cells: Vec<Vec<CellId>> = vec![Vec::new(); bands];
        for &c in &order {
            let tr = (((ys[c.index()] - self.row_y[0]) / row_h).round() as i64)
                .clamp(0, n_rows as i64 - 1) as usize;
            band_cells[tr / band_rows].push(c);
        }
        let mut remaining: Vec<f64> = (0..n_rows)
            .map(|r| self.row_x_max[r] - self.row_x_min[r])
            .collect();
        let mut members: Vec<Vec<CellId>> = vec![Vec::new(); n_rows];
        let mut deferred: Vec<Vec<CellId>> = vec![Vec::new(); bands];
        let ys_r = &*ys;
        remaining
            .par_chunks_mut(band_rows)
            .zip(members.par_chunks_mut(band_rows))
            .zip(band_cells.par_chunks(1))
            .zip(deferred.par_chunks_mut(1))
            .enumerate()
            .for_each(|(bi, (((rem, mem), bc), defer))| {
                let defer = &mut defer[0];
                let band_lo = bi * band_rows;
                for &c in &bc[0] {
                    let w = site_width(nl.class_of(c).width());
                    let ty = ys_r[c.index()];
                    let mut best: Option<(f64, usize)> = None;
                    for (k, &r_rem) in rem.iter().enumerate() {
                        if r_rem < w - 1e-9 {
                            continue;
                        }
                        let r = band_lo + k;
                        // Penalize nearly-full rows slightly so load stays
                        // balanced.
                        let cap0 = self.row_x_max[r] - self.row_x_min[r];
                        let fullness = 1.0 - r_rem / cap0;
                        let cost =
                            (self.row_y[r] - ty).abs() + 2.0 * fullness * fullness;
                        if best.is_none_or(|(bc, _)| cost < bc) {
                            best = Some((cost, k));
                        }
                    }
                    match best {
                        Some((_, k)) => {
                            rem[k] -= w;
                            mem[k].push(c);
                        }
                        None => defer.push(c),
                    }
                }
            });
        // Serial reconciliation over all rows for deferred cells
        // (deterministic band-then-x order, independent of threads).
        for defer in &deferred {
            for &c in defer {
                let w = site_width(nl.class_of(c).width());
                let ty = ys[c.index()];
                let mut best: Option<(f64, usize)> = None;
                for (r, &rem) in remaining.iter().enumerate() {
                    if rem < w - 1e-9 {
                        continue;
                    }
                    let cap0 = self.row_x_max[r] - self.row_x_min[r];
                    let fullness = 1.0 - rem / cap0;
                    let cost = (self.row_y[r] - ty).abs() + 2.0 * fullness * fullness;
                    if best.is_none_or(|(bc, _)| cost < bc) {
                        best = Some((cost, r));
                    }
                }
                let (_, row) =
                    best.unwrap_or_else(|| panic!("no row has capacity for cell {c:?}"));
                remaining[row] -= w;
                members[row].push(c);
            }
        }
        // Phase 2: pack each row with a suffix-aware frontier.
        let mut total = 0.0f64;
        let mut max_disp = 0.0f64;
        for (r, mems) in members.iter().enumerate() {
            // Members arrive in global ascending x; keep that order.
            let widths: Vec<f64> = mems
                .iter()
                .map(|&c| site_width(nl.class_of(c).width()))
                .collect();
            let mut suffix: Vec<f64> = vec![0.0; widths.len() + 1];
            for k in (0..widths.len()).rev() {
                suffix[k] = suffix[k + 1] + widths[k];
            }
            let mut frontier = self.row_x_min[r];
            for (k, &c) in mems.iter().enumerate() {
                let i = c.index();
                let (tx, ty) = (xs[i], ys[i]);
                let latest = self.row_x_max[r] - suffix[k];
                let x = self
                    .snap(frontier.max(tx))
                    .min((latest / self.site + 1e-9).floor() * self.site)
                    .max(self.snap(frontier));
                let disp = (x - tx).abs() + (self.row_y[r] - ty).abs();
                total += disp;
                max_disp = max_disp.max(disp);
                xs[i] = x;
                ys[i] = self.row_y[r];
                frontier = x + widths[k];
            }
        }
        (total, max_disp)
    }

    #[inline]
    fn snap(&self, x: f64) -> f64 {
        // Tolerant ceil: accumulated float error must not push a cell one
        // whole site to the right.
        (x / self.site - 1e-9).ceil() * self.site
    }
}

/// Checks whether a placement is legal: every movable cell on a row and site,
/// inside the core, with no overlaps between movable cells. Returns the list
/// of violation descriptions (empty = legal).
pub fn check_legal(design: &Design, xs: &[f64], ys: &[f64]) -> Vec<String> {
    let nl = &design.netlist;
    let mut violations = Vec::new();
    let site = design.rows[0].site_width;
    let row_h = design.row_height();
    // Row and site alignment + bounds.
    let mut by_row: std::collections::BTreeMap<i64, Vec<(f64, f64, CellId)>> =
        std::collections::BTreeMap::new();
    for c in nl.movable_cells() {
        let i = c.index();
        let w = nl.class_of(c).width();
        let (x, y) = (xs[i], ys[i]);
        let row_idx = ((y - design.region.yl) / row_h).round() as i64;
        if ((y - design.region.yl) - row_idx as f64 * row_h).abs() > 1e-6 {
            violations.push(format!("cell {c:?} not row aligned (y={y})"));
        }
        if ((x - design.region.xl) / site).fract().abs() > 1e-6
            && (1.0 - ((x - design.region.xl) / site).fract()).abs() > 1e-6
        {
            violations.push(format!("cell {c:?} not site aligned (x={x})"));
        }
        if x < design.region.xl - 1e-6 || x + w > design.region.xh + 1e-6 {
            violations.push(format!("cell {c:?} outside core in x"));
        }
        by_row.entry(row_idx).or_default().push((x, x + w, c));
    }
    // Overlaps within rows.
    for (_, mut cells) in by_row {
        cells.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
        for w in cells.windows(2) {
            if w[0].1 > w[1].0 + 1e-6 {
                violations.push(format!("overlap between {:?} and {:?}", w[0].2, w[1].2));
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtp_netlist::generate::{generate, GeneratorConfig};

    #[test]
    fn legalizes_random_placement() {
        let d = generate(&GeneratorConfig::named("lg", 250)).unwrap();
        let (mut xs, mut ys) = d.netlist.positions();
        let lg = Legalizer::new(&d);
        let (total, max_disp) = lg.legalize(&d, &mut xs, &mut ys);
        assert!(total >= 0.0 && max_disp >= 0.0);
        let violations = check_legal(&d, &xs, &ys);
        assert!(violations.is_empty(), "violations: {violations:?}");
    }

    #[test]
    fn legal_input_moves_little() {
        // Already-legal cells should stay close (greedy frontier may shift
        // same-row neighbours, but displacement stays bounded by cell widths).
        let d = generate(&GeneratorConfig::named("lg2", 100)).unwrap();
        let lg = Legalizer::new(&d);
        let (mut xs, mut ys) = d.netlist.positions();
        lg.legalize(&d, &mut xs, &mut ys);
        let (mut xs2, mut ys2) = (xs.clone(), ys.clone());
        let (total2, _) = lg.legalize(&d, &mut xs2, &mut ys2);
        // Re-legalizing a legal placement is near-free.
        assert!(total2 < 1e-6, "re-legalization moved cells: {total2}");
    }

    #[test]
    fn detects_overlaps() {
        let d = generate(&GeneratorConfig::named("lg3", 50)).unwrap();
        let (mut xs, mut ys) = d.netlist.positions();
        let lg = Legalizer::new(&d);
        lg.legalize(&d, &mut xs, &mut ys);
        // Manufacture an overlap.
        let movable: Vec<_> = d.netlist.movable_cells().collect();
        let a = movable[0].index();
        let b = movable[1].index();
        xs[b] = xs[a];
        ys[b] = ys[a];
        assert!(!check_legal(&d, &xs, &ys).is_empty());
    }
}
