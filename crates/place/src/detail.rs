//! Greedy detailed placement: local refinement of a legal placement.
//!
//! Two move types, applied row by row until no improvement:
//!
//! - **median shift**: slide a cell within the free gap between its row
//!   neighbours to the x that minimizes the HPWL of its incident nets
//!   (the unconstrained optimum is the median of the other pins).
//! - **adjacent swap**: exchange two equal-width neighbours when that reduces
//!   incident HPWL.
//!
//! This is deliberately simple — detailed placement is not the paper's
//! contribution — but it is a real legality-preserving refinement pass, so
//! the full GP → LG → DP pipeline of §1 exists end to end.

use dtp_netlist::{CellId, Design, NetId};

/// Cell → incident net index for fast HPWL deltas.
#[derive(Clone, Debug)]
pub struct DetailPlacer {
    /// Incident (non-clock) nets per cell.
    nets_of_cell: Vec<Vec<u32>>,
    site: f64,
}

impl DetailPlacer {
    /// Builds incidence structures.
    pub fn new(design: &Design) -> DetailPlacer {
        let nl = &design.netlist;
        let mut nets_of_cell: Vec<Vec<u32>> = vec![Vec::new(); nl.num_cells()];
        for net in nl.net_ids() {
            if nl.net(net).is_clock() || nl.net(net).degree() < 2 {
                continue;
            }
            for &p in nl.net(net).pins() {
                let c = nl.pin(p).cell().index();
                if !nets_of_cell[c].contains(&(net.index() as u32)) {
                    nets_of_cell[c].push(net.index() as u32);
                }
            }
        }
        DetailPlacer { nets_of_cell, site: design.rows[0].site_width }
    }

    /// HPWL of the nets incident to `cell` at the given positions.
    fn incident_hpwl(&self, design: &Design, xs: &[f64], ys: &[f64], cell: CellId) -> f64 {
        let nl = &design.netlist;
        self.nets_of_cell[cell.index()]
            .iter()
            .map(|&ni| {
                let net = nl.net(NetId::new(ni as usize));
                let mut xmin = f64::INFINITY;
                let mut xmax = f64::NEG_INFINITY;
                let mut ymin = f64::INFINITY;
                let mut ymax = f64::NEG_INFINITY;
                for &p in net.pins() {
                    let pin = nl.pin(p);
                    let off = nl.pin_spec(p).offset;
                    let x = xs[pin.cell().index()] + off.x;
                    let y = ys[pin.cell().index()] + off.y;
                    xmin = xmin.min(x);
                    xmax = xmax.max(x);
                    ymin = ymin.min(y);
                    ymax = ymax.max(y);
                }
                (xmax - xmin) + (ymax - ymin)
            })
            .sum()
    }

    /// Runs up to `passes` improvement passes; returns the number of
    /// improving moves applied.
    pub fn refine(&self, design: &Design, xs: &mut [f64], ys: &mut [f64], passes: usize) -> usize {
        let nl = &design.netlist;
        let row_h = design.row_height();
        let mut moves = 0usize;
        for _ in 0..passes {
            let before = moves;
            // Build per-row ordered cell lists.
            let mut rows: std::collections::BTreeMap<i64, Vec<CellId>> =
                std::collections::BTreeMap::new();
            for c in nl.movable_cells() {
                let r = ((ys[c.index()] - design.region.yl) / row_h).round() as i64;
                rows.entry(r).or_default().push(c);
            }
            for cells in rows.values_mut() {
                cells.sort_by(|&a, &b| {
                    xs[a.index()].partial_cmp(&xs[b.index()]).expect("finite")
                });
                // Median shifts.
                for k in 0..cells.len() {
                    let c = cells[k];
                    let w = nl.class_of(c).width();
                    let lo = if k == 0 {
                        design.region.xl
                    } else {
                        let prev = cells[k - 1];
                        xs[prev.index()] + nl.class_of(prev).width()
                    };
                    let hi = if k + 1 == cells.len() {
                        design.region.xh - w
                    } else {
                        xs[cells[k + 1].index()] - w
                    };
                    if hi < lo {
                        continue;
                    }
                    let cur = xs[c.index()];
                    let base = self.incident_hpwl(design, xs, ys, c);
                    // Candidate: snap a few positions across the gap.
                    let mut best = (base, cur);
                    for t in 0..5 {
                        let cand = lo + (hi - lo) * t as f64 / 4.0;
                        let cand = (cand / self.site).round() * self.site;
                        if cand < lo - 1e-9 || cand > hi + 1e-9 {
                            continue;
                        }
                        xs[c.index()] = cand;
                        let v = self.incident_hpwl(design, xs, ys, c);
                        if v < best.0 - 1e-9 {
                            best = (v, cand);
                        }
                    }
                    xs[c.index()] = best.1;
                    if best.1 != cur {
                        moves += 1;
                    }
                }
                // Adjacent equal-width swaps.
                for k in 0..cells.len().saturating_sub(1) {
                    let a = cells[k];
                    let b = cells[k + 1];
                    if (nl.class_of(a).width() - nl.class_of(b).width()).abs() > 1e-9 {
                        continue;
                    }
                    let base = self.incident_hpwl(design, xs, ys, a)
                        + self.incident_hpwl(design, xs, ys, b);
                    let (xa, xb) = (xs[a.index()], xs[b.index()]);
                    xs[a.index()] = xb;
                    xs[b.index()] = xa;
                    let after = self.incident_hpwl(design, xs, ys, a)
                        + self.incident_hpwl(design, xs, ys, b);
                    if after < base - 1e-9 {
                        moves += 1;
                        // Keep row order consistent for later iterations.
                        // (cells vec order no longer matches x; fix locally)
                    } else {
                        xs[a.index()] = xa;
                        xs[b.index()] = xb;
                    }
                }
            }
            if moves == before {
                break;
            }
        }
        moves
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::legalize::{check_legal, Legalizer};
    use crate::wirelength::WirelengthModel;
    use dtp_netlist::generate::{generate, GeneratorConfig};

    #[test]
    fn refinement_reduces_hpwl_and_stays_legal() {
        let d = generate(&GeneratorConfig::named("dp", 200)).unwrap();
        let (mut xs, mut ys) = d.netlist.positions();
        Legalizer::new(&d).legalize(&d, &mut xs, &mut ys);
        let wl = WirelengthModel::new(&d.netlist);
        let before = wl.hpwl(&xs, &ys);
        let dp = DetailPlacer::new(&d);
        let moves = dp.refine(&d, &mut xs, &mut ys, 3);
        let after = wl.hpwl(&xs, &ys);
        assert!(after <= before + 1e-6, "HPWL increased: {before} -> {after}");
        assert!(moves > 0, "no improving moves found on a random placement");
        let violations = check_legal(&d, &xs, &ys);
        assert!(violations.is_empty(), "DP broke legality: {violations:?}");
    }

    #[test]
    fn converges_to_no_moves() {
        let d = generate(&GeneratorConfig::named("dp2", 120)).unwrap();
        let (mut xs, mut ys) = d.netlist.positions();
        Legalizer::new(&d).legalize(&d, &mut xs, &mut ys);
        let dp = DetailPlacer::new(&d);
        dp.refine(&d, &mut xs, &mut ys, 20);
        // A second run from the converged state makes (almost) no moves.
        let again = dp.refine(&d, &mut xs, &mut ys, 1);
        assert!(again <= 2, "did not converge: {again} moves");
    }
}
