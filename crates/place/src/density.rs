//! Electrostatic density model (ePlace): charge stamping, Poisson solve,
//! per-cell field gradients, and the density-overflow metric that drives the
//! λ schedule and the global-placement stop criterion.
//!
//! [`DensityModel::evaluate_into`] is the hot-path entry point: every
//! intermediate (the stamp-record buckets, the density grid, the Poisson
//! scratch and solution, per-chunk energy partials) lives in a caller-owned
//! [`DensityScratch`], so steady-state evaluations inside the Nesterov loop
//! perform zero heap allocations — the same pattern as the STA engine's
//! `AnalysisScratch`.
//!
//! The charge stamp is cache-blocked for million-cell grids: a first pass
//! (parallel over fixed [`CELL_CHUNK`] cell chunks) sorts each cell's stamp
//! rectangle into per-(chunk × bin-column-block) buckets, and a second pass
//! (parallel over column blocks) accumulates each block's records — walked
//! in chunk order — into its own disjoint `BLOCK_COLS`-column slice of ρ.
//! Each block's write window is a few dozen KB, so the sweep streams instead
//! of thrashing, there is no per-thread full-grid image to reduce, and the
//! accumulation order per bin is fixed regardless of the pool width — the
//! whole evaluation is bit-for-bit identical across thread counts.

use crate::spectral::{PoissonScratch, PoissonSolution, Spectral2D};
use dtp_netlist::{Design, Rect};
use rayon::chunks::chunk_count;
use rayon::prelude::*;

/// Cells per parallel work item. Fixed — not derived from the pool width —
/// so bucket contents and chunk-ordered folds are width-invariant.
const CELL_CHUNK: usize = 4096;

/// Bin columns (x-indices) per cache block of the stamp accumulation; one
/// block's ρ slice is `BLOCK_COLS · n` contiguous elements.
const BLOCK_COLS: usize = 8;

/// One cell's stamp, bucketed by (cell chunk × column block): the inflated
/// footprint rectangle and its charge density.
#[derive(Clone, Copy, Debug)]
struct StampRec {
    xl: f64,
    yl: f64,
    xh: f64,
    yh: f64,
    dens: f64,
}

/// The density model for one design.
#[derive(Clone, Debug)]
pub struct DensityModel {
    region: Rect,
    m: usize,
    n: usize,
    bin_w: f64,
    bin_h: f64,
    spectral: Spectral2D,
    /// Bumped whenever the stamp footprints (`w_eff`) change, so a scratch
    /// sized for an older footprint set re-sizes itself on the next
    /// evaluation instead of overflowing its flat record segments.
    sizing_epoch: u64,
    /// Cell sizes (possibly inflated to the bin size; charge preserved).
    w_eff: Vec<f64>,
    h_eff: Vec<f64>,
    /// True (footprint) cell sizes, for center computation.
    w_true: Vec<f64>,
    h_true: Vec<f64>,
    /// Charge per cell = true area (0 for fixed/port cells, which this model
    /// treats as background), times the current inflation factor.
    charge: Vec<f64>,
    /// Uninflated charge, kept so inflation factors never compound.
    base_charge: Vec<f64>,
    target_density: f64,
    movable_area: f64,
}

/// The result of one density evaluation. Reused across iterations by
/// [`DensityModel::evaluate_into`]; [`Default`] gives an empty result to
/// initialize the slot.
#[derive(Clone, Debug, Default)]
pub struct DensityResult {
    /// Electrostatic energy `½ Σ qᵢ ψ(cᵢ)`. The half makes the reported
    /// per-cell field gradient `qᵢ·∂ψ/∂x` the exact derivative of this value
    /// (by reciprocity, moving a charge changes both its own potential term
    /// and every other charge's).
    pub energy: f64,
    /// Density overflow: `Σ_b max(0, ρ_b − target·A_b) / movable_area` —
    /// DREAMPlace's stop metric (0.1 ≈ converged, ~1.0 at start).
    pub overflow: f64,
    /// ∂energy/∂x per cell.
    pub grad_x: Vec<f64>,
    /// ∂energy/∂y per cell.
    pub grad_y: Vec<f64>,
    /// Peak bin density relative to the bin area.
    pub max_density: f64,
}

/// Reusable intermediates for [`DensityModel::evaluate_into`].
///
/// The stamp records live in one flat arena sized up front from the model's
/// footprint statistics (count-then-fill, not push-and-grow), so once a
/// scratch has been sized — lazily on the first evaluation, or eagerly via
/// [`DensityModel::presize_scratch`] — steady-state evaluations perform
/// *zero* heap allocations no matter how cells migrate across column blocks.
#[derive(Clone, Debug, Default)]
pub struct DensityScratch {
    /// Flat stamp-record arena: chunk `ci`'s segment is
    /// `recs[ci · seg_len..(ci + 1) · seg_len]`, where `seg_len` is the
    /// worst-case block coverage of any one chunk.
    recs: Vec<StampRec>,
    /// Uniform per-chunk segment length of `recs`.
    seg_len: usize,
    /// Per-(chunk × block) record counts, `counts[ci · blocks + b]`.
    counts: Vec<u32>,
    /// Chunk-local start of each (chunk × block) run within the segment.
    offsets: Vec<u32>,
    /// Footprint epoch + cell count this scratch's arena was sized for.
    sized_for: Option<(usize, u64)>,
    /// Reduced density grid ρ.
    rho: Vec<f64>,
    /// Mean-removed, area-normalized density ρ̂.
    rho_hat: Vec<f64>,
    /// Per-chunk energy partials, reduced in chunk order.
    energy: Vec<f64>,
    /// Spectral transform intermediates.
    poisson: PoissonScratch,
    /// Reused ψ / ∂ψ grids.
    sol: PoissonSolution,
}

impl DensityScratch {
    /// Creates an empty scratch; buffers are sized lazily on first use.
    pub fn new() -> DensityScratch {
        DensityScratch::default()
    }
}

/// Resizes without preserving contents.
fn ensure_len(v: &mut Vec<f64>, len: usize) {
    v.clear();
    v.resize(len, 0.0);
}

impl DensityModel {
    /// Builds the model with an `m × n` bin grid and a target density
    /// (fraction of each bin allowed to be filled, e.g. 1.0). The FFT
    /// transform backend is selected automatically for power-of-two grids.
    ///
    /// # Panics
    ///
    /// Panics if the grid is degenerate.
    pub fn new(design: &Design, m: usize, n: usize, target_density: f64) -> DensityModel {
        DensityModel::with_options(design, m, n, target_density, true)
    }

    /// Like [`DensityModel::new`] with an explicit transform-backend policy:
    /// `allow_fft = false` forces the dense reference transforms even on
    /// power-of-two grids.
    pub fn with_options(
        design: &Design,
        m: usize,
        n: usize,
        target_density: f64,
        allow_fft: bool,
    ) -> DensityModel {
        let region = design.region;
        let nl = &design.netlist;
        let bin_w = region.width() / m as f64;
        let bin_h = region.height() / n as f64;
        let mut w_eff = Vec::with_capacity(nl.num_cells());
        let mut h_eff = Vec::with_capacity(nl.num_cells());
        let mut w_true = Vec::with_capacity(nl.num_cells());
        let mut h_true = Vec::with_capacity(nl.num_cells());
        let mut charge = Vec::with_capacity(nl.num_cells());
        for c in nl.cell_ids() {
            let class = nl.class_of(c);
            let movable = !nl.cell(c).is_fixed();
            // ePlace inflates cells smaller than a bin to the bin size while
            // preserving total charge, which smooths the density field.
            let w = class.width().max(if movable { bin_w } else { 0.0 });
            let h = class.height().max(if movable { bin_h } else { 0.0 });
            w_eff.push(w);
            h_eff.push(h);
            w_true.push(class.width());
            h_true.push(class.height());
            charge.push(if movable { class.area() } else { 0.0 });
        }
        DensityModel {
            region,
            m,
            n,
            bin_w,
            bin_h,
            spectral: Spectral2D::with_fft(m, n, region.width(), region.height(), allow_fft),
            sizing_epoch: 0,
            w_eff,
            h_eff,
            w_true,
            h_true,
            base_charge: charge.clone(),
            charge,
            target_density,
            movable_area: nl.movable_area(),
        }
    }

    /// Bin grid shape.
    pub fn shape(&self) -> (usize, usize) {
        (self.m, self.n)
    }

    /// True when the spectral solve runs on the radix-2 FFT backend.
    pub fn uses_fft(&self) -> bool {
        self.spectral.uses_fft()
    }

    /// Stable identity of the shared spectral basis resources (see
    /// `Spectral2D::basis_token`); used to assert that inflation updates
    /// never rebuild the transform bases.
    #[doc(hidden)]
    pub fn basis_token(&self) -> (usize, usize) {
        self.spectral.basis_token()
    }

    /// Applies per-cell area inflation factors (congestion-driven cell
    /// bloating): cell `c` gets charge `base_area · f[c]` and its effective
    /// footprint grows by `√f[c]` per side (still floored at the bin size),
    /// so the density force clears extra room around congested cells.
    ///
    /// Factors apply to the *uninflated* baseline — calling this repeatedly
    /// replaces, never compounds, the previous factors; `set_inflation(&[1.0;
    /// n])` restores the original model exactly. Fixed cells are unaffected
    /// (their charge is 0). The spectral bases are untouched — inflation
    /// changes charges, not grid geometry — so repeated updates cost O(cells),
    /// not a transform rebuild.
    ///
    /// # Panics
    ///
    /// Panics if `factors` is shorter than the cell count or any factor
    /// is < 1.
    pub fn set_inflation(&mut self, factors: &[f64]) {
        assert!(factors.len() >= self.charge.len(), "factor per cell required");
        let mut movable_area = 0.0;
        for (c, &f) in factors.iter().enumerate().take(self.charge.len()) {
            assert!(f >= 1.0, "inflation factor {f} < 1 for cell {c}");
            self.charge[c] = self.base_charge[c] * f;
            movable_area += self.charge[c];
            if self.base_charge[c] > 0.0 {
                let s = f.sqrt();
                self.w_eff[c] = (self.w_true[c] * s).max(self.bin_w);
                self.h_eff[c] = (self.h_true[c] * s).max(self.bin_h);
            }
        }
        self.movable_area = movable_area;
        // Footprints changed: any existing scratch arena must re-size before
        // its next use.
        self.sizing_epoch += 1;
    }

    /// Sizes `scratch`'s stamp arena for this model's worst-case per-chunk
    /// block coverage, computed from the effective footprints. Called lazily
    /// by [`DensityModel::evaluate_into`]; calling it eagerly at flow start
    /// moves the one-time sizing allocation out of the iteration loop so the
    /// steady state is allocation-free from the very first evaluation.
    pub fn presize_scratch(&self, scratch: &mut DensityScratch) {
        let n_cells = self.charge.len();
        if scratch.sized_for == Some((n_cells, self.sizing_epoch)) {
            return;
        }
        let chunks = chunk_count(n_cells, CELL_CHUNK).max(1);
        let blocks = self.m.div_ceil(BLOCK_COLS);
        scratch.counts.clear();
        scratch.counts.resize(chunks * blocks, 0);
        scratch.offsets.clear();
        scratch.offsets.resize(chunks * blocks, 0);
        let mut seg = 0usize;
        for ci in 0..chunks {
            let lo = ci * CELL_CHUNK;
            let hi = (lo + CELL_CHUNK).min(n_cells);
            let mut need = 0usize;
            for c in lo..hi {
                if self.charge[c] == 0.0 {
                    continue;
                }
                // A stamp of width w covers at most ceil(w/bin_w)+1 columns,
                // hence at most that many / BLOCK_COLS (+1 for straddling)
                // blocks — a position-independent bound.
                let cols = (self.w_eff[c] / self.bin_w).ceil() as usize + 1;
                need += (cols.div_ceil(BLOCK_COLS) + 1).min(blocks);
            }
            seg = seg.max(need);
        }
        scratch.seg_len = seg.max(1);
        scratch.recs.resize(
            chunks * scratch.seg_len,
            StampRec { xl: 0.0, yl: 0.0, xh: 0.0, yh: 0.0, dens: 0.0 },
        );
        scratch.sized_for = Some((n_cells, self.sizing_epoch));
    }

    /// Evaluates density energy, overflow and per-cell gradients at the given
    /// lower-left cell positions. Allocating convenience wrapper over
    /// [`DensityModel::evaluate_into`] (bit-for-bit identical results).
    ///
    /// # Panics
    ///
    /// Panics if the position slices are shorter than the cell count.
    pub fn evaluate(&self, xs: &[f64], ys: &[f64]) -> DensityResult {
        let mut out = DensityResult::default();
        self.evaluate_into(xs, ys, &mut DensityScratch::new(), &mut out);
        out
    }

    /// Evaluates density energy, overflow and per-cell gradients into a
    /// reused result, with every intermediate in caller-owned `scratch`:
    /// zero heap allocation once the buffers have grown to size.
    ///
    /// # Panics
    ///
    /// Panics if the position slices are shorter than the cell count.
    pub fn evaluate_into(
        &self,
        xs: &[f64],
        ys: &[f64],
        scratch: &mut DensityScratch,
        out: &mut DensityResult,
    ) {
        let n_cells = self.charge.len();
        assert!(xs.len() >= n_cells && ys.len() >= n_cells);
        let bins = self.m * self.n;
        let bin_area = self.bin_w * self.bin_h;
        let chunks = chunk_count(n_cells, CELL_CHUNK).max(1);
        let blocks = self.m.div_ceil(BLOCK_COLS);

        // --- Stamp pass 1: sort each cell's rectangle into its chunk's flat
        // arena segment, one run per covered column block. Count, prefix,
        // fill — no growable buckets, so the steady state never allocates no
        // matter how cells migrate across blocks.
        self.presize_scratch(scratch);
        let seg_len = scratch.seg_len;
        scratch
            .counts
            .par_chunks_mut(blocks)
            .zip(scratch.offsets.par_chunks_mut(blocks))
            .zip(scratch.recs.par_chunks_mut(seg_len))
            .enumerate()
            .for_each(|(ci, ((counts, offsets), recs))| {
                counts.fill(0);
                let lo = ci * CELL_CHUNK;
                let hi = (lo + CELL_CHUNK).min(n_cells);
                // Same expressions as the record corners below, so the span
                // is bit-for-bit consistent between the count and fill
                // sweeps and with `stamp_block`'s own clipping.
                let block_span = |c: usize, x: f64| {
                    let w = self.w_eff[c];
                    let cx = x + 0.5 * self.w_true[c];
                    let (i0, i1) = self.col_range(cx - 0.5 * w, cx + 0.5 * w);
                    (i0 / BLOCK_COLS, i1.div_ceil(BLOCK_COLS).min(blocks))
                };
                for (c, &x) in xs.iter().enumerate().take(hi).skip(lo) {
                    if self.charge[c] == 0.0 {
                        continue;
                    }
                    let (b0, b1) = block_span(c, x);
                    for k in &mut counts[b0..b1] {
                        *k += 1;
                    }
                }
                let mut run = 0u32;
                for (o, &k) in offsets.iter_mut().zip(counts.iter()) {
                    *o = run;
                    run += k;
                }
                counts.fill(0);
                for c in lo..hi {
                    let q = self.charge[c];
                    if q == 0.0 {
                        continue;
                    }
                    let (w, h) = (self.w_eff[c], self.h_eff[c]);
                    // Center the inflated footprint on the true cell center.
                    let cx = xs[c] + 0.5 * self.w_true[c];
                    let cy = ys[c] + 0.5 * self.h_true[c];
                    let rec = StampRec {
                        xl: cx - 0.5 * w,
                        yl: cy - 0.5 * h,
                        xh: cx + 0.5 * w,
                        yh: cy + 0.5 * h,
                        dens: q / (w * h),
                    };
                    let (b0, b1) = block_span(c, xs[c]);
                    for b in b0..b1 {
                        recs[(offsets[b] + counts[b]) as usize] = rec;
                        counts[b] += 1;
                    }
                }
            });

        // --- Stamp pass 2: accumulate each block's records into its own
        // disjoint ρ columns, walking the chunks' runs in ascending chunk
        // order so the per-bin addition order is independent of the pool
        // width (and identical to the legacy bucketed layout).
        ensure_len(&mut scratch.rho, bins);
        let recs = &scratch.recs;
        let counts = &scratch.counts;
        let offsets = &scratch.offsets;
        scratch.rho.par_chunks_mut(BLOCK_COLS * self.n).enumerate().for_each(|(b, rho)| {
            rho.fill(0.0);
            for ci in 0..chunks {
                let lo = ci * seg_len + offsets[ci * blocks + b] as usize;
                let hi = lo + counts[ci * blocks + b] as usize;
                for rec in &recs[lo..hi] {
                    self.stamp_block(rho, b, rec);
                }
            }
        });

        // Overflow and peak density (per bin area); serial over the bin
        // grid in index order (deterministic).
        let mut overflow = 0.0;
        let mut max_density: f64 = 0.0;
        let mut total = 0.0;
        for &r in &scratch.rho {
            overflow += (r - self.target_density * bin_area).max(0.0);
            max_density = max_density.max(r / bin_area);
            total += r;
        }
        overflow /= self.movable_area.max(1e-12);
        let mean = total / bins as f64;

        // Poisson solve on mean-removed density (per unit area); elementwise,
        // so the thread-count-derived chunking cannot change the result.
        ensure_len(&mut scratch.rho_hat, bins);
        let rho = &scratch.rho;
        let bin_chunk = bins.div_ceil(rayon::current_num_threads()).max(1);
        scratch.rho_hat.par_chunks_mut(bin_chunk).enumerate().for_each(|(bi, hat)| {
            let base = bi * bin_chunk;
            for (k, h) in hat.iter_mut().enumerate() {
                *h = (rho[base + k] - mean) / bin_area;
            }
        });
        self.spectral.solve_into(&scratch.rho_hat, &mut scratch.poisson, &mut scratch.sol);

        // --- Energy and per-cell field (bilinear at cell centers) --------
        // Fixed CELL_CHUNK chunks with a chunk-ordered fold of the energy
        // partials keep the energy width-invariant too.
        ensure_len(&mut out.grad_x, n_cells);
        ensure_len(&mut out.grad_y, n_cells);
        ensure_len(&mut scratch.energy, chunks);
        let sol = &scratch.sol;
        out.grad_x
            .par_chunks_mut(CELL_CHUNK)
            .zip(out.grad_y.par_chunks_mut(CELL_CHUNK))
            .zip(scratch.energy.par_chunks_mut(1))
            .enumerate()
            .for_each(|(ci, ((gx, gy), e))| {
                let lo = ci * CELL_CHUNK;
                let mut acc_e = 0.0;
                for (k, (gxc, gyc)) in gx.iter_mut().zip(gy.iter_mut()).enumerate() {
                    let c = lo + k;
                    let q = self.charge[c];
                    if q == 0.0 {
                        *gxc = 0.0;
                        *gyc = 0.0;
                        continue;
                    }
                    let cx = xs[c] + 0.5 * self.w_true[c];
                    let cy = ys[c] + 0.5 * self.h_true[c];
                    let (psi, ex, ey) = self.sample(&sol.psi, &sol.dpsi_dx, &sol.dpsi_dy, cx, cy);
                    acc_e += 0.5 * q * psi;
                    *gxc = q * ex;
                    *gyc = q * ey;
                }
                e[0] = acc_e;
            });

        out.energy = scratch.energy.iter().sum();
        out.overflow = overflow;
        out.max_density = max_density;
    }

    /// Bin-column range `[i0, i1)` covered by an x interval.
    fn col_range(&self, xl: f64, xh: f64) -> (usize, usize) {
        let i0 = (((xl - self.region.xl) / self.bin_w).floor().max(0.0)) as usize;
        let i1 = ((((xh - self.region.xl) / self.bin_w).ceil()) as usize).min(self.m);
        (i0.min(self.m), i1)
    }

    /// Adds `rec.dens · overlap(rec, bin)` to every bin of column block `b`
    /// the record covers; `rho` is the block's local `BLOCK_COLS · n` slice.
    fn stamp_block(&self, rho: &mut [f64], b: usize, rec: &StampRec) {
        let col0 = b * BLOCK_COLS;
        let (i0, i1) = self.col_range(rec.xl, rec.xh);
        let i0 = i0.max(col0);
        let i1 = i1.min((col0 + BLOCK_COLS).min(self.m));
        let j0 = (((rec.yl - self.region.yl) / self.bin_h).floor().max(0.0)) as usize;
        let j1 = ((((rec.yh - self.region.yl) / self.bin_h).ceil()) as usize).min(self.n);
        for i in i0..i1 {
            let bx0 = self.region.xl + i as f64 * self.bin_w;
            let ox = (rec.xh.min(bx0 + self.bin_w) - rec.xl.max(bx0)).max(0.0);
            if ox == 0.0 {
                continue;
            }
            for j in j0..j1 {
                let by0 = self.region.yl + j as f64 * self.bin_h;
                let oy = (rec.yh.min(by0 + self.bin_h) - rec.yl.max(by0)).max(0.0);
                if oy > 0.0 {
                    rho[(i - col0) * self.n + j] += rec.dens * ox * oy;
                }
            }
        }
    }

    /// Bilinear sample of the three grids at a physical point.
    fn sample(&self, psi: &[f64], ex: &[f64], ey: &[f64], x: f64, y: f64) -> (f64, f64, f64) {
        // Grid values live at bin centers.
        let fx = ((x - self.region.xl) / self.bin_w - 0.5)
            .clamp(0.0, (self.m - 1) as f64 - 1e-9);
        let fy = ((y - self.region.yl) / self.bin_h - 0.5)
            .clamp(0.0, (self.n - 1) as f64 - 1e-9);
        let i = fx.floor() as usize;
        let j = fy.floor() as usize;
        let tx = fx - i as f64;
        let ty = fy - j as f64;
        let lerp = |g: &[f64]| {
            let g00 = g[i * self.n + j];
            let g01 = g[i * self.n + j + 1];
            let g10 = g[(i + 1) * self.n + j];
            let g11 = g[(i + 1) * self.n + j + 1];
            (g00 * (1.0 - tx) + g10 * tx) * (1.0 - ty) + (g01 * (1.0 - tx) + g11 * tx) * ty
        };
        (lerp(psi), lerp(ex), lerp(ey))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtp_netlist::generate::{generate, GeneratorConfig};

    fn setup() -> (dtp_netlist::Design, DensityModel) {
        let d = generate(&GeneratorConfig::named("dm", 300)).unwrap();
        let m = DensityModel::new(&d, 32, 32, 1.0);
        (d, m)
    }

    #[test]
    fn overflow_high_when_clustered_low_when_spread() {
        let (d, model) = setup();
        let (xs, ys) = d.netlist.positions();
        let spread = model.evaluate(&xs, &ys);
        // Pile every movable cell at the center.
        let c = d.region.center();
        let mut cx = xs.clone();
        let mut cy = ys.clone();
        for cell in d.netlist.movable_cells() {
            cx[cell.index()] = c.x;
            cy[cell.index()] = c.y;
        }
        let packed = model.evaluate(&cx, &cy);
        assert!(
            packed.overflow > spread.overflow,
            "packed {} vs spread {}",
            packed.overflow,
            spread.overflow
        );
        assert!(packed.max_density > spread.max_density);
        assert!(packed.energy > spread.energy);
    }

    #[test]
    fn gradient_pushes_away_from_cluster() {
        let (d, model) = setup();
        let (xs, ys) = d.netlist.positions();
        let c = d.region.center();
        let mut cx = xs.clone();
        let mut cy = ys.clone();
        let movable: Vec<_> = d.netlist.movable_cells().collect();
        // Cluster on the left half; one probe cell to the right of it.
        for &cell in &movable {
            cx[cell.index()] = d.region.xl + 0.25 * d.region.width();
            cy[cell.index()] = c.y;
        }
        let probe = movable[0];
        cx[probe.index()] = d.region.xl + 0.30 * d.region.width();
        let res = model.evaluate(&cx, &cy);
        // Descending the gradient must move the probe right (away from the
        // cluster): ∂E/∂x < 0 would move it left, so expect positive-to-right
        // push, i.e. grad_x > 0 means energy decreases by moving −x... the
        // probe sits on the right slope of the density hill, so ∂ψ/∂x < 0 and
        // the gradient is negative: a −gradient step moves it to +x.
        assert!(
            res.grad_x[probe.index()] < 0.0,
            "probe gradient should point down-density: {}",
            res.grad_x[probe.index()]
        );
    }

    #[test]
    fn gradient_matches_finite_difference() {
        // The analytic gradient samples the field at the cell center while a
        // finite difference re-integrates the field over the whole stamped
        // footprint, so per-cell agreement is approximate (ePlace makes the
        // same approximation). Check per-cell agreement loosely and global
        // directional agreement (cosine similarity) tightly.
        let (d, model) = setup();
        let (mut xs, mut ys) = d.netlist.positions();
        let res = model.evaluate(&xs, &ys);
        let h = 1e-4;
        let movable: Vec<_> = d.netlist.movable_cells().collect();
        let mut dot = 0.0;
        let mut na = 0.0;
        let mut nn = 0.0;
        for &cell in movable.iter().step_by(4) {
            let i = cell.index();
            for axis in 0..2 {
                let ana = if axis == 0 { res.grad_x[i] } else { res.grad_y[i] };
                let (v0, fp, fm);
                if axis == 0 {
                    v0 = xs[i];
                    xs[i] = v0 + h;
                    fp = model.evaluate(&xs, &ys).energy;
                    xs[i] = v0 - h;
                    fm = model.evaluate(&xs, &ys).energy;
                    xs[i] = v0;
                } else {
                    v0 = ys[i];
                    ys[i] = v0 + h;
                    fp = model.evaluate(&xs, &ys).energy;
                    ys[i] = v0 - h;
                    fm = model.evaluate(&xs, &ys).energy;
                    ys[i] = v0;
                }
                let num = (fp - fm) / (2.0 * h);
                dot += num * ana;
                na += ana * ana;
                nn += num * num;
            }
        }
        // Direction must agree strongly and the magnitudes must be on the
        // same scale; per-cell deviations come from the footprint-average vs
        // center-sample approximation that ePlace also makes.
        let cosine = dot / (na.sqrt() * nn.sqrt()).max(1e-12);
        assert!(cosine > 0.9, "gradient direction poor: cosine = {cosine}");
        let ratio = na.sqrt() / nn.sqrt().max(1e-12);
        assert!((0.4..2.5).contains(&ratio), "gradient magnitude off: ratio = {ratio}");
    }

    #[test]
    fn evaluate_into_is_bitwise_identical_to_evaluate() {
        let (d, model) = setup();
        assert!(model.uses_fft());
        let (xs, ys) = d.netlist.positions();
        let fresh = model.evaluate(&xs, &ys);
        let mut scratch = DensityScratch::new();
        let mut out = DensityResult::default();
        // Run through the same scratch twice so reuse is exercised.
        model.evaluate_into(&xs, &ys, &mut scratch, &mut out);
        model.evaluate_into(&xs, &ys, &mut scratch, &mut out);
        assert_eq!(fresh.energy, out.energy);
        assert_eq!(fresh.overflow, out.overflow);
        assert_eq!(fresh.max_density, out.max_density);
        assert_eq!(fresh.grad_x, out.grad_x);
        assert_eq!(fresh.grad_y, out.grad_y);
    }

    #[test]
    fn inflation_replaces_and_restores_exactly() {
        let (d, mut model) = setup();
        let (xs, ys) = d.netlist.positions();
        let base = model.evaluate(&xs, &ys);

        let n = d.netlist.num_cells();
        let mut factors = vec![1.0; n];
        for c in d.netlist.movable_cells().step_by(2) {
            factors[c.index()] = 2.0;
        }
        model.set_inflation(&factors);
        let inflated = model.evaluate(&xs, &ys);
        assert!(
            inflated.max_density > base.max_density,
            "inflated charge must raise peak density: {} vs {}",
            inflated.max_density,
            base.max_density
        );

        // Applying again must replace, not compound; all-ones restores the
        // original model bit-for-bit.
        model.set_inflation(&factors);
        let again = model.evaluate(&xs, &ys);
        assert_eq!(again.energy, inflated.energy);
        assert_eq!(again.overflow, inflated.overflow);

        model.set_inflation(&vec![1.0; n]);
        let restored = model.evaluate(&xs, &ys);
        assert_eq!(restored.energy, base.energy);
        assert_eq!(restored.overflow, base.overflow);
        assert_eq!(restored.grad_x, base.grad_x);
        assert_eq!(restored.grad_y, base.grad_y);
    }

    #[test]
    fn inflation_never_rebuilds_spectral_bases() {
        let (d, mut model) = setup();
        let token = model.basis_token();
        let n = d.netlist.num_cells();
        for round in 0..5 {
            let factors = vec![1.0 + 0.1 * round as f64; n];
            model.set_inflation(&factors);
            let (xs, ys) = d.netlist.positions();
            let _ = model.evaluate(&xs, &ys);
            assert_eq!(model.basis_token(), token, "inflation must not rebuild bases");
        }
        // A second model on the same grid shares the cached bases outright.
        let other = DensityModel::new(&d, 32, 32, 1.0);
        assert_eq!(other.basis_token(), token);
    }

    #[test]
    fn fixed_cells_carry_no_charge() {
        let (d, model) = setup();
        let (xs, ys) = d.netlist.positions();
        let res = model.evaluate(&xs, &ys);
        for c in d.netlist.cell_ids() {
            if d.netlist.cell(c).is_fixed() {
                assert_eq!(res.grad_x[c.index()], 0.0);
                assert_eq!(res.grad_y[c.index()], 0.0);
            }
        }
    }
}
