//! In-tree radix-2 real FFT and the midpoint-cosine transforms derived from
//! it — the O(N log N) engine behind [`crate::Spectral2D`]'s power-of-two
//! fast path.
//!
//! The spectral solver needs three 1-D primitives per axis, all on the
//! DCT-II "cosine at bin midpoints" grid `φ_u(i) = cos(πu(i+½)/N)`:
//!
//! * **Analysis** (`dct2`): `S_u = Σ_i x_i φ_u(i)` — the unnormalized
//!   DCT-II. Computed with Makhoul's even-permutation trick: fold
//!   `v_j = x_{2j}` / `v_{N-1-j} = x_{2j+1}`, take a length-`N/2` complex
//!   FFT of the packed real sequence, untangle to the length-`N` real
//!   spectrum `V`, then `S_u = Re(e^{-iπu/2N} V_u)`.
//! * **Cosine synthesis** (`idct`): `f_i = Σ_u T_u φ_u(i)` for arbitrary
//!   coefficients `T` — the inverse path run backwards: rebuild
//!   `V_u = e^{iπu/2N}(S_u − i·S_{N-u})` from `S_0 = N·T_0`,
//!   `S_u = (N/2)·T_u`, inverse real FFT, un-permute.
//! * **Sine synthesis** (`idxst`): `f_i = Σ_u T_u sin(πu(i+½)/N)`, needed
//!   for the closed-form field derivatives `∂ψ/∂x`. Derived from cosine
//!   synthesis via the fold `sin(πu(i+½)/N) = (−1)^i cos(π(N−u)(i+½)/N)`:
//!   reverse the coefficients, cosine-synthesize, flip the sign of every
//!   odd sample.
//!
//! All transforms are strictly in-place over a caller-provided scratch strip
//! of `N + 2` floats ([`DctPlan::scratch_len`]) — no allocation per call,
//! which is what lets `Spectral2D::solve_into` run allocation-free inside
//! the placement loop. Plans (bit-reversal table + twiddles + phase tables)
//! are cached per length in a global weak registry, so every solver instance
//! on a 256-bin axis shares one plan.

use std::sync::{Arc, Mutex, OnceLock, Weak};

/// True if `k` is a power of two (and at least 1).
pub fn is_pow2(k: usize) -> bool {
    k > 0 && k & (k - 1) == 0
}

/// Iterative radix-2 complex FFT plan for a fixed length `len` (a power of
/// two), operating on interleaved `[re, im]` buffers of `2 * len` floats.
#[derive(Debug)]
struct FftPlan {
    len: usize,
    /// Bit-reversal permutation, `rev[i]` = reversed index of `i`.
    rev: Vec<u32>,
    /// Forward twiddles `e^{-2πi j/stage_len}` for every stage, interleaved
    /// `[re, im]`, stages concatenated smallest first (`Σ stage_len/2 =
    /// len − 1` complex entries).
    tw: Vec<f64>,
}

impl FftPlan {
    fn new(len: usize) -> FftPlan {
        assert!(is_pow2(len));
        let bits = len.trailing_zeros();
        let rev = (0..len as u32)
            .map(|i| if bits == 0 { 0 } else { i.reverse_bits() >> (32 - bits) })
            .collect();
        let mut tw = Vec::with_capacity(2 * len.saturating_sub(1));
        let mut stage = 2;
        while stage <= len {
            let half = stage / 2;
            for j in 0..half {
                let ang = -2.0 * std::f64::consts::PI * j as f64 / stage as f64;
                tw.push(ang.cos());
                tw.push(ang.sin());
            }
            stage *= 2;
        }
        FftPlan { len, rev, tw }
    }

    /// In-place forward FFT (sign convention `e^{-2πi jk/len}`).
    fn forward(&self, buf: &mut [f64]) {
        let len = self.len;
        debug_assert_eq!(buf.len(), 2 * len);
        for i in 0..len {
            let j = self.rev[i] as usize;
            if i < j {
                buf.swap(2 * i, 2 * j);
                buf.swap(2 * i + 1, 2 * j + 1);
            }
        }
        let mut toff = 0;
        let mut stage = 2;
        while stage <= len {
            let half = stage / 2;
            let mut start = 0;
            while start < len {
                for j in 0..half {
                    let (wr, wi) = (self.tw[toff + 2 * j], self.tw[toff + 2 * j + 1]);
                    let (a, b) = (2 * (start + j), 2 * (start + half + j));
                    let (xr, xi) = (buf[a], buf[a + 1]);
                    let (yr, yi) = (buf[b], buf[b + 1]);
                    let (tr, ti) = (wr * yr - wi * yi, wr * yi + wi * yr);
                    buf[a] = xr + tr;
                    buf[a + 1] = xi + ti;
                    buf[b] = xr - tr;
                    buf[b + 1] = xi - ti;
                }
                start += stage;
            }
            toff += 2 * half;
            stage *= 2;
        }
    }

    /// In-place inverse FFT (unscaled by the conjugation trick, then `1/len`).
    fn inverse(&self, buf: &mut [f64]) {
        for im in buf.iter_mut().skip(1).step_by(2) {
            *im = -*im;
        }
        self.forward(buf);
        let scale = 1.0 / self.len as f64;
        for k in 0..self.len {
            buf[2 * k] *= scale;
            buf[2 * k + 1] *= -scale;
        }
    }
}

/// Fast-transform plan for one axis length `n` (a power of two): the
/// half-length complex FFT plus the DCT phase tables.
#[derive(Debug)]
pub struct DctPlan {
    n: usize,
    /// Complex FFT of length `n/2` (`None` when `n == 1`).
    half: Option<FftPlan>,
    /// `cos/sin(πk/(2n))` for `k = 0..=n/2` (DCT phase).
    ph: Vec<f64>,
    /// `cos/sin(2πk/n)` for `k = 0..=n/2` (real-FFT untangle phase).
    unt: Vec<f64>,
}

impl DctPlan {
    fn build(n: usize) -> DctPlan {
        assert!(is_pow2(n), "DctPlan requires a power-of-two length");
        let half = (n >= 2).then(|| FftPlan::new(n / 2));
        let mut ph = Vec::with_capacity(n + 2);
        let mut unt = Vec::with_capacity(n + 2);
        for k in 0..=n / 2 {
            let a = std::f64::consts::PI * k as f64 / (2.0 * n as f64);
            ph.push(a.cos());
            ph.push(a.sin());
            let b = 2.0 * std::f64::consts::PI * k as f64 / n as f64;
            unt.push(b.cos());
            unt.push(b.sin());
        }
        DctPlan { n, half, ph, unt }
    }

    /// Returns the (globally cached) plan for length `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two.
    pub fn get(n: usize) -> Arc<DctPlan> {
        type PlanCache = Mutex<Vec<(usize, Weak<DctPlan>)>>;
        static CACHE: OnceLock<PlanCache> = OnceLock::new();
        let cache = CACHE.get_or_init(|| Mutex::new(Vec::new()));
        let mut reg = cache.lock().unwrap();
        reg.retain(|(_, w)| w.strong_count() > 0);
        if let Some((_, w)) = reg.iter().find(|(k, _)| *k == n) {
            if let Some(plan) = w.upgrade() {
                return plan;
            }
        }
        let plan = Arc::new(DctPlan::build(n));
        reg.push((n, Arc::downgrade(&plan)));
        plan
    }

    /// Transform length (always ≥ 1; a plan is never empty).
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Required scratch strip length for any transform of this plan.
    pub fn scratch_len(&self) -> usize {
        self.n + 2
    }

    /// Real FFT of the packed even-permutation already sitting in
    /// `work[0..n]`; leaves the half-spectrum `X_0..=X_{n/2}` interleaved in
    /// `work[0..n+2]`.
    fn rfft_in_place(&self, work: &mut [f64]) {
        let n = self.n;
        let l = n / 2;
        self.half.as_ref().expect("n >= 2").forward(&mut work[..n]);
        // Untangle pairs (k, L−k) in place; X_{n/2} lands in the 2 extra
        // floats past the packed buffer.
        for k in 0..=l / 2 {
            let k2 = l - k;
            let (zr1, zi1) = (work[2 * (k % l)], work[2 * (k % l) + 1]);
            let (zr2, zi2) = (work[2 * (k2 % l)], work[2 * (k2 % l) + 1]);
            // Even part ½(Z_k + Z̄_{L−k}), odd part ½(Z_k − Z̄_{L−k}).
            let (er, ei) = (0.5 * (zr1 + zr2), 0.5 * (zi1 - zi2));
            let (or_, oi) = (0.5 * (zr1 - zr2), 0.5 * (zi1 + zi2));
            // X_k = E − i·e^{−2πik/n}·O ; for the partner index L−k the
            // twiddle is −conj of this one.
            let (cr, ci) = (self.unt[2 * k], -self.unt[2 * k + 1]);
            let xr = er + ci * or_ + cr * oi;
            let xi = ei - cr * or_ + ci * oi;
            // Partner: E' = conj(E), O' = −conj(O), twiddle −(cr, −ci).
            let yr = er - ci * or_ - cr * oi;
            let yi = -ei - cr * or_ + ci * oi;
            work[2 * k] = xr;
            work[2 * k + 1] = xi;
            work[2 * k2] = yr;
            work[2 * k2 + 1] = yi;
        }
    }

    /// Inverse of [`DctPlan::rfft_in_place`]: consumes the half-spectrum in
    /// `work[0..n+2]`, leaves the packed real sequence in `work[0..n]`.
    fn irfft_in_place(&self, work: &mut [f64]) {
        let n = self.n;
        let l = n / 2;
        for k in 0..=l / 2 {
            let k2 = l - k;
            let (xr1, xi1) = (work[2 * k], work[2 * k + 1]);
            let (xr2, xi2) = (work[2 * k2], work[2 * k2 + 1]);
            let (er, ei) = (0.5 * (xr1 + xr2), 0.5 * (xi1 - xi2));
            let (or_, oi) = (0.5 * (xr1 - xr2), 0.5 * (xi1 + xi2));
            // Z_k = E + i·e^{+2πik/n}·O ; partner twiddle −conj again.
            let (cr, ci) = (self.unt[2 * k], self.unt[2 * k + 1]);
            let zr = er - ci * or_ - cr * oi;
            let zi = ei + cr * or_ - ci * oi;
            let wr = er + ci * or_ + cr * oi;
            let wi = -ei + cr * or_ - ci * oi;
            work[2 * k] = zr;
            work[2 * k + 1] = zi;
            if k2 < l {
                work[2 * k2] = wr;
                work[2 * k2 + 1] = wi;
            }
        }
        self.half.as_ref().expect("n >= 2").inverse(&mut work[..n]);
    }

    /// Unnormalized DCT-II analysis: `out[u] = Σ_i x[i]·cos(πu(i+½)/n)`.
    ///
    /// `work` must be [`DctPlan::scratch_len`] floats; `x` and `out` must
    /// not alias.
    pub fn dct2(&self, x: &[f64], out: &mut [f64], work: &mut [f64]) {
        let n = self.n;
        debug_assert_eq!(x.len(), n);
        debug_assert_eq!(out.len(), n);
        debug_assert!(work.len() >= self.scratch_len());
        if n == 1 {
            out[0] = x[0];
            return;
        }
        // Even permutation v_j = x_{2j} (front) / x_{2n−2j−1} (back),
        // packed directly as the half-length complex input: Z_k re/im are
        // v_{2k} / v_{2k+1}, which sit at work[2k] / work[2k+1] — i.e. the
        // permuted sequence in natural order.
        for (j, w) in work[..n].iter_mut().enumerate() {
            *w = if 2 * j < n { x[2 * j] } else { x[2 * n - 2 * j - 1] };
        }
        self.rfft_in_place(work);
        // S_u = Re(e^{−iπu/2n} V_u); the conjugate-symmetric upper half
        // comes from the same table entries with cos/sin swapped.
        out[0] = work[0];
        for k in 1..n / 2 {
            let (c, s) = (self.ph[2 * k], self.ph[2 * k + 1]);
            let (re, im) = (work[2 * k], work[2 * k + 1]);
            out[k] = c * re + s * im;
            out[n - k] = s * re - c * im;
        }
        let (c, s) = (self.ph[n], self.ph[n + 1]);
        out[n / 2] = c * work[n] + s * work[n + 1];
    }

    /// Cosine synthesis: `out[i] = Σ_u t[u]·cos(πu(i+½)/n)` for arbitrary
    /// coefficients `t`.
    pub fn idct(&self, t: &[f64], out: &mut [f64], work: &mut [f64]) {
        self.synth(t, out, work, false);
    }

    /// Sine synthesis: `out[i] = Σ_u t[u]·sin(πu(i+½)/n)` (the `u = 0` term
    /// vanishes identically).
    pub fn idxst(&self, t: &[f64], out: &mut [f64], work: &mut [f64]) {
        self.synth(t, out, work, true);
    }

    fn synth(&self, t: &[f64], out: &mut [f64], work: &mut [f64], sine: bool) {
        let n = self.n;
        debug_assert_eq!(t.len(), n);
        debug_assert_eq!(out.len(), n);
        debug_assert!(work.len() >= self.scratch_len());
        if n == 1 {
            out[0] = if sine { 0.0 } else { t[0] };
            return;
        }
        let l = n / 2;
        // Scaled spectrum S: S_0 = n·T_0, S_u = (n/2)·T_u, S_n = 0. The
        // sine fold reads the reversed coefficients T_{n−u} with T'_0 = 0.
        let s_at = |u: usize| -> f64 {
            let tu = if sine {
                if u == 0 || u == n {
                    return 0.0;
                }
                t[n - u]
            } else {
                if u == n {
                    return 0.0;
                }
                t[u]
            };
            if u == 0 {
                n as f64 * tu
            } else {
                0.5 * n as f64 * tu
            }
        };
        // V_u = e^{iπu/2n}(S_u − i·S_{n−u}) for u = 0..=n/2.
        for k in 0..=l {
            let (c, s) = (self.ph[2 * k], self.ph[2 * k + 1]);
            let (a, b) = (s_at(k), s_at(n - k));
            work[2 * k] = a * c + b * s;
            work[2 * k + 1] = a * s - b * c;
        }
        self.irfft_in_place(work);
        // Un-permute; the sine fold flips the sign of odd output samples.
        let odd_sign = if sine { -1.0 } else { 1.0 };
        for i in 0..l {
            out[2 * i] = work[i];
            out[2 * i + 1] = odd_sign * work[n - 1 - i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_dct2(x: &[f64]) -> Vec<f64> {
        let n = x.len();
        (0..n)
            .map(|u| {
                x.iter()
                    .enumerate()
                    .map(|(i, &v)| {
                        v * (std::f64::consts::PI * u as f64 * (i as f64 + 0.5) / n as f64).cos()
                    })
                    .sum()
            })
            .collect()
    }

    fn naive_synth(t: &[f64], sine: bool) -> Vec<f64> {
        let n = t.len();
        (0..n)
            .map(|i| {
                t.iter()
                    .enumerate()
                    .map(|(u, &c)| {
                        let a = std::f64::consts::PI * u as f64 * (i as f64 + 0.5) / n as f64;
                        c * if sine { a.sin() } else { a.cos() }
                    })
                    .sum()
            })
            .collect()
    }

    fn pseudo(seed: u64, len: usize) -> Vec<f64> {
        let mut s = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        (0..len)
            .map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((s >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
            })
            .collect()
    }

    #[test]
    fn dct2_matches_naive_all_pow2_lengths() {
        for n in [1usize, 2, 4, 8, 16, 32, 64, 128] {
            let plan = DctPlan::get(n);
            let x = pseudo(n as u64, n);
            let mut out = vec![0.0; n];
            let mut work = vec![0.0; plan.scratch_len()];
            plan.dct2(&x, &mut out, &mut work);
            let want = naive_dct2(&x);
            for (a, b) in out.iter().zip(&want) {
                assert!((a - b).abs() < 1e-10 * n as f64, "n={n}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn cosine_and_sine_synthesis_match_naive() {
        for n in [1usize, 2, 4, 8, 32, 64] {
            let plan = DctPlan::get(n);
            let t = pseudo(97 + n as u64, n);
            let mut out = vec![0.0; n];
            let mut work = vec![0.0; plan.scratch_len()];
            for sine in [false, true] {
                plan.synth(&t, &mut out, &mut work, sine);
                let want = naive_synth(&t, sine);
                for (a, b) in out.iter().zip(&want) {
                    assert!((a - b).abs() < 1e-10 * n as f64, "n={n} sine={sine}: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn analysis_synthesis_roundtrip() {
        let n = 256;
        let plan = DctPlan::get(n);
        let x = pseudo(7, n);
        let mut s = vec![0.0; n];
        let mut back = vec![0.0; n];
        let mut work = vec![0.0; plan.scratch_len()];
        plan.dct2(&x, &mut s, &mut work);
        // Normalize to synthesis coefficients: T_0 = S_0/n, T_u = 2S_u/n.
        for (u, v) in s.iter_mut().enumerate() {
            *v *= if u == 0 { 1.0 } else { 2.0 } / n as f64;
        }
        plan.idct(&s, &mut back, &mut work);
        for (a, b) in x.iter().zip(&back) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }

    #[test]
    fn plans_are_cached_per_length() {
        let a = DctPlan::get(64);
        let b = DctPlan::get(64);
        assert!(Arc::ptr_eq(&a, &b));
        let c = DctPlan::get(128);
        assert!(!Arc::ptr_eq(&a, &c));
    }
}
