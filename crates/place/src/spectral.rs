//! Spectral Poisson solver on a bin grid (the ePlace electrostatics core).
//!
//! Solves `∇²ψ = −ρ̂` (ρ̂ = bin density minus its mean) with Neumann
//! boundaries by expanding ρ̂ in the DCT-II (cosine-at-midpoints) basis:
//! `ρ̂ = Σ a_uv cos(w_u x) cos(w_v y)` with `w_u = πu/W`, giving
//! `ψ_uv = a_uv / (w_u² + w_v²)` and closed-form derivatives.
//!
//! Two transform backends share the same spectral math:
//!
//! * **FFT** (`O(N log N)`, [`crate::fft`]): row/column sweeps of the
//!   radix-2 real-FFT DCT with two cache-friendly transposes per 2-D
//!   transform. Selected automatically when *both* grid dimensions are
//!   powers of two ≥ 2 — the only shapes the radix-2 kernels handle.
//! * **Dense** (`O(m³)` separable basis-matrix products): the reference
//!   implementation, kept as the fallback for odd sizes and as the parity
//!   oracle for the FFT path in tests.
//!
//! Per-axis resources are shared across solver instances: dense cosine/sine
//! tables depend only on the axis *bin count* (the physical extent enters
//! solely through the frequencies `w_u`, stored per instance), so they live
//! in a global weak cache keyed by length — rebuilding a `DensityModel`
//! after `set_inflation`, or building several models on the same grid, costs
//! no basis recomputation. FFT plans are cached the same way in
//! [`crate::fft::DctPlan::get`].
//!
//! [`Spectral2D::solve_into`] is the allocation-free entry point: all
//! intermediates live in a caller-owned [`PoissonScratch`] and the outputs
//! in a reused [`PoissonSolution`], mirroring the `AnalysisScratch` pattern
//! of the STA hot path.

use crate::fft::{is_pow2, DctPlan};
use rayon::prelude::*;
use std::sync::{Arc, Mutex, OnceLock, Weak};

/// Dense cosine/sine basis tables for one axis length `k`: `cos/sin(πu(i+½)/k)`
/// at `[i*k + u]`. Extent-independent, hence cacheable by `k` alone.
#[derive(Debug)]
struct AxisBases {
    cos: Vec<f64>,
    sin: Vec<f64>,
}

impl AxisBases {
    /// Returns the (globally cached) dense tables for axis length `k`.
    fn get(k: usize) -> Arc<AxisBases> {
        type BasisCache = Mutex<Vec<(usize, Weak<AxisBases>)>>;
        static CACHE: OnceLock<BasisCache> = OnceLock::new();
        let cache = CACHE.get_or_init(|| Mutex::new(Vec::new()));
        let mut reg = cache.lock().unwrap();
        reg.retain(|(_, w)| w.strong_count() > 0);
        if let Some((_, w)) = reg.iter().find(|(len, _)| *len == k) {
            if let Some(b) = w.upgrade() {
                return b;
            }
        }
        let mut cos = vec![0.0; k * k];
        let mut sin = vec![0.0; k * k];
        for i in 0..k {
            // Midpoint of bin i in normalized angle: πu(i+0.5)/k.
            for u in 0..k {
                let ang = std::f64::consts::PI * u as f64 * (i as f64 + 0.5) / k as f64;
                cos[i * k + u] = ang.cos();
                sin[i * k + u] = ang.sin();
            }
        }
        let bases = Arc::new(AxisBases { cos, sin });
        reg.push((k, Arc::downgrade(&bases)));
        bases
    }
}

/// Transform backend: shared-cache handles per axis.
#[derive(Clone, Debug)]
enum Backend {
    /// Dense basis-product reference path.
    Dense { x: Arc<AxisBases>, y: Arc<AxisBases> },
    /// Radix-2 real-FFT path (both axes power-of-two).
    Fft { x: Arc<DctPlan>, y: Arc<DctPlan> },
}

/// Spectral solver for one grid geometry (see module docs).
#[derive(Clone, Debug)]
pub struct Spectral2D {
    m: usize,
    n: usize,
    /// Physical frequencies πu/W.
    wu: Vec<f64>,
    wv: Vec<f64>,
    backend: Backend,
}

/// The solved potential and its spatial derivatives on the bin grid.
#[derive(Clone, Debug, Default)]
pub struct PoissonSolution {
    /// Potential ψ per bin, `[i*n + j]`.
    pub psi: Vec<f64>,
    /// ∂ψ/∂x per bin.
    pub dpsi_dx: Vec<f64>,
    /// ∂ψ/∂y per bin.
    pub dpsi_dy: Vec<f64>,
}

/// Reusable intermediates for [`Spectral2D::solve_into`] /
/// [`Spectral2D::dct2_into`]. Buffers grow on first use and are reused
/// verbatim afterwards — steady-state calls allocate nothing.
#[derive(Clone, Debug, Default)]
pub struct PoissonScratch {
    /// Forward coefficients `a_uv`.
    a: Vec<f64>,
    /// Synthesis coefficients (`a/k²` and its `w`-scaled variants).
    c: Vec<f64>,
    /// Transform ping buffer (`m × n` or transposed `n × m`).
    t1: Vec<f64>,
    /// Transform pong buffer.
    t2: Vec<f64>,
    /// Per-chunk complex FFT strips (`chunks × (len + 2)`).
    cplx: Vec<f64>,
}

impl PoissonScratch {
    /// Creates an empty scratch; buffers are sized lazily on first use.
    pub fn new() -> PoissonScratch {
        PoissonScratch::default()
    }
}

/// Resizes `v` without preserving contents (still no realloc when shrinking
/// or steady-state equal-size calls).
fn ensure_len(v: &mut Vec<f64>, len: usize) {
    v.clear();
    v.resize(len, 0.0);
}

impl Spectral2D {
    /// Builds the solver for an `m × n` grid over a `width × height` region,
    /// selecting the FFT backend automatically for power-of-two grids.
    ///
    /// # Panics
    ///
    /// Panics if `m`, `n` are zero or the region is degenerate.
    pub fn new(m: usize, n: usize, width: f64, height: f64) -> Spectral2D {
        Spectral2D::with_fft(m, n, width, height, true)
    }

    /// Like [`Spectral2D::new`] but with explicit backend policy: when
    /// `allow_fft` is false the dense reference path is used even on
    /// power-of-two grids.
    pub fn with_fft(m: usize, n: usize, width: f64, height: f64, allow_fft: bool) -> Spectral2D {
        assert!(m > 0 && n > 0 && width > 0.0 && height > 0.0);
        let freqs = |k: usize, extent: f64| -> Vec<f64> {
            (0..k).map(|u| std::f64::consts::PI * u as f64 / extent).collect()
        };
        let backend = if allow_fft && m >= 2 && n >= 2 && is_pow2(m) && is_pow2(n) {
            Backend::Fft { x: DctPlan::get(m), y: DctPlan::get(n) }
        } else {
            Backend::Dense { x: AxisBases::get(m), y: AxisBases::get(n) }
        };
        Spectral2D { m, n, wu: freqs(m, width), wv: freqs(n, height), backend }
    }

    /// Grid size `(m, n)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.m, self.n)
    }

    /// True when the radix-2 FFT backend is active.
    pub fn uses_fft(&self) -> bool {
        matches!(self.backend, Backend::Fft { .. })
    }

    /// Stable identity of the shared per-axis transform resources: equal
    /// tokens mean the bases/plans are physically shared (used to assert the
    /// geometry cache prevents basis rebuilds).
    #[doc(hidden)]
    pub fn basis_token(&self) -> (usize, usize) {
        match &self.backend {
            Backend::Dense { x, y } => (Arc::as_ptr(x) as usize, Arc::as_ptr(y) as usize),
            Backend::Fft { x, y } => (Arc::as_ptr(x) as usize, Arc::as_ptr(y) as usize),
        }
    }

    // ------------------------------------------------------------------
    // Parallel sweep helpers
    // ------------------------------------------------------------------

    /// Rows per pool chunk for a `rows`-row sweep.
    fn rows_per_chunk(rows: usize) -> usize {
        rows.div_ceil(rayon::current_num_threads()).max(1)
    }

    /// Out-of-place transpose `src (rows × cols)` → `dst (cols × rows)`,
    /// parallel over destination row chunks.
    fn transpose(src: &[f64], dst: &mut [f64], rows: usize, cols: usize) {
        let rpc = Self::rows_per_chunk(cols);
        dst[..rows * cols].par_chunks_mut(rpc * rows).enumerate().for_each(|(ci, chunk)| {
            let base = ci * rpc;
            for (local, drow) in chunk.chunks_mut(rows).enumerate() {
                let c = base + local;
                for (r, d) in drow.iter_mut().enumerate() {
                    *d = src[r * cols + c];
                }
            }
        });
    }

    /// Applies a 1-D FFT transform to every length-`len` row of `src`,
    /// writing into `dst` (same layout), with per-chunk complex strips from
    /// `cplx`.
    fn fft_rows(
        plan: &DctPlan,
        src: &[f64],
        dst: &mut [f64],
        rows: usize,
        cplx: &mut Vec<f64>,
        kind: FftKind,
    ) {
        let len = plan.len();
        let rpc = Self::rows_per_chunk(rows);
        let chunks = rows.div_ceil(rpc);
        let strip = plan.scratch_len();
        ensure_len(cplx, chunks * strip);
        dst[..rows * len]
            .par_chunks_mut(rpc * len)
            .zip(cplx.par_chunks_mut(strip))
            .enumerate()
            .for_each(|(ci, (dchunk, work))| {
                let base = ci * rpc;
                for (local, drow) in dchunk.chunks_mut(len).enumerate() {
                    let srow = &src[(base + local) * len..(base + local + 1) * len];
                    match kind {
                        FftKind::Dct2 => plan.dct2(srow, drow, work),
                        FftKind::Idct => plan.idct(srow, drow, work),
                        FftKind::Idxst => plan.idxst(srow, drow, work),
                    }
                }
            });
    }

    // ------------------------------------------------------------------
    // Forward transform
    // ------------------------------------------------------------------

    /// Forward DCT-II of `grid` (`m × n`, row-major over x) into `out`:
    /// coefficients `a_uv` such that `grid_ij = Σ a_uv cos·cos` exactly.
    /// All intermediates live in `scratch`.
    pub fn dct2_into(&self, grid: &[f64], out: &mut Vec<f64>, scratch: &mut PoissonScratch) {
        let (m, n) = (self.m, self.n);
        assert_eq!(grid.len(), m * n);
        ensure_len(out, m * n);
        match &self.backend {
            Backend::Dense { x, y } => self.dense_dct2(grid, out, scratch, x, y),
            Backend::Fft { x, y } => {
                ensure_len(&mut scratch.t1, m * n);
                ensure_len(&mut scratch.t2, m * n);
                // Rows along y: S_y[i][v].
                Self::fft_rows(y, grid, &mut scratch.t1, m, &mut scratch.cplx, FftKind::Dct2);
                // Transpose to (n × m), transform along x: S_xy[v][u].
                Self::transpose(&scratch.t1, &mut scratch.t2, m, n);
                Self::fft_rows(x, &scratch.t2, &mut scratch.t1, n, &mut scratch.cplx, FftKind::Dct2);
                // Transpose back and apply the c_u c_v normalization.
                Self::transpose(&scratch.t1, out, n, m);
                let rpc = Self::rows_per_chunk(m);
                out.par_chunks_mut(rpc * n).enumerate().for_each(|(ci, chunk)| {
                    let base = ci * rpc;
                    for (local, row) in chunk.chunks_mut(n).enumerate() {
                        let cu = if base + local == 0 { 1.0 } else { 2.0 } / m as f64;
                        for (v, r) in row.iter_mut().enumerate() {
                            let cv = if v == 0 { 1.0 } else { 2.0 } / n as f64;
                            *r *= cu * cv;
                        }
                    }
                });
            }
        }
    }

    /// Allocating convenience wrapper over [`Spectral2D::dct2_into`].
    pub fn dct2(&self, grid: &[f64]) -> Vec<f64> {
        let mut out = Vec::new();
        self.dct2_into(grid, &mut out, &mut PoissonScratch::new());
        out
    }

    fn dense_dct2(
        &self,
        grid: &[f64],
        out: &mut [f64],
        scratch: &mut PoissonScratch,
        x: &AxisBases,
        y: &AxisBases,
    ) {
        let (m, n) = (self.m, self.n);
        ensure_len(&mut scratch.t1, m * n);
        // T[u*n + j] = Σ_i cos_x[i][u] grid[i][j]
        let rpc = Self::rows_per_chunk(m);
        scratch.t1.par_chunks_mut(rpc * n).enumerate().for_each(|(ci, chunk)| {
            let base = ci * rpc;
            for (local, row) in chunk.chunks_mut(n).enumerate() {
                let u = base + local;
                for i in 0..m {
                    let cu = x.cos[i * m + u];
                    if cu != 0.0 {
                        let g = &grid[i * n..(i + 1) * n];
                        for (r, gv) in row.iter_mut().zip(g) {
                            *r += cu * gv;
                        }
                    }
                }
            }
        });
        // A[u*n + v] = cu cv Σ_j T[u][j] cos_y[j][v]
        let t1 = &scratch.t1;
        out.par_chunks_mut(rpc * n).enumerate().for_each(|(ci, chunk)| {
            let base = ci * rpc;
            for (local, row) in chunk.chunks_mut(n).enumerate() {
                let u = base + local;
                let cu = if u == 0 { 1.0 / m as f64 } else { 2.0 / m as f64 };
                for j in 0..n {
                    let tv = t1[u * n + j];
                    if tv != 0.0 {
                        for (v, r) in row.iter_mut().enumerate() {
                            *r += tv * y.cos[j * n + v];
                        }
                    }
                }
                for (v, r) in row.iter_mut().enumerate() {
                    let cv = if v == 0 { 1.0 / n as f64 } else { 2.0 / n as f64 };
                    *r *= cu * cv;
                }
            }
        });
    }

    // ------------------------------------------------------------------
    // Synthesis
    // ------------------------------------------------------------------

    /// Evaluates `Σ_uv coef_uv · φx(i,u) · φy(j,v)` on the grid into `out`,
    /// where the bases are selected by `sin_in_x` / `sin_in_y`.
    fn synth_into(
        &self,
        coef: &[f64],
        sin_in_x: bool,
        sin_in_y: bool,
        out: &mut [f64],
        scratch: &mut PoissonScratch,
    ) {
        let (m, n) = (self.m, self.n);
        debug_assert_eq!(coef.len(), m * n);
        debug_assert_eq!(out.len(), m * n);
        match &self.backend {
            Backend::Dense { x, y } => {
                self.dense_synth(coef, sin_in_x, sin_in_y, out, scratch, x, y)
            }
            Backend::Fft { x, y } => {
                ensure_len(&mut scratch.t1, m * n);
                ensure_len(&mut scratch.t2, m * n);
                // Synthesize along y: G[u][j].
                let ykind = if sin_in_y { FftKind::Idxst } else { FftKind::Idct };
                Self::fft_rows(y, coef, &mut scratch.t1, m, &mut scratch.cplx, ykind);
                // Transpose to (n × m), synthesize along x, transpose back.
                Self::transpose(&scratch.t1, &mut scratch.t2, m, n);
                let xkind = if sin_in_x { FftKind::Idxst } else { FftKind::Idct };
                Self::fft_rows(x, &scratch.t2, &mut scratch.t1, n, &mut scratch.cplx, xkind);
                Self::transpose(&scratch.t1, out, n, m);
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn dense_synth(
        &self,
        coef: &[f64],
        sin_in_x: bool,
        sin_in_y: bool,
        out: &mut [f64],
        scratch: &mut PoissonScratch,
        x: &AxisBases,
        y: &AxisBases,
    ) {
        let (m, n) = (self.m, self.n);
        let bx = if sin_in_x { &x.sin } else { &x.cos };
        let by = if sin_in_y { &y.sin } else { &y.cos };
        ensure_len(&mut scratch.t1, m * n);
        // T[i*n + v] = Σ_u bx[i][u] coef[u][v]
        let rpc = Self::rows_per_chunk(m);
        scratch.t1.par_chunks_mut(rpc * n).enumerate().for_each(|(ci, chunk)| {
            let base = ci * rpc;
            for (local, row) in chunk.chunks_mut(n).enumerate() {
                let i = base + local;
                for u in 0..m {
                    let b = bx[i * m + u];
                    if b != 0.0 {
                        let c = &coef[u * n..(u + 1) * n];
                        for (r, cv) in row.iter_mut().zip(c) {
                            *r += b * cv;
                        }
                    }
                }
            }
        });
        let t1 = &scratch.t1;
        out.par_chunks_mut(rpc * n).enumerate().for_each(|(ci, chunk)| {
            let base = ci * rpc;
            for (local, row) in chunk.chunks_mut(n).enumerate() {
                let i = base + local;
                for r in row.iter_mut() {
                    *r = 0.0;
                }
                for v in 0..n {
                    let tv = t1[i * n + v];
                    if tv != 0.0 {
                        for (j, r) in row.iter_mut().enumerate() {
                            *r += tv * by[j * n + v];
                        }
                    }
                }
            }
        });
    }

    /// Inverse of [`Spectral2D::dct2`] (allocating convenience form).
    pub fn idct2(&self, coef: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.m * self.n];
        self.synth_into(coef, false, false, &mut out, &mut PoissonScratch::new());
        out
    }

    /// Inverse of [`Spectral2D::dct2_into`]: evaluates the cosine expansion
    /// `coef` on the grid into `out` using `scratch` for intermediates.
    pub fn idct2_into(&self, coef: &[f64], out: &mut Vec<f64>, scratch: &mut PoissonScratch) {
        ensure_len(out, self.m * self.n);
        self.synth_into(coef, false, false, out, scratch);
    }

    // ------------------------------------------------------------------
    // Poisson solve
    // ------------------------------------------------------------------

    /// Solves the Poisson problem for the (mean-removed) density `rho` and
    /// returns ψ and its derivatives on the grid. Allocating convenience
    /// wrapper over [`Spectral2D::solve_into`].
    pub fn solve(&self, rho: &[f64]) -> PoissonSolution {
        let mut sol = PoissonSolution::default();
        self.solve_into(rho, &mut PoissonScratch::new(), &mut sol);
        sol
    }

    /// Solves the Poisson problem into a reused solution using caller-owned
    /// scratch: zero heap allocation once the buffers have grown to size.
    pub fn solve_into(&self, rho: &[f64], scratch: &mut PoissonScratch, sol: &mut PoissonSolution) {
        let (m, n) = (self.m, self.n);
        assert_eq!(rho.len(), m * n);
        // Forward transform: a_uv (kept in scratch.a across the 3 synths).
        let mut a = std::mem::take(&mut scratch.a);
        self.dct2_into(rho, &mut a, scratch);
        ensure_len(&mut sol.psi, m * n);
        ensure_len(&mut sol.dpsi_dx, m * n);
        ensure_len(&mut sol.dpsi_dy, m * n);
        let mut c = std::mem::take(&mut scratch.c);
        ensure_len(&mut c, m * n);
        // ψ coefficients b = a/k², then the w-scaled variants for the
        // derivatives (d/dx cos(w x) = −w sin(w x)).
        for u in 0..m {
            for v in 0..n {
                if u == 0 && v == 0 {
                    c[0] = 0.0;
                    continue;
                }
                let k2 = self.wu[u] * self.wu[u] + self.wv[v] * self.wv[v];
                c[u * n + v] = a[u * n + v] / k2;
            }
        }
        self.synth_into(&c, false, false, &mut sol.psi, scratch);
        for u in 0..m {
            for v in 0..n {
                if u == 0 && v == 0 {
                    continue;
                }
                let k2 = self.wu[u] * self.wu[u] + self.wv[v] * self.wv[v];
                c[u * n + v] = -self.wu[u] * a[u * n + v] / k2;
            }
        }
        self.synth_into(&c, true, false, &mut sol.dpsi_dx, scratch);
        for u in 0..m {
            for v in 0..n {
                if u == 0 && v == 0 {
                    continue;
                }
                let k2 = self.wu[u] * self.wu[u] + self.wv[v] * self.wv[v];
                c[u * n + v] = -self.wv[v] * a[u * n + v] / k2;
            }
        }
        self.synth_into(&c, false, true, &mut sol.dpsi_dy, scratch);
        scratch.a = a;
        scratch.c = c;
    }
}

/// 1-D transform selector for the row sweeps.
#[derive(Clone, Copy)]
enum FftKind {
    Dct2,
    Idct,
    Idxst,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dct_roundtrip_is_exact() {
        let s = Spectral2D::new(8, 4, 2.0, 1.0);
        assert!(s.uses_fft());
        let grid: Vec<f64> = (0..32).map(|k| ((k * 37 % 11) as f64) - 5.0).collect();
        let coef = s.dct2(&grid);
        let back = s.idct2(&coef);
        for (a, b) in grid.iter().zip(&back) {
            assert!((a - b).abs() < 1e-10, "{a} vs {b}");
        }
    }

    #[test]
    fn dct_roundtrip_is_exact_dense_fallback() {
        let s = Spectral2D::new(6, 9, 2.0, 1.0);
        assert!(!s.uses_fft());
        let grid: Vec<f64> = (0..54).map(|k| ((k * 37 % 11) as f64) - 5.0).collect();
        let coef = s.dct2(&grid);
        let back = s.idct2(&coef);
        for (a, b) in grid.iter().zip(&back) {
            assert!((a - b).abs() < 1e-10, "{a} vs {b}");
        }
    }

    #[test]
    fn constant_grid_has_single_dc_coefficient() {
        let s = Spectral2D::new(4, 4, 1.0, 1.0);
        let coef = s.dct2(&[3.0; 16]);
        assert!((coef[0] - 3.0).abs() < 1e-12);
        for &c in &coef[1..] {
            assert!(c.abs() < 1e-10);
        }
    }

    #[test]
    fn fft_and_dense_backends_agree() {
        let (m, n) = (16, 32);
        let fft = Spectral2D::with_fft(m, n, 3.0, 2.0, true);
        let dense = Spectral2D::with_fft(m, n, 3.0, 2.0, false);
        assert!(fft.uses_fft() && !dense.uses_fft());
        let grid: Vec<f64> = (0..m * n).map(|k| ((k * 31 % 17) as f64) - 8.0).collect();
        let (ca, cb) = (fft.dct2(&grid), dense.dct2(&grid));
        for (a, b) in ca.iter().zip(&cb) {
            assert!((a - b).abs() < 1e-9, "coef {a} vs {b}");
        }
        let (sa, sb) = (fft.solve(&grid), dense.solve(&grid));
        for (a, b) in sa.psi.iter().zip(&sb.psi) {
            assert!((a - b).abs() < 1e-9, "psi {a} vs {b}");
        }
        for (a, b) in sa.dpsi_dx.iter().zip(&sb.dpsi_dx) {
            assert!((a - b).abs() < 1e-9, "dx {a} vs {b}");
        }
        for (a, b) in sa.dpsi_dy.iter().zip(&sb.dpsi_dy) {
            assert!((a - b).abs() < 1e-9, "dy {a} vs {b}");
        }
    }

    #[test]
    fn solve_into_reuses_buffers_and_matches_solve() {
        let s = Spectral2D::new(16, 16, 2.0, 2.0);
        let grid: Vec<f64> = (0..256).map(|k| ((k * 13 % 23) as f64) - 11.0).collect();
        let fresh = s.solve(&grid);
        let mut scratch = PoissonScratch::new();
        let mut sol = PoissonSolution::default();
        // Two calls through the same scratch: second must match exactly.
        s.solve_into(&grid, &mut scratch, &mut sol);
        s.solve_into(&grid, &mut scratch, &mut sol);
        assert_eq!(fresh.psi, sol.psi);
        assert_eq!(fresh.dpsi_dx, sol.dpsi_dx);
        assert_eq!(fresh.dpsi_dy, sol.dpsi_dy);
    }

    #[test]
    fn axis_bases_are_shared_across_instances() {
        let a = Spectral2D::with_fft(12, 12, 1.0, 1.0, false);
        let b = Spectral2D::with_fft(12, 12, 7.0, 3.0, false);
        assert_eq!(a.basis_token(), b.basis_token());
        let c = Spectral2D::new(16, 16, 1.0, 1.0);
        let d = Spectral2D::new(16, 16, 9.0, 2.0);
        assert_eq!(c.basis_token(), d.basis_token());
    }

    #[test]
    fn poisson_solves_single_mode_analytically() {
        // ρ = cos(w x) with w = π/W: ψ must be ρ/w², ∂ψ/∂x = −sin(w x)/w.
        let (m, n) = (32, 32);
        let (w_ext, h_ext) = (4.0, 4.0);
        let s = Spectral2D::new(m, n, w_ext, h_ext);
        let w = std::f64::consts::PI / w_ext;
        let mut rho = vec![0.0; m * n];
        for i in 0..m {
            let x = (i as f64 + 0.5) * w_ext / m as f64;
            for j in 0..n {
                rho[i * n + j] = (w * x).cos();
            }
        }
        let sol = s.solve(&rho);
        for i in 0..m {
            let x = (i as f64 + 0.5) * w_ext / m as f64;
            for j in 0..n {
                let expect_psi = (w * x).cos() / (w * w);
                let expect_dx = -(w * x).sin() / w;
                assert!(
                    (sol.psi[i * n + j] - expect_psi).abs() < 1e-8,
                    "psi({i},{j}) = {} vs {expect_psi}",
                    sol.psi[i * n + j]
                );
                assert!((sol.dpsi_dx[i * n + j] - expect_dx).abs() < 1e-8);
                assert!(sol.dpsi_dy[i * n + j].abs() < 1e-8);
            }
        }
    }

    #[test]
    fn mixed_mode_poisson() {
        // ρ = cos(wx x)·cos(wy y), wx = 2π/W, wy = π/H.
        let (m, n) = (16, 24);
        let (w_ext, h_ext) = (2.0, 3.0);
        let s = Spectral2D::new(m, n, w_ext, h_ext);
        let wx = 2.0 * std::f64::consts::PI / w_ext;
        let wy = std::f64::consts::PI / h_ext;
        let mut rho = vec![0.0; m * n];
        for i in 0..m {
            let x = (i as f64 + 0.5) * w_ext / m as f64;
            for j in 0..n {
                let y = (j as f64 + 0.5) * h_ext / n as f64;
                rho[i * n + j] = (wx * x).cos() * (wy * y).cos();
            }
        }
        let sol = s.solve(&rho);
        let k2 = wx * wx + wy * wy;
        for i in 0..m {
            let x = (i as f64 + 0.5) * w_ext / m as f64;
            for j in 0..n {
                let y = (j as f64 + 0.5) * h_ext / n as f64;
                let e_psi = (wx * x).cos() * (wy * y).cos() / k2;
                let e_dy = -wy * (wx * x).cos() * (wy * y).sin() / k2;
                assert!((sol.psi[i * n + j] - e_psi).abs() < 1e-8);
                assert!((sol.dpsi_dy[i * n + j] - e_dy).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn dc_mode_is_ignored() {
        let s = Spectral2D::new(8, 8, 1.0, 1.0);
        let sol = s.solve(&vec![5.0; 64]);
        for v in sol.psi.iter().chain(&sol.dpsi_dx).chain(&sol.dpsi_dy) {
            assert!(v.abs() < 1e-10);
        }
    }
}
