//! Spectral Poisson solver on a bin grid (the ePlace electrostatics core).
//!
//! Solves `∇²ψ = −ρ̂` (ρ̂ = bin density minus its mean) with Neumann
//! boundaries by expanding ρ̂ in the DCT-II (cosine-at-midpoints) basis:
//! `ρ̂ = Σ a_uv cos(w_u x) cos(w_v y)` with `w_u = πu/W`, giving
//! `ψ_uv = a_uv / (w_u² + w_v²)` and closed-form derivatives. The transforms
//! are implemented as dense basis-matrix products (the grids are ≤ 256², so
//! an O(m³) separable product, rayon-parallel over rows, beats the constant
//! factors of an FFT at this scale and keeps the code dependency-free).

use rayon::prelude::*;

/// Precomputed cosine/sine bases for one grid geometry.
#[derive(Clone, Debug)]
pub struct Spectral2D {
    m: usize,
    n: usize,
    /// cos(w_u x_i), `m × m`, index `[i*m + u]`.
    cos_x: Vec<f64>,
    /// sin(w_u x_i).
    sin_x: Vec<f64>,
    cos_y: Vec<f64>,
    sin_y: Vec<f64>,
    /// Physical frequencies πu/W.
    wu: Vec<f64>,
    wv: Vec<f64>,
}

/// The solved potential and its spatial derivatives on the bin grid.
#[derive(Clone, Debug)]
pub struct PoissonSolution {
    /// Potential ψ per bin, `[i*n + j]`.
    pub psi: Vec<f64>,
    /// ∂ψ/∂x per bin.
    pub dpsi_dx: Vec<f64>,
    /// ∂ψ/∂y per bin.
    pub dpsi_dy: Vec<f64>,
}

impl Spectral2D {
    /// Builds the bases for an `m × n` grid over a `width × height` region.
    ///
    /// # Panics
    ///
    /// Panics if `m`, `n` are zero or the region is degenerate.
    pub fn new(m: usize, n: usize, width: f64, height: f64) -> Spectral2D {
        assert!(m > 0 && n > 0 && width > 0.0 && height > 0.0);
        let build = |k: usize, extent: f64| {
            let mut cos_t = vec![0.0; k * k];
            let mut sin_t = vec![0.0; k * k];
            let mut w = vec![0.0; k];
            for (u, wk) in w.iter_mut().enumerate() {
                *wk = std::f64::consts::PI * u as f64 / extent;
            }
            for i in 0..k {
                // Midpoint of bin i in normalized angle: πu(i+0.5)/k.
                for u in 0..k {
                    let ang = std::f64::consts::PI * u as f64 * (i as f64 + 0.5) / k as f64;
                    cos_t[i * k + u] = ang.cos();
                    sin_t[i * k + u] = ang.sin();
                }
            }
            (cos_t, sin_t, w)
        };
        let (cos_x, sin_x, wu) = build(m, width);
        let (cos_y, sin_y, wv) = build(n, height);
        Spectral2D { m, n, cos_x, sin_x, cos_y, sin_y, wu, wv }
    }

    /// Grid size `(m, n)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.m, self.n)
    }

    /// Forward DCT-II of `grid` (`m × n`, row-major over x): coefficients
    /// `a_uv` such that `grid_ij = Σ a_uv cos·cos` exactly.
    pub fn dct2(&self, grid: &[f64]) -> Vec<f64> {
        let (m, n) = (self.m, self.n);
        assert_eq!(grid.len(), m * n);
        // T[u*n + j] = Σ_i cos_x[i][u] grid[i][j]
        let t: Vec<f64> = (0..m)
            .into_par_iter()
            .flat_map_iter(|u| {
                let mut row = vec![0.0; n];
                for i in 0..m {
                    let cu = self.cos_x[i * m + u];
                    if cu != 0.0 {
                        let base = i * n;
                        for (j, r) in row.iter_mut().enumerate() {
                            *r += cu * grid[base + j];
                        }
                    }
                }
                row
            })
            .collect();
        // A[u*n + v] = cu cv Σ_j T[u][j] cos_y[j][v]
        (0..m)
            .into_par_iter()
            .flat_map_iter(|u| {
                let cu = if u == 0 { 1.0 / m as f64 } else { 2.0 / m as f64 };
                let mut row = vec![0.0; n];
                for j in 0..n {
                    let tv = t[u * n + j];
                    if tv != 0.0 {
                        for (v, r) in row.iter_mut().enumerate() {
                            *r += tv * self.cos_y[j * n + v];
                        }
                    }
                }
                for (v, r) in row.iter_mut().enumerate() {
                    let cv = if v == 0 { 1.0 / n as f64 } else { 2.0 / n as f64 };
                    *r *= cu * cv;
                }
                row
            })
            .collect()
    }

    /// Evaluates `Σ_uv coef_uv · φx(i,u) · φy(j,v)` on the grid, where the
    /// bases are selected by `sin_in_x` / `sin_in_y`.
    fn synth(&self, coef: &[f64], sin_in_x: bool, sin_in_y: bool) -> Vec<f64> {
        let (m, n) = (self.m, self.n);
        let bx = if sin_in_x { &self.sin_x } else { &self.cos_x };
        let by = if sin_in_y { &self.sin_y } else { &self.cos_y };
        // T[i*n + v] = Σ_u bx[i][u] coef[u][v]
        let t: Vec<f64> = (0..m)
            .into_par_iter()
            .flat_map_iter(|i| {
                let mut row = vec![0.0; n];
                for u in 0..m {
                    let b = bx[i * m + u];
                    if b != 0.0 {
                        let base = u * n;
                        for (v, r) in row.iter_mut().enumerate() {
                            *r += b * coef[base + v];
                        }
                    }
                }
                row
            })
            .collect();
        (0..m)
            .into_par_iter()
            .flat_map_iter(|i| {
                let mut row = vec![0.0; n];
                for v in 0..n {
                    let tv = t[i * n + v];
                    if tv != 0.0 {
                        for (j, r) in row.iter_mut().enumerate() {
                            *r += tv * by[j * n + v];
                        }
                    }
                }
                row
            })
            .collect()
    }

    /// Inverse of [`Spectral2D::dct2`].
    pub fn idct2(&self, coef: &[f64]) -> Vec<f64> {
        self.synth(coef, false, false)
    }

    /// Solves the Poisson problem for the (mean-removed) density `rho` and
    /// returns ψ and its derivatives on the grid.
    pub fn solve(&self, rho: &[f64]) -> PoissonSolution {
        let (m, n) = (self.m, self.n);
        let a = self.dct2(rho);
        // ψ coefficients.
        let mut b = vec![0.0; m * n];
        let mut bx = vec![0.0; m * n]; // w_u-scaled for ∂/∂x
        let mut by = vec![0.0; m * n];
        for u in 0..m {
            for v in 0..n {
                if u == 0 && v == 0 {
                    continue;
                }
                let k2 = self.wu[u] * self.wu[u] + self.wv[v] * self.wv[v];
                let c = a[u * n + v] / k2;
                b[u * n + v] = c;
                bx[u * n + v] = -self.wu[u] * c; // d/dx cos(w x) = −w sin(w x)
                by[u * n + v] = -self.wv[v] * c;
            }
        }
        let psi = self.synth(&b, false, false);
        let dpsi_dx = self.synth(&bx, true, false);
        let dpsi_dy = self.synth(&by, false, true);
        PoissonSolution { psi, dpsi_dx, dpsi_dy }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dct_roundtrip_is_exact() {
        let s = Spectral2D::new(8, 4, 2.0, 1.0);
        let grid: Vec<f64> = (0..32).map(|k| ((k * 37 % 11) as f64) - 5.0).collect();
        let coef = s.dct2(&grid);
        let back = s.idct2(&coef);
        for (a, b) in grid.iter().zip(&back) {
            assert!((a - b).abs() < 1e-10, "{a} vs {b}");
        }
    }

    #[test]
    fn constant_grid_has_single_dc_coefficient() {
        let s = Spectral2D::new(4, 4, 1.0, 1.0);
        let coef = s.dct2(&[3.0; 16]);
        assert!((coef[0] - 3.0).abs() < 1e-12);
        for &c in &coef[1..] {
            assert!(c.abs() < 1e-10);
        }
    }

    #[test]
    fn poisson_solves_single_mode_analytically() {
        // ρ = cos(w x) with w = π/W: ψ must be ρ/w², ∂ψ/∂x = −sin(w x)/w.
        let (m, n) = (32, 32);
        let (w_ext, h_ext) = (4.0, 4.0);
        let s = Spectral2D::new(m, n, w_ext, h_ext);
        let w = std::f64::consts::PI / w_ext;
        let mut rho = vec![0.0; m * n];
        for i in 0..m {
            let x = (i as f64 + 0.5) * w_ext / m as f64;
            for j in 0..n {
                rho[i * n + j] = (w * x).cos();
            }
        }
        let sol = s.solve(&rho);
        for i in 0..m {
            let x = (i as f64 + 0.5) * w_ext / m as f64;
            for j in 0..n {
                let expect_psi = (w * x).cos() / (w * w);
                let expect_dx = -(w * x).sin() / w;
                assert!(
                    (sol.psi[i * n + j] - expect_psi).abs() < 1e-8,
                    "psi({i},{j}) = {} vs {expect_psi}",
                    sol.psi[i * n + j]
                );
                assert!((sol.dpsi_dx[i * n + j] - expect_dx).abs() < 1e-8);
                assert!(sol.dpsi_dy[i * n + j].abs() < 1e-8);
            }
        }
    }

    #[test]
    fn mixed_mode_poisson() {
        // ρ = cos(wx x)·cos(wy y), wx = 2π/W, wy = π/H.
        let (m, n) = (16, 24);
        let (w_ext, h_ext) = (2.0, 3.0);
        let s = Spectral2D::new(m, n, w_ext, h_ext);
        let wx = 2.0 * std::f64::consts::PI / w_ext;
        let wy = std::f64::consts::PI / h_ext;
        let mut rho = vec![0.0; m * n];
        for i in 0..m {
            let x = (i as f64 + 0.5) * w_ext / m as f64;
            for j in 0..n {
                let y = (j as f64 + 0.5) * h_ext / n as f64;
                rho[i * n + j] = (wx * x).cos() * (wy * y).cos();
            }
        }
        let sol = s.solve(&rho);
        let k2 = wx * wx + wy * wy;
        for i in 0..m {
            let x = (i as f64 + 0.5) * w_ext / m as f64;
            for j in 0..n {
                let y = (j as f64 + 0.5) * h_ext / n as f64;
                let e_psi = (wx * x).cos() * (wy * y).cos() / k2;
                let e_dy = -wy * (wx * x).cos() * (wy * y).sin() / k2;
                assert!((sol.psi[i * n + j] - e_psi).abs() < 1e-8);
                assert!((sol.dpsi_dy[i * n + j] - e_dy).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn dc_mode_is_ignored() {
        let s = Spectral2D::new(8, 8, 1.0, 1.0);
        let sol = s.solve(&vec![5.0; 64]);
        for v in sol.psi.iter().chain(&sol.dpsi_dx).chain(&sol.dpsi_dy) {
            assert!(v.abs() < 1e-10);
        }
    }
}
