//! Wirelength models: exact HPWL and the weighted-average (WA) smooth
//! approximation with analytic gradients.
//!
//! The WA model (Hsu et al., used by ePlace/DREAMPlace) approximates
//! `max(x)` by `Σ xᵢ·e^(xᵢ/γ) / Σ e^(xᵢ/γ)` and `min` symmetrically; the net
//! wirelength is `(max−min)` in each axis. Unlike LSE it is exact for 2-pin
//! nets as γ→0 and has bounded error. Per-net weights implement the
//! net-weighting objective of Eq. (4).
//!
//! [`WirelengthModel::wa_gradient_into`] is the hot-path form: nets are
//! partitioned into fixed per-thread chunks, each chunk scatters into its own
//! gradient accumulator held in a caller-owned [`WirelengthScratch`], and the
//! accumulators are reduced in chunk order — deterministic for a given pool
//! width and allocation-free in steady state.

use dtp_netlist::{Netlist, Point};
use rayon::prelude::*;

/// One pin of a flattened net: owning cell and offset from the cell origin.
#[derive(Clone, Copy, Debug)]
struct FlatPin {
    cell: u32,
    offset: Point,
}

/// Precomputed net → pin structure for fast wirelength evaluation.
///
/// Clock nets are excluded (they are ideal in this flow and their huge fanout
/// would dominate the wirelength objective meaninglessly).
#[derive(Clone, Debug)]
pub struct WirelengthModel {
    /// CSR layout: pins of net `e` are `pins[net_start[e]..net_start[e+1]]`.
    pins: Vec<FlatPin>,
    net_start: Vec<u32>,
    /// Map from model net index to original netlist net index.
    net_index: Vec<u32>,
    num_cells: usize,
}

/// Per-thread accumulators for the parallel WA gradient: a full gradient
/// image per net chunk plus the per-net axis working buffers.
#[derive(Clone, Debug, Default)]
struct WlThreadState {
    gx: Vec<f64>,
    gy: Vec<f64>,
    wl: f64,
    coords: Vec<f64>,
    ep: Vec<f64>,
    em: Vec<f64>,
    grads: Vec<f64>,
}

/// Reusable intermediates for [`WirelengthModel::wa_gradient_into`]. Buffers
/// grow on first use; steady-state evaluations allocate nothing.
#[derive(Clone, Debug, Default)]
pub struct WirelengthScratch {
    states: Vec<WlThreadState>,
}

impl WirelengthScratch {
    /// Creates an empty scratch; buffers are sized lazily on first use.
    pub fn new() -> WirelengthScratch {
        WirelengthScratch::default()
    }
}

/// Resizes without preserving contents.
fn ensure_len(v: &mut Vec<f64>, len: usize) {
    v.clear();
    v.resize(len, 0.0);
}

impl WirelengthModel {
    /// Builds the model from a netlist.
    pub fn new(nl: &Netlist) -> WirelengthModel {
        let mut pins = Vec::new();
        let mut net_start = vec![0u32];
        let mut net_index = Vec::new();
        for net_id in nl.net_ids() {
            let net = nl.net(net_id);
            if net.is_clock() || net.degree() < 2 {
                continue;
            }
            for &p in net.pins() {
                let pin = nl.pin(p);
                pins.push(FlatPin {
                    cell: pin.cell().index() as u32,
                    offset: nl.pin_spec(p).offset,
                });
            }
            net_start.push(pins.len() as u32);
            net_index.push(net_id.index() as u32);
        }
        WirelengthModel { pins, net_start, net_index, num_cells: nl.num_cells() }
    }

    /// Number of nets in the model.
    pub fn num_nets(&self) -> usize {
        self.net_index.len()
    }

    /// Original netlist index of model net `e`.
    pub fn net_index(&self, e: usize) -> usize {
        self.net_index[e] as usize
    }

    fn net_pins(&self, e: usize) -> &[FlatPin] {
        &self.pins[self.net_start[e] as usize..self.net_start[e + 1] as usize]
    }

    /// Exact half-perimeter wirelength at cell positions `(xs, ys)`
    /// (lower-left corners), optionally weighted per model net.
    pub fn hpwl(&self, xs: &[f64], ys: &[f64]) -> f64 {
        (0..self.num_nets())
            .into_par_iter()
            .map(|e| {
                let mut xmin = f64::INFINITY;
                let mut xmax = f64::NEG_INFINITY;
                let mut ymin = f64::INFINITY;
                let mut ymax = f64::NEG_INFINITY;
                for p in self.net_pins(e) {
                    let x = xs[p.cell as usize] + p.offset.x;
                    let y = ys[p.cell as usize] + p.offset.y;
                    xmin = xmin.min(x);
                    xmax = xmax.max(x);
                    ymin = ymin.min(y);
                    ymax = ymax.max(y);
                }
                (xmax - xmin) + (ymax - ymin)
            })
            .sum()
    }

    /// Weighted-average smooth wirelength and its gradient with respect to
    /// cell positions. Allocating convenience wrapper over
    /// [`WirelengthModel::wa_gradient_into`] (bit-for-bit identical results).
    ///
    /// `gamma` is the WA smoothing parameter (same length unit as positions);
    /// `weights`, when given, scales each model net's contribution (Eq. 4).
    ///
    /// Returns `(wirelength, grad_x, grad_y)`.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is provided with the wrong length.
    pub fn wa_gradient(
        &self,
        xs: &[f64],
        ys: &[f64],
        gamma: f64,
        weights: Option<&[f64]>,
    ) -> (f64, Vec<f64>, Vec<f64>) {
        let mut gx = Vec::new();
        let mut gy = Vec::new();
        let wl = self.wa_gradient_into(
            xs,
            ys,
            gamma,
            weights,
            &mut WirelengthScratch::new(),
            &mut gx,
            &mut gy,
        );
        (wl, gx, gy)
    }

    /// Weighted-average smooth wirelength with gradients written into reused
    /// vectors; every intermediate lives in caller-owned `scratch`, so
    /// steady-state calls perform zero heap allocations.
    ///
    /// Returns the (weighted) smooth wirelength.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is provided with the wrong length.
    #[allow(clippy::too_many_arguments)]
    pub fn wa_gradient_into(
        &self,
        xs: &[f64],
        ys: &[f64],
        gamma: f64,
        weights: Option<&[f64]>,
        scratch: &mut WirelengthScratch,
        grad_x: &mut Vec<f64>,
        grad_y: &mut Vec<f64>,
    ) -> f64 {
        if let Some(w) = weights {
            assert_eq!(w.len(), self.num_nets(), "one weight per model net");
        }
        let nets = self.num_nets();
        let n_cells = self.num_cells;
        let threads = rayon::current_num_threads();
        let net_chunk = nets.div_ceil(threads).max(1);
        let chunks = nets.div_ceil(net_chunk).max(1);
        scratch.states.resize_with(chunks, WlThreadState::default);

        // Each chunk of nets scatters into its own full-size gradient image.
        scratch.states.par_chunks_mut(1).enumerate().for_each(|(ci, st)| {
            let st = &mut st[0];
            ensure_len(&mut st.gx, n_cells);
            ensure_len(&mut st.gy, n_cells);
            st.wl = 0.0;
            let lo = ci * net_chunk;
            let hi = (lo + net_chunk).min(nets);
            for e in lo..hi {
                let w = weights.map_or(1.0, |w| w[e]);
                let pins = self.net_pins(e);
                for axis in 0..2 {
                    st.coords.clear();
                    for p in pins {
                        st.coords.push(if axis == 0 {
                            xs[p.cell as usize] + p.offset.x
                        } else {
                            ys[p.cell as usize] + p.offset.y
                        });
                    }
                    let wl =
                        wa_axis_into(&st.coords, gamma, &mut st.ep, &mut st.em, &mut st.grads);
                    st.wl += w * wl;
                    let target = if axis == 0 { &mut st.gx } else { &mut st.gy };
                    for (k, p) in pins.iter().enumerate() {
                        target[p.cell as usize] += w * st.grads[k];
                    }
                }
            }
        });

        // Chunk-ordered reduction over cells.
        ensure_len(grad_x, n_cells);
        ensure_len(grad_y, n_cells);
        let states = &scratch.states;
        let cell_chunk = n_cells.div_ceil(threads).max(1);
        grad_x
            .par_chunks_mut(cell_chunk)
            .zip(grad_y.par_chunks_mut(cell_chunk))
            .enumerate()
            .for_each(|(bi, (gxc, gyc))| {
                let base = bi * cell_chunk;
                for (k, g) in gxc.iter_mut().enumerate() {
                    *g = states.iter().map(|s| s.gx[base + k]).sum();
                }
                for (k, g) in gyc.iter_mut().enumerate() {
                    *g = states.iter().map(|s| s.gy[base + k]).sum();
                }
            });
        states.iter().map(|s| s.wl).sum()
    }
}

/// WA smooth length along one axis; per-pin gradients land in `grads`. The
/// exponential buffers are caller-owned so repeated calls don't allocate.
fn wa_axis_into(
    xs: &[f64],
    gamma: f64,
    ep: &mut Vec<f64>,
    em: &mut Vec<f64>,
    grads: &mut Vec<f64>,
) -> f64 {
    let xmax = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let xmin = xs.iter().cloned().fold(f64::INFINITY, f64::min);
    // Stabilized exponentials.
    ep.clear();
    em.clear();
    for &x in xs {
        ep.push(((x - xmax) / gamma).exp());
        em.push((-(x - xmin) / gamma).exp());
    }
    let sp: f64 = ep.iter().sum();
    let sm: f64 = em.iter().sum();
    let sxp: f64 = xs.iter().zip(ep.iter()).map(|(&x, &e)| x * e).sum();
    let sxm: f64 = xs.iter().zip(em.iter()).map(|(&x, &e)| x * e).sum();
    let wa_max = sxp / sp;
    let wa_min = sxm / sm;
    grads.clear();
    for (k, &x) in xs.iter().enumerate() {
        // d(wa_max)/dx_k = e_k (1 + (x_k − wa_max)/γ) / sp
        let gp = ep[k] * (1.0 + (x - wa_max) / gamma) / sp;
        let gm = em[k] * (1.0 - (x - wa_min) / gamma) / sm;
        grads.push(gp - gm);
    }
    wa_max - wa_min
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtp_netlist::generate::{generate, GeneratorConfig};

    fn wa_axis(coords: impl Iterator<Item = f64>, gamma: f64) -> (f64, Vec<f64>) {
        let xs: Vec<f64> = coords.collect();
        let mut ep = Vec::new();
        let mut em = Vec::new();
        let mut grads = Vec::new();
        let wl = wa_axis_into(&xs, gamma, &mut ep, &mut em, &mut grads);
        (wl, grads)
    }

    fn model() -> (dtp_netlist::Design, WirelengthModel) {
        let d = generate(&GeneratorConfig::named("wl", 150)).unwrap();
        let m = WirelengthModel::new(&d.netlist);
        (d, m)
    }

    #[test]
    fn hpwl_matches_bounding_boxes() {
        let (d, m) = model();
        let (xs, ys) = d.netlist.positions();
        let hpwl = m.hpwl(&xs, &ys);
        // Independent computation via the netlist API.
        let mut expect = 0.0;
        for net_id in d.netlist.net_ids() {
            let net = d.netlist.net(net_id);
            if net.is_clock() || net.degree() < 2 {
                continue;
            }
            let bbox = dtp_netlist::Rect::bounding(
                net.pins().iter().map(|&p| d.netlist.pin_position(p)),
            )
            .unwrap();
            expect += bbox.half_perimeter();
        }
        assert!((hpwl - expect).abs() < 1e-6, "{hpwl} vs {expect}");
    }

    #[test]
    fn wa_upper_bounds_hpwl_and_converges() {
        let (d, m) = model();
        let (xs, ys) = d.netlist.positions();
        let hpwl = m.hpwl(&xs, &ys);
        let (wa_tight, _, _) = m.wa_gradient(&xs, &ys, 0.01, None);
        // WA underestimates HPWL slightly; at tiny gamma they coincide.
        assert!((wa_tight - hpwl).abs() < 0.01 * hpwl);
        let (wa_loose, _, _) = m.wa_gradient(&xs, &ys, 10.0, None);
        assert!((wa_loose - hpwl).abs() < 0.5 * hpwl);
    }

    #[test]
    fn wa_gradient_matches_finite_difference() {
        let (d, m) = model();
        let (mut xs, mut ys) = d.netlist.positions();
        let gamma = 2.0;
        let (_, gx, gy) = m.wa_gradient(&xs, &ys, gamma, None);
        let h = 1e-6;
        // Check several cells.
        for c in (0..xs.len()).step_by(xs.len() / 10 + 1) {
            let x0 = xs[c];
            xs[c] = x0 + h;
            let fp = m.wa_gradient(&xs, &ys, gamma, None).0;
            xs[c] = x0 - h;
            let fm = m.wa_gradient(&xs, &ys, gamma, None).0;
            xs[c] = x0;
            let num = (fp - fm) / (2.0 * h);
            assert!((gx[c] - num).abs() < 1e-5 * (1.0 + num.abs()), "cell {c}: {} vs {num}", gx[c]);

            let y0 = ys[c];
            ys[c] = y0 + h;
            let fp = m.wa_gradient(&xs, &ys, gamma, None).0;
            ys[c] = y0 - h;
            let fm = m.wa_gradient(&xs, &ys, gamma, None).0;
            ys[c] = y0;
            let num = (fp - fm) / (2.0 * h);
            assert!((gy[c] - num).abs() < 1e-5 * (1.0 + num.abs()));
        }
    }

    #[test]
    fn wa_gradient_into_is_bitwise_identical() {
        let (d, m) = model();
        let (xs, ys) = d.netlist.positions();
        let (wl, gx, gy) = m.wa_gradient(&xs, &ys, 2.0, None);
        let mut scratch = WirelengthScratch::new();
        let mut gx2 = Vec::new();
        let mut gy2 = Vec::new();
        // Run twice through the same scratch so buffer reuse is exercised.
        let _ = m.wa_gradient_into(&xs, &ys, 2.0, None, &mut scratch, &mut gx2, &mut gy2);
        let wl2 = m.wa_gradient_into(&xs, &ys, 2.0, None, &mut scratch, &mut gx2, &mut gy2);
        assert_eq!(wl, wl2);
        assert_eq!(gx, gx2);
        assert_eq!(gy, gy2);
    }

    #[test]
    fn weights_scale_gradients() {
        let (d, m) = model();
        let (xs, ys) = d.netlist.positions();
        let w1 = vec![1.0; m.num_nets()];
        let w2 = vec![2.0; m.num_nets()];
        let (f1, g1x, _) = m.wa_gradient(&xs, &ys, 2.0, Some(&w1));
        let (f2, g2x, _) = m.wa_gradient(&xs, &ys, 2.0, Some(&w2));
        assert!((f2 - 2.0 * f1).abs() < 1e-9 * f1.abs());
        for (a, b) in g1x.iter().zip(&g2x) {
            assert!((b - 2.0 * a).abs() < 1e-12 + 1e-9 * a.abs());
        }
    }

    #[test]
    fn clock_nets_excluded() {
        let (d, m) = model();
        for e in 0..m.num_nets() {
            let ni = dtp_netlist::NetId::new(m.net_index(e));
            assert!(!d.netlist.net(ni).is_clock());
        }
    }

    #[test]
    fn two_pin_wa_gradient_sign() {
        // For a 2-pin net, the gradient pulls pins together.
        let (_, grads) = wa_axis([0.0, 10.0].into_iter(), 1.0);
        assert!(grads[0] < 0.0, "left pin pulled right (negative direction grad means moving +x reduces)");
        assert!(grads[1] > 0.0);
    }
}
