//! Wirelength models: exact HPWL and the weighted-average (WA) smooth
//! approximation with analytic gradients.
//!
//! The WA model (Hsu et al., used by ePlace/DREAMPlace) approximates
//! `max(x)` by `Σ xᵢ·e^(xᵢ/γ) / Σ e^(xᵢ/γ)` and `min` symmetrically; the net
//! wirelength is `(max−min)` in each axis. Unlike LSE it is exact for 2-pin
//! nets as γ→0 and has bounded error. Per-net weights implement the
//! net-weighting objective of Eq. (4).
//!
//! [`WirelengthModel::wa_gradient_into`] is the hot-path form. It runs in
//! two passes, both over fixed-size chunks so results are bit-for-bit
//! identical across pool widths:
//!
//! 1. **Scatter (parallel over net chunks)** — each chunk of [`NET_CHUNK`]
//!    nets writes per-pin gradients into its own disjoint range of a
//!    pin-indexed scratch array (struct-of-arrays net CSR, streamed in
//!    order).
//! 2. **Gather (parallel over cell chunks)** — a static cell → pin-slot
//!    transpose CSR lets each cell sum its pins' contributions in a fixed
//!    order, writing the dense gradient directly.
//!
//! Unlike the previous per-thread full-gradient-image design, the scratch
//! footprint is O(pins), not O(threads × cells), and no cross-thread
//! reduction of dense images is needed — the layout streams at 1M cells.

use dtp_netlist::Netlist;
use rayon::chunks::chunk_count;
use rayon::prelude::*;

/// Nets per parallel work item in the scatter pass. Fixed — not derived from
/// the pool width — so per-chunk sums fold identically at any thread count.
const NET_CHUNK: usize = 1024;

/// Cells per parallel work item in the gather pass.
const CELL_CHUNK: usize = 4096;

/// Precomputed net → pin structure for fast wirelength evaluation, in
/// struct-of-arrays form plus a cell → pin-slot transpose.
///
/// Clock nets are excluded (they are ideal in this flow and their huge fanout
/// would dominate the wirelength objective meaninglessly).
#[derive(Clone, Debug)]
pub struct WirelengthModel {
    /// Owning cell per pin slot; pins of net `e` occupy slots
    /// `net_start[e]..net_start[e+1]` (CSR).
    pin_cell: Vec<u32>,
    /// Pin offset from the cell origin, x component, per slot.
    pin_dx: Vec<f64>,
    /// Pin offset from the cell origin, y component, per slot.
    pin_dy: Vec<f64>,
    net_start: Vec<u32>,
    /// Map from model net index to original netlist net index.
    net_index: Vec<u32>,
    /// Pin-slot offset of every `NET_CHUNK`-net boundary (`chunks + 1`
    /// entries): the scatter pass hands chunk `ci` the exact pin range
    /// `chunk_pin_start[ci]..chunk_pin_start[ci+1]` via `par_chunks_mut_at`.
    chunk_pin_start: Vec<u32>,
    /// Transpose CSR: pin slots of cell `c` (ascending) are
    /// `cell_slots[cell_start[c]..cell_start[c+1]]`.
    cell_start: Vec<u32>,
    cell_slots: Vec<u32>,
    num_cells: usize,
}

/// Per-net-chunk working buffers: the chunk's weighted wirelength partial
/// plus the per-net axis working arrays.
#[derive(Clone, Debug, Default)]
struct WlAxisBufs {
    wl: f64,
    coords: Vec<f64>,
    ep: Vec<f64>,
    em: Vec<f64>,
    grads: Vec<f64>,
}

/// Reusable intermediates for [`WirelengthModel::wa_gradient_into`]. Buffers
/// grow on first use; steady-state evaluations allocate nothing.
#[derive(Clone, Debug, Default)]
pub struct WirelengthScratch {
    /// Per-pin-slot gradient contributions (x / y), written disjointly by
    /// the scatter pass and read by the gather pass.
    pin_gx: Vec<f64>,
    pin_gy: Vec<f64>,
    axis: Vec<WlAxisBufs>,
}

impl WirelengthScratch {
    /// Creates an empty scratch; buffers are sized lazily on first use.
    pub fn new() -> WirelengthScratch {
        WirelengthScratch::default()
    }
}

/// Resizes without preserving contents.
fn ensure_len(v: &mut Vec<f64>, len: usize) {
    v.clear();
    v.resize(len, 0.0);
}

impl WirelengthModel {
    /// Builds the model from a netlist.
    pub fn new(nl: &Netlist) -> WirelengthModel {
        let mut pin_cell = Vec::new();
        let mut pin_dx = Vec::new();
        let mut pin_dy = Vec::new();
        let mut net_start = vec![0u32];
        let mut net_index = Vec::new();
        for net_id in nl.net_ids() {
            let net = nl.net(net_id);
            if net.is_clock() || net.degree() < 2 {
                continue;
            }
            for &p in net.pins() {
                let pin = nl.pin(p);
                let offset = nl.pin_spec(p).offset;
                pin_cell.push(pin.cell().index() as u32);
                pin_dx.push(offset.x);
                pin_dy.push(offset.y);
            }
            net_start.push(pin_cell.len() as u32);
            net_index.push(net_id.index() as u32);
        }

        let nets = net_index.len();
        let chunks = chunk_count(nets, NET_CHUNK);
        let chunk_pin_start: Vec<u32> =
            (0..=chunks).map(|ci| net_start[(ci * NET_CHUNK).min(nets)]).collect();

        // Cell → pin-slot transpose by counting sort; filling in slot order
        // leaves each cell's slot list ascending (deterministic gather).
        let num_cells = nl.num_cells();
        let mut cell_start = vec![0u32; num_cells + 1];
        for &c in &pin_cell {
            cell_start[c as usize + 1] += 1;
        }
        for c in 0..num_cells {
            cell_start[c + 1] += cell_start[c];
        }
        let mut cursor = cell_start.clone();
        let mut cell_slots = vec![0u32; pin_cell.len()];
        for (slot, &c) in pin_cell.iter().enumerate() {
            cell_slots[cursor[c as usize] as usize] = slot as u32;
            cursor[c as usize] += 1;
        }

        WirelengthModel {
            pin_cell,
            pin_dx,
            pin_dy,
            net_start,
            net_index,
            chunk_pin_start,
            cell_start,
            cell_slots,
            num_cells,
        }
    }

    /// Number of nets in the model.
    pub fn num_nets(&self) -> usize {
        self.net_index.len()
    }

    /// Original netlist index of model net `e`.
    pub fn net_index(&self, e: usize) -> usize {
        self.net_index[e] as usize
    }

    /// Exact half-perimeter wirelength at cell positions `(xs, ys)`
    /// (lower-left corners). Per-chunk partials are folded in chunk order,
    /// so the value is independent of the pool width.
    pub fn hpwl(&self, xs: &[f64], ys: &[f64]) -> f64 {
        let nets = self.num_nets();
        let partials: Vec<f64> = (0..chunk_count(nets, NET_CHUNK))
            .into_par_iter()
            .map(|ci| {
                let lo = ci * NET_CHUNK;
                let hi = (lo + NET_CHUNK).min(nets);
                let mut acc = 0.0;
                for e in lo..hi {
                    let mut xmin = f64::INFINITY;
                    let mut xmax = f64::NEG_INFINITY;
                    let mut ymin = f64::INFINITY;
                    let mut ymax = f64::NEG_INFINITY;
                    for s in self.net_start[e] as usize..self.net_start[e + 1] as usize {
                        let x = xs[self.pin_cell[s] as usize] + self.pin_dx[s];
                        let y = ys[self.pin_cell[s] as usize] + self.pin_dy[s];
                        xmin = xmin.min(x);
                        xmax = xmax.max(x);
                        ymin = ymin.min(y);
                        ymax = ymax.max(y);
                    }
                    acc += (xmax - xmin) + (ymax - ymin);
                }
                acc
            })
            .collect();
        partials.iter().sum()
    }

    /// Weighted-average smooth wirelength and its gradient with respect to
    /// cell positions. Allocating convenience wrapper over
    /// [`WirelengthModel::wa_gradient_into`] (bit-for-bit identical results).
    ///
    /// `gamma` is the WA smoothing parameter (same length unit as positions);
    /// `weights`, when given, scales each model net's contribution (Eq. 4).
    ///
    /// Returns `(wirelength, grad_x, grad_y)`.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is provided with the wrong length.
    pub fn wa_gradient(
        &self,
        xs: &[f64],
        ys: &[f64],
        gamma: f64,
        weights: Option<&[f64]>,
    ) -> (f64, Vec<f64>, Vec<f64>) {
        let mut gx = Vec::new();
        let mut gy = Vec::new();
        let wl = self.wa_gradient_into(
            xs,
            ys,
            gamma,
            weights,
            &mut WirelengthScratch::new(),
            &mut gx,
            &mut gy,
        );
        (wl, gx, gy)
    }

    /// Weighted-average smooth wirelength with gradients written into reused
    /// vectors; every intermediate lives in caller-owned `scratch`, so
    /// steady-state calls perform zero heap allocations.
    ///
    /// Returns the (weighted) smooth wirelength.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is provided with the wrong length.
    #[allow(clippy::too_many_arguments)]
    pub fn wa_gradient_into(
        &self,
        xs: &[f64],
        ys: &[f64],
        gamma: f64,
        weights: Option<&[f64]>,
        scratch: &mut WirelengthScratch,
        grad_x: &mut Vec<f64>,
        grad_y: &mut Vec<f64>,
    ) -> f64 {
        if let Some(w) = weights {
            assert_eq!(w.len(), self.num_nets(), "one weight per model net");
        }
        let nets = self.num_nets();
        let n_pins = self.pin_cell.len();
        let chunks = chunk_count(nets, NET_CHUNK);
        // Every pin slot is overwritten by exactly one net, so a plain
        // resize (no-op in steady state) is enough.
        if scratch.pin_gx.len() != n_pins {
            scratch.pin_gx.resize(n_pins, 0.0);
            scratch.pin_gy.resize(n_pins, 0.0);
        }
        scratch.axis.resize_with(chunks, WlAxisBufs::default);

        // Scatter: each net chunk writes its pins' gradients into its own
        // disjoint pin-slot range (exact bounds via `par_chunks_mut_at`).
        scratch
            .pin_gx
            .par_chunks_mut_at(&self.chunk_pin_start)
            .zip(scratch.pin_gy.par_chunks_mut_at(&self.chunk_pin_start))
            .zip(scratch.axis.par_chunks_mut(1))
            .enumerate()
            .for_each(|(ci, ((pgx, pgy), st))| {
                let st = &mut st[0];
                st.wl = 0.0;
                let lo = ci * NET_CHUNK;
                let hi = (lo + NET_CHUNK).min(nets);
                let pin_base = self.chunk_pin_start[ci] as usize;
                for e in lo..hi {
                    let w = weights.map_or(1.0, |w| w[e]);
                    let s = self.net_start[e] as usize;
                    let t = self.net_start[e + 1] as usize;
                    // x axis.
                    st.coords.clear();
                    for slot in s..t {
                        st.coords
                            .push(xs[self.pin_cell[slot] as usize] + self.pin_dx[slot]);
                    }
                    let wl =
                        wa_axis_into(&st.coords, gamma, &mut st.ep, &mut st.em, &mut st.grads);
                    st.wl += w * wl;
                    for k in 0..t - s {
                        pgx[s - pin_base + k] = w * st.grads[k];
                    }
                    // y axis.
                    st.coords.clear();
                    for slot in s..t {
                        st.coords
                            .push(ys[self.pin_cell[slot] as usize] + self.pin_dy[slot]);
                    }
                    let wl =
                        wa_axis_into(&st.coords, gamma, &mut st.ep, &mut st.em, &mut st.grads);
                    st.wl += w * wl;
                    for k in 0..t - s {
                        pgy[s - pin_base + k] = w * st.grads[k];
                    }
                }
            });

        // Gather: each cell sums its pin slots in ascending slot order via
        // the static transpose — elementwise over cells, so chunking cannot
        // change the result.
        let n_cells = self.num_cells;
        ensure_len(grad_x, n_cells);
        ensure_len(grad_y, n_cells);
        let (pin_gx, pin_gy) = (&scratch.pin_gx, &scratch.pin_gy);
        grad_x
            .par_chunks_mut(CELL_CHUNK)
            .zip(grad_y.par_chunks_mut(CELL_CHUNK))
            .enumerate()
            .for_each(|(bi, (gxc, gyc))| {
                let base = bi * CELL_CHUNK;
                for k in 0..gxc.len() {
                    let c = base + k;
                    let mut sx = 0.0;
                    let mut sy = 0.0;
                    for s in self.cell_start[c] as usize..self.cell_start[c + 1] as usize {
                        let slot = self.cell_slots[s] as usize;
                        sx += pin_gx[slot];
                        sy += pin_gy[slot];
                    }
                    gxc[k] = sx;
                    gyc[k] = sy;
                }
            });
        // Chunk-ordered fold of the per-chunk wirelength partials.
        scratch.axis.iter().map(|a| a.wl).sum()
    }
}

/// WA smooth length along one axis; per-pin gradients land in `grads`. The
/// exponential buffers are caller-owned so repeated calls don't allocate.
fn wa_axis_into(
    xs: &[f64],
    gamma: f64,
    ep: &mut Vec<f64>,
    em: &mut Vec<f64>,
    grads: &mut Vec<f64>,
) -> f64 {
    let xmax = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let xmin = xs.iter().cloned().fold(f64::INFINITY, f64::min);
    // Stabilized exponentials.
    ep.clear();
    em.clear();
    for &x in xs {
        ep.push(((x - xmax) / gamma).exp());
        em.push((-(x - xmin) / gamma).exp());
    }
    let sp: f64 = ep.iter().sum();
    let sm: f64 = em.iter().sum();
    let sxp: f64 = xs.iter().zip(ep.iter()).map(|(&x, &e)| x * e).sum();
    let sxm: f64 = xs.iter().zip(em.iter()).map(|(&x, &e)| x * e).sum();
    let wa_max = sxp / sp;
    let wa_min = sxm / sm;
    grads.clear();
    for (k, &x) in xs.iter().enumerate() {
        // d(wa_max)/dx_k = e_k (1 + (x_k − wa_max)/γ) / sp
        let gp = ep[k] * (1.0 + (x - wa_max) / gamma) / sp;
        let gm = em[k] * (1.0 - (x - wa_min) / gamma) / sm;
        grads.push(gp - gm);
    }
    wa_max - wa_min
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtp_netlist::generate::{generate, GeneratorConfig};

    fn wa_axis(coords: impl Iterator<Item = f64>, gamma: f64) -> (f64, Vec<f64>) {
        let xs: Vec<f64> = coords.collect();
        let mut ep = Vec::new();
        let mut em = Vec::new();
        let mut grads = Vec::new();
        let wl = wa_axis_into(&xs, gamma, &mut ep, &mut em, &mut grads);
        (wl, grads)
    }

    fn model() -> (dtp_netlist::Design, WirelengthModel) {
        let d = generate(&GeneratorConfig::named("wl", 150)).unwrap();
        let m = WirelengthModel::new(&d.netlist);
        (d, m)
    }

    #[test]
    fn hpwl_matches_bounding_boxes() {
        let (d, m) = model();
        let (xs, ys) = d.netlist.positions();
        let hpwl = m.hpwl(&xs, &ys);
        // Independent computation via the netlist API.
        let mut expect = 0.0;
        for net_id in d.netlist.net_ids() {
            let net = d.netlist.net(net_id);
            if net.is_clock() || net.degree() < 2 {
                continue;
            }
            let bbox = dtp_netlist::Rect::bounding(
                net.pins().iter().map(|&p| d.netlist.pin_position(p)),
            )
            .unwrap();
            expect += bbox.half_perimeter();
        }
        assert!((hpwl - expect).abs() < 1e-6, "{hpwl} vs {expect}");
    }

    #[test]
    fn wa_upper_bounds_hpwl_and_converges() {
        let (d, m) = model();
        let (xs, ys) = d.netlist.positions();
        let hpwl = m.hpwl(&xs, &ys);
        let (wa_tight, _, _) = m.wa_gradient(&xs, &ys, 0.01, None);
        // WA underestimates HPWL slightly; at tiny gamma they coincide.
        assert!((wa_tight - hpwl).abs() < 0.01 * hpwl);
        let (wa_loose, _, _) = m.wa_gradient(&xs, &ys, 10.0, None);
        assert!((wa_loose - hpwl).abs() < 0.5 * hpwl);
    }

    #[test]
    fn wa_gradient_matches_finite_difference() {
        let (d, m) = model();
        let (mut xs, mut ys) = d.netlist.positions();
        let gamma = 2.0;
        let (_, gx, gy) = m.wa_gradient(&xs, &ys, gamma, None);
        let h = 1e-6;
        // Check several cells.
        for c in (0..xs.len()).step_by(xs.len() / 10 + 1) {
            let x0 = xs[c];
            xs[c] = x0 + h;
            let fp = m.wa_gradient(&xs, &ys, gamma, None).0;
            xs[c] = x0 - h;
            let fm = m.wa_gradient(&xs, &ys, gamma, None).0;
            xs[c] = x0;
            let num = (fp - fm) / (2.0 * h);
            assert!((gx[c] - num).abs() < 1e-5 * (1.0 + num.abs()), "cell {c}: {} vs {num}", gx[c]);

            let y0 = ys[c];
            ys[c] = y0 + h;
            let fp = m.wa_gradient(&xs, &ys, gamma, None).0;
            ys[c] = y0 - h;
            let fm = m.wa_gradient(&xs, &ys, gamma, None).0;
            ys[c] = y0;
            let num = (fp - fm) / (2.0 * h);
            assert!((gy[c] - num).abs() < 1e-5 * (1.0 + num.abs()));
        }
    }

    #[test]
    fn wa_gradient_into_is_bitwise_identical() {
        let (d, m) = model();
        let (xs, ys) = d.netlist.positions();
        let (wl, gx, gy) = m.wa_gradient(&xs, &ys, 2.0, None);
        let mut scratch = WirelengthScratch::new();
        let mut gx2 = Vec::new();
        let mut gy2 = Vec::new();
        // Run twice through the same scratch so buffer reuse is exercised.
        let _ = m.wa_gradient_into(&xs, &ys, 2.0, None, &mut scratch, &mut gx2, &mut gy2);
        let wl2 = m.wa_gradient_into(&xs, &ys, 2.0, None, &mut scratch, &mut gx2, &mut gy2);
        assert_eq!(wl, wl2);
        assert_eq!(gx, gx2);
        assert_eq!(gy, gy2);
    }

    #[test]
    fn weights_scale_gradients() {
        let (d, m) = model();
        let (xs, ys) = d.netlist.positions();
        let w1 = vec![1.0; m.num_nets()];
        let w2 = vec![2.0; m.num_nets()];
        let (f1, g1x, _) = m.wa_gradient(&xs, &ys, 2.0, Some(&w1));
        let (f2, g2x, _) = m.wa_gradient(&xs, &ys, 2.0, Some(&w2));
        assert!((f2 - 2.0 * f1).abs() < 1e-9 * f1.abs());
        for (a, b) in g1x.iter().zip(&g2x) {
            assert!((b - 2.0 * a).abs() < 1e-12 + 1e-9 * a.abs());
        }
    }

    #[test]
    fn clock_nets_excluded() {
        let (d, m) = model();
        for e in 0..m.num_nets() {
            let ni = dtp_netlist::NetId::new(m.net_index(e));
            assert!(!d.netlist.net(ni).is_clock());
        }
    }

    #[test]
    fn two_pin_wa_gradient_sign() {
        // For a 2-pin net, the gradient pulls pins together.
        let (_, grads) = wa_axis([0.0, 10.0].into_iter(), 1.0);
        assert!(grads[0] < 0.0, "left pin pulled right (negative direction grad means moving +x reduces)");
        assert!(grads[1] > 0.0);
    }
}
