//! Abacus legalization: row-based legalization that minimizes total
//! quadratic displacement by clustering (Spindler et al., ISPD 2008).
//!
//! Cells are inserted in increasing x; within a row, overlapping cells are
//! merged into *clusters* whose optimal position is the weighted mean of
//! their members' targets, solved in closed form — which is what makes
//! Abacus displace noticeably less than the greedy Tetris frontier for
//! dense rows. Each cell trials a window of rows around its target y and
//! commits to the cheapest.
//!
//! At scale the row loop runs *band-parallel*: rows are split into
//! independent bands of [`AbacusLegalizer::with_band_rows`] rows each, cells
//! are partitioned to bands by target row, and every band runs the classic
//! insertion concurrently with its search window capped at the band edges.
//! Cells no band row accepts are deferred to a serial full-row
//! reconciliation pass, which preserves the never-fails guarantee. The band
//! count derives from the row count alone, so results are bit-for-bit
//! identical across thread counts; designs under 64 rows use a single band,
//! which is exactly the classic serial algorithm.

use dtp_netlist::{CellId, Design};
use rayon::prelude::*;

/// One cluster in a row: cells `cells[first..last]` packed abutting,
/// starting at `x`.
#[derive(Clone, Debug)]
struct Cluster {
    /// Total weight (cell count; unit weights).
    e: f64,
    /// Σ (target − offset-in-cluster): the optimizer's linear term.
    q: f64,
    /// Total width.
    w: f64,
    /// Current position of the cluster start.
    x: f64,
    /// Index of the first cell of this cluster in the row's cell list.
    first: usize,
}

/// Per-row state: committed cells (in x order) and the cluster stack.
#[derive(Clone, Debug, Default)]
struct RowState {
    cells: Vec<(CellId, f64, f64)>, // (cell, width, target x)
    clusters: Vec<Cluster>,
    /// Committed site-quantized width (capacity bookkeeping).
    used: f64,
}

impl RowState {
    /// Appends a cell and re-clusters; returns nothing (positions are
    /// recovered at the end). `x_min`/`x_max` bound the row.
    fn push(&mut self, cell: CellId, width: f64, target: f64, x_min: f64, x_max: f64) {
        self.used += width;
        let first = self.cells.len();
        self.cells.push((cell, width, target));
        let mut c = Cluster { e: 1.0, q: target, w: width, x: 0.0, first };
        c.x = (c.q / c.e).clamp(x_min, (x_max - c.w).max(x_min));
        // Merge while overlapping the previous cluster.
        while let Some(prev) = self.clusters.last() {
            if prev.x + prev.w <= c.x + 1e-12 {
                break;
            }
            let prev = self.clusters.pop().expect("checked non-empty");
            // Standard Abacus merge: the appended cluster's targets shift by
            // the predecessor's width.
            let merged = Cluster {
                e: prev.e + c.e,
                q: prev.q + c.q - c.e * prev.w,
                w: prev.w + c.w,
                x: 0.0,
                first: prev.first,
            };
            c = merged;
            c.x = (c.q / c.e).clamp(x_min, (x_max - c.w).max(x_min));
        }
        self.clusters.push(c);
    }

    /// Cost of placing `width`/`target` into this row *without* committing:
    /// simulates the merge cascade by walking the cluster stack backwards.
    /// Allocation-free — the popped clusters are never revisited, so locals
    /// replace the old per-trial stack copy (bit-identical arithmetic).
    fn trial_cost(&self, width: f64, target: f64, x_min: f64, x_max: f64) -> f64 {
        // Hard capacity guard: merging can push earlier cells out of the row
        // even when the new cell itself fits, so never exceed the row width.
        if self.used + width > (x_max - x_min) + 1e-9 {
            return f64::INFINITY;
        }
        let mut e = 1.0f64;
        let mut q = target;
        let mut w = width;
        let mut x = (q / e).clamp(x_min, (x_max - w).max(x_min));
        for prev in self.clusters.iter().rev() {
            if prev.x + prev.w <= x + 1e-12 {
                break;
            }
            q = prev.q + q - e * prev.w;
            e += prev.e;
            w += prev.w;
            x = (q / e).clamp(x_min, (x_max - w).max(x_min));
        }
        // The new cell sits at the end of the merged cluster.
        let cell_x = x + w - width;
        if cell_x + width > x_max + 1e-9 || cell_x < x_min - 1e-9 {
            return f64::INFINITY;
        }
        (cell_x - target).abs()
    }

    /// Final x positions per committed cell.
    fn positions(&self) -> Vec<(CellId, f64)> {
        let mut out = Vec::with_capacity(self.cells.len());
        for (k, cluster) in self.clusters.iter().enumerate() {
            let last = self
                .clusters
                .get(k + 1)
                .map_or(self.cells.len(), |next| next.first);
            let mut x = cluster.x;
            for &(cell, w, _) in &self.cells[cluster.first..last] {
                out.push((cell, x));
                x += w;
            }
        }
        out
    }
}

/// The Abacus legalizer.
#[derive(Clone, Debug)]
pub struct AbacusLegalizer {
    row_y: Vec<f64>,
    x_min: f64,
    x_max: f64,
    site: f64,
    /// How many rows above/below the target row to trial.
    window: usize,
    /// Rows per parallel band; 0 = auto (32 for designs with ≥ 64 rows,
    /// otherwise a single band — the classic serial algorithm).
    band_rows: usize,
}

impl AbacusLegalizer {
    /// Builds the legalizer from the design's rows.
    ///
    /// # Panics
    ///
    /// Panics if the design has no rows.
    pub fn new(design: &Design) -> AbacusLegalizer {
        assert!(!design.rows.is_empty(), "design has no rows");
        AbacusLegalizer {
            row_y: design.rows.iter().map(|r| r.y).collect(),
            x_min: design.rows[0].x_min,
            x_max: design.rows[0].x_max,
            site: design.rows[0].site_width,
            window: 6,
            band_rows: 0,
        }
    }

    /// Overrides the parallel band height (rows per band); 0 restores the
    /// automatic policy. The result depends only on this value and the
    /// design, never on the thread count.
    #[must_use]
    pub fn with_band_rows(mut self, band_rows: usize) -> AbacusLegalizer {
        self.band_rows = band_rows;
        self
    }

    fn effective_band_rows(&self) -> usize {
        if self.band_rows > 0 {
            self.band_rows
        } else if self.row_y.len() >= 64 {
            32
        } else {
            self.row_y.len()
        }
    }

    /// Number of row bands the legalizer will partition the core into
    /// (1 = a single serial scan). Depends only on the band policy and the
    /// design, never on the thread count; the flow reports it as the
    /// `legalize_bands` gauge.
    pub fn bands(&self) -> usize {
        self.row_y.len().div_ceil(self.effective_band_rows().max(1)).max(1)
    }

    /// Legalizes `(xs, ys)` in place; returns `(total, max)` displacement.
    ///
    /// # Panics
    ///
    /// Panics if a cell fits in no trialled row (pathologically full core).
    pub fn legalize(&self, design: &Design, xs: &mut [f64], ys: &mut [f64]) -> (f64, f64) {
        let nl = &design.netlist;
        let row_h = design.row_height();
        let n_rows = self.row_y.len();
        let mut order: Vec<CellId> = nl.movable_cells().collect();
        order.sort_by(|&a, &b| {
            xs[a.index()]
                .partial_cmp(&xs[b.index()])
                .expect("positions are finite")
        });
        let band_rows = self.effective_band_rows();
        let bands = n_rows.div_ceil(band_rows);
        let target_row = |ty: f64| {
            (((ty - self.row_y[0]) / row_h).round() as i64).clamp(0, n_rows as i64 - 1)
                as usize
        };
        // Partition cells to bands by target row, preserving the global x
        // order within each band.
        let mut band_members: Vec<Vec<CellId>> = vec![Vec::new(); bands];
        for &c in &order {
            band_members[target_row(ys[c.index()]) / band_rows].push(c);
        }

        // Band-parallel insertion: each band owns a disjoint row range and
        // runs the classic algorithm with its window capped at band edges.
        let mut rows: Vec<RowState> = vec![RowState::default(); n_rows];
        let mut deferred: Vec<Vec<CellId>> = vec![Vec::new(); bands];
        let (xs_r, ys_r) = (&*xs, &*ys);
        rows.par_chunks_mut(band_rows)
            .zip(deferred.par_chunks_mut(1))
            .zip(band_members.par_chunks(1))
            .enumerate()
            .for_each(|(bi, ((band, defer), mems))| {
                let defer = &mut defer[0];
                let band_lo = bi * band_rows;
                let band_hi = (band_lo + band_rows).min(n_rows);
                for &c in &mems[0] {
                    let i = c.index();
                    // Site-quantized width: keeps the capacity guard and the
                    // final snapping consistent.
                    let w = (nl.class_of(c).width() / self.site).ceil() * self.site;
                    let (tx, ty) = (xs_r[i], ys_r[i]);
                    let tr = target_row(ty);
                    let mut best: Option<(f64, usize)> = None;
                    // Expand the window (within the band) until a row accepts.
                    let mut window = self.window;
                    loop {
                        let lo = tr.saturating_sub(window).max(band_lo);
                        let hi = (tr + window + 1).min(band_hi);
                        for r in lo..hi {
                            let dy = (self.row_y[r] - ty).abs();
                            if let Some((bc, _)) = best {
                                if dy >= bc {
                                    continue; // zero x-cost cannot beat this
                                }
                            }
                            let dx =
                                band[r - band_lo].trial_cost(w, tx, self.x_min, self.x_max);
                            let cost = dx + dy;
                            if cost.is_finite() && best.is_none_or(|(bc, _)| cost < bc) {
                                best = Some((cost, r));
                            }
                        }
                        if best.is_some() || (lo == band_lo && hi == band_hi) {
                            break;
                        }
                        window *= 2;
                    }
                    match best {
                        Some((_, r)) => {
                            band[r - band_lo].push(c, w, tx, self.x_min, self.x_max);
                        }
                        None => defer.push(c),
                    }
                }
            });

        // Serial reconciliation: cells whose whole band was full trial every
        // row (deterministic band-then-x order, independent of threads).
        for defer in &deferred {
            for &c in defer {
                let i = c.index();
                let w = (nl.class_of(c).width() / self.site).ceil() * self.site;
                let (tx, ty) = (xs[i], ys[i]);
                let tr = target_row(ty);
                let mut best: Option<(f64, usize)> = None;
                let mut window = self.window;
                while best.is_none() {
                    let lo = tr.saturating_sub(window);
                    let hi = (tr + window + 1).min(n_rows);
                    for (r, row) in rows.iter().enumerate().take(hi).skip(lo) {
                        let dy = (self.row_y[r] - ty).abs();
                        if let Some((bc, _)) = best {
                            if dy >= bc {
                                continue;
                            }
                        }
                        let dx = row.trial_cost(w, tx, self.x_min, self.x_max);
                        let cost = dx + dy;
                        if cost.is_finite() && best.is_none_or(|(bc, _)| cost < bc) {
                            best = Some((cost, r));
                        }
                    }
                    if lo == 0 && hi == n_rows {
                        break;
                    }
                    window *= 2;
                }
                let (_, row) = best.unwrap_or_else(|| panic!("no row accepts cell {c:?}"));
                rows[row].push(c, w, tx, self.x_min, self.x_max);
            }
        }

        // Commit positions, snapping to sites left-to-right. A suffix-width
        // clamp guarantees the remaining cells of the row always fit, so
        // rounding can never push a cell past the row end.
        let mut total = 0.0f64;
        let mut max_disp = 0.0f64;
        for (r, row) in rows.iter().enumerate() {
            let placed = row.positions();
            let widths: Vec<f64> = placed
                .iter()
                .map(|&(cell, _)| {
                    (design.netlist.class_of(cell).width() / self.site).ceil() * self.site
                })
                .collect();
            let mut suffix = vec![0.0; placed.len() + 1];
            for k in (0..placed.len()).rev() {
                suffix[k] = suffix[k + 1] + widths[k];
            }
            let mut cursor = self.x_min;
            for (k, &(cell, x)) in placed.iter().enumerate() {
                let i = cell.index();
                let latest = ((self.x_max - suffix[k]) / self.site + 1e-9).floor() * self.site;
                let snapped = ((x / self.site).round() * self.site)
                    .min(latest)
                    .max(cursor);
                let disp = (snapped - xs[i]).abs() + (self.row_y[r] - ys[i]).abs();
                total += disp;
                max_disp = max_disp.max(disp);
                xs[i] = snapped;
                ys[i] = self.row_y[r];
                cursor = snapped + widths[k];
            }
        }
        (total, max_disp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::legalize::{check_legal, Legalizer};
    use dtp_netlist::generate::{generate, GeneratorConfig};

    #[test]
    fn produces_legal_placement() {
        let d = generate(&GeneratorConfig::named("ab", 400)).unwrap();
        let (mut xs, mut ys) = d.netlist.positions();
        let (total, max) = AbacusLegalizer::new(&d).legalize(&d, &mut xs, &mut ys);
        assert!(total >= 0.0 && max >= 0.0);
        let violations = check_legal(&d, &xs, &ys);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn beats_or_matches_tetris_on_displacement() {
        // Abacus minimizes displacement via clustering; on a spread
        // placement it should not be substantially worse than Tetris, and is
        // typically better.
        let d = generate(&GeneratorConfig::named("ab2", 500)).unwrap();
        let (xs0, ys0) = d.netlist.positions();
        let mut xa = xs0.clone();
        let mut ya = ys0.clone();
        let (abacus_total, _) = AbacusLegalizer::new(&d).legalize(&d, &mut xa, &mut ya);
        let mut xt = xs0.clone();
        let mut yt = ys0.clone();
        let (tetris_total, _) = Legalizer::new(&d).legalize(&d, &mut xt, &mut yt);
        assert!(
            abacus_total <= tetris_total * 1.05,
            "abacus {abacus_total} vs tetris {tetris_total}"
        );
    }

    #[test]
    fn dense_row_clusters_share_space() {
        // Pile many cells onto one target row: Abacus must spill or pack
        // them legally.
        let d = generate(&GeneratorConfig::named("ab3", 200)).unwrap();
        let (mut xs, mut ys) = d.netlist.positions();
        let y_target = d.region.center().y;
        for c in d.netlist.movable_cells() {
            ys[c.index()] = y_target;
            xs[c.index()] = d.region.center().x;
        }
        AbacusLegalizer::new(&d).legalize(&d, &mut xs, &mut ys);
        let violations = check_legal(&d, &xs, &ys);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn deterministic() {
        let d = generate(&GeneratorConfig::named("ab4", 150)).unwrap();
        let (mut x1, mut y1) = d.netlist.positions();
        let (mut x2, mut y2) = d.netlist.positions();
        AbacusLegalizer::new(&d).legalize(&d, &mut x1, &mut y1);
        AbacusLegalizer::new(&d).legalize(&d, &mut x2, &mut y2);
        assert_eq!(x1, x2);
        assert_eq!(y1, y2);
    }
}
