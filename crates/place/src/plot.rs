//! SVG rendering of placements — the visual counterpart of the paper's
//! Figure 1. Cells can be colored uniformly, by density, or by a caller
//! supplied per-cell scalar (e.g. worst pin slack), which makes timing
//! hotspots visible at a glance.

use dtp_netlist::Design;
use std::fmt::Write as _;

/// Options for [`render_svg`].
#[derive(Clone, Debug)]
pub struct PlotOptions {
    /// Pixel width of the output; height follows the die aspect ratio.
    pub width_px: f64,
    /// Per-cell scalar in `[0, 1]` mapped to a cold→hot color ramp
    /// (`None` renders all cells in a neutral fill).
    pub heat: Option<Vec<f64>>,
    /// Draw the placement-row grid lines.
    pub draw_rows: bool,
    /// Plot title (rendered above the die).
    pub title: String,
}

impl Default for PlotOptions {
    fn default() -> Self {
        PlotOptions {
            width_px: 800.0,
            heat: None,
            draw_rows: false,
            title: String::new(),
        }
    }
}

/// Maps `t ∈ [0,1]` to a blue→red ramp.
fn heat_color(t: f64) -> String {
    let t = t.clamp(0.0, 1.0);
    let r = (40.0 + 215.0 * t) as u8;
    let g = (90.0 * (1.0 - t) + 40.0) as u8;
    let b = (200.0 * (1.0 - t) + 30.0) as u8;
    format!("#{r:02x}{g:02x}{b:02x}")
}

/// Renders the design's current cell positions (or the positions in
/// `xs`/`ys` when given) as an SVG string.
///
/// # Panics
///
/// Panics if `opts.heat` is provided with a length other than the cell count,
/// or if positions are provided with mismatched lengths.
pub fn render_svg(
    design: &Design,
    xs: Option<&[f64]>,
    ys: Option<&[f64]>,
    opts: &PlotOptions,
) -> String {
    let nl = &design.netlist;
    if let Some(h) = &opts.heat {
        assert_eq!(h.len(), nl.num_cells(), "one heat value per cell");
    }
    let (own_x, own_y);
    let (xs, ys) = match (xs, ys) {
        (Some(x), Some(y)) => (x, y),
        _ => {
            let (x, y) = nl.positions();
            own_x = x;
            own_y = y;
            (&own_x[..], &own_y[..])
        }
    };
    assert!(xs.len() >= nl.num_cells() && ys.len() >= nl.num_cells());

    let die = design.region;
    let scale = opts.width_px / die.width().max(1e-9);
    let h_px = die.height() * scale;
    let title_h = if opts.title.is_empty() { 0.0 } else { 24.0 };
    let mut svg = String::new();
    let _ = writeln!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{:.0}" height="{:.0}" viewBox="0 0 {:.0} {:.0}">"#,
        opts.width_px + 2.0,
        h_px + title_h + 2.0,
        opts.width_px + 2.0,
        h_px + title_h + 2.0
    );
    if !opts.title.is_empty() {
        let _ = writeln!(
            svg,
            r#"<text x="4" y="16" font-family="monospace" font-size="14">{}</text>"#,
            opts.title
        );
    }
    // Die outline.
    let _ = writeln!(
        svg,
        r##"<rect x="1" y="{:.1}" width="{:.1}" height="{:.1}" fill="#fafafa" stroke="#333"/>"##,
        title_h + 1.0,
        opts.width_px,
        h_px
    );
    // SVG y grows downward; flip so die yl is at the bottom.
    let ty = |y: f64| title_h + 1.0 + (die.yh - y) * scale;
    let tx = |x: f64| 1.0 + (x - die.xl) * scale;
    if opts.draw_rows {
        for row in &design.rows {
            let _ = writeln!(
                svg,
                r##"<line x1="{:.1}" y1="{:.2}" x2="{:.1}" y2="{:.2}" stroke="#ddd" stroke-width="0.5"/>"##,
                tx(row.x_min),
                ty(row.y),
                tx(row.x_max),
                ty(row.y)
            );
        }
    }
    for c in nl.cell_ids() {
        let i = c.index();
        let class = nl.class_of(c);
        let (w, h) = (class.width(), class.height());
        let fill = if nl.cell(c).is_fixed() {
            "#999999".to_owned()
        } else {
            match &opts.heat {
                Some(heat) => heat_color(heat[i]),
                None => "#5b8dd6".to_owned(),
            }
        };
        if w <= 0.0 || h <= 0.0 {
            // Zero-area ports: draw a small marker.
            let _ = writeln!(
                svg,
                r#"<circle cx="{:.2}" cy="{:.2}" r="2" fill="{fill}"/>"#,
                tx(xs[i]),
                ty(ys[i])
            );
        } else {
            let _ = writeln!(
                svg,
                r#"<rect x="{:.2}" y="{:.2}" width="{:.2}" height="{:.2}" fill="{fill}" fill-opacity="0.8" stroke="none"/>"#,
                tx(xs[i]),
                ty(ys[i] + h),
                w * scale,
                h * scale
            );
        }
    }
    svg.push_str("</svg>\n");
    svg
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtp_netlist::generate::{generate, GeneratorConfig};

    #[test]
    fn renders_well_formed_svg() {
        let d = generate(&GeneratorConfig::named("plot", 120)).unwrap();
        let svg = render_svg(&d, None, None, &PlotOptions::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        // One rect per movable cell + die outline; ports as circles.
        let rects = svg.matches("<rect").count();
        let movable = d.netlist.movable_cells().count();
        assert_eq!(rects, movable + 1);
        assert!(svg.matches("<circle").count() > 0);
    }

    #[test]
    fn heat_coloring_and_rows() {
        let d = generate(&GeneratorConfig::named("plot2", 60)).unwrap();
        let heat: Vec<f64> = (0..d.netlist.num_cells()).map(|i| i as f64 / 60.0).collect();
        let opts = PlotOptions {
            heat: Some(heat),
            draw_rows: true,
            title: "hotspots".into(),
            ..PlotOptions::default()
        };
        let svg = render_svg(&d, None, None, &opts);
        assert!(svg.contains("hotspots"));
        assert!(svg.matches("<line").count() >= d.rows.len());
        // A movable cell's heat color is present (fixed cells render gray).
        let movable = d.netlist.movable_cells().next().unwrap();
        let expect = heat_color(movable.index() as f64 / 60.0);
        assert!(svg.contains(&expect), "missing {expect}");
    }

    #[test]
    fn heat_color_ramp_ends() {
        // Cold end: blue-dominant; hot end: red-dominant.
        assert_eq!(heat_color(0.0), "#2882e6");
        assert_eq!(heat_color(1.0), "#ff281e");
        assert_eq!(heat_color(-5.0), heat_color(0.0)); // clamped
        assert_eq!(heat_color(7.0), heat_color(1.0));
    }

    #[test]
    #[should_panic(expected = "one heat value per cell")]
    fn wrong_heat_length_panics() {
        let d = generate(&GeneratorConfig::named("plot3", 40)).unwrap();
        let opts = PlotOptions { heat: Some(vec![0.5; 3]), ..PlotOptions::default() };
        let _ = render_svg(&d, None, None, &opts);
    }
}
