//! `dtp-trace` — forensics over the flow's schema-v2 JSONL flight recorder.
//!
//! The flow records its convergence behaviour (`dtp-obs` trace schema v2:
//! one header record, then per-iteration `iter`/`span` record pairs); this
//! crate reads those streams back and answers the questions the raw JSONL
//! cannot:
//!
//! * [`Trace::parse`] — strict, line-numbered parsing of a whole stream
//!   into a typed [`Trace`] (the `dtp trace validate` backend).
//! * [`diff`] — field-by-field comparison of two traces under per-metric
//!   absolute/relative [`Tolerances`], reporting the **first diverging
//!   iteration and field** (the `dtp trace diff` backend; its clean/dirty
//!   verdict drives the CI determinism gate).
//! * [`Trace::canonical_bytes`] — the byte-exact determinism fingerprint:
//!   the header (with execution-environment fields normalized away) plus
//!   every deterministic `iter` record, excluding the wall-clock `span`
//!   records. Two runs of the same config+seed must produce identical
//!   canonical bytes at any pool width; `dtp trace replay` asserts exactly
//!   this.
//! * [`report`] — a human-readable convergence summary: per-phase time
//!   table, per-V-cycle-level iteration/time breakdown, and windowed
//!   plateau/oscillation/divergence detection over the HPWL and overflow
//!   trajectories.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod diff;
mod report;

pub use diff::{diff, DiffReport, Divergence, Tolerances};
pub use report::report;

use dtp_obs::json::Value;
use dtp_obs::{trace, TraceHeader, TraceIter, TraceRecord, TraceSpan};

/// A fully parsed v2 trace: the header plus all iteration records.
#[derive(Clone, Debug)]
pub struct Trace {
    /// The run-identity header (first record of the stream).
    pub header: TraceHeader,
    /// Deterministic convergence records, in stream order (coarsest
    /// V-cycle level first for multilevel runs, then level 0).
    pub iters: Vec<TraceIter>,
    /// Wall-clock records, in stream order (parallel to `iters`).
    pub spans: Vec<TraceSpan>,
}

impl Trace {
    /// Parses a whole JSONL stream. Strict: the first record must be the
    /// header, exactly one header is allowed, every line must parse as a
    /// known record, and errors carry 1-based line numbers.
    ///
    /// # Errors
    ///
    /// Returns `"line N: <reason>"` for the first offending line, or a
    /// message about a missing header for structurally empty streams.
    pub fn parse(text: &str) -> Result<Trace, String> {
        let mut header: Option<TraceHeader> = None;
        let mut iters = Vec::new();
        let mut spans = Vec::new();
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let rec = trace::parse_record(line).map_err(|e| format!("line {}: {e}", i + 1))?;
            match rec {
                TraceRecord::Header(h) => {
                    if header.is_some() {
                        return Err(format!("line {}: duplicate header record", i + 1));
                    }
                    if !iters.is_empty() || !spans.is_empty() {
                        return Err(format!(
                            "line {}: header record after iteration records",
                            i + 1
                        ));
                    }
                    header = Some(*h);
                }
                TraceRecord::Iter(rec) => {
                    if header.is_none() {
                        return Err(format!("line {}: iter record before header", i + 1));
                    }
                    iters.push(rec);
                }
                TraceRecord::Span(rec) => {
                    if header.is_none() {
                        return Err(format!("line {}: span record before header", i + 1));
                    }
                    spans.push(rec);
                }
            }
        }
        let header = header.ok_or_else(|| "trace has no header record".to_string())?;
        Ok(Trace { header, iters, spans })
    }

    /// The determinism fingerprint: the header re-serialized with the
    /// execution-environment identity erased — `threads`, `pool_threads`,
    /// `host_threads` zeroed (in the top-level fields *and* the config's
    /// `threads` knob) and `source` dropped — followed by every `iter`
    /// record, byte-exact. `span` records (wall-clock) are excluded.
    ///
    /// The flow's determinism contract promises bit-identical placement
    /// trajectories across pool widths, so two runs of the same config and
    /// seed must produce identical canonical bytes at *any* thread count —
    /// the golden tests and `dtp trace replay` compare exactly this.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut header = self.header.clone();
        header.threads = 0;
        header.pool_threads = 0;
        header.host_threads = 0;
        header.source = None;
        for (k, v) in header.config.iter_mut() {
            if k == "threads" {
                *v = Value::Num(0.0);
            }
        }
        let mut out = header.to_json_line().into_bytes();
        for it in &self.iters {
            it.write_jsonl(&mut out).expect("Vec<u8> writes are infallible");
        }
        out
    }

    /// Total per-phase nanoseconds across all span records, in
    /// [`dtp_obs::Phase::ALL`] order.
    pub fn phase_totals(&self) -> [u64; dtp_obs::Phase::COUNT] {
        let mut totals = [0u64; dtp_obs::Phase::COUNT];
        for sp in &self.spans {
            for (t, ns) in totals.iter_mut().zip(sp.phase_ns.iter()) {
                *t += ns;
            }
        }
        totals
    }

    /// The distinct V-cycle levels present, in stream order of first
    /// appearance (coarsest first for multilevel traces, `[0]` for flat).
    pub fn levels(&self) -> Vec<u32> {
        let mut levels = Vec::new();
        for it in &self.iters {
            if !levels.contains(&it.level) {
                levels.push(it.level);
            }
        }
        levels
    }

    /// Re-serializes the full trace (header + iter/span records) exactly as
    /// the flow would emit it.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = self.header.to_json_line().into_bytes();
        let mut spans = self.spans.iter();
        for it in &self.iters {
            it.write_jsonl(&mut out).expect("Vec<u8> writes are infallible");
            if let Some(sp) = spans.next() {
                sp.write_jsonl(&mut out).expect("Vec<u8> writes are infallible");
            }
        }
        for sp in spans {
            sp.write_jsonl(&mut out).expect("Vec<u8> writes are infallible");
        }
        out
    }
}

#[cfg(test)]
pub(crate) fn sample_trace(iters: usize) -> Trace {
    use dtp_obs::Counter;
    let header = TraceHeader {
        schema: dtp_obs::TRACE_SCHEMA.to_string(),
        mode: "differentiable".to_string(),
        seed: 7,
        threads: 2,
        pool_threads: 2,
        host_threads: 8,
        design: "sbt".to_string(),
        cells: 100,
        nets: 90,
        pins: 300,
        region: [0.0, 0.0, 100.0, 100.0],
        clock_period: 5000.0,
        source: Some("sbt".to_string()),
        config: vec![
            ("max_iters".to_string(), Value::Num(iters as f64)),
            ("threads".to_string(), Value::Num(2.0)),
        ],
        mode_config: vec![("gamma".to_string(), Value::Num(100.0))],
    };
    let mut trace = Trace { header, iters: Vec::new(), spans: Vec::new() };
    for i in 0..iters {
        let mut counters = [0u64; Counter::COUNT];
        counters[Counter::Iterations.index()] = 1;
        trace.iters.push(TraceIter {
            iter: i as u64,
            level: 0,
            wl: 1000.0 - i as f64,
            hpwl: if i % 10 == 0 { 900.0 - i as f64 } else { f64::NAN },
            overflow: 1.0 / (1.0 + i as f64),
            lambda: 1e-4 * 1.05f64.powi(i as i32),
            step: 5.0,
            wns: f64::NAN,
            tns: f64::NAN,
            timing: false,
            counters,
        });
        let mut phase_ns = [0u64; dtp_obs::Phase::COUNT];
        phase_ns[dtp_obs::Phase::WirelengthGrad.index()] = 1000 + i as u64;
        trace.spans.push(TraceSpan { iter: i as u64, level: 0, phase_ns });
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_rejects_structural_errors() {
        let t = sample_trace(3);
        let text = String::from_utf8(t.to_bytes()).unwrap();
        // A valid stream parses.
        let parsed = Trace::parse(&text).expect("valid stream parses");
        assert_eq!(parsed.iters.len(), 3);
        assert_eq!(parsed.spans.len(), 3);
        // No header.
        let body: String = text.lines().skip(1).map(|l| format!("{l}\n")).collect();
        assert!(Trace::parse(&body).unwrap_err().contains("before header"));
        // Duplicate header.
        let twice = format!("{}{}", text.lines().next().unwrap(), format_args!("\n{text}"));
        assert!(Trace::parse(&twice).unwrap_err().contains("duplicate header"));
        // Garbage line gets a line number.
        let bad = format!("{text}not json\n");
        assert!(Trace::parse(&bad).unwrap_err().starts_with("line 8:"));
    }

    #[test]
    fn canonical_bytes_erase_environment_identity() {
        let t = sample_trace(2);
        let mut other = t.clone();
        other.header.pool_threads = 16;
        other.header.host_threads = 64;
        other.header.threads = 16;
        other.header.source = Some("elsewhere".to_string());
        other.header.config[1].1 = Value::Num(16.0);
        // Different wall-clock too: spans are excluded from canonical form.
        other.spans[0].phase_ns[0] = 999_999;
        assert_eq!(t.canonical_bytes(), other.canonical_bytes());
        // But a convergence difference shows.
        other.iters[1].wl += 0.5;
        assert_ne!(t.canonical_bytes(), other.canonical_bytes());
    }

    #[test]
    fn to_bytes_round_trips() {
        let t = sample_trace(4);
        let text = String::from_utf8(t.to_bytes()).unwrap();
        let back = Trace::parse(&text).unwrap();
        assert_eq!(back.to_bytes(), t.to_bytes());
        assert_eq!(back.levels(), vec![0]);
        let totals = back.phase_totals();
        assert_eq!(
            totals[dtp_obs::Phase::WirelengthGrad.index()],
            (1000 + 1001 + 1002 + 1003) as u64
        );
    }
}
