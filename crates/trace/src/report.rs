//! Human-readable convergence reports: the `dtp trace report` backend.
//!
//! [`report`] renders a parsed trace as a plain-text dossier: run identity,
//! per-V-cycle-level iteration/time breakdown, a per-phase wall-clock
//! table, and windowed pathology detection (plateau, oscillation,
//! divergence) over the recorded HPWL and overflow trajectories.

use crate::Trace;
use dtp_obs::Phase;

/// Sliding-window size for the pathology detectors. One window must fit in
/// the trace for a verdict; shorter traces report "trace too short".
const WINDOW: usize = 20;

/// First index (of the window *end*) where the trailing `window` values
/// span a relative range below `rel_eps` — the trajectory has flatlined
/// while the flow kept iterating.
pub fn detect_plateau(values: &[f64], window: usize, rel_eps: f64) -> Option<usize> {
    if window < 2 {
        return None;
    }
    for end in window..=values.len() {
        let w = &values[end - window..end];
        if w.iter().any(|v| !v.is_finite()) {
            continue;
        }
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for &v in w {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        let scale = lo.abs().max(hi.abs()).max(1e-12);
        if (hi - lo) / scale < rel_eps {
            return Some(end - 1);
        }
    }
    None
}

/// First index where at least `min_flips` successive-delta sign changes
/// occur inside a trailing window — the metric is bouncing, not settling.
pub fn detect_oscillation(values: &[f64], window: usize, min_flips: usize) -> Option<usize> {
    if window < 3 {
        return None;
    }
    for end in window..=values.len() {
        let w = &values[end - window..end];
        if w.iter().any(|v| !v.is_finite()) {
            continue;
        }
        let mut flips = 0usize;
        let mut prev_delta = 0.0f64;
        for pair in w.windows(2) {
            let delta = pair[1] - pair[0];
            if delta * prev_delta < 0.0 {
                flips += 1;
            }
            if delta != 0.0 {
                prev_delta = delta;
            }
        }
        if flips >= min_flips {
            return Some(end - 1);
        }
    }
    None
}

/// First index where the metric grew by more than `growth` (relative) over
/// a trailing window — the flow is moving away from its objective.
pub fn detect_divergence(values: &[f64], window: usize, growth: f64) -> Option<usize> {
    if window < 2 {
        return None;
    }
    for end in window..=values.len() {
        let w = &values[end - window..end];
        let (first, last) = (w[0], w[window - 1]);
        if !first.is_finite() || !last.is_finite() {
            continue;
        }
        let scale = first.abs().max(1e-12);
        if (last - first) / scale > growth {
            return Some(end - 1);
        }
    }
    None
}

fn fmt_ms(ns: u64) -> String {
    format!("{:.2}", ns as f64 / 1e6)
}

fn pathology_line(name: &str, values: &[f64], out: &mut String) {
    let finite = values.iter().filter(|v| v.is_finite()).count();
    if finite < WINDOW {
        out.push_str(&format!(
            "  {name:<10} trace too short for detection ({finite} finite samples, window {WINDOW})\n"
        ));
        return;
    }
    let mut verdicts = Vec::new();
    if let Some(i) = detect_divergence(values, WINDOW, 0.5) {
        verdicts.push(format!("DIVERGENCE by sample {i} (>50% growth inside a window)"));
    }
    if let Some(i) = detect_oscillation(values, WINDOW, WINDOW / 2) {
        verdicts.push(format!("oscillation by sample {i} ({}+ sign flips)", WINDOW / 2));
    }
    if let Some(i) = detect_plateau(values, WINDOW, 1e-4) {
        verdicts.push(format!("plateau from sample {i} (<0.01% relative range)"));
    }
    if verdicts.is_empty() {
        verdicts.push("monotone progress, no pathology".to_string());
    }
    out.push_str(&format!("  {name:<10} {}\n", verdicts.join("; ")));
}

/// Renders the full plain-text report for a parsed trace.
pub fn report(trace: &Trace) -> String {
    let h = &trace.header;
    let mut out = String::new();
    out.push_str(&format!(
        "trace report: {} ({} cells, {} nets, {} pins)\n",
        h.design, h.cells, h.nets, h.pins
    ));
    out.push_str(&format!(
        "  mode {}  seed {}  threads {} (pool {}, host {})  clock {} ps\n",
        h.mode, h.seed, h.threads, h.pool_threads, h.host_threads, h.clock_period
    ));
    if let Some(src) = &h.source {
        out.push_str(&format!("  source {src}\n"));
    }
    out.push_str(&format!(
        "  {} iteration record(s), {} span record(s)\n\n",
        trace.iters.len(),
        trace.spans.len()
    ));

    // Per-level breakdown (multilevel V-cycle forensics).
    let levels = trace.levels();
    if !levels.is_empty() {
        out.push_str("per-level breakdown (stream order, coarsest first):\n");
        out.push_str("  level  iters  time_ms  final_overflow  final_wl\n");
        for &lv in &levels {
            let iters: Vec<_> = trace.iters.iter().filter(|it| it.level == lv).collect();
            let ns: u64 = trace
                .spans
                .iter()
                .filter(|sp| sp.level == lv)
                .map(|sp| sp.phase_ns.iter().sum::<u64>())
                .sum();
            let last = iters.last().expect("level came from an iter record");
            let overflow = format!("{:.6}", last.overflow);
            let wl = format!("{:.4e}", last.wl);
            out.push_str(&format!(
                "  {:<5}  {:<5}  {:>7}  {overflow:<14}  {wl}\n",
                lv,
                iters.len(),
                fmt_ms(ns),
            ));
        }
        out.push('\n');
    }

    // Phase table, heaviest first.
    let totals = trace.phase_totals();
    let grand: u64 = totals.iter().sum();
    if grand > 0 {
        let mut rows: Vec<(Phase, u64)> = Phase::ALL
            .iter()
            .map(|&p| (p, totals[p.index()]))
            .filter(|&(_, ns)| ns > 0)
            .collect();
        rows.sort_by_key(|&(_, ns)| std::cmp::Reverse(ns));
        out.push_str("phase time (all levels):\n");
        out.push_str("  phase             time_ms     pct\n");
        for (p, ns) in rows {
            out.push_str(&format!(
                "  {:<16}  {:>8}  {:>5.1}%\n",
                p.name(),
                fmt_ms(ns),
                100.0 * ns as f64 / grand as f64
            ));
        }
        out.push_str(&format!("  total             {:>8}\n\n", fmt_ms(grand)));
    }

    // Pathology detection over the level-0 (finest) trajectory.
    let fine: Vec<_> = trace.iters.iter().filter(|it| it.level == 0).collect();
    let overflow: Vec<f64> = fine.iter().map(|it| it.overflow).collect();
    let hpwl: Vec<f64> = fine.iter().map(|it| it.hpwl).filter(|v| v.is_finite()).collect();
    let wl: Vec<f64> = fine.iter().map(|it| it.wl).collect();
    out.push_str(&format!("convergence pathology (level 0, window {WINDOW}):\n"));
    pathology_line("overflow", &overflow, &mut out);
    pathology_line("hpwl", &hpwl, &mut out);
    pathology_line("wl", &wl, &mut out);

    if let Some(last) = fine.last() {
        out.push_str(&format!(
            "\nfinal: overflow {:.6}  wl {:.4e}",
            last.overflow, last.wl
        ));
        if last.wns.is_finite() || last.tns.is_finite() {
            out.push_str(&format!("  wns {:.2}  tns {:.2}", last.wns, last.tns));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample_trace;

    #[test]
    fn plateau_detector_finds_flatlines_only() {
        let falling: Vec<f64> = (0..50).map(|i| 100.0 - i as f64).collect();
        assert_eq!(detect_plateau(&falling, 10, 1e-4), None);
        let mut flat = falling.clone();
        flat.extend(vec![50.0; 15]);
        let hit = detect_plateau(&flat, 10, 1e-4).expect("flat tail detected");
        assert!(hit >= 50, "detected inside the flat tail, got {hit}");
        // NaN-bearing windows are skipped, not misjudged.
        let mut with_nan = vec![f64::NAN; 5];
        with_nan.extend(vec![1.0; 12]);
        assert_eq!(detect_plateau(&with_nan, 10, 1e-4), Some(14));
    }

    #[test]
    fn oscillation_detector_needs_sign_flips() {
        let zigzag: Vec<f64> = (0..30).map(|i| if i % 2 == 0 { 1.0 } else { 2.0 }).collect();
        assert!(detect_oscillation(&zigzag, 10, 5).is_some());
        let ramp: Vec<f64> = (0..30).map(|i| i as f64).collect();
        assert_eq!(detect_oscillation(&ramp, 10, 5), None);
    }

    #[test]
    fn divergence_detector_needs_growth() {
        let blowup: Vec<f64> = (0..30).map(|i| 1.0f64 * 1.1f64.powi(i)).collect();
        assert!(detect_divergence(&blowup, 10, 0.5).is_some());
        let settling: Vec<f64> = (0..30).map(|i| 1.0 / (1.0 + i as f64)).collect();
        assert_eq!(detect_divergence(&settling, 10, 0.5), None);
    }

    #[test]
    fn report_renders_all_sections() {
        let t = sample_trace(30);
        let r = report(&t);
        assert!(r.contains("trace report: sbt"));
        assert!(r.contains("per-level breakdown"));
        assert!(r.contains("wirelength_grad"));
        assert!(r.contains("convergence pathology"));
        assert!(r.contains("final: overflow"));
        // 30 iters but only every 10th has finite HPWL → hpwl too short.
        assert!(r.contains("hpwl       trace too short"));
    }
}
