//! Tolerance-aware trace comparison: golden-diff forensics.
//!
//! [`diff`] walks two parsed traces record-by-record and reports every
//! class of disagreement, most importantly the **first diverging iteration
//! and field** — the forensic anchor for "when did run B stop tracking
//! run A". Counters and structural fields are always compared exactly;
//! the floating-point convergence metrics go through [`Tolerances`] so the
//! same machinery serves both the zero-tolerance CI determinism gate and
//! loose cross-version drift checks.

use crate::Trace;
use dtp_obs::{Counter, TraceHeader, TraceIter};

/// Per-metric absolute/relative tolerances for [`diff`].
///
/// A pair of values `a`, `b` for field `f` matches when both are NaN, or
/// `|a - b| <= abs(f) + rel(f) * max(|a|, |b|)`. Fields without an entry in
/// `per_field` fall back to `default_abs`/`default_rel`.
#[derive(Clone, Debug)]
pub struct Tolerances {
    /// Fallback absolute tolerance for fields without a per-field entry.
    pub default_abs: f64,
    /// Fallback relative tolerance for fields without a per-field entry.
    pub default_rel: f64,
    /// `(field, abs, rel)` overrides; field names match the JSON keys of
    /// the iter record (`wl`, `hpwl`, `overflow`, `lambda`, `step`, `wns`,
    /// `tns`).
    pub per_field: Vec<(String, f64, f64)>,
}

impl Tolerances {
    /// Exact comparison: every metric must match bit-for-bit (NaN == NaN).
    /// This is what the CI determinism gate and `dtp trace replay` use.
    pub fn zero() -> Tolerances {
        Tolerances { default_abs: 0.0, default_rel: 0.0, per_field: Vec::new() }
    }

    /// The `(abs, rel)` pair in effect for `field`.
    pub fn for_field(&self, field: &str) -> (f64, f64) {
        for (name, abs, rel) in &self.per_field {
            if name == field {
                return (*abs, *rel);
            }
        }
        (self.default_abs, self.default_rel)
    }

    fn matches(&self, field: &str, a: f64, b: f64) -> bool {
        if a.is_nan() && b.is_nan() {
            return true;
        }
        if a.is_nan() || b.is_nan() {
            return false;
        }
        if a == b {
            return true; // covers ±inf == ±inf
        }
        let (abs, rel) = self.for_field(field);
        (a - b).abs() <= abs + rel * a.abs().max(b.abs())
    }
}

impl Default for Tolerances {
    fn default() -> Tolerances {
        Tolerances::zero()
    }
}

/// The first record-level disagreement [`diff`] found.
#[derive(Clone, Debug, PartialEq)]
pub struct Divergence {
    /// 0-based index into the iter-record stream.
    pub index: usize,
    /// The `iter` field of the offending record (from trace A when records
    /// are missing in B).
    pub iter: u64,
    /// The V-cycle level of the offending record.
    pub level: u32,
    /// Which field diverged (`"wl"`, `"counters.sta_full"`, `"missing
    /// record"`, ...).
    pub field: String,
    /// Rendered value from trace A.
    pub a: String,
    /// Rendered value from trace B.
    pub b: String,
}

/// Everything [`diff`] learned about a pair of traces.
#[derive(Clone, Debug, Default)]
pub struct DiffReport {
    /// Semantic header mismatches (mode, seed, design fingerprint, config
    /// knobs). Any entry here makes the diff dirty: the runs were not
    /// configured identically, so iter-level divergence is expected.
    pub header_diffs: Vec<String>,
    /// Execution-environment header differences (thread counts, design
    /// source path). Informational only — they never make the diff dirty,
    /// because the determinism contract spans pool widths.
    pub notes: Vec<String>,
    /// The first iter-record disagreement, if any.
    pub first_divergence: Option<Divergence>,
    /// How many iter records were compared (the shorter stream's length).
    pub compared_iters: usize,
    /// How many metric values disagreed across all compared records
    /// (capped at the record where comparison stopped being useful — the
    /// full count, not just the first).
    pub mismatched_values: usize,
}

impl DiffReport {
    /// True when the traces agree: no semantic header diff and no iter
    /// divergence. Environment notes do not count.
    pub fn is_clean(&self) -> bool {
        self.header_diffs.is_empty() && self.first_divergence.is_none()
    }

    /// Multi-line human-readable rendering (what `dtp trace diff` prints).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.header_diffs {
            out.push_str("header: ");
            out.push_str(d);
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str("note: ");
            out.push_str(n);
            out.push('\n');
        }
        match &self.first_divergence {
            Some(d) => {
                out.push_str(&format!(
                    "first divergence at record {} (iter {}, level {}): {} — a={} b={}\n",
                    d.index, d.iter, d.level, d.field, d.a, d.b
                ));
                out.push_str(&format!(
                    "{} mismatched value(s) across {} compared iteration record(s)\n",
                    self.mismatched_values, self.compared_iters
                ));
            }
            None if self.header_diffs.is_empty() => {
                out.push_str(&format!(
                    "traces agree: {} iteration record(s) compared\n",
                    self.compared_iters
                ));
            }
            None => {}
        }
        out
    }
}

fn fmt_val(v: f64) -> String {
    format!("{v}")
}

fn header_diffs(a: &TraceHeader, b: &TraceHeader, report: &mut DiffReport) {
    let mut semantic = |field: &str, va: String, vb: String| {
        if va != vb {
            report.header_diffs.push(format!("{field}: a={va} b={vb}"));
        }
    };
    semantic("schema", a.schema.clone(), b.schema.clone());
    semantic("mode", a.mode.clone(), b.mode.clone());
    semantic("seed", a.seed.to_string(), b.seed.to_string());
    semantic("design", a.design.clone(), b.design.clone());
    semantic("cells", a.cells.to_string(), b.cells.to_string());
    semantic("nets", a.nets.to_string(), b.nets.to_string());
    semantic("pins", a.pins.to_string(), b.pins.to_string());
    semantic("region", format!("{:?}", a.region), format!("{:?}", b.region));
    semantic("clock_period", fmt_val(a.clock_period), fmt_val(b.clock_period));
    // Config knobs: keyed comparison so reordering (which the writers never
    // produce, but a hand-edited golden might) is still caught explicitly.
    for (key, va) in &a.config {
        if key == "threads" {
            continue;
        }
        match b.config.iter().find(|(k, _)| k == key) {
            Some((_, vb)) => {
                let (sa, sb) = (render(va), render(vb));
                if sa != sb {
                    report.header_diffs.push(format!("config.{key}: a={sa} b={sb}"));
                }
            }
            None => report.header_diffs.push(format!("config.{key}: missing in b")),
        }
    }
    for (key, _) in &b.config {
        if key != "threads" && !a.config.iter().any(|(k, _)| k == key) {
            report.header_diffs.push(format!("config.{key}: missing in a"));
        }
    }
    for (key, va) in &a.mode_config {
        match b.mode_config.iter().find(|(k, _)| k == key) {
            Some((_, vb)) => {
                let (sa, sb) = (render(va), render(vb));
                if sa != sb {
                    report.header_diffs.push(format!("mode_config.{key}: a={sa} b={sb}"));
                }
            }
            None => report.header_diffs.push(format!("mode_config.{key}: missing in b")),
        }
    }
    for (key, _) in &b.mode_config {
        if !a.mode_config.iter().any(|(k, _)| k == key) {
            report.header_diffs.push(format!("mode_config.{key}: missing in a"));
        }
    }
    // Environment identity: informational, never dirty.
    let mut note = |field: &str, va: String, vb: String| {
        if va != vb {
            report.notes.push(format!("{field} differs (a={va} b={vb}) — environment, ignored"));
        }
    };
    note("threads", a.threads.to_string(), b.threads.to_string());
    note("pool_threads", a.pool_threads.to_string(), b.pool_threads.to_string());
    note("host_threads", a.host_threads.to_string(), b.host_threads.to_string());
    note(
        "source",
        a.source.clone().unwrap_or_else(|| "null".to_string()),
        b.source.clone().unwrap_or_else(|| "null".to_string()),
    );
    let ta = a.config.iter().find(|(k, _)| k == "threads").map(|(_, v)| render(v));
    let tb = b.config.iter().find(|(k, _)| k == "threads").map(|(_, v)| render(v));
    note(
        "config.threads",
        ta.unwrap_or_else(|| "missing".to_string()),
        tb.unwrap_or_else(|| "missing".to_string()),
    );
}

fn render(v: &dtp_obs::json::Value) -> String {
    let mut s = String::new();
    v.push_json(&mut s);
    s
}

struct IterCmp<'t> {
    tol: &'t Tolerances,
    report: DiffReport,
}

impl IterCmp<'_> {
    fn record(&mut self, index: usize, a: &TraceIter, field: &str, va: String, vb: String) {
        self.report.mismatched_values += 1;
        if self.report.first_divergence.is_none() {
            self.report.first_divergence = Some(Divergence {
                index,
                iter: a.iter,
                level: a.level,
                field: field.to_string(),
                a: va,
                b: vb,
            });
        }
    }

    fn metric(&mut self, index: usize, a: &TraceIter, field: &str, va: f64, vb: f64) {
        if !self.tol.matches(field, va, vb) {
            self.record(index, a, field, fmt_val(va), fmt_val(vb));
        }
    }

    fn compare(&mut self, index: usize, a: &TraceIter, b: &TraceIter) {
        if a.iter != b.iter {
            self.record(index, a, "iter", a.iter.to_string(), b.iter.to_string());
        }
        if a.level != b.level {
            self.record(index, a, "level", a.level.to_string(), b.level.to_string());
        }
        if a.timing != b.timing {
            self.record(index, a, "timing", a.timing.to_string(), b.timing.to_string());
        }
        self.metric(index, a, "wl", a.wl, b.wl);
        self.metric(index, a, "hpwl", a.hpwl, b.hpwl);
        self.metric(index, a, "overflow", a.overflow, b.overflow);
        self.metric(index, a, "lambda", a.lambda, b.lambda);
        self.metric(index, a, "step", a.step, b.step);
        self.metric(index, a, "wns", a.wns, b.wns);
        self.metric(index, a, "tns", a.tns, b.tns);
        // Counters are discrete event counts: always exact, no tolerance.
        for c in Counter::ALL {
            let (ca, cb) = (a.counters[c.index()], b.counters[c.index()]);
            if ca != cb {
                let field = format!("counters.{}", c.name());
                self.record(index, a, &field, ca.to_string(), cb.to_string());
            }
        }
    }
}

/// Compares two traces under `tol`. Headers are compared semantically
/// (environment fields demoted to notes), then iter records pairwise in
/// stream order; span records carry wall-clock noise and are never
/// compared. A length mismatch past the shared prefix is itself a
/// divergence.
pub fn diff(a: &Trace, b: &Trace, tol: &Tolerances) -> DiffReport {
    let mut cmp = IterCmp { tol, report: DiffReport::default() };
    header_diffs(&a.header, &b.header, &mut cmp.report);
    let shared = a.iters.len().min(b.iters.len());
    cmp.report.compared_iters = shared;
    for i in 0..shared {
        cmp.compare(i, &a.iters[i], &b.iters[i]);
    }
    if a.iters.len() != b.iters.len() {
        let (iter, level) = if a.iters.len() > shared {
            (a.iters[shared].iter, a.iters[shared].level)
        } else {
            (b.iters[shared].iter, b.iters[shared].level)
        };
        cmp.report.mismatched_values += 1;
        if cmp.report.first_divergence.is_none() {
            cmp.report.first_divergence = Some(Divergence {
                index: shared,
                iter,
                level,
                field: "record count".to_string(),
                a: a.iters.len().to_string(),
                b: b.iters.len().to_string(),
            });
        }
    }
    cmp.report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample_trace;

    #[test]
    fn self_diff_is_clean_at_zero_tolerance() {
        let t = sample_trace(6);
        let r = diff(&t, &t, &Tolerances::zero());
        assert!(r.is_clean(), "{}", r.render());
        assert_eq!(r.compared_iters, 6);
        assert!(r.render().contains("traces agree"));
    }

    #[test]
    fn environment_differences_are_notes_not_divergence() {
        let a = sample_trace(3);
        let mut b = a.clone();
        b.header.pool_threads = 16;
        b.header.host_threads = 64;
        b.header.source = None;
        b.header.config[1].1 = dtp_obs::json::Value::Num(16.0);
        b.spans[0].phase_ns[0] = 42; // wall clock never compared
        let r = diff(&a, &b, &Tolerances::zero());
        assert!(r.is_clean(), "{}", r.render());
        assert_eq!(r.notes.len(), 4);
    }

    #[test]
    fn first_divergence_pinpoints_iteration_and_field() {
        let a = sample_trace(5);
        let mut b = a.clone();
        b.iters[3].overflow += 1e-9;
        b.iters[4].wl += 1.0;
        let r = diff(&a, &b, &Tolerances::zero());
        let d = r.first_divergence.expect("divergence detected");
        assert_eq!((d.index, d.iter, d.field.as_str()), (3, 3, "overflow"));
        assert_eq!(r.mismatched_values, 2);
        // A loose tolerance forgives the tiny overflow delta but not the
        // 1.0 wirelength jump.
        let loose = Tolerances {
            default_abs: 1e-6,
            default_rel: 0.0,
            per_field: vec![("wl".to_string(), 0.5, 0.0)],
        };
        let r = diff(&a, &b, &loose);
        let d = r.first_divergence.expect("wl still diverges");
        assert_eq!((d.index, d.field.as_str()), (4, "wl"));
    }

    #[test]
    fn nan_matches_nan_but_not_numbers() {
        let a = sample_trace(2);
        let mut b = a.clone();
        assert!(a.iters[1].hpwl.is_nan() && b.iters[1].hpwl.is_nan());
        let r = diff(&a, &b, &Tolerances::zero());
        assert!(r.is_clean());
        b.iters[1].hpwl = 123.0;
        let r = diff(&a, &b, &Tolerances::zero());
        assert_eq!(r.first_divergence.unwrap().field, "hpwl");
    }

    #[test]
    fn counters_are_exact_even_under_loose_tolerance() {
        let a = sample_trace(3);
        let mut b = a.clone();
        b.iters[2].counters[dtp_obs::Counter::StaFull.index()] = 9;
        let loose =
            Tolerances { default_abs: 1e9, default_rel: 1.0, per_field: Vec::new() };
        let r = diff(&a, &b, &loose);
        assert_eq!(r.first_divergence.unwrap().field, "counters.sta_full");
    }

    #[test]
    fn truncated_trace_reports_record_count() {
        let a = sample_trace(4);
        let mut b = a.clone();
        b.iters.pop();
        let r = diff(&a, &b, &Tolerances::zero());
        let d = r.first_divergence.unwrap();
        assert_eq!((d.index, d.field.as_str()), (3, "record count"));
        assert_eq!((d.a.as_str(), d.b.as_str()), ("4", "3"));
    }

    #[test]
    fn semantic_header_mismatch_is_dirty() {
        let a = sample_trace(2);
        let mut b = a.clone();
        b.header.seed = 8;
        b.header.mode_config[0].1 = dtp_obs::json::Value::Num(80.0);
        let r = diff(&a, &b, &Tolerances::zero());
        assert!(!r.is_clean());
        assert_eq!(r.header_diffs.len(), 2);
        assert!(r.render().contains("header: seed"));
        assert!(r.render().contains("header: mode_config.gamma"));
    }
}
