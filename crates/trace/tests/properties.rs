//! Property tests for the diff engine: for arbitrary traces — including
//! NaN/±inf QoR samples — a zero-tolerance self-diff must be clean, the
//! text round trip through `Trace::parse` must preserve the diff verdict,
//! and canonical bytes must be invariant under environment perturbation.

use dtp_obs::json::Value;
use dtp_obs::{Counter, Phase, TraceHeader, TraceIter, TraceSpan, TRACE_SCHEMA};
use dtp_trace::{diff, Tolerances, Trace};
use proptest::prelude::*;

/// Maps a raw u64 onto an "interesting" f64. Only NaN and finite values:
/// the v2 serialization canonicalizes every non-finite sample to `null`
/// (parsed back as NaN), so a `Trace` built from a real stream never
/// carries ±inf — the generator must respect that invariant for the
/// byte-exact round-trip property to hold.
fn telemetry_f64(raw: u64, scale: f64) -> f64 {
    match raw % 7 {
        0 | 1 => f64::NAN,
        2 => 0.0,
        3 => -0.0,
        4 => -(raw as f64) * scale,
        5 => (raw as f64) * scale * 1e-9,
        _ => (raw as f64) * scale,
    }
}

fn build_trace(seed: u64, iters: &[(u64, u32, u64, u64)]) -> Trace {
    let header = TraceHeader {
        schema: TRACE_SCHEMA.to_string(),
        mode: "differentiable".to_string(),
        seed,
        threads: 2,
        pool_threads: 2,
        host_threads: 8,
        design: "prop".to_string(),
        cells: 10,
        nets: 9,
        pins: 30,
        region: [0.0, 0.0, 10.0, 10.0],
        clock_period: 1000.0,
        source: Some("sbt".to_string()),
        config: vec![
            ("seed".to_string(), Value::Str(seed.to_string())),
            ("threads".to_string(), Value::Num(2.0)),
        ],
        mode_config: vec![("gamma".to_string(), Value::Num(80.0))],
    };
    let mut t = Trace { header, iters: Vec::new(), spans: Vec::new() };
    for &(iter, level, qa, qb) in iters {
        let mut counters = [0u64; Counter::COUNT];
        for (i, slot) in counters.iter_mut().enumerate() {
            let v = qa.wrapping_add((iter + 1).wrapping_mul(i as u64 + 1));
            *slot = if v % 4 == 0 { 0 } else { v % 100_000 };
        }
        t.iters.push(TraceIter {
            iter,
            level,
            wl: telemetry_f64(qa, 1.0),
            hpwl: telemetry_f64(qa.rotate_left(13), 1e3),
            overflow: telemetry_f64(qb, 1e-3),
            lambda: telemetry_f64(qb.rotate_left(7), 1e-6),
            step: telemetry_f64(qa.rotate_left(41), 1e-2),
            wns: telemetry_f64(qb.rotate_left(27), -1.0),
            tns: telemetry_f64(qa ^ qb, -1e2),
            timing: qa % 2 == 0,
            counters,
        });
        let mut phase_ns = [0u64; Phase::COUNT];
        phase_ns[(qb % Phase::COUNT as u64) as usize] = qb % 1_000_000;
        t.spans.push(TraceSpan { iter, level, phase_ns });
    }
    t
}

proptest! {
    #[test]
    fn zero_tolerance_self_diff_is_reflexively_clean(
        seed in 0u64..u64::MAX,
        iters in proptest::collection::vec(
            (0u64..1_000_000, 0u32..6, 0u64..u64::MAX, 0u64..u64::MAX),
            1..20
        ),
    ) {
        let t = build_trace(seed, &iters);
        // Reflexive: a trace always matches itself exactly, even with
        // NaN/±inf telemetry.
        let r = diff(&t, &t, &Tolerances::zero());
        prop_assert!(r.is_clean(), "self-diff dirty: {}", r.render());
        prop_assert_eq!(r.compared_iters, iters.len());
        prop_assert_eq!(r.mismatched_values, 0);

        // The text round trip preserves the verdict and the exact bytes.
        let text = String::from_utf8(t.to_bytes()).unwrap();
        let back = match Trace::parse(&text) {
            Ok(b) => b,
            Err(e) => return Err(TestCaseError::Fail(format!("parse failed: {e}"))),
        };
        let r = diff(&t, &back, &Tolerances::zero());
        prop_assert!(r.is_clean(), "round-trip diff dirty: {}", r.render());
        prop_assert_eq!(back.to_bytes(), t.to_bytes());

        // Canonical bytes ignore the execution environment entirely.
        let mut env = t.clone();
        env.header.threads = seed % 17;
        env.header.pool_threads = seed % 13;
        env.header.host_threads = seed % 11;
        env.header.source = None;
        env.header.config[1].1 = Value::Num((seed % 9) as f64);
        for sp in env.spans.iter_mut() {
            sp.phase_ns[0] = sp.phase_ns[0].wrapping_add(seed | 1);
        }
        prop_assert_eq!(env.canonical_bytes(), t.canonical_bytes());
        let r = diff(&t, &env, &Tolerances::zero());
        prop_assert!(r.is_clean(), "environment perturbation dirty: {}", r.render());
    }

    #[test]
    fn any_single_metric_perturbation_is_detected(
        seed in 0u64..u64::MAX,
        iters in proptest::collection::vec(
            (0u64..1_000_000, 0u32..6, 0u64..u64::MAX, 0u64..u64::MAX),
            1..12
        ),
        pick in 0usize..1000,
        bump in 1u64..1000,
    ) {
        let a = build_trace(seed, &iters);
        let mut b = a.clone();
        let idx = pick % b.iters.len();
        // Perturb one finite-able field deterministically: overwrite wl
        // with a value guaranteed to differ (finite vs whatever was there).
        let old = b.iters[idx].wl;
        let new = if old.is_finite() { old + bump as f64 } else { bump as f64 };
        b.iters[idx].wl = new;
        prop_assume!(old.to_bits() != new.to_bits());
        let r = diff(&a, &b, &Tolerances::zero());
        let d = r.first_divergence.expect("perturbation must be detected");
        prop_assert_eq!(d.index, idx);
        prop_assert_eq!(d.field.as_str(), "wl");
    }
}
