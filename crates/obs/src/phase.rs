//! The fixed phase taxonomy of the placement flow.
//!
//! Spans accumulate into a dense array indexed by [`Phase`], so the set is a
//! closed enum rather than string keys: recording a span is two `Instant`
//! reads and one array add, with no hashing and no allocation. The variants
//! mirror where the wall-clock of one global-placement iteration can go
//! (gradient terms, Steiner-forest maintenance, STA sweeps) plus the post-GP
//! pipeline stages.

/// One timed phase of the placement flow.
///
/// The discriminants are dense (`0..Phase::COUNT`) and stable within a run;
/// [`Phase::index`] is the slot in every per-phase array.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Phase {
    /// Weighted-average wirelength gradient (incl. the weight merge).
    WirelengthGrad = 0,
    /// Electrostatic density evaluation + gradient accumulation.
    DensityGrad,
    /// Smoothed congestion-penalty gradient (route-aware flows).
    CongestionGrad,
    /// RUDY congestion-map builds and incremental updates.
    RudyUpdate,
    /// Full Steiner-forest builds.
    SteinerBuild,
    /// Incremental forest maintenance: branch updates + per-net rebuilds.
    SteinerUpdate,
    /// STA forward sweeps in the loop (smoothed or exact analyses).
    StaForward,
    /// Timing-gradient backward accumulation.
    StaBackward,
    /// Net-weighting updates driven by the exact STA (baseline mode).
    NetWeight,
    /// Exact STA runs that only feed the trace (`trace_timing_every`).
    TraceSta,
    /// Preconditioned Nesterov step.
    NesterovStep,
    /// Legalization (Abacus or Tetris).
    Legalize,
    /// Detailed-placement refinement passes.
    DetailPlace,
    /// Post-GP and final exact analyses (reporting).
    FinalSta,
    /// Netlist coarsening for a multi-level (clustered) flow level.
    Coarsen,
    /// Projecting a coarse solution onto the next finer level's cells.
    Interpolate,
    /// Top-K critical-path extraction + net-weight transfer (path mode).
    PathExtract,
}

impl Phase {
    /// Number of phases (length of every per-phase array).
    pub const COUNT: usize = 17;

    /// Every phase, in slot order.
    pub const ALL: [Phase; Phase::COUNT] = [
        Phase::WirelengthGrad,
        Phase::DensityGrad,
        Phase::CongestionGrad,
        Phase::RudyUpdate,
        Phase::SteinerBuild,
        Phase::SteinerUpdate,
        Phase::StaForward,
        Phase::StaBackward,
        Phase::NetWeight,
        Phase::TraceSta,
        Phase::NesterovStep,
        Phase::Legalize,
        Phase::DetailPlace,
        Phase::FinalSta,
        Phase::Coarsen,
        Phase::Interpolate,
        Phase::PathExtract,
    ];

    /// Dense slot index of this phase.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable snake_case name used in `metrics.json` and the JSONL stream.
    pub fn name(self) -> &'static str {
        match self {
            Phase::WirelengthGrad => "wirelength_grad",
            Phase::DensityGrad => "density_grad",
            Phase::CongestionGrad => "congestion_grad",
            Phase::RudyUpdate => "rudy_update",
            Phase::SteinerBuild => "steiner_build",
            Phase::SteinerUpdate => "steiner_update",
            Phase::StaForward => "sta_forward",
            Phase::StaBackward => "sta_backward",
            Phase::NetWeight => "net_weight",
            Phase::TraceSta => "trace_sta",
            Phase::NesterovStep => "nesterov_step",
            Phase::Legalize => "legalize",
            Phase::DetailPlace => "detail_place",
            Phase::FinalSta => "final_sta",
            Phase::Coarsen => "coarsen",
            Phase::Interpolate => "interpolate",
            Phase::PathExtract => "path_extract",
        }
    }

    /// Inverse of [`Phase::name`]: resolves a sink name back to the phase
    /// (the v2 trace reader's lookup). `None` for unknown names.
    pub fn from_name(name: &str) -> Option<Phase> {
        Phase::ALL.iter().copied().find(|p| p.name() == name)
    }

    /// Whether this phase counts toward the flow's `timing_runtime`
    /// (the legacy hand-timed "wall-clock inside timing analysis" metric).
    ///
    /// These phases are timed even when observability is off, so
    /// `FlowResult::timing_runtime` stays value-compatible with the
    /// pre-observability accounting at the same (negligible) cost: the same
    /// handful of `Instant` reads per iteration the old code did.
    #[inline]
    pub fn is_sta(self) -> bool {
        matches!(
            self,
            Phase::StaForward
                | Phase::StaBackward
                | Phase::NetWeight
                | Phase::TraceSta
                | Phase::FinalSta
                | Phase::PathExtract
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_match_all() {
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
        assert_eq!(Phase::ALL.len(), Phase::COUNT);
    }

    #[test]
    fn names_are_unique() {
        for a in Phase::ALL {
            for b in Phase::ALL {
                if a != b {
                    assert_ne!(a.name(), b.name());
                }
            }
        }
    }

    #[test]
    fn sta_set_matches_legacy_accounting() {
        let sta: Vec<Phase> = Phase::ALL.iter().copied().filter(|p| p.is_sta()).collect();
        assert_eq!(
            sta,
            [
                Phase::StaForward,
                Phase::StaBackward,
                Phase::NetWeight,
                Phase::TraceSta,
                Phase::FinalSta,
                Phase::PathExtract
            ]
        );
    }
}
