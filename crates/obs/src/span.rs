//! Span accumulation: preallocated per-phase slots and a bounded ring
//! buffer of recent per-iteration samples.
//!
//! Everything here is fixed-size and allocation-free after construction:
//! recording a span is `Instant::now()` twice plus one add into a slot, and
//! pushing an iteration sample copies a `Copy` struct into a preallocated
//! ring. This is what keeps the observed steady-state loop at zero heap
//! allocations (asserted by `bench_obs`).

use crate::counters::Counter;
use crate::phase::Phase;
use std::time::Instant;

/// An in-flight span: the capture of `Instant::now()` at phase entry, or
/// nothing when the phase is not being timed (observability off and the
/// phase is not part of the always-on STA accounting).
#[derive(Clone, Copy, Debug)]
pub struct SpanStart(Option<Instant>);

impl SpanStart {
    /// A span that is being timed.
    #[inline]
    pub fn now() -> SpanStart {
        SpanStart(Some(Instant::now()))
    }

    /// A span that is not being timed (zero-cost stop).
    #[inline]
    pub fn off() -> SpanStart {
        SpanStart(None)
    }

    /// Elapsed nanoseconds since the start, `None` if not timing.
    #[inline]
    pub fn elapsed_ns(self) -> Option<u64> {
        self.0.map(|t| t.elapsed().as_nanos() as u64)
    }
}

/// Accumulated time and call count of one phase.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseSlot {
    /// Total nanoseconds spent in the phase.
    pub nanos: u64,
    /// Number of completed spans.
    pub calls: u64,
}

/// The per-phase accumulation table (fixed size, no allocation).
#[derive(Clone, Copy, Debug, Default)]
pub struct SpanTable {
    slots: [PhaseSlot; Phase::COUNT],
}

impl SpanTable {
    /// Adds one completed span of `ns` nanoseconds to `phase`.
    #[inline]
    pub fn add(&mut self, phase: Phase, ns: u64) {
        let s = &mut self.slots[phase.index()];
        s.nanos += ns;
        s.calls += 1;
    }

    /// The accumulated slot of `phase`.
    #[inline]
    pub fn slot(&self, phase: Phase) -> PhaseSlot {
        self.slots[phase.index()]
    }

    /// Total seconds accumulated in `phase`.
    #[inline]
    pub fn seconds(&self, phase: Phase) -> f64 {
        self.slots[phase.index()].nanos as f64 * 1e-9
    }

    /// Raw nanosecond totals, in [`Phase::ALL`] order.
    #[inline]
    pub fn nanos(&self) -> [u64; Phase::COUNT] {
        let mut out = [0u64; Phase::COUNT];
        for (o, s) in out.iter_mut().zip(&self.slots) {
            *o = s.nanos;
        }
        out
    }

    /// Seconds accumulated across the STA phases ([`Phase::is_sta`]): the
    /// span-table view that replaces the legacy `timing_runtime` field.
    pub fn sta_seconds(&self) -> f64 {
        Phase::ALL
            .iter()
            .filter(|p| p.is_sta())
            .map(|&p| self.seconds(p))
            .sum()
    }

    /// Seconds accumulated across every phase.
    pub fn total_seconds(&self) -> f64 {
        self.slots.iter().map(|s| s.nanos as f64 * 1e-9).sum()
    }
}

/// One iteration's worth of telemetry: QoR samples plus the per-phase time
/// and per-counter deltas of that iteration. `Copy` so the ring can recycle
/// slots without allocation.
#[derive(Clone, Copy, Debug)]
pub struct IterSample {
    /// Iteration index.
    pub iter: u64,
    /// Smoothed (weighted-average) wirelength from the gradient evaluation.
    pub wl: f64,
    /// Exact HPWL; `NAN` when not computed this iteration.
    pub hpwl: f64,
    /// Density overflow.
    pub overflow: f64,
    /// Exact WNS (ps); `NAN` on iterations where timing was not traced.
    pub wns: f64,
    /// Exact TNS (ps); `NAN` when not traced.
    pub tns: f64,
    /// Nanoseconds spent per phase during this iteration.
    pub phase_ns: [u64; Phase::COUNT],
    /// Counter increments during this iteration.
    pub counter_delta: [u64; Counter::COUNT],
}

impl Default for IterSample {
    fn default() -> Self {
        IterSample {
            iter: 0,
            wl: f64::NAN,
            hpwl: f64::NAN,
            overflow: f64::NAN,
            wns: f64::NAN,
            tns: f64::NAN,
            phase_ns: [0; Phase::COUNT],
            counter_delta: [0; Counter::COUNT],
        }
    }
}

/// Bounded ring buffer of the most recent iteration samples — an in-memory
/// flight recorder that works without any sink attached.
#[derive(Clone, Debug)]
pub struct IterRing {
    buf: Vec<IterSample>,
    /// Total samples ever pushed (the ring holds the last `buf.len()`).
    count: u64,
}

impl IterRing {
    /// A ring holding the last `capacity` samples, fully preallocated.
    pub fn new(capacity: usize) -> IterRing {
        IterRing {
            buf: vec![IterSample::default(); capacity],
            count: 0,
        }
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Number of samples currently held (≤ capacity).
    pub fn len(&self) -> usize {
        (self.count as usize).min(self.buf.len())
    }

    /// Whether no sample was ever pushed.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Total samples ever pushed (including overwritten ones).
    pub fn total_pushed(&self) -> u64 {
        self.count
    }

    /// Pushes a sample, overwriting the oldest once full. No allocation.
    #[inline]
    pub fn push(&mut self, s: IterSample) {
        if self.buf.is_empty() {
            return;
        }
        let idx = (self.count as usize) % self.buf.len();
        self.buf[idx] = s;
        self.count += 1;
    }

    /// Iterates the held samples oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &IterSample> {
        let len = self.len();
        let cap = self.buf.len().max(1);
        let start = if (self.count as usize) > len {
            (self.count as usize) % cap
        } else {
            0
        };
        (0..len).map(move |i| &self.buf[(start + i) % cap])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_table_accumulates() {
        let mut t = SpanTable::default();
        t.add(Phase::StaForward, 100);
        t.add(Phase::StaForward, 50);
        t.add(Phase::DensityGrad, 7);
        assert_eq!(t.slot(Phase::StaForward), PhaseSlot { nanos: 150, calls: 2 });
        assert_eq!(t.slot(Phase::DensityGrad), PhaseSlot { nanos: 7, calls: 1 });
        assert!((t.sta_seconds() - 150e-9).abs() < 1e-18);
        assert!((t.total_seconds() - 157e-9).abs() < 1e-18);
    }

    #[test]
    fn ring_wraps_and_keeps_most_recent() {
        let mut r = IterRing::new(4);
        for i in 0..10u64 {
            r.push(IterSample { iter: i, ..IterSample::default() });
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.total_pushed(), 10);
        let iters: Vec<u64> = r.iter().map(|s| s.iter).collect();
        assert_eq!(iters, [6, 7, 8, 9]);
    }

    #[test]
    fn zero_capacity_ring_is_inert() {
        let mut r = IterRing::new(0);
        r.push(IterSample::default());
        assert!(r.is_empty());
        assert_eq!(r.iter().count(), 0);
    }

    #[test]
    fn span_start_off_is_free() {
        assert!(SpanStart::off().elapsed_ns().is_none());
        assert!(SpanStart::now().elapsed_ns().is_some());
    }
}
