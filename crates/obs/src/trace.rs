//! Trace schema v2: the typed record model of the JSONL flight recorder,
//! with a strict reader that every sink line round-trips through.
//!
//! A v2 trace is one JSONL stream of three record kinds, discriminated by
//! the `"t"` field:
//!
//! * **`header`** (exactly one, first line) — the run's identity: schema
//!   tag, flow mode, seed, configured/actual/host thread counts, the design
//!   fingerprint (name, cell/net/pin counts, region, clock period), the
//!   optional design-source spec for replay, and the full flow + mode
//!   configuration as generic key/value fields.
//! * **`iter`** (one per global-placement iteration, coarse and fine) — the
//!   deterministic convergence record: wl/HPWL/overflow, λ, step length,
//!   WNS/TNS, timing-active flag, V-cycle level, and per-counter deltas.
//!   For a fixed config and seed these lines are bit-for-bit identical
//!   across runs and pool widths.
//! * **`span`** (one per iteration, after its `iter` line) — the per-phase
//!   wall-clock nanoseconds. Spans are the only nondeterministic content,
//!   which is why they are separate records: determinism diffs skip them.
//!
//! Serialization notes: non-finite floats are `null` (read back as `NAN`);
//! `seed` is a JSON *string* so the full `u64` range survives the `f64`
//! number pipeline; counters/phase durations are JSON numbers and exact up
//! to 2^53 (per-iteration deltas in practice are far smaller). Re-writing a
//! parsed record with the same writers reproduces the input bytes.

use crate::counters::Counter;
use crate::json::{self, Value};
use crate::phase::Phase;
use crate::sink::{write_iter_record, write_span_record, IterEvent, TRACE_SCHEMA};
use std::io::{self, Write};

/// The run-identity record: first line of every v2 trace.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceHeader {
    /// Schema tag ([`TRACE_SCHEMA`]).
    pub schema: String,
    /// Canonical flow-mode name (e.g. `"differentiable"`).
    pub mode: String,
    /// RNG seed of the run.
    pub seed: u64,
    /// Configured thread count (0 = inherit the host default).
    pub threads: u64,
    /// Actual worker-pool width the run executed with.
    pub pool_threads: u64,
    /// Hardware threads of the recording host.
    pub host_threads: u64,
    /// Design name.
    pub design: String,
    /// Movable + fixed cell count.
    pub cells: u64,
    /// Net count.
    pub nets: u64,
    /// Pin count.
    pub pins: u64,
    /// Placement region `[xl, yl, xh, yh]`.
    pub region: [f64; 4],
    /// Clock period (ps).
    pub clock_period: f64,
    /// The design-source spec (CLI argument) when known; lets `replay`
    /// reload the design without a user-provided override.
    pub source: Option<String>,
    /// The full `FlowConfig`, as ordered generic key/value fields.
    pub config: Vec<(String, Value)>,
    /// Mode-specific configuration fields (empty for wirelength mode).
    pub mode_config: Vec<(String, Value)>,
}

/// One deterministic per-iteration convergence record.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraceIter {
    /// Iteration index (within its level).
    pub iter: u64,
    /// V-cycle level (0 = flat/fine; higher = coarser).
    pub level: u32,
    /// Smoothed (weighted-average) wirelength.
    pub wl: f64,
    /// Exact HPWL; `NAN` when not sampled this iteration.
    pub hpwl: f64,
    /// Density overflow.
    pub overflow: f64,
    /// Density-penalty multiplier λ used this iteration.
    pub lambda: f64,
    /// Nesterov step length; `NAN` when no step ran.
    pub step: f64,
    /// Exact WNS (ps); `NAN` when untraced.
    pub wns: f64,
    /// Exact TNS (ps); `NAN` when untraced.
    pub tns: f64,
    /// Whether timing-driven forces were active.
    pub timing: bool,
    /// Per-counter deltas for this iteration, in [`Counter::ALL`] order.
    pub counters: [u64; Counter::COUNT],
}

/// One per-iteration wall-clock record (nondeterministic content).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraceSpan {
    /// Iteration index the span belongs to.
    pub iter: u64,
    /// V-cycle level of that iteration.
    pub level: u32,
    /// Per-phase nanoseconds, in [`Phase::ALL`] order.
    pub phase_ns: [u64; Phase::COUNT],
}

/// One parsed line of a v2 trace.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceRecord {
    /// The run-identity header (first line).
    Header(Box<TraceHeader>),
    /// A deterministic convergence record.
    Iter(TraceIter),
    /// A wall-clock record.
    Span(TraceSpan),
}

impl TraceHeader {
    /// Serializes the header as its one-line JSON record (plus newline).
    /// Allocates (headers are written once per run, not per iteration).
    pub fn to_json_line(&self) -> String {
        let mut s = String::with_capacity(512);
        s.push_str("{\"t\":\"header\",\"schema\":");
        json::push_str_escaped(&mut s, &self.schema);
        s.push_str(",\"mode\":");
        json::push_str_escaped(&mut s, &self.mode);
        // Seed as a string: u64 seeds above 2^53 would lose bits through
        // the f64 number pipeline.
        s.push_str(",\"seed\":");
        json::push_str_escaped(&mut s, &self.seed.to_string());
        use std::fmt::Write as _;
        let _ = write!(
            s,
            ",\"threads\":{},\"pool_threads\":{},\"host_threads\":{}",
            self.threads, self.pool_threads, self.host_threads
        );
        s.push_str(",\"design\":");
        json::push_str_escaped(&mut s, &self.design);
        let _ = write!(
            s,
            ",\"cells\":{},\"nets\":{},\"pins\":{},\"region\":[",
            self.cells, self.nets, self.pins
        );
        for (i, v) in self.region.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            json::push_f64(&mut s, *v);
        }
        s.push_str("],\"clock_period\":");
        json::push_f64(&mut s, self.clock_period);
        s.push_str(",\"source\":");
        match &self.source {
            Some(src) => json::push_str_escaped(&mut s, src),
            None => s.push_str("null"),
        }
        s.push_str(",\"config\":");
        Value::Obj(self.config.clone()).push_json(&mut s);
        s.push_str(",\"mode_config\":");
        Value::Obj(self.mode_config.clone()).push_json(&mut s);
        s.push_str("}\n");
        s
    }

    /// Writes the header record to `w`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`.
    pub fn write_jsonl(&self, w: &mut dyn Write) -> io::Result<()> {
        w.write_all(self.to_json_line().as_bytes())
    }
}

impl TraceIter {
    /// Re-serializes this record through [`write_iter_record`] (the byte
    /// representation the flow itself emits).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`.
    pub fn write_jsonl(&self, w: &mut dyn Write) -> io::Result<()> {
        let ev = IterEvent {
            iter: self.iter,
            level: self.level,
            wl: self.wl,
            hpwl: self.hpwl,
            overflow: self.overflow,
            lambda: self.lambda,
            step: self.step,
            wns: self.wns,
            tns: self.tns,
            timing: self.timing,
        };
        write_iter_record(w, &ev, &self.counters)
    }
}

impl TraceSpan {
    /// Re-serializes this record through [`write_span_record`].
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`.
    pub fn write_jsonl(&self, w: &mut dyn Write) -> io::Result<()> {
        write_span_record(w, self.iter, self.level, &self.phase_ns)
    }
}

fn req<'a>(v: &'a Value, key: &str) -> Result<&'a Value, String> {
    v.get(key).ok_or_else(|| format!("missing field `{key}`"))
}

fn req_u64(v: &Value, key: &str) -> Result<u64, String> {
    let n = req(v, key)?
        .as_f64()
        .ok_or_else(|| format!("field `{key}` is not a number"))?;
    if n < 0.0 || n.fract() != 0.0 || n > u64::MAX as f64 {
        return Err(format!("field `{key}` is not a non-negative integer"));
    }
    Ok(n as u64)
}

/// Number-or-null: `null` reads back as the in-memory `NAN` sentinel.
fn req_f64_or_null(v: &Value, key: &str) -> Result<f64, String> {
    let field = req(v, key)?;
    if field.is_null() {
        return Ok(f64::NAN);
    }
    field
        .as_f64()
        .ok_or_else(|| format!("field `{key}` is not a number or null"))
}

fn req_str<'a>(v: &'a Value, key: &str) -> Result<&'a str, String> {
    req(v, key)?
        .as_str()
        .ok_or_else(|| format!("field `{key}` is not a string"))
}

fn req_bool(v: &Value, key: &str) -> Result<bool, String> {
    req(v, key)?
        .as_bool()
        .ok_or_else(|| format!("field `{key}` is not a boolean"))
}

fn obj_fields<'a>(v: &'a Value, key: &str) -> Result<&'a [(String, Value)], String> {
    match req(v, key)? {
        Value::Obj(members) => Ok(members),
        _ => Err(format!("field `{key}` is not an object")),
    }
}

fn parse_header(v: &Value) -> Result<TraceHeader, String> {
    let schema = req_str(v, "schema")?;
    if schema != TRACE_SCHEMA {
        return Err(format!(
            "unsupported trace schema `{schema}` (expected `{TRACE_SCHEMA}`)"
        ));
    }
    let seed: u64 = req_str(v, "seed")?
        .parse()
        .map_err(|_| "field `seed` is not a u64 string".to_string())?;
    let region_v = req(v, "region")?
        .as_array()
        .ok_or_else(|| "field `region` is not an array".to_string())?;
    if region_v.len() != 4 {
        return Err("field `region` must have 4 elements".into());
    }
    let mut region = [0.0; 4];
    for (slot, item) in region.iter_mut().zip(region_v) {
        *slot = item
            .as_f64()
            .ok_or_else(|| "field `region` has a non-number element".to_string())?;
    }
    let source = match req(v, "source")? {
        Value::Null => None,
        Value::Str(s) => Some(s.clone()),
        _ => return Err("field `source` is not a string or null".into()),
    };
    Ok(TraceHeader {
        schema: schema.to_string(),
        mode: req_str(v, "mode")?.to_string(),
        seed,
        threads: req_u64(v, "threads")?,
        pool_threads: req_u64(v, "pool_threads")?,
        host_threads: req_u64(v, "host_threads")?,
        design: req_str(v, "design")?.to_string(),
        cells: req_u64(v, "cells")?,
        nets: req_u64(v, "nets")?,
        pins: req_u64(v, "pins")?,
        region,
        clock_period: req_f64_or_null(v, "clock_period")?,
        source,
        config: obj_fields(v, "config")?.to_vec(),
        mode_config: obj_fields(v, "mode_config")?.to_vec(),
    })
}

fn parse_iter(v: &Value) -> Result<TraceIter, String> {
    let mut counters = [0u64; Counter::COUNT];
    for (name, n) in obj_fields(v, "counters")? {
        let c = Counter::from_name(name)
            .ok_or_else(|| format!("unknown counter `{name}`"))?;
        let n = n
            .as_f64()
            .ok_or_else(|| format!("counter `{name}` is not a number"))?;
        if n < 0.0 || n.fract() != 0.0 {
            return Err(format!("counter `{name}` is not a non-negative integer"));
        }
        counters[c.index()] = n as u64;
    }
    let level = req_u64(v, "level")?;
    if level > u32::MAX as u64 {
        return Err("field `level` out of range".into());
    }
    Ok(TraceIter {
        iter: req_u64(v, "iter")?,
        level: level as u32,
        wl: req_f64_or_null(v, "wl")?,
        hpwl: req_f64_or_null(v, "hpwl")?,
        overflow: req_f64_or_null(v, "overflow")?,
        lambda: req_f64_or_null(v, "lambda")?,
        step: req_f64_or_null(v, "step")?,
        wns: req_f64_or_null(v, "wns")?,
        tns: req_f64_or_null(v, "tns")?,
        timing: req_bool(v, "timing")?,
        counters,
    })
}

fn parse_span(v: &Value) -> Result<TraceSpan, String> {
    let mut phase_ns = [0u64; Phase::COUNT];
    for (name, n) in obj_fields(v, "phase_ns")? {
        let p = Phase::from_name(name).ok_or_else(|| format!("unknown phase `{name}`"))?;
        let n = n
            .as_f64()
            .ok_or_else(|| format!("phase `{name}` is not a number"))?;
        if n < 0.0 || n.fract() != 0.0 {
            return Err(format!("phase `{name}` is not a non-negative integer"));
        }
        phase_ns[p.index()] = n as u64;
    }
    let level = req_u64(v, "level")?;
    if level > u32::MAX as u64 {
        return Err("field `level` out of range".into());
    }
    Ok(TraceSpan { iter: req_u64(v, "iter")?, level: level as u32, phase_ns })
}

/// Parses one JSONL line into a typed [`TraceRecord`], strictly: required
/// fields must be present with the right types, counter/phase names must be
/// known, and the header schema tag must match [`TRACE_SCHEMA`].
///
/// # Errors
///
/// Returns a message naming the offending field; lines without a `"t"`
/// discriminator (the pre-v2 layout) get a version-specific hint.
pub fn parse_record(line: &str) -> Result<TraceRecord, String> {
    let v = json::parse(line)?;
    let t = match v.get("t") {
        Some(t) => t
            .as_str()
            .ok_or_else(|| "field `t` is not a string".to_string())?,
        None => {
            return Err(
                "no `t` record discriminator (dtp-trace-v1 line? v1 traces are \
                 not readable; re-record with this binary)"
                    .into(),
            )
        }
    };
    match t {
        "header" => parse_header(&v).map(|h| TraceRecord::Header(Box::new(h))),
        "iter" => parse_iter(&v).map(TraceRecord::Iter),
        "span" => parse_span(&v).map(TraceRecord::Span),
        other => Err(format!("unknown record type `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_header() -> TraceHeader {
        TraceHeader {
            schema: TRACE_SCHEMA.to_string(),
            mode: "differentiable".to_string(),
            seed: u64::MAX - 7, // above 2^53: exercises the string encoding
            threads: 0,
            pool_threads: 4,
            host_threads: 16,
            design: "sb\"1".to_string(),
            cells: 1200,
            nets: 1100,
            pins: 4000,
            region: [0.0, 0.0, 512.5, 512.5],
            clock_period: 5000.0,
            source: Some("sb1".to_string()),
            config: vec![
                ("max_iters".to_string(), Value::Num(300.0)),
                ("lambda_init".to_string(), Value::Num(8e-5)),
                ("legalizer".to_string(), Value::Str("abacus".to_string())),
                ("route_aware".to_string(), Value::Bool(false)),
            ],
            mode_config: vec![("gamma".to_string(), Value::Num(4.0))],
        }
    }

    #[test]
    fn header_round_trips_bytewise() {
        let h = sample_header();
        let line = h.to_json_line();
        let rec = parse_record(line.trim_end()).expect("header parses");
        let TraceRecord::Header(parsed) = rec else {
            panic!("not a header record");
        };
        assert_eq!(*parsed, h);
        // Re-serialization reproduces the input bytes exactly.
        assert_eq!(parsed.to_json_line(), line);
    }

    #[test]
    fn header_with_null_source_round_trips() {
        let mut h = sample_header();
        h.source = None;
        let line = h.to_json_line();
        let TraceRecord::Header(parsed) = parse_record(line.trim_end()).unwrap() else {
            panic!("not a header record");
        };
        assert_eq!(parsed.source, None);
        assert_eq!(parsed.to_json_line(), line);
    }

    #[test]
    fn iter_round_trips_bytewise_with_nans() {
        let mut counters = [0u64; Counter::COUNT];
        counters[Counter::Iterations.index()] = 1;
        counters[Counter::GeoDirtyNets.index()] = 250;
        let rec = TraceIter {
            iter: 42,
            level: 3,
            wl: 1.25e6,
            hpwl: f64::NAN,
            overflow: 0.41,
            lambda: 0.000325,
            step: 14.5,
            wns: -120.25,
            tns: f64::NAN,
            timing: false,
            counters,
        };
        let mut buf = Vec::new();
        rec.write_jsonl(&mut buf).unwrap();
        let line = String::from_utf8(buf).unwrap();
        let TraceRecord::Iter(parsed) = parse_record(line.trim_end()).unwrap() else {
            panic!("not an iter record");
        };
        // NAN != NAN, so compare through the serialized form.
        let mut buf2 = Vec::new();
        parsed.write_jsonl(&mut buf2).unwrap();
        assert_eq!(String::from_utf8(buf2).unwrap(), line);
        assert!(parsed.hpwl.is_nan());
        assert_eq!(parsed.counters, counters);
    }

    #[test]
    fn span_round_trips_bytewise() {
        let mut phase_ns = [0u64; Phase::COUNT];
        phase_ns[Phase::WirelengthGrad.index()] = 123_456;
        phase_ns[Phase::Legalize.index()] = 9;
        let rec = TraceSpan { iter: 7, level: 0, phase_ns };
        let mut buf = Vec::new();
        rec.write_jsonl(&mut buf).unwrap();
        let line = String::from_utf8(buf).unwrap();
        let TraceRecord::Span(parsed) = parse_record(line.trim_end()).unwrap() else {
            panic!("not a span record");
        };
        assert_eq!(parsed, rec);
        let mut buf2 = Vec::new();
        parsed.write_jsonl(&mut buf2).unwrap();
        assert_eq!(String::from_utf8(buf2).unwrap(), line);
    }

    #[test]
    fn reader_rejects_malformed_records() {
        // v1 line: no `t` discriminator.
        let err = parse_record(r#"{"iter":0,"wl":1.0}"#).unwrap_err();
        assert!(err.contains("v1"), "unhelpful v1 error: {err}");
        // Unknown record type.
        assert!(parse_record(r#"{"t":"frame"}"#).is_err());
        // Unknown counter name.
        assert!(parse_record(
            r#"{"t":"iter","iter":0,"level":0,"wl":1,"hpwl":null,"overflow":1,"lambda":1,"step":null,"wns":null,"tns":null,"timing":false,"counters":{"bogus":1}}"#
        )
        .is_err());
        // Missing required field (no overflow).
        assert!(parse_record(
            r#"{"t":"iter","iter":0,"level":0,"wl":1,"hpwl":null,"lambda":1,"step":null,"wns":null,"tns":null,"timing":false,"counters":{}}"#
        )
        .is_err());
        // Wrong schema tag.
        assert!(parse_record(
            r#"{"t":"header","schema":"dtp-trace-v1","mode":"x","seed":"0","threads":0,"pool_threads":1,"host_threads":1,"design":"d","cells":1,"nets":1,"pins":1,"region":[0,0,1,1],"clock_period":1,"source":null,"config":{},"mode_config":{}}"#
        )
        .is_err());
        // Negative counter.
        assert!(parse_record(
            r#"{"t":"span","iter":0,"level":0,"phase_ns":{"legalize":-5}}"#
        )
        .is_err());
    }
}
