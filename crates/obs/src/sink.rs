//! Structured sinks: the per-iteration JSONL event stream, the end-of-run
//! `metrics.json` report, and the human-readable phase table.
//!
//! The JSONL writer is allocation-free per event (integers and floats format
//! on the stack, straight into the caller's `Write`), so streaming a trace
//! does not perturb the zero-allocation steady-state loop. The report
//! builders run once at end-of-run and allocate freely.

use crate::counters::{Counter, Gauge};
use crate::json;
use crate::phase::Phase;
use crate::span::PhaseSlot;
use std::fmt::Write as FmtWrite;
use std::io::{self, Write};

/// Identifies the `metrics.json` layout; bump on breaking shape changes.
pub const METRICS_SCHEMA: &str = "dtp-metrics-v1";

/// Identifies the JSONL trace layout (one header record, then per-iteration
/// `iter`/`span` record pairs).
pub const TRACE_SCHEMA: &str = "dtp-trace-v2";

/// The QoR samples of one iteration, as handed to the JSONL sink.
///
/// A superset of the flow's `TracePoint`: `hpwl`/`wns`/`tns`/`step` are
/// `NAN` on iterations where they were not computed and serialize as `null`.
#[derive(Clone, Copy, Debug)]
pub struct IterEvent {
    /// Iteration index (within its level).
    pub iter: u64,
    /// V-cycle level: 0 = flat/fine placement, >0 = coarse clustered levels
    /// (higher = coarser).
    pub level: u32,
    /// Smoothed (weighted-average) wirelength from the gradient evaluation.
    pub wl: f64,
    /// Exact HPWL; `NAN` when not computed this iteration.
    pub hpwl: f64,
    /// Density overflow.
    pub overflow: f64,
    /// Density-penalty multiplier λ used by this iteration's gradient.
    pub lambda: f64,
    /// Nesterov step length chosen this iteration; `NAN` when no step ran.
    pub step: f64,
    /// Exact WNS (ps); `NAN` when untraced.
    pub wns: f64,
    /// Exact TNS (ps); `NAN` when untraced.
    pub tns: f64,
    /// Whether timing-driven forces were active this iteration.
    pub timing: bool,
}

/// Writes one v2 `iter` record: the iteration's deterministic convergence
/// fields plus its per-counter increments. One valid JSON object per line,
/// `NAN`/infinities as `null`, no heap allocation.
///
/// Everything on an `iter` line is bit-for-bit reproducible for a fixed
/// config/seed (at any pool width); wall-clock goes on the companion `span`
/// line ([`write_span_record`]) so determinism checks can compare `iter`
/// records byte-wise.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write_iter_record(
    w: &mut dyn Write,
    ev: &IterEvent,
    counter_delta: &[u64; Counter::COUNT],
) -> io::Result<()> {
    write!(
        w,
        "{{\"t\":\"iter\",\"iter\":{},\"level\":{},\"wl\":",
        ev.iter, ev.level
    )?;
    json::write_f64(w, ev.wl)?;
    w.write_all(b",\"hpwl\":")?;
    json::write_f64(w, ev.hpwl)?;
    w.write_all(b",\"overflow\":")?;
    json::write_f64(w, ev.overflow)?;
    w.write_all(b",\"lambda\":")?;
    json::write_f64(w, ev.lambda)?;
    w.write_all(b",\"step\":")?;
    json::write_f64(w, ev.step)?;
    w.write_all(b",\"wns\":")?;
    json::write_f64(w, ev.wns)?;
    w.write_all(b",\"tns\":")?;
    json::write_f64(w, ev.tns)?;
    write!(
        w,
        ",\"timing\":{},\"counters\":{{",
        if ev.timing { "true" } else { "false" }
    )?;
    let mut first = true;
    for c in Counter::ALL {
        let n = counter_delta[c.index()];
        if n == 0 {
            continue; // keep lines compact: counters that did not move are omitted
        }
        if !first {
            w.write_all(b",")?;
        }
        first = false;
        write!(w, "\"{}\":{}", c.name(), n)?;
    }
    w.write_all(b"}}\n")
}

/// Writes one v2 `span` record: the iteration's per-phase nanoseconds.
/// One valid JSON object per line, no heap allocation.
///
/// Span records carry the only nondeterministic trace content (wall-clock),
/// which is why they are separate lines: diff/replay skip them by default.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write_span_record(
    w: &mut dyn Write,
    iter: u64,
    level: u32,
    phase_ns: &[u64; Phase::COUNT],
) -> io::Result<()> {
    write!(
        w,
        "{{\"t\":\"span\",\"iter\":{iter},\"level\":{level},\"phase_ns\":{{"
    )?;
    let mut first = true;
    for p in Phase::ALL {
        let ns = phase_ns[p.index()];
        if ns == 0 {
            continue; // keep lines compact: phases that did not run are omitted
        }
        if !first {
            w.write_all(b",")?;
        }
        first = false;
        write!(w, "\"{}\":{}", p.name(), ns)?;
    }
    w.write_all(b"}}\n")
}

/// One phase's line in the end-of-run report.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PhaseReport {
    /// The phase.
    pub phase: Phase,
    /// Total wall-clock seconds.
    pub seconds: f64,
    /// Completed spans.
    pub calls: u64,
}

/// End-of-run snapshot of the span table and registry, ready for sinks.
#[derive(Clone, Debug)]
pub struct Report {
    /// Per-phase totals, in [`Phase::ALL`] order (zero-call phases kept so
    /// consumers see the full taxonomy).
    pub phases: Vec<PhaseReport>,
    /// Counter totals, in [`Counter::ALL`] order.
    pub counters: Vec<(&'static str, u64)>,
    /// Gauge values, in [`Gauge::ALL`] order.
    pub gauges: Vec<(&'static str, f64)>,
    /// Seconds across the STA phases (the `timing_runtime` view).
    pub sta_seconds: f64,
    /// Seconds across every phase.
    pub total_seconds: f64,
}

/// Final quality-of-result fields embedded in `metrics.json`.
#[derive(Clone, Debug, Default)]
pub struct QorSummary {
    /// Design name.
    pub design: String,
    /// Flow label ("DREAMPlace", "NetWeighting", "Ours").
    pub mode: String,
    /// Final HPWL (µm).
    pub hpwl: f64,
    /// Final exact WNS (ps).
    pub wns: f64,
    /// Final exact TNS (ps).
    pub tns: f64,
    /// Global-placement iterations executed.
    pub iterations: u64,
    /// Whole-flow wall-clock seconds.
    pub runtime: f64,
    /// Seconds inside timing analysis (sum of STA-phase spans).
    pub timing_runtime: f64,
}

impl Report {
    pub(crate) fn build(
        slots: &[PhaseSlot; Phase::COUNT],
        counters: &[u64; Counter::COUNT],
        gauges: &[f64; Gauge::COUNT],
    ) -> Report {
        let phases: Vec<PhaseReport> = Phase::ALL
            .iter()
            .map(|&p| PhaseReport {
                phase: p,
                seconds: slots[p.index()].nanos as f64 * 1e-9,
                calls: slots[p.index()].calls,
            })
            .collect();
        let sta_seconds = phases
            .iter()
            .filter(|r| r.phase.is_sta())
            .map(|r| r.seconds)
            .sum();
        let total_seconds = phases.iter().map(|r| r.seconds).sum();
        Report {
            phases,
            counters: Counter::ALL.iter().map(|&c| (c.name(), counters[c.index()])).collect(),
            gauges: Gauge::ALL.iter().map(|&g| (g.name(), gauges[g.index()])).collect(),
            sta_seconds,
            total_seconds,
        }
    }

    /// Renders the human-readable phase table printed under `--profile`.
    pub fn table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "phase breakdown ({:.3}s instrumented):", self.total_seconds);
        let _ = writeln!(out, "  {:<16} {:>10} {:>9} {:>7}", "phase", "seconds", "calls", "share");
        for r in &self.phases {
            if r.calls == 0 {
                continue;
            }
            let share = if self.total_seconds > 0.0 {
                100.0 * r.seconds / self.total_seconds
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "  {:<16} {:>10.4} {:>9} {:>6.1}%",
                r.phase.name(),
                r.seconds,
                r.calls,
                share
            );
        }
        let _ = writeln!(out, "  {:<16} {:>10.4}", "sta (timing)", self.sta_seconds);
        let mut nonzero: Vec<&(&str, u64)> =
            self.counters.iter().filter(|(_, n)| *n > 0).collect();
        if !nonzero.is_empty() {
            nonzero.sort_by_key(|(name, _)| *name);
            let _ = writeln!(out, "counters:");
            for (name, n) in nonzero {
                let _ = writeln!(out, "  {name:<18} {n}");
            }
        }
        out
    }

    /// Serializes the report (plus optional QoR block) as `metrics.json`.
    ///
    /// The output always parses with [`crate::json::parse`]; non-finite
    /// floats become `null`.
    pub fn to_json(&self, qor: Option<&QorSummary>) -> String {
        let mut s = String::with_capacity(2048);
        s.push_str("{\n  \"schema\": \"");
        s.push_str(METRICS_SCHEMA);
        s.push_str("\",\n");
        if let Some(q) = qor {
            s.push_str("  \"design\": ");
            json::push_str_escaped(&mut s, &q.design);
            s.push_str(",\n  \"mode\": ");
            json::push_str_escaped(&mut s, &q.mode);
            s.push_str(",\n  \"qor\": {");
            let fields = [
                ("hpwl", q.hpwl),
                ("wns", q.wns),
                ("tns", q.tns),
                ("iterations", q.iterations as f64),
                ("runtime_s", q.runtime),
                ("timing_runtime_s", q.timing_runtime),
            ];
            for (i, (name, v)) in fields.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                let _ = write!(s, "\"{name}\": ");
                json::push_f64(&mut s, *v);
            }
            s.push_str("},\n");
        }
        let _ = write!(s, "  \"sta_seconds\": ");
        json::push_f64(&mut s, self.sta_seconds);
        let _ = write!(s, ",\n  \"total_seconds\": ");
        json::push_f64(&mut s, self.total_seconds);
        s.push_str(",\n  \"phases\": [\n");
        for (i, r) in self.phases.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"phase\": \"{}\", \"seconds\": ",
                r.phase.name()
            );
            json::push_f64(&mut s, r.seconds);
            let _ = write!(s, ", \"calls\": {}}}", r.calls);
            s.push_str(if i + 1 < self.phases.len() { ",\n" } else { "\n" });
        }
        s.push_str("  ],\n  \"counters\": {");
        for (i, (name, n)) in self.counters.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let _ = write!(s, "\"{name}\": {n}");
        }
        s.push_str("},\n  \"gauges\": {");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let _ = write!(s, "\"{name}\": ");
            json::push_f64(&mut s, *v);
        }
        s.push_str("}\n}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanTable;

    fn sample_report() -> Report {
        let mut t = SpanTable::default();
        t.add(Phase::StaForward, 1_000_000);
        t.add(Phase::WirelengthGrad, 2_000_000);
        let mut counters = [0u64; Counter::COUNT];
        counters[Counter::StaIncremental.index()] = 42;
        let mut gauges = [0f64; Gauge::COUNT];
        gauges[Gauge::FftBackend.index()] = 1.0;
        let slots: [PhaseSlot; Phase::COUNT] =
            std::array::from_fn(|i| t.slot(Phase::ALL[i]));
        Report::build(&slots, &counters, &gauges)
    }

    #[test]
    fn iter_record_is_one_valid_object_per_line() {
        let mut buf: Vec<u8> = Vec::new();
        let ev = IterEvent {
            iter: 3,
            level: 2,
            wl: 123.5,
            hpwl: f64::NAN,
            overflow: 0.7,
            lambda: 1.5e-4,
            step: f64::NAN,
            wns: f64::NAN,
            tns: f64::NEG_INFINITY,
            timing: true,
        };
        let mut cd = [0u64; Counter::COUNT];
        cd[Counter::Iterations.index()] = 1;
        write_iter_record(&mut buf, &ev, &cd).unwrap();
        write_iter_record(&mut buf, &ev, &cd).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 2);
        for line in text.lines() {
            let v = crate::json::parse(line).expect("line parses");
            assert_eq!(v.get("t").unwrap().as_str(), Some("iter"));
            assert_eq!(v.get("iter").unwrap().as_f64(), Some(3.0));
            assert_eq!(v.get("level").unwrap().as_f64(), Some(2.0));
            assert!(v.get("hpwl").unwrap().is_null());
            assert_eq!(v.get("lambda").unwrap().as_f64(), Some(1.5e-4));
            assert!(v.get("step").unwrap().is_null());
            assert!(v.get("wns").unwrap().is_null());
            assert!(v.get("tns").unwrap().is_null(), "-inf must serialize as null");
            assert_eq!(v.get("timing").unwrap().as_bool(), Some(true));
            assert_eq!(
                v.get("counters").unwrap().get("iterations").unwrap().as_f64(),
                Some(1.0)
            );
        }
        assert!(!text.contains("NaN"), "raw NaN token leaked into JSONL");
    }

    #[test]
    fn span_record_carries_only_nonzero_phases() {
        let mut buf: Vec<u8> = Vec::new();
        let mut ns = [0u64; Phase::COUNT];
        ns[Phase::DensityGrad.index()] = 55;
        write_span_record(&mut buf, 7, 1, &ns).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let v = crate::json::parse(text.trim()).expect("line parses");
        assert_eq!(v.get("t").unwrap().as_str(), Some("span"));
        assert_eq!(v.get("iter").unwrap().as_f64(), Some(7.0));
        assert_eq!(v.get("level").unwrap().as_f64(), Some(1.0));
        let phase_ns = v.get("phase_ns").unwrap();
        assert_eq!(phase_ns.get("density_grad").unwrap().as_f64(), Some(55.0));
        assert!(phase_ns.get("legalize").is_none(), "zero phase serialized");
    }

    #[test]
    fn metrics_json_parses_and_carries_qor() {
        let qor = QorSummary {
            design: "sb\"4".into(),
            mode: "Ours".into(),
            hpwl: 1.5e6,
            wns: -42.0,
            tns: f64::NAN,
            iterations: 300,
            runtime: 1.25,
            timing_runtime: 0.5,
        };
        let text = sample_report().to_json(Some(&qor));
        let v = crate::json::parse(&text).expect("metrics.json parses");
        assert_eq!(v.get("schema").unwrap().as_str(), Some(METRICS_SCHEMA));
        assert_eq!(v.get("design").unwrap().as_str(), Some("sb\"4"));
        let q = v.get("qor").unwrap();
        assert_eq!(q.get("wns").unwrap().as_f64(), Some(-42.0));
        assert!(q.get("tns").unwrap().is_null());
        let phases = v.get("phases").unwrap().as_array().unwrap();
        assert_eq!(phases.len(), Phase::COUNT);
        assert_eq!(
            v.get("counters").unwrap().get("sta_incremental").unwrap().as_f64(),
            Some(42.0)
        );
        assert_eq!(
            v.get("gauges").unwrap().get("fft_backend").unwrap().as_f64(),
            Some(1.0)
        );
    }

    #[test]
    fn phase_table_lists_only_active_phases() {
        let table = sample_report().table();
        assert!(table.contains("sta_forward"));
        assert!(table.contains("wirelength_grad"));
        assert!(!table.contains("legalize"), "zero-call phase listed:\n{table}");
        assert!(table.contains("sta_incremental"));
    }
}
