//! Minimal JSON support for the structured sinks: allocation-free writer
//! helpers and a small validating parser.
//!
//! The workspace's serde is an offline marker shim, so the sinks hand-write
//! their JSON. Two invariants live here:
//!
//! * **Non-finite floats serialize as `null`** ([`write_f64`]/[`push_f64`]) —
//!   untraced-iteration WNS/TNS are `NAN` in-memory and a naive `{}`-format
//!   would emit the invalid token `NaN`.
//! * **Everything emitted must parse back**: [`parse`] is a strict
//!   recursive-descent parser used by the tests, `bench_obs`, and CI to
//!   validate `metrics.json` and every JSONL line.

use std::fmt::Write as FmtWrite;
use std::io::{self, Write};

/// Writes `v` as a JSON number, or `null` when `v` is not finite.
///
/// Rust's `{}` float formatting never produces exponents or locale
/// separators, so finite values are always valid JSON number tokens. The
/// write is allocation-free (std formats floats on the stack).
#[inline]
pub fn write_f64(w: &mut dyn Write, v: f64) -> io::Result<()> {
    if v.is_finite() {
        write!(w, "{v}")
    } else {
        w.write_all(b"null")
    }
}

/// String-building counterpart of [`write_f64`].
pub fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// Appends `s` as a JSON string literal (quoted, escaped).
pub fn push_str_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source order (duplicate keys are kept).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object member lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Appends this value as compact JSON (objects keep member order, so a
    /// parse → re-serialize round trip is byte-stable for sink output).
    pub fn push_json(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(v) => push_f64(out, *v),
            Value::Str(s) => push_str_escaped(out, s),
            Value::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.push_json(out);
                }
                out.push(']');
            }
            Value::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    push_str_escaped(out, k);
                    out.push(':');
                    v.push_json(out);
                }
                out.push('}');
            }
        }
    }
}

/// Parses exactly one JSON value from `s` (surrounding whitespace allowed;
/// trailing non-whitespace is an error).
///
/// # Errors
///
/// Returns a message naming the byte offset of the first syntax error.
pub fn parse(s: &str) -> Result<Value, String> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn expect_word(&mut self, word: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(format!("expected `{word}` at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.expect_word("true").map(|_| Value::Bool(true)),
            Some(b'f') => self.expect_word("false").map(|_| Value::Bool(false)),
            Some(b'n') => self.expect_word("null").map(|_| Value::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            members.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err("bad low surrogate".into());
                                }
                                let code =
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code).ok_or("bad surrogate pair")?
                            } else {
                                char::from_u32(hi).ok_or("lone surrogate")?
                            };
                            out.push(c);
                            continue; // hex4 advanced past the digits
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(format!("raw control byte at {}", self.pos))
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (input is &str, so boundaries
                    // are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or("truncated \\u escape")?;
        let s = std::str::from_utf8(slice).map_err(|_| "bad \\u escape")?;
        let v = u32::from_str_radix(s, 16).map_err(|_| "bad \\u escape")?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits = |p: &mut Self| {
            let s = p.pos;
            while p.peek().is_some_and(|b| b.is_ascii_digit()) {
                p.pos += 1;
            }
            p.pos > s
        };
        if !digits(self) {
            return Err(format!("bad number at byte {start}"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !digits(self) {
                return Err(format!("bad number at byte {start}"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !digits(self) {
                return Err(format!("bad number at byte {start}"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("bad number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn non_finite_floats_serialize_as_null() {
        // The TracePoint-NAN fix: untraced WNS/TNS are NAN in memory and
        // must become `null` on the wire, not the invalid token `NaN`.
        let mut s = String::new();
        push_f64(&mut s, f64::NAN);
        s.push(',');
        push_f64(&mut s, f64::INFINITY);
        s.push(',');
        push_f64(&mut s, f64::NEG_INFINITY);
        s.push(',');
        push_f64(&mut s, -1.25);
        assert_eq!(s, "null,null,null,-1.25");

        let mut buf: Vec<u8> = Vec::new();
        write_f64(&mut buf, f64::NAN).unwrap();
        buf.push(b' ');
        write_f64(&mut buf, 2.5).unwrap();
        assert_eq!(buf, b"null 2.5");

        // And the result must parse as valid JSON.
        let v = parse("[null, null, null, -1.25]").unwrap();
        let arr = v.as_array().unwrap();
        assert!(arr[0].is_null());
        assert_eq!(arr[3].as_f64(), Some(-1.25));
    }

    #[test]
    fn escaping_round_trips() {
        let nasty = "a\"b\\c\nd\te\u{1}é";
        let mut s = String::new();
        push_str_escaped(&mut s, nasty);
        let v = parse(&s).unwrap();
        assert_eq!(v.as_str(), Some(nasty));
    }

    #[test]
    fn parser_accepts_typical_metrics_shapes() {
        let v = parse(
            r#"{"schema":"dtp-metrics-v1","qor":{"wns":-12.5,"tns":null},
               "phases":[{"phase":"sta_forward","seconds":1.5e-3,"calls":40}],
               "ok":true,"empty":{},"list":[]}"#,
        )
        .unwrap();
        assert_eq!(v.get("schema").unwrap().as_str(), Some("dtp-metrics-v1"));
        assert!(v.get("qor").unwrap().get("tns").unwrap().is_null());
        let phases = v.get("phases").unwrap().as_array().unwrap();
        assert_eq!(phases[0].get("calls").unwrap().as_f64(), Some(40.0));
        assert_eq!(v.get("ok"), Some(&Value::Bool(true)));
    }

    #[test]
    fn parser_rejects_invalid_inputs() {
        for bad in [
            "", "{", "[1,", "{\"a\":}", "NaN", "{'a':1}", "[1] trailing",
            "\"unterminated", "01e", "{\"a\":1,}",
        ] {
            assert!(parse(bad).is_err(), "accepted invalid JSON: {bad:?}");
        }
    }

    #[test]
    fn unicode_escapes_decode() {
        // Raw UTF-8 pass-through.
        assert_eq!(parse(r#""Aé""#).unwrap().as_str(), Some("Aé"));
        // \uXXXX escapes, including a surrogate pair.
        assert_eq!(parse("\"\\u0041\\u00e9\"").unwrap().as_str(), Some("Aé"));
        assert_eq!(parse("\"\\ud83d\\ude00\"").unwrap().as_str(), Some("😀"));
        // A lone high surrogate is invalid.
        assert!(parse("\"\\ud83d\"").is_err());
    }
}
