//! `dtp-obs` — zero-overhead observability for the placement flow.
//!
//! The flow's Table-3/Figure-8 claims are all trajectories — WNS/TNS/HPWL
//! vs. iteration and where the runtime goes — so the flow needs to answer
//! "which phase regressed, which cache stopped hitting, which incremental
//! path fell back to a full rebuild" without a debugger. This crate provides
//! the four pieces, all behind one [`Observer`] handle:
//!
//! 1. **Span-based phase profiler** — scoped timers over the closed
//!    [`Phase`] enum accumulate into preallocated slots ([`SpanTable`]) and
//!    a bounded ring of recent iterations ([`IterRing`]). Recording a span
//!    is two `Instant` reads and an array add: the observed steady-state
//!    loop stays zero-allocation (asserted by `bench_obs`).
//! 2. **Counters/gauges registry** ([`Counter`], [`Gauge`], [`Registry`]) —
//!    the health signals of the incremental subsystems: dirty-net counts,
//!    incremental-vs-full STA fallbacks, table-vs-Prim Steiner backends,
//!    FFT-vs-dense Poisson selection, pool dispatches, overflow bins.
//! 3. **Structured sinks** — the schema-v2 JSONL flight recorder
//!    (`--trace-out`): one [`TraceHeader`] record carrying config, seed,
//!    pool width, and design fingerprint, then per-iteration pairs of a
//!    deterministic `iter` record ([`write_iter_record`]) and a wall-clock
//!    `span` record ([`write_span_record`]); plus an end-of-run
//!    `metrics.json` ([`Report::to_json`], `--metrics-out`) and a
//!    human-readable phase table ([`Report::table`], `--profile`).
//!    Non-finite floats serialize as `null`; every emitted line parses
//!    back through [`trace::parse_record`] / [`json::parse`].
//! 4. **Leveled logging facade** — [`error!`]/[`warn!`]/[`info!`]/
//!    [`debug!`] gated by a process-global [`Level`].
//!
//! # Inertness contract
//!
//! With observability off ([`Observer::disabled`]) every call is a branch on
//! a `bool` — no ring, no counters, no sinks — **except** the STA phases
//! ([`Phase::is_sta`]), which keep their `Instant` reads so the flow's
//! `timing_runtime` stays value-compatible with the legacy hand-timed
//! accounting (the same handful of clock reads the old code did). Nothing
//! here touches the optimization state, so observability on vs. off is
//! bit-for-bit identical on placement trajectories; the flow's golden tests
//! assert it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod counters;
pub mod json;
pub mod log;
mod phase;
mod sink;
mod span;
pub mod trace;

pub use counters::{Counter, Gauge, Registry};
pub use log::Level;
pub use phase::Phase;
pub use sink::{
    write_iter_record, write_span_record, IterEvent, PhaseReport, QorSummary, Report,
    METRICS_SCHEMA, TRACE_SCHEMA,
};
pub use span::{IterRing, IterSample, PhaseSlot, SpanStart, SpanTable};
pub use trace::{TraceHeader, TraceIter, TraceRecord, TraceSpan};

use std::io::Write;

/// Ring capacity when observability is enabled: enough to hold the recent
/// window of any realistic run without unbounded growth.
const RING_CAPACITY: usize = 256;

/// The per-run observability handle: spans + registry + ring + optional
/// JSONL sink. Create one per flow run.
pub struct Observer {
    enabled: bool,
    spans: SpanTable,
    registry: Registry,
    ring: IterRing,
    /// Span/counter snapshots at `iter_begin`, for per-iteration deltas.
    mark_ns: [u64; Phase::COUNT],
    mark_counters: [u64; Counter::COUNT],
    in_iter: bool,
    trace: Option<Box<dyn Write + Send>>,
    /// Latched on the first sink error so one bad disk doesn't spam.
    trace_failed: bool,
    /// The design-source spec recorded in the trace header (for replay).
    design_source: Option<String>,
}

impl Observer {
    /// A new observer; `enabled = false` yields the inert instance.
    pub fn new(enabled: bool) -> Observer {
        Observer {
            enabled,
            spans: SpanTable::default(),
            registry: Registry::default(),
            ring: IterRing::new(if enabled { RING_CAPACITY } else { 0 }),
            mark_ns: [0; Phase::COUNT],
            mark_counters: [0; Counter::COUNT],
            in_iter: false,
            trace: None,
            trace_failed: false,
            design_source: None,
        }
    }

    /// The inert observer: no ring, no counters, no sinks; only the STA
    /// phases keep their clock reads (see the crate docs).
    pub fn disabled() -> Observer {
        Observer::new(false)
    }

    /// Whether full observability is on.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Attaches a JSONL sink for per-iteration events (e.g. a buffered
    /// file). Implies nothing about `enabled`; events flow only when the
    /// observer is enabled.
    pub fn set_trace_writer(&mut self, w: Box<dyn Write + Send>) {
        self.trace = Some(w);
        self.trace_failed = false;
    }

    /// Records the design-source spec (e.g. the CLI design argument) so the
    /// flow can stamp it into the trace header, enabling `dtp trace replay`
    /// without a user-supplied design override.
    pub fn set_design_source(&mut self, spec: &str) {
        self.design_source = Some(spec.to_string());
    }

    /// The recorded design-source spec, if any.
    pub fn design_source(&self) -> Option<&str> {
        self.design_source.as_deref()
    }

    /// Writes the v2 trace header record to the attached sink, if any.
    /// Call once, before the first iteration. Allocates (once per run).
    pub fn emit_header(&mut self, header: &TraceHeader) {
        if !self.enabled {
            return;
        }
        if let Some(w) = self.trace.as_mut() {
            if !self.trace_failed {
                if let Err(e) = header.write_jsonl(w.as_mut()) {
                    self.trace_failed = true;
                    crate::warn!("trace sink failed, disabling stream: {e}");
                }
            }
        }
    }

    /// Starts a span. When observability is off, only [`Phase::is_sta`]
    /// phases are timed (the legacy `timing_runtime` accounting); all other
    /// phases return a free no-op start.
    #[inline]
    pub fn start(&self, phase: Phase) -> SpanStart {
        if self.enabled || phase.is_sta() {
            SpanStart::now()
        } else {
            SpanStart::off()
        }
    }

    /// Completes a span started with [`Observer::start`].
    #[inline]
    pub fn stop(&mut self, phase: Phase, start: SpanStart) {
        if let Some(ns) = start.elapsed_ns() {
            self.spans.add(phase, ns);
        }
    }

    /// Times `f` as one span of `phase`.
    #[inline]
    pub fn time<R>(&mut self, phase: Phase, f: impl FnOnce() -> R) -> R {
        let s = self.start(phase);
        let r = f();
        self.stop(phase, s);
        r
    }

    /// Adds `n` to `counter` (no-op when disabled).
    #[inline]
    pub fn add(&mut self, counter: Counter, n: u64) {
        if self.enabled {
            self.registry.add(counter, n);
        }
    }

    /// Sets `gauge` to `v` (no-op when disabled).
    #[inline]
    pub fn gauge(&mut self, gauge: Gauge, v: f64) {
        if self.enabled {
            self.registry.set(gauge, v);
        }
    }

    /// Marks the start of one loop iteration: snapshots span and counter
    /// totals so `iter_end` can emit this iteration's deltas. No allocation.
    pub fn iter_begin(&mut self) {
        if !self.enabled {
            return;
        }
        self.mark_ns = self.spans.nanos();
        self.mark_counters = self.registry.counters();
        self.in_iter = true;
    }

    /// Completes one loop iteration: pushes the sample into the ring and
    /// streams a JSONL event if a sink is attached. No allocation.
    pub fn iter_end(&mut self, ev: IterEvent) {
        if !self.enabled || !self.in_iter {
            return;
        }
        self.in_iter = false;
        let now_ns = self.spans.nanos();
        let now_counters = self.registry.counters();
        let mut sample = IterSample {
            iter: ev.iter,
            wl: ev.wl,
            hpwl: ev.hpwl,
            overflow: ev.overflow,
            wns: ev.wns,
            tns: ev.tns,
            ..IterSample::default()
        };
        for (i, ns) in now_ns.iter().enumerate() {
            sample.phase_ns[i] = ns - self.mark_ns[i];
        }
        for (i, n) in now_counters.iter().enumerate() {
            sample.counter_delta[i] = n - self.mark_counters[i];
        }
        self.ring.push(sample);
        if let Some(w) = self.trace.as_mut() {
            if !self.trace_failed {
                // Deterministic convergence record first, then the
                // wall-clock span record (diff/replay skip the latter).
                let res = write_iter_record(w.as_mut(), &ev, &sample.counter_delta).and_then(
                    |()| write_span_record(w.as_mut(), ev.iter, ev.level, &sample.phase_ns),
                );
                if let Err(e) = res {
                    self.trace_failed = true;
                    crate::warn!("trace sink failed, disabling stream: {e}");
                }
            }
        }
    }

    /// Seconds accumulated across the STA phases — the span-table view of
    /// the flow's `timing_runtime`. Works with observability off.
    pub fn sta_seconds(&self) -> f64 {
        self.spans.sta_seconds()
    }

    /// The span table.
    pub fn spans(&self) -> &SpanTable {
        &self.spans
    }

    /// The counter/gauge registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The ring of recent iteration samples.
    pub fn ring(&self) -> &IterRing {
        &self.ring
    }

    /// Snapshots spans/counters/gauges into an end-of-run [`Report`].
    pub fn report(&self) -> Report {
        let slots: [PhaseSlot; Phase::COUNT] =
            std::array::from_fn(|i| self.spans.slot(Phase::ALL[i]));
        Report::build(&slots, &self.registry.counters(), &self.gauges_array())
    }

    fn gauges_array(&self) -> [f64; Gauge::COUNT] {
        std::array::from_fn(|i| self.registry.gauge(Gauge::ALL[i]))
    }

    /// Flushes the trace sink (call once at end-of-run).
    pub fn flush(&mut self) {
        if let Some(w) = self.trace.as_mut() {
            if let Err(e) = w.flush() {
                if !self.trace_failed {
                    self.trace_failed = true;
                    crate::warn!("trace sink flush failed: {e}");
                }
            }
        }
    }
}

impl std::fmt::Debug for Observer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Observer")
            .field("enabled", &self.enabled)
            .field("ring_len", &self.ring.len())
            .field("has_trace_sink", &self.trace.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    /// A `Write` that appends into a shared buffer (test sink).
    #[derive(Clone)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn disabled_observer_is_inert_except_sta_spans() {
        let mut obs = Observer::disabled();
        let s = obs.start(Phase::WirelengthGrad);
        assert!(s.elapsed_ns().is_none(), "non-STA phase timed while disabled");
        obs.stop(Phase::WirelengthGrad, s);
        let s = obs.start(Phase::StaForward);
        assert!(s.elapsed_ns().is_some(), "STA phase must stay timed");
        obs.stop(Phase::StaForward, s);
        obs.add(Counter::Iterations, 5);
        obs.gauge(Gauge::FftBackend, 1.0);
        obs.iter_begin();
        obs.iter_end(IterEvent {
            iter: 0,
            level: 0,
            wl: 1.0,
            hpwl: 1.0,
            overflow: 1.0,
            lambda: 1.0,
            step: f64::NAN,
            wns: f64::NAN,
            tns: f64::NAN,
            timing: false,
        });
        assert_eq!(obs.registry().get(Counter::Iterations), 0);
        assert_eq!(obs.registry().gauge(Gauge::FftBackend), 0.0);
        assert!(obs.ring().is_empty());
        assert_eq!(obs.spans().slot(Phase::WirelengthGrad).calls, 0);
        assert_eq!(obs.spans().slot(Phase::StaForward).calls, 1);
        assert!(obs.sta_seconds() >= 0.0);
    }

    #[test]
    fn iteration_deltas_land_in_ring_and_sink() {
        let buf = Arc::new(Mutex::new(Vec::new()));
        let mut obs = Observer::new(true);
        obs.set_trace_writer(Box::new(SharedBuf(Arc::clone(&buf))));
        for iter in 0..3u64 {
            obs.iter_begin();
            obs.time(Phase::DensityGrad, || std::hint::black_box(17 * 13));
            obs.add(Counter::GeoDirtyNets, 4);
            obs.iter_end(IterEvent {
                iter,
                level: 0,
                wl: 100.0 + iter as f64,
                hpwl: f64::NAN,
                overflow: 0.9,
                lambda: 2e-4,
                step: 10.0,
                wns: f64::NAN,
                tns: f64::NAN,
                timing: false,
            });
        }
        obs.flush();
        assert_eq!(obs.ring().len(), 3);
        for s in obs.ring().iter() {
            assert_eq!(s.counter_delta[Counter::GeoDirtyNets.index()], 4);
            assert!(s.phase_ns[Phase::DensityGrad.index()] > 0);
        }
        // Totals accumulate across iterations.
        assert_eq!(obs.registry().get(Counter::GeoDirtyNets), 12);
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        // One `iter` + one `span` record per iteration.
        assert_eq!(text.lines().count(), 6);
        for (i, line) in text.lines().enumerate() {
            let rec = trace::parse_record(line).expect("JSONL line parses as a v2 record");
            match rec {
                TraceRecord::Iter(it) => {
                    assert_eq!(i % 2, 0, "iter record out of order at line {i}");
                    assert_eq!(it.iter, (i / 2) as u64);
                    assert!(it.wns.is_nan());
                    assert_eq!(it.counters[Counter::GeoDirtyNets.index()], 4);
                }
                TraceRecord::Span(sp) => {
                    assert_eq!(i % 2, 1, "span record out of order at line {i}");
                    assert_eq!(sp.iter, (i / 2) as u64);
                    assert!(sp.phase_ns[Phase::DensityGrad.index()] > 0);
                }
                TraceRecord::Header(_) => panic!("unexpected header record"),
            }
        }
    }

    #[test]
    fn header_record_streams_before_iterations() {
        let buf = Arc::new(Mutex::new(Vec::new()));
        let mut obs = Observer::new(true);
        obs.set_trace_writer(Box::new(SharedBuf(Arc::clone(&buf))));
        obs.set_design_source("sb1");
        let header = TraceHeader {
            schema: TRACE_SCHEMA.to_string(),
            mode: "wirelength".to_string(),
            seed: 42,
            threads: 0,
            pool_threads: 2,
            host_threads: 8,
            design: "sb1".to_string(),
            cells: 10,
            nets: 9,
            pins: 30,
            region: [0.0, 0.0, 64.0, 64.0],
            clock_period: 5000.0,
            source: obs.design_source().map(str::to_string),
            config: vec![("max_iters".to_string(), json::Value::Num(5.0))],
            mode_config: vec![],
        };
        obs.emit_header(&header);
        obs.iter_begin();
        obs.iter_end(IterEvent {
            iter: 0,
            level: 0,
            wl: 1.0,
            hpwl: 1.0,
            overflow: 0.5,
            lambda: 1e-4,
            step: 3.0,
            wns: f64::NAN,
            tns: f64::NAN,
            timing: false,
        });
        obs.flush();
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        let TraceRecord::Header(h) = trace::parse_record(lines[0]).unwrap() else {
            panic!("first record is not the header");
        };
        assert_eq!(h.source.as_deref(), Some("sb1"));
        assert_eq!(h.pool_threads, 2);
    }

    #[test]
    fn report_snapshot_reflects_state() {
        let mut obs = Observer::new(true);
        obs.time(Phase::StaForward, || std::hint::black_box(1 + 1));
        obs.add(Counter::StaFull, 1);
        obs.gauge(Gauge::PoolThreads, 8.0);
        let r = obs.report();
        assert!(r.sta_seconds > 0.0);
        assert!(r.phases.iter().any(|p| p.phase == Phase::StaForward && p.calls == 1));
        assert!(r.counters.contains(&("sta_full", 1)));
        assert!(r.gauges.contains(&("pool_threads", 8.0)));
        assert_eq!(r.sta_seconds, obs.sta_seconds());
    }
}
