//! The counters/gauges registry: the health signals of the incremental
//! subsystems, recorded into fixed arrays (no hashing, no allocation).
//!
//! Counters are monotone event totals incremented from the hot loop; gauges
//! are point-in-time values (backend selections, final cache statistics) set
//! once or at a coarse cadence. Both serialize into `metrics.json` and the
//! per-iteration JSONL stream (counters as per-iteration deltas).

/// Monotone event counters of the placement flow.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Counter {
    /// Global-placement iterations executed.
    Iterations = 0,
    /// Nets classified geometry-dirty (coordinate-only Steiner update).
    GeoDirtyNets,
    /// Nets classified topology-dirty (per-net Steiner rebuild).
    TopoDirtyNets,
    /// Incremental STA analyses.
    StaIncremental,
    /// Full STA analyses in the loop (first analysis or fallback).
    StaFull,
    /// Full analyses that were *fallbacks*: an incremental-eligible state
    /// existed but the dirty fraction (or γ mismatch) forced a full sweep.
    StaFallback,
    /// Full Steiner-forest builds.
    ForestBuilds,
    /// Incremental forest synchronizations (dirty-set sweeps).
    ForestSyncs,
    /// Full RUDY congestion-map builds.
    RudyBuilds,
    /// Incremental RUDY net updates (dirty-set batches applied).
    RudyIncUpdates,
    /// Exact STA runs performed only to feed the trace.
    TraceAnalyses,
    /// Top-K critical-path extractions (path-extraction mode).
    PathExtractions,
    /// Global-placement iterations spent on coarse (clustered) V-cycle
    /// levels; the per-record `level` field of the v2 trace attributes them
    /// to individual levels.
    CoarseIterations,
}

impl Counter {
    /// Number of counters (length of every per-counter array).
    pub const COUNT: usize = 13;

    /// Every counter, in slot order.
    pub const ALL: [Counter; Counter::COUNT] = [
        Counter::Iterations,
        Counter::GeoDirtyNets,
        Counter::TopoDirtyNets,
        Counter::StaIncremental,
        Counter::StaFull,
        Counter::StaFallback,
        Counter::ForestBuilds,
        Counter::ForestSyncs,
        Counter::RudyBuilds,
        Counter::RudyIncUpdates,
        Counter::TraceAnalyses,
        Counter::PathExtractions,
        Counter::CoarseIterations,
    ];

    /// Dense slot index of this counter.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable snake_case name used in the structured sinks.
    pub fn name(self) -> &'static str {
        match self {
            Counter::Iterations => "iterations",
            Counter::GeoDirtyNets => "geo_dirty_nets",
            Counter::TopoDirtyNets => "topo_dirty_nets",
            Counter::StaIncremental => "sta_incremental",
            Counter::StaFull => "sta_full",
            Counter::StaFallback => "sta_fallback",
            Counter::ForestBuilds => "forest_builds",
            Counter::ForestSyncs => "forest_syncs",
            Counter::RudyBuilds => "rudy_builds",
            Counter::RudyIncUpdates => "rudy_inc_updates",
            Counter::TraceAnalyses => "trace_analyses",
            Counter::PathExtractions => "path_extractions",
            Counter::CoarseIterations => "coarse_iterations",
        }
    }

    /// Inverse of [`Counter::name`]: resolves a sink name back to the
    /// counter (the v2 trace reader's lookup). `None` for unknown names.
    pub fn from_name(name: &str) -> Option<Counter> {
        Counter::ALL.iter().copied().find(|c| c.name() == name)
    }
}

/// Point-in-time gauges: backend selections and end-of-run cache statistics.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Gauge {
    /// 1.0 when the density model runs the FFT Poisson backend, 0.0 dense.
    FftBackend = 0,
    /// Fraction of routing bins over capacity in the final placement.
    OverflowedFrac,
    /// Steiner trees from exact constructions (final forest composition).
    RsmtExact,
    /// Steiner trees from topology-table lookups.
    RsmtTable,
    /// Steiner trees from the Prim fallback heuristic.
    RsmtPrim,
    /// Sequence-cache hits (rebuilds skipped) in the in-loop forest.
    RsmtSeqHits,
    /// Sequence-cache misses (topology reconstructions).
    RsmtSeqRebuilds,
    /// Parallel regions dispatched to the worker pool (process-wide).
    PoolDispatches,
    /// Worker-pool width (threads participating in a parallel region).
    PoolThreads,
    /// Row bands the legalizer partitioned the core into (1 = serial scan).
    LegalizeBands,
}

impl Gauge {
    /// Number of gauges (length of every per-gauge array).
    pub const COUNT: usize = 10;

    /// Every gauge, in slot order.
    pub const ALL: [Gauge; Gauge::COUNT] = [
        Gauge::FftBackend,
        Gauge::OverflowedFrac,
        Gauge::RsmtExact,
        Gauge::RsmtTable,
        Gauge::RsmtPrim,
        Gauge::RsmtSeqHits,
        Gauge::RsmtSeqRebuilds,
        Gauge::PoolDispatches,
        Gauge::PoolThreads,
        Gauge::LegalizeBands,
    ];

    /// Dense slot index of this gauge.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable snake_case name used in the structured sinks.
    pub fn name(self) -> &'static str {
        match self {
            Gauge::FftBackend => "fft_backend",
            Gauge::OverflowedFrac => "overflowed_frac",
            Gauge::RsmtExact => "rsmt_exact",
            Gauge::RsmtTable => "rsmt_table",
            Gauge::RsmtPrim => "rsmt_prim",
            Gauge::RsmtSeqHits => "rsmt_seq_hits",
            Gauge::RsmtSeqRebuilds => "rsmt_seq_rebuilds",
            Gauge::PoolDispatches => "pool_dispatches",
            Gauge::PoolThreads => "pool_threads",
            Gauge::LegalizeBands => "legalize_bands",
        }
    }
}

/// Fixed-size counter/gauge storage.
#[derive(Clone, Copy, Debug, Default)]
pub struct Registry {
    counters: [u64; Counter::COUNT],
    gauges: [f64; Gauge::COUNT],
}

impl Registry {
    /// Adds `n` to `counter`.
    #[inline]
    pub fn add(&mut self, counter: Counter, n: u64) {
        self.counters[counter.index()] += n;
    }

    /// Current total of `counter`.
    #[inline]
    pub fn get(&self, counter: Counter) -> u64 {
        self.counters[counter.index()]
    }

    /// All counter totals, in [`Counter::ALL`] order.
    #[inline]
    pub fn counters(&self) -> [u64; Counter::COUNT] {
        self.counters
    }

    /// Sets `gauge` to `v`.
    #[inline]
    pub fn set(&mut self, gauge: Gauge, v: f64) {
        self.gauges[gauge.index()] = v;
    }

    /// Current value of `gauge` (0.0 until first set).
    #[inline]
    pub fn gauge(&self, gauge: Gauge) -> f64 {
        self.gauges[gauge.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_indices_match_all() {
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
        for (i, g) in Gauge::ALL.iter().enumerate() {
            assert_eq!(g.index(), i);
        }
    }

    #[test]
    fn registry_accumulates_and_sets() {
        let mut r = Registry::default();
        r.add(Counter::GeoDirtyNets, 5);
        r.add(Counter::GeoDirtyNets, 2);
        r.set(Gauge::FftBackend, 1.0);
        assert_eq!(r.get(Counter::GeoDirtyNets), 7);
        assert_eq!(r.get(Counter::TopoDirtyNets), 0);
        assert_eq!(r.gauge(Gauge::FftBackend), 1.0);
    }
}
