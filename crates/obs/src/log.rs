//! Leveled logging facade: `obs::error!` / `warn!` / `info!` / `debug!`.
//!
//! A single process-global level ([`set_level`]) gates emission; disabled
//! levels cost one relaxed atomic load and no formatting (the macros check
//! the level *before* building `format_args!`). `info`/`debug` go to stdout,
//! `error`/`warn` to stderr, so `--log-level warn` yields a machine-clean
//! stdout (nothing but result lines). Tests can redirect everything into an
//! in-memory capture buffer with [`capture_begin`]/[`capture_end`].

use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Mutex;

/// Log severity, most severe first.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Unrecoverable or data-losing conditions.
    Error = 0,
    /// Suspicious conditions the run survives (fallbacks, clamped knobs).
    Warn = 1,
    /// Per-run summaries (default).
    Info = 2,
    /// Per-phase diagnostics.
    Debug = 3,
}

impl Level {
    /// Parses a level name (`error|warn|info|debug`), case-insensitive.
    pub fn parse(s: &str) -> Option<Level> {
        match s.to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            _ => None,
        }
    }

    /// The level's lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }
}

/// Current maximum emitted level, as a `u8` (default [`Level::Info`]).
static LEVEL: AtomicU8 = AtomicU8::new(Level::Info as u8);

/// In-memory capture sink for tests (`None` = real stdout/stderr).
static CAPTURE: Mutex<Option<String>> = Mutex::new(None);

/// Sets the process-global log level.
pub fn set_level(level: Level) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// The process-global log level.
pub fn level() -> Level {
    match LEVEL.load(Ordering::Relaxed) {
        0 => Level::Error,
        1 => Level::Warn,
        2 => Level::Info,
        _ => Level::Debug,
    }
}

/// Whether messages at `l` are currently emitted.
#[inline]
pub fn enabled(l: Level) -> bool {
    (l as u8) <= LEVEL.load(Ordering::Relaxed)
}

/// Emits one pre-gated message (the macros call this after the level check).
pub fn emit(l: Level, args: fmt::Arguments<'_>) {
    let mut cap = CAPTURE.lock().unwrap();
    if let Some(buf) = cap.as_mut() {
        use fmt::Write as _;
        let _ = writeln!(buf, "[{}] {}", l.name(), args);
    } else if l <= Level::Warn {
        eprintln!("{args}");
    } else {
        println!("{args}");
    }
}

/// Starts capturing all log output into an in-memory buffer (tests only).
pub fn capture_begin() {
    *CAPTURE.lock().unwrap() = Some(String::new());
}

/// Stops capturing and returns everything captured since [`capture_begin`].
pub fn capture_end() -> String {
    CAPTURE.lock().unwrap().take().unwrap_or_default()
}

/// Logs at [`Level::Error`] (stderr).
#[macro_export]
macro_rules! error {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::Level::Error) {
            $crate::log::emit($crate::Level::Error, format_args!($($arg)*));
        }
    };
}

/// Logs at [`Level::Warn`] (stderr).
#[macro_export]
macro_rules! warn {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::Level::Warn) {
            $crate::log::emit($crate::Level::Warn, format_args!($($arg)*));
        }
    };
}

/// Logs at [`Level::Info`] (stdout).
#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::Level::Info) {
            $crate::log::emit($crate::Level::Info, format_args!($($arg)*));
        }
    };
}

/// Logs at [`Level::Debug`] (stdout).
#[macro_export]
macro_rules! debug {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::Level::Debug) {
            $crate::log::emit($crate::Level::Debug, format_args!($($arg)*));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test exercises the whole facade: the level and capture buffer are
    // process-global, so splitting into several #[test]s would race under
    // the parallel test runner.
    #[test]
    fn levels_gate_and_capture_collects() {
        assert_eq!(Level::parse("WARN"), Some(Level::Warn));
        assert_eq!(Level::parse("debug"), Some(Level::Debug));
        assert_eq!(Level::parse("bogus"), None);

        capture_begin();
        set_level(Level::Warn);
        crate::info!("suppressed {}", 1);
        crate::warn!("kept {}", 2);
        crate::error!("kept too");
        let at_warn = capture_end();
        assert!(!at_warn.contains("suppressed"));
        assert!(at_warn.contains("[warn] kept 2"));
        assert!(at_warn.contains("[error] kept too"));

        capture_begin();
        set_level(Level::Debug);
        crate::debug!("visible now");
        let at_debug = capture_end();
        assert!(at_debug.contains("[debug] visible now"));

        set_level(Level::Info);
        assert!(enabled(Level::Info) && !enabled(Level::Debug));
    }
}
