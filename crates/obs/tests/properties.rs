//! Property tests for the structured sinks: for arbitrary counter/phase
//! states — including the NAN/±inf QoR samples of untraced iterations —
//! the JSONL writer must emit exactly one valid, parseable JSON object per
//! line, and `metrics.json` must always parse.

use dtp_obs::{json, write_jsonl_event, Counter, IterEvent, Phase};
use proptest::prelude::*;

/// Maps a raw u64 onto an "interesting" f64: finite values plus the
/// non-finite specials that must serialize as `null`.
fn telemetry_f64(raw: u64, scale: f64) -> f64 {
    match raw % 7 {
        0 => f64::NAN,
        1 => f64::INFINITY,
        2 => f64::NEG_INFINITY,
        3 => 0.0,
        4 => -(raw as f64) * scale,
        5 => (raw as f64) * scale * 1e-9,
        _ => (raw as f64) * scale,
    }
}

proptest! {
    #[test]
    fn jsonl_lines_always_parse(
        iters in proptest::collection::vec(
            (0u64..1_000_000, 0u64..u64::MAX, 0u64..u64::MAX),
            1..20
        ),
        ns_seed in 0u64..u64::MAX,
        cd_seed in 0u64..u64::MAX,
    ) {
        let mut buf: Vec<u8> = Vec::new();
        for &(iter, qa, qb) in &iters {
            // Arbitrary per-phase nanoseconds (sparse: some slots zero).
            let mut phase_ns = [0u64; Phase::COUNT];
            for (i, slot) in phase_ns.iter_mut().enumerate() {
                let v = ns_seed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(iter ^ (i as u64) << 32);
                *slot = if v % 3 == 0 { 0 } else { v % 1_000_000_000 };
            }
            let mut counter_delta = [0u64; Counter::COUNT];
            for (i, slot) in counter_delta.iter_mut().enumerate() {
                let v = cd_seed.wrapping_add((iter + 1).wrapping_mul(i as u64 + 1));
                *slot = if v % 4 == 0 { 0 } else { v % 100_000 };
            }
            let ev = IterEvent {
                iter,
                wl: telemetry_f64(qa, 1.0),
                hpwl: telemetry_f64(qa.rotate_left(13), 1e3),
                overflow: telemetry_f64(qb, 1e-3),
                wns: telemetry_f64(qb.rotate_left(27), -1.0),
                tns: telemetry_f64(qa ^ qb, -1e2),
            };
            write_jsonl_event(&mut buf, &ev, &phase_ns, &counter_delta).unwrap();
        }
        let text = String::from_utf8(buf).expect("sink output is UTF-8");
        // Exactly one line per event...
        prop_assert_eq!(text.lines().count(), iters.len());
        prop_assert!(text.ends_with('\n'));
        // ...and every line is a standalone valid JSON object with the
        // expected members; no NaN/Infinity token ever leaks.
        prop_assert!(!text.contains("NaN") && !text.contains("inf"));
        for (line, &(iter, _, _)) in text.lines().zip(&iters) {
            let v = match json::parse(line) {
                Ok(v) => v,
                Err(e) => return Err(TestCaseError::Fail(format!("bad line {line:?}: {e}"))),
            };
            prop_assert_eq!(v.get("iter").and_then(|x| x.as_f64()), Some(iter as f64));
            for key in ["wl", "hpwl", "overflow", "wns", "tns"] {
                let field = v.get(key).expect("QoR member present");
                prop_assert!(field.is_null() || field.as_f64().is_some());
            }
            prop_assert!(v.get("phase_ns").is_some());
            prop_assert!(v.get("counters").is_some());
        }
    }
}
