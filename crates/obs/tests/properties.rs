//! Property tests for the structured sinks: for arbitrary counter/phase
//! states — including the NAN/±inf QoR samples of untraced iterations —
//! the v2 JSONL writers must emit exactly one valid record per line, every
//! line must round-trip through the strict trace reader, and re-serializing
//! the parsed record must reproduce the input bytes.

use dtp_obs::{trace, Counter, IterEvent, Phase, TraceRecord};
use proptest::prelude::*;

/// Maps a raw u64 onto an "interesting" f64: finite values plus the
/// non-finite specials that must serialize as `null`.
fn telemetry_f64(raw: u64, scale: f64) -> f64 {
    match raw % 7 {
        0 => f64::NAN,
        1 => f64::INFINITY,
        2 => f64::NEG_INFINITY,
        3 => 0.0,
        4 => -(raw as f64) * scale,
        5 => (raw as f64) * scale * 1e-9,
        _ => (raw as f64) * scale,
    }
}

proptest! {
    #[test]
    fn v2_records_round_trip_through_the_reader(
        iters in proptest::collection::vec(
            (0u64..1_000_000, 0u32..6, 0u64..u64::MAX, 0u64..u64::MAX),
            1..20
        ),
        ns_seed in 0u64..u64::MAX,
        cd_seed in 0u64..u64::MAX,
    ) {
        let mut buf: Vec<u8> = Vec::new();
        for &(iter, level, qa, qb) in &iters {
            // Arbitrary per-phase nanoseconds (sparse: some slots zero).
            let mut phase_ns = [0u64; Phase::COUNT];
            for (i, slot) in phase_ns.iter_mut().enumerate() {
                let v = ns_seed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(iter ^ (i as u64) << 32);
                *slot = if v % 3 == 0 { 0 } else { v % 1_000_000_000 };
            }
            let mut counter_delta = [0u64; Counter::COUNT];
            for (i, slot) in counter_delta.iter_mut().enumerate() {
                let v = cd_seed.wrapping_add((iter + 1).wrapping_mul(i as u64 + 1));
                *slot = if v % 4 == 0 { 0 } else { v % 100_000 };
            }
            let ev = IterEvent {
                iter,
                level,
                wl: telemetry_f64(qa, 1.0),
                hpwl: telemetry_f64(qa.rotate_left(13), 1e3),
                overflow: telemetry_f64(qb, 1e-3),
                lambda: telemetry_f64(qb.rotate_left(7), 1e-6),
                step: telemetry_f64(qa.rotate_left(41), 1e-2),
                wns: telemetry_f64(qb.rotate_left(27), -1.0),
                tns: telemetry_f64(qa ^ qb, -1e2),
                timing: qa % 2 == 0,
            };
            dtp_obs::write_iter_record(&mut buf, &ev, &counter_delta).unwrap();
            dtp_obs::write_span_record(&mut buf, iter, level, &phase_ns).unwrap();
        }
        let text = String::from_utf8(buf).expect("sink output is UTF-8");
        // Exactly two lines per iteration (iter + span)...
        prop_assert_eq!(text.lines().count(), 2 * iters.len());
        prop_assert!(text.ends_with('\n'));
        // ...no NaN/Infinity token ever leaks...
        prop_assert!(!text.contains("NaN") && !text.contains("inf"));
        // ...and every line round-trips: strict parse, then byte-identical
        // re-serialization.
        for (i, line) in text.lines().enumerate() {
            let rec = match trace::parse_record(line) {
                Ok(r) => r,
                Err(e) => return Err(TestCaseError::Fail(format!("bad line {line:?}: {e}"))),
            };
            let (iter, level, _, _) = iters[i / 2];
            let mut rewritten = Vec::new();
            match rec {
                TraceRecord::Iter(it) => {
                    prop_assert_eq!(i % 2, 0, "iter record on an odd line");
                    prop_assert_eq!(it.iter, iter);
                    prop_assert_eq!(it.level, level);
                    it.write_jsonl(&mut rewritten).unwrap();
                }
                TraceRecord::Span(sp) => {
                    prop_assert_eq!(i % 2, 1, "span record on an even line");
                    prop_assert_eq!(sp.iter, iter);
                    prop_assert_eq!(sp.level, level);
                    sp.write_jsonl(&mut rewritten).unwrap();
                }
                TraceRecord::Header(_) => {
                    return Err(TestCaseError::Fail("unexpected header record".into()));
                }
            }
            let rewritten = String::from_utf8(rewritten).unwrap();
            prop_assert_eq!(rewritten.trim_end(), line, "re-serialization not byte-stable");
        }
    }
}
