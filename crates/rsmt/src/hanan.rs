//! Exact RSMT for small nets (degree 3 and 4).
//!
//! Hanan's theorem: some RSMT uses only Steiner points on the *Hanan grid*
//! (intersections of horizontal/vertical lines through pins). For degree 3
//! the optimum is the coordinate-wise median point; for degree 4 we enumerate
//! up to two Hanan-grid Steiner points (an RSMT over `n` terminals needs at
//! most `n − 2` Steiner points) and keep the cheapest spanning tree.

use crate::tree::SteinerTree;
use dtp_netlist::Point;

/// Builds the exact RSMT for 3 or 4 pins.
///
/// # Panics
///
/// Panics (in debug builds) if called with another degree.
pub(crate) fn build_exact_small(pins: &[Point]) -> SteinerTree {
    debug_assert!(pins.len() == 3 || pins.len() == 4);
    match pins.len() {
        3 => build_median3(pins),
        _ => build_hanan4(pins),
    }
}

/// Index of the pin holding the median coordinate among exactly 3 values.
fn median_index(vals: [f64; 3]) -> usize {
    let mut idx = [0usize, 1, 2];
    idx.sort_by(|&a, &b| vals[a].partial_cmp(&vals[b]).expect("non-NaN coordinates"));
    idx[1]
}

fn build_median3(pins: &[Point]) -> SteinerTree {
    let mut steiner = Vec::new();
    let mut edges = Vec::new();
    median3_parts(pins, &mut steiner, &mut edges);
    SteinerTree::from_parts(pins, steiner, edges)
}

/// Writes the exact degree-3 construction (median point) into caller-owned
/// part buffers — the allocation-free form shared with the in-place forest
/// rebuild path.
pub(crate) fn median3_parts(
    pins: &[Point],
    steiner: &mut Vec<(Point, u32, u32)>,
    edges: &mut Vec<(usize, usize)>,
) {
    steiner.clear();
    edges.clear();
    let xs = [pins[0].x, pins[1].x, pins[2].x];
    let ys = [pins[0].y, pins[1].y, pins[2].y];
    let mi = median_index(xs);
    let mj = median_index(ys);
    let m = Point::new(xs[mi], ys[mj]);
    // If the median point coincides with a pin, connect through that pin
    // directly (no Steiner point needed).
    if let Some(k) = pins.iter().position(|&p| p == m) {
        for i in 0..3 {
            if i != k {
                edges.push((k, i));
            }
        }
        return;
    }
    steiner.push((m, mi as u32, mj as u32));
    edges.extend([(0, 3), (1, 3), (2, 3)]);
}

/// Minimum-spanning-tree length and edges over a small point set
/// (Prim, O(k²)).
fn mst(points: &[Point]) -> (f64, Vec<(usize, usize)>) {
    let n = points.len();
    let mut in_tree = vec![false; n];
    let mut best = vec![(f64::INFINITY, 0usize); n];
    in_tree[0] = true;
    for j in 1..n {
        best[j] = (points[0].manhattan(points[j]), 0);
    }
    let mut total = 0.0;
    let mut edges = Vec::with_capacity(n.saturating_sub(1));
    for _ in 1..n {
        let (u, &(d, from)) = best
            .iter()
            .enumerate()
            .filter(|(i, _)| !in_tree[*i])
            .min_by(|a, b| a.1 .0.partial_cmp(&b.1 .0).expect("non-NaN distance"))
            .expect("some node remains outside the tree");
        in_tree[u] = true;
        total += d;
        edges.push((from, u));
        for j in 0..n {
            if !in_tree[j] {
                let dj = points[u].manhattan(points[j]);
                if dj < best[j].0 {
                    best[j] = (dj, u);
                }
            }
        }
    }
    (total, edges)
}

fn build_hanan4(pins: &[Point]) -> SteinerTree {
    // Candidate Hanan points with their coordinate sources, excluding points
    // that coincide with pins (those add nothing over the plain MST).
    let mut candidates: Vec<(Point, u32, u32)> = Vec::with_capacity(16);
    for (i, pi) in pins.iter().enumerate() {
        for (j, pj) in pins.iter().enumerate() {
            let h = Point::new(pi.x, pj.y);
            if !pins.contains(&h) && !candidates.iter().any(|(c, _, _)| *c == h) {
                candidates.push((h, i as u32, j as u32));
            }
        }
    }

    let mut best_len;
    let mut best_pts: Vec<(Point, u32, u32)> = Vec::new();
    let mut best_edges: Vec<(usize, usize)>;
    {
        let (l, e) = mst(pins);
        best_len = l;
        best_edges = e;
    }
    let mut points = pins.to_vec();
    // One Steiner point.
    for c1 in &candidates {
        points.truncate(pins.len());
        points.push(c1.0);
        let (l, e) = mst(&points);
        if l < best_len - 1e-12 {
            best_len = l;
            best_pts = vec![*c1];
            best_edges = e;
        }
    }
    // Two Steiner points.
    for (a, c1) in candidates.iter().enumerate() {
        for c2 in &candidates[a + 1..] {
            points.truncate(pins.len());
            points.push(c1.0);
            points.push(c2.0);
            let (l, e) = mst(&points);
            if l < best_len - 1e-12 {
                best_len = l;
                best_pts = vec![*c1, *c2];
                best_edges = e;
            }
        }
    }

    // Prune Steiner points of degree < 3: a degree-1 Steiner leaf is useless
    // and a degree-2 Steiner point can be bypassed without changing length.
    loop {
        let n = pins.len() + best_pts.len();
        let mut deg = vec![0usize; n];
        for &(a, b) in &best_edges {
            deg[a] += 1;
            deg[b] += 1;
        }
        let Some(victim) = (pins.len()..n).find(|&i| deg[i] < 3) else {
            break;
        };
        let neighbors: Vec<usize> = best_edges
            .iter()
            .filter(|&&(a, b)| a == victim || b == victim)
            .map(|&(a, b)| if a == victim { b } else { a })
            .collect();
        best_edges.retain(|&(a, b)| a != victim && b != victim);
        if neighbors.len() == 2 {
            best_edges.push((neighbors[0], neighbors[1]));
        }
        // Reindex nodes above the removed Steiner point.
        best_pts.remove(victim - pins.len());
        for e in &mut best_edges {
            if e.0 > victim {
                e.0 -= 1;
            }
            if e.1 > victim {
                e.1 -= 1;
            }
        }
    }

    SteinerTree::from_parts(pins, best_pts, best_edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median3_is_optimal() {
        let pins = [Point::new(0.0, 0.0), Point::new(4.0, 3.0), Point::new(4.0, -3.0)];
        let t = build_exact_small(&pins);
        assert_eq!(t.wirelength(), 10.0);
        assert_eq!(t.num_nodes(), 4);
    }

    #[test]
    fn median3_collinear_needs_no_steiner() {
        let pins = [Point::new(0.0, 0.0), Point::new(2.0, 0.0), Point::new(5.0, 0.0)];
        let t = build_exact_small(&pins);
        assert_eq!(t.num_nodes(), 3);
        assert_eq!(t.wirelength(), 5.0);
    }

    #[test]
    fn median3_at_pin_location() {
        // Median point equals pin 1.
        let pins = [Point::new(0.0, 0.0), Point::new(1.0, 1.0), Point::new(2.0, 2.0)];
        let t = build_exact_small(&pins);
        assert_eq!(t.num_nodes(), 3);
        assert_eq!(t.wirelength(), 4.0);
    }

    #[test]
    fn four_pin_cross_beats_mst() {
        // Four pins at the compass points of a cross: MST costs 3 edges of
        // length 2 (via center visits? no — pin-to-pin MST costs 6), the RSMT
        // with a center Steiner point costs 4.
        let pins = [
            Point::new(0.0, 1.0),
            Point::new(0.0, -1.0),
            Point::new(1.0, 0.0),
            Point::new(-1.0, 0.0),
        ];
        let t = build_exact_small(&pins);
        assert_eq!(t.wirelength(), 4.0);
        assert_eq!(t.num_nodes(), 5);
    }

    #[test]
    fn four_pin_rectangle() {
        // Corners of a 4x1 rectangle: RSMT length = 4 + 1 + 1 = 6.
        let pins = [
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(0.0, 1.0),
            Point::new(4.0, 1.0),
        ];
        let t = build_exact_small(&pins);
        assert!((t.wirelength() - 6.0).abs() < 1e-12, "wl = {}", t.wirelength());
    }

    #[test]
    fn four_coincident_pins() {
        let p = Point::new(2.0, 2.0);
        let t = build_exact_small(&[p, p, p, p]);
        assert_eq!(t.wirelength(), 0.0);
    }

    #[test]
    fn wirelength_never_exceeds_hpwl_sanity() {
        // RSMT ≥ HPWL/1 for 2-3 pins; and ≥ HPWL for any net it is ≥ half
        // perimeter. Spot-check the degree-4 bound RSMT ≥ HP(bbox).
        let pins = [
            Point::new(0.0, 0.0),
            Point::new(3.0, 7.0),
            Point::new(5.0, 2.0),
            Point::new(1.0, 4.0),
        ];
        let t = build_exact_small(&pins);
        let bbox = dtp_netlist::Rect::bounding(pins.iter().copied()).unwrap();
        assert!(t.wirelength() >= bbox.half_perimeter() - 1e-12);
    }
}
